// Thickness evolution (Eq. 2 of the paper's model):
//
//   dH/dt + div(H u_bar) = a_dot + b_dot
//
// couples the mass-conservation equation to the velocity solver: the
// first-order Stokes solve provides the depth-averaged velocity u_bar and
// the mpas::FvTransport operator advances the ice thickness under the
// surface mass balance, with outflow (calving) at the margin.  Since the
// transient forecast engine (DESIGN.md §14) this example is a thin wrapper
// over timestepping::ForecastDriver in its one-way-coupled configuration:
// one velocity solve, frozen field, CFL-limited adaptive transport.
//
//   ./examples/thickness_evolution [dx_km] [layers] [years] [out.ppm]

#include <cstdio>
#include <cstdlib>

#include "io/field_writer.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "timestepping/forecast_driver.hpp"

int main(int argc, char** argv) {
  using namespace mali;

  physics::StokesFOConfig cfg;
  cfg.dx_m = (argc > 1 ? std::atof(argv[1]) : 150.0) * 1.0e3;
  cfg.n_layers = argc > 2 ? std::atoi(argv[2]) : 5;
  const double years = argc > 3 ? std::atof(argv[3]) : 200.0;
  const char* out_ppm = argc > 4 ? argv[4] : nullptr;

  std::printf("Thickness evolution: dx = %.0f km, %d layers, %.0f years\n",
              cfg.dx_m / 1e3, cfg.n_layers, years);

  physics::StokesFOProblem problem(cfg);

  timestepping::ForecastConfig fcfg;
  fcfg.years = years;
  fcfg.velocity_every = 0;      // solve once, then freeze the velocity
  fcfg.thermal_enabled = false; // one-way coupling: no thermal feedback
  fcfg.transport.flux = mpas::FluxScheme::kVanLeerMuscl;
  fcfg.transport.time = mpas::TimeScheme::kHeunRk2;
  fcfg.newton.max_iters = 10;
  fcfg.controller.dt_init = 5.0;
  fcfg.controller.dt_max = 5.0;
  fcfg.controller.cfl_fraction = 0.4;

  timestepping::ForecastDriver driver(problem, fcfg);
  const timestepping::ForecastResult res = driver.run();

  std::printf("velocity solved: mean %.2f m/yr\n", res.mean_velocity);
  std::printf("transport: %zu cells, %zu faces (+%zu outflow); initial "
              "volume %.4e km^3\n",
              driver.transport().n_cells(), driver.transport().n_faces(),
              driver.transport().boundary_faces().size(),
              res.volume_initial / 1e9);
  for (std::size_t i = 0; i < res.ledger.size(); ++i) {
    if ((i + 1) % std::max<std::size_t>(1, res.ledger.size() / 5) != 0) {
      continue;
    }
    const auto& row = res.ledger[i];
    std::printf("  t = %7.1f yr: volume %.4e km^3 (%+.3f%%)\n", row.t,
                row.volume / 1e9,
                100.0 * (row.volume / res.volume_initial - 1.0));
  }
  std::printf("final volume: %.4e km^3 (%+.3f%% over %.0f years, %d "
              "adaptive steps, max mass residual %.1e)\n",
              res.volume_final / 1e9,
              100.0 * (res.volume_final / res.volume_initial - 1.0), years,
              res.steps, res.max_mass_residual);

  if (out_ppm != nullptr) {
    io::HeatmapConfig hm;
    hm.pixels_per_cell = 6;
    io::write_heatmap_ppm(out_ppm, problem.mesh().base(), res.H, hm);
    std::printf("final thickness heatmap written to %s\n", out_ppm);
  }
  return res.completed ? 0 : 1;
}
