// Thickness evolution (Eq. 2 of the paper's model):
//
//   dH/dt + div(H u_bar) = a_dot + b_dot
//
// couples the mass-conservation equation to the velocity solver: the
// first-order Stokes solve provides the depth-averaged velocity u_bar and
// the mpas::FvTransport operator advances the ice thickness under the
// surface mass balance, with outflow (calving) at the margin — the
// one-way-coupled demonstration of the dynamic equation MALI steps in
// production runs.
//
//   ./examples/thickness_evolution [dx_km] [layers] [years] [out.ppm]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "io/field_writer.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "mpas/fv_transport.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"

int main(int argc, char** argv) {
  using namespace mali;

  physics::StokesFOConfig cfg;
  cfg.dx_m = (argc > 1 ? std::atof(argv[1]) : 150.0) * 1.0e3;
  cfg.n_layers = argc > 2 ? std::atoi(argv[2]) : 5;
  const double years = argc > 3 ? std::atof(argv[3]) : 200.0;
  const char* out_ppm = argc > 4 ? argv[4] : nullptr;

  std::printf("Thickness evolution: dx = %.0f km, %d layers, %.0f years\n",
              cfg.dx_m / 1e3, cfg.n_layers, years);

  physics::StokesFOProblem problem(cfg);
  const auto& msh = problem.mesh();
  const auto& base = msh.base();
  const auto& geom = problem.geometry();

  // ---- velocity solve ----
  linalg::SemicoarseningAmg amg(problem.extrusion_info());
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 10;
  nonlinear::NewtonSolver newton(ncfg);
  auto U = problem.analytic_initial_guess();
  newton.solve(problem, amg, U);
  std::printf("velocity solved: mean %.2f m/yr\n", problem.mean_velocity(U));

  // Depth-averaged velocity per column (trapezoidal over levels).
  const std::size_t n_cols = base.n_nodes();
  std::vector<double> ubar(n_cols, 0.0), vbar(n_cols, 0.0);
  const std::size_t nl = msh.levels();
  for (std::size_t col = 0; col < n_cols; ++col) {
    double su = 0.0, sv = 0.0;
    for (std::size_t lev = 0; lev < nl; ++lev) {
      const std::size_t n = msh.node_id(col, lev);
      const double w = (lev == 0 || lev + 1 == nl) ? 0.5 : 1.0;
      su += w * U[2 * n];
      sv += w * U[2 * n + 1];
    }
    ubar[col] = su / static_cast<double>(nl - 1);
    vbar[col] = sv / static_cast<double>(nl - 1);
  }

  // ---- FV transport on the base grid ----
  mpas::TransportConfig tcfg;
  tcfg.flux = mpas::FluxScheme::kVanLeerMuscl;
  tcfg.time = mpas::TimeScheme::kHeunRk2;
  tcfg.min_thickness = 0.0;
  mpas::FvTransport fv(base, tcfg);

  std::vector<double> H(fv.n_cells()), smb(fv.n_cells());
  for (std::size_t c = 0; c < fv.n_cells(); ++c) {
    double x, y;
    base.cell_centroid(c, x, y);
    H[c] = geom.thickness(x, y);
    smb[c] = geom.surface_mass_balance(x, y);
  }
  const auto uc = fv.node_to_cell(ubar);
  const auto vc = fv.node_to_cell(vbar);

  const double v0 = fv.volume(H);
  std::printf("transport: %zu cells, %zu faces (+%zu outflow); initial "
              "volume %.4e km^3\n",
              fv.n_cells(), fv.n_faces(), fv.boundary_faces().size(),
              v0 / 1e9);

  const double dt = std::min(5.0, 0.4 * fv.max_stable_dt(uc, vc));
  const int n_steps = static_cast<int>(years / dt + 0.5);
  for (int step = 0; step < n_steps; ++step) {
    fv.step(H, uc, vc, smb, dt);
    if ((step + 1) % std::max(1, n_steps / 5) == 0) {
      std::printf("  t = %7.1f yr: volume %.4e km^3 (%+.3f%%)\n",
                  (step + 1) * dt, fv.volume(H) / 1e9,
                  100.0 * (fv.volume(H) / v0 - 1.0));
    }
  }
  std::printf("final volume: %.4e km^3 (%+.3f%% over %.0f years)\n",
              fv.volume(H) / 1e9, 100.0 * (fv.volume(H) / v0 - 1.0), years);

  if (out_ppm != nullptr) {
    io::HeatmapConfig hm;
    hm.pixels_per_cell = 6;
    io::write_heatmap_ppm(out_ppm, base, H, hm);
    std::printf("final thickness heatmap written to %s\n", out_ppm);
  }
  return 0;
}
