// The paper's §III-B numerical test on the synthetic Antarctica: a
// high-resolution mesh extruded by 20 layers, a nonlinear solve of 8 Newton
// steps with the linear systems solved by GMRES (tol 1e-6) preconditioned
// with the semicoarsening AMG, and the mean velocity checked against a
// stored reference at rtol 1e-5.  Optionally writes the surface velocity
// field as CSV plus a rendered speed map (the Fig. 1 analog).
//
//   ./examples/antarctica [dx_km] [layers] [output.csv] [speedmap.ppm] [out.vtk]
//
// The paper's resolution is 16 km / 20 layers (~256K hexahedra) — feasible
// here but slow on one CPU core; the default below is 64 km / 10 layers.

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "io/field_writer.hpp"
#include "io/vtk_writer.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/timer.hpp"

int main(int argc, char** argv) {
  using namespace mali;

  physics::StokesFOConfig cfg;
  cfg.dx_m = (argc > 1 ? std::atof(argv[1]) : 64.0) * 1.0e3;
  cfg.n_layers = argc > 2 ? std::atoi(argv[2]) : 10;
  const char* out_csv = argc > 3 ? argv[3] : nullptr;
  const char* out_ppm = argc > 4 ? argv[4] : nullptr;
  const char* out_vtk = argc > 5 ? argv[5] : nullptr;

  std::printf("Antarctica test: dx = %.0f km, %d layers\n", cfg.dx_m / 1e3,
              cfg.n_layers);

  pk::Timer timer;
  physics::StokesFOProblem problem(cfg);
  std::printf("mesh: %zu hexahedra (paper: ~256K at 16 km/20 layers), "
              "%zu dofs; setup %.2f s\n",
              problem.mesh().n_cells(), problem.n_dofs(), timer.seconds());

  linalg::SemicoarseningAmg amg(problem.extrusion_info());
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 8;          // the paper's nonlinear step count
  ncfg.gmres.rel_tol = 1.0e-6; // the paper's linear tolerance
  ncfg.verbose = true;
  nonlinear::NewtonSolver newton(ncfg);

  // Start from the shallow-ice analytic guess (a realistic state, as a
  // production run restarting from a previous time step would have).
  auto U = problem.analytic_initial_guess();
  timer.reset();
  const auto result = newton.solve(problem, amg, U);
  const double mean = problem.mean_velocity(U);
  std::printf(
      "solve: %.2f s, %d Newton steps, %zu GMRES iterations total, "
      "||F||: %.3e -> %.3e\n",
      timer.seconds(), result.iterations, result.total_linear_iters,
      result.initial_norm, result.residual_norm);
  std::printf("mean velocity: %.6f m/yr\n", mean);

  // The paper's acceptance criterion at the default configuration.
  if (cfg.dx_m == 64.0e3 && cfg.n_layers == 10) {
    constexpr double kReference = 251.752550;  // frozen reference (m/yr)
    if (kReference > 0.0) {
      const double rel = std::abs(mean / kReference - 1.0);
      std::printf("reference check: rel err %.2e (tol 1e-5): %s\n", rel,
                  rel < 1e-5 ? "PASS" : "FAIL");
    }
  }

  if (out_csv != nullptr) {
    std::ofstream os(out_csv);
    os << "x_km,y_km,thickness_m,surface_m,u_m_per_yr,v_m_per_yr,speed\n";
    const auto& msh = problem.mesh();
    for (std::size_t col = 0; col < msh.base().n_nodes(); ++col) {
      const std::size_t n = msh.node_id(col, msh.levels() - 1);  // surface
      const double x = msh.node_x(n), y = msh.node_y(n);
      const double u = U[2 * n], v = U[2 * n + 1];
      os << x / 1e3 << ',' << y / 1e3 << ','
         << problem.geometry().thickness(x, y) << ','
         << problem.geometry().surface(x, y) << ',' << u << ',' << v << ','
         << std::hypot(u, v) << '\n';
    }
    std::printf("surface velocity field written to %s (%zu columns)\n",
                out_csv, msh.base().n_nodes());
  }

  if (out_ppm != nullptr) {
    // Cell-centred surface speed, rendered log-scaled as in Fig. 1.
    const auto& msh = problem.mesh();
    const auto& base = msh.base();
    std::vector<double> speed(base.n_cells(), 0.0);
    for (std::size_t c = 0; c < base.n_cells(); ++c) {
      for (int k = 0; k < 4; ++k) {
        const std::size_t n =
            msh.node_id(base.cell_node(c, k), msh.levels() - 1);
        speed[c] += 0.25 * std::hypot(U[2 * n], U[2 * n + 1]);
      }
    }
    io::HeatmapConfig hm;
    hm.pixels_per_cell = 6;
    hm.log_scale = true;  // ice-speed maps span orders of magnitude
    io::write_heatmap_ppm(out_ppm, base, speed, hm);
    std::printf("surface speed map written to %s\n", out_ppm);
  }

  if (out_vtk != nullptr) {
    std::vector<double> speed(problem.mesh().n_nodes());
    for (std::size_t n = 0; n < speed.size(); ++n) {
      speed[n] = std::hypot(U[2 * n], U[2 * n + 1]);
    }
    io::write_vtk(out_vtk, problem.mesh(), {{"speed", &speed}},
                  {{"velocity", &U}});
    std::printf("ParaView snapshot written to %s\n", out_vtk);
  }
  return result.residual_norm < result.initial_norm ? 0 : 1;
}
