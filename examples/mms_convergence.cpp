// Manufactured-solution convergence study: solves the constant-viscosity
// FO Stokes problem with the quadratic manufactured field imposed on the
// boundary of the nested square verification domain, and prints the nodal
// RMS error and observed order under simultaneous refinement — the
// discretization's verification table.
//
//   ./examples/mms_convergence [levels]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "linalg/semicoarsening_amg.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"

int main(int argc, char** argv) {
  using namespace mali;
  const int n_levels = argc > 1 ? std::atoi(argv[1]) : 3;

  std::printf("MMS convergence: u* = a(x^2+y^2) + b z^2, v* = c xy + d z^2\n");
  std::printf("%10s %8s %14s %10s\n", "dx (km)", "layers", "RMS err (m/yr)",
              "order");

  double prev_err = 0.0;
  double dx_km = 250.0;
  int layers = 3;
  for (int lvl = 0; lvl < n_levels; ++lvl) {
    physics::StokesFOConfig cfg;
    cfg.dx_m = dx_km * 1e3;
    cfg.n_layers = layers;
    cfg.mms.enabled = true;
    cfg.geometry.square_mask = true;  // nested refinements
    physics::StokesFOProblem p(cfg);

    linalg::SemicoarseningAmg amg(p.extrusion_info());
    nonlinear::NewtonConfig ncfg;
    ncfg.max_iters = 3;  // linear operator: one step suffices
    ncfg.gmres.rel_tol = 1e-10;
    ncfg.gmres.max_iters = 6000;
    nonlinear::NewtonSolver newton(ncfg);
    std::vector<double> U(p.n_dofs(), 0.0);
    newton.solve(p, amg, U);
    const double err = p.mms_error(U);

    if (lvl == 0) {
      std::printf("%10.1f %8d %14.6f %10s\n", dx_km, layers, err, "-");
    } else {
      std::printf("%10.1f %8d %14.6f %10.2f\n", dx_km, layers, err,
                  std::log2(prev_err / err));
    }
    prev_err = err;
    dx_km /= 2.0;
    layers *= 2;
  }
  std::printf("\nExpected order: ~2 (trilinear elements, quadratic exact "
              "field).\n");
  return 0;
}
