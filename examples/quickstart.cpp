// Quickstart: build a coarse synthetic Antarctica, solve the first-order
// Stokes velocity with damped Newton + GMRES + semicoarsening AMG, and
// report the mean surface speed.
//
//   ./examples/quickstart [dx_km] [layers]

#include <cstdio>
#include <cstdlib>

#include "linalg/semicoarsening_amg.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/timer.hpp"

int main(int argc, char** argv) {
  using namespace mali;

  physics::StokesFOConfig cfg;
  cfg.dx_m = (argc > 1 ? std::atof(argv[1]) : 100.0) * 1.0e3;
  cfg.n_layers = argc > 2 ? std::atoi(argv[2]) : 5;
  cfg.variant = physics::KernelVariant::kOptimized;

  std::printf("MiniMALI quickstart: dx = %.0f km, %d layers\n",
              cfg.dx_m / 1e3, cfg.n_layers);

  pk::Timer timer;
  physics::StokesFOProblem problem(cfg);
  std::printf("mesh: %zu hexahedra, %zu nodes, %zu dofs (%zu Dirichlet)\n",
              problem.mesh().n_cells(), problem.mesh().n_nodes(),
              problem.n_dofs(), problem.dof_map().dirichlet_dofs().size());
  std::printf("setup: %.2f s\n", timer.seconds());

  linalg::SemicoarseningAmg amg(problem.extrusion_info());

  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 8;  // the paper's nonlinear step count
  ncfg.verbose = true;
  ncfg.gmres.rel_tol = 1.0e-6;  // the paper's linear tolerance
  nonlinear::NewtonSolver newton(ncfg);

  std::vector<double> U(problem.n_dofs(), 0.0);
  timer.reset();
  const auto result = newton.solve(problem, amg, U);
  std::printf("solve: %.2f s — %s after %d Newton steps, ||F|| = %.3e "
              "(%zu total GMRES iterations)\n",
              timer.seconds(), result.converged ? "converged" : "NOT converged",
              result.iterations, result.residual_norm,
              result.total_linear_iters);

  std::printf("mean velocity: %.6f m/yr\n", problem.mean_velocity(U));
  return result.converged || result.residual_norm < result.initial_norm
             ? 0
             : 1;
}
