// Thermo-mechanical coupling: a Picard loop between the first-order Stokes
// velocity solver and the mesh-wide thermal model.
//
//   1. Solve the velocity with the current flow-rate factor A(T).
//   2. Derive per-column strain heating from the solved vertical shear.
//   3. Solve every column's steady temperature (diffusion + heating,
//      geothermal flux at the bed, geometry surface temperature).
//   4. Update A(T) via Paterson–Budd and repeat.
//
// Warm ice deforms faster (A grows with T), so the coupled state flows
// faster than the cold initial guess — the effect this example quantifies.
//
//   ./examples/thermal_coupling [dx_km] [layers] [picard_iters]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "linalg/semicoarsening_amg.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "physics/thermal_model.hpp"

int main(int argc, char** argv) {
  using namespace mali;

  physics::StokesFOConfig cfg;
  cfg.dx_m = (argc > 1 ? std::atof(argv[1]) : 150.0) * 1.0e3;
  cfg.n_layers = argc > 2 ? std::atoi(argv[2]) : 6;
  const int picard_iters = argc > 3 ? std::atoi(argv[3]) : 3;

  std::printf("Thermo-mechanical coupling: dx = %.0f km, %d layers, %d "
              "Picard iterations\n",
              cfg.dx_m / 1e3, cfg.n_layers, picard_iters);

  physics::StokesFOProblem problem(cfg);
  physics::ThermalModel thermal(problem.mesh(), problem.geometry());
  linalg::SemicoarseningAmg amg(problem.extrusion_info());
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 10;
  nonlinear::NewtonSolver newton(ncfg);

  std::vector<double> U(problem.n_dofs(), 0.0);
  double prev_mean = 0.0;
  for (int it = 0; it < picard_iters; ++it) {
    problem.set_temperature_field([&](double x, double y, double sigma) {
      return thermal.temperature_at(x, y, sigma);
    });
    const auto r = newton.solve(problem, amg, U);
    const double mean = problem.mean_velocity(U);
    std::printf("picard %d: velocity solved (||F|| %.2e -> %.2e), mean "
                "%.3f m/yr (change %+.3f)\n",
                it + 1, r.initial_norm, r.residual_norm, mean,
                mean - prev_mean);
    prev_mean = mean;

    const auto heating =
        thermal.strain_heating(U, problem.config().constants);
    thermal.solve_steady(heating);
    std::printf("          temperature solved over %zu columns; warmest bed "
                "%.2f K\n",
                thermal.n_columns(), thermal.max_bed_temperature());
  }

  std::printf("coupled mean velocity: %.3f m/yr\n", prev_mean);
  return 0;
}
