// Thermo-mechanical coupling: a Picard loop between the first-order Stokes
// velocity solver and the mesh-wide thermal model.
//
//   1. Solve the velocity with the current flow-rate factor A(T).
//   2. Derive per-column strain heating from the solved vertical shear.
//   3. Solve every column's steady temperature (diffusion + heating,
//      geothermal flux at the bed, geometry surface temperature).
//   4. Update A(T) via Paterson–Budd and repeat.
//
// Warm ice deforms faster (A grows with T), so the coupled state flows
// faster than the cold initial guess — the effect this example quantifies.
// Since the transient forecast engine (DESIGN.md §14) this example is a
// thin wrapper over timestepping::ForecastDriver in its Picard
// configuration: fixed unit dt, thickness evolution off, steady thermal
// solve each cycle — one forecast step == one Picard iteration.
//
//   ./examples/thermal_coupling [dx_km] [layers] [picard_iters]

#include <cstdio>
#include <cstdlib>

#include "physics/stokes_fo_problem.hpp"
#include "timestepping/forecast_driver.hpp"

int main(int argc, char** argv) {
  using namespace mali;

  physics::StokesFOConfig cfg;
  cfg.dx_m = (argc > 1 ? std::atof(argv[1]) : 150.0) * 1.0e3;
  cfg.n_layers = argc > 2 ? std::atoi(argv[2]) : 6;
  const int picard_iters = argc > 3 ? std::atoi(argv[3]) : 3;

  std::printf("Thermo-mechanical coupling: dx = %.0f km, %d layers, %d "
              "Picard iterations\n",
              cfg.dx_m / 1e3, cfg.n_layers, picard_iters);

  physics::StokesFOProblem problem(cfg);

  timestepping::ForecastConfig fcfg;
  fcfg.years = static_cast<double>(picard_iters);
  fcfg.velocity_every = 1;       // re-solve the velocity every cycle
  fcfg.evolve_thickness = false; // pure thermo-mechanical iteration
  fcfg.thermal_steady = true;    // steady column solve each cycle
  fcfg.newton.max_iters = 10;
  // Fixed unit steps: one forecast step per Picard iteration.
  fcfg.controller.dt_init = 1.0;
  fcfg.controller.dt_min = 1.0;
  fcfg.controller.dt_max = 1.0;
  fcfg.controller.cfl_fraction = 1e9;  // no CFL clamp: H does not evolve

  timestepping::ForecastDriver driver(problem, fcfg);
  const timestepping::ForecastResult res = driver.run();

  for (const auto& row : res.ledger) {
    std::printf("picard %d: velocity solved in %d Newton step(s)\n",
                row.step, row.newton_iters);
  }
  std::printf("coupled mean velocity: %.3f m/yr\n", res.mean_velocity);
  return res.completed ? 0 : 1;
}
