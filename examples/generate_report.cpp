// Generates the full markdown optimization-study report — the automated
// counterpart of EXPERIMENTS.md, for re-running the paper's evaluation
// after changing a kernel or a model parameter.
//
//   ./examples/generate_report [out.md] [n_cells]

#include <cstdio>
#include <cstdlib>

#include "core/report_generator.hpp"

int main(int argc, char** argv) {
  using namespace mali;

  const char* path = argc > 1 ? argv[1] : "mali_report.md";
  core::StudyConfig cfg;
  if (argc > 2) cfg.n_cells = static_cast<std::size_t>(std::atoll(argv[2]));
  cfg.sim.scale = 0.25;

  const core::OptimizationStudy study(cfg);
  const auto written = core::write_markdown_report(study, path);
  std::printf("study report written to %s (%zu-cell workset)\n",
              written.c_str(), cfg.n_cells);
  return 0;
}
