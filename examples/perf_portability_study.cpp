// Programmatic use of the performance-portability API: runs the full study
// (both kernels, both variants, both modeled GPUs), prints a compact
// summary, and demonstrates composing the efficiencies into Pennycook's Φ —
// the workflow a performance engineer would run after changing a kernel.
//
//   ./examples/perf_portability_study [n_cells]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/study.hpp"
#include "gpusim/counters.hpp"
#include "perf/portability_metric.hpp"

int main(int argc, char** argv) {
  using namespace mali;

  core::StudyConfig cfg;
  if (argc > 1) cfg.n_cells = static_cast<std::size_t>(std::atoll(argv[1]));
  cfg.sim.scale = 0.25;
  const core::OptimizationStudy study(cfg);

  std::printf("Performance-portability study, %zu-cell workset\n\n",
              cfg.n_cells);
  std::printf("%-22s %-9s %-12s %10s %9s %7s %7s %7s\n", "machine", "kernel",
              "variant", "time (ms)", "GB moved", "BW%", "e_time", "e_DM");

  const auto cases = study.run_standard_cases();
  for (const auto& c : cases) {
    const double peak = c.arch == study.a100().name
                            ? study.a100().hbm_bw_bytes_per_s
                            : study.mi250x_gcd().hbm_bw_bytes_per_s;
    std::printf("%-22s %-9s %-12s %10.3f %9.2f %6.0f%% %6.0f%% %6.0f%%\n",
                c.arch.c_str(), core::to_string(c.kind),
                physics::to_string(c.variant), c.sim.time_s * 1e3,
                c.sim.hbm_bytes / 1e9, 100.0 * c.sim.achieved_bw / peak,
                100.0 * c.sim.e_time(), 100.0 * c.sim.e_dm());
  }

  // Φ across the platform set, per kernel/variant.
  std::printf("\nPennycook Phi over {A100, MI250X GCD}:\n");
  for (const auto kind :
       {core::KernelKind::kJacobian, core::KernelKind::kResidual}) {
    for (const auto v : {physics::KernelVariant::kBaseline,
                         physics::KernelVariant::kOptimized}) {
      std::vector<double> et, edm;
      for (const auto& c : cases) {
        if (c.kind == kind && c.variant == v) {
          et.push_back(c.sim.e_time());
          edm.push_back(c.sim.e_dm());
        }
      }
      std::printf("  %-8s %-10s Phi(e_time) = %3.0f%%   Phi(e_DM) = %3.0f%%\n",
                  core::to_string(kind), physics::to_string(v),
                  100.0 * perf::phi(et), 100.0 * perf::phi(edm));
    }
  }

  // Profiler-counter view of one case (the appendix's methodology).
  const auto sim = study.simulate(study.mi250x_gcd(),
                                  core::KernelKind::kJacobian,
                                  physics::KernelVariant::kOptimized,
                                  pk::LaunchConfig{128, 2});
  const auto ctr = gpusim::ProfilerCounters::from_sim(sim);
  std::printf(
      "\nrocprof-style counters, optimized Jacobian on the GCD at <128,2>:\n"
      "  TCC_EA_RDREQ_sum   = %llu\n"
      "  TCC_EA_WRREQ_sum   = %llu\n"
      "  GPU bytes moved    = %.3f GB (appendix formula)\n",
      static_cast<unsigned long long>(ctr.tcc_ea_rdreq_sum),
      static_cast<unsigned long long>(ctr.tcc_ea_wrreq_sum),
      ctr.rocprof_bytes() / 1e9);
  return 0;
}
