#include "timestepping/step_controller.hpp"

#include <algorithm>
#include <cmath>

namespace mali::timestepping {

StepController::StepController(StepControllerConfig cfg) : cfg_(cfg) {
  MALI_CHECK_MSG(cfg_.dt_min > 0.0 && std::isfinite(cfg_.dt_min),
                 "StepController: dt_min must be positive and finite");
  MALI_CHECK_MSG(cfg_.dt_max >= cfg_.dt_min,
                 "StepController: dt_max must be >= dt_min");
  MALI_CHECK_MSG(cfg_.dt_init >= cfg_.dt_min && cfg_.dt_init <= cfg_.dt_max,
                 "StepController: dt_init must lie in [dt_min, dt_max]");
  MALI_CHECK_MSG(cfg_.growth >= 1.0, "StepController: growth must be >= 1");
  MALI_CHECK_MSG(cfg_.backoff > 0.0 && cfg_.backoff < 1.0,
                 "StepController: backoff must lie in (0, 1)");
  MALI_CHECK_MSG(cfg_.cfl_fraction > 0.0 && std::isfinite(cfg_.cfl_fraction),
                 "StepController: cfl_fraction must be positive and finite");
  dt_ = cfg_.dt_init;
}

double StepController::propose(double cfl_limit, double remaining) const {
  MALI_CHECK_MSG(remaining > 0.0, "StepController: remaining must be > 0");
  double dt = std::min(dt_, cfg_.dt_max);
  if (std::isfinite(cfl_limit)) {
    MALI_CHECK_MSG(cfl_limit > 0.0, "StepController: cfl_limit must be > 0");
    dt = std::min(dt, cfg_.cfl_fraction * cfl_limit);
  }
  return std::min(dt, remaining);
}

void StepController::on_success() {
  ++successes_;
  dt_ = std::min(dt_ * cfg_.growth, cfg_.dt_max);
}

bool StepController::on_failure() {
  ++failures_;
  dt_ *= cfg_.backoff;
  return dt_ >= cfg_.dt_min;
}

void StepController::set_current(double dt) {
  MALI_CHECK_MSG(std::isfinite(dt) && dt >= cfg_.dt_min && dt <= cfg_.dt_max,
                 "StepController: restored dt outside [dt_min, dt_max]");
  dt_ = dt;
}

}  // namespace mali::timestepping
