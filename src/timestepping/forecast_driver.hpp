#pragma once
// ForecastDriver — the transient forecast engine (DESIGN.md §14): the
// operator-split cycle that turns the diagnostic FO-Stokes solver into a
// prognostic ice-sheet model,
//
//   velocity (Newton/GMRES)  ->  thickness (FV transport, Eq. 2)
//       ->  thermal (per-column backward Euler)  ->  A(T) feedback,
//
// with CFL-aware adaptive dt (StepController), pluggable surface forcing
// (Forcing), per-phase timers, an exact per-step mass-budget ledger, and
// bit-exact transient checkpoints for mid-run restart.  A rejected step
// (Newton fault/divergence, non-finite thickness) restores the pre-step
// state and retries with a backed-off dt; the Newton recovery ladder and
// fault injection compose underneath exactly as in the diagnostic solve.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dist/dist_solver.hpp"
#include "mpas/fv_transport.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "physics/thermal_model.hpp"
#include "portability/timer.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault_injector.hpp"
#include "timestepping/forcing.hpp"
#include "timestepping/step_controller.hpp"

namespace mali::timestepping {

struct ForecastConfig {
  double years = 10.0;  ///< forecast horizon (model years)
  StepControllerConfig controller{};
  /// Forcing spec parsed by make_forcing: constant[:offset=F] |
  /// ramp:anomaly=F[,start=F][,end=F] |
  /// cycle:amplitude=F[,period=F][,phase=F].
  std::string forcing = "constant";
  /// Velocity re-solve cadence: N > 0 solves at steps where step % N == 0;
  /// 0 solves once and freezes the field; < 0 never solves (zero velocity —
  /// pure SMB evolution, the closed-domain conservation configuration).
  int velocity_every = 1;
  bool evolve_thickness = true;  ///< run the FV transport phase
  bool thermal_enabled = true;   ///< run the thermal phase + A(T) feedback
  /// Thermal phase flavour: false advances columns by dt (backward Euler),
  /// true solves each column to steady state per cycle — the Picard
  /// thermo-mechanical iteration of examples/thermal_coupling.
  bool thermal_steady = false;
  mpas::TransportConfig transport{};
  nonlinear::NewtonConfig newton{};
  /// Preconditioner factory for the serial velocity solve; default (null)
  /// builds the semicoarsening AMG from the problem's extrusion structure.
  std::function<std::unique_ptr<linalg::Preconditioner>(
      const physics::StokesFOProblem&)>
      make_precond;
  /// Optional deterministic fault injector (serial velocity path only);
  /// non-null implies NaN/Inf guards around problem and preconditioner.
  resilience::FaultInjector* injector = nullptr;
  /// In-process SPMD velocity solve when ranks > 1 (dist.ranks is
  /// overwritten with this value).
  int ranks = 1;
  dist::DistConfig dist{};
  /// Write a transient checkpoint every K accepted steps (0 = never).
  int checkpoint_every = 0;
  std::string checkpoint_path = "forecast.tckpt";
  /// Resume from this transient checkpoint before stepping (empty = fresh
  /// start).  A restarted run reproduces the uninterrupted run bit-for-bit.
  std::string restart_path;
  /// Optional Newton warm start for the first velocity solve (the ensemble
  /// engine seeds this from the nearest converged neighbor member).  Empty
  /// keeps the analytic initial guess; a non-empty vector must match the
  /// problem's dof count exactly — a mismatch is a typed error, never a
  /// silent read of a wrong-sized vector.
  std::vector<double> initial_U;
  bool verbose = false;  ///< print the per-step ledger
};

/// One accepted step of the mass-budget ledger.  The budget identity
///   volume_after - volume_before = smb - calving + clamp
/// holds to FP roundoff (FvTransport::StepStats); `residual` records the
/// actual defect so tests and the bench can pin it.
struct LedgerRow {
  int step = 0;          ///< global step index (1-based after the step)
  double t = 0.0;        ///< model time after the step
  double dt = 0.0;       ///< accepted step size
  double volume = 0.0;   ///< ice volume after the step
  double smb = 0.0;      ///< volume added by surface mass balance
  double calving = 0.0;  ///< volume lost through the margin
  double clamp = 0.0;    ///< volume created by the thickness floor
  double residual = 0.0; ///< dV - (smb - calving + clamp)
  int retries = 0;       ///< rejected attempts before this step accepted
  int newton_iters = 0;  ///< 0 when the velocity phase was skipped
};

struct ForecastResult {
  bool completed = false;  ///< reached the horizon
  int steps = 0;           ///< accepted steps this run (excludes restart)
  double t_final = 0.0;
  double volume_initial = 0.0;
  double volume_final = 0.0;
  /// Largest |ledger residual| relative to the initial volume.
  double max_mass_residual = 0.0;
  int velocity_solves = 0;
  int rejections = 0;  ///< rejected step attempts
  std::vector<LedgerRow> ledger;
  std::vector<double> H;  ///< final cell thickness
  std::vector<double> U;  ///< final velocity solution
  std::vector<double> T;  ///< final column temperatures (flat), empty if off
  /// Coordinated-restart log accumulated over every distributed velocity
  /// solve of the run (empty on the serial path and on clean runs) — the
  /// CLI prints its tail when a forecast fails.
  dist::DistRecoveryLog dist_recovery;
  double mean_velocity = 0.0;
  pk::TimerRegistry timers;  ///< "velocity" / "transport" / "thermal" / "io"
};

class ForecastDriver {
 public:
  /// The problem provides mesh, geometry, physics, and the velocity solve;
  /// the driver owns every prognostic field.  `problem` must outlive the
  /// driver and is mutated (temperature coupling, Newton state).
  ForecastDriver(physics::StokesFOProblem& problem, ForecastConfig cfg);

  /// Runs (or resumes) the forecast to the horizon.  Throws mali::Error
  /// when the step controller bottoms out at dt_min or a config/restart
  /// file is invalid; Newton faults and non-finite states are handled by
  /// the reject/backoff path, not exceptions.
  ForecastResult run();

  [[nodiscard]] const mpas::FvTransport& transport() const noexcept {
    return fv_;
  }
  [[nodiscard]] const StepController& controller() const noexcept {
    return controller_;
  }
  [[nodiscard]] const Forcing& forcing() const noexcept { return *forcing_; }

 private:
  /// Runs one velocity solve (serial or distributed) updating U_ in place.
  /// Returns false when the step must be rejected (fault, divergence).
  bool solve_velocity(ForecastResult& result, int* newton_iters);
  void apply_temperature_coupling();
  [[nodiscard]] std::vector<double> cell_source(double t) const;

  physics::StokesFOProblem* problem_;
  ForecastConfig cfg_;
  mpas::FvTransport fv_;
  std::unique_ptr<physics::ThermalModel> thermal_;
  std::unique_ptr<Forcing> forcing_;
  StepController controller_;
  std::unique_ptr<linalg::Preconditioner> precond_;

  // Prognostic state.  U_ warm-starts Newton between solves; run()
  // revalidates both sizes against the live problem before every use so a
  // problem whose mesh changed under the driver is a typed error, not a
  // stale read (DESIGN.md §15).
  std::vector<double> H_;  ///< cell thickness
  std::vector<double> U_;  ///< velocity (warm start between solves)
  double t_ = 0.0;
  int step_ = 0;
  bool have_velocity_ = false;
  /// One-shot injected fault already carried into a distributed solve call
  /// (the spec must not re-fire on every velocity re-solve).
  bool dist_fault_spent_ = false;
};

}  // namespace mali::timestepping
