#pragma once
// StepController — CFL-aware adaptive time stepping for the transient
// forecast engine (DESIGN.md §14).  The policy is PISM's iMadaptive idiom:
// every *accepted* step lets dt grow by a fixed factor, every *rejected*
// step (CFL violation, Newton/transport failure, non-finite state) backs
// off geometrically, and a hard [dt_min, dt_max] clamp bounds both
// directions.  The controller is deliberately a pure deterministic state
// machine — no clocks, no randomness — so adaptive-dt schedules can be
// pinned bit-for-bit by tests and reproduced across restarts (the current
// dt rides the transient checkpoint).

#include <cstddef>

#include "portability/common.hpp"

namespace mali::timestepping {

struct StepControllerConfig {
  double dt_init = 1.0;          ///< starting step, years
  double dt_min = 1.0 / 1024.0;  ///< below this a rejected step is fatal
  double dt_max = 10.0;          ///< hard ceiling, years
  double growth = 1.25;          ///< multiplier applied after a success
  double backoff = 0.5;          ///< multiplier applied after a failure
  /// Fraction of the transport CFL limit a proposed step may use (the
  /// classic 0.5 safety factor; 1.0 rides the stability boundary; values
  /// above 1 deliberately exceed it — e.g. Picard iterations where the
  /// thickness is frozen and CFL is meaningless).
  double cfl_fraction = 0.5;
};

class StepController {
 public:
  explicit StepController(StepControllerConfig cfg);

  /// The dt to attempt next: the current adaptive step clamped by the CFL
  /// budget (cfl_fraction * cfl_limit), dt_max, and the remaining time to
  /// the horizon (so the run lands exactly on `years`).  Pure — repeated
  /// calls with the same arguments return the same value.
  [[nodiscard]] double propose(double cfl_limit, double remaining) const;

  /// Accepts the last step: the adaptive step grows by `growth`, clamped
  /// to dt_max.
  void on_success();

  /// Rejects the last step: the adaptive step shrinks by `backoff`.
  /// Returns false when the step would fall below dt_min — the caller
  /// should abort the run rather than loop forever.
  [[nodiscard]] bool on_failure();

  [[nodiscard]] double current() const noexcept { return dt_; }
  /// Restores the adaptive step from a transient checkpoint.
  void set_current(double dt);

  [[nodiscard]] int successes() const noexcept { return successes_; }
  [[nodiscard]] int failures() const noexcept { return failures_; }
  [[nodiscard]] const StepControllerConfig& config() const noexcept {
    return cfg_;
  }

 private:
  StepControllerConfig cfg_;
  double dt_;
  int successes_ = 0;
  int failures_ = 0;
};

}  // namespace mali::timestepping
