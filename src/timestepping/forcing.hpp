#pragma once
// Pluggable climate forcing for the transient forecast engine (DESIGN.md
// §14) — the PISM coupler idiom (PAAnomaly / PAYearlyCycle / the PCFactory
// spec-string construction) reduced to the one field MiniMALI's mass
// balance needs: surface mass balance a(x, y, t) in m/yr ice equivalent.
//
// Every forcing modulates the geometry's baseline SMB field; scenarios are
// parsed from a compact spec string:
//
//   constant[:offset=F]                    baseline + uniform offset
//   ramp:anomaly=F[,start=F][,end=F]       anomaly ramped linearly in over
//                                          [start, end] then held
//   cycle:amplitude=F[,period=F][,phase=F] baseline + seasonal sinusoid
//
// make_forcing throws mali::Error on any malformed spec (unknown name or
// key, unparsable or non-finite value, end <= start, period <= 0), and
// Forcing::spec() returns a normalized string that reparses to an
// identical forcing — the round-trip contract test_fuzz hammers.

#include <memory>
#include <string>

#include "mesh/ice_geometry.hpp"

namespace mali::timestepping {

class Forcing {
 public:
  virtual ~Forcing() = default;

  /// Surface mass balance (m/yr ice equivalent) at (x, y) and time t (yr).
  [[nodiscard]] virtual double smb(double x, double y, double t) const = 0;

  /// Normalized spec string: make_forcing(spec()) reconstructs this
  /// forcing exactly, and its spec() returns the same string.
  [[nodiscard]] virtual std::string spec() const = 0;
};

/// Baseline geometry SMB plus a uniform offset.
class ConstantForcing final : public Forcing {
 public:
  ConstantForcing(const mesh::IceGeometry& geom, double offset = 0.0)
      : geom_(&geom), offset_(offset) {}
  [[nodiscard]] double smb(double x, double y, double t) const override;
  [[nodiscard]] std::string spec() const override;
  [[nodiscard]] double offset() const { return offset_; }

 private:
  const mesh::IceGeometry* geom_;
  double offset_;
};

/// PISM PAAnomaly style: a uniform SMB anomaly ramped linearly from 0 at
/// t = start to its full value at t = end, then held — the standard
/// warming-scenario shape.
class AnomalyRampForcing final : public Forcing {
 public:
  AnomalyRampForcing(const mesh::IceGeometry& geom, double anomaly,
                     double start, double end);
  [[nodiscard]] double smb(double x, double y, double t) const override;
  [[nodiscard]] std::string spec() const override;
  [[nodiscard]] double anomaly() const { return anomaly_; }
  [[nodiscard]] double start() const { return start_; }
  [[nodiscard]] double end() const { return end_; }

 private:
  const mesh::IceGeometry* geom_;
  double anomaly_, start_, end_;
};

/// PISM PAYearlyCycle style: baseline plus a seasonal sinusoid
/// amplitude * sin(2 pi (t - phase) / period).  The cycle integrates to
/// zero over a whole period, so long-run volume trends stay those of the
/// baseline.
class YearlyCycleForcing final : public Forcing {
 public:
  YearlyCycleForcing(const mesh::IceGeometry& geom, double amplitude,
                     double period, double phase);
  [[nodiscard]] double smb(double x, double y, double t) const override;
  [[nodiscard]] std::string spec() const override;
  [[nodiscard]] double amplitude() const { return amplitude_; }
  [[nodiscard]] double period() const { return period_; }
  [[nodiscard]] double phase() const { return phase_; }

 private:
  const mesh::IceGeometry* geom_;
  double amplitude_, period_, phase_;
};

/// Parses a forcing spec string (grammar above).  The geometry provides
/// the baseline SMB field and must outlive the returned forcing.  Throws
/// mali::Error on any malformed spec — never crashes, never returns null.
[[nodiscard]] std::unique_ptr<Forcing> make_forcing(
    const std::string& spec, const mesh::IceGeometry& geom);

}  // namespace mali::timestepping
