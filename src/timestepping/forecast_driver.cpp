#include "timestepping/forecast_driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "linalg/semicoarsening_amg.hpp"
#include "physics/depth_average.hpp"
#include "portability/common.hpp"
#include "resilience/guards.hpp"

namespace mali::timestepping {

namespace {

bool all_finite(const std::vector<double>& v) {
  for (const double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

ForecastDriver::ForecastDriver(physics::StokesFOProblem& problem,
                               ForecastConfig cfg)
    : problem_(&problem),
      cfg_(std::move(cfg)),
      fv_(problem.mesh().base(), cfg_.transport),
      forcing_(make_forcing(cfg_.forcing, problem.geometry())),
      controller_(cfg_.controller) {
  MALI_CHECK_MSG(std::isfinite(cfg_.years) && cfg_.years > 0.0,
                 "ForecastConfig.years must be positive and finite");
  MALI_CHECK_MSG(cfg_.checkpoint_every >= 0,
                 "ForecastConfig.checkpoint_every must be >= 0");
  MALI_CHECK_MSG(cfg_.checkpoint_every == 0 || !cfg_.checkpoint_path.empty(),
                 "ForecastConfig.checkpoint_path required when "
                 "checkpoint_every > 0");
  if (cfg_.thermal_enabled) {
    thermal_ = std::make_unique<physics::ThermalModel>(problem.mesh(),
                                                       problem.geometry());
  }
  if (cfg_.ranks <= 1) {
    precond_ = cfg_.make_precond
                   ? cfg_.make_precond(problem)
                   : std::make_unique<linalg::SemicoarseningAmg>(
                         problem.extrusion_info(), linalg::AmgConfig{});
  }

  // Initial prognostic state from the geometry; a restart overwrites it.
  const auto& base = problem.mesh().base();
  H_.resize(base.n_cells());
  for (std::size_t c = 0; c < H_.size(); ++c) {
    double x, y;
    base.cell_centroid(c, x, y);
    H_[c] = problem.geometry().thickness(x, y);
  }
  U_ = problem.analytic_initial_guess();
  if (!cfg_.initial_U.empty()) {
    MALI_CHECK_MSG(cfg_.initial_U.size() == U_.size(),
                   "ForecastConfig.initial_U has " +
                       std::to_string(cfg_.initial_U.size()) +
                       " entries but the problem has " +
                       std::to_string(U_.size()) + " dofs");
    MALI_CHECK_MSG(all_finite(cfg_.initial_U),
                   "ForecastConfig.initial_U contains non-finite entries");
    U_ = cfg_.initial_U;
  }
}

std::vector<double> ForecastDriver::cell_source(double t) const {
  const auto& base = problem_->mesh().base();
  std::vector<double> src(base.n_cells());
  for (std::size_t c = 0; c < src.size(); ++c) {
    double x, y;
    base.cell_centroid(c, x, y);
    src[c] = forcing_->smb(x, y, t);
  }
  return src;
}

void ForecastDriver::apply_temperature_coupling() {
  // Capture the model by pointer: the field stays live as the thermal
  // state advances, and the problem re-evaluates A(T) at its quadrature
  // points on every call.
  physics::ThermalModel* tm = thermal_.get();
  problem_->set_temperature_field([tm](double x, double y, double sigma) {
    return tm->temperature_at(x, y, sigma);
  });
}

bool ForecastDriver::solve_velocity(ForecastResult& result,
                                    int* newton_iters) {
  ++result.velocity_solves;
  nonlinear::NewtonConfig ncfg = cfg_.newton;
  ncfg.jacobian = problem_->config().jacobian;

  if (cfg_.ranks > 1) {
    dist::DistConfig dcfg = cfg_.dist;
    dcfg.ranks = cfg_.ranks;
    dcfg.newton = ncfg;
    // The serial injector object cannot be shared across rank threads (its
    // counters are unsynchronized) — the dist path carries the SPEC
    // instead: every rank rebuilds an identical injector from it, so the
    // detection is lockstep and typed.  A one-shot spec is carried into
    // exactly one solve call (whose internal restart loop may already
    // absorb it); afterwards it is spent, mirroring the serial injector
    // firing once per forecast.
    dcfg.newton.recovery = resilience::RecoveryConfig{};
    if (cfg_.injector != nullptr && !dist_fault_spent_) {
      dcfg.inject_solver_fault = true;
      dcfg.solver_fault = cfg_.injector->spec();
      if (!dcfg.solver_fault.repeat) dist_fault_spent_ = true;
    }
    dist::DistResult r;
    dist::DistRecoveryLog rlog;
    struct LogMerge {  // the log reaches the result even when the solve throws
      dist::DistRecoveryLog* from;
      dist::DistRecoveryLog* into;
      ~LogMerge() {
        for (auto& a : from->attempts) {
          into->attempts.push_back(std::move(a));
        }
      }
    } merge{&rlog, &result.dist_recovery};
    try {
      r = dist::solve_distributed(*problem_, dcfg, &U_, &rlog);
    } catch (const resilience::CommFaultError& e) {
      // Typed comm fault that survived the restart budget: reject the step
      // (the controller backs dt off and retries, same as a solver fault).
      if (cfg_.verbose) std::printf("  velocity comm fault: %s\n", e.what());
      *newton_iters = 0;
      return false;
    } catch (const resilience::SolverFaultError& e) {
      if (cfg_.verbose) std::printf("  velocity fault: %s\n", e.what());
      *newton_iters = 0;
      return false;
    }
    const nonlinear::NewtonResult& nr = r.ranks[0].newton;
    *newton_iters = r.newton_iters;
    if (nr.faulted || !(nr.residual_norm < nr.initial_norm)) return false;
    U_ = r.U;
    return all_finite(U_);
  }

  ncfg.recovery.injector = cfg_.injector;
  const bool guards_on = cfg_.injector != nullptr;
  resilience::GuardedProblem guarded(*problem_, {}, cfg_.injector);
  resilience::GuardedPreconditioner guarded_M(*precond_, cfg_.injector);
  nonlinear::NonlinearProblem& prob =
      guards_on ? static_cast<nonlinear::NonlinearProblem&>(guarded)
                : *problem_;
  linalg::Preconditioner& M =
      guards_on ? static_cast<linalg::Preconditioner&>(guarded_M) : *precond_;

  std::vector<double> U = U_;  // keep the warm start intact on failure
  nonlinear::NewtonSolver newton(ncfg);
  nonlinear::NewtonResult r;
  try {
    r = newton.solve(prob, M, U);
  } catch (const resilience::SolverFaultError& e) {
    // Guard fault with recovery disabled or exhausted: reject the step.
    if (cfg_.verbose) std::printf("  velocity fault: %s\n", e.what());
    *newton_iters = 0;
    return false;
  }
  *newton_iters = r.iterations;
  // A solve that hit max_iters with a shrinking residual is accepted (the
  // paper's production cadence is a fixed 8 Newton steps); a fault or a
  // residual that failed to decrease rejects the step.
  if (r.faulted || !(r.residual_norm < r.initial_norm)) return false;
  if (!all_finite(U)) return false;
  U_ = std::move(U);
  return true;
}

ForecastResult ForecastDriver::run() {
  ForecastResult result;

  // The problem outlives the driver and may be rebound or remeshed between
  // run() calls (the ensemble engine re-runs drivers on shared problems).
  // A warm-start vector sized for a different mesh must never be read —
  // that was a silent stale-state bug before this check existed.
  MALI_CHECK_MSG(U_.size() == problem_->n_dofs(),
                 "ForecastDriver: warm-start velocity has " +
                     std::to_string(U_.size()) +
                     " entries but the problem now has " +
                     std::to_string(problem_->n_dofs()) +
                     " dofs — the mesh changed under the driver; construct "
                     "a new driver for the new resolution");
  MALI_CHECK_MSG(H_.size() == problem_->mesh().base().n_cells(),
                 "ForecastDriver: thickness state has " +
                     std::to_string(H_.size()) +
                     " cells but the problem's base mesh now has " +
                     std::to_string(problem_->mesh().base().n_cells()));

  if (!cfg_.restart_path.empty()) {
    const resilience::TransientCheckpoint c =
        resilience::load_transient_checkpoint(cfg_.restart_path);
    MALI_CHECK_MSG(c.H.size() == H_.size(),
                   "transient restart: thickness size mismatch");
    MALI_CHECK_MSG(c.U.size() == U_.size(),
                   "transient restart: velocity size mismatch");
    H_ = c.H;
    U_ = c.U;
    t_ = c.t;
    step_ = c.step;
    controller_.set_current(c.dt);
    if (thermal_) thermal_->set_temperatures_flat(c.T);
    have_velocity_ = true;  // U rides the checkpoint; never re-solve at k=0
  }
  if (thermal_) apply_temperature_coupling();

  result.volume_initial = fv_.volume(H_);
  const double vol_scale = std::max(result.volume_initial, 1.0);
  int retries = 0;

  while (cfg_.years - t_ > 1e-12) {
    // ---- snapshot for the reject/backoff path ----
    const std::vector<double> H0 = H_;
    const std::vector<double> U0 = U_;
    const std::vector<double> T0 =
        thermal_ ? thermal_->temperatures_flat() : std::vector<double>{};

    bool ok = true;
    int newton_iters = 0;

    // ---- velocity phase ----
    const bool need_velocity =
        cfg_.velocity_every > 0
            ? (step_ % cfg_.velocity_every == 0)
            : (cfg_.velocity_every == 0 && !have_velocity_);
    if (need_velocity) {
      pk::ScopedTimer st(result.timers, "velocity");
      ok = solve_velocity(result, &newton_iters);
      if (ok) have_velocity_ = true;
    }

    // Depth-averaged cell velocities (zero in the frozen-zero mode).
    std::vector<double> uc(fv_.n_cells(), 0.0), vc(fv_.n_cells(), 0.0);
    if (ok && cfg_.velocity_every >= 0) {
      std::vector<double> ubar, vbar;
      physics::depth_averaged_velocity(problem_->mesh(), U_, ubar, vbar);
      uc = fv_.node_to_cell(ubar);
      vc = fv_.node_to_cell(vbar);
    }

    // ---- thickness phase ----
    double dt = 0.0;
    mpas::FvTransport::StepStats stats;
    if (ok) {
      const double cfl = fv_.max_stable_dt(uc, vc);
      dt = controller_.propose(cfl, cfg_.years - t_);
      if (cfg_.evolve_thickness) {
        pk::ScopedTimer st(result.timers, "transport");
        stats = fv_.step(H_, uc, vc, cell_source(t_), dt);
        ok = all_finite(H_);
      }
    }

    // ---- thermal phase + A(T) feedback ----
    if (ok && thermal_) {
      pk::ScopedTimer st(result.timers, "thermal");
      const auto heating =
          thermal_->strain_heating(U_, problem_->config().constants);
      if (cfg_.thermal_steady) {
        thermal_->solve_steady(heating);
      } else {
        thermal_->step(dt, heating);
      }
      apply_temperature_coupling();
    }

    if (!ok) {
      // Reject: restore the pre-step state and retry with a smaller dt.
      H_ = H0;
      U_ = U0;
      if (thermal_) {
        thermal_->set_temperatures_flat(T0);
        apply_temperature_coupling();
      }
      ++result.rejections;
      ++retries;
      MALI_CHECK_MSG(controller_.on_failure(),
                     "forecast: step controller bottomed out at dt_min = " +
                         std::to_string(controller_.config().dt_min) +
                         " yr at t = " + std::to_string(t_));
      if (cfg_.verbose) {
        std::printf("  step %d rejected (retry %d): dt -> %.6g yr\n",
                    step_ + 1, retries, controller_.current());
      }
      continue;
    }

    // ---- accept ----
    controller_.on_success();
    t_ += dt;
    ++step_;
    ++result.steps;

    LedgerRow row;
    row.step = step_;
    row.t = t_;
    row.dt = dt;
    row.volume = fv_.volume(H_);
    row.smb = stats.smb_volume;
    row.calving = stats.calving_volume;
    row.clamp = stats.clamp_volume;
    const double prev_volume =
        result.ledger.empty() ? result.volume_initial
                              : result.ledger.back().volume;
    row.residual = (row.volume - prev_volume) -
                   (row.smb - row.calving + row.clamp);
    row.retries = retries;
    row.newton_iters = newton_iters;
    result.ledger.push_back(row);
    result.max_mass_residual = std::max(result.max_mass_residual,
                                        std::abs(row.residual) / vol_scale);
    retries = 0;

    if (cfg_.verbose) {
      std::printf("  step %4d  t=%9.4f yr  dt=%8.5f  vol=%.6e km^3  "
                  "smb=%+.3e  calv=%-.3e  clamp=%.3e  resid=%.1e%s\n",
                  row.step, row.t, row.dt, row.volume / 1e9, row.smb,
                  row.calving, row.clamp, row.residual,
                  newton_iters > 0
                      ? (" newton=" + std::to_string(newton_iters)).c_str()
                      : "");
    }

    if (cfg_.checkpoint_every > 0 && step_ % cfg_.checkpoint_every == 0) {
      pk::ScopedTimer st(result.timers, "io");
      resilience::TransientCheckpoint c;
      c.H = H_;
      c.T = thermal_ ? thermal_->temperatures_flat() : std::vector<double>{};
      c.U = U_;
      c.t = t_;
      c.dt = controller_.current();
      c.step = step_;
      c.valid = true;
      c.save(cfg_.checkpoint_path);
    }
  }

  result.completed = true;
  result.t_final = t_;
  result.volume_final = fv_.volume(H_);
  result.H = H_;
  result.U = U_;
  if (thermal_) result.T = thermal_->temperatures_flat();
  result.mean_velocity = problem_->mean_velocity(U_);
  return result;
}

}  // namespace mali::timestepping
