#include "timestepping/forcing.hpp"

#include <cmath>
#include <cstdlib>
#include <map>

#include "portability/common.hpp"
#include "util/fp_format.hpp"

namespace mali::timestepping {

namespace {

// Spec strings must reparse bitwise (parse(f.spec()) == f), so every double
// goes through the repo-wide shortest-round-trip formatter.
std::string fmt(double v) { return util::format_double(v); }

/// Parses "key=value,key=value..." with every value a finite double.
/// Throws mali::Error on syntax errors, duplicate or unknown keys.
std::map<std::string, double> parse_kv(const std::string& body,
                                       const std::string& spec,
                                       std::initializer_list<const char*> allowed) {
  std::map<std::string, double> kv;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t comma = body.find(',', pos);
    const std::string item =
        body.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? body.size() : comma + 1;
    const std::size_t eq = item.find('=');
    MALI_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "forcing spec: expected key=value, got '" + item +
                       "' in '" + spec + "'");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    bool known = false;
    for (const char* a : allowed) known = known || key == a;
    MALI_CHECK_MSG(known, "forcing spec: unknown key '" + key + "' in '" +
                              spec + "'");
    MALI_CHECK_MSG(kv.count(key) == 0,
                   "forcing spec: duplicate key '" + key + "' in '" + spec +
                       "'");
    MALI_CHECK_MSG(!val.empty(),
                   "forcing spec: empty value for '" + key + "' in '" + spec +
                       "'");
    char* end = nullptr;
    const double v = std::strtod(val.c_str(), &end);
    MALI_CHECK_MSG(end == val.c_str() + val.size() && std::isfinite(v),
                   "forcing spec: value for '" + key +
                       "' is not a finite number in '" + spec + "'");
    kv[key] = v;
  }
  return kv;
}

double get_or(const std::map<std::string, double>& kv, const char* key,
              double dflt) {
  const auto it = kv.find(key);
  return it == kv.end() ? dflt : it->second;
}

}  // namespace

// ---- ConstantForcing -------------------------------------------------

double ConstantForcing::smb(double x, double y, double) const {
  return geom_->surface_mass_balance(x, y) + offset_;
}

std::string ConstantForcing::spec() const {
  // Only +0.0 may collapse to the bare form: -0.0 compares == 0.0 but is a
  // different bit pattern, and the round-trip contract is bitwise.
  if (offset_ == 0.0 && !std::signbit(offset_)) return "constant";
  return "constant:offset=" + fmt(offset_);
}

// ---- AnomalyRampForcing ----------------------------------------------

AnomalyRampForcing::AnomalyRampForcing(const mesh::IceGeometry& geom,
                                       double anomaly, double start,
                                       double end)
    : geom_(&geom), anomaly_(anomaly), start_(start), end_(end) {
  MALI_CHECK_MSG(end_ > start_, "forcing spec: ramp end must be > start");
}

double AnomalyRampForcing::smb(double x, double y, double t) const {
  double ramp = (t - start_) / (end_ - start_);
  ramp = ramp < 0.0 ? 0.0 : (ramp > 1.0 ? 1.0 : ramp);
  return geom_->surface_mass_balance(x, y) + anomaly_ * ramp;
}

std::string AnomalyRampForcing::spec() const {
  return "ramp:anomaly=" + fmt(anomaly_) + ",start=" + fmt(start_) +
         ",end=" + fmt(end_);
}

// ---- YearlyCycleForcing ----------------------------------------------

YearlyCycleForcing::YearlyCycleForcing(const mesh::IceGeometry& geom,
                                       double amplitude, double period,
                                       double phase)
    : geom_(&geom), amplitude_(amplitude), period_(period), phase_(phase) {
  MALI_CHECK_MSG(period_ > 0.0, "forcing spec: cycle period must be > 0");
}

double YearlyCycleForcing::smb(double x, double y, double t) const {
  return geom_->surface_mass_balance(x, y) +
         amplitude_ * std::sin(2.0 * M_PI * (t - phase_) / period_);
}

std::string YearlyCycleForcing::spec() const {
  return "cycle:amplitude=" + fmt(amplitude_) + ",period=" + fmt(period_) +
         ",phase=" + fmt(phase_);
}

// ---- factory ---------------------------------------------------------

std::unique_ptr<Forcing> make_forcing(const std::string& spec,
                                      const mesh::IceGeometry& geom) {
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const std::string body =
      colon == std::string::npos ? "" : spec.substr(colon + 1);

  if (name == "constant") {
    const auto kv = parse_kv(body, spec, {"offset"});
    return std::make_unique<ConstantForcing>(geom, get_or(kv, "offset", 0.0));
  }
  if (name == "ramp") {
    const auto kv = parse_kv(body, spec, {"anomaly", "start", "end"});
    MALI_CHECK_MSG(kv.count("anomaly") == 1,
                   "forcing spec: ramp requires anomaly= in '" + spec + "'");
    return std::make_unique<AnomalyRampForcing>(
        geom, kv.at("anomaly"), get_or(kv, "start", 0.0),
        get_or(kv, "end", get_or(kv, "start", 0.0) + 1.0));
  }
  if (name == "cycle") {
    const auto kv = parse_kv(body, spec, {"amplitude", "period", "phase"});
    MALI_CHECK_MSG(kv.count("amplitude") == 1,
                   "forcing spec: cycle requires amplitude= in '" + spec +
                       "'");
    return std::make_unique<YearlyCycleForcing>(
        geom, kv.at("amplitude"), get_or(kv, "period", 1.0),
        get_or(kv, "phase", 0.0));
  }
  MALI_CHECK_MSG(false, "forcing spec: unknown forcing '" + name + "' in '" +
                            spec + "' (constant | ramp | cycle)");
  return nullptr;  // unreachable
}

}  // namespace mali::timestepping
