#pragma once
// Closed-form reduction-latency accounting for the Krylov solvers — the
// synchronization counterpart of the byte models in data_movement.hpp.
//
// At scale the allreduce latency, not arithmetic or bandwidth, bounds each
// Krylov iteration: every dot product is a blocking collective whose cost
// grows like log2(ranks) network hops.  The model below counts reductions
// per iteration for the classic and pipelined solvers and converts them to
// modeled synchronization time with the same Slingshot-style constants
// gpusim::NetworkModel uses, so benches can print the analytic expectation
// next to the measured numbers (the ROADMAP's model-vs-measured idiom).
//
// Reduction counts per iteration, by construction of the solvers:
//   classic GMRES, Arnoldi step j:  1 (pre-orth norm) + j+1 (MGS dots)
//                                   + 1 (post-orth norm)        = j + 3
//   pipelined GMRES, any step:      1 fused batch (j+2 values)  = 1
//   classic CG:                     p^T A p + ||r|| + z^T r     = 3
//   pipelined CG:                   1 fused batch (3 values)    = 1
// (Cycle-constant setup reductions — ||b||, the restart residual norm, the
// true-residual confirm — are excluded: they do not scale with iterations.)

#include <cmath>
#include <cstddef>

namespace mali::perf {

/// Latency model for the per-iteration reduction traffic of a Krylov solve.
struct ReductionLatencyModel {
  int ranks = 1;
  std::size_t restart = 100;           ///< GMRES cycle length m
  double message_latency_s = 2.0e-6;   ///< per hop (gpusim::NetworkModel)
  double nic_bw_bytes_per_s = 25.0e9;  ///< Slingshot-11 per direction

  /// Reductions classic GMRES issues at Arnoldi step j (0-based).
  [[nodiscard]] static std::size_t classic_gmres_reductions(std::size_t j) {
    return j + 3;
  }
  /// Average over a full restart cycle: sum_{j=0}^{m-1} (j+3) / m.
  [[nodiscard]] double classic_gmres_avg_reductions() const {
    const double m = static_cast<double>(restart);
    return (m + 5.0) / 2.0;
  }
  [[nodiscard]] static constexpr double pipelined_reductions() { return 1.0; }
  [[nodiscard]] static constexpr double classic_cg_reductions() { return 3.0; }

  /// Modeled wall-clock of one allreduce of `values` doubles: a
  /// reduce+broadcast tree is 2*ceil(log2(ranks)) hops, each paying the
  /// message latency plus the (tiny) payload serialization.
  [[nodiscard]] double allreduce_latency_s(std::size_t values) const {
    if (ranks <= 1) return 0.0;
    const double hops =
        2.0 * std::ceil(std::log2(static_cast<double>(ranks)));
    const double payload =
        static_cast<double>(values) * 8.0 / nic_bw_bytes_per_s;
    return hops * (message_latency_s + payload);
  }

  /// Modeled synchronization time per iteration.  Classic GMRES pays its
  /// j+3 scalar reductions back to back; the pipelined solver pays ONE
  /// batched reduction — and overlaps it with the operator apply, so any
  /// apply slower than one allreduce hides the reduction entirely (the
  /// exposed time reported here is the un-overlapped upper bound).
  [[nodiscard]] double classic_gmres_sync_per_iter_s() const {
    return classic_gmres_avg_reductions() * allreduce_latency_s(1);
  }
  [[nodiscard]] double pipelined_gmres_sync_per_iter_s() const {
    // Average fused batch width over a cycle: j+2 values at step j.
    const double m = static_cast<double>(restart);
    const double avg_values = (m + 3.0) / 2.0;
    return allreduce_latency_s(
        static_cast<std::size_t>(std::ceil(avg_values)));
  }
  [[nodiscard]] double classic_cg_sync_per_iter_s() const {
    return classic_cg_reductions() * allreduce_latency_s(1);
  }
  [[nodiscard]] double pipelined_cg_sync_per_iter_s() const {
    return allreduce_latency_s(3);
  }

  /// Classic-over-pipelined modeled sync ratio (GMRES) — the headroom
  /// latency-hiding buys before any overlap is even counted.
  [[nodiscard]] double gmres_sync_ratio() const {
    const double p = pipelined_gmres_sync_per_iter_s();
    return p > 0.0 ? classic_gmres_sync_per_iter_s() / p : 1.0;
  }
};

}  // namespace mali::perf
