#pragma once
// Pennycook–Sewall–Lee performance-portability metric Φ (Eq. 4 of the
// paper): the harmonic mean of an application's efficiency across a set of
// platforms, or zero if any platform is unsupported.

#include <string>
#include <vector>

namespace mali::perf {

/// Efficiency of one application/problem pair on one platform, in [0, 1].
/// `supported == false` makes Φ collapse to zero, per the metric's
/// definition.
struct PlatformEfficiency {
  std::string platform;
  double efficiency = 0.0;
  bool supported = true;
};

/// Φ(a, p, H) = |H| / Σ 1/e_i  if supported on all platforms, else 0.
[[nodiscard]] inline double phi(const std::vector<PlatformEfficiency>& effs) {
  if (effs.empty()) return 0.0;
  double inv_sum = 0.0;
  for (const auto& e : effs) {
    if (!e.supported || e.efficiency <= 0.0) return 0.0;
    inv_sum += 1.0 / e.efficiency;
  }
  return static_cast<double>(effs.size()) / inv_sum;
}

/// Convenience overload for plain efficiency values.
[[nodiscard]] inline double phi(const std::vector<double>& effs) {
  std::vector<PlatformEfficiency> v;
  v.reserve(effs.size());
  for (double e : effs) v.push_back({"", e, true});
  return phi(v);
}

}  // namespace mali::perf
