#pragma once
// Closed-form theoretical minimum data movement for the StokesFOResid
// kernels, computed the way the paper describes: from the multidimensional
// array shapes and the number of unique reads/writes the numerical method
// requires.  This is the analytic counterpart of
// gpusim::ExecModel::theoretical_min_bytes (which derives the same quantity
// from the recorded trace); the two are cross-checked in the tests.

#include <cstddef>
#include <string>
#include <vector>

namespace mali::perf {

/// Description of one array the kernel touches.
struct ArrayAccessSpec {
  std::string name;
  std::size_t elements_per_cell = 0;  ///< unique elements per cell
  std::size_t elem_bytes = 0;
  bool is_output = false;  ///< outputs count writes; inputs count reads
};

/// Minimum bytes per cell: every unique input element read once from HBM,
/// every unique output element written once.
[[nodiscard]] inline std::size_t min_bytes_per_cell(
    const std::vector<ArrayAccessSpec>& arrays) {
  std::size_t b = 0;
  for (const auto& a : arrays) b += a.elements_per_cell * a.elem_bytes;
  return b;
}

/// The StokesFOResid array set for a hexahedral workset.
/// `scalar_bytes` is sizeof(double) for the Residual evaluation and
/// sizeof(SFad<double,16>) for the Jacobian — the paper's "the Jacobian
/// kernel is expected to move 16 times more data".
[[nodiscard]] inline std::vector<ArrayAccessSpec> stokes_fo_resid_arrays(
    std::size_t num_nodes, std::size_t num_qps, std::size_t scalar_bytes,
    std::size_t mesh_scalar_bytes = sizeof(double)) {
  const std::size_t dims = 3;
  const std::size_t vec = 2;  // velocity components
  return {
      {"Ugrad", num_qps * vec * dims, scalar_bytes, false},
      {"muLandIce", num_qps, scalar_bytes, false},
      {"force", num_qps * vec, scalar_bytes, false},
      {"wGradBF", num_nodes * num_qps * dims, mesh_scalar_bytes, false},
      {"wBF", num_nodes * num_qps, mesh_scalar_bytes, false},
      {"Residual", num_nodes * vec, scalar_bytes, true},
  };
}

/// Minimum bytes for a full workset.
[[nodiscard]] inline std::size_t stokes_fo_resid_min_bytes(
    std::size_t n_cells, std::size_t num_nodes, std::size_t num_qps,
    std::size_t scalar_bytes) {
  return n_cells * min_bytes_per_cell(stokes_fo_resid_arrays(
                       num_nodes, num_qps, scalar_bytes));
}

/// The SIMD-batched fused residual's array set (FusedStokesChainBatched):
/// the kernel reads only nodal velocities, nodal coordinates and the per-qp
/// body force, recomputing geometry in pack registers, so the streamed
/// wGradBF/wBF/Ugrad/mu arrays of the staged chain disappear.  Reference
/// basis data (ref_grad/ref_val/qp_weight) is shared across all cells and
/// stays cache-resident — it is excluded, exactly as the per-cell byte
/// models above exclude it.  `thermal` adds the per-qp flow factor A(T).
[[nodiscard]] inline std::vector<ArrayAccessSpec> batched_fused_resid_arrays(
    std::size_t num_nodes, std::size_t num_qps, bool thermal = false) {
  const std::size_t dims = 3;
  const std::size_t vec = 2;
  std::vector<ArrayAccessSpec> arrays = {
      {"UNodal", num_nodes * vec, sizeof(double), false},
      {"coords", num_nodes * dims, sizeof(double), false},
      {"force", num_qps * vec, sizeof(double), false},
      {"Residual", num_nodes * vec, sizeof(double), true},
  };
  if (thermal) {
    arrays.push_back({"flow_factor", num_qps, sizeof(double), false});
  }
  return arrays;
}

/// Minimum bytes per batched fused-residual workset (72 doubles/cell for
/// hex8, 80 with the thermal flow factor — vs ~496 for the streamed chain).
[[nodiscard]] inline std::size_t batched_fused_resid_min_bytes(
    std::size_t n_cells, std::size_t num_nodes, std::size_t num_qps,
    bool thermal = false) {
  return n_cells *
         min_bytes_per_cell(batched_fused_resid_arrays(num_nodes, num_qps,
                                                       thermal));
}

// ---------------------------------------------------------------------------
// Jacobian-apply data movement: assembled SpMV vs matrix-free tangent.
//
// In the assembled path the steady-state GMRES traffic is the CRS matrix
// stream — nnz values + nnz column indices + the row pointer — plus the in
// and out vectors, *every* iteration.  The matrix-free apply replaces that
// with per-cell reads of connectivity, nodal coordinates, the solution
// state, and the direction, recomputing the cell geometry in registers
// (fem/cell_geometry.cpp math, no wGradBF/wBF stream) and scattering the
// per-cell tangent back.  Because the CRS stream is ~nnz/row * 16 bytes per
// row while the matrix-free reads are O(nodal data) per cell, the modeled
// bytes/GMRES-iteration drop strictly below the assembled path — the lever
// on the paper's e_DM this PR pulls.
// ---------------------------------------------------------------------------

/// Byte model for one operator apply y = J x on the FO Stokes mesh.
struct JacobianApplyModel {
  std::size_t n_rows = 0;        ///< matrix rows (2 dofs/node)
  std::size_t nnz = 0;           ///< assembled CRS nonzeros
  std::size_t n_cells = 0;       ///< hexahedral cells
  std::size_t n_nodes = 0;       ///< mesh nodes
  std::size_t num_nodes = 8;     ///< nodes per cell
  std::size_t n_basal_faces = 0; ///< layer-0 faces (0 in MMS mode)
  std::size_t face_qps = 4;      ///< face quadrature points
  static constexpr std::size_t kIdx = sizeof(std::size_t);
  static constexpr std::size_t kVal = sizeof(double);

  /// Streamed bytes of the assembled CRS SpMV: the full matrix (values +
  /// column indices + row pointer) plus x read once and y written once.
  [[nodiscard]] std::size_t assembled_stream_bytes() const {
    return nnz * (kVal + kIdx) + (n_rows + 1) * kIdx + 2 * n_rows * kVal;
  }

  /// Theoretical minimum for the assembled SpMV — identical to the stream:
  /// every stored entry must be read at least once, so the CRS stream is
  /// irreducible.  (The matrix-free apply escapes this bound by changing
  /// the algorithm, not by caching.)
  [[nodiscard]] std::size_t assembled_min_bytes() const {
    return assembled_stream_bytes();
  }

  /// Streamed bytes of the matrix-free tangent apply, per the kernel's
  /// actual array traffic: connectivity + nodal coords + U + x gathers,
  /// the per-cell Tangent write + scatter read, the y read-modify-write in
  /// the scatter, and the basal-face arrays.  No wGradBF/wBF/gradBF and no
  /// matrix stream — geometry is recomputed in registers.
  [[nodiscard]] std::size_t matrix_free_stream_bytes() const {
    const std::size_t per_cell =
        num_nodes * kIdx +            // cell_nodes
        num_nodes * 3 * kVal +        // coords
        num_nodes * 2 * kVal +        // U gather
        num_nodes * 2 * kVal +        // x gather
        2 * num_nodes * 2 * kVal +    // Tangent write + scatter read
        2 * num_nodes * 2 * kVal;     // y read-modify-write in the scatter
    const std::size_t per_face =
        kIdx +                        // face -> cell
        kVal +                        // beta
        4 * face_qps * kVal +         // face wBF
        2 * 4 * 2 * kVal;             // Tangent read-modify-write (4 nodes)
    return n_cells * per_cell + n_basal_faces * per_face;
  }

  /// Theoretical minimum for the matrix-free apply: each unique input read
  /// once (U, x, nodal coords, connectivity), y written once.
  [[nodiscard]] std::size_t matrix_free_min_bytes() const {
    return 2 * n_rows * kVal +          // U + x, unique
           n_nodes * 3 * kVal +         // unique nodal coordinates
           n_cells * num_nodes * kIdx + // connectivity (irreducible)
           n_rows * kVal;               // y written once
  }
};

// ---------------------------------------------------------------------------
// Operator-probed MDSC-AMG data movement: what making the production
// preconditioner consumable by the matrix-free path costs and saves.
//
// Setup pays a constant number of probe operator applies (27 * dofs/node on
// the extruded lattice) plus one stream of each level's CRS matrix for the
// Galerkin build; that cost is amortized over every GMRES iteration of the
// Newton step.  Per V-cycle, each level streams its matrix once per
// smoother sweep and once per residual — except a matrix-free fine level
// (Chebyshev smoother), where level-0 work runs through the operator apply
// and the probed matrix is never streamed after setup.
// ---------------------------------------------------------------------------

/// Byte model for the probed-AMG setup and V-cycle on the FO Stokes mesh.
struct AmgCycleModel {
  /// Bytes of one fine operator apply (JacobianApplyModel::
  /// matrix_free_stream_bytes(), or assembled_stream_bytes() when the fine
  /// operator is an assembled SpMV).
  std::size_t fine_apply_bytes = 0;
  std::size_t probe_applies = 0;       ///< colored probe applies at setup
  std::vector<std::size_t> level_rows; ///< dofs per level (0 = fine)
  std::vector<std::size_t> level_nnz;  ///< CRS nonzeros per level
  int pre_sweeps = 1;
  int post_sweeps = 1;
  /// Operator applies per Chebyshev smoother application (SGS streams the
  /// level matrix twice per sweep instead).
  int cheb_degree = 3;
  /// True when level-0 smoothing/residuals run through the live operator
  /// (probed + Chebyshev mode) instead of streaming the probed matrix.
  bool fine_matrix_free = false;
  static constexpr std::size_t kIdx = sizeof(std::size_t);
  static constexpr std::size_t kVal = sizeof(double);

  /// One CRS stream of level l (values + columns + row pointer + in/out
  /// vectors) — the SpMV traffic a smoother sweep or residual pays.
  [[nodiscard]] std::size_t level_stream_bytes(std::size_t l) const {
    return level_nnz[l] * (kVal + kIdx) + (level_rows[l] + 1) * kIdx +
           2 * level_rows[l] * kVal;
  }

  /// Bytes one application of level l's smoother moves.
  [[nodiscard]] std::size_t smoother_bytes(std::size_t l) const {
    const std::size_t apply =
        (l == 0 && fine_matrix_free) ? fine_apply_bytes
                                     : level_stream_bytes(l);
    if (fine_matrix_free) {
      // Chebyshev: degree operator applies + the diagonal/vector work.
      return static_cast<std::size_t>(cheb_degree) * apply +
             3 * level_rows[l] * kVal;
    }
    // SGS: forward + backward sweep each stream the matrix once.
    return 2 * apply;
  }

  /// Bytes one apply of level l pays for the residual r = b - A z.
  [[nodiscard]] std::size_t residual_bytes(std::size_t l) const {
    return (l == 0 && fine_matrix_free) ? fine_apply_bytes
                                        : level_stream_bytes(l);
  }

  /// Setup traffic: the probe applies plus one Galerkin stream per level
  /// (each coarse matrix is built by streaming the finer one once).
  [[nodiscard]] std::size_t setup_bytes() const {
    std::size_t b = probe_applies * fine_apply_bytes;
    for (std::size_t l = 0; l < level_nnz.size(); ++l) {
      b += level_stream_bytes(l);
    }
    return b;
  }

  /// One V-cycle: per non-coarsest level, pre/post smoothing plus two
  /// residual computations and the (vector-sized) transfer traffic; the
  /// coarsest level is one matrix stream (dense solve or SGS fallback on a
  /// level sized coarse_max_dofs, negligible either way).
  [[nodiscard]] std::size_t vcycle_bytes() const {
    if (level_nnz.empty()) return 0;
    std::size_t b = 0;
    for (std::size_t l = 0; l + 1 < level_nnz.size(); ++l) {
      b += static_cast<std::size_t>(pre_sweeps + post_sweeps) *
               smoother_bytes(l) +
           2 * residual_bytes(l) + 4 * level_rows[l] * kVal;
    }
    b += level_stream_bytes(level_nnz.size() - 1);
    return b;
  }
};

}  // namespace mali::perf
