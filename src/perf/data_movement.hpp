#pragma once
// Closed-form theoretical minimum data movement for the StokesFOResid
// kernels, computed the way the paper describes: from the multidimensional
// array shapes and the number of unique reads/writes the numerical method
// requires.  This is the analytic counterpart of
// gpusim::ExecModel::theoretical_min_bytes (which derives the same quantity
// from the recorded trace); the two are cross-checked in the tests.

#include <cstddef>
#include <string>
#include <vector>

namespace mali::perf {

/// Description of one array the kernel touches.
struct ArrayAccessSpec {
  std::string name;
  std::size_t elements_per_cell = 0;  ///< unique elements per cell
  std::size_t elem_bytes = 0;
  bool is_output = false;  ///< outputs count writes; inputs count reads
};

/// Minimum bytes per cell: every unique input element read once from HBM,
/// every unique output element written once.
[[nodiscard]] inline std::size_t min_bytes_per_cell(
    const std::vector<ArrayAccessSpec>& arrays) {
  std::size_t b = 0;
  for (const auto& a : arrays) b += a.elements_per_cell * a.elem_bytes;
  return b;
}

/// The StokesFOResid array set for a hexahedral workset.
/// `scalar_bytes` is sizeof(double) for the Residual evaluation and
/// sizeof(SFad<double,16>) for the Jacobian — the paper's "the Jacobian
/// kernel is expected to move 16 times more data".
[[nodiscard]] inline std::vector<ArrayAccessSpec> stokes_fo_resid_arrays(
    std::size_t num_nodes, std::size_t num_qps, std::size_t scalar_bytes,
    std::size_t mesh_scalar_bytes = sizeof(double)) {
  const std::size_t dims = 3;
  const std::size_t vec = 2;  // velocity components
  return {
      {"Ugrad", num_qps * vec * dims, scalar_bytes, false},
      {"muLandIce", num_qps, scalar_bytes, false},
      {"force", num_qps * vec, scalar_bytes, false},
      {"wGradBF", num_nodes * num_qps * dims, mesh_scalar_bytes, false},
      {"wBF", num_nodes * num_qps, mesh_scalar_bytes, false},
      {"Residual", num_nodes * vec, scalar_bytes, true},
  };
}

/// Minimum bytes for a full workset.
[[nodiscard]] inline std::size_t stokes_fo_resid_min_bytes(
    std::size_t n_cells, std::size_t num_nodes, std::size_t num_qps,
    std::size_t scalar_bytes) {
  return n_cells * min_bytes_per_cell(stokes_fo_resid_arrays(
                       num_nodes, num_qps, scalar_bytes));
}

}  // namespace mali::perf
