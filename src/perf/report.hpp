#pragma once
// Minimal fixed-width ASCII table writer used by the benches to print
// paper-shaped tables (Tables II–IV) and CSV series (Figs. 3 and 5).

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "portability/common.hpp"

namespace mali::perf {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  Table& add_row(std::vector<std::string> row) {
    MALI_CHECK(row.size() == header_.size());
    rows_.push_back(std::move(row));
    return *this;
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> w(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        w[c] = std::max(w[c], r[c].size());
      }
    }
    auto line = [&] {
      os << '+';
      for (auto cw : w) os << std::string(cw + 2, '-') << '+';
      os << '\n';
    };
    auto row = [&](const std::vector<std::string>& r) {
      os << '|';
      for (std::size_t c = 0; c < r.size(); ++c) {
        os << ' ' << std::left << std::setw(static_cast<int>(w[c])) << r[c]
           << " |";
      }
      os << '\n';
    };
    line();
    row(header_);
    line();
    for (const auto& r : rows_) row(r);
    line();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
[[nodiscard]] inline std::string fmt(double v, int prec = 3) {
  std::ostringstream os;
  os << std::setprecision(prec) << v;
  return os.str();
}

/// Scientific notation, paper style (e.g. "5.4e-2").
[[nodiscard]] inline std::string fmt_sci(double v, int prec = 1) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(prec) << v;
  return os.str();
}

/// Percentage ("84%").
[[nodiscard]] inline std::string fmt_pct(double frac) {
  std::ostringstream os;
  os << static_cast<int>(frac * 100.0 + 0.5) << '%';
  return os.str();
}

/// Speedup ("1.54x").
[[nodiscard]] inline std::string fmt_speedup(double s, int prec = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << s << 'x';
  return os.str();
}

}  // namespace mali::perf
