#pragma once
// The paper's time-oriented performance-portability model (Figs. 4–5).
//
// A memory-bound kernel is a point in the plane (HBM bytes moved, time per
// invocation).  Two bounds frame it:
//  - the ARCHITECTURAL bound: a diagonal t = bytes / peak-BW below which
//    execution would be "faster than light";
//  - the APPLICATION bound: a vertical wall at the theoretical minimum data
//    movement, derived from array sizes and the number of reads/writes —
//    no optimization can move less.
// The intersection gives the achievable corner; observed kernels are
// compared against it through the efficiencies e_time and e_DM.

#include <string>
#include <vector>

namespace mali::perf {

/// One kernel placed in the (bytes, time) plane, plus its bounds.
struct TimeOrientedPoint {
  std::string kernel;   ///< e.g. "Jacobian"
  std::string variant;  ///< e.g. "baseline" / "optimized"
  std::string machine;  ///< e.g. "A100"

  double bytes_moved = 0.0;  ///< measured/modeled HBM bytes per invocation
  double time_s = 0.0;       ///< measured/modeled time per invocation

  double min_bytes = 0.0;    ///< application bound (theoretical minimum)
  double peak_bw = 0.0;      ///< architectural bound slope (bytes/s)

  /// Architectural bound on time at the application-bound data movement:
  /// the achievable corner of Fig. 4.
  [[nodiscard]] double min_time_s() const noexcept {
    return peak_bw > 0 ? min_bytes / peak_bw : 0.0;
  }

  /// Time-per-invocation efficiency (paper's e_time).
  [[nodiscard]] double e_time() const noexcept {
    return time_s > 0 ? min_time_s() / time_s : 0.0;
  }

  /// Data-movement efficiency (paper's e_DM); architecture-independent.
  [[nodiscard]] double e_dm() const noexcept {
    return bytes_moved > 0 ? min_bytes / bytes_moved : 0.0;
  }

  /// Time the architectural bound alone would allow for the *observed*
  /// data movement (the diagonal in Fig. 4 at x = bytes_moved).
  [[nodiscard]] double arch_bound_time_s() const noexcept {
    return peak_bw > 0 ? bytes_moved / peak_bw : 0.0;
  }
};

}  // namespace mali::perf
