#pragma once
// Classical Roofline model (Williams, Waterman, Patterson 2009), used for
// Fig. 3 of the paper: kernel performance in GFLOP/s against arithmetic
// intensity, bounded by peak memory bandwidth and peak FP64 throughput.

#include <algorithm>
#include <string>
#include <vector>

namespace mali::perf {

/// A machine's roofline: a bandwidth diagonal and a compute ceiling.
struct Roofline {
  std::string machine;
  double peak_flops;         ///< FLOP/s
  double peak_bw;            ///< bytes/s

  /// Attainable FLOP/s at arithmetic intensity `ai` (FLOPs/byte).
  [[nodiscard]] double attainable(double ai) const noexcept {
    return std::min(peak_flops, peak_bw * ai);
  }

  /// Machine balance: the AI at which the two bounds cross.
  [[nodiscard]] double ridge_point() const noexcept {
    return peak_flops / peak_bw;
  }

  /// Whether a kernel at this AI is memory-bound.
  [[nodiscard]] bool memory_bound(double ai) const noexcept {
    return ai < ridge_point();
  }
};

/// One measured kernel placed on the roofline.
struct RooflinePoint {
  std::string label;
  double ai = 0.0;          ///< FLOPs / HBM byte
  double gflops = 0.0;      ///< achieved GFLOP/s

  /// Fraction of the roofline at this AI (the paper's "percent of peak").
  [[nodiscard]] double fraction_of_roof(const Roofline& r) const noexcept {
    const double roof = r.attainable(ai);
    return roof > 0 ? gflops * 1e9 / roof : 0.0;
  }

  /// Fraction of peak *bandwidth* implied by the point (for memory-bound
  /// kernels; this is what "90% of peak memory bandwidth" means in Fig. 3).
  [[nodiscard]] double fraction_of_bw(const Roofline& r) const noexcept {
    return r.peak_bw > 0 ? gflops * 1e9 / ai / r.peak_bw : 0.0;
  }
};

}  // namespace mali::perf
