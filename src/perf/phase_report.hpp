#pragma once
// Per-phase assembly timing report: formats a pk::TimerRegistry (the
// problem's evaluate/kernel/scatter phase timers) as the fixed-width table
// the other perf reports use, so scatter-mode speedups are observable from
// the CLI and the benches.

#include <ostream>

#include "perf/report.hpp"
#include "portability/timer.hpp"

namespace mali::perf {

/// Builds a table of (phase, calls, total s, mean ms, share of total).
[[nodiscard]] inline Table phase_table(const pk::TimerRegistry& reg) {
  double grand = 0.0;
  for (const auto& [name, e] : reg.entries()) grand += e.total;
  Table t({"Phase", "calls", "total (s)", "mean (ms)", "share"});
  for (const auto& [name, e] : reg.entries()) {
    const double mean_ms =
        e.count > 0 ? 1e3 * e.total / static_cast<double>(e.count) : 0.0;
    t.add_row({name, std::to_string(e.count), fmt(e.total, 4),
               fmt(mean_ms, 4), grand > 0.0 ? fmt_pct(e.total / grand) : "-"});
  }
  return t;
}

inline void print_phase_report(std::ostream& os,
                               const pk::TimerRegistry& reg) {
  phase_table(reg).print(os);
}

}  // namespace mali::perf
