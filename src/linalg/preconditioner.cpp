#include "linalg/preconditioner.hpp"

#include <cmath>

#include "portability/common.hpp"

namespace mali::linalg {

// ---- Jacobi ----

void JacobiPreconditioner::compute(const CrsMatrix& A) {
  const std::size_t n = A.n_rows();
  inv_diag_.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    const double d = A.diagonal(r);
    MALI_CHECK_MSG(d != 0.0, "Jacobi: zero diagonal");
    inv_diag_[r] = 1.0 / d;
  }
}

void JacobiPreconditioner::compute(const LinearOperator& A) {
  std::vector<double> d;
  MALI_CHECK_MSG(A.diagonal(d), "Jacobi: operator cannot extract diagonal");
  const std::size_t n = A.rows();
  MALI_CHECK(d.size() == n);
  inv_diag_.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    MALI_CHECK_MSG(d[r] != 0.0, "Jacobi: zero diagonal");
    inv_diag_[r] = 1.0 / d[r];
  }
}

void JacobiPreconditioner::apply(const std::vector<double>& r,
                                 std::vector<double>& z) const {
  z.resize(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = inv_diag_[i] * r[i];
}

// ---- symmetric Gauss–Seidel ----

void SymGaussSeidelPreconditioner::compute(const CrsMatrix& A) {
  A_ = &A;
  const std::size_t n = A.n_rows();
  inv_diag_.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    const double d = A.diagonal(r);
    MALI_CHECK_MSG(d != 0.0, "SGS: zero diagonal");
    inv_diag_[r] = 1.0 / d;
  }
}

void SymGaussSeidelPreconditioner::apply(const std::vector<double>& r,
                                         std::vector<double>& z) const {
  MALI_CHECK(A_ != nullptr);
  const auto& rp = A_->row_ptr();
  const auto& cs = A_->cols();
  const auto& vs = A_->values();
  const std::size_t n = A_->n_rows();
  z.assign(n, 0.0);
  for (int s = 0; s < sweeps_; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = r[i];
      for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
        if (cs[k] != i) acc -= vs[k] * z[cs[k]];
      }
      z[i] = acc * inv_diag_[i];
    }
    for (std::size_t ii = n; ii-- > 0;) {
      double acc = r[ii];
      for (std::size_t k = rp[ii]; k < rp[ii + 1]; ++k) {
        if (cs[k] != ii) acc -= vs[k] * z[cs[k]];
      }
      z[ii] = acc * inv_diag_[ii];
    }
  }
}

// ---- ILU(0) ----

void Ilu0Preconditioner::compute(const CrsMatrix& A) {
  A_ = &A;
  const auto& rp = A.row_ptr();
  const auto& cs = A.cols();
  luv_ = A.values();
  const std::size_t n = A.n_rows();

  diag_.assign(n, CrsMatrix::npos);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
      if (cs[k] == i) {
        diag_[i] = k;
        break;
      }
    }
    MALI_CHECK_MSG(diag_[i] != CrsMatrix::npos, "ILU0: missing diagonal");
  }

  // IKJ-variant ILU(0) restricted to the sparsity pattern.
  std::vector<std::size_t> pos(n, CrsMatrix::npos);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) pos[cs[k]] = k;
    for (std::size_t k = rp[i]; k < rp[i + 1] && cs[k] < i; ++k) {
      const std::size_t j = cs[k];
      const double piv = luv_[diag_[j]];
      MALI_CHECK_MSG(piv != 0.0, "ILU0: zero pivot");
      const double lij = luv_[k] / piv;
      luv_[k] = lij;
      for (std::size_t kk = diag_[j] + 1; kk < rp[j + 1]; ++kk) {
        const std::size_t p = pos[cs[kk]];
        if (p != CrsMatrix::npos) luv_[p] -= lij * luv_[kk];
      }
    }
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) pos[cs[k]] = CrsMatrix::npos;
  }
}

void Ilu0Preconditioner::apply(const std::vector<double>& r,
                               std::vector<double>& z) const {
  MALI_CHECK(A_ != nullptr);
  const auto& rp = A_->row_ptr();
  const auto& cs = A_->cols();
  const std::size_t n = A_->n_rows();
  z = r;
  // Forward solve (unit lower).
  for (std::size_t i = 0; i < n; ++i) {
    double acc = z[i];
    for (std::size_t k = rp[i]; k < rp[i + 1] && cs[k] < i; ++k) {
      acc -= luv_[k] * z[cs[k]];
    }
    z[i] = acc;
  }
  // Backward solve (upper).
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = z[ii];
    for (std::size_t k = diag_[ii] + 1; k < rp[ii + 1]; ++k) {
      acc -= luv_[k] * z[cs[k]];
    }
    z[ii] = acc / luv_[diag_[ii]];
  }
}

}  // namespace mali::linalg
