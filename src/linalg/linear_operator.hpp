#pragma once
// Abstract linear-operator interface for the Krylov solvers.
//
// The paper's time-oriented model bounds solver cost by HBM bytes moved, and
// in the assembled path the dominant steady-state traffic is streaming the
// CRS Jacobian through GMRES every iteration.  Abstracting the solvers over
// `y = A x` (instead of a concrete CrsMatrix) lets a matrix-free Jacobian
// apply remove that stream entirely: the operator recomputes the action of J
// per element from the solution state, and no global matrix is ever formed.
//
// Contract (see DESIGN.md §9):
//  * `apply(x, y)` computes y = A x.  `x` and `y` must be distinct vectors
//    (aliased in/out is rejected), `x.size() == cols()`, and `y` is resized
//    to `rows()` and fully overwritten.
//  * `diagonal` / `block_diagonal` are optional capabilities (return false
//    when unsupported) used to build Jacobi-type preconditioners without an
//    assembled matrix.
//  * `matrix()` exposes the underlying CrsMatrix when one exists, so
//    matrix-dependent preconditioners (ILU, SGS, AMG) can keep working on
//    the assembled path and fail loudly on the matrix-free one.

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "linalg/crs_matrix.hpp"
#include "portability/common.hpp"

namespace mali::linalg {

/// Index of the first NaN/Inf entry of v, or -1 when every entry is
/// finite.  The validation primitive behind the resilience guards and the
/// Krylov solvers' non-finite breakdown exits (a single poisoned entry in
/// an operator-apply output would otherwise contaminate every subsequent
/// inner product silently).
[[nodiscard]] inline std::ptrdiff_t first_non_finite(
    const std::vector<double>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  [[nodiscard]] virtual std::size_t rows() const = 0;
  [[nodiscard]] virtual std::size_t cols() const = 0;

  /// y = A x.  Implementations must MALI_CHECK that x and y are distinct
  /// (the apply overwrites y while still reading x) and that sizes match.
  virtual void apply(const std::vector<double>& x,
                     std::vector<double>& y) const = 0;

  /// Writes the operator diagonal into d (resized to rows()) and returns
  /// true, or returns false if the implementation cannot extract it.
  virtual bool diagonal(std::vector<double>& d) const {
    (void)d;
    return false;
  }

  /// Writes the bs x bs block diagonal (row-major blocks, rows()/bs of
  /// them, so blocks.size() == rows()*bs) and returns true, or false if
  /// unsupported.  rows() must be divisible by bs.
  virtual bool block_diagonal(int bs, std::vector<double>& blocks) const {
    (void)bs;
    (void)blocks;
    return false;
  }

  /// The assembled matrix behind this operator, or nullptr if none exists
  /// (matrix-free).  Matrix-dependent preconditioners use this to keep the
  /// assembled path unchanged.
  [[nodiscard]] virtual const CrsMatrix* matrix() const { return nullptr; }

  [[nodiscard]] virtual const char* name() const = 0;
};

/// The assembled CRS path as one LinearOperator implementation: wraps a
/// CrsMatrix by reference (the matrix must outlive the operator).
class AssembledOperator final : public LinearOperator {
 public:
  explicit AssembledOperator(const CrsMatrix& A) : A_(&A) {}

  [[nodiscard]] std::size_t rows() const override { return A_->n_rows(); }
  [[nodiscard]] std::size_t cols() const override { return A_->n_rows(); }

  void apply(const std::vector<double>& x,
             std::vector<double>& y) const override {
    MALI_CHECK_MSG(&x != &y, "AssembledOperator::apply: aliased in/out");
    MALI_CHECK(x.size() == cols());
    A_->apply(x, y);
  }

  bool diagonal(std::vector<double>& d) const override {
    const std::size_t n = A_->n_rows();
    d.resize(n);
    for (std::size_t i = 0; i < n; ++i) d[i] = A_->diagonal(i);
    return true;
  }

  bool block_diagonal(int bs, std::vector<double>& blocks) const override {
    const std::size_t n = A_->n_rows();
    MALI_CHECK(bs > 0 && n % static_cast<std::size_t>(bs) == 0);
    const auto ubs = static_cast<std::size_t>(bs);
    blocks.assign(n * ubs, 0.0);
    for (std::size_t block = 0; block < n / ubs; ++block) {
      for (std::size_t i = 0; i < ubs; ++i) {
        for (std::size_t j = 0; j < ubs; ++j) {
          blocks[(block * ubs + i) * ubs + j] =
              A_->get(block * ubs + i, block * ubs + j);
        }
      }
    }
    return true;
  }

  [[nodiscard]] const CrsMatrix* matrix() const override { return A_; }

  [[nodiscard]] const char* name() const override { return "assembled"; }

 private:
  const CrsMatrix* A_;
};

/// Which Jacobian the Newton solve uses: an assembled CRS matrix (the
/// classic path) or a matrix-free per-element apply (JFNK-style, but with
/// the exact element tangent rather than a finite-difference one).
enum class JacobianMode { kAssembled, kMatrixFree };

[[nodiscard]] inline const char* to_string(JacobianMode m) {
  switch (m) {
    case JacobianMode::kAssembled:
      return "assembled";
    case JacobianMode::kMatrixFree:
      return "matrix-free";
  }
  return "?";
}

[[nodiscard]] inline JacobianMode jacobian_mode_from_string(
    const std::string& s) {
  if (s == "assembled") return JacobianMode::kAssembled;
  if (s == "matrix-free" || s == "matrixfree" || s == "mf") {
    return JacobianMode::kMatrixFree;
  }
  throw Error("unknown jacobian mode: " + s +
              " (expected assembled|matrix-free)");
}

}  // namespace mali::linalg
