#include "linalg/crs_matrix.hpp"

#include <cmath>

#include "portability/parallel.hpp"

namespace mali::linalg {

void CrsMatrix::apply(const std::vector<double>& x,
                      std::vector<double>& y) const {
  MALI_CHECK(x.size() == n_rows());
  y.assign(n_rows(), 0.0);
  const auto* rp = row_ptr_.data();
  const auto* cs = cols_.data();
  const auto* vs = vals_.data();
  pk::parallel_for("crs_apply", n_rows(), [&, rp, cs, vs](int ri) {
    const auto r = static_cast<std::size_t>(ri);
    double acc = 0.0;
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      acc += vs[k] * x[cs[k]];
    }
    y[r] = acc;
  });
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  MALI_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  MALI_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::vector<double>& x) {
  for (auto& v : x) v *= alpha;
}

}  // namespace mali::linalg
