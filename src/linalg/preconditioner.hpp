#pragma once
// Preconditioner interface plus the pointwise preconditioners: Jacobi,
// symmetric Gauss–Seidel, and ILU(0).  The semicoarsening multigrid (the
// MDSC-AMG stand-in) lives in semicoarsening_amg.hpp.

#include <memory>
#include <vector>

#include "linalg/crs_matrix.hpp"
#include "linalg/linear_operator.hpp"

namespace mali::linalg {

/// Applies z = M^{-1} r.  `compute` must be called after matrix values
/// change (the graph is fixed).
///
/// Preconditioners may be computed either from an assembled CrsMatrix (the
/// classic entry point) or from a LinearOperator.  The operator overload
/// defaults to unwrapping `A.matrix()` when one exists; preconditioners
/// that only need the (block) diagonal override it to use the operator's
/// diagonal extraction, so they also work on matrix-free operators.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void compute(const CrsMatrix& A) = 0;
  /// Computes the preconditioner from an operator.  The default requires an
  /// assembled matrix behind the operator and fails loudly otherwise —
  /// matrix-dependent preconditioners (SGS, ILU, AMG) cannot run
  /// matrix-free.
  virtual void compute(const LinearOperator& A) {
    MALI_CHECK_MSG(A.matrix() != nullptr,
                   "preconditioner requires an assembled matrix but the "
                   "operator is matrix-free");
    compute(*A.matrix());
  }
  virtual void apply(const std::vector<double>& r,
                     std::vector<double>& z) const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Identity (no preconditioning) — the Krylov baseline.
class IdentityPreconditioner final : public Preconditioner {
 public:
  using Preconditioner::compute;
  void compute(const CrsMatrix&) override {}
  void compute(const LinearOperator&) override {}
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override {
    z = r;
  }
  [[nodiscard]] const char* name() const override { return "none"; }
};

class JacobiPreconditioner final : public Preconditioner {
 public:
  using Preconditioner::compute;
  void compute(const CrsMatrix& A) override;
  /// Uses LinearOperator::diagonal, so this works matrix-free.
  void compute(const LinearOperator& A) override;
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override;
  [[nodiscard]] const char* name() const override { return "jacobi"; }

 private:
  std::vector<double> inv_diag_;
};

/// Symmetric Gauss–Seidel: one forward and one backward sweep.
class SymGaussSeidelPreconditioner final : public Preconditioner {
 public:
  explicit SymGaussSeidelPreconditioner(int sweeps = 1) : sweeps_(sweeps) {}
  using Preconditioner::compute;  // operator form: requires A.matrix()
  void compute(const CrsMatrix& A) override;
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override;
  [[nodiscard]] const char* name() const override { return "sgs"; }

 private:
  int sweeps_;
  const CrsMatrix* A_ = nullptr;
  std::vector<double> inv_diag_;
};

/// Zero-fill incomplete LU factorization on the matrix graph.
class Ilu0Preconditioner final : public Preconditioner {
 public:
  using Preconditioner::compute;  // operator form: requires A.matrix()
  void compute(const CrsMatrix& A) override;
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override;
  [[nodiscard]] const char* name() const override { return "ilu0"; }

 private:
  const CrsMatrix* A_ = nullptr;
  std::vector<double> luv_;        ///< factor values on A's graph
  std::vector<std::size_t> diag_;  ///< index of the diagonal in each row
};

}  // namespace mali::linalg
