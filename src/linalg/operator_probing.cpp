#include "linalg/operator_probing.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "portability/common.hpp"

namespace mali::linalg {

namespace {

/// Lattice key for the column hash map (indices are non-negative after the
/// xmin/ymin shift, and continental meshes stay far below 2^32 columns).
[[nodiscard]] std::uint64_t lattice_key(std::uint64_t i, std::uint64_t j) {
  return (i << 32) | j;
}

}  // namespace

StructuredProbing::StructuredProbing(const ExtrusionInfo& info) {
  MALI_CHECK(info.levels >= 1);
  MALI_CHECK(info.n_nodes % info.levels == 0);
  const std::size_t n_cols = info.n_nodes / info.levels;
  MALI_CHECK(info.column_x.size() == n_cols &&
             info.column_y.size() == n_cols);
  MALI_CHECK(info.dofs_per_node >= 1);
  const auto dpn = static_cast<std::size_t>(info.dofs_per_node);
  const std::size_t levels = info.levels;
  const std::size_t n_dofs = info.n_nodes * dpn;

  // ---- lattice indices per column + reverse lookup ----
  double xmin = 0.0, ymin = 0.0;
  if (n_cols > 0) {
    xmin = info.column_x[0];
    ymin = info.column_y[0];
    for (std::size_t c = 0; c < n_cols; ++c) {
      xmin = std::min(xmin, info.column_x[c]);
      ymin = std::min(ymin, info.column_y[c]);
    }
  }
  std::vector<std::int64_t> ci(n_cols), cj(n_cols);
  std::unordered_map<std::uint64_t, std::size_t> col_at;
  col_at.reserve(n_cols);
  for (std::size_t c = 0; c < n_cols; ++c) {
    ci[c] = std::llround((info.column_x[c] - xmin) / info.dx);
    cj[c] = std::llround((info.column_y[c] - ymin) / info.dx);
    const bool inserted =
        col_at
            .emplace(lattice_key(static_cast<std::uint64_t>(ci[c]),
                                 static_cast<std::uint64_t>(cj[c])),
                     c)
            .second;
    MALI_CHECK_MSG(inserted,
                   "StructuredProbing: two columns share a lattice site — "
                   "ExtrusionInfo.column_x/y do not describe a dx lattice");
  }

  // ---- probe coloring: (i mod 3, j mod 3, level mod 3) x component ----
  const std::size_t n_colors = 27 * dpn;
  color_of_.resize(n_dofs);
  members_.assign(n_colors, {});
  for (std::size_t c = 0; c < n_cols; ++c) {
    const std::size_t mi = static_cast<std::size_t>(ci[c] % 3);
    const std::size_t mj = static_cast<std::size_t>(cj[c] % 3);
    for (std::size_t lev = 0; lev < levels; ++lev) {
      const std::size_t node = c * levels + lev;  // the layout contract
      const std::size_t node_color = mi * 9 + mj * 3 + (lev % 3);
      for (std::size_t comp = 0; comp < dpn; ++comp) {
        const std::size_t dof = node * dpn + comp;
        const std::size_t color = node_color * dpn + comp;
        color_of_[dof] = color;
        members_[color].push_back(dof);
      }
    }
  }
  n_probes_ = 0;
  for (const auto& m : members_) n_probes_ += m.empty() ? 0 : 1;

  // ---- structural graph: 3x3x3 lattice stencil expanded to dof blocks ----
  row_ptr_.assign(n_dofs + 1, 0);
  std::vector<std::size_t> nbr_nodes;  // per-node scratch
  // First pass counts, second pass fills (identical enumeration order).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t c = 0; c < n_cols; ++c) {
      for (std::size_t lev = 0; lev < levels; ++lev) {
        const std::size_t node = c * levels + lev;
        nbr_nodes.clear();
        for (int dj = -1; dj <= 1; ++dj) {
          for (int di = -1; di <= 1; ++di) {
            const std::int64_t ni = ci[c] + di;
            const std::int64_t nj = cj[c] + dj;
            if (ni < 0 || nj < 0) continue;
            const auto it = col_at.find(
                lattice_key(static_cast<std::uint64_t>(ni),
                            static_cast<std::uint64_t>(nj)));
            if (it == col_at.end()) continue;
            for (int dl = -1; dl <= 1; ++dl) {
              const std::int64_t nl = static_cast<std::int64_t>(lev) + dl;
              if (nl < 0 || nl >= static_cast<std::int64_t>(levels)) continue;
              nbr_nodes.push_back(it->second * levels +
                                  static_cast<std::size_t>(nl));
            }
          }
        }
        std::sort(nbr_nodes.begin(), nbr_nodes.end());
        const std::size_t row_nnz = nbr_nodes.size() * dpn;
        for (std::size_t comp = 0; comp < dpn; ++comp) {
          const std::size_t row = node * dpn + comp;
          if (pass == 0) {
            row_ptr_[row + 1] = row_nnz;
          } else {
            std::size_t p = row_ptr_[row];
            for (const std::size_t m : nbr_nodes) {
              for (std::size_t cc = 0; cc < dpn; ++cc) {
                cols_[p++] = m * dpn + cc;
              }
            }
            MALI_ASSERT(p == row_ptr_[row + 1]);
          }
        }
      }
    }
    if (pass == 0) {
      for (std::size_t r = 0; r < n_dofs; ++r) row_ptr_[r + 1] += row_ptr_[r];
      cols_.resize(row_ptr_.back());
    }
  }
}

CrsMatrix StructuredProbing::probe(const LinearOperator& A) const {
  const std::size_t n = n_dofs();
  MALI_CHECK_MSG(A.rows() == n && A.cols() == n,
                 "StructuredProbing: operator size does not match the "
                 "extrusion structure");
  CrsMatrix P(row_ptr_, cols_);
  auto& vals = P.values();

  std::vector<double> e(n), y(n);
  for (std::size_t color = 0; color < members_.size(); ++color) {
    const auto& m = members_[color];
    if (m.empty()) continue;
    std::fill(e.begin(), e.end(), 0.0);
    for (const std::size_t dof : m) e[dof] = 1.0;
    A.apply(e, y);
    // y[r] = sum over in-color columns j of A(r, j); the coloring admits at
    // most one such j per row, so y[r] is that entry verbatim.
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        if (color_of_[cols_[k]] == color) vals[k] = y[r];
      }
    }
  }
  return P;
}

}  // namespace mali::linalg
