#pragma once
// MatrixMarket (.mtx) import/export for CRS matrices and vectors — the
// interchange format Trilinos tooling uses; lets MiniMALI Jacobians be
// inspected in external tools (and external systems be loaded into the
// solvers and tests).

#include <string>
#include <vector>

#include "linalg/crs_matrix.hpp"

namespace mali::linalg {

/// Writes A in "matrix coordinate real general" format (1-based indices).
void write_matrix_market(const std::string& path, const CrsMatrix& A);

/// Reads a "matrix coordinate real general" file into a CRS matrix
/// (duplicate entries are summed, as the format allows).
[[nodiscard]] CrsMatrix read_matrix_market(const std::string& path);

/// Writes a dense vector in "matrix array real general" format (n x 1).
void write_matrix_market(const std::string& path,
                         const std::vector<double>& v);

/// Reads an n x 1 dense array file.
[[nodiscard]] std::vector<double> read_matrix_market_vector(
    const std::string& path);

}  // namespace mali::linalg
