#pragma once
// Small dense linear algebra: column-major matrices with LU factorization
// (partial pivoting), solves and inverses — the direct-solver workhorse
// behind the AMG coarse level and the block preconditioners.

#include <cmath>
#include <cstddef>
#include <vector>

#include "portability/common.hpp"

namespace mali::linalg {

/// Column-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), a_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    MALI_ASSERT(r < rows_ && c < cols_);
    return a_[r + c * rows_];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    MALI_ASSERT(r < rows_ && c < cols_);
    return a_[r + c * rows_];
  }

  [[nodiscard]] const std::vector<double>& data() const noexcept { return a_; }
  [[nodiscard]] std::vector<double>& data() noexcept { return a_; }

  /// y = A x.
  [[nodiscard]] std::vector<double> apply(const std::vector<double>& x) const {
    MALI_CHECK(x.size() == cols_);
    std::vector<double> y(rows_, 0.0);
    for (std::size_t c = 0; c < cols_; ++c) {
      const double xc = x[c];
      for (std::size_t r = 0; r < rows_; ++r) y[r] += a_[r + c * rows_] * xc;
    }
    return y;
  }

  [[nodiscard]] double frobenius_norm() const {
    double s = 0.0;
    for (double v : a_) s += v * v;
    return std::sqrt(s);
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> a_;
};

/// LU factorization with partial pivoting of a square DenseMatrix.
class DenseLu {
 public:
  DenseLu() = default;
  explicit DenseLu(DenseMatrix a) { factor(std::move(a)); }

  /// Factors A (throws mali::Error when singular).
  void factor(DenseMatrix a);

  [[nodiscard]] bool factored() const noexcept { return n_ > 0; }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Solves A x = b in place.
  void solve(std::vector<double>& x) const;

  /// Determinant from the factorization (sign includes pivoting parity).
  [[nodiscard]] double determinant() const;

  /// Explicit inverse (column-by-column solves).
  [[nodiscard]] DenseMatrix inverse() const;

 private:
  std::size_t n_ = 0;
  std::vector<double> lu_;  ///< column-major factors
  std::vector<int> piv_;
  int pivot_sign_ = 1;
};

}  // namespace mali::linalg
