#include "linalg/dense.hpp"

#include <cmath>

namespace mali::linalg {

void DenseLu::factor(DenseMatrix a) {
  MALI_CHECK_MSG(a.rows() == a.cols(), "LU requires a square matrix");
  n_ = a.rows();
  lu_ = std::move(a.data());
  piv_.assign(n_, 0);
  pivot_sign_ = 1;

  for (std::size_t k = 0; k < n_; ++k) {
    std::size_t p = k;
    double best = std::abs(lu_[k + k * n_]);
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double v = std::abs(lu_[i + k * n_]);
      if (v > best) {
        best = v;
        p = i;
      }
    }
    MALI_CHECK_MSG(best > 0.0, "dense LU: singular matrix");
    piv_[k] = static_cast<int>(p);
    if (p != k) {
      pivot_sign_ = -pivot_sign_;
      for (std::size_t j = 0; j < n_; ++j) {
        std::swap(lu_[k + j * n_], lu_[p + j * n_]);
      }
    }
    const double inv = 1.0 / lu_[k + k * n_];
    for (std::size_t i = k + 1; i < n_; ++i) lu_[i + k * n_] *= inv;
    for (std::size_t j = k + 1; j < n_; ++j) {
      const double akj = lu_[k + j * n_];
      if (akj == 0.0) continue;
      for (std::size_t i = k + 1; i < n_; ++i) {
        lu_[i + j * n_] -= lu_[i + k * n_] * akj;
      }
    }
  }
}

void DenseLu::solve(std::vector<double>& x) const {
  MALI_CHECK_MSG(factored(), "solve() before factor()");
  MALI_CHECK(x.size() == n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const auto p = static_cast<std::size_t>(piv_[k]);
    if (p != k) std::swap(x[k], x[p]);
  }
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t i = k + 1; i < n_; ++i) x[i] -= lu_[i + k * n_] * x[k];
  }
  for (std::size_t k = n_; k-- > 0;) {
    x[k] /= lu_[k + k * n_];
    for (std::size_t i = 0; i < k; ++i) x[i] -= lu_[i + k * n_] * x[k];
  }
}

double DenseLu::determinant() const {
  MALI_CHECK_MSG(factored(), "determinant() before factor()");
  double det = static_cast<double>(pivot_sign_);
  for (std::size_t k = 0; k < n_; ++k) det *= lu_[k + k * n_];
  return det;
}

DenseMatrix DenseLu::inverse() const {
  MALI_CHECK_MSG(factored(), "inverse() before factor()");
  DenseMatrix inv(n_, n_);
  std::vector<double> e(n_, 0.0);
  for (std::size_t c = 0; c < n_; ++c) {
    std::fill(e.begin(), e.end(), 0.0);
    e[c] = 1.0;
    solve(e);
    for (std::size_t r = 0; r < n_; ++r) inv(r, c) = e[r];
  }
  return inv;
}

}  // namespace mali::linalg
