#include "linalg/semicoarsening_amg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "linalg/operator_probing.hpp"
#include "portability/common.hpp"

namespace mali::linalg {

namespace {

/// Galerkin triple product A_c = P^T A P for piecewise-constant P given by
/// the aggregate map (fine dof -> coarse dof).
CrsMatrix galerkin_coarse(const CrsMatrix& A,
                          const std::vector<std::size_t>& agg,
                          std::size_t n_coarse) {
  const auto& rp = A.row_ptr();
  const auto& cs = A.cols();
  const auto& vs = A.values();
  const std::size_t n = A.n_rows();

  // Accumulate coarse rows via a per-row hash map (rows are short).
  std::vector<std::unordered_map<std::size_t, double>> rows(n_coarse);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t I = agg[i];
    auto& row = rows[I];
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
      row[agg[cs[k]]] += vs[k];
    }
  }

  std::vector<std::size_t> crp(n_coarse + 1, 0);
  for (std::size_t I = 0; I < n_coarse; ++I) crp[I + 1] = crp[I] + rows[I].size();
  std::vector<std::size_t> ccols(crp.back());
  for (std::size_t I = 0; I < n_coarse; ++I) {
    std::size_t p = crp[I];
    for (const auto& [J, v] : rows[I]) ccols[p++] = J;
    std::sort(ccols.begin() + static_cast<std::ptrdiff_t>(crp[I]),
              ccols.begin() + static_cast<std::ptrdiff_t>(crp[I + 1]));
  }
  CrsMatrix Ac(std::move(crp), std::move(ccols));
  for (std::size_t I = 0; I < n_coarse; ++I) {
    for (const auto& [J, v] : rows[I]) Ac.add(I, J, v);
  }
  return Ac;
}

}  // namespace

SemicoarseningAmg::SemicoarseningAmg(ExtrusionInfo info, AmgConfig cfg)
    : info_(std::move(info)), cfg_(cfg) {
  MALI_CHECK(info_.levels >= 1);
  MALI_CHECK(info_.n_nodes % info_.levels == 0);
}

void SemicoarseningAmg::compute(const CrsMatrix& A) {
  fine_op_ = nullptr;
  probe_applies_ = 0;
  build_hierarchy(CrsMatrix(A));
  setup_smoothers();
}

void SemicoarseningAmg::compute(const LinearOperator& A) {
  if (A.matrix() != nullptr) {
    compute(*A.matrix());
    return;
  }
  // Matrix-free: reconstruct the fine matrix by colored probing — a
  // constant 27 * dofs_per_node operator applies on the extruded lattice —
  // then reuse the assembled hierarchy build verbatim.
  fine_op_ = nullptr;
  const StructuredProbing probing(info_);
  CrsMatrix probed = probing.probe(A);
  probe_applies_ = probing.n_probes();
  build_hierarchy(std::move(probed));
  // With the Chebyshev smoother the fine level stays fully matrix-free:
  // level-0 smoothing and residuals go through the live operator (it must
  // outlive every apply() until the next compute()); the probed matrix is
  // then only streamed once per setup, during the Galerkin build.
  if (cfg_.smoother == AmgSmoother::kChebyshev) fine_op_ = &A;
  setup_smoothers();
}

void SemicoarseningAmg::build_hierarchy(CrsMatrix A_fine) {
  levels_.clear();
  use_direct_coarse_ = false;

  // Recycled path: the aggregation maps are a pure function of the
  // ExtrusionInfo, so once cached they replay exactly — only the Galerkin
  // products run against the new matrix values.  Bit-identical to a fresh
  // build by construction (the derivation below produces these same maps).
  if (cfg_.reuse_structure && have_cached_structure_) {
    MALI_CHECK_MSG(A_fine.n_rows() == cached_fine_rows_,
                   "AMG reuse_structure: fine matrix size changed since the "
                   "cached build");
    ++structure_reuses_;
    levels_.emplace_back();
    levels_.back().A = std::move(A_fine);
    for (std::size_t l = 0; l < cached_agg_.size(); ++l) {
      Level& fine = levels_.back();
      fine.agg = cached_agg_[l];
      fine.n_coarse = cached_n_coarse_[l];
      Level coarse;
      coarse.A = galerkin_coarse(fine.A, fine.agg, fine.n_coarse);
      levels_.push_back(std::move(coarse));
    }
    factor_coarse();
    return;
  }

  const int dpn = info_.dofs_per_node;
  const std::size_t n_columns = info_.n_nodes / info_.levels;

  // Per-level node structure (column id, vertical level, lattice coords).
  std::size_t cur_levels = info_.levels;
  std::vector<double> col_x = info_.column_x;
  std::vector<double> col_y = info_.column_y;
  double cur_dx = info_.dx;
  MALI_CHECK(col_x.size() == n_columns && col_y.size() == n_columns);

  levels_.emplace_back();
  levels_.back().A = std::move(A_fine);

  for (int l = 0; l + 1 < cfg_.max_levels; ++l) {
    Level& fine = levels_.back();
    const std::size_t n_dofs = fine.A.n_rows();
    if (n_dofs <= cfg_.coarse_max_dofs) break;

    const std::size_t n_cols_now = col_x.size();
    const std::size_t n_nodes_now = n_cols_now * cur_levels;
    MALI_CHECK(n_dofs == n_nodes_now * static_cast<std::size_t>(dpn));

    std::vector<std::size_t> node_agg(n_nodes_now);
    std::size_t n_coarse_nodes = 0;
    std::size_t next_levels = cur_levels;
    std::vector<double> next_x = col_x, next_y = col_y;

    if (cur_levels > 1) {
      // ---- vertical semicoarsening: pair adjacent levels per column ----
      next_levels = (cur_levels + 1) / 2;
      n_coarse_nodes = n_cols_now * next_levels;
      for (std::size_t c = 0; c < n_cols_now; ++c) {
        for (std::size_t lev = 0; lev < cur_levels; ++lev) {
          node_agg[c * cur_levels + lev] = c * next_levels + lev / 2;
        }
      }
    } else {
      // ---- horizontal phase: 2x2 column aggregation on the lattice ----
      std::unordered_map<std::uint64_t, std::size_t> block_id;
      std::vector<std::size_t> col_agg(n_cols_now);
      double xmin = col_x[0], ymin = col_y[0];
      for (std::size_t c = 0; c < n_cols_now; ++c) {
        xmin = std::min(xmin, col_x[c]);
        ymin = std::min(ymin, col_y[c]);
      }
      next_x.clear();
      next_y.clear();
      for (std::size_t c = 0; c < n_cols_now; ++c) {
        const auto i = static_cast<std::uint64_t>(
            std::llround((col_x[c] - xmin) / cur_dx) / 2);
        const auto j = static_cast<std::uint64_t>(
            std::llround((col_y[c] - ymin) / cur_dx) / 2);
        const std::uint64_t key = (i << 32) | j;
        auto [it, inserted] = block_id.try_emplace(key, next_x.size());
        if (inserted) {
          next_x.push_back(xmin + static_cast<double>(i) * 2.0 * cur_dx);
          next_y.push_back(ymin + static_cast<double>(j) * 2.0 * cur_dx);
        }
        col_agg[c] = it->second;
      }
      n_coarse_nodes = next_x.size();
      for (std::size_t c = 0; c < n_cols_now; ++c) node_agg[c] = col_agg[c];
      cur_dx *= 2.0;
    }

    // Expand node aggregation to dofs (components stay separate).
    fine.agg.resize(n_dofs);
    for (std::size_t nd = 0; nd < n_nodes_now; ++nd) {
      for (int c = 0; c < dpn; ++c) {
        fine.agg[nd * static_cast<std::size_t>(dpn) +
                 static_cast<std::size_t>(c)] =
            node_agg[nd] * static_cast<std::size_t>(dpn) +
            static_cast<std::size_t>(c);
      }
    }
    fine.n_coarse = n_coarse_nodes * static_cast<std::size_t>(dpn);

    Level coarse;
    coarse.A = galerkin_coarse(fine.A, fine.agg, fine.n_coarse);
    levels_.push_back(std::move(coarse));

    cur_levels = next_levels;
    col_x = std::move(next_x);
    col_y = std::move(next_y);
    if (levels_.back().A.n_rows() == fine.n_coarse &&
        fine.n_coarse == n_dofs) {
      break;  // no coarsening progress — stop
    }
  }

  ++hierarchy_builds_;
  if (cfg_.reuse_structure) {
    have_cached_structure_ = true;
    cached_fine_rows_ = levels_.front().A.n_rows();
    cached_agg_.clear();
    cached_n_coarse_.clear();
    for (std::size_t l = 0; l + 1 < levels_.size(); ++l) {
      cached_agg_.push_back(levels_[l].agg);
      cached_n_coarse_.push_back(levels_[l].n_coarse);
    }
  }
  factor_coarse();
}

void SemicoarseningAmg::factor_coarse() {
  const CrsMatrix& Ac = levels_.back().A;
  const std::size_t coarse_n = Ac.n_rows();
  if (coarse_n <= cfg_.coarse_max_dofs) {
    use_direct_coarse_ = true;
    DenseMatrix dense(coarse_n, coarse_n);
    const auto& rp = Ac.row_ptr();
    const auto& cs = Ac.cols();
    const auto& vs = Ac.values();
    for (std::size_t i = 0; i < coarse_n; ++i) {
      for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
        dense(i, cs[k]) = vs[k];
      }
    }
    coarse_lu_.factor(std::move(dense));
  }
}

void SemicoarseningAmg::setup_smoothers() {
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    Level& lvl = levels_[l];
    if (cfg_.smoother == AmgSmoother::kChebyshev) {
      ChebyshevConfig ccfg = cfg_.cheb;
      if (l < cheb_hints_.size() && cheb_hints_[l] > 0.0) {
        ccfg.lambda_hint = cheb_hints_[l];  // skip this level's power iters
      }
      auto cheb = std::make_unique<ChebyshevSmoother>(ccfg);
      if (l == 0 && fine_op_ != nullptr) {
        // Matrix-free fine level: operator applies + probed diagonal only.
        const std::size_t n = lvl.A.n_rows();
        std::vector<double> diag(n);
        for (std::size_t i = 0; i < n; ++i) diag[i] = lvl.A.diagonal(i);
        cheb->compute(*fine_op_, std::move(diag));
      } else {
        cheb->compute(lvl.A);
      }
      lvl.smoother = std::move(cheb);
    } else {
      auto sgs = std::make_unique<SymGaussSeidelPreconditioner>(
          cfg_.pre_sweeps);
      sgs->compute(lvl.A);
      lvl.smoother = std::move(sgs);
    }
  }
}

std::vector<double> SemicoarseningAmg::chebyshev_lambda_estimates() const {
  std::vector<double> est;
  for (const Level& lvl : levels_) {
    const auto* cheb =
        dynamic_cast<const ChebyshevSmoother*>(lvl.smoother.get());
    if (cheb == nullptr) return {};  // SGS hierarchy: nothing to recycle
    est.push_back(cheb->lambda_estimate());
  }
  return est;
}

void SemicoarseningAmg::level_apply(std::size_t l,
                                    const std::vector<double>& x,
                                    std::vector<double>& y) const {
  if (l == 0 && fine_op_ != nullptr) {
    fine_op_->apply(x, y);
  } else {
    levels_[l].A.apply(x, y);
  }
}

void SemicoarseningAmg::vcycle(std::size_t l, const std::vector<double>& r,
                               std::vector<double>& z) const {
  const Level& lvl = levels_[l];
  const std::size_t n = lvl.A.n_rows();

  if (l + 1 == levels_.size()) {
    if (use_direct_coarse_) {
      z = r;
      coarse_lu_.solve(z);
    } else {
      SymGaussSeidelPreconditioner sgs(cfg_.coarse_sgs_sweeps);
      sgs.compute(lvl.A);
      sgs.apply(r, z);
    }
    return;
  }

  // Pre-smooth.
  lvl.smoother->apply(r, z);

  // Residual and restriction (P^T = sum over aggregate members).
  lvl.tmp.resize(n);
  level_apply(l, z, lvl.tmp);
  lvl.r.resize(n);
  for (std::size_t i = 0; i < n; ++i) lvl.r[i] = r[i] - lvl.tmp[i];
  lvl.rc.assign(lvl.n_coarse, 0.0);
  for (std::size_t i = 0; i < n; ++i) lvl.rc[lvl.agg[i]] += lvl.r[i];

  // Coarse correction and prolongation.
  lvl.zc.assign(lvl.n_coarse, 0.0);
  vcycle(l + 1, lvl.rc, lvl.zc);
  for (std::size_t i = 0; i < n; ++i) z[i] += lvl.zc[lvl.agg[i]];

  // Post-smooth: one more smoother pass on the residual equation.
  level_apply(l, z, lvl.tmp);
  for (std::size_t i = 0; i < n; ++i) lvl.r[i] = r[i] - lvl.tmp[i];
  lvl.z.resize(n);
  lvl.smoother->apply(lvl.r, lvl.z);
  for (std::size_t i = 0; i < n; ++i) z[i] += lvl.z[i];
}

void SemicoarseningAmg::apply(const std::vector<double>& r,
                              std::vector<double>& z) const {
  MALI_CHECK_MSG(!levels_.empty(), "AMG: compute() not called");
  z.assign(r.size(), 0.0);
  vcycle(0, r, z);
}

}  // namespace mali::linalg
