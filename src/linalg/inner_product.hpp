#pragma once
// Inner-product abstraction for the Krylov solvers.
//
// Every control-flow branch in GMRES/CG/BiCgStab (and the Newton damping
// loop) is driven by dot products and norms.  Injecting the inner product
// lets the distributed runtime (src/dist/) replace them with rank-reduced
// versions: each rank sums only the dofs it OWNS and the partial sums are
// combined with a deterministic rank-ordered allreduce.  Because every rank
// then sees bit-identical scalars, the unmodified solver code runs in SPMD
// lockstep — same branches, same iteration counts — across all ranks.
//
// The default (`serial_inner_product()`) reduces over all entries with the
// serial kernels from crs_matrix.hpp, which is the single-process behavior
// the solvers always had.

#include <cmath>
#include <vector>

#include "linalg/crs_matrix.hpp"

namespace mali::linalg {

class InnerProduct {
 public:
  virtual ~InnerProduct() = default;

  /// Reduced dot product <x, y>.  Implementations over distributed vectors
  /// must (a) touch only entries the calling rank owns and (b) return the
  /// identical value on every rank.
  [[nodiscard]] virtual double dot(const std::vector<double>& x,
                                   const std::vector<double>& y) const = 0;

  /// sqrt(<x, x>); override only to change the reduction, not the sqrt.
  [[nodiscard]] virtual double norm2(const std::vector<double>& x) const {
    return std::sqrt(dot(x, x));
  }
};

/// All-entry serial reduction — the non-distributed default.
class SerialInnerProduct final : public InnerProduct {
 public:
  [[nodiscard]] double dot(const std::vector<double>& x,
                           const std::vector<double>& y) const override {
    return linalg::dot(x, y);
  }
  [[nodiscard]] double norm2(const std::vector<double>& x) const override {
    return linalg::norm2(x);
  }
};

[[nodiscard]] inline const InnerProduct& serial_inner_product() {
  static const SerialInnerProduct ip;
  return ip;
}

/// Config-plumbing helper: the injected inner product, or the serial
/// default when none was set.
[[nodiscard]] inline const InnerProduct& inner_or_default(
    const InnerProduct* inner) {
  return inner != nullptr ? *inner : serial_inner_product();
}

}  // namespace mali::linalg
