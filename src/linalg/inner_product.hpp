#pragma once
// Inner-product abstraction for the Krylov solvers.
//
// Every control-flow branch in GMRES/CG/BiCgStab (and the Newton damping
// loop) is driven by dot products and norms.  Injecting the inner product
// lets the distributed runtime (src/dist/) replace them with rank-reduced
// versions: each rank sums only the dofs it OWNS and the partial sums are
// combined with a deterministic rank-ordered allreduce.  Because every rank
// then sees bit-identical scalars, the unmodified solver code runs in SPMD
// lockstep — same branches, same iteration counts — across all ranks.
//
// The default (`serial_inner_product()`) reduces over all entries with the
// serial kernels from crs_matrix.hpp, which is the single-process behavior
// the solvers always had.

#include <cmath>
#include <vector>

#include "linalg/crs_matrix.hpp"
#include "portability/common.hpp"

namespace mali::linalg {

/// One <x, y> pair of a batched reduction request.  Pointees must stay alive
/// (and, for split-phase use, unmodified) until the reduction completes.
struct DotPair {
  const std::vector<double>* x = nullptr;
  const std::vector<double>* y = nullptr;
};

class InnerProduct {
 public:
  virtual ~InnerProduct() = default;

  /// Reduced dot product <x, y>.  Implementations over distributed vectors
  /// must (a) touch only entries the calling rank owns and (b) return the
  /// identical value on every rank.
  [[nodiscard]] virtual double dot(const std::vector<double>& x,
                                   const std::vector<double>& y) const = 0;

  /// sqrt(<x, x>); override only to change the reduction, not the sqrt.
  [[nodiscard]] virtual double norm2(const std::vector<double>& x) const {
    return std::sqrt(dot(x, x));
  }

  /// Caller-owned scratch for a split-phase reduction.  Keeping the pending
  /// state out of the InnerProduct lets a shared (even static) instance stay
  /// stateless, so concurrent solves on different threads never race.
  struct Pending {
    std::vector<double> values;
    bool active = false;
  };

  /// Batched reduction: out[k] = <pairs[k].x, pairs[k].y> for every pair,
  /// combined in ONE collective.  This is what lets the fused-Gram-Schmidt
  /// solvers replace j+1 scalar allreduces with a single n-value message.
  /// Each out[k] must be bit-identical to dot(*pairs[k].x, *pairs[k].y).
  virtual void dot_batch(const std::vector<DotPair>& pairs,
                         std::vector<double>& out) const {
    out.resize(pairs.size());
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      out[k] = dot(*pairs[k].x, *pairs[k].y);
    }
  }

  /// Split-phase batched reduction.  post() computes the local partial sums
  /// and initiates the global combine; finish() completes it and yields the
  /// same values dot_batch would.  Between the two calls the caller may run
  /// unrelated work (preconditioner + operator applies) whose cost hides the
  /// reduction latency.  Exactly one finish() must follow each post() on the
  /// same Pending; nesting posts on one Pending is a contract violation.
  ///
  /// The serial default completes immediately at post() — finish() is then a
  /// plain copy, so single-process runs pay nothing for the split.
  virtual void post(const std::vector<DotPair>& pairs, Pending& pending) const {
    MALI_CHECK_MSG(!pending.active,
                   "InnerProduct::post: reduction already pending");
    dot_batch(pairs, pending.values);
    pending.active = true;
  }
  virtual void finish(Pending& pending, std::vector<double>& out) const {
    MALI_CHECK_MSG(pending.active, "InnerProduct::finish without a post");
    out = pending.values;
    pending.active = false;
  }
};

/// All-entry serial reduction — the non-distributed default.
class SerialInnerProduct final : public InnerProduct {
 public:
  [[nodiscard]] double dot(const std::vector<double>& x,
                           const std::vector<double>& y) const override {
    return linalg::dot(x, y);
  }
  [[nodiscard]] double norm2(const std::vector<double>& x) const override {
    return linalg::norm2(x);
  }
};

[[nodiscard]] inline const InnerProduct& serial_inner_product() {
  static const SerialInnerProduct ip;
  return ip;
}

/// Config-plumbing helper: the injected inner product, or the serial
/// default when none was set.
[[nodiscard]] inline const InnerProduct& inner_or_default(
    const InnerProduct* inner) {
  return inner != nullptr ? *inner : serial_inner_product();
}

}  // namespace mali::linalg
