#include "linalg/krylov.hpp"

#include <cmath>
#include <cstdio>

#include "portability/common.hpp"

namespace mali::linalg {

namespace {

/// ||b - A x|| / ||b|| recomputed from scratch — breakdown exits report
/// this instead of whatever the recurrence last produced.
double true_rel_residual(const LinearOperator& A, const std::vector<double>& b,
                         const std::vector<double>& x, double bnorm,
                         std::vector<double>& scratch, const InnerProduct& ip) {
  A.apply(x, scratch);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    scratch[i] = b[i] - scratch[i];
  }
  return ip.norm2(scratch) / bnorm;
}

}  // namespace

KrylovResult ConjugateGradient::solve(const LinearOperator& A,
                                      const Preconditioner& M,
                                      const std::vector<double>& b,
                                      std::vector<double>& x) const {
  const std::size_t n = A.rows();
  MALI_CHECK_MSG(A.cols() == n, "CG requires a square operator");
  MALI_CHECK(b.size() == n);
  if (x.size() != n) x.assign(n, 0.0);

  KrylovResult result;
  const InnerProduct& ip = inner_or_default(cfg_.inner);
  const double bnorm = ip.norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    result.converged = true;
    return result;
  }
  if (!std::isfinite(bnorm)) {
    result.breakdown = true;
    result.reason = "non-finite right-hand side norm";
    result.rel_residual = bnorm;
    return result;
  }

  std::vector<double> r(n), z(n), p(n), Ap(n);
  A.apply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  M.apply(r, z);
  p = z;
  double rz = ip.dot(r, z);

  auto fail = [&](const char* reason) {
    result.breakdown = true;
    result.reason = reason;
    result.rel_residual = true_rel_residual(A, b, x, bnorm, Ap, ip);
    result.converged = result.rel_residual < cfg_.rel_tol;
    return result;
  };

  for (std::size_t it = 0; it < cfg_.max_iters; ++it) {
    A.apply(p, Ap);
    const double pAp = ip.dot(p, Ap);
    // Negative (or zero, or NaN) curvature: the operator is not positive
    // definite, so the CG recurrences are meaningless from here on.  Report
    // the breakdown instead of aborting the process.
    if (!(pAp > 0.0)) {
      return fail("indefinite operator: p^T A p <= 0");
    }
    const double alpha = rz / pAp;
    axpy(alpha, p, x);
    axpy(-alpha, Ap, r);
    result.iterations = it + 1;
    result.rel_residual = ip.norm2(r) / bnorm;
    if (!std::isfinite(result.rel_residual)) {
      // A NaN/Inf crept into the recurrence (poisoned operator output or
      // preconditioner): report a typed breakdown instead of iterating on
      // garbage to the cap.
      return fail("non-finite residual norm (NaN/Inf in operator or "
                  "preconditioner output)");
    }
    if (cfg_.verbose && it % 25 == 0) {
      std::printf("  cg iter %4zu rel res %.3e\n", it + 1,
                  result.rel_residual);
    }
    if (result.rel_residual < cfg_.rel_tol) {
      result.converged = true;
      return result;
    }
    M.apply(r, z);
    const double rz_new = ip.dot(r, z);
    if (rz_new == 0.0 || !std::isfinite(rz_new)) {
      // r != 0 but z^T r vanished: the preconditioner is not SPD on this
      // residual and beta would be 0/0 or garbage.
      return fail("preconditioner breakdown: z^T r == 0 with r != 0");
    }
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return result;
}

KrylovResult BiCgStab::solve(const LinearOperator& A, const Preconditioner& M,
                             const std::vector<double>& b,
                             std::vector<double>& x) const {
  const std::size_t n = A.rows();
  MALI_CHECK_MSG(A.cols() == n, "BiCGStab requires a square operator");
  MALI_CHECK(b.size() == n);
  if (x.size() != n) x.assign(n, 0.0);

  KrylovResult result;
  const InnerProduct& ip = inner_or_default(cfg_.inner);
  const double bnorm = ip.norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    result.converged = true;
    return result;
  }
  if (!std::isfinite(bnorm)) {
    result.breakdown = true;
    result.reason = "non-finite right-hand side norm";
    result.rel_residual = bnorm;
    return result;
  }

  std::vector<double> r(n), r0(n), p(n, 0.0), v(n, 0.0), s(n), t(n);
  std::vector<double> phat(n), shat(n);
  A.apply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  r0 = r;
  double rho = 1.0, alpha = 1.0, omega = 1.0;

  // Every breakdown path reports the *true* residual at the current x —
  // the recurrence r is stale (or x just moved) at these exits.
  auto fail = [&](const char* reason) {
    result.breakdown = true;
    result.reason = reason;
    result.rel_residual = true_rel_residual(A, b, x, bnorm, t, ip);
    result.converged = result.rel_residual < cfg_.rel_tol;
    return result;
  };

  for (std::size_t it = 0; it < cfg_.max_iters; ++it) {
    const double rho_new = ip.dot(r0, r);
    if (rho_new == 0.0) {
      return fail("breakdown: (r0, r) == 0");
    }
    if (it == 0) {
      p = r;
    } else {
      const double beta = (rho_new / rho) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
      }
    }
    rho = rho_new;

    M.apply(p, phat);
    A.apply(phat, v);
    const double r0v = ip.dot(r0, v);
    if (r0v == 0.0) {
      return fail("breakdown: (r0, A M^{-1} p) == 0");
    }
    alpha = rho / r0v;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];

    result.iterations = it + 1;
    if (ip.norm2(s) / bnorm < cfg_.rel_tol) {
      axpy(alpha, phat, x);
      result.rel_residual = ip.norm2(s) / bnorm;
      result.converged = true;
      return result;
    }

    M.apply(s, shat);
    A.apply(shat, t);
    const double tt = ip.dot(t, t);
    if (tt == 0.0) {
      // Commit the alpha half-step (it is what the true residual reflects)
      // before reporting.
      axpy(alpha, phat, x);
      return fail("breakdown: ||A M^{-1} s|| == 0");
    }
    omega = ip.dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }
    result.rel_residual = ip.norm2(r) / bnorm;
    if (!std::isfinite(result.rel_residual)) {
      // A NaN/Inf crept into the recurrence: report a typed breakdown
      // instead of iterating on garbage to the cap.
      return fail("non-finite residual norm (NaN/Inf in operator or "
                  "preconditioner output)");
    }
    if (cfg_.verbose && it % 25 == 0) {
      std::printf("  bicgstab iter %4zu rel res %.3e\n", it + 1,
                  result.rel_residual);
    }
    if (result.rel_residual < cfg_.rel_tol) {
      result.converged = true;
      return result;
    }
    if (omega == 0.0) {
      return fail("breakdown: omega == 0 (stabilizer stalled)");
    }
  }
  return result;
}

}  // namespace mali::linalg
