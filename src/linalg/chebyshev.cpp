#include "linalg/chebyshev.hpp"

#include <cmath>
#include <cstdint>

#include "portability/common.hpp"

namespace mali::linalg {

void ChebyshevSmoother::compute(const CrsMatrix& A) {
  mat_ = &A;
  op_ = nullptr;
  const std::size_t n = A.n_rows();
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = A.diagonal(i);
  finish_setup(std::move(diag));
}

void ChebyshevSmoother::compute(const LinearOperator& A) {
  // Prefer the assembled matrix when the operator wraps one: the matrix
  // outlives transient wrapper objects (AssembledOperator is routinely a
  // temporary), whereas keeping &A would dangle after this call.
  if (A.matrix() != nullptr) {
    compute(*A.matrix());
    return;
  }
  std::vector<double> diag;
  MALI_CHECK_MSG(A.diagonal(diag),
                 "ChebyshevSmoother: operator provides neither a diagonal "
                 "nor an assembled matrix");
  compute(A, std::move(diag));
}

void ChebyshevSmoother::compute(const LinearOperator& A,
                                std::vector<double> diag) {
  MALI_CHECK(diag.size() == A.rows());
  op_ = &A;
  mat_ = nullptr;
  finish_setup(std::move(diag));
}

void ChebyshevSmoother::apply_op(const std::vector<double>& x,
                                 std::vector<double>& y) const {
  if (op_ != nullptr) {
    op_->apply(x, y);
  } else {
    mat_->apply(x, y);
  }
}

void ChebyshevSmoother::finish_setup(std::vector<double> diag) {
  const std::size_t n = diag.size();
  inv_diag_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    MALI_CHECK_MSG(diag[i] != 0.0, "ChebyshevSmoother: zero diagonal entry");
    inv_diag_[i] = 1.0 / diag[i];
  }

  // A supplied spectral hint (ensemble recycling between nearby parameter
  // points) skips the power iteration entirely — degree applies are the
  // only remaining setup cost.
  if (cfg_.lambda_hint > 0.0 && std::isfinite(cfg_.lambda_hint)) {
    lambda_est_ = cfg_.lambda_hint;
    used_hint_ = true;
    lmax_ = cfg_.boost * lambda_est_;
    lmin_ = cfg_.lower_frac * lmax_;
    return;
  }
  used_hint_ = false;

  // Power iteration on D^{-1} A for the dominant eigenvalue.  Deterministic
  // pseudo-random start so repeated computes give identical smoothers.
  std::vector<double> v(n), w(n);
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  double nrm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    v[i] = static_cast<double>(s >> 11) * 0x1.0p-53 - 0.5;
    nrm += v[i] * v[i];
  }
  nrm = std::sqrt(nrm);
  MALI_CHECK(n > 0 && nrm > 0.0);
  for (auto& x : v) x /= nrm;

  double lambda = 1.0;
  for (int it = 0; it < cfg_.power_iters; ++it) {
    apply_op(v, w);
    double wn = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      w[i] *= inv_diag_[i];
      wn += w[i] * w[i];
    }
    wn = std::sqrt(wn);
    if (!(wn > 0.0) || !std::isfinite(wn)) break;  // degenerate operator
    lambda = wn;  // ||D^{-1}A v|| with ||v|| = 1
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / wn;
  }
  if (!std::isfinite(lambda) || lambda <= 0.0) lambda = 1.0;

  lambda_est_ = lambda;
  lmax_ = cfg_.boost * lambda;
  lmin_ = cfg_.lower_frac * lmax_;
}

void ChebyshevSmoother::apply(const std::vector<double>& r,
                              std::vector<double>& z) const {
  MALI_CHECK_MSG(!inv_diag_.empty(), "ChebyshevSmoother: compute() not called");
  const std::size_t n = inv_diag_.size();
  MALI_CHECK(r.size() == n);

  // Standard three-term Chebyshev recurrence on the interval [lmin, lmax]
  // of D^{-1} A (Saad, Iterative Methods, alg. 12.1), starting from z = 0.
  const double theta = 0.5 * (lmax_ + lmin_);
  const double delta = 0.5 * (lmax_ - lmin_);
  const double sigma = theta / delta;

  d_.resize(n);
  z.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    d_[i] = inv_diag_[i] * r[i] / theta;
    z[i] = d_[i];
  }

  double rho = 1.0 / sigma;
  for (int k = 1; k < cfg_.degree; ++k) {
    apply_op(z, tmp_);
    res_.resize(n);
    for (std::size_t i = 0; i < n; ++i) res_[i] = r[i] - tmp_[i];
    const double rho_new = 1.0 / (2.0 * sigma - rho);
    const double c1 = rho_new * rho;
    const double c2 = 2.0 * rho_new / delta;
    for (std::size_t i = 0; i < n; ++i) {
      d_[i] = c1 * d_[i] + c2 * inv_diag_[i] * res_[i];
      z[i] += d_[i];
    }
    rho = rho_new;
  }
}

}  // namespace mali::linalg
