#include "linalg/pipelined_krylov.hpp"

#include <cmath>
#include <cstdio>

#include "portability/common.hpp"

namespace mali::linalg {

namespace {

// Happy-breakdown threshold for the fused normalization.  The next basis
// norm comes from the cancellation-prone difference <w,w> - sum h_i^2,
// whose floor is summation noise of order eps * <w,w>; below this squared
// ratio the computed remainder is indistinguishable from roundoff, so the
// subspace is declared (numerically) A-invariant instead of normalizing
// noise into the basis.  Coarser than the classic solver's 1e-14 norm
// ratio by construction — the price of fusing the norm into one reduction.
constexpr double kFusedBreakdownTol = 1.0e-13;

/// ||b - A x|| / ||b|| recomputed from scratch — breakdown exits report
/// this instead of whatever the recurrence last produced.
double true_rel_residual(const LinearOperator& A, const std::vector<double>& b,
                         const std::vector<double>& x, double bnorm,
                         std::vector<double>& scratch, const InnerProduct& ip) {
  A.apply(x, scratch);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    scratch[i] = b[i] - scratch[i];
  }
  return ip.norm2(scratch) / bnorm;
}

}  // namespace

GmresResult PipelinedGmres::solve(const LinearOperator& A,
                                  const Preconditioner& M,
                                  const std::vector<double>& b,
                                  std::vector<double>& x) const {
  const std::size_t n = A.rows();
  MALI_CHECK_MSG(A.cols() == n, "GMRES requires a square operator");
  MALI_CHECK(b.size() == n);
  if (x.size() != n) x.assign(n, 0.0);

  GmresResult result;
  const InnerProduct& ip = inner_or_default(cfg_.inner);
  const double bnorm = ip.norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    result.converged = true;
    return result;
  }
  if (!std::isfinite(bnorm)) {
    result.breakdown = true;
    result.reason = "non-finite right-hand side norm";
    result.rel_residual = bnorm;
    return result;
  }

  const std::size_t m = cfg_.restart;
  // Three coupled bases: V orthonormal, Z[i] = M^{-1} V[i] (for the
  // solution update, exactly as in the classic solver), W[i] = A Z[i]
  // (so the candidate A M^{-1} v_j is available BEFORE step j's reduction
  // — that is what moves the M/A applies into the reduction's shadow).
  std::vector<std::vector<double>> V(m + 1), Z(m + 1), W(m + 1);
  // Hessenberg in column-major: H[j] holds column j (j+2 entries).
  std::vector<std::vector<double>> H(m);
  std::vector<double> cs(m), sn(m), g(m + 1);
  std::vector<double> r(n), zt(n), wt(n);
  std::vector<DotPair> pairs;
  std::vector<double> red;
  InnerProduct::Pending pending;

  std::size_t total_iters = 0;
  while (total_iters < cfg_.max_iters) {
    // r = b - A x
    A.apply(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    const double beta = ip.norm2(r);
    result.rel_residual = beta / bnorm;
    if (!std::isfinite(beta)) {
      result.breakdown = true;
      result.reason = "non-finite residual norm (NaN/Inf in operator output "
                      "or right-hand side)";
      return result;
    }
    if (result.rel_residual < cfg_.rel_tol) {
      result.converged = true;
      return result;
    }

    // Pipeline fill: V[0] and its preconditioned/applied companions.
    V[0] = r;
    scale(1.0 / beta, V[0]);
    Z[0].resize(n);
    M.apply(V[0], Z[0]);
    W[0].resize(n);
    A.apply(Z[0], W[0]);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    std::size_t j = 0;
    for (; j < m && total_iters < cfg_.max_iters; ++j, ++total_iters) {
      // Candidate w = A M^{-1} v_j is W[j], computed one stage ahead.
      // ONE fused reduction: the j+1 classical-Gram-Schmidt coefficients
      // h_i = <w, v_i> plus the candidate norm <w, w>.
      const std::vector<double>& w = W[j];
      pairs.clear();
      for (std::size_t i = 0; i <= j; ++i) pairs.push_back({&w, &V[i]});
      pairs.push_back({&w, &w});
      ip.post(pairs, pending);
      // In the reduction's shadow: the speculative M/A applies feeding the
      // NEXT Arnoldi step (wasted only when this step ends the cycle).
      M.apply(w, zt);
      A.apply(zt, wt);
      ip.finish(pending, red);

      H[j].assign(j + 2, 0.0);
      double hnorm2 = 0.0;
      for (std::size_t i = 0; i <= j; ++i) {
        H[j][i] = red[i];
        hnorm2 += red[i] * red[i];
      }
      const double s = red[j + 1];  // <w, w>
      if (!std::isfinite(s) || !std::isfinite(hnorm2)) {
        result.breakdown = true;
        result.reason = "non-finite fused Gram-Schmidt reduction (NaN/Inf in "
                        "operator or preconditioner output)";
        return result;
      }
      // ||w - sum h_i v_i||^2 = <w,w> - sum h_i^2 by orthonormality of V.
      const double hh2 = s - hnorm2;
      const bool breakdown = s == 0.0 || hh2 <= kFusedBreakdownTol * s;
      if (breakdown) {
        // Happy breakdown: the candidate lies (numerically) in the span of
        // V[0..j]; close the subspace, as in the classic solver.
        H[j][j + 1] = 0.0;
      } else {
        H[j][j + 1] = std::sqrt(hh2);
        const double inv = 1.0 / H[j][j + 1];
        // Advance all three bases by the same linear recurrence:
        // V[j+1] = (w - sum h_i V[i]) / h, and because Z[j+1] must equal
        // M^{-1} V[j+1] and W[j+1] = A Z[j+1], the overlapped zt = M^{-1} w
        // and wt = A zt combine with the SAME coefficients.
        V[j + 1] = w;
        Z[j + 1] = zt;
        W[j + 1] = wt;
        for (std::size_t i = 0; i <= j; ++i) {
          axpy(-H[j][i], V[i], V[j + 1]);
          axpy(-H[j][i], Z[i], Z[j + 1]);
          axpy(-H[j][i], W[i], W[j + 1]);
        }
        scale(inv, V[j + 1]);
        scale(inv, Z[j + 1]);
        scale(inv, W[j + 1]);
      }

      // Apply previous Givens rotations to the new column.
      for (std::size_t i = 0; i < j; ++i) {
        const double t = cs[i] * H[j][i] + sn[i] * H[j][i + 1];
        H[j][i + 1] = -sn[i] * H[j][i] + cs[i] * H[j][i + 1];
        H[j][i] = t;
      }
      // New rotation annihilating H[j][j+1].
      const double denom = std::hypot(H[j][j], H[j][j + 1]);
      cs[j] = denom == 0.0 ? 1.0 : H[j][j] / denom;
      sn[j] = denom == 0.0 ? 0.0 : H[j][j + 1] / denom;
      H[j][j] = denom;
      H[j][j + 1] = 0.0;
      g[j + 1] = -sn[j] * g[j];
      g[j] = cs[j] * g[j];

      result.iterations = total_iters + 1;
      result.rel_residual = std::abs(g[j + 1]) / bnorm;
      result.history.push_back(result.rel_residual);
      if (cfg_.verbose && (total_iters % 25 == 0)) {
        std::printf("  pgmres iter %4zu  rel res %.3e\n", total_iters + 1,
                    result.rel_residual);
      }
      if (breakdown || result.rel_residual < cfg_.rel_tol) {
        ++j;
        ++total_iters;
        break;
      }
    }

    // Solve the j x j triangular system and update x += sum y_i Z_i —
    // identical to the classic solver, including the singular-pivot
    // breakdown semantics.
    std::vector<double> y(j, 0.0);
    for (std::size_t ii = j; ii-- > 0;) {
      if (H[ii][ii] == 0.0) {
        result.breakdown = true;
        result.reason = "singular Hessenberg pivot (rank-deficient Krylov "
                        "space)";
        y[ii] = 0.0;
        continue;
      }
      double acc = g[ii];
      for (std::size_t k = ii + 1; k < j; ++k) acc -= H[k][ii] * y[k];
      y[ii] = acc / H[ii][ii];
    }
    for (std::size_t ii = 0; ii < j; ++ii) axpy(y[ii], Z[ii], x);

    if (result.rel_residual < cfg_.rel_tol || result.breakdown) {
      // Confirm with the true residual (restart otherwise).
      A.apply(x, r);
      for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
      result.rel_residual = ip.norm2(r) / bnorm;
      if (result.rel_residual < 10.0 * cfg_.rel_tol) {
        result.converged = true;
        return result;
      }
      if (result.breakdown) {
        // The Krylov space is exhausted and the residual did not converge
        // — restarting cannot make progress.
        return result;
      }
    }
  }
  return result;
}

KrylovResult PipelinedCg::solve(const LinearOperator& A,
                                const Preconditioner& M,
                                const std::vector<double>& b,
                                std::vector<double>& x) const {
  const std::size_t n = A.rows();
  MALI_CHECK_MSG(A.cols() == n, "CG requires a square operator");
  MALI_CHECK(b.size() == n);
  if (x.size() != n) x.assign(n, 0.0);

  KrylovResult result;
  const InnerProduct& ip = inner_or_default(cfg_.inner);
  const double bnorm = ip.norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    result.converged = true;
    return result;
  }
  if (!std::isfinite(bnorm)) {
    result.breakdown = true;
    result.reason = "non-finite right-hand side norm";
    result.rel_residual = bnorm;
    return result;
  }

  // Ghysels & Vanroose recurrences: alongside x, r, p the iteration carries
  // u = M^{-1} r, w = A u, s = A p, q = M^{-1} p, z = A q, advanced by the
  // same alpha/beta updates so one fused reduction per iteration suffices.
  std::vector<double> r(n), u(n), w(n), mv(n), nv(n);
  std::vector<double> z(n, 0.0), q(n, 0.0), s(n, 0.0), p(n, 0.0);
  A.apply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  M.apply(r, u);
  A.apply(u, w);

  auto fail = [&](const char* reason) {
    result.breakdown = true;
    result.reason = reason;
    result.rel_residual = true_rel_residual(A, b, x, bnorm, nv, ip);
    result.converged = result.rel_residual < cfg_.rel_tol;
    return result;
  };

  const std::vector<DotPair> pairs = {{&r, &u}, {&w, &u}, {&r, &r}};
  std::vector<double> red;
  InnerProduct::Pending pending;
  double gamma_old = 0.0, alpha_old = 0.0;

  for (std::size_t it = 0; it < cfg_.max_iters; ++it) {
    // ONE fused reduction: gamma = <r, u>, delta = <w, u> and the residual
    // norm for the convergence test, overlapped with the M/A applies the
    // recurrence needs next.
    ip.post(pairs, pending);
    M.apply(w, mv);
    A.apply(mv, nv);
    ip.finish(pending, red);
    const double gamma = red[0], delta = red[1], rr = red[2];

    if (!std::isfinite(gamma) || !std::isfinite(delta) ||
        !std::isfinite(rr)) {
      return fail("non-finite fused reduction (NaN/Inf in operator or "
                  "preconditioner output)");
    }
    result.rel_residual = std::sqrt(rr) / bnorm;
    if (result.rel_residual < cfg_.rel_tol) {
      // The recurrence residual can drift from the true one over a long
      // pipelined run; confirm before declaring victory (the classic
      // solver's r is updated directly and needs no confirm).
      result.rel_residual = true_rel_residual(A, b, x, bnorm, nv, ip);
      result.converged = result.rel_residual < 10.0 * cfg_.rel_tol;
      return result;
    }
    if (gamma == 0.0) {
      // r != 0 here (the convergence test above failed), so the
      // preconditioned residual vanished against r.
      return fail("preconditioner breakdown: u^T r == 0 with r != 0");
    }
    if (gamma < 0.0) {
      return fail("indefinite preconditioner: r^T M^{-1} r < 0");
    }

    double alpha, beta;
    if (it == 0) {
      beta = 0.0;
      if (!(delta > 0.0)) {
        return fail("indefinite operator: u^T A u <= 0");
      }
      alpha = gamma / delta;
    } else {
      beta = gamma / gamma_old;
      // In exact arithmetic the denominator equals p^T A p, which must be
      // positive for SPD A; the fused recurrence exposes indefiniteness
      // here instead of at a p^T A p dot.
      const double denom = delta - beta * gamma / alpha_old;
      if (!(denom > 0.0)) {
        return fail("indefinite operator: p^T A p <= 0 (pipelined "
                    "curvature recurrence)");
      }
      alpha = gamma / denom;
    }

    for (std::size_t i = 0; i < n; ++i) {
      z[i] = nv[i] + beta * z[i];
      q[i] = mv[i] + beta * q[i];
      s[i] = w[i] + beta * s[i];
      p[i] = u[i] + beta * p[i];
      x[i] += alpha * p[i];
      r[i] -= alpha * s[i];
      u[i] -= alpha * q[i];
      w[i] -= alpha * z[i];
    }
    gamma_old = gamma;
    alpha_old = alpha;
    result.iterations = it + 1;
    if (cfg_.verbose && it % 25 == 0) {
      std::printf("  pcg iter %4zu rel res %.3e\n", it + 1,
                  result.rel_residual);
    }
  }
  // Iteration cap: report the true residual of the final iterate.
  result.rel_residual = true_rel_residual(A, b, x, bnorm, nv, ip);
  result.converged = result.rel_residual < cfg_.rel_tol;
  return result;
}

GmresResult solve_krylov(KrylovKind kind, const GmresConfig& cfg,
                         const LinearOperator& A, const Preconditioner& M,
                         const std::vector<double>& b, std::vector<double>& x) {
  switch (kind) {
    case KrylovKind::kGmres:
      return Gmres(cfg).solve(A, M, b, x);
    case KrylovKind::kPipeGmres:
      return PipelinedGmres(cfg).solve(A, M, b, x);
    case KrylovKind::kCg:
    case KrylovKind::kPipeCg: {
      KrylovConfig kc;
      kc.rel_tol = cfg.rel_tol;
      kc.max_iters = cfg.max_iters;
      kc.verbose = cfg.verbose;
      kc.inner = cfg.inner;
      const KrylovResult kr = kind == KrylovKind::kCg
                                  ? ConjugateGradient(kc).solve(A, M, b, x)
                                  : PipelinedCg(kc).solve(A, M, b, x);
      GmresResult out;
      out.converged = kr.converged;
      out.iterations = kr.iterations;
      out.rel_residual = kr.rel_residual;
      out.breakdown = kr.breakdown;
      out.reason = kr.reason;
      return out;
    }
  }
  throw Error("solve_krylov: unhandled KrylovKind");
}

}  // namespace mali::linalg
