#pragma once
// Additional Krylov solvers: preconditioned conjugate gradients (for the
// SPD systems that arise in diagnostic solves) and BiCGStab (a low-memory
// alternative to restarted GMRES for the nonsymmetric Jacobians).

#include <cstddef>
#include <vector>

#include "linalg/crs_matrix.hpp"
#include "linalg/linear_operator.hpp"
#include "linalg/preconditioner.hpp"

namespace mali::linalg {

struct KrylovConfig {
  double rel_tol = 1.0e-8;
  std::size_t max_iters = 2000;
  bool verbose = false;
};

struct KrylovResult {
  bool converged = false;
  std::size_t iterations = 0;
  double rel_residual = 0.0;
};

/// Preconditioned conjugate gradients; requires A SPD and M SPD.
class ConjugateGradient {
 public:
  explicit ConjugateGradient(KrylovConfig cfg = {}) : cfg_(cfg) {}
  KrylovResult solve(const LinearOperator& A, const Preconditioner& M,
                     const std::vector<double>& b,
                     std::vector<double>& x) const;
  KrylovResult solve(const CrsMatrix& A, const Preconditioner& M,
                     const std::vector<double>& b,
                     std::vector<double>& x) const {
    return solve(AssembledOperator(A), M, b, x);
  }

 private:
  KrylovConfig cfg_;
};

/// BiCGStab with right preconditioning for general nonsymmetric systems.
class BiCgStab {
 public:
  explicit BiCgStab(KrylovConfig cfg = {}) : cfg_(cfg) {}
  KrylovResult solve(const LinearOperator& A, const Preconditioner& M,
                     const std::vector<double>& b,
                     std::vector<double>& x) const;
  KrylovResult solve(const CrsMatrix& A, const Preconditioner& M,
                     const std::vector<double>& b,
                     std::vector<double>& x) const {
    return solve(AssembledOperator(A), M, b, x);
  }

 private:
  KrylovConfig cfg_;
};

}  // namespace mali::linalg
