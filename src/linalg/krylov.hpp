#pragma once
// Additional Krylov solvers: preconditioned conjugate gradients (for the
// SPD systems that arise in diagnostic solves) and BiCGStab (a low-memory
// alternative to restarted GMRES for the nonsymmetric Jacobians).
//
// Failure contract: on well-formed inputs (square operator, size-consistent
// right-hand side) `solve()` never aborts the process.  Algorithmic
// breakdowns — indefinite operators in CG, the classic BiCGStab
// orthogonality breakdowns — are reported through `KrylovResult`: the
// `breakdown` flag is set, `reason` names the failed invariant, and
// `rel_residual` is the *true* relative residual ||b - A x|| / ||b|| at the
// returned iterate (never a stale recurrence value).

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/crs_matrix.hpp"
#include "linalg/inner_product.hpp"
#include "linalg/linear_operator.hpp"
#include "linalg/preconditioner.hpp"

namespace mali::linalg {

struct KrylovConfig {
  double rel_tol = 1.0e-8;
  std::size_t max_iters = 2000;
  bool verbose = false;
  /// Optional reduced inner product (distributed runs inject a rank-reduced
  /// one so all dots/norms — and therefore all branches — agree across
  /// ranks).  nullptr -> all-entry serial reduction.
  const InnerProduct* inner = nullptr;
};

struct KrylovResult {
  bool converged = false;
  std::size_t iterations = 0;
  double rel_residual = 0.0;
  /// True when the iteration stopped on an algorithmic breakdown (e.g. CG
  /// on an indefinite operator, BiCGStab orthogonality collapse) rather
  /// than convergence or the iteration cap; `reason` says which.  A
  /// breakdown at an already-converged iterate still sets `converged`.
  bool breakdown = false;
  std::string reason;
};

/// Preconditioned conjugate gradients; requires A SPD and M SPD.
class ConjugateGradient {
 public:
  explicit ConjugateGradient(KrylovConfig cfg = {}) : cfg_(cfg) {}
  KrylovResult solve(const LinearOperator& A, const Preconditioner& M,
                     const std::vector<double>& b,
                     std::vector<double>& x) const;
  KrylovResult solve(const CrsMatrix& A, const Preconditioner& M,
                     const std::vector<double>& b,
                     std::vector<double>& x) const {
    return solve(AssembledOperator(A), M, b, x);
  }

 private:
  KrylovConfig cfg_;
};

/// BiCGStab with right preconditioning for general nonsymmetric systems.
class BiCgStab {
 public:
  explicit BiCgStab(KrylovConfig cfg = {}) : cfg_(cfg) {}
  KrylovResult solve(const LinearOperator& A, const Preconditioner& M,
                     const std::vector<double>& b,
                     std::vector<double>& x) const;
  KrylovResult solve(const CrsMatrix& A, const Preconditioner& M,
                     const std::vector<double>& b,
                     std::vector<double>& x) const {
    return solve(AssembledOperator(A), M, b, x);
  }

 private:
  KrylovConfig cfg_;
};

}  // namespace mali::linalg
