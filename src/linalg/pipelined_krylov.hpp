#pragma once
// Pipelined (communication-avoiding) Krylov solvers.
//
// The classic solvers synchronize on every dot product: GMRES issues j+1
// Gram-Schmidt dots plus two norms per Arnoldi step, CG two dots plus a
// norm per iteration — and in the distributed runtime each one is a
// blocking rank-ordered allreduce.  At scale that reduction latency, not
// bandwidth, bounds the solve (the multi-GPU scaling wall the paper hits).
// The solvers here restructure the recurrences so each iteration issues
// exactly ONE fused reduction, posted split-phase through
// InnerProduct::post/finish and overlapped with the preconditioner and
// operator applies of the next pipeline stage (the halo-split matvec in
// the distributed runtime):
//
//  - PipelinedGmres: single-reduction GMRES.  The Gram-Schmidt projection
//    coefficients h_i = <w, v_i> AND the candidate norm <w, w> ride one
//    batched reduction (classical Gram-Schmidt, not modified); the next
//    basis vector's normalization uses sqrt(<w,w> - sum h_i^2) and the
//    auxiliary bases Z_i = M^{-1} V_i and W_i = A M^{-1} V_i are advanced
//    by the same linear recurrence, so the M/A applies for step j+1 run
//    while step j's reduction is in flight.
//  - PipelinedCg: Ghysels & Vanroose pipelined CG.  gamma = <r, u>,
//    delta = <w, u> and ||r||^2 ride one fused reduction overlapped with
//    m = M^{-1} w and n = A m; extra vector recurrences (s = A p,
//    q = M^{-1} p, z = A q) keep the iteration mathematically equivalent
//    to classic preconditioned CG.
//
// Contracts shared with the classic solvers: identical typed-breakdown
// reporting (never abort, never spin to max_iters on a dead subspace; the
// reported residual at a breakdown exit is the TRUE residual), identical
// convergence criteria, and the same InnerProduct injection — serial runs
// complete the posted reduction immediately, so pipelining costs nothing
// in one process.  Known tradeoffs, documented in DESIGN.md §13: one
// speculative M/A apply is wasted per restart cycle, and fused classical
// Gram-Schmidt is numerically weaker than the classic solver's modified
// Gram-Schmidt (a spurious near-breakdown forces a restart, never a wrong
// answer — the true-residual confirm guards every exit).

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/gmres.hpp"
#include "linalg/krylov.hpp"

namespace mali::linalg {

/// Inner linear solver selection for Newton/JFNK and the CLI (--krylov).
enum class KrylovKind { kGmres, kPipeGmres, kCg, kPipeCg };

[[nodiscard]] inline const char* to_string(KrylovKind k) {
  switch (k) {
    case KrylovKind::kGmres:
      return "gmres";
    case KrylovKind::kPipeGmres:
      return "pipe-gmres";
    case KrylovKind::kCg:
      return "cg";
    case KrylovKind::kPipeCg:
      return "pipe-cg";
  }
  return "?";
}

[[nodiscard]] inline KrylovKind krylov_kind_from_string(const std::string& s) {
  if (s == "gmres") return KrylovKind::kGmres;
  if (s == "pipe-gmres" || s == "pgmres") return KrylovKind::kPipeGmres;
  if (s == "cg") return KrylovKind::kCg;
  if (s == "pipe-cg" || s == "pcg") return KrylovKind::kPipeCg;
  throw Error("unknown krylov kind: " + s +
              " (expected gmres|pipe-gmres|cg|pipe-cg)");
}

/// Single-reduction restarted GMRES with right preconditioning.  Same
/// configuration, result type, and failure contract as Gmres; exactly one
/// fused allreduce per Arnoldi iteration (vs j+3 for the classic solver).
class PipelinedGmres {
 public:
  explicit PipelinedGmres(GmresConfig cfg = {}) : cfg_(cfg) {}

  GmresResult solve(const LinearOperator& A, const Preconditioner& M,
                    const std::vector<double>& b, std::vector<double>& x) const;

  GmresResult solve(const CrsMatrix& A, const Preconditioner& M,
                    const std::vector<double>& b,
                    std::vector<double>& x) const {
    return solve(AssembledOperator(A), M, b, x);
  }

  [[nodiscard]] const GmresConfig& config() const noexcept { return cfg_; }

 private:
  GmresConfig cfg_;
};

/// Ghysels-style pipelined preconditioned CG; requires A SPD and M SPD.
/// Same configuration, result type, and failure contract as
/// ConjugateGradient; exactly one fused allreduce per iteration (vs 3).
class PipelinedCg {
 public:
  explicit PipelinedCg(KrylovConfig cfg = {}) : cfg_(cfg) {}

  KrylovResult solve(const LinearOperator& A, const Preconditioner& M,
                     const std::vector<double>& b,
                     std::vector<double>& x) const;
  KrylovResult solve(const CrsMatrix& A, const Preconditioner& M,
                     const std::vector<double>& b,
                     std::vector<double>& x) const {
    return solve(AssembledOperator(A), M, b, x);
  }

 private:
  KrylovConfig cfg_;
};

/// Uniform dispatch used by Newton and the distributed driver: run the
/// selected method with the GmresConfig budget (rel_tol / max_iters /
/// restart / inner — restart is ignored by the CG variants) and map
/// CG-style results into GmresResult so the caller's recovery-ladder
/// plumbing is method-agnostic.
GmresResult solve_krylov(KrylovKind kind, const GmresConfig& cfg,
                         const LinearOperator& A, const Preconditioner& M,
                         const std::vector<double>& b, std::vector<double>& x);

}  // namespace mali::linalg
