#pragma once
// Compressed-row sparse matrix with a fixed sparsity graph (built once from
// the FE connectivity, as Trilinos' Tpetra graphs are) plus the dense-vector
// helpers the Krylov solvers need.

#include <cstddef>
#include <vector>

#include "portability/atomic.hpp"
#include "portability/common.hpp"

namespace mali::linalg {

class CrsMatrix {
 public:
  CrsMatrix() = default;

  /// Takes a prebuilt graph; column indices within a row must be sorted.
  CrsMatrix(std::vector<std::size_t> row_ptr, std::vector<std::size_t> cols)
      : row_ptr_(std::move(row_ptr)), cols_(std::move(cols)) {
    MALI_CHECK(!row_ptr_.empty());
    MALI_CHECK(row_ptr_.back() == cols_.size());
    vals_.assign(cols_.size(), 0.0);
  }

  [[nodiscard]] std::size_t n_rows() const noexcept {
    return row_ptr_.empty() ? 0 : row_ptr_.size() - 1;
  }
  [[nodiscard]] std::size_t nnz() const noexcept { return cols_.size(); }

  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& cols() const noexcept {
    return cols_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return vals_;
  }
  [[nodiscard]] std::vector<double>& values() noexcept { return vals_; }

  void set_zero() { std::fill(vals_.begin(), vals_.end(), 0.0); }

  /// Adds v at (r, c); the entry must exist in the graph.
  void add(std::size_t r, std::size_t c, double v) {
    const std::size_t k = find(r, c);
    MALI_ASSERT(k != npos);
    vals_[k] += v;
  }

  /// Adds v at (r, c) with an atomic read-modify-write on the stored value —
  /// the lock-free scatter path used when concurrent cells may share rows
  /// (ScatterMode::kAtomic).  The graph itself is immutable, so only the
  /// value update needs to be atomic.
  void add_atomic(std::size_t r, std::size_t c, double v) {
    const std::size_t k = find(r, c);
    MALI_ASSERT(k != npos);
    pk::atomic_add(&vals_[k], v);
  }

  /// Sets (r, c) = v; the entry must exist in the graph.
  void set(std::size_t r, std::size_t c, double v) {
    const std::size_t k = find(r, c);
    MALI_ASSERT(k != npos);
    vals_[k] = v;
  }

  [[nodiscard]] double get(std::size_t r, std::size_t c) const {
    const std::size_t k = find(r, c);
    return k == npos ? 0.0 : vals_[k];
  }

  /// Replaces row r with the identity row (Dirichlet rows).
  void set_identity_row(std::size_t r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      vals_[k] = cols_[k] == r ? 1.0 : 0.0;
    }
  }

  /// y = A x.
  void apply(const std::vector<double>& x, std::vector<double>& y) const;

  [[nodiscard]] double diagonal(std::size_t r) const { return get(r, r); }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  /// Binary search for column c in row r.
  [[nodiscard]] std::size_t find(std::size_t r, std::size_t c) const {
    std::size_t lo = row_ptr_[r];
    std::size_t hi = row_ptr_[r + 1];
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cols_[mid] < c) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return (lo < row_ptr_[r + 1] && cols_[lo] == c) ? lo : npos;
  }

  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> cols_;
  std::vector<double> vals_;
};

// ---- dense vector helpers ----

[[nodiscard]] double dot(const std::vector<double>& a,
                         const std::vector<double>& b);
[[nodiscard]] double norm2(const std::vector<double>& a);
/// y += alpha * x
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);
/// x *= alpha
void scale(double alpha, std::vector<double>& x);

}  // namespace mali::linalg
