#pragma once
// Block-Jacobi preconditioner with small dense blocks — for the velocity
// Jacobian the natural blocks are the 2x2 per-node (u,v) couplings, which
// capture the strong in-node coupling Glen's-law viscosity induces between
// the two velocity components.

#include <cstddef>
#include <vector>

#include "linalg/crs_matrix.hpp"
#include "linalg/preconditioner.hpp"

namespace mali::linalg {

class BlockJacobiPreconditioner final : public Preconditioner {
 public:
  /// block_size consecutive dofs form one dense block (rows must be
  /// grouped: dof = node * block_size + component).
  explicit BlockJacobiPreconditioner(int block_size = 2)
      : bs_(block_size) {}

  using Preconditioner::compute;
  void compute(const CrsMatrix& A) override;
  /// Uses LinearOperator::block_diagonal, so this works matrix-free.
  void compute(const LinearOperator& A) override;
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override;
  [[nodiscard]] const char* name() const override { return "block-jacobi"; }

  [[nodiscard]] int block_size() const noexcept { return bs_; }

 private:
  /// Inverts the row-major bs x bs blocks in-place (n_rows * bs entries).
  void invert_blocks(std::vector<double>&& blocks, std::size_t n_rows);

  int bs_;
  std::size_t n_blocks_ = 0;
  /// Inverted diagonal blocks, row-major per block.
  std::vector<double> inv_blocks_;
};

}  // namespace mali::linalg
