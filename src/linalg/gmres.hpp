#pragma once
// Restarted GMRES with right preconditioning and Givens-rotation least
// squares — the paper's linear solver (Trilinos/Belos GMRES), run to a
// relative tolerance of 1e-6 inside each nonlinear step.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "linalg/crs_matrix.hpp"
#include "linalg/inner_product.hpp"
#include "linalg/linear_operator.hpp"
#include "linalg/preconditioner.hpp"

namespace mali::linalg {

struct GmresConfig {
  double rel_tol = 1.0e-6;
  std::size_t max_iters = 2000;
  std::size_t restart = 100;
  bool verbose = false;
  /// Optional reduced inner product (distributed runs inject a rank-reduced
  /// one so all dots/norms — and therefore all branches — agree across
  /// ranks).  nullptr -> all-entry serial reduction.
  const InnerProduct* inner = nullptr;
};

struct GmresResult {
  bool converged = false;
  std::size_t iterations = 0;
  double rel_residual = 0.0;  ///< final ||b - Ax|| / ||b||
  /// Set when the Krylov space was exhausted without convergence (e.g. a
  /// singular Hessenberg pivot from an operator that annihilates the basis)
  /// — the solver returns with the true residual instead of cycling to the
  /// iteration cap or aborting; `reason` names the failed invariant.  The
  /// benign happy breakdown (exact convergence inside a cycle) does NOT set
  /// this flag.
  bool breakdown = false;
  std::string reason;
  /// Per-iteration (preconditioned) relative residual estimates — the
  /// convergence monitor solvers like Belos expose.
  std::vector<double> history;
};

class Gmres {
 public:
  explicit Gmres(GmresConfig cfg = {}) : cfg_(cfg) {}

  /// Solves A x = b with right preconditioning; x is the initial guess on
  /// entry and the solution on exit.  A is any LinearOperator — the
  /// assembled CRS matrix and the matrix-free Jacobian apply go through the
  /// same code path.
  GmresResult solve(const LinearOperator& A, const Preconditioner& M,
                    const std::vector<double>& b, std::vector<double>& x) const;

  /// Convenience overload for assembled matrices.
  GmresResult solve(const CrsMatrix& A, const Preconditioner& M,
                    const std::vector<double>& b,
                    std::vector<double>& x) const {
    return solve(AssembledOperator(A), M, b, x);
  }

  [[nodiscard]] const GmresConfig& config() const noexcept { return cfg_; }

 private:
  GmresConfig cfg_;
};

}  // namespace mali::linalg
