#pragma once
// Semicoarsening algebraic multigrid for extruded (layered) meshes — the
// stand-in for MALI's matrix-dependent semicoarsening AMG preconditioner
// (MDSC-AMG, Tuminaro et al. 2016).
//
// Ice-sheet meshes are extremely anisotropic: 16 km horizontally versus
// tens of meters vertically, so the strong matrix couplings run along mesh
// columns.  The hierarchy therefore first coarsens *only* in the vertical
// (pairwise aggregation of adjacent levels within each column) until each
// column has collapsed to a single node, then switches to 2x2 horizontal
// aggregation of columns — exactly the structure-exploiting strategy of the
// paper's preconditioner.  Galerkin coarse operators (A_c = P^T A P with
// piecewise-constant P), symmetric Gauss–Seidel or Chebyshev smoothing, and
// a dense LU coarse solve complete the V-cycle.
//
// The preconditioner is consumable from either side of the Jacobian split:
//  * compute(const CrsMatrix&) — the classic assembled path;
//  * compute(const LinearOperator&) — unwraps A.matrix() when one exists;
//    otherwise the fine matrix is *probed* from operator applies via the
//    structure-aware coloring of linalg::StructuredProbing (a constant
//    27 * dofs_per_node applies), and the usual Galerkin hierarchy is built
//    on the probed matrix.  With the Chebyshev smoother the fine level then
//    stays fully matrix-free: level-0 smoothing and residuals run through
//    the operator, and the probed matrix is only streamed during setup.
// See DESIGN.md §10 for the operator-probing contract.

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/chebyshev.hpp"
#include "linalg/crs_matrix.hpp"
#include "linalg/dense.hpp"
#include "linalg/preconditioner.hpp"

namespace mali::linalg {

enum class AmgSmoother {
  kSgs,        ///< symmetric Gauss–Seidel (needs the level matrix)
  kChebyshev,  ///< diagonal + operator applies only (matrix-free capable)
};

struct AmgConfig {
  int max_levels = 12;
  std::size_t coarse_max_dofs = 1200;  ///< switch to the direct coarse solve
  int pre_sweeps = 1;
  int post_sweeps = 1;
  int coarse_sgs_sweeps = 40;  ///< fallback if the coarsest level stays large
  AmgSmoother smoother = AmgSmoother::kSgs;
  ChebyshevConfig cheb{};  ///< Chebyshev smoother parameters
  /// Cache the aggregation maps from the first compute() and reuse them on
  /// every later compute() (the ensemble engine's hierarchy recycling).
  /// The aggregation is a pure function of the ExtrusionInfo — never of
  /// matrix values — so a recycled hierarchy is bit-identical to a rebuilt
  /// one; only the derivation work is skipped.  The Galerkin products are
  /// always recomputed from the new matrix.
  bool reuse_structure = false;
};

/// Mesh structure the semicoarsening (and the operator probing) needs:
/// which column and vertical level each node belongs to, plus column
/// coordinates for the horizontal phase.
///
/// Layout contract: node ids follow the extruded layout
///   node = column * levels + level
/// (levels fastest within a column — exactly mesh::ExtrudedMesh::node_id),
/// dofs are grouped per node as dof = node * dofs_per_node + component, and
/// column_x/column_y place each column on a dx-spaced lattice (holes from
/// the ice mask are fine; duplicate lattice sites are not).  Both the
/// hierarchy build and StructuredProbing rely on this contract.
struct ExtrusionInfo {
  std::size_t n_nodes = 0;
  std::size_t levels = 0;            ///< vertical levels per column
  int dofs_per_node = 2;
  std::vector<double> column_x;      ///< per column
  std::vector<double> column_y;
  double dx = 1.0;                   ///< horizontal spacing
};

class SemicoarseningAmg final : public Preconditioner {
 public:
  SemicoarseningAmg(ExtrusionInfo info, AmgConfig cfg = {});

  void compute(const CrsMatrix& A) override;
  /// Operator form: unwraps A.matrix() when assembled; probes the fine
  /// matrix from operator applies otherwise (see StructuredProbing).  When
  /// the Chebyshev smoother is configured the operator is also kept for
  /// matrix-free level-0 smoothing/residuals — it must then outlive every
  /// subsequent apply() until the next compute().
  void compute(const LinearOperator& A) override;
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override;
  [[nodiscard]] const char* name() const override {
    return "semicoarsening-amg";
  }

  [[nodiscard]] std::size_t n_levels() const noexcept {
    return levels_.size();
  }
  [[nodiscard]] std::size_t level_dofs(std::size_t l) const {
    return levels_[l].A.n_rows();
  }
  [[nodiscard]] std::size_t level_nnz(std::size_t l) const {
    return levels_[l].A.nnz();
  }

  /// Operator applies the last compute() spent probing the fine matrix
  /// (0 on the assembled path).
  [[nodiscard]] std::size_t probe_applies() const noexcept {
    return probe_applies_;
  }
  /// True when level-0 smoothing/residuals go through the live operator
  /// instead of the probed matrix.
  [[nodiscard]] bool fine_matrix_free() const noexcept {
    return fine_op_ != nullptr;
  }
  /// The fine-level matrix the hierarchy was built on (assembled copy or
  /// probed reconstruction).
  [[nodiscard]] const CrsMatrix& fine_matrix() const {
    MALI_CHECK_MSG(!levels_.empty(), "AMG: compute() not called");
    return levels_.front().A;
  }

  // ---- recycling instrumentation (ensemble engine / tests / bench) ----
  /// compute() calls that derived the aggregation maps from scratch.
  [[nodiscard]] std::size_t hierarchy_builds() const noexcept {
    return hierarchy_builds_;
  }
  /// compute() calls served from the cached structure (reuse_structure).
  [[nodiscard]] std::size_t structure_reuses() const noexcept {
    return structure_reuses_;
  }

  /// Per-level raw Chebyshev lambda estimates from the last compute()
  /// (empty when the SGS smoother is configured) — feed these back via
  /// set_chebyshev_lambda_hints to skip the power iterations on a nearby
  /// parameter point.
  [[nodiscard]] std::vector<double> chebyshev_lambda_estimates() const;
  /// Per-level raw lambda hints for the *next* compute(); entries <= 0 or
  /// beyond the hierarchy depth fall back to the power iteration.  Pass an
  /// empty vector to clear.
  void set_chebyshev_lambda_hints(std::vector<double> hints) {
    cheb_hints_ = std::move(hints);
  }

 private:
  struct Level {
    CrsMatrix A;
    std::vector<std::size_t> agg;  ///< fine dof -> coarse dof (next level)
    std::size_t n_coarse = 0;
    std::unique_ptr<Preconditioner> smoother;
    // scratch for the V-cycle
    mutable std::vector<double> r, z, rc, zc, tmp;
  };

  void build_hierarchy(CrsMatrix A_fine);
  /// Direct-LU factorization of the coarsest level (tail of the build).
  void factor_coarse();
  void setup_smoothers();
  /// y = A_l x, through the live operator on a matrix-free fine level.
  void level_apply(std::size_t l, const std::vector<double>& x,
                   std::vector<double>& y) const;
  void vcycle(std::size_t l, const std::vector<double>& r,
              std::vector<double>& z) const;

  ExtrusionInfo info_;
  AmgConfig cfg_;
  std::vector<Level> levels_;

  /// Live operator for matrix-free level-0 work (Chebyshev + probed path
  /// only); nullptr on the assembled path.  Not owned.
  const LinearOperator* fine_op_ = nullptr;
  std::size_t probe_applies_ = 0;

  // Cached aggregation structure (reuse_structure) + recycle counters.
  // The explicit flag (not cached_agg_.empty()) is the "have a cached
  // build" sentinel: a hierarchy small enough to stay single-level has no
  // aggregation maps at all, yet still recycles.
  bool have_cached_structure_ = false;
  std::size_t cached_fine_rows_ = 0;
  std::vector<std::vector<std::size_t>> cached_agg_;
  std::vector<std::size_t> cached_n_coarse_;
  std::size_t hierarchy_builds_ = 0;
  std::size_t structure_reuses_ = 0;
  std::vector<double> cheb_hints_;

  // Dense LU coarse solve.
  DenseLu coarse_lu_;
  bool use_direct_coarse_ = false;
};

}  // namespace mali::linalg
