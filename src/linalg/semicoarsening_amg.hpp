#pragma once
// Semicoarsening algebraic multigrid for extruded (layered) meshes — the
// stand-in for MALI's matrix-dependent semicoarsening AMG preconditioner
// (MDSC-AMG, Tuminaro et al. 2016).
//
// Ice-sheet meshes are extremely anisotropic: 16 km horizontally versus
// tens of meters vertically, so the strong matrix couplings run along mesh
// columns.  The hierarchy therefore first coarsens *only* in the vertical
// (pairwise aggregation of adjacent levels within each column) until each
// column has collapsed to a single node, then switches to 2x2 horizontal
// aggregation of columns — exactly the structure-exploiting strategy of the
// paper's preconditioner.  Galerkin coarse operators (A_c = P^T A P with
// piecewise-constant P), symmetric Gauss–Seidel smoothing, and a dense LU
// coarse solve complete the V-cycle.

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/crs_matrix.hpp"
#include "linalg/dense.hpp"
#include "linalg/preconditioner.hpp"

namespace mali::linalg {

struct AmgConfig {
  int max_levels = 12;
  std::size_t coarse_max_dofs = 1200;  ///< switch to the direct coarse solve
  int pre_sweeps = 1;
  int post_sweeps = 1;
  int coarse_sgs_sweeps = 40;  ///< fallback if the coarsest level stays large
};

/// Mesh structure the semicoarsening needs: which column and vertical level
/// each node belongs to, plus column coordinates for the horizontal phase.
struct ExtrusionInfo {
  std::size_t n_nodes = 0;
  std::size_t levels = 0;            ///< vertical levels per column
  int dofs_per_node = 2;
  std::vector<double> column_x;      ///< per column
  std::vector<double> column_y;
  double dx = 1.0;                   ///< horizontal spacing
  /// node id -> (column, level); defaults to the extruded layout
  /// node = column * levels + level.
};

class SemicoarseningAmg final : public Preconditioner {
 public:
  SemicoarseningAmg(ExtrusionInfo info, AmgConfig cfg = {});

  using Preconditioner::compute;  // operator form: requires A.matrix()
  void compute(const CrsMatrix& A) override;
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override;
  [[nodiscard]] const char* name() const override {
    return "semicoarsening-amg";
  }

  [[nodiscard]] std::size_t n_levels() const noexcept {
    return levels_.size();
  }
  [[nodiscard]] std::size_t level_dofs(std::size_t l) const {
    return levels_[l].A.n_rows();
  }

 private:
  struct Level {
    CrsMatrix A;
    std::vector<std::size_t> agg;  ///< fine dof -> coarse dof (next level)
    std::size_t n_coarse = 0;
    SymGaussSeidelPreconditioner smoother;
    // scratch for the V-cycle
    mutable std::vector<double> r, z, rc, zc, tmp;
  };

  void vcycle(std::size_t l, const std::vector<double>& r,
              std::vector<double>& z) const;

  ExtrusionInfo info_;
  AmgConfig cfg_;
  std::vector<Level> levels_;

  // Dense LU coarse solve.
  DenseLu coarse_lu_;
  bool use_direct_coarse_ = false;
};

}  // namespace mali::linalg
