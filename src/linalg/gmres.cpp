#include "linalg/gmres.hpp"

#include <cmath>
#include <cstdio>

#include "portability/common.hpp"

namespace mali::linalg {

namespace {
// Happy-breakdown threshold for the Arnoldi normalization: after modified
// Gram–Schmidt, a candidate vector whose norm has dropped below this
// fraction of its pre-orthogonalization norm is numerically inside the
// current Krylov space.  Dividing through by that near-zero norm would
// inject noise amplified by ~1/eps; instead the subspace is declared
// A-invariant and the (then exact) least-squares solution is taken.
constexpr double kBreakdownTol = 1.0e-14;
}  // namespace

GmresResult Gmres::solve(const LinearOperator& A, const Preconditioner& M,
                         const std::vector<double>& b,
                         std::vector<double>& x) const {
  const std::size_t n = A.rows();
  MALI_CHECK_MSG(A.cols() == n, "GMRES requires a square operator");
  MALI_CHECK(b.size() == n);
  if (x.size() != n) x.assign(n, 0.0);

  GmresResult result;
  const InnerProduct& ip = inner_or_default(cfg_.inner);
  const double bnorm = ip.norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    result.converged = true;
    return result;
  }
  if (!std::isfinite(bnorm)) {
    result.breakdown = true;
    result.reason = "non-finite right-hand side norm";
    result.rel_residual = bnorm;
    return result;
  }

  const std::size_t m = cfg_.restart;
  std::vector<std::vector<double>> V(m + 1);
  std::vector<std::vector<double>> Z(m);  // preconditioned directions
  // Hessenberg in column-major: H[j] holds column j (j+2 entries).
  std::vector<std::vector<double>> H(m);
  std::vector<double> cs(m), sn(m), g(m + 1);
  std::vector<double> r(n), w(n);

  std::size_t total_iters = 0;
  while (total_iters < cfg_.max_iters) {
    // r = b - A x
    A.apply(x, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    double beta = ip.norm2(r);
    result.rel_residual = beta / bnorm;
    if (!std::isfinite(beta)) {
      // The residual picked up a NaN/Inf (poisoned operator output or
      // right-hand side).  Iterating would only normalize garbage into the
      // Krylov basis; report a typed breakdown instead.
      result.breakdown = true;
      result.reason = "non-finite residual norm (NaN/Inf in operator output "
                      "or right-hand side)";
      return result;
    }
    if (result.rel_residual < cfg_.rel_tol) {
      result.converged = true;
      return result;
    }

    V[0] = r;
    scale(1.0 / beta, V[0]);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    std::size_t j = 0;
    for (; j < m && total_iters < cfg_.max_iters; ++j, ++total_iters) {
      // Arnoldi with right preconditioning: w = A M^{-1} v_j.
      Z[j].resize(n);
      M.apply(V[j], Z[j]);
      A.apply(Z[j], w);
      const double wnorm0 = ip.norm2(w);  // pre-orthogonalization norm
      if (!std::isfinite(wnorm0)) {
        // A M^{-1} v_j went non-finite mid-cycle (poisoned operator or
        // preconditioner).  The partially built basis is unusable from here;
        // exit with a typed breakdown rather than folding NaNs into the
        // Hessenberg and "converging" on garbage.
        result.breakdown = true;
        result.reason = "non-finite Arnoldi vector (NaN/Inf in operator or "
                        "preconditioner output)";
        return result;
      }
      H[j].assign(j + 2, 0.0);
      for (std::size_t i = 0; i <= j; ++i) {
        H[j][i] = ip.dot(w, V[i]);
        axpy(-H[j][i], V[i], w);
      }
      H[j][j + 1] = ip.norm2(w);
      // Happy breakdown: the candidate basis vector lies (numerically) in
      // the span of V[0..j] — the Krylov space is A-invariant and the
      // least-squares problem is solved exactly by the current basis.  Do
      // NOT normalize by the near-zero remainder; close the subspace and
      // exit the Arnoldi loop after folding this column into the rotations.
      const bool breakdown =
          wnorm0 == 0.0 || H[j][j + 1] <= kBreakdownTol * wnorm0;
      if (breakdown) {
        H[j][j + 1] = 0.0;
      } else {
        V[j + 1] = w;
        scale(1.0 / H[j][j + 1], V[j + 1]);
      }

      // Apply previous Givens rotations to the new column.
      for (std::size_t i = 0; i < j; ++i) {
        const double t = cs[i] * H[j][i] + sn[i] * H[j][i + 1];
        H[j][i + 1] = -sn[i] * H[j][i] + cs[i] * H[j][i + 1];
        H[j][i] = t;
      }
      // New rotation annihilating H[j][j+1].
      const double denom = std::hypot(H[j][j], H[j][j + 1]);
      cs[j] = denom == 0.0 ? 1.0 : H[j][j] / denom;
      sn[j] = denom == 0.0 ? 0.0 : H[j][j + 1] / denom;
      H[j][j] = denom;
      H[j][j + 1] = 0.0;
      g[j + 1] = -sn[j] * g[j];
      g[j] = cs[j] * g[j];

      result.iterations = total_iters + 1;
      result.rel_residual = std::abs(g[j + 1]) / bnorm;
      result.history.push_back(result.rel_residual);
      if (cfg_.verbose && (total_iters % 25 == 0)) {
        std::printf("  gmres iter %4zu  rel res %.3e\n", total_iters + 1,
                    result.rel_residual);
      }
      if (breakdown || result.rel_residual < cfg_.rel_tol) {
        ++j;
        ++total_iters;
        break;
      }
    }

    // Solve the j x j triangular system and update x += sum y_i Z_i.  A
    // zero pivot means the operator annihilated part of the Krylov basis
    // (e.g. a singular operator whose range the basis left): the direction
    // contributes nothing to the least-squares fit, so take y = 0 there and
    // report the breakdown through the result instead of aborting.
    std::vector<double> y(j, 0.0);
    for (std::size_t ii = j; ii-- > 0;) {
      if (H[ii][ii] == 0.0) {
        result.breakdown = true;
        result.reason = "singular Hessenberg pivot (rank-deficient Krylov "
                        "space)";
        y[ii] = 0.0;
        continue;
      }
      double acc = g[ii];
      for (std::size_t k = ii + 1; k < j; ++k) acc -= H[k][ii] * y[k];
      y[ii] = acc / H[ii][ii];
    }
    for (std::size_t ii = 0; ii < j; ++ii) axpy(y[ii], Z[ii], x);

    if (result.rel_residual < cfg_.rel_tol || result.breakdown) {
      // Confirm with the true residual (restart otherwise).
      A.apply(x, r);
      for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
      result.rel_residual = ip.norm2(r) / bnorm;
      if (result.rel_residual < 10.0 * cfg_.rel_tol) {
        result.converged = true;
        return result;
      }
      if (result.breakdown) {
        // The Krylov space is exhausted and the residual did not converge
        // — restarting cannot make progress.  Return the (unconverged)
        // true residual instead of burning the iteration budget.
        return result;
      }
    }
  }
  return result;
}

}  // namespace mali::linalg
