#include "linalg/block_jacobi.hpp"

#include <cmath>
#include <vector>

#include "portability/common.hpp"

namespace mali::linalg {

namespace {

/// In-place Gauss–Jordan inverse of a small dense row-major matrix.
void invert_small(std::vector<double>& a, int n) {
  std::vector<double> inv(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) inv[static_cast<std::size_t>(i) * n + i] = 1.0;
  for (int col = 0; col < n; ++col) {
    // Partial pivot.
    int piv = col;
    double best = std::abs(a[static_cast<std::size_t>(col) * n + col]);
    for (int r = col + 1; r < n; ++r) {
      const double v = std::abs(a[static_cast<std::size_t>(r) * n + col]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    MALI_CHECK_MSG(best > 0.0, "block-Jacobi: singular diagonal block");
    if (piv != col) {
      for (int j = 0; j < n; ++j) {
        std::swap(a[static_cast<std::size_t>(col) * n + j],
                  a[static_cast<std::size_t>(piv) * n + j]);
        std::swap(inv[static_cast<std::size_t>(col) * n + j],
                  inv[static_cast<std::size_t>(piv) * n + j]);
      }
    }
    const double d = 1.0 / a[static_cast<std::size_t>(col) * n + col];
    for (int j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(col) * n + j] *= d;
      inv[static_cast<std::size_t>(col) * n + j] *= d;
    }
    for (int r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[static_cast<std::size_t>(r) * n + col];
      if (f == 0.0) continue;
      for (int j = 0; j < n; ++j) {
        a[static_cast<std::size_t>(r) * n + j] -=
            f * a[static_cast<std::size_t>(col) * n + j];
        inv[static_cast<std::size_t>(r) * n + j] -=
            f * inv[static_cast<std::size_t>(col) * n + j];
      }
    }
  }
  a = std::move(inv);
}

}  // namespace

void BlockJacobiPreconditioner::invert_blocks(std::vector<double>&& blocks,
                                              std::size_t n_rows) {
  MALI_CHECK_MSG(n_rows % static_cast<std::size_t>(bs_) == 0,
                 "matrix size not divisible by block size");
  MALI_CHECK(blocks.size() == n_rows * static_cast<std::size_t>(bs_));
  n_blocks_ = n_rows / static_cast<std::size_t>(bs_);
  inv_blocks_ = std::move(blocks);

  std::vector<double> block(static_cast<std::size_t>(bs_ * bs_));
  for (std::size_t b = 0; b < n_blocks_; ++b) {
    const std::size_t off = b * static_cast<std::size_t>(bs_ * bs_);
    std::copy(inv_blocks_.begin() + static_cast<std::ptrdiff_t>(off),
              inv_blocks_.begin() +
                  static_cast<std::ptrdiff_t>(off + static_cast<std::size_t>(bs_ * bs_)),
              block.begin());
    invert_small(block, bs_);
    std::copy(block.begin(), block.end(),
              inv_blocks_.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

void BlockJacobiPreconditioner::compute(const CrsMatrix& A) {
  compute(AssembledOperator(A));
}

void BlockJacobiPreconditioner::compute(const LinearOperator& A) {
  std::vector<double> blocks;
  MALI_CHECK_MSG(A.block_diagonal(bs_, blocks),
                 "block-Jacobi: operator cannot extract the block diagonal");
  invert_blocks(std::move(blocks), A.rows());
}

void BlockJacobiPreconditioner::apply(const std::vector<double>& r,
                                      std::vector<double>& z) const {
  MALI_CHECK(r.size() == n_blocks_ * static_cast<std::size_t>(bs_));
  z.assign(r.size(), 0.0);
  for (std::size_t b = 0; b < n_blocks_; ++b) {
    const double* inv =
        inv_blocks_.data() + b * static_cast<std::size_t>(bs_ * bs_);
    const std::size_t off = b * static_cast<std::size_t>(bs_);
    for (int i = 0; i < bs_; ++i) {
      double acc = 0.0;
      for (int j = 0; j < bs_; ++j) {
        acc += inv[i * bs_ + j] * r[off + static_cast<std::size_t>(j)];
      }
      z[off + static_cast<std::size_t>(i)] = acc;
    }
  }
}

}  // namespace mali::linalg
