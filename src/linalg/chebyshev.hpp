#pragma once
// Chebyshev polynomial smoother — the matrix-free alternative to symmetric
// Gauss–Seidel inside the semicoarsening AMG.  One application runs a
// degree-k Chebyshev iteration on the diagonally preconditioned system
// D^{-1} A z = D^{-1} r, so it needs only (a) operator applies y = A x and
// (b) the diagonal of A — both available on the JFNK path without an
// assembled matrix (the diagonal comes from the colored probe or the
// operator's own extraction).  The smoothing interval [lambda_min,
// lambda_max] is estimated with a few power iterations on D^{-1} A,
// inflated by a safety factor, with the lower end a fixed fraction of the
// upper — the standard multigrid-smoother setup (Adams et al.; Ifpack2's
// Chebyshev does the same).

#include <cstddef>
#include <vector>

#include "linalg/crs_matrix.hpp"
#include "linalg/preconditioner.hpp"

namespace mali::linalg {

struct ChebyshevConfig {
  int degree = 3;           ///< operator applies per smoother application
  int power_iters = 10;     ///< power-iteration steps for lambda_max
  double boost = 1.1;       ///< safety factor on the lambda_max estimate
  double lower_frac = 0.3;  ///< lambda_min = lower_frac * lambda_max
  /// Raw lambda_max estimate to reuse instead of running the power
  /// iteration (<= 0 runs it).  The ensemble engine harvests
  /// lambda_estimate() from a neighbor member's smoother and feeds it back
  /// here; boost/lower_frac apply to the hint exactly as to a fresh
  /// estimate, so a hint equal to the fresh estimate is bit-identical.
  double lambda_hint = 0.0;
};

class ChebyshevSmoother final : public Preconditioner {
 public:
  explicit ChebyshevSmoother(ChebyshevConfig cfg = {}) : cfg_(cfg) {}

  /// Assembled path: applies use the matrix's SpMV, diagonal read directly.
  /// The matrix must outlive the smoother.
  void compute(const CrsMatrix& A) override;

  /// Operator path: unwraps A.matrix() when the operator wraps an
  /// assembled matrix (the matrix, not the possibly-temporary wrapper, is
  /// kept); otherwise requires A.diagonal() and the operator must outlive
  /// every subsequent apply().
  void compute(const LinearOperator& A) override;

  /// Operator path with an externally supplied diagonal (e.g. the probed
  /// fine-level diagonal the AMG already holds) — keeps the smoother usable
  /// on operators with no diagonal extraction of their own.
  void compute(const LinearOperator& A, std::vector<double> diag);

  /// z ~= A^{-1} r: degree-`cfg.degree` Chebyshev iteration from z = 0.
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override;

  [[nodiscard]] const char* name() const override { return "chebyshev"; }

  /// Estimated spectral bounds of D^{-1} A (after boost); for tests.
  [[nodiscard]] double lambda_max() const noexcept { return lmax_; }
  [[nodiscard]] double lambda_min() const noexcept { return lmin_; }
  /// Raw dominant-eigenvalue estimate before the boost factor — the value
  /// to pass as ChebyshevConfig::lambda_hint to skip the power iteration.
  [[nodiscard]] double lambda_estimate() const noexcept {
    return lambda_est_;
  }
  /// True when the last compute() used the hint (no power iteration ran).
  [[nodiscard]] bool used_hint() const noexcept { return used_hint_; }

 private:
  void finish_setup(std::vector<double> diag);
  void apply_op(const std::vector<double>& x, std::vector<double>& y) const;

  ChebyshevConfig cfg_;
  const CrsMatrix* mat_ = nullptr;
  const LinearOperator* op_ = nullptr;
  std::vector<double> inv_diag_;
  double lmax_ = 0.0, lmin_ = 0.0;
  double lambda_est_ = 0.0;
  bool used_hint_ = false;
  // Chebyshev scratch (apply is logically const).
  mutable std::vector<double> d_, res_, tmp_;
};

}  // namespace mali::linalg
