#pragma once
// Colored operator probing for extruded meshes — reconstructs the assembled
// fine-level matrix of a matrix-free operator from a *constant* number of
// operator applies.
//
// The FO Stokes Jacobian on the extruded lattice couples each node only to
// the (at most) 27 nodes within one lattice step in (i, j, level): the
// vertical lines are tridiagonal in levels and the horizontal couplings
// reach one column in each direction (every cell-sharing neighbor is within
// Chebyshev distance 1 of the lattice index, holes in the ice mask only
// remove neighbors).  Coloring dof columns by
//   (i mod 3, j mod 3, level mod 3, component)
// guarantees that any two same-colored columns are at least three lattice
// steps apart, so no row of the operator sees more than one column per
// color: applying the operator to the 0/1 indicator vector of a color reads
// off every entry of those columns exactly.  That is 27 * dofs_per_node
// probe applies regardless of mesh size — the structure-aware probing the
// matrix-dependent semicoarsening AMG needs to run on the JFNK path (see
// DESIGN.md §10 for the contract `ExtrusionInfo` must satisfy).

#include <cstddef>
#include <vector>

#include "linalg/crs_matrix.hpp"
#include "linalg/linear_operator.hpp"
#include "linalg/semicoarsening_amg.hpp"  // ExtrusionInfo

namespace mali::linalg {

class StructuredProbing {
 public:
  /// Builds the structural superset graph (the full 3x3x3 lattice stencil
  /// expanded to dofs_per_node blocks) and the probe coloring from the
  /// extrusion structure.  Requires the ExtrusionInfo layout contract:
  /// node = column * levels + level, columns on a dx-spaced lattice.
  explicit StructuredProbing(const ExtrusionInfo& info);

  /// Number of operator applies probe() performs (non-empty colors only);
  /// bounded by 27 * dofs_per_node independent of mesh size.
  [[nodiscard]] std::size_t n_probes() const noexcept { return n_probes_; }

  /// Total dof count of the probed operator.
  [[nodiscard]] std::size_t n_dofs() const noexcept {
    return color_of_.size();
  }

  /// Structural nonzeros of the probing graph (a superset of the true
  /// sparsity; entries absent from the operator probe to 0).
  [[nodiscard]] std::size_t graph_nnz() const noexcept { return cols_.size(); }

  /// Reconstructs A entrywise on the structural graph: one apply per
  /// non-empty color, each recovering all columns of that color exactly.
  /// A must be square with rows() == n_dofs().
  [[nodiscard]] CrsMatrix probe(const LinearOperator& A) const;

 private:
  std::vector<std::size_t> color_of_;             ///< dof -> color
  std::vector<std::vector<std::size_t>> members_; ///< color -> dofs
  std::vector<std::size_t> row_ptr_, cols_;       ///< structural dof graph
  std::size_t n_probes_ = 0;
};

}  // namespace mali::linalg
