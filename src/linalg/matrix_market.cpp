#include "linalg/matrix_market.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "portability/common.hpp"

namespace mali::linalg {

namespace {

std::string next_content_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] != '%') return line;
  }
  return {};
}

}  // namespace

void write_matrix_market(const std::string& path, const CrsMatrix& A) {
  std::ofstream os(path);
  MALI_CHECK_MSG(os.good(), "cannot open " + path);
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << "% written by MiniMALI\n";
  os << A.n_rows() << ' ' << A.n_rows() << ' ' << A.nnz() << '\n';
  os.precision(17);
  const auto& rp = A.row_ptr();
  const auto& cols = A.cols();
  const auto& vals = A.values();
  for (std::size_t r = 0; r < A.n_rows(); ++r) {
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      os << r + 1 << ' ' << cols[k] + 1 << ' ' << vals[k] << '\n';
    }
  }
  MALI_CHECK_MSG(os.good(), "write failed: " + path);
}

CrsMatrix read_matrix_market(const std::string& path) {
  std::ifstream is(path);
  MALI_CHECK_MSG(is.good(), "cannot open " + path);
  std::string header;
  std::getline(is, header);
  MALI_CHECK_MSG(header.find("%%MatrixMarket") == 0 &&
                     header.find("coordinate") != std::string::npos,
                 "not a coordinate MatrixMarket file: " + path);
  MALI_CHECK_MSG(header.find("general") != std::string::npos,
                 "only 'general' symmetry is supported: " + path);

  std::istringstream dims(next_content_line(is));
  std::size_t n_rows = 0, n_cols = 0, nnz = 0;
  dims >> n_rows >> n_cols >> nnz;
  MALI_CHECK_MSG(n_rows == n_cols, "only square matrices are supported");
  MALI_CHECK(n_rows > 0);

  // Accumulate entries (the format permits duplicates: sum them).
  std::vector<std::map<std::size_t, double>> rows(n_rows);
  for (std::size_t k = 0; k < nnz; ++k) {
    std::size_t r = 0, c = 0;
    double v = 0.0;
    is >> r >> c >> v;
    MALI_CHECK_MSG(static_cast<bool>(is), "truncated MatrixMarket file");
    MALI_CHECK(r >= 1 && r <= n_rows && c >= 1 && c <= n_cols);
    rows[r - 1][c - 1] += v;
  }

  std::vector<std::size_t> rp{0}, cols;
  for (const auto& row : rows) {
    for (const auto& [c, v] : row) cols.push_back(c);
    rp.push_back(cols.size());
  }
  CrsMatrix A(std::move(rp), std::move(cols));
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (const auto& [c, v] : rows[r]) A.set(r, c, v);
  }
  return A;
}

void write_matrix_market(const std::string& path,
                         const std::vector<double>& v) {
  std::ofstream os(path);
  MALI_CHECK_MSG(os.good(), "cannot open " + path);
  os << "%%MatrixMarket matrix array real general\n";
  os << v.size() << " 1\n";
  os.precision(17);
  for (double x : v) os << x << '\n';
  MALI_CHECK_MSG(os.good(), "write failed: " + path);
}

std::vector<double> read_matrix_market_vector(const std::string& path) {
  std::ifstream is(path);
  MALI_CHECK_MSG(is.good(), "cannot open " + path);
  std::string header;
  std::getline(is, header);
  MALI_CHECK_MSG(header.find("%%MatrixMarket") == 0 &&
                     header.find("array") != std::string::npos,
                 "not an array MatrixMarket file: " + path);
  std::istringstream dims(next_content_line(is));
  std::size_t n = 0, m = 0;
  dims >> n >> m;
  MALI_CHECK_MSG(m == 1, "expected an n x 1 array");
  std::vector<double> v(n);
  for (auto& x : v) {
    is >> x;
    MALI_CHECK_MSG(static_cast<bool>(is), "truncated array file");
  }
  return v;
}

}  // namespace mali::linalg
