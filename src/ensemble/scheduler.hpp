#pragma once
// Deterministic member scheduler: packs ensemble members onto rank groups
// with longest-processing-time-first (LPT) greedy packing.  All ties break
// toward the lower id, so the same manifest always produces the same
// member -> group packing — the scheduler-determinism contract test_ensemble
// pins (DESIGN.md §15).

#include <cstddef>
#include <vector>

namespace mali::ensemble {

struct Schedule {
  /// groups[g] = member ids assigned to group g, in execution order.
  std::vector<std::vector<std::size_t>> groups;
  /// Per-group total estimated cost (same units as the input costs).
  std::vector<double> load;

  /// Members flattened in the engine's execution order: round-robin over
  /// the groups (position 0 of every group, then position 1, ...), so
  /// early members of every group complete first and become warm-start
  /// donors for their group peers.
  [[nodiscard]] std::vector<std::size_t> execution_order() const;
};

/// LPT packing of `n_members` onto `n_groups`.  `cost` estimates per-member
/// work (empty = uniform); members are placed in descending-cost order
/// (ties: lower id first) onto the least-loaded group (ties: lowest group).
/// Deterministic: a pure function of (n_members, n_groups, cost).
[[nodiscard]] Schedule schedule_members(std::size_t n_members,
                                        std::size_t n_groups,
                                        const std::vector<double>& cost = {});

}  // namespace mali::ensemble
