#pragma once
// Content-hashed ensemble result cache.  A member's cache key is the
// FNV-1a hash of a canonical string covering everything that determines
// its result bit-for-bit: mesh spec, run/solver settings, and the member's
// sweep parameters, all doubles formatted shortest-round-trip
// (engine.hpp's member_canonical_key builds it).  A hit returns the
// record stored at first computation — repeated members are free and
// pinned bit-exact.  Warm-start donors do NOT enter the key: warm starts
// change only the Newton iteration path, and the converged result agrees
// with a cold start to the Newton tolerance (pinned <= 1e-10/dof by
// test_ensemble); the cached record is whatever was computed first.
//
// The cache is two-level: an in-memory map for this process plus an
// optional on-disk store (one "MALIENSR" binary file per key under the
// cache dir) so later runs of `mali ensemble` are served across processes.
// Disk hits verify the full canonical string, not just the 64-bit hash, so
// a hash collision degrades to a miss, never a wrong result.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mali::ensemble {

/// Everything a completed member run produced that downstream consumers
/// need: the deterministic scalar diagnostics for the results document,
/// plus the final fields (U doubles as the warm-start donor state).
struct MemberRecord {
  std::string canonical;  ///< full canonical key (collision guard)
  /// Degradation status: "ok" (first attempt succeeded), "retried"
  /// (succeeded after >= 1 failed attempt), "quarantined" (every attempt
  /// in the retry budget failed; the scalar diagnostics and fields below
  /// are absent/zero and the record is never cached or warm-start donated).
  std::string status = "ok";
  int attempts = 1;   ///< solve attempts consumed (1 on the clean path)
  std::string fault;  ///< last failure message ("" when attempts == 1)
  int steps = 0;
  int velocity_solves = 0;
  int newton_iters = 0;  ///< summed over accepted steps
  int rejections = 0;
  double volume_initial = 0.0;
  double volume_final = 0.0;
  double mean_velocity = 0.0;
  double max_mass_residual = 0.0;
  std::vector<double> U;  ///< final velocity (warm-start donor)
  std::vector<double> H;  ///< final thickness
};

class ResultCache {
 public:
  /// `dir` empty = memory-only; otherwise disk records live under it (the
  /// directory is created on first store).
  explicit ResultCache(std::string dir = "");

  /// Lookup by canonical key: memory first, then disk (a disk hit is
  /// promoted into memory).  Returns nullptr on a miss.  A disk record
  /// whose stored canonical string mismatches (hash collision, corrupt
  /// file) is treated as a miss.
  [[nodiscard]] const MemberRecord* find(const std::string& canonical);

  /// Stores a record under its canonical key (in memory, and on disk when
  /// a cache dir is configured).  Overwrites any previous record.
  void store(const MemberRecord& rec);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// FNV-1a 64-bit hash — the content hash behind every key.
  [[nodiscard]] static std::uint64_t fnv1a(const std::string& s);
  /// Fixed-width lowercase hex of a key hash (filenames, JSON "key").
  [[nodiscard]] static std::string key_hex(std::uint64_t h);

 private:
  [[nodiscard]] std::string path_for(const std::string& canonical) const;

  std::string dir_;
  bool dir_ready_ = false;
  std::unordered_map<std::string, MemberRecord> mem_;
};

}  // namespace mali::ensemble
