#include "ensemble/manifest.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "ensemble/sweep.hpp"
#include "portability/common.hpp"
#include "util/fp_format.hpp"

namespace mali::ensemble {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

double parse_double(const std::string& val, const std::string& line) {
  char* end = nullptr;
  const std::string v = trim(val);
  MALI_CHECK_MSG(!v.empty(),
                 "ensemble manifest: empty value in '" + line + "'");
  const double x = std::strtod(v.c_str(), &end);
  MALI_CHECK_MSG(end == v.c_str() + v.size() && std::isfinite(x),
                 "ensemble manifest: '" + v +
                     "' is not a finite number in '" + line + "'");
  return x;
}

int parse_int(const std::string& val, const std::string& line) {
  const double x = parse_double(val, line);
  MALI_CHECK_MSG(x == std::floor(x) && std::abs(x) < 1e9,
                 "ensemble manifest: '" + trim(val) +
                     "' is not an integer in '" + line + "'");
  return static_cast<int>(x);
}

std::vector<double> parse_double_list(const std::string& val,
                                      const std::string& line) {
  std::vector<double> out;
  std::stringstream ss(val);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(parse_double(item, line));
  MALI_CHECK_MSG(!out.empty(),
                 "ensemble manifest: empty sweep in '" + line + "'");
  return out;
}

std::vector<std::string> parse_spec_list(const std::string& val,
                                         const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(val);
  std::string item;
  while (std::getline(ss, item, ';')) {
    const std::string spec = trim(item);
    MALI_CHECK_MSG(!spec.empty(),
                   "ensemble manifest: empty forcing spec in '" + line + "'");
    out.push_back(spec);
  }
  MALI_CHECK_MSG(!out.empty(),
                 "ensemble manifest: empty sweep in '" + line + "'");
  return out;
}

std::string join_doubles(const std::vector<double>& v) {
  std::string s;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) s += ',';
    s += util::format_double(v[i]);
  }
  return s;
}

std::string join_specs(const std::vector<std::string>& v) {
  std::string s;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) s += ';';
    s += v[i];
  }
  return s;
}

void validate(const EnsembleManifest& m) {
  MALI_CHECK_MSG(std::isfinite(m.dx_km) && m.dx_km > 0.0,
                 "ensemble manifest: dx_km must be positive");
  MALI_CHECK_MSG(m.layers >= 1, "ensemble manifest: layers must be >= 1");
  MALI_CHECK_MSG(std::isfinite(m.years) && m.years > 0.0,
                 "ensemble manifest: years must be positive");
  MALI_CHECK_MSG(m.velocity_every >= -1,
                 "ensemble manifest: velocity_every must be >= -1");
  MALI_CHECK_MSG(m.newton_max_iters >= 1,
                 "ensemble manifest: newton_max_iters must be >= 1");
  MALI_CHECK_MSG(std::isfinite(m.newton_tol) && m.newton_tol > 0.0,
                 "ensemble manifest: newton_tol must be positive");
  MALI_CHECK_MSG(m.rank_groups >= 1,
                 "ensemble manifest: rank_groups must be >= 1");
  for (const double v : m.glen_n) {
    MALI_CHECK_MSG(v >= 1.0, "ensemble manifest: sweep.glen_n values must "
                             "be >= 1");
  }
  for (const double v : m.glen_A) {
    MALI_CHECK_MSG(v > 0.0,
                   "ensemble manifest: sweep.glen_A values must be > 0");
  }
  for (const double v : m.friction_scale) {
    MALI_CHECK_MSG(v > 0.0, "ensemble manifest: sweep.friction_scale values "
                            "must be > 0");
  }
  MALI_CHECK_MSG(m.n_members() >= 1, "ensemble manifest: no members");
}

}  // namespace

EnsembleManifest parse_manifest(const std::string& text) {
  EnsembleManifest m;
  std::set<std::string> seen;
  std::stringstream ss(text);
  std::string raw;
  while (std::getline(ss, raw)) {
    // Strip trailing comment, then whitespace.
    const std::size_t hash = raw.find('#');
    const std::string line =
        trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    MALI_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "ensemble manifest: expected key = value, got '" + line +
                       "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string val = trim(line.substr(eq + 1));
    MALI_CHECK_MSG(seen.insert(key).second,
                   "ensemble manifest: duplicate key '" + key + "'");

    if (key == "name") {
      MALI_CHECK_MSG(!val.empty(), "ensemble manifest: empty name");
      m.name = val;
    } else if (key == "dx_km") {
      m.dx_km = parse_double(val, line);
    } else if (key == "layers") {
      m.layers = parse_int(val, line);
    } else if (key == "years") {
      m.years = parse_double(val, line);
    } else if (key == "velocity_every") {
      m.velocity_every = parse_int(val, line);
    } else if (key == "newton_max_iters") {
      m.newton_max_iters = parse_int(val, line);
    } else if (key == "newton_tol") {
      m.newton_tol = parse_double(val, line);
    } else if (key == "rank_groups") {
      m.rank_groups = parse_int(val, line);
    } else if (key == "sweep.glen_n") {
      m.glen_n = parse_double_list(val, line);
    } else if (key == "sweep.glen_A") {
      m.glen_A = parse_double_list(val, line);
    } else if (key == "sweep.friction_scale") {
      m.friction_scale = parse_double_list(val, line);
    } else if (key == "sweep.forcing") {
      m.forcing = parse_spec_list(val, line);
    } else {
      MALI_CHECK_MSG(false, "ensemble manifest: unknown key '" + key +
                                "' (name | dx_km | layers | years | "
                                "velocity_every | newton_max_iters | "
                                "newton_tol | rank_groups | sweep.glen_n | "
                                "sweep.glen_A | sweep.friction_scale | "
                                "sweep.forcing)");
    }
  }
  validate(m);
  return m;
}

EnsembleManifest load_manifest(const std::string& path) {
  std::ifstream in(path);
  MALI_CHECK_MSG(in.good(),
                 "ensemble manifest: cannot read '" + path + "'");
  std::ostringstream body;
  body << in.rdbuf();
  return parse_manifest(body.str());
}

std::string EnsembleManifest::canonical() const {
  std::string s;
  s += "name = " + name + "\n";
  s += "dx_km = " + util::format_double(dx_km) + "\n";
  s += "layers = " + std::to_string(layers) + "\n";
  s += "years = " + util::format_double(years) + "\n";
  s += "velocity_every = " + std::to_string(velocity_every) + "\n";
  s += "newton_max_iters = " + std::to_string(newton_max_iters) + "\n";
  s += "newton_tol = " + util::format_double(newton_tol) + "\n";
  s += "rank_groups = " + std::to_string(rank_groups) + "\n";
  s += "sweep.glen_n = " + join_doubles(glen_n) + "\n";
  s += "sweep.glen_A = " + join_doubles(glen_A) + "\n";
  s += "sweep.friction_scale = " + join_doubles(friction_scale) + "\n";
  s += "sweep.forcing = " + join_specs(forcing) + "\n";
  return s;
}

std::vector<MemberParams> expand_members(const EnsembleManifest& m) {
  const auto tuples = cross_product_indices(
      {m.glen_n.size(), m.glen_A.size(), m.friction_scale.size(),
       m.forcing.size()});
  std::vector<MemberParams> members;
  members.reserve(tuples.size());
  for (std::size_t k = 0; k < tuples.size(); ++k) {
    MemberParams p;
    p.id = k;
    p.glen_n = m.glen_n[tuples[k][0]];
    p.glen_A = m.glen_A[tuples[k][1]];
    p.friction_scale = m.friction_scale[tuples[k][2]];
    p.forcing = m.forcing[tuples[k][3]];
    members.push_back(std::move(p));
  }
  return members;
}

}  // namespace mali::ensemble
