#pragma once
// Ensemble batch manifest — the strict key=value grammar (PR-7 Forcing
// spec style) that declares a parameter sweep.  One manifest = one shared
// mesh/solver setup plus up to four sweep dimensions:
//
//   # comments and blank lines are ignored
//   name = warming-sweep          # optional label
//   dx_km = 220                   # horizontal resolution (km)
//   layers = 3                    # vertical extrusion layers
//   years = 0.5                   # forecast horizon per member
//   velocity_every = 1            # ForecastConfig cadence (-1 | 0 | N)
//   newton_max_iters = 8
//   newton_tol = 1e-6
//   rank_groups = 1               # scheduler groups (ensemble/scheduler)
//   sweep.glen_n = 3,3.2          # comma-separated doubles
//   sweep.glen_A = 1e-16
//   sweep.friction_scale = 1,1.2
//   sweep.forcing = constant;ramp:anomaly=-0.5,end=2   # ';'-separated
//                                                      # Forcing specs
//
// Members are the cross product of the sweep dimensions in the fixed order
// glen_n x glen_A x friction_scale x forcing, last dimension fastest
// (ensemble/sweep.hpp) — member ids are stable across runs by definition.
// Every malformed line (unknown key, duplicate key, unparsable or
// non-finite value, empty sweep, out-of-range setting) is a typed
// mali::Error naming the offending line.  canonical() emits a normalized
// manifest that reparses to an identical object, doubles formatted
// shortest-round-trip (util/fp_format.hpp).

#include <cstddef>
#include <string>
#include <vector>

namespace mali::ensemble {

struct EnsembleManifest {
  std::string name = "ensemble";
  double dx_km = 220.0;
  int layers = 3;
  double years = 0.5;
  int velocity_every = 1;
  int newton_max_iters = 8;
  double newton_tol = 1.0e-6;
  int rank_groups = 1;
  std::vector<double> glen_n{3.0};
  std::vector<double> glen_A{1.0e-16};
  std::vector<double> friction_scale{1.0};
  std::vector<std::string> forcing{"constant"};

  [[nodiscard]] std::size_t n_members() const {
    return glen_n.size() * glen_A.size() * friction_scale.size() *
           forcing.size();
  }

  /// Normalized manifest text: parse_manifest(canonical()) == *this
  /// field-for-field (doubles bitwise).
  [[nodiscard]] std::string canonical() const;
};

/// One expanded sweep point.  `id` is the cross-product position (the
/// scheduler and the results document are keyed by it).
struct MemberParams {
  std::size_t id = 0;
  double glen_n = 3.0;
  double glen_A = 1.0e-16;
  double friction_scale = 1.0;
  std::string forcing = "constant";
};

/// Parses manifest text (grammar above).  Throws mali::Error on any
/// malformed line; never returns a partially-filled manifest.
[[nodiscard]] EnsembleManifest parse_manifest(const std::string& text);

/// Reads and parses a manifest file; throws mali::Error if unreadable.
[[nodiscard]] EnsembleManifest load_manifest(const std::string& path);

/// Deterministic cross-product expansion (member id = tuple index).
[[nodiscard]] std::vector<MemberParams> expand_members(
    const EnsembleManifest& m);

}  // namespace mali::ensemble
