#pragma once
// EnsembleEngine — batched many-run execution with amortized setup
// (DESIGN.md §15).  One engine run executes every member of a manifest's
// parameter sweep over ONE shared StokesFOProblem (mesh, partition,
// coloring, staged worksets built once), with three reuse mechanisms the
// cold per-member path pays for every time:
//
//   * AMG hierarchy recycling — one shared SemicoarseningAmg with
//     reuse_structure: aggregation maps derive once, every later Newton
//     linearization of every member replays them (bit-identical to a
//     rebuild; see AmgConfig::reuse_structure);
//   * Chebyshev spectral-bound recycling — lambda estimates harvested
//     after a member complete feed the next member's smoother setups,
//     skipping the power iterations;
//   * Newton warm starts — each member starts from the final velocity of
//     the nearest already-completed member (L1 distance in sweep-index
//     space, ties to the lower id), instead of the analytic guess.
//
// A content-hashed result cache (ensemble/result_cache.hpp) makes repeated
// members free and bit-exact.  Determinism contract: members execute in
// Schedule::execution_order() (a pure function of the manifest), every
// member's result is pinned at first computation, and the members section
// of the results document is byte-identical between a computing run and a
// cache-served rerun.  Warm starts and spectral hints change only the
// iteration path; warm and cold converge to the same root within the
// Newton tolerance (pinned <= 1e-10/dof by test_ensemble).

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "ensemble/manifest.hpp"
#include "ensemble/result_cache.hpp"
#include "ensemble/scheduler.hpp"
#include "resilience/fault_injector.hpp"

namespace mali::ensemble {

struct EnsembleConfig {
  bool warm_start = true;   ///< neighbor warm starts for Newton
  bool recycle = true;      ///< AMG structure + Chebyshev bound recycling
  bool use_cache = true;    ///< consult/populate the result cache
  std::string cache_dir;    ///< disk cache location (empty = memory only)
  /// Ranks per member velocity solve (> 1 uses the PR-5 in-process SPMD
  /// runtime; the shared-AMG recycling applies to the serial path only).
  int ranks_per_group = 1;
  bool verbose = false;

  // ---- graceful degradation (DESIGN.md §16) ---------------------------
  /// Failed member solves are retried up to this many times before the
  /// member is quarantined; the batch never aborts on a member failure.
  int member_retries = 0;
  /// Base delay before retry attempt k, doubled per attempt (seconds).
  double retry_backoff_s = 0.0;
  /// Arm the PR-4 resilience surface inside each member's forecast (the
  /// serial recovery ladder / the distributed coordinated-restart loop,
  /// depending on ranks_per_group).
  bool resilience = false;
  /// Deterministic member fault injection (CLI / tests).  The member id is
  /// mixed into the spec's member salt, so ensemble members fault
  /// decorrelated dofs.
  bool inject_fault = false;
  resilience::FaultSpec fault{};
  /// Restrict injection to one member id; -1 injects into every member.
  int fault_member = -1;
  /// Test seam: invoked before each attempt of each member (member id,
  /// 0-based attempt).  A throwing seam counts as that attempt's failure,
  /// which is how tests exercise the retried/quarantined paths without
  /// depending on driver-internal fault absorption.
  std::function<void(std::size_t, int)> before_attempt;
};

/// Non-deterministic run accounting (never part of the members document).
struct EnsembleStats {
  std::size_t members = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t warm_starts = 0;
  std::size_t retried = 0;      ///< members that needed >= 1 retry
  std::size_t quarantined = 0;  ///< members that exhausted the retry budget
  std::size_t amg_builds = 0;   ///< hierarchy derivations from scratch
  std::size_t amg_reuses = 0;   ///< hierarchy builds served from the cache
  double wall_seconds = 0.0;
};

class EnsembleEngine {
 public:
  struct RunOutput {
    std::vector<MemberParams> members;   ///< by member id
    std::vector<MemberRecord> records;   ///< by member id
    Schedule schedule;
    EnsembleStats stats;
  };

  EnsembleEngine(EnsembleManifest manifest, EnsembleConfig cfg = {});

  /// Executes every member (or serves it from the cache) and returns the
  /// full result set.  Throws mali::Error on malformed member forcing
  /// specs or solver-configuration errors; member solve failures surface
  /// as the driver's typed errors.
  [[nodiscard]] RunOutput run();

  [[nodiscard]] const EnsembleManifest& manifest() const noexcept {
    return manifest_;
  }
  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }

  /// Canonical cache-key string for one member: schema version + mesh +
  /// run/solver settings + sweep parameters, doubles shortest-round-trip.
  /// Everything that pins the result enters; labels (manifest name) and
  /// scheduling hints (rank_groups) do not.
  [[nodiscard]] static std::string member_canonical_key(
      const EnsembleManifest& m, const MemberParams& p, int ranks);

  /// Deterministic members section: a JSON array with one fixed-key-order
  /// object per member, byte-identical between a computing run and a
  /// cache-served rerun of the same manifest.
  [[nodiscard]] static std::string members_json(const RunOutput& out);

  /// Full results document: schema header, canonical manifest, schedule,
  /// the members section, and (optionally) the run stats.
  [[nodiscard]] static std::string results_json(const RunOutput& out,
                                                const EnsembleManifest& m,
                                                bool include_stats);

 private:
  EnsembleManifest manifest_;
  EnsembleConfig cfg_;
  ResultCache cache_;
};

}  // namespace mali::ensemble
