#include "ensemble/result_cache.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include "portability/common.hpp"

namespace mali::ensemble {

namespace {

constexpr char kMagic[8] = {'M', 'A', 'L', 'I', 'E', 'N', 'S', 'R'};
// v2 adds the degradation fields (status / attempts / fault).  A version
// mismatch is a miss, so v1 files degrade to recomputation, never to a
// misparse.
constexpr std::uint32_t kVersion = 2;

template <class T>
void put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
bool get(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return in.good();
}

void put_string(std::ofstream& out, const std::string& s) {
  const std::uint64_t n = s.size();
  put(out, n);
  out.write(s.data(), static_cast<std::streamsize>(n));
}

bool get_string(std::ifstream& in, std::string& s) {
  std::uint64_t n = 0;
  if (!get(in, n) || n > (1ull << 30)) return false;
  s.resize(n);
  in.read(s.data(), static_cast<std::streamsize>(n));
  return in.good();
}

void put_vector(std::ofstream& out, const std::vector<double>& v) {
  const std::uint64_t n = v.size();
  put(out, n);
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
}

bool get_vector(std::ifstream& in, std::vector<double>& v) {
  std::uint64_t n = 0;
  if (!get(in, n) || n > (1ull << 30)) return false;
  v.resize(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  return in.good();
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::uint64_t ResultCache::fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string ResultCache::key_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string ResultCache::path_for(const std::string& canonical) const {
  return dir_ + "/" + key_hex(fnv1a(canonical)) + ".ensr";
}

const MemberRecord* ResultCache::find(const std::string& canonical) {
  const auto it = mem_.find(canonical);
  if (it != mem_.end()) return &it->second;
  if (dir_.empty()) return nullptr;

  std::ifstream in(path_for(canonical), std::ios::binary);
  if (!in.good()) return nullptr;

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return nullptr;
  }
  std::uint32_t version = 0;
  if (!get(in, version) || version != kVersion) return nullptr;

  MemberRecord rec;
  if (!get_string(in, rec.canonical)) return nullptr;
  // The filename is only the 64-bit hash; the stored canonical string is
  // the real key.  A mismatch (collision or corruption) is a miss.
  if (rec.canonical != canonical) return nullptr;
  bool ok = get_string(in, rec.status) && get(in, rec.attempts) &&
            get_string(in, rec.fault) && get(in, rec.steps) &&
            get(in, rec.velocity_solves) && get(in, rec.newton_iters) &&
            get(in, rec.rejections) && get(in, rec.volume_initial) &&
            get(in, rec.volume_final) && get(in, rec.mean_velocity) &&
            get(in, rec.max_mass_residual) && get_vector(in, rec.U) &&
            get_vector(in, rec.H);
  if (!ok) return nullptr;

  const auto [pos, inserted] = mem_.emplace(canonical, std::move(rec));
  (void)inserted;
  return &pos->second;
}

void ResultCache::store(const MemberRecord& rec) {
  MALI_CHECK_MSG(!rec.canonical.empty(),
                 "ResultCache: record has no canonical key");
  mem_[rec.canonical] = rec;
  if (dir_.empty()) return;

  if (!dir_ready_) {
    ::mkdir(dir_.c_str(), 0755);  // fine if it already exists
    dir_ready_ = true;
  }
  const std::string path = path_for(rec.canonical);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  MALI_CHECK_MSG(out.good(),
                 "ResultCache: cannot write '" + path + "'");
  out.write(kMagic, sizeof(kMagic));
  put(out, kVersion);
  put_string(out, rec.canonical);
  put_string(out, rec.status);
  put(out, rec.attempts);
  put_string(out, rec.fault);
  put(out, rec.steps);
  put(out, rec.velocity_solves);
  put(out, rec.newton_iters);
  put(out, rec.rejections);
  put(out, rec.volume_initial);
  put(out, rec.volume_final);
  put(out, rec.mean_velocity);
  put(out, rec.max_mass_residual);
  put_vector(out, rec.U);
  put_vector(out, rec.H);
  MALI_CHECK_MSG(out.good(), "ResultCache: write failed for '" + path + "'");
}

}  // namespace mali::ensemble
