#pragma once
// Deterministic parameter-sweep expansion — the cross-product core shared
// by the ensemble manifest (ensemble/manifest.hpp) and the paper's fixed
// 8-case study (core/study.hpp, refactored in PR 8 to be a client of this).

#include <cstddef>
#include <vector>

namespace mali::ensemble {

/// Expands dimension sizes {n0, n1, ...} into every index tuple, row-major
/// with the LAST dimension fastest — tuple k enumerates like an odometer.
/// The order is the member-id order everywhere in the ensemble engine, so
/// it is part of the determinism contract (DESIGN.md §15).  An empty dims
/// list yields one empty tuple; a zero-sized dimension yields no tuples.
[[nodiscard]] std::vector<std::vector<std::size_t>> cross_product_indices(
    const std::vector<std::size_t>& dims);

}  // namespace mali::ensemble
