#include "ensemble/engine.hpp"

#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <thread>
#include <utility>

#include "ensemble/sweep.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/common.hpp"
#include "timestepping/forecast_driver.hpp"
#include "util/fp_format.hpp"
#include "util/json_writer.hpp"

namespace mali::ensemble {

namespace {

/// Non-owning preconditioner wrapper the ForecastDriver's make_precond
/// factory hands out, so every member's Newton solves share ONE recycled
/// SemicoarseningAmg instead of each driver building its own.  The shared
/// AMG must outlive every driver (the engine owns both).
class SharedPrecond final : public linalg::Preconditioner {
 public:
  explicit SharedPrecond(linalg::Preconditioner& inner) : inner_(&inner) {}
  void compute(const linalg::CrsMatrix& A) override { inner_->compute(A); }
  void compute(const linalg::LinearOperator& A) override {
    inner_->compute(A);
  }
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override {
    inner_->apply(r, z);
  }
  [[nodiscard]] const char* name() const override { return inner_->name(); }

 private:
  linalg::Preconditioner* inner_;
};

int total_newton_iters(const timestepping::ForecastResult& r) {
  int total = 0;
  for (const auto& row : r.ledger) total += row.newton_iters;
  return total;
}

/// Nearest already-completed member in sweep-index space (L1 distance over
/// the four dimensions, ties to the lower member id); SIZE_MAX when none.
std::size_t nearest_donor(
    const std::vector<std::vector<std::size_t>>& tuples,
    const std::vector<bool>& completed, std::size_t id) {
  std::size_t best = std::numeric_limits<std::size_t>::max();
  std::size_t best_dist = std::numeric_limits<std::size_t>::max();
  for (std::size_t j = 0; j < completed.size(); ++j) {
    if (!completed[j] || j == id) continue;
    std::size_t dist = 0;
    for (std::size_t d = 0; d < tuples[id].size(); ++d) {
      const std::size_t a = tuples[id][d], b = tuples[j][d];
      dist += a > b ? a - b : b - a;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = j;
    }
  }
  return best;
}

}  // namespace

EnsembleEngine::EnsembleEngine(EnsembleManifest manifest, EnsembleConfig cfg)
    : manifest_(std::move(manifest)),
      cfg_(std::move(cfg)),
      cache_(cfg_.cache_dir) {
  MALI_CHECK_MSG(cfg_.ranks_per_group >= 1,
                 "ensemble: ranks_per_group must be >= 1");
}

std::string EnsembleEngine::member_canonical_key(const EnsembleManifest& m,
                                                 const MemberParams& p,
                                                 int ranks) {
  std::string key = "maliensr-v1";
  key += "|mesh:dx_km=" + util::format_double(m.dx_km) +
         ",layers=" + std::to_string(m.layers);
  key += "|run:years=" + util::format_double(m.years) +
         ",velocity_every=" + std::to_string(m.velocity_every) +
         ",newton_max_iters=" + std::to_string(m.newton_max_iters) +
         ",newton_tol=" + util::format_double(m.newton_tol) +
         ",ranks=" + std::to_string(ranks);
  key += "|member:glen_n=" + util::format_double(p.glen_n) +
         ",glen_A=" + util::format_double(p.glen_A) +
         ",friction_scale=" + util::format_double(p.friction_scale) +
         ",forcing=" + p.forcing;
  return key;
}

EnsembleEngine::RunOutput EnsembleEngine::run() {
  const auto t0 = std::chrono::steady_clock::now();

  RunOutput out;
  out.members = expand_members(manifest_);
  const std::size_t n = out.members.size();
  out.records.resize(n);
  out.stats.members = n;
  out.schedule = schedule_members(
      n, static_cast<std::size_t>(manifest_.rank_groups));
  const auto order = out.schedule.execution_order();
  const auto tuples = cross_product_indices(
      {manifest_.glen_n.size(), manifest_.glen_A.size(),
       manifest_.friction_scale.size(), manifest_.forcing.size()});

  // ---- amortized setup: ONE problem (mesh/partition/coloring/worksets)
  // and ONE recycled AMG for every member ----
  physics::StokesFOConfig pcfg;
  pcfg.dx_m = manifest_.dx_km * 1.0e3;
  pcfg.n_layers = manifest_.layers;
  physics::StokesFOProblem problem(pcfg);
  const physics::PhysicalConstants base_constants =
      problem.config().constants;

  linalg::AmgConfig acfg;
  acfg.smoother = linalg::AmgSmoother::kChebyshev;
  acfg.reuse_structure = cfg_.recycle;
  linalg::SemicoarseningAmg shared_amg(problem.extrusion_info(), acfg);

  std::vector<bool> completed(n, false);

  for (const std::size_t id : order) {
    const MemberParams& p = out.members[id];
    const std::string key =
        member_canonical_key(manifest_, p, cfg_.ranks_per_group);

    if (cfg_.use_cache) {
      if (const MemberRecord* hit = cache_.find(key)) {
        out.records[id] = *hit;
        completed[id] = true;
        ++out.stats.cache_hits;
        if (cfg_.verbose) {
          std::printf("  member %zu: cache hit (%s)\n", id,
                      ResultCache::key_hex(ResultCache::fnv1a(key)).c_str());
        }
        continue;
      }
    }

    // Member parameters onto the shared problem.  Both setters are pure in
    // their argument (no state accumulates across members), so execution
    // order cannot leak into a member's physics.
    physics::PhysicalConstants c = base_constants;
    c.glen_n = p.glen_n;
    c.glen_A = p.glen_A;
    problem.set_constants(c);
    problem.set_basal_friction_scale(p.friction_scale);

    timestepping::ForecastConfig fcfg;
    fcfg.years = manifest_.years;
    fcfg.velocity_every = manifest_.velocity_every;
    fcfg.forcing = p.forcing;
    fcfg.thermal_enabled = false;  // members stay independent of each other
    fcfg.newton.max_iters = manifest_.newton_max_iters;
    fcfg.newton.abs_tol = manifest_.newton_tol;
    // Purely absolute convergence: a relative criterion targets
    // rel_tol * ||F(start)||, which depends on the start point — a warm
    // start would then converge to a different root than a cold one,
    // breaking the warm == cold (within tol) determinism contract.
    fcfg.newton.rel_tol = 0.0;
    fcfg.ranks = cfg_.ranks_per_group;
    if (cfg_.ranks_per_group <= 1) {
      linalg::Preconditioner* amg = &shared_amg;
      fcfg.make_precond = [amg](const physics::StokesFOProblem&) {
        return std::unique_ptr<linalg::Preconditioner>(
            std::make_unique<SharedPrecond>(*amg));
      };
    }

    if (cfg_.warm_start) {
      const std::size_t donor = nearest_donor(tuples, completed, id);
      if (donor != std::numeric_limits<std::size_t>::max() &&
          out.records[donor].U.size() == problem.n_dofs()) {
        fcfg.initial_U = out.records[donor].U;
        ++out.stats.warm_starts;
        if (cfg_.verbose) {
          std::printf("  member %zu: warm start from member %zu\n", id,
                      donor);
        }
      }
    }

    // Per-member injector persists ACROSS retry attempts: a one-shot spec
    // fires on the first attempt only (the retry runs clean — the
    // transient-fault model); a repeat spec keeps firing and the member
    // ends quarantined (the permanent-fault model).  The member salt
    // decorrelates which dof each member poisons.
    std::unique_ptr<resilience::FaultInjector> injector;
    if (cfg_.inject_fault &&
        (cfg_.fault_member < 0 ||
         static_cast<std::size_t>(cfg_.fault_member) == id)) {
      resilience::FaultSpec spec = cfg_.fault;
      spec.member = static_cast<unsigned>(id + 1);
      injector = std::make_unique<resilience::FaultInjector>(spec);
    }
    if (cfg_.resilience && cfg_.ranks_per_group <= 1) {
      fcfg.newton.recovery.enabled = true;
    }
    if (cfg_.resilience && cfg_.ranks_per_group > 1) {
      // Distributed members recover through the coordinated restart loop
      // (the per-rank ladder would desynchronize the SPMD lockstep).
      fcfg.dist.solver_guards = true;
      fcfg.dist.checkpoint = true;
      fcfg.dist.max_restarts = std::max(fcfg.dist.max_restarts, 2);
    }
    fcfg.injector = injector.get();

    const int max_attempts = 1 + std::max(0, cfg_.member_retries);
    // Member failures are absorbed (retry, then quarantine) only when the
    // caller opted into degradation; a plain run keeps the documented
    // contract that configuration errors (malformed forcing specs, solver
    // misconfiguration) throw out of run().
    const bool degrade = cfg_.member_retries > 0 || cfg_.inject_fault ||
                         cfg_.resilience || cfg_.before_attempt != nullptr;
    timestepping::ForecastResult r;
    bool member_ok = false;
    int attempts = 0;
    std::string fault_msg;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      ++attempts;
      if (attempt > 0 && cfg_.retry_backoff_s > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            cfg_.retry_backoff_s * static_cast<double>(1 << (attempt - 1))));
      }
      try {
        if (cfg_.before_attempt) cfg_.before_attempt(id, attempt);
        timestepping::ForecastDriver driver(problem, fcfg);
        r = driver.run();
        member_ok = true;
        break;
      } catch (const Error& e) {
        if (!degrade) throw;
        fault_msg = e.what();
        if (cfg_.verbose) {
          std::printf("  member %zu: attempt %d failed: %s\n", id,
                      attempt + 1, e.what());
        }
      }
    }

    if (!member_ok) {
      // Quarantine: record the failure, keep the batch going.  The record
      // carries no fields, is never cached, and never donates warm starts.
      MemberRecord rec;
      rec.canonical = key;
      rec.status = "quarantined";
      rec.attempts = attempts;
      rec.fault = fault_msg;
      out.records[id] = std::move(rec);
      ++out.stats.quarantined;
      if (cfg_.verbose) {
        std::printf("  member %zu: quarantined after %d attempts\n", id,
                    attempts);
      }
      continue;
    }

    MemberRecord rec;
    rec.canonical = key;
    if (attempts > 1) {
      rec.status = "retried";
      rec.attempts = attempts;
      rec.fault = fault_msg;
      ++out.stats.retried;
    }
    rec.steps = r.steps;
    rec.velocity_solves = r.velocity_solves;
    rec.newton_iters = total_newton_iters(r);
    rec.rejections = r.rejections;
    rec.volume_initial = r.volume_initial;
    rec.volume_final = r.volume_final;
    rec.mean_velocity = r.mean_velocity;
    rec.max_mass_residual = r.max_mass_residual;
    rec.U = r.U;
    rec.H = r.H;
    out.records[id] = std::move(rec);
    completed[id] = true;
    ++out.stats.cache_misses;
    if (cfg_.use_cache) cache_.store(out.records[id]);

    // Recycle the spectral bounds the member's last smoother setup
    // measured: later members (nearby parameter points) skip the power
    // iterations entirely.
    if (cfg_.recycle && cfg_.ranks_per_group <= 1) {
      shared_amg.set_chebyshev_lambda_hints(
          shared_amg.chebyshev_lambda_estimates());
    }
    if (cfg_.verbose) {
      std::printf("  member %zu: %d steps, %d newton iters, vol %.6e\n", id,
                  out.records[id].steps, out.records[id].newton_iters,
                  out.records[id].volume_final);
    }
  }

  out.stats.amg_builds = shared_amg.hierarchy_builds();
  out.stats.amg_reuses = shared_amg.structure_reuses();
  out.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

std::string EnsembleEngine::members_json(const RunOutput& out) {
  util::JsonWriter w;
  w.begin_array();
  for (std::size_t id = 0; id < out.members.size(); ++id) {
    const MemberParams& p = out.members[id];
    const MemberRecord& r = out.records[id];
    w.begin_object();
    w.key("id").value(id);
    w.key("key").value(ResultCache::key_hex(ResultCache::fnv1a(r.canonical)));
    w.key("status").value(r.status);
    w.key("attempts").value(r.attempts);
    w.key("fault").value(r.fault);
    w.key("glen_n").value(p.glen_n);
    w.key("glen_A").value(p.glen_A);
    w.key("friction_scale").value(p.friction_scale);
    w.key("forcing").value(p.forcing);
    w.key("steps").value(r.steps);
    w.key("velocity_solves").value(r.velocity_solves);
    w.key("newton_iters").value(r.newton_iters);
    w.key("rejections").value(r.rejections);
    w.key("volume_initial").value(r.volume_initial);
    w.key("volume_final").value(r.volume_final);
    w.key("mean_velocity").value(r.mean_velocity);
    w.key("max_mass_residual").value(r.max_mass_residual);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

std::string EnsembleEngine::results_json(const RunOutput& out,
                                         const EnsembleManifest& m,
                                         bool include_stats) {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("mali-ensemble-results-v2");  // v2: member status keys
  w.key("name").value(m.name);
  w.key("manifest").value(m.canonical());
  w.key("n_members").value(out.members.size());
  w.key("schedule").begin_array();
  for (const auto& g : out.schedule.groups) {
    w.begin_array();
    for (const std::size_t id : g) w.value(id);
    w.end_array();
  }
  w.end_array();
  w.key("members").value_fragment(members_json(out));
  if (include_stats) {
    w.key("stats").begin_object();
    w.key("members").value(out.stats.members);
    w.key("cache_hits").value(out.stats.cache_hits);
    w.key("cache_misses").value(out.stats.cache_misses);
    w.key("warm_starts").value(out.stats.warm_starts);
    w.key("retried").value(out.stats.retried);
    w.key("quarantined").value(out.stats.quarantined);
    w.key("amg_builds").value(out.stats.amg_builds);
    w.key("amg_reuses").value(out.stats.amg_reuses);
    w.key("wall_seconds").value(out.stats.wall_seconds);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

}  // namespace mali::ensemble
