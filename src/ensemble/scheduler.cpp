#include "ensemble/scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "portability/common.hpp"

namespace mali::ensemble {

std::vector<std::size_t> Schedule::execution_order() const {
  std::vector<std::size_t> order;
  std::size_t longest = 0;
  for (const auto& g : groups) longest = std::max(longest, g.size());
  for (std::size_t pos = 0; pos < longest; ++pos) {
    for (const auto& g : groups) {
      if (pos < g.size()) order.push_back(g[pos]);
    }
  }
  return order;
}

Schedule schedule_members(std::size_t n_members, std::size_t n_groups,
                          const std::vector<double>& cost) {
  MALI_CHECK_MSG(n_groups >= 1, "scheduler: need at least one rank group");
  MALI_CHECK_MSG(cost.empty() || cost.size() == n_members,
                 "scheduler: cost vector size must match member count");

  // Descending cost, stable on equal costs so ids stay ordered.
  std::vector<std::size_t> by_cost(n_members);
  std::iota(by_cost.begin(), by_cost.end(), std::size_t{0});
  if (!cost.empty()) {
    std::stable_sort(by_cost.begin(), by_cost.end(),
                     [&cost](std::size_t a, std::size_t b) {
                       return cost[a] > cost[b];
                     });
  }

  Schedule s;
  s.groups.resize(n_groups);
  s.load.assign(n_groups, 0.0);
  for (const std::size_t id : by_cost) {
    // Least-loaded group, lowest index on ties.
    std::size_t best = 0;
    for (std::size_t g = 1; g < n_groups; ++g) {
      if (s.load[g] < s.load[best]) best = g;
    }
    s.groups[best].push_back(id);
    s.load[best] += cost.empty() ? 1.0 : cost[id];
  }
  return s;
}

}  // namespace mali::ensemble
