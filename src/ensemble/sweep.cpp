#include "ensemble/sweep.hpp"

namespace mali::ensemble {

std::vector<std::vector<std::size_t>> cross_product_indices(
    const std::vector<std::size_t>& dims) {
  std::size_t total = 1;
  for (const std::size_t n : dims) total *= n;
  std::vector<std::vector<std::size_t>> tuples;
  if (total == 0) return tuples;
  tuples.reserve(total);

  std::vector<std::size_t> cur(dims.size(), 0);
  for (std::size_t k = 0; k < total; ++k) {
    tuples.push_back(cur);
    // Odometer increment, last dimension fastest.
    for (std::size_t d = dims.size(); d-- > 0;) {
      if (++cur[d] < dims[d]) break;
      cur[d] = 0;
    }
  }
  return tuples;
}

}  // namespace mali::ensemble
