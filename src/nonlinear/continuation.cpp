#include "nonlinear/continuation.hpp"

#include <algorithm>
#include <cstdio>

#include "portability/common.hpp"

namespace mali::nonlinear {

ContinuationResult continuation_solve(
    NonlinearProblem& problem, linalg::Preconditioner& M,
    const std::function<void(double)>& set_parameter, std::vector<double>& U,
    ContinuationConfig cfg) {
  MALI_CHECK(cfg.start_parameter > cfg.target_parameter);
  MALI_CHECK(cfg.reduction > 0.0 && cfg.reduction < 1.0);

  ContinuationResult result;
  const NewtonSolver newton(cfg.newton);
  double param = cfg.start_parameter;

  for (int step = 0; step < cfg.max_steps; ++step) {
    param = std::max(param, cfg.target_parameter);
    set_parameter(param);
    if (cfg.verbose) {
      std::printf("continuation step %d: parameter %.3e\n", step + 1, param);
    }
    result.inner.push_back(newton.solve(problem, M, U));
    result.steps = step + 1;
    result.final_parameter = param;
    result.residual_norm = result.inner.back().residual_norm;
    if (param <= cfg.target_parameter) {
      result.converged = result.inner.back().converged;
      return result;
    }
    param *= cfg.reduction;
  }
  // Ran out of steps before hitting the target: finish at the target.
  set_parameter(cfg.target_parameter);
  result.inner.push_back(newton.solve(problem, M, U));
  ++result.steps;
  result.final_parameter = cfg.target_parameter;
  result.residual_norm = result.inner.back().residual_norm;
  result.converged = result.inner.back().converged;
  return result;
}

}  // namespace mali::nonlinear
