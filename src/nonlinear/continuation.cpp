#include "nonlinear/continuation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "portability/common.hpp"

namespace mali::nonlinear {

namespace {

/// An inner solve "diverged" when it faulted, went non-finite, or ended
/// with a residual no better than it started without converging — walking
/// the regularization further down from such a state only compounds the
/// failure.  A not-yet-converged solve that still reduced ||F|| is fine
/// (inexact continuation steps are the normal mode).
bool diverged(const NewtonResult& r) {
  if (r.faulted || !std::isfinite(r.residual_norm)) return true;
  return !r.converged && r.initial_norm > 0.0 &&
         r.residual_norm >= r.initial_norm;
}

}  // namespace

ContinuationResult continuation_solve(
    NonlinearProblem& problem, linalg::Preconditioner& M,
    const std::function<void(double)>& set_parameter, std::vector<double>& U,
    ContinuationConfig cfg) {
  MALI_CHECK(cfg.start_parameter > cfg.target_parameter);
  MALI_CHECK(cfg.reduction > 0.0 && cfg.reduction < 1.0);

  ContinuationResult result;
  NewtonConfig ncfg = cfg.newton;

  // Wire the Newton recovery ladder's checkpoint-restore rung into the
  // homotopy: restoring the last good state also backs the regularization
  // up one continuation notch (clamped at the start parameter), softening
  // the problem the retry faces.
  double active_param = cfg.start_parameter;
  if (ncfg.recovery.enabled && !ncfg.recovery.on_restore) {
    ncfg.recovery.on_restore = [&](resilience::SolverCheckpoint& c) {
      active_param =
          std::min(active_param / cfg.reduction, cfg.start_parameter);
      set_parameter(active_param);
      c.parameter = active_param;
    };
  }

  // Runs one inner solve at parameter p and records it.  `active_param`
  // may end higher than p if the recovery ladder back-stepped mid-solve.
  const auto run_inner = [&](double p, bool is_backstep) -> const NewtonResult& {
    active_param = p;
    set_parameter(p);
    ncfg.recovery.parameter = p;
    if (cfg.verbose) {
      std::printf("continuation step %zu: parameter %.3e%s\n",
                  result.inner.size() + 1, p,
                  is_backstep ? " (back-step retry)" : "");
    }
    const NewtonSolver newton(ncfg);
    result.inner.push_back(newton.solve(problem, M, U));
    if (is_backstep) {
      result.backstep_steps.push_back(
          static_cast<int>(result.inner.size()) - 1);
    }
    result.parameters.push_back(active_param);
    result.steps = static_cast<int>(result.inner.size());
    result.final_parameter = active_param;
    result.residual_norm = result.inner.back().residual_norm;
    return result.inner.back();
  };

  double param = cfg.start_parameter;
  double param_good = -1.0;  ///< last parameter whose solve was accepted

  while (result.steps < cfg.max_steps) {
    param = std::max(param, cfg.target_parameter);
    const std::vector<double> U_pre = U;  // pre-step checkpoint
    const NewtonResult& r = run_inner(param, false);
    if (diverged(r)) {
      // Stop the walk: restore the pre-step solution and back-step the
      // parameter once with a halved (log-space) reduction — the retry
      // runs at the geometric mean of the last good and failed values.
      U = U_pre;
      if (param_good <= 0.0 || result.backsteps >= cfg.max_backsteps) {
        result.stopped_early = true;
        return result;
      }
      ++result.backsteps;
      const double retry_param = std::sqrt(param_good * param);
      if (cfg.verbose) {
        std::printf(
            "continuation: inner solve diverged at %.3e — back-stepping to "
            "%.3e (retry %d/%d)\n",
            param, retry_param, result.backsteps, cfg.max_backsteps);
      }
      if (result.steps >= cfg.max_steps) {
        result.stopped_early = true;
        return result;
      }
      const std::vector<double> U_pre_retry = U;
      const NewtonResult& rr = run_inner(retry_param, true);
      if (diverged(rr)) {
        U = U_pre_retry;
        set_parameter(param_good);  // leave the problem in a solvable state
        result.stopped_early = true;
        return result;
      }
      param_good = result.parameters.back();
      if (param_good <= cfg.target_parameter) {
        result.converged = rr.converged;
        return result;
      }
      param = param_good * cfg.reduction;
      continue;
    }
    param_good = result.parameters.back();
    if (param_good <= cfg.target_parameter) {
      result.converged = r.converged;
      return result;
    }
    param = param_good * cfg.reduction;
  }

  // Ran out of steps before hitting the target: finish at the target.
  const std::vector<double> U_pre = U;
  const NewtonResult& r = run_inner(cfg.target_parameter, false);
  if (diverged(r)) {
    U = U_pre;
    if (param_good > 0.0) set_parameter(param_good);
    result.stopped_early = true;
    return result;
  }
  result.converged = r.converged;
  return result;
}

}  // namespace mali::nonlinear
