#pragma once
// Damped Newton's method with backtracking line search — the paper's
// nonlinear solver (8 Newton steps on the Antarctica test, each solving the
// Jacobian system with preconditioned GMRES to 1e-6) — plus the solver
// resilience layer: typed non-finite detection and a bounded recovery
// ladder (re-damp → grow Krylov → climb preconditioner → assembled
// fallback → checkpoint restore) that engages on guard faults, inner
// linear-solve failures, and line-search stalls.  See DESIGN.md §11.

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "linalg/crs_matrix.hpp"
#include "linalg/gmres.hpp"
#include "linalg/linear_operator.hpp"
#include "linalg/pipelined_krylov.hpp"
#include "linalg/preconditioner.hpp"
#include "resilience/fault.hpp"
#include "resilience/recovery.hpp"

namespace mali::nonlinear {

/// Interface a nonlinear problem F(U) = 0 implements for the solver.
class NonlinearProblem {
 public:
  virtual ~NonlinearProblem() = default;
  [[nodiscard]] virtual std::size_t n_dofs() const = 0;
  /// F(U) -> F.
  virtual void residual(const std::vector<double>& U,
                        std::vector<double>& F) = 0;
  /// F(U) -> F and dF/dU -> J (the matrix graph must match create_matrix).
  virtual void residual_and_jacobian(const std::vector<double>& U,
                                     std::vector<double>& F,
                                     linalg::CrsMatrix& J) = 0;
  /// A zero matrix with the Jacobian's sparsity.
  [[nodiscard]] virtual linalg::CrsMatrix create_matrix() const = 0;
  /// The Jacobian linearized at U as an abstract operator for the
  /// matrix-free (JFNK) Newton path.  Problems that cannot provide one
  /// return nullptr (the default) — the solver then refuses
  /// JacobianMode::kMatrixFree.
  [[nodiscard]] virtual std::unique_ptr<linalg::LinearOperator>
  jacobian_operator(const std::vector<double>& U) {
    (void)U;
    return nullptr;
  }
  /// Informational hook: the solver reports the current (1-based) Newton
  /// step before each linearization, and 0 for pre-loop evaluations.
  /// resilience::GuardedProblem uses it to stamp SolverFault records; the
  /// default is a no-op.
  virtual void set_newton_step(int step) { (void)step; }
};

struct NewtonConfig {
  int max_iters = 8;           ///< the paper's test runs 8 nonlinear steps
  double abs_tol = 1.0e-6;
  double rel_tol = 1.0e-8;
  double min_damping = 1.0 / 64.0;
  bool line_search = true;
  bool verbose = false;
  linalg::GmresConfig gmres{};  ///< linear tol 1e-6, per the paper
  /// Inner Krylov method.  The pipelined variants issue ONE fused reduction
  /// per iteration, posted split-phase through the injected InnerProduct:
  /// serial runs complete it immediately (no behavior change beyond
  /// classical-vs-modified Gram-Schmidt rounding), distributed runs overlap
  /// the rank-ordered allreduce with the halo-split operator apply.  The
  /// recovery ladder applies to every kind — all four report through the
  /// same GmresResult contract.
  linalg::KrylovKind krylov = linalg::KrylovKind::kGmres;
  /// Jacobian representation: assembled CRS (default) or the problem's
  /// matrix-free operator (no global matrix is ever created; the
  /// preconditioner is computed from the operator's diagonal extraction).
  linalg::JacobianMode jacobian = linalg::JacobianMode::kAssembled;
  /// Recovery ladder (disabled by default; the clean path is bit-identical
  /// either way — the ladder only engages on a detected fault, linear
  /// failure, or line-search stall).  See resilience/recovery.hpp.
  resilience::RecoveryConfig recovery{};
  /// Observation hook fired after each ACCEPTED Newton step (post
  /// line-search, post finite-check) with the new iterate.  Runs at the
  /// same point of the iteration on every rank of an SPMD solve, so
  /// collective work (e.g. the distributed checkpoint mirror of
  /// dist/dist_checkpoint.hpp) is safe inside it.  nullptr -> no-op.
  std::function<void(int step, const std::vector<double>& U, double fnorm)>
      on_accepted_step;
  /// Optional reduced inner product for every ||F|| the solver computes
  /// (initial norm, post-linearization refresh, line-search trials).
  /// Distributed runs inject a rank-reduced one — combined with
  /// gmres.inner this makes the whole Newton/GMRES control flow SPMD
  /// lockstep.  nullptr -> all-entry serial reduction.
  const linalg::InnerProduct* inner = nullptr;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;
  double initial_norm = 0.0;
  std::size_t total_linear_iters = 0;
  /// Inner linear solves that did NOT reach their tolerance (GMRES hit the
  /// iteration cap or broke down).  Without the recovery ladder the
  /// inexact step is still taken — an inexact Newton direction is often
  /// usable — but the failure is recorded instead of silently ignored;
  /// with the ladder each failure triggers a bounded retry first.
  int linear_failures = 0;
  /// True iff any inner linear solve failed (accessor; the redundant
  /// stored flag this replaces is gone).
  [[nodiscard]] bool any_linear_failure() const noexcept {
    return linear_failures > 0;
  }
  /// True when the backtracking line search bottomed out at min_damping
  /// without finding a residual decrease on some step — the classic sign of
  /// a bad Newton direction (e.g. from a failed linear solve) or a
  /// non-descent linearization.
  bool line_search_stalled = false;
  /// Typed failure exit: set when ||F|| went non-finite (and, with the
  /// ladder enabled, recovery could not restore it).  `fault` then holds
  /// the event; the solver returns instead of looping to max_iters on NaN.
  bool faulted = false;
  resilience::SolverFault fault{};
  /// Structured log of every recovery-ladder attempt (empty on the clean
  /// path and whenever recovery is disabled).
  resilience::RecoveryLog recovery;
  std::vector<double> history;  ///< ||F|| after each step
};

class NewtonSolver {
 public:
  explicit NewtonSolver(NewtonConfig cfg = {}) : cfg_(cfg) {}

  /// Solves F(U) = 0 starting from U (updated in place), preconditioning
  /// the inner GMRES with M (recomputed from each new Jacobian; the
  /// recovery ladder may swap in stronger preconditioners from
  /// recovery.precond_ladder).  Guard faults (resilience::SolverFaultError)
  /// propagate to the caller when recovery is disabled or its budget is
  /// exhausted.
  NewtonResult solve(NonlinearProblem& problem, linalg::Preconditioner& M,
                     std::vector<double>& U) const;

  [[nodiscard]] const NewtonConfig& config() const noexcept { return cfg_; }

 private:
  NewtonConfig cfg_;
};

}  // namespace mali::nonlinear
