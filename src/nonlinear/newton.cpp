#include "nonlinear/newton.hpp"

#include <cmath>
#include <cstdio>

#include "portability/common.hpp"

namespace mali::nonlinear {

NewtonResult NewtonSolver::solve(NonlinearProblem& problem,
                                 linalg::Preconditioner& M,
                                 std::vector<double>& U) const {
  const std::size_t n = problem.n_dofs();
  MALI_CHECK(U.size() == n);

  NewtonResult result;
  std::vector<double> F(n), F_trial(n), rhs(n), dU(n), U_trial(n);
  const bool matrix_free =
      cfg_.jacobian == linalg::JacobianMode::kMatrixFree;
  // Matrix-free mode never creates the global matrix — that is the point.
  linalg::CrsMatrix J;
  if (!matrix_free) J = problem.create_matrix();
  const linalg::Gmres gmres(cfg_.gmres);

  problem.residual(U, F);
  double fnorm = linalg::norm2(F);
  result.initial_norm = fnorm;
  result.history.push_back(fnorm);

  for (int it = 0; it < cfg_.max_iters; ++it) {
    if (fnorm < cfg_.abs_tol ||
        (result.initial_norm > 0.0 &&
         fnorm < cfg_.rel_tol * result.initial_norm)) {
      result.converged = true;
      break;
    }

    std::unique_ptr<linalg::LinearOperator> op;
    if (matrix_free) {
      // JFNK-style step with the exact element tangent: linearize the
      // problem's operator at U and build the preconditioner from its
      // diagonal extraction.
      op = problem.jacobian_operator(U);
      MALI_CHECK_MSG(op != nullptr,
                     "matrix-free Newton requires the problem to provide a "
                     "jacobian_operator");
      M.compute(*op);
      // Re-evaluate F at U *after* linearizing: forming the operator may
      // refresh problem state the residual depends on (the FO problem
      // recomputes its Dirichlet row scale, exactly as assembled
      // residual_and_jacobian does), and GMRES needs F consistent with J.
      problem.residual(U, F);
      fnorm = linalg::norm2(F);
    } else {
      J.set_zero();
      problem.residual_and_jacobian(U, F, J);
      M.compute(J);
    }

    // Solve J dU = -F.
    for (std::size_t i = 0; i < n; ++i) rhs[i] = -F[i];
    std::fill(dU.begin(), dU.end(), 0.0);
    const auto lin = matrix_free ? gmres.solve(*op, M, rhs, dU)
                                 : gmres.solve(J, M, rhs, dU);
    result.total_linear_iters += lin.iterations;
    // Record (instead of silently ignoring) inner solves that missed their
    // tolerance; the inexact step is still attempted — the line search
    // below is the safety net — but callers can see the failure.
    if (!lin.converged) {
      ++result.linear_failures;
      result.any_linear_failure = true;
      if (cfg_.verbose) {
        std::printf(
            "newton step %2d  WARNING: linear solve failed (%zu iters, rel "
            "res %.2e%s%s)\n",
            it + 1, lin.iterations, lin.rel_residual,
            lin.breakdown ? ", breakdown: " : "",
            lin.breakdown ? lin.reason.c_str() : "");
      }
    }

    // Damped update with backtracking on ||F||.
    double damping = 1.0;
    double trial_norm = fnorm;
    while (true) {
      for (std::size_t i = 0; i < n; ++i) U_trial[i] = U[i] + damping * dU[i];
      problem.residual(U_trial, F_trial);
      trial_norm = linalg::norm2(F_trial);
      if (!cfg_.line_search || trial_norm < fnorm ||
          damping <= cfg_.min_damping) {
        break;
      }
      damping *= 0.5;
    }
    // Damping bottomed out without a decrease: the direction is not a
    // descent direction for ||F|| (bad linear solve or bad linearization).
    if (cfg_.line_search && damping <= cfg_.min_damping &&
        trial_norm >= fnorm) {
      result.line_search_stalled = true;
      if (cfg_.verbose) {
        std::printf(
            "newton step %2d  WARNING: line search stalled at damping %.4f "
            "(||F|| %.3e -> %.3e)\n",
            it + 1, damping, fnorm, trial_norm);
      }
    }

    U = U_trial;
    F = F_trial;
    fnorm = trial_norm;
    result.iterations = it + 1;
    result.history.push_back(fnorm);
    if (cfg_.verbose) {
      std::printf(
          "newton step %2d  ||F|| = %.6e  (gmres iters %4zu, rel res %.2e, "
          "damping %.3f)\n",
          it + 1, fnorm, lin.iterations, lin.rel_residual, damping);
    }
  }

  result.residual_norm = fnorm;
  if (fnorm < cfg_.abs_tol ||
      (result.initial_norm > 0.0 &&
       fnorm < cfg_.rel_tol * result.initial_norm)) {
    result.converged = true;
  }
  return result;
}

}  // namespace mali::nonlinear
