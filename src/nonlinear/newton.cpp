#include "nonlinear/newton.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "portability/common.hpp"

namespace mali::nonlinear {

namespace {

using resilience::FaultSite;
using resilience::FaultType;
using resilience::RecoveryRung;
using resilience::SolverFault;
using resilience::SolverFaultError;

SolverFault make_fault(FaultType type, FaultSite site, double value,
                       int newton_step, const std::string& msg) {
  SolverFault f;
  f.type = type;
  f.site = site;
  f.value = value;
  f.newton_step = newton_step;
  f.message = msg;
  return f;
}

/// The rung a trigger starts the ladder at: linear-solve trouble wants a
/// better direction (grow the Krylov budget first); preconditioner-setup
/// failures climb the preconditioner ladder; everything numerical
/// (NaN/Inf poison, diverged states) starts with a gentler step.
RecoveryRung start_rung(FaultType t) {
  switch (t) {
    case FaultType::kLinearSolveFailure:
    case FaultType::kLineSearchStall:
      return RecoveryRung::kGrowKrylov;
    case FaultType::kPrecondSetupFailure:
      return RecoveryRung::kClimbPreconditioner;
    default:
      return RecoveryRung::kRedampStep;
  }
}

}  // namespace

NewtonResult NewtonSolver::solve(NonlinearProblem& problem,
                                 linalg::Preconditioner& M,
                                 std::vector<double>& U) const {
  const std::size_t n = problem.n_dofs();
  MALI_CHECK(U.size() == n);
  const resilience::RecoveryConfig& rc = cfg_.recovery;

  NewtonResult result;
  const linalg::InnerProduct& ip = linalg::inner_or_default(cfg_.inner);
  std::vector<double> F(n), F_trial(n), rhs(n), dU(n), U_trial(n);
  bool matrix_free = cfg_.jacobian == linalg::JacobianMode::kMatrixFree;
  // Matrix-free mode never creates the global matrix — that is the point
  // (unless the recovery ladder's assembled fallback engages).
  linalg::CrsMatrix J;
  bool have_matrix = false;
  if (!matrix_free) {
    J = problem.create_matrix();
    have_matrix = true;
  }

  // ---- recovery-ladder state (escalations persist across steps) ----
  linalg::GmresConfig gcfg = cfg_.gmres;
  double damping_cap = 1.0;              ///< line-search starting damping
  std::unique_ptr<linalg::Preconditioner> ladder_M;
  linalg::Preconditioner* Mp = &M;
  int precond_rung = -1;
  int total_attempts = 0;
  bool refresh_fnorm = false;  ///< recompute ||F|| after a restore
  resilience::SolverCheckpoint last_good;

  const auto capture_checkpoint = [&](const std::vector<double>& Ugood,
                                      double fn, int step) {
    if (!rc.enabled) return;
    last_good.U = Ugood;
    last_good.residual_norm = fn;
    last_good.parameter = rc.parameter;
    last_good.newton_step = step;
    last_good.valid = true;
    if (!rc.checkpoint_path.empty()) last_good.save(rc.checkpoint_path);
  };

  // ---- initial residual ----
  problem.set_newton_step(0);
  double fnorm = 0.0;
  {
    int tries = 0;
    for (;;) {
      bool fault_hit = false;
      SolverFault fault;
      try {
        problem.residual(U, F);
        fnorm = ip.norm2(F);
      } catch (const SolverFaultError& e) {
        if (!rc.enabled) throw;
        fault_hit = true;
        fault = e.fault();
      }
      if (!fault_hit && std::isfinite(fnorm)) {
        if (!result.recovery.attempts.empty()) {
          for (auto& a : result.recovery.attempts) a.succeeded = true;
          ++result.recovery.steps_recovered;
        }
        break;
      }
      if (!fault_hit) {
        fault = make_fault(FaultType::kNonFiniteResidualNorm,
                           FaultSite::kResidual, fnorm, 0,
                           "initial residual norm is not finite");
      } else {
        ++result.recovery.faults_detected;
      }
      if (!rc.enabled || ++tries >= rc.max_attempts_per_step ||
          ++total_attempts >= rc.max_total_attempts) {
        if (fault_hit) throw SolverFaultError(fault);
        result.faulted = true;
        result.fault = fault;
        result.residual_norm = fnorm;
        result.initial_norm = fnorm;
        return result;
      }
      resilience::RecoveryAttempt a;
      a.newton_step = 0;
      a.rung = RecoveryRung::kRestoreCheckpoint;
      a.trigger = fault;
      a.action = "re-evaluate initial residual";
      result.recovery.attempts.push_back(std::move(a));
      if (rc.verbose) {
        std::printf("recovery: initial residual faulted (%s) — retrying\n",
                    resilience::to_string(fault.type));
      }
    }
  }
  result.initial_norm = fnorm;
  result.history.push_back(fnorm);
  capture_checkpoint(U, fnorm, 0);

  const auto is_converged = [&](double f) {
    return f < cfg_.abs_tol ||
           (result.initial_norm > 0.0 && f < cfg_.rel_tol * result.initial_norm);
  };

  for (int it = 0; it < cfg_.max_iters; ++it) {
    if (is_converged(fnorm)) {
      result.converged = true;
      break;
    }
    problem.set_newton_step(it + 1);

    // The damping cap is a per-step escalation: unlike the Krylov budget or
    // the preconditioner ladder (which stay escalated — they only make
    // later steps stronger), a halved starting damping would handicap
    // every subsequent step, so it resets here and only binds the retries
    // of the step that tripped.
    damping_cap = 1.0;

    const std::size_t step_first_attempt = result.recovery.attempts.size();
    int step_attempts = 0;
    int next_rung = 0;  ///< per-step ladder position (settings persist)

    linalg::GmresResult lin;
    double trial_norm = fnorm;
    double damping = 1.0;

    for (;;) {  // ---- attempt loop (runs once on the clean path) ----
      bool fault_hit = false;
      bool stalled = false;
      SolverFault fault;
      try {
        std::unique_ptr<linalg::LinearOperator> op;
        if (matrix_free) {
          // JFNK-style step with the exact element tangent: linearize the
          // problem's operator at U and build the preconditioner from its
          // diagonal extraction.
          op = problem.jacobian_operator(U);
          MALI_CHECK_MSG(op != nullptr,
                         "matrix-free Newton requires the problem to provide "
                         "a jacobian_operator");
          Mp->compute(*op);
          // Re-evaluate F at U *after* linearizing: forming the operator
          // may refresh problem state the residual depends on (the FO
          // problem recomputes its Dirichlet row scale, exactly as
          // assembled residual_and_jacobian does), and GMRES needs F
          // consistent with J.
          problem.residual(U, F);
          fnorm = ip.norm2(F);
          refresh_fnorm = false;
          if (!std::isfinite(fnorm)) {
            throw SolverFaultError(make_fault(
                FaultType::kNonFiniteResidualNorm, FaultSite::kResidual,
                fnorm, it + 1, "residual norm non-finite at linearization"));
          }
        } else {
          if (!have_matrix) {
            J = problem.create_matrix();
            have_matrix = true;
          }
          J.set_zero();
          problem.residual_and_jacobian(U, F, J);
          Mp->compute(J);
          if (refresh_fnorm) {
            // A checkpoint restore (possibly with a parameter back-step)
            // invalidated the cached ||F||; re-anchor it to the state the
            // linearization just evaluated.
            fnorm = ip.norm2(F);
            refresh_fnorm = false;
            if (!std::isfinite(fnorm)) {
              throw SolverFaultError(make_fault(
                  FaultType::kNonFiniteResidualNorm, FaultSite::kResidual,
                  fnorm, it + 1,
                  "residual norm non-finite after checkpoint restore"));
            }
          }
        }

        // Solve J dU = -F.
        for (std::size_t i = 0; i < n; ++i) rhs[i] = -F[i];
        std::fill(dU.begin(), dU.end(), 0.0);
        lin = matrix_free
                  ? linalg::solve_krylov(cfg_.krylov, gcfg, *op, *Mp, rhs, dU)
                  : linalg::solve_krylov(cfg_.krylov, gcfg,
                                         linalg::AssembledOperator(J), *Mp,
                                         rhs, dU);
        // Solver-level injection site: forced GMRES stagnation.
        if (rc.injector != nullptr &&
            rc.injector->fire(FaultSite::kLinearSolve)) {
          lin.converged = false;
          lin.breakdown = true;
          lin.reason = "injected GMRES stagnation";
        }
        result.total_linear_iters += lin.iterations;
        // Record (instead of silently ignoring) inner solves that missed
        // their tolerance; without the recovery ladder the inexact step is
        // still attempted — the line search below is the safety net.
        if (!lin.converged) {
          ++result.linear_failures;
          if (cfg_.verbose) {
            std::printf(
                "newton step %2d  WARNING: linear solve failed (%zu iters, "
                "rel res %.2e%s%s)\n",
                it + 1, lin.iterations, lin.rel_residual,
                lin.breakdown ? ", breakdown: " : "",
                lin.breakdown ? lin.reason.c_str() : "");
          }
        }

        // Damped update with backtracking on ||F||.
        damping = damping_cap;
        trial_norm = fnorm;
        while (true) {
          for (std::size_t i = 0; i < n; ++i) {
            U_trial[i] = U[i] + damping * dU[i];
          }
          problem.residual(U_trial, F_trial);
          trial_norm = ip.norm2(F_trial);
          if (!cfg_.line_search || trial_norm < fnorm ||
              damping <= cfg_.min_damping) {
            break;
          }
          damping *= 0.5;
        }
        // Damping bottomed out without a decrease: the direction is not a
        // descent direction for ||F|| (bad linear solve or bad
        // linearization).
        if (cfg_.line_search && damping <= cfg_.min_damping &&
            trial_norm >= fnorm) {
          stalled = true;
          result.line_search_stalled = true;
          if (cfg_.verbose) {
            std::printf(
                "newton step %2d  WARNING: line search stalled at damping "
                "%.4f (||F|| %.3e -> %.3e)\n",
                it + 1, damping, fnorm, trial_norm);
          }
        }
      } catch (const SolverFaultError& e) {
        if (!rc.enabled) throw;
        fault_hit = true;
        fault = e.fault();
        ++result.recovery.faults_detected;
      }

      const bool non_finite_trial = !fault_hit && !std::isfinite(trial_norm);
      const bool quality_trigger =
          !lin.converged || stalled || non_finite_trial;
      if (!fault_hit && (!rc.enabled || !quality_trigger)) {
        // Clean attempt (or recovery disabled): accept the step.
        if (result.recovery.attempts.size() > step_first_attempt) {
          for (std::size_t i = step_first_attempt;
               i < result.recovery.attempts.size(); ++i) {
            result.recovery.attempts[i].succeeded = true;
          }
          ++result.recovery.steps_recovered;
        }
        break;
      }

      // ---- a trigger fired: escalate through the ladder ----
      if (!fault_hit) {
        if (non_finite_trial) {
          fault = make_fault(FaultType::kNonFiniteResidualNorm,
                             FaultSite::kResidual, trial_norm, it + 1,
                             "trial residual norm non-finite in line search");
        } else if (!lin.converged) {
          fault = make_fault(
              FaultType::kLinearSolveFailure, FaultSite::kLinearSolve,
              lin.rel_residual, it + 1,
              lin.breakdown ? lin.reason : "GMRES missed its tolerance");
        } else {
          fault = make_fault(FaultType::kLineSearchStall,
                             FaultSite::kResidual, trial_norm, it + 1,
                             "line search bottomed out at min damping");
        }
      }

      ++step_attempts;
      ++total_attempts;
      if (step_attempts > rc.max_attempts_per_step ||
          total_attempts > rc.max_total_attempts) {
        if (fault_hit) throw SolverFaultError(fault);  // fail loudly
        if (non_finite_trial) {
          result.faulted = true;
          result.fault = fault;
          result.residual_norm = trial_norm;
          return result;
        }
        // Quality triggers with an exhausted budget: take the inexact /
        // stalled step like the classic path would and move on.
        break;
      }

      // Pick the next applicable rung at or above the trigger's start.
      int r = std::max(static_cast<int>(start_rung(fault.type)), next_rung);
      const auto applicable = [&](RecoveryRung rung) {
        switch (rung) {
          case RecoveryRung::kRedampStep:
            return damping_cap * rc.redamp_factor >= cfg_.min_damping;
          case RecoveryRung::kGrowKrylov:
            return true;
          case RecoveryRung::kClimbPreconditioner:
            return precond_rung + 1 <
                   static_cast<int>(rc.precond_ladder.size());
          case RecoveryRung::kAssembledFallback:
            return matrix_free;
          case RecoveryRung::kRestoreCheckpoint:
            return true;
        }
        return false;
      };
      constexpr int kLastRung =
          static_cast<int>(RecoveryRung::kRestoreCheckpoint);
      r = std::min(r, kLastRung);
      while (!applicable(static_cast<RecoveryRung>(r)) && r < kLastRung) ++r;
      const auto rung = static_cast<RecoveryRung>(r);
      next_rung = std::min(r + 1, kLastRung);

      std::ostringstream action;
      switch (rung) {
        case RecoveryRung::kRedampStep:
          damping_cap *= rc.redamp_factor;
          action << "starting damping capped at " << damping_cap;
          break;
        case RecoveryRung::kGrowKrylov:
          gcfg.restart = static_cast<std::size_t>(
              static_cast<double>(gcfg.restart) * rc.krylov_growth);
          gcfg.max_iters = static_cast<std::size_t>(
              static_cast<double>(gcfg.max_iters) * rc.krylov_growth);
          action << "GMRES budget grown to restart " << gcfg.restart
                 << ", max_iters " << gcfg.max_iters;
          break;
        case RecoveryRung::kClimbPreconditioner:
          ++precond_rung;
          ladder_M = rc.precond_ladder[static_cast<std::size_t>(
              precond_rung)]();
          MALI_CHECK_MSG(ladder_M != nullptr,
                         "precond_ladder factory returned null");
          Mp = ladder_M.get();
          action << "preconditioner climbed to " << Mp->name();
          break;
        case RecoveryRung::kAssembledFallback:
          matrix_free = false;
          action << "matrix-free Jacobian replaced by assembled";
          break;
        case RecoveryRung::kRestoreCheckpoint: {
          resilience::SolverCheckpoint ckpt = last_good;
          if (!ckpt.valid) {
            ckpt.U = U;  // pre-loop state was never captured (recovery off
            ckpt.residual_norm = fnorm;  // at entry); fall back to current
            ckpt.valid = true;
          }
          if (rc.on_restore) rc.on_restore(ckpt);
          MALI_CHECK(ckpt.U.size() == n);
          U = ckpt.U;
          fnorm = ckpt.residual_norm;
          refresh_fnorm = true;  // re-anchor ||F|| at next linearization
          action << "restored checkpoint from step " << ckpt.newton_step
                 << " (||F|| " << ckpt.residual_norm << ")";
          break;
        }
      }

      resilience::RecoveryAttempt a;
      a.newton_step = it + 1;
      a.rung = rung;
      a.trigger = fault;
      a.action = action.str();
      result.recovery.attempts.push_back(std::move(a));
      if (rc.verbose) {
        std::printf("recovery: step %d trigger [%s] -> rung %s (%s)\n",
                    it + 1, resilience::to_string(fault.type),
                    resilience::to_string(rung), action.str().c_str());
      }
    }

    U = U_trial;
    F = F_trial;
    fnorm = trial_norm;
    result.iterations = it + 1;
    result.history.push_back(fnorm);
    if (cfg_.verbose) {
      std::printf(
          "newton step %2d  ||F|| = %.6e  (gmres iters %4zu, rel res %.2e, "
          "damping %.3f)\n",
          it + 1, fnorm, lin.iterations, lin.rel_residual, damping);
    }
    // Typed failure instead of looping to max_iters on NaN: a non-finite
    // accepted norm means the state is poisoned and further iteration is
    // meaningless.
    if (!std::isfinite(fnorm)) {
      result.faulted = true;
      result.fault =
          make_fault(FaultType::kNonFiniteResidualNorm, FaultSite::kResidual,
                     fnorm, it + 1, "accepted residual norm is not finite");
      result.residual_norm = fnorm;
      return result;
    }
    if (!last_good.valid || fnorm < last_good.residual_norm) {
      capture_checkpoint(U, fnorm, it + 1);
    }
    // Accepted-step hook, after the finite check: observers (and the SPMD
    // checkpoint mirror) only ever see healthy iterates, and every rank of
    // a distributed solve reaches this point in lockstep.
    if (cfg_.on_accepted_step) cfg_.on_accepted_step(it + 1, U, fnorm);
  }

  result.residual_norm = fnorm;
  if (is_converged(fnorm)) result.converged = true;
  return result;
}

}  // namespace mali::nonlinear
