#pragma once
// Homotopy continuation on the viscosity regularization — the strategy
// Albany/LandIce uses (via LOCA) to make the Glen's-law nonlinearity
// tractable: start from a heavily regularized (nearly linear) problem,
// solve, then walk the regularization down toward the physical value,
// re-solving with the previous solution as the initial guess.
//
// Divergence handling: when an inner Newton solve diverges (typed fault,
// non-finite norm, or a residual that grew without converging) the walk
// STOPS instead of continuing to drop the parameter on a garbage state.
// The solution is restored to the pre-step checkpoint and the parameter is
// back-stepped once with a halved (log-space) reduction — the retry lands
// at the geometric mean of the last good parameter and the failed one.
// Each back-step is recorded in ContinuationResult; a retry that also
// diverges stops the walk early with converged == false.

#include <functional>
#include <vector>

#include "linalg/preconditioner.hpp"
#include "nonlinear/newton.hpp"

namespace mali::nonlinear {

struct ContinuationConfig {
  double start_parameter = 1.0e-2;   ///< initial (heavy) regularization
  double target_parameter = 1.0e-10; ///< physical regularization
  double reduction = 0.1;            ///< parameter multiplier per step
  int max_steps = 12;
  /// Back-step retries allowed across the whole walk before giving up.
  int max_backsteps = 3;
  NewtonConfig newton{};             ///< inner solver per step
  bool verbose = false;
};

struct ContinuationResult {
  bool converged = false;
  int steps = 0;
  double final_parameter = 0.0;
  double residual_norm = 0.0;
  /// Back-step retries taken after an inner divergence.
  int backsteps = 0;
  /// True when the walk stopped early (a back-step retry also diverged or
  /// the retry budget ran out) — the parameter never reached the target.
  bool stopped_early = false;
  std::vector<NewtonResult> inner;  ///< per-step Newton outcomes
  /// Parameter each inner solve ran at (aligned with `inner`).
  std::vector<double> parameters;
  /// Indices into `inner` that were back-step retries.
  std::vector<int> backstep_steps;
};

/// Walks `set_parameter` from start to target geometrically, solving at
/// each value.  `set_parameter` mutates the problem (e.g. the viscosity
/// regularization); U carries the solution between steps.
ContinuationResult continuation_solve(
    NonlinearProblem& problem, linalg::Preconditioner& M,
    const std::function<void(double)>& set_parameter, std::vector<double>& U,
    ContinuationConfig cfg = {});

}  // namespace mali::nonlinear
