#pragma once
// Homotopy continuation on the viscosity regularization — the strategy
// Albany/LandIce uses (via LOCA) to make the Glen's-law nonlinearity
// tractable: start from a heavily regularized (nearly linear) problem,
// solve, then walk the regularization down toward the physical value,
// re-solving with the previous solution as the initial guess.

#include <functional>
#include <vector>

#include "linalg/preconditioner.hpp"
#include "nonlinear/newton.hpp"

namespace mali::nonlinear {

struct ContinuationConfig {
  double start_parameter = 1.0e-2;   ///< initial (heavy) regularization
  double target_parameter = 1.0e-10; ///< physical regularization
  double reduction = 0.1;            ///< parameter multiplier per step
  int max_steps = 12;
  NewtonConfig newton{};             ///< inner solver per step
  bool verbose = false;
};

struct ContinuationResult {
  bool converged = false;
  int steps = 0;
  double final_parameter = 0.0;
  double residual_norm = 0.0;
  std::vector<NewtonResult> inner;  ///< per-step Newton outcomes
};

/// Walks `set_parameter` from start to target geometrically, solving at
/// each value.  `set_parameter` mutates the problem (e.g. the viscosity
/// regularization); U carries the solution between steps.
ContinuationResult continuation_solve(
    NonlinearProblem& problem, linalg::Preconditioner& M,
    const std::function<void(double)>& set_parameter, std::vector<double>& U,
    ContinuationConfig cfg = {});

}  // namespace mali::nonlinear
