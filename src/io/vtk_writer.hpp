#pragma once
// Legacy VTK (ASCII, unstructured grid) output of the extruded mesh with
// nodal fields — ParaView-viewable 3D snapshots of the velocity solution,
// the production visualization path behind figures like the paper's Fig. 1.

#include <string>
#include <vector>

#include "mesh/extruded_mesh.hpp"

namespace mali::io {

/// One named nodal scalar field (size = mesh.n_nodes()).
struct VtkNodalField {
  std::string name;
  const std::vector<double>* values = nullptr;
};

/// One named nodal vector field given as a dof vector (2 dofs/node, the
/// solver layout); the z component is written as 0.
struct VtkNodalVector2 {
  std::string name;
  const std::vector<double>* dofs = nullptr;
};

/// Writes the hexahedral mesh and fields as legacy VTK; returns the path.
std::string write_vtk(const std::string& path, const mesh::ExtrudedMesh& mesh,
                      const std::vector<VtkNodalField>& scalars = {},
                      const std::vector<VtkNodalVector2>& vectors = {});

}  // namespace mali::io
