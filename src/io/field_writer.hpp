#pragma once
// Field output: CSV tables and PPM heatmap rendering of base-grid fields —
// how MiniMALI produces its analog of the paper's Fig. 1 (the Antarctic
// surface-speed map) without any plotting dependency.

#include <cstddef>
#include <string>
#include <vector>

#include "mesh/quad_grid.hpp"

namespace mali::io {

/// Simple RGB triple.
struct Rgb {
  unsigned char r = 0, g = 0, b = 0;
};

/// Perceptually-reasonable blue->cyan->yellow->red colormap on [0,1].
[[nodiscard]] Rgb heat_color(double t);

struct HeatmapConfig {
  int pixels_per_cell = 4;
  bool log_scale = false;     ///< color by log10(1 + value)
  double vmin = 0.0;          ///< lower color bound (vmin == vmax: auto)
  double vmax = 0.0;
  Rgb background{15, 15, 30}; ///< color outside the ice mask
};

/// Renders a cell-centred field on the quad grid to a binary PPM (P6).
/// Returns the written path.  Throws mali::Error on I/O failure.
std::string write_heatmap_ppm(const std::string& path,
                              const mesh::QuadGrid& grid,
                              const std::vector<double>& cell_field,
                              HeatmapConfig cfg = {});

/// Writes (x, y, value...) rows for node-centred fields.
void write_node_csv(const std::string& path, const mesh::QuadGrid& grid,
                    const std::vector<std::string>& column_names,
                    const std::vector<const std::vector<double>*>& columns);

// ---- solver checkpoint files -----------------------------------------
//
// The binary format behind resilience::SolverCheckpoint (DESIGN.md §11):
//   bytes  0..7   magic "MALICKPT"
//   bytes  8..11  uint32 version (currently 1)
//   bytes 12..15  int32  newton_step
//   bytes 16..23  double residual_norm
//   bytes 24..31  double continuation parameter (0 when unused)
//   bytes 32..39  uint64 n (number of solution dofs)
//   bytes 40..    n raw little-endian doubles (the solution vector U)
// Doubles are written bit-for-bit (native IEEE-754 layout), so a
// write/read round-trip is exact — including NaN payloads, -0.0, and
// denormals.  The format is host-endian; checkpoints are scratch files
// for in-run restart, not an archival format.

/// Writes one solution checkpoint.  Throws mali::Error on I/O failure.
void write_solver_checkpoint(const std::string& path,
                             const std::vector<double>& U,
                             double residual_norm, double parameter,
                             int newton_step);

/// Reads a checkpoint written by write_solver_checkpoint, validating the
/// magic/version/size.  Throws mali::Error on a malformed file.
void read_solver_checkpoint(const std::string& path, std::vector<double>& U,
                            double& residual_norm, double& parameter,
                            int& newton_step);

// ---- transient checkpoint files --------------------------------------
//
// The transient (forecast) checkpoint extends the solver format with the
// full prognostic state of a coupled run (DESIGN.md §14):
//   bytes  0..7   magic "MALITCKP"
//   bytes  8..11  uint32 version (currently 1)
//   bytes 12..15  int32  step index
//   bytes 16..23  double model time t (years)
//   bytes 24..31  double current dt (years)
//   then three length-prefixed vectors, each uint64 n + n raw doubles:
//     H (cell thickness), T (flattened column temperatures), U (velocity)
// Same bit-exact host-endian contract as the solver checkpoint.

/// Writes one transient checkpoint.  Throws mali::Error on I/O failure.
void write_transient_checkpoint(const std::string& path,
                                const std::vector<double>& H,
                                const std::vector<double>& T,
                                const std::vector<double>& U, double t,
                                double dt, int step);

/// Reads a checkpoint written by write_transient_checkpoint, validating
/// the magic/version/sizes.  Throws mali::Error on a malformed file.
void read_transient_checkpoint(const std::string& path,
                               std::vector<double>& H, std::vector<double>& T,
                               std::vector<double>& U, double& t, double& dt,
                               int& step);

}  // namespace mali::io
