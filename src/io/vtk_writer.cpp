#include "io/vtk_writer.hpp"

#include <fstream>

#include "portability/common.hpp"

namespace mali::io {

std::string write_vtk(const std::string& path, const mesh::ExtrudedMesh& mesh,
                      const std::vector<VtkNodalField>& scalars,
                      const std::vector<VtkNodalVector2>& vectors) {
  const std::size_t n_nodes = mesh.n_nodes();
  const std::size_t n_cells = mesh.n_cells();
  for (const auto& f : scalars) {
    MALI_CHECK_MSG(f.values != nullptr && f.values->size() == n_nodes,
                   "scalar field size mismatch: " + f.name);
  }
  for (const auto& v : vectors) {
    MALI_CHECK_MSG(v.dofs != nullptr && v.dofs->size() == 2 * n_nodes,
                   "vector field size mismatch: " + v.name);
  }

  std::ofstream os(path);
  MALI_CHECK_MSG(os.good(), "cannot open " + path);
  os.precision(10);
  os << "# vtk DataFile Version 3.0\n";
  os << "MiniMALI extruded ice-sheet mesh\n";
  os << "ASCII\nDATASET UNSTRUCTURED_GRID\n";

  os << "POINTS " << n_nodes << " double\n";
  for (std::size_t n = 0; n < n_nodes; ++n) {
    os << mesh.node_x(n) << ' ' << mesh.node_y(n) << ' ' << mesh.node_z(n)
       << '\n';
  }

  os << "CELLS " << n_cells << ' ' << n_cells * 9 << '\n';
  for (std::size_t c = 0; c < n_cells; ++c) {
    os << 8;
    for (int k = 0; k < 8; ++k) os << ' ' << mesh.cell_node(c, k);
    os << '\n';
  }
  os << "CELL_TYPES " << n_cells << '\n';
  for (std::size_t c = 0; c < n_cells; ++c) os << "12\n";  // VTK_HEXAHEDRON

  if (!scalars.empty() || !vectors.empty()) {
    os << "POINT_DATA " << n_nodes << '\n';
    for (const auto& f : scalars) {
      os << "SCALARS " << f.name << " double 1\nLOOKUP_TABLE default\n";
      for (double v : *f.values) os << v << '\n';
    }
    for (const auto& v : vectors) {
      os << "VECTORS " << v.name << " double\n";
      for (std::size_t n = 0; n < n_nodes; ++n) {
        os << (*v.dofs)[2 * n] << ' ' << (*v.dofs)[2 * n + 1] << " 0\n";
      }
    }
  }
  MALI_CHECK_MSG(os.good(), "write failed: " + path);
  return path;
}

}  // namespace mali::io
