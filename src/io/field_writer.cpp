#include "io/field_writer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>

#include "portability/common.hpp"

namespace mali::io {

Rgb heat_color(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // Piecewise-linear blue -> cyan -> yellow -> red ramp.
  auto lerp = [](double a, double b, double s) { return a + (b - a) * s; };
  double r, g, b;
  if (t < 1.0 / 3.0) {
    const double s = 3.0 * t;
    r = 0.05;
    g = lerp(0.1, 0.8, s);
    b = lerp(0.6, 0.9, s);
  } else if (t < 2.0 / 3.0) {
    const double s = 3.0 * (t - 1.0 / 3.0);
    r = lerp(0.05, 0.95, s);
    g = lerp(0.8, 0.9, s);
    b = lerp(0.9, 0.15, s);
  } else {
    const double s = 3.0 * (t - 2.0 / 3.0);
    r = lerp(0.95, 0.85, s);
    g = lerp(0.9, 0.1, s);
    b = 0.15;
  }
  return Rgb{static_cast<unsigned char>(255.0 * r),
             static_cast<unsigned char>(255.0 * g),
             static_cast<unsigned char>(255.0 * b)};
}

std::string write_heatmap_ppm(const std::string& path,
                              const mesh::QuadGrid& grid,
                              const std::vector<double>& cell_field,
                              HeatmapConfig cfg) {
  MALI_CHECK(cell_field.size() == grid.n_cells());
  MALI_CHECK(cfg.pixels_per_cell >= 1);

  // Lattice extents from the centroids.
  const std::size_t n = grid.n_cells();
  std::vector<double> cx(n), cy(n);
  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  for (std::size_t c = 0; c < n; ++c) {
    grid.cell_centroid(c, cx[c], cy[c]);
    xmin = std::min(xmin, cx[c]);
    xmax = std::max(xmax, cx[c]);
    ymin = std::min(ymin, cy[c]);
    ymax = std::max(ymax, cy[c]);
  }
  const double dx = grid.dx();
  const auto ni = static_cast<long>(std::llround((xmax - xmin) / dx)) + 1;
  const auto nj = static_cast<long>(std::llround((ymax - ymin) / dx)) + 1;

  // Map cells into the lattice raster.
  std::vector<long> raster(static_cast<std::size_t>(ni * nj), -1);
  for (std::size_t c = 0; c < n; ++c) {
    const long i = std::llround((cx[c] - xmin) / dx);
    const long j = std::llround((cy[c] - ymin) / dx);
    raster[static_cast<std::size_t>(j * ni + i)] = static_cast<long>(c);
  }

  auto transform = [&](double v) {
    return cfg.log_scale ? std::log10(1.0 + std::max(0.0, v)) : v;
  };
  double vmin = cfg.vmin, vmax = cfg.vmax;
  if (vmin == vmax) {
    vmin = 1e300;
    vmax = -1e300;
    for (double v : cell_field) {
      vmin = std::min(vmin, transform(v));
      vmax = std::max(vmax, transform(v));
    }
    if (vmin >= vmax) vmax = vmin + 1.0;
  }

  const int p = cfg.pixels_per_cell;
  const long W = ni * p, H = nj * p;
  std::ofstream os(path, std::ios::binary);
  MALI_CHECK_MSG(os.good(), "cannot open output file: " + path);
  os << "P6\n" << W << ' ' << H << "\n255\n";
  std::vector<unsigned char> row(static_cast<std::size_t>(W) * 3);
  for (long jy = H - 1; jy >= 0; --jy) {  // north up
    const long j = jy / p;
    for (long ix = 0; ix < W; ++ix) {
      const long i = ix / p;
      const long cell = raster[static_cast<std::size_t>(j * ni + i)];
      Rgb color = cfg.background;
      if (cell >= 0) {
        const double t = (transform(cell_field[static_cast<std::size_t>(cell)]) - vmin) /
                         (vmax - vmin);
        color = heat_color(t);
      }
      row[static_cast<std::size_t>(ix) * 3 + 0] = color.r;
      row[static_cast<std::size_t>(ix) * 3 + 1] = color.g;
      row[static_cast<std::size_t>(ix) * 3 + 2] = color.b;
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
  MALI_CHECK_MSG(os.good(), "write failed: " + path);
  return path;
}

void write_node_csv(const std::string& path, const mesh::QuadGrid& grid,
                    const std::vector<std::string>& column_names,
                    const std::vector<const std::vector<double>*>& columns) {
  MALI_CHECK(column_names.size() == columns.size());
  for (const auto* col : columns) {
    MALI_CHECK(col != nullptr && col->size() == grid.n_nodes());
  }
  std::ofstream os(path);
  MALI_CHECK_MSG(os.good(), "cannot open output file: " + path);
  os << "x_m,y_m";
  for (const auto& name : column_names) os << ',' << name;
  os << '\n';
  for (std::size_t nd = 0; nd < grid.n_nodes(); ++nd) {
    os << grid.node_x(nd) << ',' << grid.node_y(nd);
    for (const auto* col : columns) os << ',' << (*col)[nd];
    os << '\n';
  }
  MALI_CHECK_MSG(os.good(), "write failed: " + path);
}

// ---- solver checkpoint files -----------------------------------------

namespace {
constexpr char kCkptMagic[8] = {'M', 'A', 'L', 'I', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kCkptVersion = 1;

template <class T>
void put(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
void get(std::ifstream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
}
}  // namespace

void write_solver_checkpoint(const std::string& path,
                             const std::vector<double>& U,
                             double residual_norm, double parameter,
                             int newton_step) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  MALI_CHECK_MSG(os.good(), "cannot open checkpoint file: " + path);
  os.write(kCkptMagic, sizeof(kCkptMagic));
  put(os, kCkptVersion);
  put(os, static_cast<std::int32_t>(newton_step));
  put(os, residual_norm);
  put(os, parameter);
  put(os, static_cast<std::uint64_t>(U.size()));
  os.write(reinterpret_cast<const char*>(U.data()),
           static_cast<std::streamsize>(U.size() * sizeof(double)));
  MALI_CHECK_MSG(os.good(), "checkpoint write failed: " + path);
}

void read_solver_checkpoint(const std::string& path, std::vector<double>& U,
                            double& residual_norm, double& parameter,
                            int& newton_step) {
  std::ifstream is(path, std::ios::binary);
  MALI_CHECK_MSG(is.good(), "cannot open checkpoint file: " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  MALI_CHECK_MSG(is.good() && std::equal(magic, magic + 8, kCkptMagic),
                 "not a MALI checkpoint file: " + path);
  std::uint32_t version = 0;
  get(is, version);
  MALI_CHECK_MSG(version == kCkptVersion,
                 "unsupported checkpoint version in " + path);
  std::int32_t step = 0;
  get(is, step);
  get(is, residual_norm);
  get(is, parameter);
  std::uint64_t n = 0;
  get(is, n);
  MALI_CHECK_MSG(is.good(), "truncated checkpoint header: " + path);
  U.resize(static_cast<std::size_t>(n));
  is.read(reinterpret_cast<char*>(U.data()),
          static_cast<std::streamsize>(U.size() * sizeof(double)));
  MALI_CHECK_MSG(is.good(), "truncated checkpoint payload: " + path);
  newton_step = static_cast<int>(step);
}

// ---- transient checkpoint files --------------------------------------

namespace {
constexpr char kTCkptMagic[8] = {'M', 'A', 'L', 'I', 'T', 'C', 'K', 'P'};
constexpr std::uint32_t kTCkptVersion = 1;

void put_vector(std::ofstream& os, const std::vector<double>& v) {
  put(os, static_cast<std::uint64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(double)));
}

void get_vector(std::ifstream& is, std::vector<double>& v,
                const std::string& path) {
  std::uint64_t n = 0;
  get(is, n);
  MALI_CHECK_MSG(is.good(), "truncated checkpoint header: " + path);
  v.resize(static_cast<std::size_t>(n));
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(double)));
  MALI_CHECK_MSG(is.good(), "truncated checkpoint payload: " + path);
}
}  // namespace

void write_transient_checkpoint(const std::string& path,
                                const std::vector<double>& H,
                                const std::vector<double>& T,
                                const std::vector<double>& U, double t,
                                double dt, int step) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  MALI_CHECK_MSG(os.good(), "cannot open checkpoint file: " + path);
  os.write(kTCkptMagic, sizeof(kTCkptMagic));
  put(os, kTCkptVersion);
  put(os, static_cast<std::int32_t>(step));
  put(os, t);
  put(os, dt);
  put_vector(os, H);
  put_vector(os, T);
  put_vector(os, U);
  MALI_CHECK_MSG(os.good(), "checkpoint write failed: " + path);
}

void read_transient_checkpoint(const std::string& path,
                               std::vector<double>& H, std::vector<double>& T,
                               std::vector<double>& U, double& t, double& dt,
                               int& step) {
  std::ifstream is(path, std::ios::binary);
  MALI_CHECK_MSG(is.good(), "cannot open checkpoint file: " + path);
  char magic[8];
  is.read(magic, sizeof(magic));
  MALI_CHECK_MSG(is.good() && std::equal(magic, magic + 8, kTCkptMagic),
                 "not a MALI transient checkpoint file: " + path);
  std::uint32_t version = 0;
  get(is, version);
  MALI_CHECK_MSG(version == kTCkptVersion,
                 "unsupported transient checkpoint version in " + path);
  std::int32_t s = 0;
  get(is, s);
  get(is, t);
  get(is, dt);
  MALI_CHECK_MSG(is.good(), "truncated checkpoint header: " + path);
  get_vector(is, H, path);
  get_vector(is, T, path);
  get_vector(is, U, path);
  step = static_cast<int>(s);
}

}  // namespace mali::io
