#pragma once
// Trilinear (HEX8) nodal basis on the reference cube [-1,1]^3.
//
// Node ordering matches mesh::ExtrudedMesh::cell_node: bottom face CCW
// (0..3) then top face CCW (4..7).

#include <array>
#include <cstddef>

namespace mali::fem {

struct Hex8Basis {
  static constexpr int num_nodes = 8;

  /// Reference coordinates of node k.
  static constexpr std::array<double, 3> node_coord(int k) noexcept {
    constexpr double X[8] = {-1, 1, 1, -1, -1, 1, 1, -1};
    constexpr double Y[8] = {-1, -1, 1, 1, -1, -1, 1, 1};
    constexpr double Z[8] = {-1, -1, -1, -1, 1, 1, 1, 1};
    return {X[k], Y[k], Z[k]};
  }

  /// N_k(xi, eta, zeta).
  static constexpr double value(int k, double xi, double eta,
                                double zeta) noexcept {
    const auto c = node_coord(k);
    return 0.125 * (1.0 + c[0] * xi) * (1.0 + c[1] * eta) *
           (1.0 + c[2] * zeta);
  }

  /// dN_k/d(xi, eta, zeta).
  static constexpr std::array<double, 3> gradient(int k, double xi, double eta,
                                                  double zeta) noexcept {
    const auto c = node_coord(k);
    return {0.125 * c[0] * (1.0 + c[1] * eta) * (1.0 + c[2] * zeta),
            0.125 * c[1] * (1.0 + c[0] * xi) * (1.0 + c[2] * zeta),
            0.125 * c[2] * (1.0 + c[0] * xi) * (1.0 + c[1] * eta)};
  }
};

/// Bilinear (QUAD4) basis on [-1,1]^2 for the basal side set.
struct Quad4Basis {
  static constexpr int num_nodes = 4;

  static constexpr std::array<double, 2> node_coord(int k) noexcept {
    constexpr double X[4] = {-1, 1, 1, -1};
    constexpr double Y[4] = {-1, -1, 1, 1};
    return {X[k], Y[k]};
  }

  static constexpr double value(int k, double xi, double eta) noexcept {
    const auto c = node_coord(k);
    return 0.25 * (1.0 + c[0] * xi) * (1.0 + c[1] * eta);
  }

  static constexpr std::array<double, 2> gradient(int k, double xi,
                                                  double eta) noexcept {
    const auto c = node_coord(k);
    return {0.25 * c[0] * (1.0 + c[1] * eta), 0.25 * c[1] * (1.0 + c[0] * xi)};
  }
};

}  // namespace mali::fem
