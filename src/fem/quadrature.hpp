#pragma once
// Tensor-product Gauss quadrature on the reference cube/square.  The paper's
// hexahedral elements use 2x2x2 Gauss points (numQPs = 8).

#include <array>
#include <cmath>
#include <cstddef>
#include <vector>

namespace mali::fem {

struct QuadraturePoint3 {
  double xi, eta, zeta, weight;
};
struct QuadraturePoint2 {
  double xi, eta, weight;
};

/// 1D Gauss–Legendre nodes/weights for orders 1..3 (enough for trilinear
/// elements and verification sweeps).
inline std::vector<std::pair<double, double>> gauss_1d(int n_points) {
  switch (n_points) {
    case 1:
      return {{0.0, 2.0}};
    case 2: {
      const double a = 1.0 / std::sqrt(3.0);
      return {{-a, 1.0}, {a, 1.0}};
    }
    case 3: {
      const double a = std::sqrt(3.0 / 5.0);
      return {{-a, 5.0 / 9.0}, {0.0, 8.0 / 9.0}, {a, 5.0 / 9.0}};
    }
    default:
      return {};
  }
}

/// 3D tensor rule; 2 points per direction gives the paper's 8 QPs.
inline std::vector<QuadraturePoint3> gauss_hex(int n_per_dim = 2) {
  const auto g = gauss_1d(n_per_dim);
  std::vector<QuadraturePoint3> qps;
  qps.reserve(g.size() * g.size() * g.size());
  for (const auto& [z, wz] : g) {
    for (const auto& [y, wy] : g) {
      for (const auto& [x, wx] : g) {
        qps.push_back({x, y, z, wx * wy * wz});
      }
    }
  }
  return qps;
}

/// 2D tensor rule for the basal side set.
inline std::vector<QuadraturePoint2> gauss_quad(int n_per_dim = 2) {
  const auto g = gauss_1d(n_per_dim);
  std::vector<QuadraturePoint2> qps;
  qps.reserve(g.size() * g.size());
  for (const auto& [y, wy] : g) {
    for (const auto& [x, wx] : g) {
      qps.push_back({x, y, wx * wy});
    }
  }
  return qps;
}

}  // namespace mali::fem
