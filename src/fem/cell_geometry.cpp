#include "fem/cell_geometry.hpp"

#include <array>
#include <atomic>
#include <cmath>
#include <vector>

#include "fem/hex8.hpp"
#include "fem/quadrature.hpp"
#include "portability/common.hpp"
#include "portability/parallel.hpp"
#include "portability/simd.hpp"

namespace mali::fem {

namespace {

/// 3x3 inverse and determinant.
double invert3(const std::array<std::array<double, 3>, 3>& m,
               std::array<std::array<double, 3>, 3>& inv) {
  const double det =
      m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
      m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
      m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  const double inv_det = 1.0 / det;
  inv[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
  inv[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
  inv[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
  inv[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
  inv[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
  inv[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
  inv[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
  inv[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
  inv[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
  return det;
}

}  // namespace

std::size_t padded_cells(std::size_t n_cells) {
  return n_cells + static_cast<std::size_t>(pk::kSimdMaxWidth - 1);
}

void replicate_ghost_cells(GeometryWorkset& ws) {
  const std::size_t C = ws.n_cells;
  const std::size_t Cp = ws.n_cells_padded;
  if (C == 0 || Cp <= C) return;
  const std::size_t src = C - 1;
  const int N = ws.num_nodes;
  const int Q = ws.num_qps;
  for (std::size_t c = C; c < Cp; ++c) {
    for (int k = 0; k < N; ++k) {
      ws.cell_nodes(c, k) = ws.cell_nodes(src, k);
      for (int d = 0; d < 3; ++d) ws.coords(c, k, d) = ws.coords(src, k, d);
      for (int q = 0; q < Q; ++q) {
        ws.wBF(c, k, q) = ws.wBF(src, k, q);
        for (int d = 0; d < 3; ++d) {
          ws.gradBF(c, k, q, d) = ws.gradBF(src, k, q, d);
          ws.wGradBF(c, k, q, d) = ws.wGradBF(src, k, q, d);
        }
      }
    }
    for (int q = 0; q < Q; ++q) ws.detJ(c, q) = ws.detJ(src, q);
  }
}

void validate_workset(const GeometryWorkset& ws) {
  const std::size_t F = ws.n_basal_faces;
  if (F == 0) return;
  MALI_CHECK_MSG(ws.face_nodes > 0 && ws.face_qps > 0,
                 "workset basal side set: non-positive face_nodes/face_qps");
  const auto fn = static_cast<std::size_t>(ws.face_nodes);
  const auto fq = static_cast<std::size_t>(ws.face_qps);
  MALI_CHECK_MSG(ws.basal_face_cell.extent(0) == F &&
                     ws.basal_face_node.extent(0) == F &&
                     ws.basal_wBF.extent(0) == F && ws.basal_beta.extent(0) == F,
                 "workset basal side set: face-count extent mismatch against "
                 "n_basal_faces = " +
                     std::to_string(F));
  MALI_CHECK_MSG(ws.basal_face_node.extent(1) == fn,
                 "workset basal side set: basal_face_node holds " +
                     std::to_string(ws.basal_face_node.extent(1)) +
                     " nodes per face but face_nodes = " +
                     std::to_string(ws.face_nodes));
  MALI_CHECK_MSG(ws.basal_wBF.extent(1) == fn && ws.basal_wBF.extent(2) == fq,
                 "workset basal side set: basal_wBF built as (" +
                     std::to_string(ws.basal_wBF.extent(1)) + ", " +
                     std::to_string(ws.basal_wBF.extent(2)) +
                     ") per face but face_nodes/face_qps say (" +
                     std::to_string(ws.face_nodes) + ", " +
                     std::to_string(ws.face_qps) + ")");
  const int N = ws.num_nodes;
  for (std::size_t f = 0; f < F; ++f) {
    const std::size_t cell = ws.basal_face_cell(f);
    MALI_CHECK_MSG(cell < ws.n_cells,
                   "workset basal side set: face " + std::to_string(f) +
                       " references cell " + std::to_string(cell) +
                       " past n_cells = " + std::to_string(ws.n_cells));
    for (int k = 0; k < ws.face_nodes; ++k) {
      const std::size_t node = ws.basal_face_node(f, k);
      bool found = false;
      for (int j = 0; j < N && !found; ++j) {
        found = ws.cell_nodes(cell, j) == node;
      }
      MALI_CHECK_MSG(found, "workset basal side set: face " +
                                std::to_string(f) + " node " +
                                std::to_string(k) + " (global id " +
                                std::to_string(node) +
                                ") is not a node of owning cell " +
                                std::to_string(cell));
    }
  }
}

GeometryWorkset build_geometry(const mesh::ExtrudedMesh& mesh,
                               const mesh::IceGeometry& geom) {
  GeometryWorkset ws;
  const std::size_t C = mesh.n_cells();
  const std::size_t Cp = padded_cells(C);
  constexpr int N = Hex8Basis::num_nodes;
  const auto qps = gauss_hex(2);
  const int Q = static_cast<int>(qps.size());

  ws.n_cells = C;
  ws.n_cells_padded = Cp;
  ws.num_nodes = N;
  ws.num_qps = Q;
  ws.cell_nodes = pk::View<std::size_t, 2>("cell_nodes", Cp, N);
  ws.coords = pk::View<double, 3>("coords", Cp, N, 3);
  ws.wBF = pk::View<double, 3>("wBF", Cp, N, Q);
  ws.wGradBF = pk::View<double, 4>("wGradBF", Cp, N, Q, 3);
  ws.gradBF = pk::View<double, 4>("gradBF", Cp, N, Q, 3);
  ws.detJ = pk::View<double, 2>("detJ", Cp, Q);

  // Precompute reference basis values/gradients at the quadrature points.
  std::vector<std::array<double, N>> ref_val(static_cast<std::size_t>(Q));
  std::vector<std::array<std::array<double, 3>, N>> ref_grad(
      static_cast<std::size_t>(Q));
  for (int q = 0; q < Q; ++q) {
    for (int k = 0; k < N; ++k) {
      ref_val[q][k] = Hex8Basis::value(k, qps[q].xi, qps[q].eta, qps[q].zeta);
      ref_grad[q][k] =
          Hex8Basis::gradient(k, qps[q].xi, qps[q].eta, qps[q].zeta);
    }
  }

  std::atomic<bool> bad_jacobian{false};
  pk::parallel_for("build_geometry", C, [&](int ci) {
    const auto c = static_cast<std::size_t>(ci);
    std::array<std::array<double, 3>, N> xn{};
    for (int k = 0; k < N; ++k) {
      const std::size_t node = mesh.cell_node(c, k);
      ws.cell_nodes(c, k) = node;
      xn[k] = {mesh.node_x(node), mesh.node_y(node), mesh.node_z(node)};
      for (int d = 0; d < 3; ++d) ws.coords(c, k, d) = xn[k][d];
    }
    for (int q = 0; q < Q; ++q) {
      // J[i][j] = d x_i / d xi_j
      std::array<std::array<double, 3>, 3> J{};
      for (int k = 0; k < N; ++k) {
        for (int i = 0; i < 3; ++i) {
          for (int j = 0; j < 3; ++j) {
            J[i][j] += xn[k][i] * ref_grad[q][k][j];
          }
        }
      }
      std::array<std::array<double, 3>, 3> Jinv{};
      const double det = invert3(J, Jinv);
      if (!(det > 0.0)) bad_jacobian = true;
      ws.detJ(c, q) = det;
      const double w = qps[q].weight * det;
      for (int k = 0; k < N; ++k) {
        ws.wBF(c, k, q) = ref_val[q][k] * w;
        for (int d = 0; d < 3; ++d) {
          // Physical gradient: (J^{-T} grad_ref)_d = sum_j Jinv[j][d] * g[j].
          double g = 0.0;
          for (int j = 0; j < 3; ++j) g += Jinv[j][d] * ref_grad[q][k][j];
          ws.gradBF(c, k, q, d) = g;
          ws.wGradBF(c, k, q, d) = g * w;
        }
      }
    }
  });
  MALI_CHECK_MSG(!bad_jacobian.load(),
                 "degenerate element: non-positive Jacobian determinant");

  // ---- basal side set: bottom faces of layer-0 cells ----
  const auto basal = mesh.basal_cells();
  const std::size_t F = basal.size();
  const auto fqps = gauss_quad(2);
  const int Qf = static_cast<int>(fqps.size());
  ws.n_basal_faces = F;
  ws.face_qps = Qf;
  ws.basal_face_cell = pk::View<std::size_t, 1>("basal_face_cell", F);
  ws.basal_face_node = pk::View<std::size_t, 2>("basal_face_node", F, 4);
  ws.basal_wBF = pk::View<double, 3>("basal_wBF", F, 4, Qf);
  ws.basal_beta = pk::View<double, 1>("basal_beta", F);

  pk::parallel_for("build_basal_faces", F, [&](int fi) {
    const auto f = static_cast<std::size_t>(fi);
    const std::size_t cell = basal[f];
    ws.basal_face_cell(f) = cell;
    std::array<std::array<double, 3>, 4> xn{};
    double cx = 0.0, cy = 0.0;
    for (int k = 0; k < 4; ++k) {
      const std::size_t node = mesh.cell_node(cell, k);  // bottom face = 0..3
      ws.basal_face_node(f, k) = node;
      xn[k] = {mesh.node_x(node), mesh.node_y(node), mesh.node_z(node)};
      cx += 0.25 * xn[k][0];
      cy += 0.25 * xn[k][1];
    }
    ws.basal_beta(f) = geom.basal_friction(cx, cy);
    for (int q = 0; q < Qf; ++q) {
      // Surface measure: |t_xi x t_eta|.
      std::array<double, 3> txi{}, teta{};
      for (int k = 0; k < 4; ++k) {
        const auto g = Quad4Basis::gradient(k, fqps[q].xi, fqps[q].eta);
        for (int d = 0; d < 3; ++d) {
          txi[d] += xn[k][d] * g[0];
          teta[d] += xn[k][d] * g[1];
        }
      }
      const double nx = txi[1] * teta[2] - txi[2] * teta[1];
      const double ny = txi[2] * teta[0] - txi[0] * teta[2];
      const double nz = txi[0] * teta[1] - txi[1] * teta[0];
      const double area = std::sqrt(nx * nx + ny * ny + nz * nz);
      for (int k = 0; k < 4; ++k) {
        ws.basal_wBF(f, k, q) =
            Quad4Basis::value(k, fqps[q].xi, fqps[q].eta) * area *
            fqps[q].weight;
      }
    }
  });

  replicate_ghost_cells(ws);
  validate_workset(ws);
  return ws;
}

}  // namespace mali::fem
