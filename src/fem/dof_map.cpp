#include "fem/dof_map.hpp"

#include <algorithm>

#include "portability/common.hpp"

namespace mali::fem {

DofMap::DofMap(const mesh::ExtrudedMesh& mesh, bool all_boundaries)
    : n_nodes_(mesh.n_nodes()) {
  dirichlet_.assign(n_dofs(), false);
  for (std::size_t n = 0; n < n_nodes_; ++n) {
    const bool pinned =
        mesh.is_dirichlet_node(n) ||
        (all_boundaries && (mesh.is_basal_node(n) || mesh.is_surface_node(n)));
    if (pinned) {
      for (int c = 0; c < dofs_per_node; ++c) {
        dirichlet_[dof(n, c)] = true;
        dirichlet_list_.push_back(dof(n, c));
      }
    }
  }

  // Node adjacency via shared cells (each hex couples its 8 nodes).
  std::vector<std::vector<std::size_t>> nbrs(n_nodes_);
  const std::size_t C = mesh.n_cells();
  for (std::size_t c = 0; c < C; ++c) {
    std::size_t nodes[8];
    for (int k = 0; k < 8; ++k) nodes[k] = mesh.cell_node(c, k);
    for (int a = 0; a < 8; ++a) {
      for (int b = 0; b < 8; ++b) nbrs[nodes[a]].push_back(nodes[b]);
    }
  }
  for (auto& v : nbrs) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  // Expand node adjacency into the 2x2 dof blocks.
  row_ptr_.assign(n_dofs() + 1, 0);
  for (std::size_t n = 0; n < n_nodes_; ++n) {
    const std::size_t nnz = nbrs[n].size() * dofs_per_node;
    row_ptr_[dof(n, 0) + 1] = nnz;
    row_ptr_[dof(n, 1) + 1] = nnz;
  }
  for (std::size_t r = 0; r < n_dofs(); ++r) row_ptr_[r + 1] += row_ptr_[r];

  cols_.resize(row_ptr_.back());
  for (std::size_t n = 0; n < n_nodes_; ++n) {
    for (int c = 0; c < dofs_per_node; ++c) {
      std::size_t p = row_ptr_[dof(n, c)];
      for (std::size_t m : nbrs[n]) {
        cols_[p++] = dof(m, 0);
        cols_[p++] = dof(m, 1);
      }
      MALI_ASSERT(p == row_ptr_[dof(n, c) + 1]);
    }
  }
}

}  // namespace mali::fem
