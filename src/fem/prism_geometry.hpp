#pragma once
// Geometry workset for MALI's native prismatic (WEDGE6) discretization:
// triangles of a TriGrid extruded through the ice thickness.  Produces the
// same GeometryWorkset structure as the hexahedral path with num_nodes = 6
// and num_qps = 6, so the StokesFOResid kernels run on it unchanged.

#include "fem/workset.hpp"
#include "mesh/ice_geometry.hpp"
#include "mesh/tri_grid.hpp"

namespace mali::fem {

/// Assembles the FE arrays for every prism of the extruded triangulation.
/// Node ids use the column-major layout (column * (n_layers+1) + level),
/// matching the hexahedral mesh convention.
[[nodiscard]] GeometryWorkset build_prism_geometry(
    const mesh::TriGrid& tris, const mesh::IceGeometry& geom, int n_layers);

}  // namespace mali::fem
