#include "fem/prism_geometry.hpp"

#include <array>
#include <atomic>
#include <cmath>
#include <vector>

#include "fem/cell_geometry.hpp"
#include "fem/wedge6.hpp"
#include "portability/common.hpp"
#include "portability/parallel.hpp"

namespace mali::fem {

namespace {

double invert3(const std::array<std::array<double, 3>, 3>& m,
               std::array<std::array<double, 3>, 3>& inv) {
  const double det =
      m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
      m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
      m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  const double inv_det = 1.0 / det;
  inv[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
  inv[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
  inv[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
  inv[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
  inv[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
  inv[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
  inv[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
  inv[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
  inv[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
  return det;
}

}  // namespace

GeometryWorkset build_prism_geometry(const mesh::TriGrid& tris,
                                     const mesh::IceGeometry& geom,
                                     int n_layers) {
  MALI_CHECK(n_layers >= 1);
  GeometryWorkset ws;
  constexpr int N = Wedge6Basis::num_nodes;
  const auto qps = gauss_wedge();
  const int Q = static_cast<int>(qps.size());
  const std::size_t n_tris = tris.n_cells();
  const std::size_t C = n_tris * static_cast<std::size_t>(n_layers);
  const std::size_t levels = static_cast<std::size_t>(n_layers) + 1;

  const std::size_t Cp = padded_cells(C);
  ws.n_cells = C;
  ws.n_cells_padded = Cp;
  ws.num_nodes = N;
  ws.num_qps = Q;
  ws.cell_nodes = pk::View<std::size_t, 2>("cell_nodes", Cp, N);
  ws.coords = pk::View<double, 3>("coords", Cp, N, 3);
  ws.wBF = pk::View<double, 3>("wBF", Cp, N, Q);
  ws.wGradBF = pk::View<double, 4>("wGradBF", Cp, N, Q, 3);
  ws.gradBF = pk::View<double, 4>("gradBF", Cp, N, Q, 3);
  ws.detJ = pk::View<double, 2>("detJ", Cp, Q);

  std::vector<std::array<double, N>> ref_val(static_cast<std::size_t>(Q));
  std::vector<std::array<std::array<double, 3>, N>> ref_grad(
      static_cast<std::size_t>(Q));
  for (int q = 0; q < Q; ++q) {
    const auto& p = qps[static_cast<std::size_t>(q)];
    for (int k = 0; k < N; ++k) {
      ref_val[q][k] = Wedge6Basis::value(k, p.xi, p.eta, p.zeta);
      ref_grad[q][k] = Wedge6Basis::gradient(k, p.xi, p.eta, p.zeta);
    }
  }

  // Column z profile, as in ExtrudedMesh.
  auto node_z = [&](std::size_t col, std::size_t level) {
    const double x = tris.node_x(col);
    const double y = tris.node_y(col);
    const double h =
        std::max(geom.thickness(x, y), geom.config().min_thickness_m);
    const double sigma =
        static_cast<double>(level) / static_cast<double>(n_layers);
    return geom.bed(x, y) + sigma * h;
  };

  std::atomic<bool> bad_jacobian{false};
  pk::parallel_for("build_prism_geometry", C, [&](int ci) {
    const auto c = static_cast<std::size_t>(ci);
    const std::size_t tri = c / static_cast<std::size_t>(n_layers);
    const std::size_t layer = c % static_cast<std::size_t>(n_layers);
    std::array<std::array<double, 3>, N> xn{};
    for (int k = 0; k < N; ++k) {
      const std::size_t col = tris.cell_node(tri, k % 3);
      const std::size_t level = layer + (k >= 3 ? 1 : 0);
      ws.cell_nodes(c, k) = col * levels + level;
      xn[k] = {tris.node_x(col), tris.node_y(col), node_z(col, level)};
      for (int d = 0; d < 3; ++d) ws.coords(c, k, d) = xn[k][d];
    }
    for (int q = 0; q < Q; ++q) {
      std::array<std::array<double, 3>, 3> J{};
      for (int k = 0; k < N; ++k) {
        for (int i = 0; i < 3; ++i) {
          for (int j = 0; j < 3; ++j) {
            J[i][j] += xn[k][i] * ref_grad[q][k][j];
          }
        }
      }
      std::array<std::array<double, 3>, 3> Jinv{};
      const double det = invert3(J, Jinv);
      if (!(det > 0.0)) bad_jacobian = true;
      ws.detJ(c, q) = det;
      const double w = qps[static_cast<std::size_t>(q)].weight * det;
      for (int k = 0; k < N; ++k) {
        ws.wBF(c, k, q) = ref_val[q][k] * w;
        for (int d = 0; d < 3; ++d) {
          double g = 0.0;
          for (int j = 0; j < 3; ++j) g += Jinv[j][d] * ref_grad[q][k][j];
          ws.gradBF(c, k, q, d) = g;
          ws.wGradBF(c, k, q, d) = g * w;
        }
      }
    }
  });
  MALI_CHECK_MSG(!bad_jacobian.load(),
                 "degenerate prism: non-positive Jacobian determinant");

  // Basal side set: bottom triangles of layer-0 prisms, midside quadrature.
  const std::size_t F = n_tris;
  ws.n_basal_faces = F;
  ws.face_nodes = 3;
  ws.face_qps = 3;
  ws.basal_face_cell = pk::View<std::size_t, 1>("basal_face_cell", F);
  ws.basal_face_node = pk::View<std::size_t, 2>("basal_face_node", F, 3);
  ws.basal_wBF = pk::View<double, 3>("basal_wBF", F, 3, 3);
  ws.basal_beta = pk::View<double, 1>("basal_beta", F);

  pk::parallel_for("build_prism_basal", F, [&](int fi) {
    const auto f = static_cast<std::size_t>(fi);
    ws.basal_face_cell(f) = f * static_cast<std::size_t>(n_layers);
    double cx = 0.0, cy = 0.0;
    std::array<std::array<double, 3>, 3> xn{};
    for (int k = 0; k < 3; ++k) {
      const std::size_t col = tris.cell_node(f, k);
      ws.basal_face_node(f, k) = col * levels + 0;
      xn[k] = {tris.node_x(col), tris.node_y(col), node_z(col, 0)};
      cx += xn[k][0] / 3.0;
      cy += xn[k][1] / 3.0;
    }
    ws.basal_beta(f) = geom.basal_friction(cx, cy);
    // Surface measure of the (possibly sloped) bottom triangle.
    const double ux = xn[1][0] - xn[0][0], uy = xn[1][1] - xn[0][1],
                 uz = xn[1][2] - xn[0][2];
    const double vx = xn[2][0] - xn[0][0], vy = xn[2][1] - xn[0][1],
                 vz = xn[2][2] - xn[0][2];
    const double nx = uy * vz - uz * vy;
    const double ny = uz * vx - ux * vz;
    const double nz = ux * vy - uy * vx;
    const double area = 0.5 * std::sqrt(nx * nx + ny * ny + nz * nz);
    // Midside rule: each point weighted area/3; basis values at midsides.
    const double mids[3][2] = {{0.5, 0.0}, {0.5, 0.5}, {0.0, 0.5}};
    for (int k = 0; k < 3; ++k) {
      for (int q = 0; q < 3; ++q) {
        ws.basal_wBF(f, k, q) =
            Wedge6Basis::lambda(k, mids[q][0], mids[q][1]) * area / 3.0;
      }
    }
  });

  replicate_ghost_cells(ws);
  validate_workset(ws);
  return ws;
}

}  // namespace mali::fem
