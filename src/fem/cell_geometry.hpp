#pragma once
// Builds the GeometryWorkset from an extruded mesh: isoparametric Jacobians,
// weighted basis values/gradients at quadrature points, and the basal side
// set with its friction coefficients.

#include "fem/workset.hpp"
#include "mesh/extruded_mesh.hpp"
#include "mesh/ice_geometry.hpp"

namespace mali::fem {

/// Assembles all geometric FE arrays for every cell of the mesh.
/// Throws mali::Error if any element has a non-positive Jacobian.
[[nodiscard]] GeometryWorkset build_geometry(const mesh::ExtrudedMesh& mesh,
                                             const mesh::IceGeometry& geom);

}  // namespace mali::fem
