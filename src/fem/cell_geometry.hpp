#pragma once
// Builds the GeometryWorkset from an extruded mesh: isoparametric Jacobians,
// weighted basis values/gradients at quadrature points, and the basal side
// set with its friction coefficients.

#include "fem/workset.hpp"
#include "mesh/extruded_mesh.hpp"
#include "mesh/ice_geometry.hpp"

namespace mali::fem {

/// Assembles all geometric FE arrays for every cell of the mesh.
/// Throws mali::Error if any element has a non-positive Jacobian.
[[nodiscard]] GeometryWorkset build_geometry(const mesh::ExtrudedMesh& mesh,
                                             const mesh::IceGeometry& geom);

/// Rounds a cell count up to the padded allocation extent the batched SIMD
/// kernels assume: n + (pk::kSimdMaxWidth - 1) ghost rows.
[[nodiscard]] std::size_t padded_cells(std::size_t n_cells);

/// Fills the ghost rows [n_cells, n_cells_padded) of the per-cell arrays
/// with copies of the last real cell so full-width pack loads stay on finite
/// geometry.  Shared by the hex and prism builders.
void replicate_ghost_cells(GeometryWorkset& ws);

/// Consistency check of a built workset's basal side set: face_nodes /
/// face_qps must match the extents of the arrays actually built, every
/// basal_face_cell must be a real cell, and every basal_face_node must be a
/// node of its owning cell.  Throws mali::Error naming the offending face on
/// the first mismatch.  Called by the builders; exposed for tests.
void validate_workset(const GeometryWorkset& ws);

}  // namespace mali::fem
