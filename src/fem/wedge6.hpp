#pragma once
// Linear wedge (WEDGE6 / prism) basis: triangle barycentric functions in
// the horizontal crossed with a linear interval in the vertical.  This is
// MALI's native element — "low-order nodal prismatic finite elements on a
// 3D mesh extruded from a triangulation dual to the MPAS Voronoi mesh" —
// while the paper's specific Antarctica test uses the hexahedral variant.
//
// Reference domain: (xi, eta) in the unit triangle (xi, eta >= 0,
// xi + eta <= 1), zeta in [-1, 1].  Nodes 0..2 bottom CCW, 3..5 top.

#include <array>
#include <cstddef>
#include <vector>

namespace mali::fem {

struct Wedge6Basis {
  static constexpr int num_nodes = 6;

  /// Barycentric horizontal part lambda_{k mod 3}.
  static constexpr double lambda(int k3, double xi, double eta) noexcept {
    return k3 == 0 ? 1.0 - xi - eta : (k3 == 1 ? xi : eta);
  }

  static constexpr double value(int k, double xi, double eta,
                                double zeta) noexcept {
    const double vert = k < 3 ? 0.5 * (1.0 - zeta) : 0.5 * (1.0 + zeta);
    return lambda(k % 3, xi, eta) * vert;
  }

  static constexpr std::array<double, 3> gradient(int k, double xi, double eta,
                                                  double zeta) noexcept {
    const int k3 = k % 3;
    const double vert = k < 3 ? 0.5 * (1.0 - zeta) : 0.5 * (1.0 + zeta);
    const double dvert = k < 3 ? -0.5 : 0.5;
    const double dl_dxi = k3 == 0 ? -1.0 : (k3 == 1 ? 1.0 : 0.0);
    const double dl_deta = k3 == 0 ? -1.0 : (k3 == 2 ? 1.0 : 0.0);
    return {dl_dxi * vert, dl_deta * vert, lambda(k3, xi, eta) * dvert};
  }
};

struct WedgeQuadraturePoint {
  double xi, eta, zeta, weight;
};

/// Degree-2 exact rule: 3-point triangle midside rule x 2-point Gauss in
/// zeta = 6 quadrature points (numQPs = 6 for prisms, vs 8 for hexes).
inline std::vector<WedgeQuadraturePoint> gauss_wedge() {
  // Midside triangle rule, weights sum to the triangle area 1/2.
  constexpr double w_tri = 1.0 / 6.0;
  const double tri[3][2] = {{0.5, 0.0}, {0.5, 0.5}, {0.0, 0.5}};
  const double gz = 1.0 / 1.7320508075688772;  // 1/sqrt(3)
  std::vector<WedgeQuadraturePoint> qps;
  qps.reserve(6);
  for (const double z : {-gz, gz}) {
    for (const auto& t : tri) {
      qps.push_back({t[0], t[1], z, w_tri * 1.0});
    }
  }
  return qps;
}

}  // namespace mali::fem
