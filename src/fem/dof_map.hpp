#pragma once
// DOF management for the 2-component velocity solve: node n carries global
// dofs (2n, 2n+1) for (u, v); lateral-margin nodes are homogeneous
// Dirichlet.  Also builds the Jacobian's CRS sparsity from node adjacency.

#include <cstddef>
#include <vector>

#include "mesh/extruded_mesh.hpp"

namespace mali::fem {

class DofMap {
 public:
  static constexpr int dofs_per_node = 2;

  /// `all_boundaries` pins every mesh-boundary node (lateral margin, bed,
  /// surface) instead of only the lateral margin — used by the
  /// manufactured-solution verification where the exact field is imposed
  /// on the whole boundary.
  explicit DofMap(const mesh::ExtrudedMesh& mesh, bool all_boundaries = false);

  [[nodiscard]] std::size_t n_nodes() const noexcept { return n_nodes_; }
  [[nodiscard]] std::size_t n_dofs() const noexcept {
    return n_nodes_ * dofs_per_node;
  }

  [[nodiscard]] static std::size_t dof(std::size_t node, int comp) noexcept {
    return node * dofs_per_node + static_cast<std::size_t>(comp);
  }

  [[nodiscard]] bool is_dirichlet_dof(std::size_t d) const noexcept {
    return dirichlet_[d];
  }
  [[nodiscard]] const std::vector<std::size_t>& dirichlet_dofs()
      const noexcept {
    return dirichlet_list_;
  }

  /// CRS sparsity of the velocity Jacobian: row_ptr/cols over dofs.
  /// Built from node-to-node adjacency through shared cells.
  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<std::size_t>& cols() const noexcept {
    return cols_;
  }

 private:
  std::size_t n_nodes_;
  std::vector<bool> dirichlet_;
  std::vector<std::size_t> dirichlet_list_;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> cols_;
};

}  // namespace mali::fem
