#pragma once
// Workset: the bundle of per-cell finite-element arrays the physics kernels
// operate on.  Shapes follow Albany's field layout — leftmost index is the
// cell, so LayoutLeft makes the cell index stride-1 (GPU-coalesced):
//
//   coords  (C, N, 3)   nodal coordinates
//   wBF     (C, N, Q)   basis value * detJ * quadrature weight
//   wGradBF (C, N, Q, 3) physical basis gradient * detJ * weight
//   gradBF  (C, N, Q, 3) physical basis gradient (unweighted)
//   detJ    (C, Q)
//
// plus the basal side-set arrays used by the friction evaluator.

#include <cstddef>
#include <vector>

#include "portability/view.hpp"

namespace mali::fem {

struct GeometryWorkset {
  std::size_t n_cells = 0;
  int num_nodes = 8;
  int num_qps = 8;

  pk::View<std::size_t, 2> cell_nodes;  ///< (C, N) global node ids
  pk::View<double, 3> coords;
  pk::View<double, 3> wBF;
  pk::View<double, 4> wGradBF;
  pk::View<double, 4> gradBF;
  pk::View<double, 2> detJ;

  // ---- basal side set (bottom faces of layer-0 cells) ----
  std::size_t n_basal_faces = 0;
  int face_nodes = 4;
  int face_qps = 4;
  pk::View<std::size_t, 1> basal_face_cell;   ///< (F) owning cell id
  pk::View<std::size_t, 2> basal_face_node;   ///< (F, 4) global node ids
  pk::View<double, 3> basal_wBF;              ///< (F, 4, Qf)
  pk::View<double, 1> basal_beta;             ///< (F) friction coefficient
};

}  // namespace mali::fem
