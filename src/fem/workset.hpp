#pragma once
// Workset: the bundle of per-cell finite-element arrays the physics kernels
// operate on.  Shapes follow Albany's field layout — leftmost index is the
// cell, so LayoutLeft makes the cell index stride-1 (GPU-coalesced):
//
//   coords  (C, N, 3)   nodal coordinates
//   wBF     (C, N, Q)   basis value * detJ * quadrature weight
//   wGradBF (C, N, Q, 3) physical basis gradient * detJ * weight
//   gradBF  (C, N, Q, 3) physical basis gradient (unweighted)
//   detJ    (C, Q)
//
// plus the basal side-set arrays used by the friction evaluator.

#include <cstddef>
#include <vector>

#include "portability/view.hpp"

namespace mali::fem {

struct GeometryWorkset {
  std::size_t n_cells = 0;
  int num_nodes = 8;
  int num_qps = 8;

  /// Allocated cell extent of the per-cell views below.  The builders pad the
  /// cell axis to n_cells + (pk::kSimdMaxWidth - 1) ghost rows, replicating
  /// the last real cell, so width-W pack loads issued by the batched kernels
  /// may read a full W rows at any batch start without running off the
  /// allocation (LayoutLeft makes the W cells contiguous).  Ghost rows hold
  /// valid finite geometry but are never scattered; n_cells stays the
  /// authoritative element count.
  std::size_t n_cells_padded = 0;

  pk::View<std::size_t, 2> cell_nodes;  ///< (C, N) global node ids
  pk::View<double, 3> coords;
  pk::View<double, 3> wBF;
  pk::View<double, 4> wGradBF;
  pk::View<double, 4> gradBF;
  pk::View<double, 2> detJ;

  // ---- basal side set (bottom faces of layer-0 cells) ----
  // face_nodes / face_qps describe the arrays actually built (4/Qf for the
  // hex path, 3/3 for prisms); validate_workset checks them against the view
  // extents and the cell connectivity instead of trusting the defaults.
  std::size_t n_basal_faces = 0;
  int face_nodes = 4;
  int face_qps = 4;
  pk::View<std::size_t, 1> basal_face_cell;   ///< (F) owning cell id
  pk::View<std::size_t, 2> basal_face_node;   ///< (F, face_nodes) node ids
  pk::View<double, 3> basal_wBF;              ///< (F, face_nodes, Qf)
  pk::View<double, 1> basal_beta;             ///< (F) friction coefficient
};

}  // namespace mali::fem
