#pragma once
// Evaluation types, following Albany's template-evaluation design: the same
// kernel source is instantiated once with a plain double scalar (the
// Residual evaluation) and once with a Sacado-style SFad scalar carrying 16
// derivative components (the Jacobian evaluation — 8 nodes x 2 velocity
// components per hexahedron, fixed at compile time exactly as the paper
// describes).

#include "ad/scalar_traits.hpp"
#include "ad/sfad.hpp"

namespace mali::physics {

/// Number of element-local derivative components for the Jacobian.
inline constexpr int kNumLocalDofs = 16;  // 8 nodes x 2 components

struct ResidualEval {
  using ScalarT = double;
  using MeshScalarT = double;
};

struct JacobianEval {
  using ScalarT = ad::SFad<double, kNumLocalDofs>;
  using MeshScalarT = double;
};

}  // namespace mali::physics
