#pragma once
// Field evaluators upstream/downstream of the StokesFOResid kernel,
// mirroring Albany's evaluator chain:
//
//   GatherSolution  -> UNodal(C,N,2)       (seeds SFad for the Jacobian)
//   VelocityGradient-> Ugrad(C,Q,2,3)
//   ViscosityFO     -> muLandIce(C,Q)      (Glen's law)
//   [StokesFOResid  -> Residual(C,N,2)]    (see stokes_fo_resid.hpp)
//   BasalFrictionResid adds the basal sliding term to Residual
//   ScatterResidual -> global F (and CRS Jacobian from SFad derivatives)

#include <cmath>
#include <cstddef>

#include "ad/scalar_traits.hpp"
#include "fem/workset.hpp"
#include "physics/flow_law.hpp"
#include "portability/common.hpp"
#include "portability/view.hpp"

namespace mali::physics {

/// Gathers the global solution into element-local nodal values, seeding
/// derivative components for Fad scalar types (node-major: dof = 2*node+c).
template <class ScalarT>
struct GatherSolution {
  pk::View<double, 1> U;                ///< global solution (2 dofs/node)
  pk::View<std::size_t, 2> cell_nodes;  ///< (C, N)
  pk::View<ScalarT, 3> UNodal;          ///< (C, N, 2)
  unsigned int numNodes = 8;

  MALI_KERNEL_FUNCTION void operator()(const int& cell) const {
    for (unsigned int node = 0; node < numNodes; ++node) {
      const std::size_t gnode = cell_nodes(cell, node);
      for (int comp = 0; comp < 2; ++comp) {
        const double val = U(2 * gnode + static_cast<std::size_t>(comp));
        if constexpr (ad::is_fad_v<ScalarT>) {
          UNodal(cell, node, comp) =
              ScalarT(val, static_cast<int>(2 * node) + comp);
        } else {
          UNodal(cell, node, comp) = val;
        }
      }
    }
  }
};

/// Ugrad(c,q,comp,d) = sum_n UNodal(c,n,comp) * gradBF(c,n,q,d).
/// Templated on the view template so the gpusim chain analysis can trace it.
template <class ScalarT, template <class, std::size_t> class ViewT = pk::View>
struct VelocityGradient {
  ViewT<ScalarT, 3> UNodal;   ///< (C, N, 2)
  ViewT<double, 4> gradBF;    ///< (C, N, Q, 3)
  ViewT<ScalarT, 4> Ugrad;    ///< (C, Q, 2, 3)
  unsigned int numNodes = 8;
  unsigned int numQPs = 8;

  MALI_KERNEL_FUNCTION void operator()(const int& cell) const {
    for (unsigned int qp = 0; qp < numQPs; ++qp) {
      for (int comp = 0; comp < 2; ++comp) {
        for (int d = 0; d < 3; ++d) {
          ScalarT g(0.0);
          for (unsigned int node = 0; node < numNodes; ++node) {
            g += UNodal(cell, node, comp) * gradBF(cell, node, qp, d);
          }
          Ugrad(cell, qp, comp, d) = g;
        }
      }
    }
  }
};

/// Glen's-law effective viscosity:
///   mu = 1/2 A^{-1/n} (eps_e^2 + eps_reg^2)^{(1-n)/(2n)}
/// with the Blatter–Pattyn effective strain rate
///   eps_e^2 = u_x^2 + v_y^2 + u_x v_y + 1/4 (u_y + v_x)^2
///           + 1/4 u_z^2 + 1/4 v_z^2.
/// The flow-rate factor A is either the uniform `glen_A` or, when the
/// `flow_factor` view is allocated, a per-quadrature-point field (the
/// temperature-dependent Paterson–Budd factor).
template <class ScalarT, template <class, std::size_t> class ViewT = pk::View>
struct ViscosityFO {
  ViewT<ScalarT, 4> Ugrad;          ///< (C, Q, 2, 3)
  ViewT<ScalarT, 2> muLandIce;      ///< (C, Q)
  pk::View<double, 2> flow_factor;  ///< (C, Q) optional A(T) field
  double glen_A = 1.0e-16;
  double glen_n = 3.0;
  double eps_reg2 = 1.0e-10;
  unsigned int numQPs = 8;
  /// > 0: bypass Glen's law with a constant viscosity (linear operator,
  /// used by the manufactured-solution verification).
  double constant_mu = 0.0;

  MALI_KERNEL_FUNCTION void operator()(const int& cell) const {
    using std::pow;
    if (constant_mu > 0.0) {
      for (unsigned int qp = 0; qp < numQPs; ++qp) {
        muLandIce(cell, qp) = ScalarT(constant_mu);
      }
      return;
    }
    const bool thermal = flow_factor.allocated();
    const double coeff0 = 0.5 * pow(glen_A, -1.0 / glen_n);
    const double expo = (1.0 - glen_n) / (2.0 * glen_n);
    for (unsigned int qp = 0; qp < numQPs; ++qp) {
      const double coeff =
          thermal ? 0.5 * pow(flow_factor(cell, qp), -1.0 / glen_n) : coeff0;
      const ScalarT ux = Ugrad(cell, qp, 0, 0);
      const ScalarT uy = Ugrad(cell, qp, 0, 1);
      const ScalarT uz = Ugrad(cell, qp, 0, 2);
      const ScalarT vx = Ugrad(cell, qp, 1, 0);
      const ScalarT vy = Ugrad(cell, qp, 1, 1);
      const ScalarT vz = Ugrad(cell, qp, 1, 2);
      const ScalarT eps2 = ux * ux + vy * vy + ux * vy +
                           0.25 * ((uy + vx) * (uy + vx) + uz * uz + vz * vz);
      muLandIce(cell, qp) = coeff * pow(eps2 + eps_reg2, expo);
    }
  }
};

/// Copies the (passive) driving-stress body force into the ScalarT-typed
/// field the residual kernel consumes: f = rho g grad(s) at each qp.
template <class ScalarT, template <class, std::size_t> class ViewT = pk::View>
struct BodyForceFO {
  ViewT<double, 3> force_passive;  ///< (C, Q, 2) precomputed rho*g*grad(s)
  ViewT<ScalarT, 3> force;         ///< (C, Q, 2)
  unsigned int numQPs = 8;

  MALI_KERNEL_FUNCTION void operator()(const int& cell) const {
    for (unsigned int qp = 0; qp < numQPs; ++qp) {
      force(cell, qp, 0) = ScalarT(force_passive(cell, qp, 0));
      force(cell, qp, 1) = ScalarT(force_passive(cell, qp, 1));
    }
  }
};

/// Adds the basal sliding term  int_basal tau_b(u) . phi  to the residual
/// of layer-0 cells.  Face-local node k is cell-local node k (bottom face).
/// The sliding law is configurable: linear (the paper's test) or Weertman
/// power law, with the friction factor differentiated through ScalarT.
template <class ScalarT>
struct BasalFrictionResid {
  pk::View<std::size_t, 1> basal_face_cell;  ///< (F)
  pk::View<double, 3> basal_wBF;             ///< (F, 4, Qf)
  pk::View<double, 1> basal_beta;            ///< (F)
  pk::View<ScalarT, 3> UNodal;               ///< (C, N, 2)
  pk::View<ScalarT, 3> Residual;             ///< (C, N, 2)
  /// Reference QUAD4 basis values at the face quadrature points (k, q).
  pk::View<double, 2> face_BF;
  unsigned int faceQPs = 4;
  SlidingConfig sliding{};

  MALI_KERNEL_FUNCTION void operator()(const int& face) const {
    const std::size_t cell = basal_face_cell(face);
    for (unsigned int qp = 0; qp < faceQPs; ++qp) {
      ScalarT uq(0.0), vq(0.0);
      for (int k = 0; k < 4; ++k) {
        uq += UNodal(cell, k, 0) * face_BF(k, qp);
        vq += UNodal(cell, k, 1) * face_BF(k, qp);
      }
      const ScalarT friction =
          friction_factor(sliding, basal_beta(face), uq, vq);
      for (int k = 0; k < 4; ++k) {
        const double w = basal_wBF(face, k, qp);
        Residual(cell, k, 0) += friction * uq * w;
        Residual(cell, k, 1) += friction * vq * w;
      }
    }
  }
};

}  // namespace mali::physics
