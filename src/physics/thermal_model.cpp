#include "physics/thermal_model.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "fem/dof_map.hpp"
#include "portability/parallel.hpp"

namespace mali::physics {

ThermalModel::ThermalModel(const mesh::ExtrudedMesh& mesh,
                           const mesh::IceGeometry& geom,
                           TemperatureColumnConfig cfg)
    : mesh_(mesh),
      geom_(geom),
      cfg_(cfg),
      n_cols_(mesh.base().n_nodes()),
      levels_(mesh.levels()) {
  solvers_.reserve(n_cols_);
  T_.resize(n_cols_);
  for (std::size_t col = 0; col < n_cols_; ++col) {
    std::vector<double> z(levels_);
    for (std::size_t lev = 0; lev < levels_; ++lev) {
      z[lev] = mesh_.node_z(mesh_.node_id(col, lev));
    }
    solvers_.emplace_back(std::move(z), cfg_);
    // Initialize from the geometry's analytic temperature field.
    T_[col].resize(levels_);
    for (std::size_t lev = 0; lev < levels_; ++lev) {
      const double sigma = static_cast<double>(lev) /
                           static_cast<double>(levels_ - 1);
      T_[col][lev] = geom_.temperature(mesh_.base().node_x(col),
                                       mesh_.base().node_y(col), sigma);
    }
  }
}

std::size_t ThermalModel::nearest_column(double x, double y) const {
  // Columns sit on the base lattice: a linear scan is only needed once per
  // unique target in practice, but keep it robust for arbitrary points.
  std::size_t best = 0;
  double best_d = 1e300;
  for (std::size_t col = 0; col < n_cols_; ++col) {
    const double d = std::hypot(mesh_.base().node_x(col) - x,
                                mesh_.base().node_y(col) - y);
    if (d < best_d) {
      best_d = d;
      best = col;
    }
  }
  return best;
}

double ThermalModel::temperature_at(double x, double y, double sigma) const {
  const std::size_t col = nearest_column(x, y);
  const double pos =
      std::clamp(sigma, 0.0, 1.0) * static_cast<double>(levels_ - 1);
  const auto lev = std::min(levels_ - 2, static_cast<std::size_t>(pos));
  const double frac = pos - static_cast<double>(lev);
  return (1.0 - frac) * T_[col][lev] + frac * T_[col][lev + 1];
}

std::vector<std::vector<double>> ThermalModel::strain_heating(
    const std::vector<double>& U, const PhysicalConstants& constants) const {
  MALI_CHECK(U.size() == 2 * mesh_.n_nodes());
  std::vector<std::vector<double>> q(n_cols_,
                                     std::vector<double>(levels_, 0.0));
  const double A = constants.glen_A;
  const double n = constants.glen_n;
  pk::parallel_for("strain_heating", n_cols_, [&](int ci) {
    const auto col = static_cast<std::size_t>(ci);
    for (std::size_t lev = 0; lev + 1 < levels_; ++lev) {
      const std::size_t n0 = mesh_.node_id(col, lev);
      const std::size_t n1 = mesh_.node_id(col, lev + 1);
      const double dz =
          std::max(1.0, mesh_.node_z(n1) - mesh_.node_z(n0));
      const double dudz = (U[2 * n1] - U[2 * n0]) / dz;
      const double dvdz = (U[2 * n1 + 1] - U[2 * n0 + 1]) / dz;
      const double eps = std::max(0.5 * std::hypot(dudz, dvdz), 1e-7);
      const double mu =
          0.5 * std::pow(A, -1.0 / n) * std::pow(eps, (1.0 - n) / n);
      q[col][lev] += 2.0 * mu * eps * eps;  // Pa/yr = J/(m^3 yr)
    }
  });
  return q;
}

ColumnForcing ThermalModel::forcing_for(
    std::size_t col, const std::vector<std::vector<double>>& heating) const {
  ColumnForcing f;
  f.surface_temperature = geom_.temperature(mesh_.base().node_x(col),
                                            mesh_.base().node_y(col), 1.0);
  if (!heating.empty()) f.strain_heating = heating[col];
  return f;
}

void ThermalModel::solve_steady(
    const std::vector<std::vector<double>>& heating) {
  MALI_CHECK(heating.empty() || heating.size() == n_cols_);
  pk::parallel_for("thermal_steady", n_cols_, [&](int ci) {
    const auto col = static_cast<std::size_t>(ci);
    T_[col] = solvers_[col].steady_state(forcing_for(col, heating));
  });
}

void ThermalModel::step(double dt,
                        const std::vector<std::vector<double>>& heating) {
  MALI_CHECK(heating.empty() || heating.size() == n_cols_);
  pk::parallel_for("thermal_step", n_cols_, [&](int ci) {
    const auto col = static_cast<std::size_t>(ci);
    solvers_[col].step(T_[col], forcing_for(col, heating), dt);
  });
}

double ThermalModel::max_bed_temperature() const {
  double m = 0.0;
  for (const auto& col : T_) m = std::max(m, col.front());
  return m;
}

std::vector<double> ThermalModel::temperatures_flat() const {
  std::vector<double> flat(n_cols_ * levels_);
  for (std::size_t col = 0; col < n_cols_; ++col) {
    for (std::size_t lev = 0; lev < levels_; ++lev) {
      flat[col * levels_ + lev] = T_[col][lev];
    }
  }
  return flat;
}

void ThermalModel::set_temperatures_flat(const std::vector<double>& flat) {
  MALI_CHECK_MSG(flat.size() == n_cols_ * levels_,
                 "ThermalModel::set_temperatures_flat: expected " +
                     std::to_string(n_cols_ * levels_) + " values, got " +
                     std::to_string(flat.size()));
  for (std::size_t col = 0; col < n_cols_; ++col) {
    for (std::size_t lev = 0; lev < levels_; ++lev) {
      T_[col][lev] = flat[col * levels_ + lev];
    }
  }
}

}  // namespace mali::physics
