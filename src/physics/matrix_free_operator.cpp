#include "physics/matrix_free_operator.hpp"

#include "physics/stokes_fo_problem.hpp"
#include "portability/common.hpp"

namespace mali::physics {

MatrixFreeStokesOperator::MatrixFreeStokesOperator(StokesFOProblem& problem)
    : problem_(&problem) {}

void MatrixFreeStokesOperator::linearize(const std::vector<double>& U) {
  MALI_CHECK(U.size() == problem_->n_dofs());
  U_ = U;
  blocks_ = problem_->jacobian_block_diagonal(U_);
  linearized_ = true;
}

std::size_t MatrixFreeStokesOperator::rows() const {
  return problem_->n_dofs();
}

std::size_t MatrixFreeStokesOperator::cols() const {
  return problem_->n_dofs();
}

void MatrixFreeStokesOperator::apply(const std::vector<double>& x,
                                     std::vector<double>& y) const {
  MALI_CHECK_MSG(linearized_, "MatrixFreeStokesOperator: call linearize()");
  MALI_CHECK_MSG(&x != &y, "MatrixFreeStokesOperator::apply: aliased in/out");
  MALI_CHECK(x.size() == cols());
  problem_->apply_jacobian(U_, x, y);
}

bool MatrixFreeStokesOperator::diagonal(std::vector<double>& d) const {
  MALI_CHECK_MSG(linearized_, "MatrixFreeStokesOperator: call linearize()");
  const std::size_t n = rows();
  d.resize(n);
  // dof = 2*node + comp; its diagonal sits at block entry (comp, comp).
  for (std::size_t dof = 0; dof < n; ++dof) {
    const std::size_t node = dof / 2;
    const std::size_t comp = dof % 2;
    d[dof] = blocks_[node * 4 + comp * 2 + comp];
  }
  return true;
}

bool MatrixFreeStokesOperator::block_diagonal(
    int bs, std::vector<double>& blocks) const {
  MALI_CHECK_MSG(linearized_, "MatrixFreeStokesOperator: call linearize()");
  if (bs != 2) return false;  // the natural (u, v) per-node blocks only
  blocks = blocks_;
  return true;
}

}  // namespace mali::physics
