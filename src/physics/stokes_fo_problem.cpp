#include "physics/stokes_fo_problem.hpp"

#include <cmath>

#include "ad/scalar_traits.hpp"
#include "fem/cell_geometry.hpp"
#include "fem/hex8.hpp"
#include "fem/quadrature.hpp"
#include "physics/evaluators.hpp"
#include "physics/fused_chain_batched.hpp"
#include "physics/matrix_free_operator.hpp"
#include "physics/stokes_fo_resid.hpp"
#include "physics/stokes_jacobian_apply.hpp"
#include "physics/stokes_jacobian_apply_batched.hpp"
#include "portability/parallel.hpp"
#include "portability/simd.hpp"

namespace mali::physics {

const char* to_string(KernelVariant v) {
  switch (v) {
    case KernelVariant::kBaseline:
      return "baseline";
    case KernelVariant::kOptimized:
      return "optimized";
    case KernelVariant::kLoopOptOnly:
      return "loop-opt-only";
    case KernelVariant::kFusedOnly:
      return "fusion-only";
    case KernelVariant::kLocalAccumOnly:
      return "local-accum-only";
  }
  return "unknown";
}

int simd_width_from_string(const std::string& s) {
  if (s == "auto") return 0;
  if (s == "off") return 1;
  int w = -1;
  if (s == "1" || s == "2" || s == "4" || s == "8") w = s[0] - '0';
  MALI_CHECK_MSG(w > 0 && pk::simd_width_valid(w),
                 "--simd expects auto, off, or a width in {1, 2, 4, 8}; got '" +
                     s + "'");
  return w;
}

int StokesFOProblem::resolved_simd_width() const noexcept {
  return cfg_.simd_width == 0 ? pk::kSimdNativeWidth : cfg_.simd_width;
}

template <class ScalarT>
void FieldSet<ScalarT>::allocate(std::size_t C, int N, int Q) {
  // The cell axis is padded like the geometry arrays (fem::padded_cells) so
  // the batched kernels may run every batch — including the ragged tail —
  // at full pack width; ghost rows are compute scratch, never scattered.
  const std::size_t Cp = fem::padded_cells(C);
  if (allocated && Residual.extent(0) >= Cp) return;  // big enough: reuse
  UNodal = pk::View<ScalarT, 3>("UNodal", Cp, N, 2);
  Ugrad = pk::View<ScalarT, 4>("Ugrad", Cp, Q, 2, 3);
  mu = pk::View<ScalarT, 2>("muLandIce", Cp, Q);
  force = pk::View<ScalarT, 3>("force", Cp, Q, 2);
  Residual = pk::View<ScalarT, 3>("Residual", Cp, N, 2);
  allocated = true;
}

template struct FieldSet<double>;
template struct FieldSet<JacobianEval::ScalarT>;

StokesFOProblem::StokesFOProblem(StokesFOConfig cfg)
    : cfg_(cfg), geom_(cfg.geometry) {
  base_ = std::make_shared<mesh::QuadGrid>(geom_,
                                           mesh::QuadGridConfig{cfg_.dx_m});
  mesh_ = std::make_unique<mesh::ExtrudedMesh>(
      base_, geom_, mesh::ExtrudedMeshConfig{cfg_.n_layers});
  dof_map_ = std::make_unique<fem::DofMap>(*mesh_, cfg_.mms.enabled);
  ws_ = fem::build_geometry(*mesh_, geom_);

  // Driving-stress body force at quadrature points: f = rho g grad(s),
  // evaluated at the qp's horizontal position via the trilinear map.
  const std::size_t C = ws_.n_cells;
  const std::size_t Cp = ws_.n_cells_padded;
  const int N = ws_.num_nodes;
  const int Q = ws_.num_qps;
  // Padded like the geometry arrays; the zero-initialized ghost rows are
  // loaded (and discarded) by full-width pack loads of the batched chain.
  force_passive_ = pk::View<double, 3>("force_passive", Cp, Q, 2);
  const auto qps = fem::gauss_hex(2);
  const double rho_g = cfg_.constants.rho_g();
  if (cfg_.mms.enabled) {
    double fu = 0.0, fv = 0.0;
    mms_forcing(cfg_.mms, fu, fv);
    pk::parallel_for("mms_force", C, [&](int ci) {
      const auto c = static_cast<std::size_t>(ci);
      for (int q = 0; q < Q; ++q) {
        force_passive_(c, q, 0) = fu;
        force_passive_(c, q, 1) = fv;
      }
    });
  } else {
    pk::parallel_for("body_force", C, [&](int ci) {
      const auto c = static_cast<std::size_t>(ci);
      for (int q = 0; q < Q; ++q) {
        double x = 0.0, y = 0.0;
        for (int k = 0; k < N; ++k) {
          const double bf =
              fem::Hex8Basis::value(k, qps[static_cast<std::size_t>(q)].xi,
                                    qps[static_cast<std::size_t>(q)].eta,
                                    qps[static_cast<std::size_t>(q)].zeta);
          x += bf * ws_.coords(c, k, 0);
          y += bf * ws_.coords(c, k, 1);
        }
        double dsdx = 0.0, dsdy = 0.0;
        geom_.surface_gradient(x, y, dsdx, dsdy);
        force_passive_(c, q, 0) = rho_g * dsdx;
        force_passive_(c, q, 1) = rho_g * dsdy;
      }
    });
  }

  // Imposed Dirichlet values: zero except in MMS mode, where boundary nodes
  // carry the exact manufactured field.
  dirichlet_values_.assign(n_dofs(), 0.0);
  if (cfg_.mms.enabled) {
    const auto exact = mms_exact();
    for (std::size_t d : dof_map_->dirichlet_dofs()) {
      dirichlet_values_[d] = exact[d];
    }
  }

  // Temperature-dependent flow factor at quadrature points (thermal mode):
  // A = paterson_budd_A(T(x, y, sigma)) with sigma from the qp elevation.
  if (cfg_.thermal_viscosity) {
    flow_factor_ = pk::View<double, 2>("flow_factor", Cp, Q);
    pk::parallel_for("flow_factor", C, [&](int ci) {
      const auto c = static_cast<std::size_t>(ci);
      for (int q = 0; q < Q; ++q) {
        double x = 0.0, y = 0.0, z = 0.0;
        for (int k = 0; k < N; ++k) {
          const auto& qp = qps[static_cast<std::size_t>(q)];
          const double bf = fem::Hex8Basis::value(k, qp.xi, qp.eta, qp.zeta);
          x += bf * ws_.coords(c, k, 0);
          y += bf * ws_.coords(c, k, 1);
          z += bf * ws_.coords(c, k, 2);
        }
        const double h =
            std::max(geom_.thickness(x, y), geom_.config().min_thickness_m);
        const double sigma =
            std::clamp((z - geom_.bed(x, y)) / h, 0.0, 1.0);
        flow_factor_(c, q) = paterson_budd_A(geom_.temperature(x, y, sigma));
      }
    });
  }

  // Reference HEX8 values/gradients + quadrature weights for the kernels
  // that rebuild the cell geometry in registers (matrix-free tangent and
  // the batched fused chains).
  ref_grad_ = pk::View<double, 3>("ref_grad", Q, N, 3);
  ref_val_ = pk::View<double, 2>("ref_val", Q, N);
  qp_weights_ = pk::View<double, 1>("qp_weights", Q);
  for (int q = 0; q < Q; ++q) {
    const auto& qp = qps[static_cast<std::size_t>(q)];
    qp_weights_(q) = qp.weight;
    for (int k = 0; k < N; ++k) {
      ref_val_(q, k) = fem::Hex8Basis::value(k, qp.xi, qp.eta, qp.zeta);
      const auto grad = fem::Hex8Basis::gradient(k, qp.xi, qp.eta, qp.zeta);
      for (int d = 0; d < 3; ++d) ref_grad_(q, k, d) = grad[d];
    }
  }

  // Reference QUAD4 basis values at the face quadrature points.
  const auto fqps = fem::gauss_quad(2);
  face_BF_ = pk::View<double, 2>("face_BF", 4, fqps.size());
  for (int k = 0; k < 4; ++k) {
    for (std::size_t q = 0; q < fqps.size(); ++q) {
      face_BF_(k, q) = fem::Quad4Basis::value(k, fqps[q].xi, fqps[q].eta);
    }
  }

  // Workset ranges: chunk the cells and attach each basal face to the
  // workset owning its cell, with cell ids localized to the chunk.
  const std::size_t ws_size =
      cfg_.workset_size == 0 ? C : std::min(cfg_.workset_size, C);
  const int Qf = ws_.face_qps;
  for (std::size_t c0 = 0; c0 < C; c0 += ws_size) {
    WorksetRange range;
    range.c0 = c0;
    range.count = std::min(ws_size, C - c0);
    std::vector<std::size_t> faces;
    for (std::size_t fidx = 0; fidx < ws_.n_basal_faces; ++fidx) {
      const std::size_t cell = ws_.basal_face_cell(fidx);
      if (cell >= c0 && cell < c0 + range.count) faces.push_back(fidx);
    }
    const std::size_t Fw = faces.size();
    range.face_cell_local = pk::View<std::size_t, 1>("ws_face_cell", Fw);
    range.face_wBF = pk::View<double, 3>("ws_face_wBF", Fw, 4, Qf);
    range.face_beta = pk::View<double, 1>("ws_face_beta", Fw);
    for (std::size_t i = 0; i < Fw; ++i) {
      const std::size_t fidx = faces[i];
      range.face_cell_local(i) = ws_.basal_face_cell(fidx) - c0;
      range.face_beta(i) = ws_.basal_beta(fidx);
      for (int k = 0; k < 4; ++k) {
        for (int q = 0; q < Qf; ++q) {
          range.face_wBF(i, k, q) = ws_.basal_wBF(fidx, k, q);
        }
      }
    }
    // Node-sharing coloring of this chunk: cells of one color touch disjoint
    // global rows, so the colored scatter can add without atomics or locks.
    // The lattice parity coloring gives the optimal <= 8 colors on the
    // structured extrusion (greedy first-fit would exceed the node-degree
    // bound across ice-mask holes).
    range.coloring = mesh::lattice_color_cells(*mesh_, c0, range.count);
    workset_ranges_.push_back(std::move(range));
  }

  // Pristine basal friction field, kept so set_basal_friction_scale is a
  // pure function of the scale (beta = scale * beta0, never a chain of
  // in-place rescales that would drift bitwise with call order).
  beta0_global_.resize(ws_.n_basal_faces);
  for (std::size_t f = 0; f < ws_.n_basal_faces; ++f) {
    beta0_global_[f] = ws_.basal_beta(f);
  }
}

void StokesFOProblem::set_basal_friction_scale(double scale) {
  MALI_CHECK_MSG(std::isfinite(scale) && scale > 0.0,
                 "basal friction scale must be positive and finite");
  basal_friction_scale_ = scale;
  // Rewrite both the workset source field (the dist subdomains stage from
  // ws_) and the already-staged per-workset views from the pristine copy.
  for (std::size_t f = 0; f < beta0_global_.size(); ++f) {
    ws_.basal_beta(f) = beta0_global_[f] * scale;
  }
  // The staged views were copied face-by-face at construction in global
  // face order restricted to each range, so re-walk the same selection.
  for (auto& range : workset_ranges_) {
    std::size_t i = 0;
    for (std::size_t fidx = 0; fidx < ws_.n_basal_faces; ++fidx) {
      const std::size_t cell = ws_.basal_face_cell(fidx);
      if (cell >= range.c0 && cell < range.c0 + range.count) {
        range.face_beta(i++) = beta0_global_[fidx] * scale;
      }
    }
    MALI_CHECK(i == range.face_beta.size());
  }
}

linalg::CrsMatrix StokesFOProblem::create_matrix() const {
  return linalg::CrsMatrix(dof_map_->row_ptr(), dof_map_->cols());
}

linalg::ExtrusionInfo StokesFOProblem::extrusion_info() const {
  linalg::ExtrusionInfo info;
  info.n_nodes = mesh_->n_nodes();
  info.levels = mesh_->levels();
  info.dofs_per_node = fem::DofMap::dofs_per_node;
  const std::size_t n_cols = base_->n_nodes();
  info.column_x.resize(n_cols);
  info.column_y.resize(n_cols);
  for (std::size_t c = 0; c < n_cols; ++c) {
    info.column_x[c] = base_->node_x(c);
    info.column_y[c] = base_->node_y(c);
  }
  info.dx = base_->dx();
  return info;
}

template <class ScalarT>
FieldSet<ScalarT>& StokesFOProblem::fields() {
  if constexpr (ad::is_fad_v<ScalarT>) {
    return jac_fields_;
  } else {
    return res_fields_;
  }
}

template <class EvalT>
FieldSet<typename EvalT::ScalarT>& StokesFOProblem::evaluate_fields(
    const std::vector<double>& U) {
  using ScalarT = typename EvalT::ScalarT;
  MALI_CHECK(U.size() == n_dofs());
  auto& f = fields<ScalarT>();
  f.allocate(ws_.n_cells, ws_.num_nodes, ws_.num_qps);

  pk::View<double, 1> Uview("U", U.size());
  std::copy(U.begin(), U.end(), Uview.data());

  GatherSolution<ScalarT> gather{Uview, ws_.cell_nodes, f.UNodal,
                                 static_cast<unsigned>(ws_.num_nodes)};
  pk::parallel_for("gather", ws_.n_cells, gather);

  VelocityGradient<ScalarT> vgrad{f.UNodal, ws_.gradBF, f.Ugrad,
                                  static_cast<unsigned>(ws_.num_nodes),
                                  static_cast<unsigned>(ws_.num_qps)};
  pk::parallel_for("velocity_gradient", ws_.n_cells, vgrad);

  ViscosityFO<ScalarT> visc{f.Ugrad,
                            f.mu,
                            flow_factor_,
                            cfg_.constants.glen_A,
                            cfg_.constants.glen_n,
                            cfg_.constants.eps_reg2,
                            static_cast<unsigned>(ws_.num_qps),
                            cfg_.mms.enabled ? cfg_.mms.mu0 : 0.0};
  pk::parallel_for("viscosity", ws_.n_cells, visc);

  BodyForceFO<ScalarT> bf{force_passive_, f.force,
                          static_cast<unsigned>(ws_.num_qps)};
  pk::parallel_for("body_force_copy", ws_.n_cells, bf);
  return f;
}

template FieldSet<ResidualEval::ScalarT>&
StokesFOProblem::evaluate_fields<ResidualEval>(const std::vector<double>&);
template FieldSet<JacobianEval::ScalarT>&
StokesFOProblem::evaluate_fields<JacobianEval>(const std::vector<double>&);

template <class EvalT>
void StokesFOProblem::run_resid_kernel(KernelVariant v) {
  using ScalarT = typename EvalT::ScalarT;
  auto& f = fields<ScalarT>();
  MALI_CHECK_MSG(f.allocated, "call evaluate_fields first");

  StokesFOResid<ScalarT> kernel;
  kernel.Ugrad = f.Ugrad;
  kernel.muLandIce = f.mu;
  kernel.force = f.force;
  kernel.wGradBF = ws_.wGradBF;
  kernel.wBF = ws_.wBF;
  kernel.Residual = f.Residual;
  kernel.numNodes = static_cast<unsigned>(ws_.num_nodes);
  kernel.numQPs = static_cast<unsigned>(ws_.num_qps);
  kernel.cond = false;

  const std::size_t C = ws_.n_cells;
  using pk::RangePolicy;
  using Exec = pk::DefaultExec;
  switch (v) {
    case KernelVariant::kBaseline:
      pk::parallel_for("StokesFOResid<baseline>",
                       RangePolicy<Exec, LandIce_3D_Tag>(C), kernel);
      break;
    case KernelVariant::kOptimized:
      pk::parallel_for("StokesFOResid<optimized>",
                       RangePolicy<Exec, LandIce_3D_Opt_Tag<8>>(C), kernel);
      break;
    case KernelVariant::kLoopOptOnly:
      pk::parallel_for("StokesFOResid<loop-opt>",
                       RangePolicy<Exec, LandIce_3D_LoopOptOnly_Tag<8>>(C),
                       kernel);
      break;
    case KernelVariant::kFusedOnly:
      pk::parallel_for("StokesFOResid<fused>",
                       RangePolicy<Exec, LandIce_3D_FusedOnly_Tag>(C), kernel);
      break;
    case KernelVariant::kLocalAccumOnly:
      pk::parallel_for("StokesFOResid<local-accum>",
                       RangePolicy<Exec, LandIce_3D_LocalAccumOnly_Tag>(C),
                       kernel);
      break;
  }
}

template void StokesFOProblem::run_resid_kernel<ResidualEval>(KernelVariant);
template void StokesFOProblem::run_resid_kernel<JacobianEval>(KernelVariant);

template <class EvalT>
void StokesFOProblem::evaluate_workset(std::size_t w,
                                       const pk::View<double, 1>& Uview) {
  using ScalarT = typename EvalT::ScalarT;
  const WorksetRange& range = workset_ranges_[w];
  const std::size_t cnt = range.count;
  auto& f = fields<ScalarT>();

  // Workset windows over the global geometry arrays (no copies).
  const auto cell_nodes = ws_.cell_nodes.window(range.c0, cnt);
  const auto gradBF = ws_.gradBF.window(range.c0, cnt);
  const auto wGradBF = ws_.wGradBF.window(range.c0, cnt);
  const auto wBF = ws_.wBF.window(range.c0, cnt);
  const auto force_passive = force_passive_.window(range.c0, cnt);
  pk::View<double, 2> flow_factor;
  if (flow_factor_.allocated()) {
    flow_factor = flow_factor_.window(range.c0, cnt);
  }

  pk::Timer phase_timer;
  GatherSolution<ScalarT> gather{Uview, cell_nodes, f.UNodal,
                                 static_cast<unsigned>(ws_.num_nodes)};
  pk::parallel_for("gather", cnt, gather);

  // SIMD element-batched fused chain (double path only; the SFad assembled
  // Jacobian always runs the staged scalar chain).  Replaces the staged
  // VelocityGradient → ViscosityFO → BodyForceFO → StokesFOResid sequence
  // with one batched kernel that recomputes the cell geometry in pack
  // registers; the gathered f.UNodal is reused (BasalFrictionResid also
  // reads it).  The dispatch range is rounded up to a full batch multiple —
  // the padded ghost rows make every load/store in-bounds, and the ghost
  // residual rows are never scattered.
  if constexpr (std::is_same_v<ScalarT, double>) {
    const int simd_w = resolved_simd_width();
    if (simd_w > 1) {
      phase_timers_.add("evaluate", phase_timer.seconds());
      phase_timer.reset();
      using Exec = pk::DefaultExec;
      auto run_batched = [&]<int W>() {
        const auto wW = static_cast<std::size_t>(W);
        const std::size_t cnt_pad = (cnt + wW - 1) / wW * wW;
        FusedStokesChainBatched<W> chain;
        chain.UNodal = f.UNodal;
        chain.coords = ws_.coords.window(range.c0, cnt_pad);
        chain.ref_grad = ref_grad_;
        chain.ref_val = ref_val_;
        chain.qp_weight = qp_weights_;
        chain.force_passive = force_passive_.window(range.c0, cnt_pad);
        if (flow_factor_.allocated()) {
          chain.flow_factor = flow_factor_.window(range.c0, cnt_pad);
        }
        chain.Residual = f.Residual;
        chain.glen_A = cfg_.constants.glen_A;
        chain.glen_n = cfg_.constants.glen_n;
        chain.eps_reg2 = cfg_.constants.eps_reg2;
        chain.constant_mu = cfg_.mms.enabled ? cfg_.mms.mu0 : 0.0;
        chain.numNodes = static_cast<unsigned>(ws_.num_nodes);
        chain.numQPs = static_cast<unsigned>(ws_.num_qps);
        chain.prepare();
        pk::parallel_for("FusedStokesChainBatched",
                         pk::SimdRangePolicy<W, Exec>(cnt_pad), chain);
      };
      switch (simd_w) {
        case 2:
          run_batched.template operator()<2>();
          break;
        case 8:
          run_batched.template operator()<8>();
          break;
        default:
          run_batched.template operator()<4>();
          break;
      }
      if (!cfg_.mms.enabled) {
        BasalFrictionResid<ScalarT> friction{
            range.face_cell_local, range.face_wBF, range.face_beta,
            f.UNodal,              f.Residual,     face_BF_,
            static_cast<unsigned>(ws_.face_qps), cfg_.sliding};
        pk::parallel_for(
            "basal_friction",
            pk::RangePolicy<pk::Serial>(range.face_cell_local.size()),
            friction);
      }
      phase_timers_.add("kernel", phase_timer.seconds());
      return;
    }
  }

  VelocityGradient<ScalarT> vgrad{f.UNodal, gradBF, f.Ugrad,
                                  static_cast<unsigned>(ws_.num_nodes),
                                  static_cast<unsigned>(ws_.num_qps)};
  pk::parallel_for("velocity_gradient", cnt, vgrad);

  ViscosityFO<ScalarT> visc{f.Ugrad,
                            f.mu,
                            flow_factor,
                            cfg_.constants.glen_A,
                            cfg_.constants.glen_n,
                            cfg_.constants.eps_reg2,
                            static_cast<unsigned>(ws_.num_qps),
                            cfg_.mms.enabled ? cfg_.mms.mu0 : 0.0};
  pk::parallel_for("viscosity", cnt, visc);

  BodyForceFO<ScalarT> bf{force_passive, f.force,
                          static_cast<unsigned>(ws_.num_qps)};
  pk::parallel_for("body_force_copy", cnt, bf);
  phase_timers_.add("evaluate", phase_timer.seconds());
  phase_timer.reset();

  // The paper's kernel, on this workset.
  StokesFOResid<ScalarT> kernel;
  kernel.Ugrad = f.Ugrad;
  kernel.muLandIce = f.mu;
  kernel.force = f.force;
  kernel.wGradBF = wGradBF;
  kernel.wBF = wBF;
  kernel.Residual = f.Residual;
  kernel.numNodes = static_cast<unsigned>(ws_.num_nodes);
  kernel.numQPs = static_cast<unsigned>(ws_.num_qps);
  kernel.cond = false;
  using pk::RangePolicy;
  using Exec = pk::DefaultExec;
  switch (cfg_.variant) {
    case KernelVariant::kBaseline:
      pk::parallel_for("StokesFOResid", RangePolicy<Exec, LandIce_3D_Tag>(cnt),
                       kernel);
      break;
    case KernelVariant::kOptimized:
      pk::parallel_for("StokesFOResid",
                       RangePolicy<Exec, LandIce_3D_Opt_Tag<8>>(cnt), kernel);
      break;
    case KernelVariant::kLoopOptOnly:
      pk::parallel_for("StokesFOResid",
                       RangePolicy<Exec, LandIce_3D_LoopOptOnly_Tag<8>>(cnt),
                       kernel);
      break;
    case KernelVariant::kFusedOnly:
      pk::parallel_for("StokesFOResid",
                       RangePolicy<Exec, LandIce_3D_FusedOnly_Tag>(cnt),
                       kernel);
      break;
    case KernelVariant::kLocalAccumOnly:
      pk::parallel_for("StokesFOResid",
                       RangePolicy<Exec, LandIce_3D_LocalAccumOnly_Tag>(cnt),
                       kernel);
      break;
  }

  // Basal friction contribution (adds to Residual); the manufactured
  // verification imposes Dirichlet values at the bed instead.
  if (!cfg_.mms.enabled) {
    BasalFrictionResid<ScalarT> friction{
        range.face_cell_local, range.face_wBF, range.face_beta,
        f.UNodal,              f.Residual,     face_BF_,
        static_cast<unsigned>(ws_.face_qps), cfg_.sliding};
    pk::parallel_for("basal_friction",
                     pk::RangePolicy<pk::Serial>(range.face_cell_local.size()),
                     friction);
  }
  phase_timers_.add("kernel", phase_timer.seconds());
}

template void StokesFOProblem::evaluate_workset<ResidualEval>(
    std::size_t, const pk::View<double, 1>&);
template void StokesFOProblem::evaluate_workset<JacobianEval>(
    std::size_t, const pk::View<double, 1>&);

template <class EvalT>
void StokesFOProblem::assemble_workset(std::size_t w,
                                       const pk::View<double, 1>& Uview,
                                       std::vector<double>& F,
                                       linalg::CrsMatrix* J) {
  using ScalarT = typename EvalT::ScalarT;
  evaluate_workset<EvalT>(w, Uview);

  const WorksetRange& range = workset_ranges_[w];
  const std::size_t cnt = range.count;
  auto& f = fields<ScalarT>();
  const auto cell_nodes = ws_.cell_nodes.window(range.c0, cnt);

  pk::Timer phase_timer;
  // Scatter: element residuals/Jacobians into the global F / CRS matrix,
  // parallelized per the configured ScatterMode (rows are shared between
  // cells, so the parallel modes rely on the coloring or on atomics).
  scatter_add(cfg_.scatter, range.coloring, cell_nodes, f.Residual, cnt,
              ws_.num_nodes, F, J);
  phase_timers_.add("scatter", phase_timer.seconds());
}

template <class EvalT>
void StokesFOProblem::assemble(const std::vector<double>& U,
                               std::vector<double>& F, linalg::CrsMatrix* J) {
  using ScalarT = typename EvalT::ScalarT;
  MALI_CHECK(U.size() == n_dofs());

  // Field buffers at the workset size (allocated once, reused per chunk;
  // the first range is the largest — the tail chunk can only be smaller).
  const std::size_t ws_size =
      workset_ranges_.empty() ? ws_.n_cells : workset_ranges_.front().count;
  auto& f = fields<ScalarT>();
  f.allocate(ws_size, ws_.num_nodes, ws_.num_qps);

  pk::View<double, 1> Uview("U", U.size());
  std::copy(U.begin(), U.end(), Uview.data());

  F.assign(n_dofs(), 0.0);
  for (std::size_t w = 0; w < workset_ranges_.size(); ++w) {
    assemble_workset<EvalT>(w, Uview, F, J);
  }

  // Dirichlet rows: u = 0 on the lateral margin.  The rows are scaled to
  // the interior stiffness magnitude so the preconditioners (in particular
  // the AMG's Galerkin coarse operators) do not see a 1e13:1 scale split.
  if (J != nullptr) {
    double mean_diag = 0.0;
    std::size_t count = 0;
    for (std::size_t r = 0; r < n_dofs(); ++r) {
      if (dof_map_->is_dirichlet_dof(r)) continue;
      mean_diag += std::abs(J->diagonal(r));
      ++count;
    }
    if (count > 0 && mean_diag > 0.0) {
      dirichlet_scale_ = mean_diag / static_cast<double>(count);
    }
  }
  for (std::size_t d : dof_map_->dirichlet_dofs()) {
    F[d] = dirichlet_scale_ * (U[d] - dirichlet_values_[d]);
    if (J != nullptr) {
      J->set_identity_row(d);
      J->set(d, d, dirichlet_scale_);
    }
  }
}

void StokesFOProblem::residual(const std::vector<double>& U,
                               std::vector<double>& F) {
  assemble<ResidualEval>(U, F, nullptr);
}

void StokesFOProblem::residual_and_jacobian(const std::vector<double>& U,
                                            std::vector<double>& F,
                                            linalg::CrsMatrix& J) {
  J.set_zero();
  assemble<JacobianEval>(U, F, &J);
}

template <class Exec>
void StokesFOProblem::apply_jacobian(const std::vector<double>& U,
                                     const std::vector<double>& x,
                                     std::vector<double>& y) {
  MALI_CHECK(U.size() == n_dofs());
  MALI_CHECK(x.size() == n_dofs());
  MALI_CHECK_MSG(&x != &y, "apply_jacobian: aliased in/out");

  const std::size_t ws_size =
      workset_ranges_.empty() ? ws_.n_cells : workset_ranges_.front().count;
  const std::size_t ws_pad = fem::padded_cells(ws_size);
  if (!tangent_.allocated() || tangent_.extent(0) < ws_pad) {
    tangent_ = pk::View<double, 3>("tangent", ws_pad, ws_.num_nodes, 2);
  }

  pk::View<double, 1> Uview("U", U.size());
  std::copy(U.begin(), U.end(), Uview.data());
  pk::View<double, 1> Xview("X", x.size());
  std::copy(x.begin(), x.end(), Xview.data());

  y.assign(n_dofs(), 0.0);
  for (const WorksetRange& range : workset_ranges_) {
    const std::size_t cnt = range.count;
    const auto cell_nodes = ws_.cell_nodes.window(range.c0, cnt);
    const auto coords = ws_.coords.window(range.c0, cnt);
    pk::View<double, 2> flow_factor;
    if (flow_factor_.allocated()) {
      flow_factor = flow_factor_.window(range.c0, cnt);
    }

    // Fused tangent: gather + in-register geometry + Ugrad + viscosity +
    // stress, accumulating only the directional derivative.  With a SIMD
    // width > 1 the batched FadPack kernel processes W cells per dispatch
    // over a range padded to a full batch multiple (ghost rows hold valid
    // replicated geometry; their tangent rows are never scattered).
    const int simd_w = resolved_simd_width();
    if (simd_w > 1) {
      auto run_batched = [&]<int W>() {
        const auto wW = static_cast<std::size_t>(W);
        const std::size_t cnt_pad = (cnt + wW - 1) / wW * wW;
        StokesFOTangentBatched<W> tangent;
        tangent.cell_nodes = ws_.cell_nodes.window(range.c0, cnt_pad);
        tangent.coords = ws_.coords.window(range.c0, cnt_pad);
        if (flow_factor_.allocated()) {
          tangent.flow_factor = flow_factor_.window(range.c0, cnt_pad);
        }
        tangent.U = Uview;
        tangent.X = Xview;
        tangent.ref_grad = ref_grad_;
        tangent.qp_weight = qp_weights_;
        tangent.Tangent = tangent_;
        tangent.glen_A = cfg_.constants.glen_A;
        tangent.glen_n = cfg_.constants.glen_n;
        tangent.eps_reg2 = cfg_.constants.eps_reg2;
        tangent.constant_mu = cfg_.mms.enabled ? cfg_.mms.mu0 : 0.0;
        tangent.numNodes = ws_.num_nodes;
        tangent.numQPs = ws_.num_qps;
        tangent.prepare();
        pk::parallel_for("jacobian_tangent_batched",
                         pk::SimdRangePolicy<W, Exec>(cnt_pad), tangent);
      };
      switch (simd_w) {
        case 2:
          run_batched.template operator()<2>();
          break;
        case 8:
          run_batched.template operator()<8>();
          break;
        default:
          run_batched.template operator()<4>();
          break;
      }
    } else {
      StokesFOTangent tangent;
      tangent.cell_nodes = cell_nodes;
      tangent.coords = coords;
      tangent.flow_factor = flow_factor;
      tangent.U = Uview;
      tangent.X = Xview;
      tangent.ref_grad = ref_grad_;
      tangent.qp_weight = qp_weights_;
      tangent.Tangent = tangent_;
      tangent.glen_A = cfg_.constants.glen_A;
      tangent.glen_n = cfg_.constants.glen_n;
      tangent.eps_reg2 = cfg_.constants.eps_reg2;
      tangent.constant_mu = cfg_.mms.enabled ? cfg_.mms.mu0 : 0.0;
      tangent.numNodes = ws_.num_nodes;
      tangent.numQPs = ws_.num_qps;
      pk::parallel_for("jacobian_tangent", pk::RangePolicy<Exec>(cnt), tangent);
    }

    // Basal sliding tangent (adds into Tangent); serial over faces, as in
    // the assembled chain.
    if (!cfg_.mms.enabled) {
      BasalFrictionTangent friction;
      friction.face_cell_local = range.face_cell_local;
      friction.face_wBF = range.face_wBF;
      friction.face_beta = range.face_beta;
      friction.face_BF = face_BF_;
      friction.cell_nodes = cell_nodes;
      friction.U = Uview;
      friction.X = Xview;
      friction.Tangent = tangent_;
      friction.faceQPs = static_cast<unsigned>(ws_.face_qps);
      friction.sliding = cfg_.sliding;
      pk::parallel_for(
          "basal_friction_tangent",
          pk::RangePolicy<pk::Serial>(range.face_cell_local.size()), friction);
    }

    // Scatter the per-cell tangent into y, reusing the colored/atomic
    // machinery (double path: no matrix).
    scatter_add<Exec>(cfg_.scatter, range.coloring, cell_nodes, tangent_, cnt,
                      ws_.num_nodes, y, nullptr);
  }

  // Dirichlet rows act exactly like the assembled scaled identity rows.
  for (std::size_t d : dof_map_->dirichlet_dofs()) {
    y[d] = dirichlet_scale_ * x[d];
  }
}

template void StokesFOProblem::apply_jacobian<pk::Serial>(
    const std::vector<double>&, const std::vector<double>&,
    std::vector<double>&);
template void StokesFOProblem::apply_jacobian<pk::Threads>(
    const std::vector<double>&, const std::vector<double>&,
    std::vector<double>&);

std::vector<double> StokesFOProblem::jacobian_block_diagonal(
    const std::vector<double>& U) {
  MALI_CHECK(U.size() == n_dofs());
  const std::size_t ws_size =
      workset_ranges_.empty() ? ws_.n_cells : workset_ranges_.front().count;
  auto& f = fields<JacobianEval::ScalarT>();
  f.allocate(ws_size, ws_.num_nodes, ws_.num_qps);

  pk::View<double, 1> Uview("U", U.size());
  std::copy(U.begin(), U.end(), Uview.data());

  // One 2x2 block per node (dof = 2*node + comp): 2 * n_dofs doubles.
  std::vector<double> blocks(2 * n_dofs(), 0.0);
  const int N = ws_.num_nodes;
  for (std::size_t w = 0; w < workset_ranges_.size(); ++w) {
    evaluate_workset<JacobianEval>(w, Uview);
    const WorksetRange& range = workset_ranges_[w];
    for (std::size_t c = 0; c < range.count; ++c) {
      for (int node = 0; node < N; ++node) {
        const std::size_t gnode = ws_.cell_nodes(range.c0 + c, node);
        for (int r = 0; r < 2; ++r) {
          const auto& R = f.Residual(c, node, r);
          for (int col = 0; col < 2; ++col) {
            blocks[gnode * 4 + static_cast<std::size_t>(r * 2 + col)] +=
                R.dx(2 * node + col);
          }
        }
      }
    }
  }

  // Dirichlet scale from the mean interior |diagonal|, as in the assembled
  // path; then Dirichlet-node blocks become scale * I (their rows are
  // scaled identity rows in the assembled matrix).
  double mean_diag = 0.0;
  std::size_t count = 0;
  for (std::size_t r = 0; r < n_dofs(); ++r) {
    if (dof_map_->is_dirichlet_dof(r)) continue;
    const std::size_t node = r / 2;
    const std::size_t comp = r % 2;
    mean_diag += std::abs(blocks[node * 4 + comp * 2 + comp]);
    ++count;
  }
  if (count > 0 && mean_diag > 0.0) {
    dirichlet_scale_ = mean_diag / static_cast<double>(count);
  }
  for (std::size_t d : dof_map_->dirichlet_dofs()) {
    const std::size_t node = d / 2;
    const std::size_t comp = d % 2;
    blocks[node * 4 + comp * 2 + 0] = 0.0;
    blocks[node * 4 + comp * 2 + 1] = 0.0;
    blocks[node * 4 + comp * 2 + comp] = dirichlet_scale_;
  }
  return blocks;
}

std::unique_ptr<linalg::LinearOperator> StokesFOProblem::jacobian_operator(
    const std::vector<double>& U) {
  auto op = std::make_unique<MatrixFreeStokesOperator>(*this);
  op->linearize(U);
  return op;
}

double StokesFOProblem::mean_velocity(const std::vector<double>& U) const {
  MALI_CHECK(U.size() == n_dofs());
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t node = 0; node < mesh_->n_nodes(); ++node) {
    if (mesh_->is_dirichlet_node(node)) continue;
    const double u = U[fem::DofMap::dof(node, 0)];
    const double v = U[fem::DofMap::dof(node, 1)];
    sum += std::sqrt(u * u + v * v);
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

void StokesFOProblem::set_temperature_field(
    const std::function<double(double, double, double)>& temperature) {
  const std::size_t C = ws_.n_cells;
  const int N = ws_.num_nodes;
  const int Q = ws_.num_qps;
  if (!flow_factor_.allocated()) {
    flow_factor_ = pk::View<double, 2>("flow_factor", ws_.n_cells_padded, Q);
  }
  const auto qps = fem::gauss_hex(2);
  pk::parallel_for("set_temperature", C, [&](int ci) {
    const auto c = static_cast<std::size_t>(ci);
    for (int q = 0; q < Q; ++q) {
      double x = 0.0, y = 0.0, z = 0.0;
      for (int k = 0; k < N; ++k) {
        const auto& qp = qps[static_cast<std::size_t>(q)];
        const double bf = fem::Hex8Basis::value(k, qp.xi, qp.eta, qp.zeta);
        x += bf * ws_.coords(c, k, 0);
        y += bf * ws_.coords(c, k, 1);
        z += bf * ws_.coords(c, k, 2);
      }
      const double h =
          std::max(geom_.thickness(x, y), geom_.config().min_thickness_m);
      const double sigma = std::clamp((z - geom_.bed(x, y)) / h, 0.0, 1.0);
      flow_factor_(c, q) = paterson_budd_A(temperature(x, y, sigma));
    }
  });
}

double StokesFOProblem::mms_error(const std::vector<double>& U) const {
  MALI_CHECK(U.size() == n_dofs());
  const auto exact = mms_exact();
  double err2 = 0.0;
  for (std::size_t i = 0; i < U.size(); ++i) {
    const double e = U[i] - exact[i];
    err2 += e * e;
  }
  return std::sqrt(err2 / static_cast<double>(U.size()));
}

std::vector<double> StokesFOProblem::mms_exact() const {
  std::vector<double> exact(n_dofs(), 0.0);
  for (std::size_t node = 0; node < mesh_->n_nodes(); ++node) {
    double u = 0.0, v = 0.0;
    mms_velocity(cfg_.mms, mesh_->node_x(node), mesh_->node_y(node),
                 mesh_->node_z(node), u, v);
    exact[fem::DofMap::dof(node, 0)] = u;
    exact[fem::DofMap::dof(node, 1)] = v;
  }
  return exact;
}

std::vector<double> StokesFOProblem::analytic_initial_guess() const {
  // Shallow-ice-like speeds: u ~ -Gamma H^{n+1} |grad s|^{n-1} grad s with a
  // simple vertical profile, giving the kernels realistic strain rates.
  std::vector<double> U(n_dofs(), 0.0);
  const double n = cfg_.constants.glen_n;
  const double gamma = 2.0 * cfg_.constants.glen_A *
                       std::pow(cfg_.constants.rho_g(), n) / (n + 2.0);
  for (std::size_t node = 0; node < mesh_->n_nodes(); ++node) {
    if (mesh_->is_dirichlet_node(node)) continue;
    const double x = mesh_->node_x(node);
    const double y = mesh_->node_y(node);
    const double H = geom_.thickness(x, y);
    double dsdx = 0.0, dsdy = 0.0;
    geom_.surface_gradient(x, y, dsdx, dsdy);
    const double slope = std::hypot(dsdx, dsdy);
    const double level = static_cast<double>(mesh_->level_of(node));
    const double sigma = level / static_cast<double>(cfg_.n_layers);
    // Vertical shape function of the SIA profile.
    const double shape = 1.0 - std::pow(1.0 - sigma, n + 1.0);
    const double speed =
        gamma * std::pow(H, n + 1.0) * std::pow(slope, n - 1.0) * shape;
    U[fem::DofMap::dof(node, 0)] = -speed * dsdx;
    U[fem::DofMap::dof(node, 1)] = -speed * dsdy;
  }
  return U;
}

}  // namespace mali::physics
