#pragma once
// Depth-averaged horizontal velocity — the bridge between the 3D FO-Stokes
// solution and the 2D mass-conservation transport (Eq. 2's u_bar).  Hoisted
// out of examples/thickness_evolution so the forecast driver, the examples,
// and the CLI all share one audited implementation.

#include <cstddef>
#include <vector>

#include "mesh/extruded_mesh.hpp"

namespace mali::physics {

/// Trapezoidal depth average over the extruded levels of a 2-dof/node
/// velocity vector U (u, v interleaved): per base column,
///   ubar = (1/(L-1)) * sum_lev w_lev * u(col, lev),  w = 1/2 at the bed
/// and surface, 1 in between — the exact trapezoidal rule on the uniform
/// sigma lattice.  ubar/vbar are resized to base().n_nodes().
void depth_averaged_velocity(const mesh::ExtrudedMesh& mesh,
                             const std::vector<double>& U,
                             std::vector<double>& ubar,
                             std::vector<double>& vbar);

}  // namespace mali::physics
