#pragma once
// Element→global scatter of the assembled residual/Jacobian.
//
// The FE scatter is the one assembly phase that cannot naively run in
// parallel: neighbouring cells share nodes, so their element contributions
// add into the same global rows.  Three strategies are provided, selected by
// ScatterMode:
//
//  * kSerial  — the historical single-thread loop (reference semantics).
//  * kColored — conflict-free parallelism: cells are greedily colored so no
//               two cells of a color share a node (mesh/coloring.hpp); each
//               color class runs as one parallel_for with plain updates.
//               Deterministic: every global row receives its contributions
//               in a fixed (color-major, then cell) order regardless of the
//               thread count or schedule.
//  * kAtomic  — lock-free parallelism over all cells at once using
//               pk::atomic_add / CrsMatrix::add_atomic.  Race-free but the
//               per-row addition order depends on thread interleaving, so
//               results are reproducible only to FP-associativity.
//
// All three produce the same values up to floating-point reassociation;
// tests/test_scatter_parallel.cpp pins the equivalence on both the Serial
// and the thread-pool exec spaces.

#include <cstddef>
#include <string>
#include <vector>

#include "ad/scalar_traits.hpp"
#include "fem/dof_map.hpp"
#include "linalg/crs_matrix.hpp"
#include "mesh/coloring.hpp"
#include "physics/eval_types.hpp"
#include "portability/atomic.hpp"
#include "portability/parallel.hpp"
#include "portability/view.hpp"

namespace mali::physics {

enum class ScatterMode {
  kSerial,   ///< single-thread reference loop
  kColored,  ///< parallel over conflict-free color classes (deterministic)
  kAtomic,   ///< parallel over all cells with atomic adds
};

[[nodiscard]] inline const char* to_string(ScatterMode m) {
  switch (m) {
    case ScatterMode::kSerial:
      return "serial";
    case ScatterMode::kColored:
      return "colored";
    case ScatterMode::kAtomic:
      return "atomic";
  }
  return "unknown";
}

[[nodiscard]] inline ScatterMode scatter_mode_from_string(
    const std::string& s) {
  if (s == "serial") return ScatterMode::kSerial;
  if (s == "colored") return ScatterMode::kColored;
  if (s == "atomic") return ScatterMode::kAtomic;
  MALI_CHECK_MSG(false, "unknown scatter mode: " + s +
                            " (expected serial|colored|atomic)");
  return ScatterMode::kSerial;  // unreachable
}

namespace detail {

/// Scatters one cell's element residual (and, for SFad scalars, its element
/// Jacobian) into the global F vector / CRS matrix.  `Atomic` selects the
/// lock-free update path; with Atomic = false the caller must guarantee the
/// cell's rows are not concurrently updated (serial loop or color class).
template <bool Atomic, class ScalarT>
MALI_INLINE void scatter_cell(std::size_t c,
                              const pk::View<std::size_t, 2>& cell_nodes,
                              const pk::View<ScalarT, 3>& Residual,
                              int num_nodes, double* MALI_RESTRICT F,
                              linalg::CrsMatrix* J) {
  for (int node = 0; node < num_nodes; ++node) {
    const std::size_t gnode = cell_nodes(c, node);
    for (int comp = 0; comp < 2; ++comp) {
      const std::size_t row = fem::DofMap::dof(gnode, comp);
      const ScalarT& R = Residual(c, node, comp);
      if constexpr (Atomic) {
        pk::atomic_add(&F[row], ad::value_of(R));
      } else {
        F[row] += ad::value_of(R);
      }
      if constexpr (ad::is_fad_v<ScalarT>) {
        if (J != nullptr) {
          for (int l = 0; l < kNumLocalDofs; ++l) {
            const std::size_t col =
                fem::DofMap::dof(cell_nodes(c, l / 2), l % 2);
            if constexpr (Atomic) {
              J->add_atomic(row, col, R.dx(l));
            } else {
              J->add(row, col, R.dx(l));
            }
          }
        }
      }
    }
  }
}

}  // namespace detail

/// Scatter-adds the element residuals of cells [0, count) into F (and J for
/// SFad scalars).  `coloring` must cover exactly the same local cell range
/// and is only consulted for ScatterMode::kColored.  Exec selects the pk
/// execution space for the parallel modes (the serial mode ignores it).
template <class Exec = pk::DefaultExec, class ScalarT>
void scatter_add(ScatterMode mode, const mesh::CellColoring& coloring,
                 const pk::View<std::size_t, 2>& cell_nodes,
                 const pk::View<ScalarT, 3>& Residual, std::size_t count,
                 int num_nodes, std::vector<double>& F,
                 linalg::CrsMatrix* J) {
  MALI_CHECK(cell_nodes.extent(0) >= count);
  double* Fp = F.data();
  switch (mode) {
    case ScatterMode::kSerial: {
      for (std::size_t c = 0; c < count; ++c) {
        detail::scatter_cell<false>(c, cell_nodes, Residual, num_nodes, Fp, J);
      }
      break;
    }
    case ScatterMode::kColored: {
      MALI_CHECK_MSG(coloring.n_cells() == count,
                     "coloring does not cover the cell range");
      for (int k = 0; k < coloring.n_colors; ++k) {
        const std::size_t* cells =
            coloring.color_cells.data() +
            coloring.color_ptr[static_cast<std::size_t>(k)];
        pk::parallel_for(
            "scatter_color", pk::RangePolicy<Exec>(coloring.color_size(k)),
            [&, cells](int i) {
              detail::scatter_cell<false>(cells[i], cell_nodes, Residual,
                                          num_nodes, Fp, J);
            });
      }
      break;
    }
    case ScatterMode::kAtomic: {
      pk::parallel_for("scatter_atomic", pk::RangePolicy<Exec>(count),
                       [&](int i) {
                         detail::scatter_cell<true>(
                             static_cast<std::size_t>(i), cell_nodes, Residual,
                             num_nodes, Fp, J);
                       });
      break;
    }
  }
}

}  // namespace mali::physics
