#pragma once
// FusedStokesChain — the evaluator chain collapsed into a single kernel:
// velocity gradient, Glen's-law viscosity, body force and the StokesFOResid
// accumulation computed per cell with every intermediate (Ugrad, mu, force)
// kept in registers.  The intermediate fields never touch memory, which is
// the cross-kernel continuation of the paper's local-accumulation idea.
// Numerically identical to the staged pipeline (asserted in tests).

#include <cmath>
#include <cstddef>

#include "portability/common.hpp"
#include "portability/view.hpp"

namespace mali::physics {

template <class ScalarType, template <class, std::size_t> class ViewT = pk::View>
class FusedStokesChain {
 public:
  using ScalarT = ScalarType;
  static constexpr int kMaxNodes = 8;

  // Inputs.
  ViewT<ScalarT, 3> UNodal;        ///< (C, N, 2) gathered solution
  ViewT<double, 4> gradBF;         ///< (C, N, Q, 3)
  ViewT<double, 4> wGradBF;        ///< (C, N, Q, 3)
  ViewT<double, 3> wBF;            ///< (C, N, Q)
  ViewT<double, 3> force_passive;  ///< (C, Q, 2)
  // Output.
  ViewT<ScalarT, 3> Residual;  ///< (C, N, 2)

  double glen_A = 1.0e-16;
  double glen_n = 3.0;
  double eps_reg2 = 1.0e-10;
  unsigned int numNodes = 8;
  unsigned int numQPs = 8;

  MALI_KERNEL_FUNCTION void operator()(const int& cell) const {
    using std::pow;
    const double coeff = 0.5 * pow(glen_A, -1.0 / glen_n);
    const double expo = (1.0 - glen_n) / (2.0 * glen_n);

    // Nodal values: each read exactly once from memory.
    ScalarT un[kMaxNodes][2];
    for (std::size_t node = 0; node < numNodes; ++node) {
      un[node][0] = UNodal(cell, node, 0);
      un[node][1] = UNodal(cell, node, 1);
    }

    ScalarT res0[kMaxNodes] = {};
    ScalarT res1[kMaxNodes] = {};

    for (std::size_t qp = 0; qp < numQPs; ++qp) {
      // Velocity gradient, in registers.
      ScalarT g[2][3] = {};
      for (std::size_t node = 0; node < numNodes; ++node) {
        for (int d = 0; d < 3; ++d) {
          const double gb = gradBF(cell, node, qp, d);
          g[0][d] += un[node][0] * gb;
          g[1][d] += un[node][1] * gb;
        }
      }

      // Glen's-law viscosity, in registers.
      const ScalarT eps2 =
          g[0][0] * g[0][0] + g[1][1] * g[1][1] + g[0][0] * g[1][1] +
          0.25 * ((g[0][1] + g[1][0]) * (g[0][1] + g[1][0]) +
                  g[0][2] * g[0][2] + g[1][2] * g[1][2]);
      const ScalarT mu = coeff * pow(eps2 + eps_reg2, expo);

      // Stress components and body force.
      const ScalarT strs00 = 2.0 * mu * (2.0 * g[0][0] + g[1][1]);
      const ScalarT strs11 = 2.0 * mu * (2.0 * g[1][1] + g[0][0]);
      const ScalarT strs01 = mu * (g[0][1] + g[1][0]);
      const ScalarT strs02 = mu * g[0][2];
      const ScalarT strs12 = mu * g[1][2];
      const double frc0 = force_passive(cell, qp, 0);
      const double frc1 = force_passive(cell, qp, 1);

      for (std::size_t node = 0; node < numNodes; ++node) {
        res0[node] += strs00 * wGradBF(cell, node, qp, 0) +
                      strs01 * wGradBF(cell, node, qp, 1) +
                      strs02 * wGradBF(cell, node, qp, 2) +
                      frc0 * wBF(cell, node, qp);
        res1[node] += strs01 * wGradBF(cell, node, qp, 0) +
                      strs11 * wGradBF(cell, node, qp, 1) +
                      strs12 * wGradBF(cell, node, qp, 2) +
                      frc1 * wBF(cell, node, qp);
      }
    }

    for (std::size_t node = 0; node < numNodes; ++node) {
      Residual(cell, node, 0) = res0[node];
      Residual(cell, node, 1) = res1[node];
    }
  }
};

}  // namespace mali::physics
