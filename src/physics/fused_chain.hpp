#pragma once
// FusedStokesChain — the evaluator chain collapsed into a single kernel:
// velocity gradient, Glen's-law viscosity, body force and the StokesFOResid
// accumulation computed per cell with every intermediate (Ugrad, mu, force)
// kept in registers.  The intermediate fields never touch memory, which is
// the cross-kernel continuation of the paper's local-accumulation idea.
// Numerically identical to the staged pipeline (asserted in tests).

#include <cmath>
#include <cstddef>

#include "portability/common.hpp"
#include "portability/view.hpp"

namespace mali::physics {

template <class ScalarType, template <class, std::size_t> class ViewT = pk::View>
class FusedStokesChain {
 public:
  using ScalarT = ScalarType;
  static constexpr int kMaxNodes = 8;

  // Inputs.
  ViewT<ScalarT, 3> UNodal;        ///< (C, N, 2) gathered solution
  ViewT<double, 4> gradBF;         ///< (C, N, Q, 3)
  ViewT<double, 4> wGradBF;        ///< (C, N, Q, 3)
  ViewT<double, 3> wBF;            ///< (C, N, Q)
  ViewT<double, 3> force_passive;  ///< (C, Q, 2)
  ViewT<double, 2> flow_factor;    ///< (C, Q) thermal A(T); optional
  // Output.
  ViewT<ScalarT, 3> Residual;  ///< (C, N, 2)

  double glen_A = 1.0e-16;
  double glen_n = 3.0;
  double eps_reg2 = 1.0e-10;
  double constant_mu = 0.0;  ///< > 0 bypasses Glen's law (MMS runs)
  unsigned int numNodes = 8;
  unsigned int numQPs = 8;

  /// Hoists the loop-invariant Glen's-law constants out of the per-cell
  /// kernel; call once after setting glen_A / glen_n.  The hoisted values
  /// are computed by the exact expressions the kernel previously evaluated
  /// per cell, so residuals are bitwise identical (pinned in tests).
  void prepare() {
    coeff_ = 0.5 * std::pow(glen_A, -1.0 / glen_n);
    expo_ = (1.0 - glen_n) / (2.0 * glen_n);
  }

  MALI_KERNEL_FUNCTION void operator()(const int& cell) const {
    using std::pow;
    MALI_CHECK_MSG(numNodes <= kMaxNodes,
                   "FusedStokesChain supports at most 8 nodes");
    const bool thermal = flow_factor.allocated();

    // Nodal values: each read exactly once from memory.
    ScalarT un[kMaxNodes][2];
    for (std::size_t node = 0; node < numNodes; ++node) {
      un[node][0] = UNodal(cell, node, 0);
      un[node][1] = UNodal(cell, node, 1);
    }

    ScalarT res0[kMaxNodes] = {};
    ScalarT res1[kMaxNodes] = {};

    for (std::size_t qp = 0; qp < numQPs; ++qp) {
      // Velocity gradient, in registers.
      ScalarT g[2][3] = {};
      for (std::size_t node = 0; node < numNodes; ++node) {
        for (int d = 0; d < 3; ++d) {
          const double gb = gradBF(cell, node, qp, d);
          g[0][d] += un[node][0] * gb;
          g[1][d] += un[node][1] * gb;
        }
      }

      // Glen's-law viscosity, in registers.  coeff_/expo_ are hoisted to
      // prepare(); the thermal path still pays a per-qp pow because the flow
      // factor A(T) varies per quadrature point.
      const ScalarT eps2 =
          g[0][0] * g[0][0] + g[1][1] * g[1][1] + g[0][0] * g[1][1] +
          0.25 * ((g[0][1] + g[1][0]) * (g[0][1] + g[1][0]) +
                  g[0][2] * g[0][2] + g[1][2] * g[1][2]);
      ScalarT mu;
      if (constant_mu > 0.0) {
        mu = constant_mu;
      } else {
        const double coeff =
            thermal ? 0.5 * pow(flow_factor(cell, qp), -1.0 / glen_n) : coeff_;
        mu = coeff * pow(eps2 + eps_reg2, expo_);
      }

      // Stress components and body force.
      const ScalarT strs00 = 2.0 * mu * (2.0 * g[0][0] + g[1][1]);
      const ScalarT strs11 = 2.0 * mu * (2.0 * g[1][1] + g[0][0]);
      const ScalarT strs01 = mu * (g[0][1] + g[1][0]);
      const ScalarT strs02 = mu * g[0][2];
      const ScalarT strs12 = mu * g[1][2];
      const double frc0 = force_passive(cell, qp, 0);
      const double frc1 = force_passive(cell, qp, 1);

      for (std::size_t node = 0; node < numNodes; ++node) {
        res0[node] += strs00 * wGradBF(cell, node, qp, 0) +
                      strs01 * wGradBF(cell, node, qp, 1) +
                      strs02 * wGradBF(cell, node, qp, 2) +
                      frc0 * wBF(cell, node, qp);
        res1[node] += strs01 * wGradBF(cell, node, qp, 0) +
                      strs11 * wGradBF(cell, node, qp, 1) +
                      strs12 * wGradBF(cell, node, qp, 2) +
                      frc1 * wBF(cell, node, qp);
      }
    }

    for (std::size_t node = 0; node < numNodes; ++node) {
      Residual(cell, node, 0) = res0[node];
      Residual(cell, node, 1) = res1[node];
    }
  }

 private:
  // Hoisted Glen's-law constants (see prepare()).  Initialized for the
  // default glen_A / glen_n so a chain used without prepare() still runs the
  // documented configuration.
  double coeff_ = 0.5 * std::pow(1.0e-16, -1.0 / 3.0);
  double expo_ = (1.0 - 3.0) / (2.0 * 3.0);
};

}  // namespace mali::physics
