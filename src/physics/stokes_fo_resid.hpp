#pragma once
// StokesFOResid — the paper's kernel (Fig. 2): the per-cell evaluation of
// the local Residual / Jacobian of the first-order Stokes equations.  The
// same source serves both evaluations; the Jacobian instantiates ScalarT as
// SFad<double,16>, which is why it moves ~16x more data.
//
// Variants (all numerically identical — asserted by the tests):
//  * LandIce_3D_Tag            — BASELINE: zero-init loop, in-kernel branch,
//                                separate stress/force qp loops, global
//                                accumulation, runtime `unsigned` bounds.
//  * LandIce_3D_Opt_Tag<N>     — OPTIMIZED: compile-time node count, size_t
//                                indices, hoisted branch, one fused qp loop,
//                                local accumulator arrays written back once.
//  * ablation tags             — each optimization applied in isolation.
//
// The functor is additionally templated on the view template so the gpusim
// TraceViews can be substituted for pk::Views without touching the kernel.

#include <cstddef>

#include "portability/common.hpp"
#include "portability/view.hpp"

namespace mali::physics {

struct LandIce_3D_Tag {};
template <int NumNodes>
struct LandIce_3D_Opt_Tag {
  static constexpr std::size_t num_nodes = NumNodes;
};
// Ablation tags: one optimization at a time.
template <int NumNodes>
struct LandIce_3D_LoopOptOnly_Tag {  // compile-time bounds + hoisted branch
  static constexpr std::size_t num_nodes = NumNodes;
};
struct LandIce_3D_FusedOnly_Tag {};      // fused loops, global accumulation
struct LandIce_3D_LocalAccumOnly_Tag {}; // local accumulation, separate loops

template <class ScalarType, class MeshScalarType = double,
          template <class, std::size_t> class ViewT = pk::View>
class StokesFOResid {
 public:
  using ScalarT = ScalarType;
  using MeshScalarT = MeshScalarType;

  // Input fields (Albany names).
  ViewT<ScalarT, 4> Ugrad;      ///< (C, Q, 2, 3) velocity gradient
  ViewT<ScalarT, 2> muLandIce;  ///< (C, Q) effective viscosity
  ViewT<ScalarT, 3> force;      ///< (C, Q, 2) driving-stress body force
  ViewT<MeshScalarT, 4> wGradBF;  ///< (C, N, Q, 3)
  ViewT<MeshScalarT, 3> wBF;      ///< (C, N, Q)
  // Output.
  ViewT<ScalarT, 3> Residual;  ///< (C, N, 2)

  unsigned int numNodes = 8;
  unsigned int numQPs = 8;
  /// Configuration-dependent branch retained from the baseline (selects an
  /// alternate 2D formulation in Albany; always false for the Antarctica
  /// configuration — the optimized kernels hoist it out entirely).
  bool cond = false;

  // --------------------------------------------------------------------
  // BASELINE (paper Fig. 2, left)
  // --------------------------------------------------------------------
  MALI_KERNEL_FUNCTION
  void operator()(const LandIce_3D_Tag& /*tag*/, const int& cell) const {
    for (unsigned int node = 0; node < numNodes; ++node) {
      Residual(cell, node, 0) = ScalarT(0.);
      Residual(cell, node, 1) = ScalarT(0.);
    }

    if (cond) {
      // Alternate formulation; never taken for this configuration but kept
      // in-kernel, as in the baseline, where it costs divergence.
    } else {
      for (unsigned int qp = 0; qp < numQPs; ++qp) {
        ScalarT mu = muLandIce(cell, qp);
        ScalarT strs00 = 2.0 * mu *
                         (2.0 * Ugrad(cell, qp, 0, 0) + Ugrad(cell, qp, 1, 1));
        ScalarT strs11 = 2.0 * mu *
                         (2.0 * Ugrad(cell, qp, 1, 1) + Ugrad(cell, qp, 0, 0));
        ScalarT strs01 =
            mu * (Ugrad(cell, qp, 1, 0) + Ugrad(cell, qp, 0, 1));
        ScalarT strs02 = mu * Ugrad(cell, qp, 0, 2);
        ScalarT strs12 = mu * Ugrad(cell, qp, 1, 2);
        for (unsigned int node = 0; node < numNodes; ++node) {
          Residual(cell, node, 0) += strs00 * wGradBF(cell, node, qp, 0) +
                                     strs01 * wGradBF(cell, node, qp, 1) +
                                     strs02 * wGradBF(cell, node, qp, 2);
          Residual(cell, node, 1) += strs01 * wGradBF(cell, node, qp, 0) +
                                     strs11 * wGradBF(cell, node, qp, 1) +
                                     strs12 * wGradBF(cell, node, qp, 2);
        }
      }
    }

    for (unsigned int qp = 0; qp < numQPs; ++qp) {
      ScalarT frc0 = force(cell, qp, 0);
      ScalarT frc1 = force(cell, qp, 1);
      for (unsigned int node = 0; node < numNodes; ++node) {
        Residual(cell, node, 0) += frc0 * wBF(cell, node, qp);
        Residual(cell, node, 1) += frc1 * wBF(cell, node, qp);
      }
    }
  }

  // --------------------------------------------------------------------
  // OPTIMIZED (paper Fig. 2, right)
  // --------------------------------------------------------------------
  template <int NumNodes>
  MALI_KERNEL_FUNCTION void operator()(
      const LandIce_3D_Opt_Tag<NumNodes>& /*tag*/, const int& cell) const {
    static constexpr std::size_t num_nodes = LandIce_3D_Opt_Tag<NumNodes>::num_nodes;
    MALI_ASSERT(num_nodes == numNodes);  // tag must match the runtime field
    ScalarT res0[num_nodes] = {};
    ScalarT res1[num_nodes] = {};

    for (std::size_t qp = 0; qp < numQPs; ++qp) {
      ScalarT mu = muLandIce(cell, qp);
      ScalarT strs00 =
          2.0 * mu * (2.0 * Ugrad(cell, qp, 0, 0) + Ugrad(cell, qp, 1, 1));
      ScalarT strs11 =
          2.0 * mu * (2.0 * Ugrad(cell, qp, 1, 1) + Ugrad(cell, qp, 0, 0));
      ScalarT strs01 = mu * (Ugrad(cell, qp, 1, 0) + Ugrad(cell, qp, 0, 1));
      ScalarT strs02 = mu * Ugrad(cell, qp, 0, 2);
      ScalarT strs12 = mu * Ugrad(cell, qp, 1, 2);
      ScalarT frc0 = force(cell, qp, 0);
      ScalarT frc1 = force(cell, qp, 1);
      for (std::size_t node = 0; node < num_nodes; ++node) {
        res0[node] += strs00 * wGradBF(cell, node, qp, 0) +
                      strs01 * wGradBF(cell, node, qp, 1) +
                      strs02 * wGradBF(cell, node, qp, 2) +
                      frc0 * wBF(cell, node, qp);
        res1[node] += strs01 * wGradBF(cell, node, qp, 0) +
                      strs11 * wGradBF(cell, node, qp, 1) +
                      strs12 * wGradBF(cell, node, qp, 2) +
                      frc1 * wBF(cell, node, qp);
      }
    }

    for (std::size_t node = 0; node < num_nodes; ++node) {
      Residual(cell, node, 0) = res0[node];
      Residual(cell, node, 1) = res1[node];
    }
  }

  // --------------------------------------------------------------------
  // ABLATION: loop optimizations only (compile-time bounds, hoisted branch;
  // loops stay separate and accumulation stays global).
  // --------------------------------------------------------------------
  template <int NumNodes>
  MALI_KERNEL_FUNCTION void operator()(
      const LandIce_3D_LoopOptOnly_Tag<NumNodes>& /*tag*/,
      const int& cell) const {
    static constexpr std::size_t num_nodes =
        LandIce_3D_LoopOptOnly_Tag<NumNodes>::num_nodes;
    MALI_ASSERT(num_nodes == numNodes);  // tag must match the runtime field
    for (std::size_t node = 0; node < num_nodes; ++node) {
      Residual(cell, node, 0) = ScalarT(0.);
      Residual(cell, node, 1) = ScalarT(0.);
    }
    for (std::size_t qp = 0; qp < numQPs; ++qp) {
      ScalarT mu = muLandIce(cell, qp);
      ScalarT strs00 =
          2.0 * mu * (2.0 * Ugrad(cell, qp, 0, 0) + Ugrad(cell, qp, 1, 1));
      ScalarT strs11 =
          2.0 * mu * (2.0 * Ugrad(cell, qp, 1, 1) + Ugrad(cell, qp, 0, 0));
      ScalarT strs01 = mu * (Ugrad(cell, qp, 1, 0) + Ugrad(cell, qp, 0, 1));
      ScalarT strs02 = mu * Ugrad(cell, qp, 0, 2);
      ScalarT strs12 = mu * Ugrad(cell, qp, 1, 2);
      for (std::size_t node = 0; node < num_nodes; ++node) {
        Residual(cell, node, 0) += strs00 * wGradBF(cell, node, qp, 0) +
                                   strs01 * wGradBF(cell, node, qp, 1) +
                                   strs02 * wGradBF(cell, node, qp, 2);
        Residual(cell, node, 1) += strs01 * wGradBF(cell, node, qp, 0) +
                                   strs11 * wGradBF(cell, node, qp, 1) +
                                   strs12 * wGradBF(cell, node, qp, 2);
      }
    }
    for (std::size_t qp = 0; qp < numQPs; ++qp) {
      ScalarT frc0 = force(cell, qp, 0);
      ScalarT frc1 = force(cell, qp, 1);
      for (std::size_t node = 0; node < num_nodes; ++node) {
        Residual(cell, node, 0) += frc0 * wBF(cell, node, qp);
        Residual(cell, node, 1) += frc1 * wBF(cell, node, qp);
      }
    }
  }

  // --------------------------------------------------------------------
  // ABLATION: loop fusion only (one qp loop including the force term, but
  // runtime bounds, in-kernel branch, and global accumulation).
  // --------------------------------------------------------------------
  MALI_KERNEL_FUNCTION
  void operator()(const LandIce_3D_FusedOnly_Tag& /*tag*/,
                  const int& cell) const {
    for (unsigned int node = 0; node < numNodes; ++node) {
      Residual(cell, node, 0) = ScalarT(0.);
      Residual(cell, node, 1) = ScalarT(0.);
    }
    if (cond) {
    } else {
      for (unsigned int qp = 0; qp < numQPs; ++qp) {
        ScalarT mu = muLandIce(cell, qp);
        ScalarT strs00 =
            2.0 * mu * (2.0 * Ugrad(cell, qp, 0, 0) + Ugrad(cell, qp, 1, 1));
        ScalarT strs11 =
            2.0 * mu * (2.0 * Ugrad(cell, qp, 1, 1) + Ugrad(cell, qp, 0, 0));
        ScalarT strs01 = mu * (Ugrad(cell, qp, 1, 0) + Ugrad(cell, qp, 0, 1));
        ScalarT strs02 = mu * Ugrad(cell, qp, 0, 2);
        ScalarT strs12 = mu * Ugrad(cell, qp, 1, 2);
        ScalarT frc0 = force(cell, qp, 0);
        ScalarT frc1 = force(cell, qp, 1);
        for (unsigned int node = 0; node < numNodes; ++node) {
          Residual(cell, node, 0) += strs00 * wGradBF(cell, node, qp, 0) +
                                     strs01 * wGradBF(cell, node, qp, 1) +
                                     strs02 * wGradBF(cell, node, qp, 2) +
                                     frc0 * wBF(cell, node, qp);
          Residual(cell, node, 1) += strs01 * wGradBF(cell, node, qp, 0) +
                                     strs11 * wGradBF(cell, node, qp, 1) +
                                     strs12 * wGradBF(cell, node, qp, 2) +
                                     frc1 * wBF(cell, node, qp);
        }
      }
    }
  }

  // --------------------------------------------------------------------
  // ABLATION: local accumulation only (local arrays written back once, but
  // runtime bounds, in-kernel branch, and separate stress/force loops).
  // --------------------------------------------------------------------
  MALI_KERNEL_FUNCTION
  void operator()(const LandIce_3D_LocalAccumOnly_Tag& /*tag*/,
                  const int& cell) const {
    constexpr unsigned int kMaxNodes = 8;
    // `numNodes` is a runtime field but the local accumulators are fixed at
    // kMaxNodes: without this guard a larger element (e.g. a higher-order
    // hex) would silently overrun the stack arrays.  The other ablations
    // carry the node count in their tag type, so only this variant needs a
    // runtime check (regression-tested in test_kernels.cpp).
    MALI_CHECK_MSG(numNodes <= kMaxNodes,
                   "LandIce_3D_LocalAccumOnly_Tag supports at most 8 nodes");
    ScalarT res0[kMaxNodes] = {};
    ScalarT res1[kMaxNodes] = {};
    if (cond) {
    } else {
      for (unsigned int qp = 0; qp < numQPs; ++qp) {
        ScalarT mu = muLandIce(cell, qp);
        ScalarT strs00 =
            2.0 * mu * (2.0 * Ugrad(cell, qp, 0, 0) + Ugrad(cell, qp, 1, 1));
        ScalarT strs11 =
            2.0 * mu * (2.0 * Ugrad(cell, qp, 1, 1) + Ugrad(cell, qp, 0, 0));
        ScalarT strs01 = mu * (Ugrad(cell, qp, 1, 0) + Ugrad(cell, qp, 0, 1));
        ScalarT strs02 = mu * Ugrad(cell, qp, 0, 2);
        ScalarT strs12 = mu * Ugrad(cell, qp, 1, 2);
        for (unsigned int node = 0; node < numNodes; ++node) {
          res0[node] += strs00 * wGradBF(cell, node, qp, 0) +
                        strs01 * wGradBF(cell, node, qp, 1) +
                        strs02 * wGradBF(cell, node, qp, 2);
          res1[node] += strs01 * wGradBF(cell, node, qp, 0) +
                        strs11 * wGradBF(cell, node, qp, 1) +
                        strs12 * wGradBF(cell, node, qp, 2);
        }
      }
    }
    for (unsigned int qp = 0; qp < numQPs; ++qp) {
      ScalarT frc0 = force(cell, qp, 0);
      ScalarT frc1 = force(cell, qp, 1);
      for (unsigned int node = 0; node < numNodes; ++node) {
        res0[node] += frc0 * wBF(cell, node, qp);
        res1[node] += frc1 * wBF(cell, node, qp);
      }
    }
    for (unsigned int node = 0; node < numNodes; ++node) {
      Residual(cell, node, 0) = res0[node];
      Residual(cell, node, 1) = res1[node];
    }
  }
};

}  // namespace mali::physics
