#pragma once
// StokesFOProblem — the full first-order Stokes velocity solve: builds the
// synthetic Antarctica mesh and FE arrays, runs the evaluator chain
// (gather → Ugrad → viscosity → StokesFOResid variant → basal friction →
// scatter), and implements the NonlinearProblem interface for the damped
// Newton solver.  This is the MiniMALI analog of Albany's LandIce problem.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fem/dof_map.hpp"
#include "fem/workset.hpp"
#include "linalg/crs_matrix.hpp"
#include "linalg/linear_operator.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "mesh/coloring.hpp"
#include "mesh/extruded_mesh.hpp"
#include "mesh/ice_geometry.hpp"
#include "nonlinear/newton.hpp"
#include "physics/constants.hpp"
#include "physics/eval_types.hpp"
#include "physics/flow_law.hpp"
#include "physics/manufactured.hpp"
#include "physics/scatter.hpp"
#include "portability/timer.hpp"
#include "portability/view.hpp"

namespace mali::physics {

enum class KernelVariant {
  kBaseline,
  kOptimized,
  kLoopOptOnly,
  kFusedOnly,
  kLocalAccumOnly,
};

[[nodiscard]] const char* to_string(KernelVariant v);

struct StokesFOConfig {
  mesh::IceGeometryConfig geometry{};
  double dx_m = 16.0e3;  ///< the paper's 16 km resolution
  int n_layers = 20;     ///< the paper's 20 extrusion layers
  PhysicalConstants constants{};
  KernelVariant variant = KernelVariant::kOptimized;
  /// Cells per workset for chunked assembly (0 = one workset covering the
  /// whole mesh).  Albany assembles in worksets to bound device memory; the
  /// field buffers here are allocated at the workset size, so the 17-wide
  /// SFad arrays of the Jacobian evaluation shrink proportionally.
  std::size_t workset_size = 0;
  /// Temperature-dependent Paterson–Budd flow factor instead of uniform A.
  bool thermal_viscosity = false;
  /// Basal sliding law (the paper's test uses the linear default).
  SlidingConfig sliding{};
  /// Element→global scatter strategy (see physics/scatter.hpp).  The colored
  /// default parallelizes the assembly epilogue while keeping a fixed,
  /// thread-count-independent summation order; results differ from kSerial
  /// only by FP reassociation (pinned to ≤1e-13 relative by the tests).
  ScatterMode scatter = ScatterMode::kColored;
  /// Manufactured-solution verification mode: constant viscosity, analytic
  /// forcing, the exact field imposed on every boundary node, no friction.
  MmsConfig mms{};
  /// Jacobian representation for the Newton solve: assembled CRS (default)
  /// or the matrix-free per-element tangent apply (no global matrix).
  linalg::JacobianMode jacobian = linalg::JacobianMode::kAssembled;
  /// SIMD element-batch width for the double-valued fused kernels (residual
  /// chain and matrix-free tangent): 1 = scalar reference path (default, so
  /// stored references and bit-pinned tests are undisturbed), 2/4/8 = batch
  /// that many cells per pack, 0 = auto (pk::kSimdNativeWidth).  The SFad
  /// assembled-Jacobian chain always runs scalar.
  int simd_width = 1;
};

/// Parses a `--simd` CLI value: "auto" → 0, "off" → 1, else a width in
/// {1, 2, 4, 8}.  Throws mali::Error on anything else.
[[nodiscard]] int simd_width_from_string(const std::string& s);

/// Per-evaluation-type field storage (double for Residual, SFad<double,16>
/// for Jacobian), allocated lazily — the Jacobian set is ~17x larger.
template <class ScalarT>
struct FieldSet {
  pk::View<ScalarT, 3> UNodal;    ///< (C, N, 2)
  pk::View<ScalarT, 4> Ugrad;     ///< (C, Q, 2, 3)
  pk::View<ScalarT, 2> mu;        ///< (C, Q)
  pk::View<ScalarT, 3> force;     ///< (C, Q, 2)
  pk::View<ScalarT, 3> Residual;  ///< (C, N, 2)
  bool allocated = false;

  void allocate(std::size_t C, int N, int Q);
};

class StokesFOProblem final : public nonlinear::NonlinearProblem {
 public:
  explicit StokesFOProblem(StokesFOConfig cfg);

  // ---- NonlinearProblem ----
  [[nodiscard]] std::size_t n_dofs() const override {
    return dof_map_->n_dofs();
  }
  void residual(const std::vector<double>& U, std::vector<double>& F) override;
  void residual_and_jacobian(const std::vector<double>& U,
                             std::vector<double>& F,
                             linalg::CrsMatrix& J) override;
  [[nodiscard]] linalg::CrsMatrix create_matrix() const override;
  /// Matrix-free Jacobian operator linearized at U (see
  /// physics/matrix_free_operator.hpp); used by the JFNK Newton path.
  [[nodiscard]] std::unique_ptr<linalg::LinearOperator> jacobian_operator(
      const std::vector<double>& U) override;

  // ---- matrix-free Jacobian ----

  /// y = J(U) x via the fused per-element SFad<1> tangent kernel — no
  /// global matrix is formed.  Exec selects the pk execution space for the
  /// tangent evaluation and the scatter (the configured ScatterMode's
  /// colored/atomic machinery is reused verbatim).  Dirichlet rows act as
  /// y[d] = dirichlet_scale() * x[d], matching the assembled scaled
  /// identity rows.  x and y must be distinct.
  template <class Exec = pk::DefaultExec>
  void apply_jacobian(const std::vector<double>& U,
                      const std::vector<double>& x, std::vector<double>& y);

  /// Per-node 2x2 diagonal blocks of J(U) (row-major, n_nodes blocks →
  /// 2 * n_dofs doubles), extracted from the SFad<16> element Jacobian
  /// without assembling the global matrix.  Also refreshes the Dirichlet
  /// row scale from the mean interior diagonal, exactly as the assembled
  /// path does, and writes scale * I into Dirichlet-node blocks.
  [[nodiscard]] std::vector<double> jacobian_block_diagonal(
      const std::vector<double>& U);

  /// Scale applied to Dirichlet rows (see dirichlet_scale_ below).
  [[nodiscard]] double dirichlet_scale() const noexcept {
    return dirichlet_scale_;
  }

  // ---- accessors ----
  [[nodiscard]] const StokesFOConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const mesh::IceGeometry& geometry() const noexcept {
    return geom_;
  }
  [[nodiscard]] const mesh::ExtrudedMesh& mesh() const noexcept {
    return *mesh_;
  }
  [[nodiscard]] const fem::GeometryWorkset& workset() const noexcept {
    return ws_;
  }
  [[nodiscard]] const fem::DofMap& dof_map() const noexcept {
    return *dof_map_;
  }
  [[nodiscard]] KernelVariant variant() const noexcept { return cfg_.variant; }
  void set_variant(KernelVariant v) noexcept { cfg_.variant = v; }
  [[nodiscard]] ScatterMode scatter_mode() const noexcept {
    return cfg_.scatter;
  }
  void set_scatter_mode(ScatterMode m) noexcept { cfg_.scatter = m; }

  /// Node-sharing cell coloring of workset w (computed once at construction;
  /// used by the colored scatter and exposed for tests/benches).
  [[nodiscard]] const mesh::CellColoring& workset_coloring(
      std::size_t w) const {
    return workset_ranges_.at(w).coloring;
  }
  [[nodiscard]] std::size_t n_worksets() const noexcept {
    return workset_ranges_.size();
  }

  /// Accumulated per-phase assembly timings ("evaluate", "kernel",
  /// "scatter"), reported via perf::phase_table.
  [[nodiscard]] const pk::TimerRegistry& phase_timers() const noexcept {
    return phase_timers_;
  }
  void reset_phase_timers() { phase_timers_.clear(); }

  /// Extrusion structure for the semicoarsening AMG preconditioner.
  [[nodiscard]] linalg::ExtrusionInfo extrusion_info() const;

  /// Runs the evaluator chain up to (but not including) StokesFOResid for
  /// the given solution — used to stage realistic kernel inputs for the
  /// benches.  EvalT is ResidualEval or JacobianEval.
  template <class EvalT>
  FieldSet<typename EvalT::ScalarT>& evaluate_fields(
      const std::vector<double>& U);

  /// Runs only the StokesFOResid kernel variant over all cells on the
  /// currently staged fields (CPU wall-clock benchmarking).
  template <class EvalT>
  void run_resid_kernel(KernelVariant v);

  /// Mean surface speed (m/yr) over non-Dirichlet nodes — the quantity the
  /// paper's acceptance test compares against a stored reference.
  [[nodiscard]] double mean_velocity(const std::vector<double>& U) const;

  /// Nodal L2 error against the manufactured solution (MMS mode only).
  [[nodiscard]] double mms_error(const std::vector<double>& U) const;

  /// The manufactured solution sampled at every node (MMS mode only).
  [[nodiscard]] std::vector<double> mms_exact() const;

  /// Sets the strain-rate regularization (eps_reg^2) — the continuation
  /// parameter Albany's homotopy uses to tame the Glen's-law nonlinearity.
  void set_regularization(double eps_reg2) noexcept {
    cfg_.constants.eps_reg2 = eps_reg2;
  }

  /// Replaces the physical-constants block (Glen A, exponent n, eps_reg2,
  /// rho, g) read by every subsequent assembly — the ensemble engine's
  /// parameter-sweep hook.  Mesh, geometry, partition, and coloring are
  /// untouched, which is what makes setup sharing across members valid.
  void set_constants(const PhysicalConstants& c) noexcept {
    cfg_.constants = c;
  }

  /// Scales basal friction uniformly: beta(x) = scale * beta0(x), where
  /// beta0 is the construction-time field.  Pure in `scale` — the staged
  /// values are recomputed from pristine copies, never rescaled in place,
  /// so any call history ending at the same scale is bit-identical.
  void set_basal_friction_scale(double scale);
  [[nodiscard]] double basal_friction_scale() const noexcept {
    return basal_friction_scale_;
  }

  /// Replaces the flow-rate factor field with A(T) evaluated from the given
  /// temperature function T(x, y, sigma) — the hook a thermal solver uses
  /// to couple into the viscosity (see examples/thermal_coupling).
  void set_temperature_field(
      const std::function<double(double, double, double)>& temperature);

  /// Physically-motivated initial guess (shallow-ice-like surface speeds),
  /// used to stage realistic kernel inputs without a full solve.
  [[nodiscard]] std::vector<double> analytic_initial_guess() const;

  // ---- element-data accessors for the distributed subdomain staging ----
  // (dist::Subdomain copies per-cell slices of these into compact per-rank
  // arrays; see src/dist/subdomain.hpp.)
  [[nodiscard]] const pk::View<double, 3>& force_passive() const noexcept {
    return force_passive_;
  }
  [[nodiscard]] const pk::View<double, 2>& flow_factor() const noexcept {
    return flow_factor_;  // unallocated unless thermal_viscosity
  }
  [[nodiscard]] const pk::View<double, 2>& face_basis() const noexcept {
    return face_BF_;
  }
  [[nodiscard]] const pk::View<double, 3>& ref_grad() const noexcept {
    return ref_grad_;
  }
  [[nodiscard]] const pk::View<double, 2>& ref_val() const noexcept {
    return ref_val_;
  }
  [[nodiscard]] const pk::View<double, 1>& qp_weights() const noexcept {
    return qp_weights_;
  }

  /// The SIMD batch width the double-valued fused kernels actually run at:
  /// cfg_.simd_width with 0 ("auto") resolved to pk::kSimdNativeWidth.
  [[nodiscard]] int resolved_simd_width() const noexcept;
  [[nodiscard]] const std::vector<double>& dirichlet_values() const noexcept {
    return dirichlet_values_;
  }

 private:
  template <class EvalT>
  void assemble(const std::vector<double>& U, std::vector<double>& F,
                linalg::CrsMatrix* J);

  /// One chunk of the assembly: cells [c0, c0 + count).
  template <class EvalT>
  void assemble_workset(std::size_t w, const pk::View<double, 1>& Uview,
                        std::vector<double>& F, linalg::CrsMatrix* J);

  /// Runs the element chain (gather → Ugrad → viscosity → force →
  /// StokesFOResid → basal friction) for workset w, leaving the element
  /// residuals staged in fields<ScalarT>().Residual — the pre-scatter part
  /// of assemble_workset, shared with the block-diagonal extraction.
  template <class EvalT>
  void evaluate_workset(std::size_t w, const pk::View<double, 1>& Uview);

  /// Per-workset cell range plus the basal faces owned by the range.
  struct WorksetRange {
    std::size_t c0 = 0;
    std::size_t count = 0;
    pk::View<std::size_t, 1> face_cell_local;  ///< (F_w) cell - c0
    pk::View<double, 3> face_wBF;              ///< (F_w, 4, Qf)
    pk::View<double, 1> face_beta;             ///< (F_w)
    /// Conflict-free cell coloring of [c0, c0 + count) for parallel scatter.
    mesh::CellColoring coloring;
  };
  std::vector<WorksetRange> workset_ranges_;

  StokesFOConfig cfg_;
  mesh::IceGeometry geom_;
  std::shared_ptr<const mesh::QuadGrid> base_;
  std::unique_ptr<mesh::ExtrudedMesh> mesh_;
  std::unique_ptr<fem::DofMap> dof_map_;
  fem::GeometryWorkset ws_;
  pk::View<double, 3> force_passive_;  ///< (C, Q, 2) rho*g*grad(s) at qps
  pk::View<double, 2> face_BF_;        ///< (4, Qf) reference face basis
  pk::View<double, 2> flow_factor_;    ///< (C, Q) A(T), thermal mode only

  // Reference element data for the matrix-free tangent kernel and the
  // batched fused chains, which recompute cell geometry in registers from
  // nodal coords (built once).
  pk::View<double, 3> ref_grad_;    ///< (Q, N, 3) dN_k/d(xi,eta,zeta)
  pk::View<double, 2> ref_val_;     ///< (Q, N) N_k at the qps
  pk::View<double, 1> qp_weights_;  ///< (Q)
  pk::View<double, 3> tangent_;     ///< (ws, N, 2) per-cell J_e x_e scratch

  FieldSet<ResidualEval::ScalarT> res_fields_;
  FieldSet<JacobianEval::ScalarT> jac_fields_;

  /// Scale applied to Dirichlet rows/residual entries, updated from the
  /// mean interior diagonal at each Jacobian assembly (keeps the system
  /// well-conditioned for the multigrid; the solution is unaffected by the
  /// row scaling).
  double dirichlet_scale_ = 1.0;
  /// Imposed Dirichlet values (zero except in MMS mode).
  std::vector<double> dirichlet_values_;
  /// Pristine basal friction (construction-time ws_.basal_beta) and the
  /// currently applied uniform scale (set_basal_friction_scale).
  std::vector<double> beta0_global_;
  double basal_friction_scale_ = 1.0;
  /// Per-phase assembly wall-clock (evaluate / kernel / scatter).
  pk::TimerRegistry phase_timers_;

  template <class ScalarT>
  FieldSet<ScalarT>& fields();
};

}  // namespace mali::physics
