#pragma once
// MatrixFreeStokesOperator — the Blatter–Pattyn Jacobian as a
// linalg::LinearOperator whose apply runs the fused per-element tangent
// kernel (physics/stokes_jacobian_apply.hpp) instead of streaming an
// assembled CRS matrix.  `linearize(U)` freezes the linearization state and
// extracts the per-node 2x2 block diagonal (via the SFad<16> element
// Jacobian) so Jacobi / block-Jacobi preconditioners can be built without
// ever forming the global matrix; Dirichlet rows act as
// y[d] = dirichlet_scale * x[d], identically to the assembled path's
// scaled identity rows.
//
// The apply honors StokesFOConfig::simd_width: when the problem is
// configured for element batching (--simd on the CLI) the delegated
// apply_jacobian dispatches the SIMD-batched tangent
// (physics/stokes_jacobian_apply_batched.hpp) over width-W cell packs;
// width 1 runs the scalar kernel unchanged.  Batched and scalar applies
// agree to <= 1e-14 per dof (asserted in tests/test_simd_batch.cpp), so
// Krylov trajectories are preconditioner-equivalent across widths.

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/linear_operator.hpp"

namespace mali::physics {

class StokesFOProblem;

class MatrixFreeStokesOperator final : public linalg::LinearOperator {
 public:
  /// The problem must outlive the operator.  Call linearize() before apply.
  explicit MatrixFreeStokesOperator(StokesFOProblem& problem);

  /// Freezes the linearization state U and extracts the block diagonal
  /// (which also refreshes the problem's Dirichlet row scale).
  void linearize(const std::vector<double>& U);

  [[nodiscard]] std::size_t rows() const override;
  [[nodiscard]] std::size_t cols() const override;

  /// y = J(U) x via the per-element SFad<1> tangent; no global matrix.
  void apply(const std::vector<double>& x,
             std::vector<double>& y) const override;

  bool diagonal(std::vector<double>& d) const override;
  bool block_diagonal(int bs, std::vector<double>& blocks) const override;

  [[nodiscard]] const linalg::CrsMatrix* matrix() const override {
    return nullptr;
  }
  [[nodiscard]] const char* name() const override { return "matrix-free"; }

  /// The frozen linearization state.
  [[nodiscard]] const std::vector<double>& state() const noexcept {
    return U_;
  }

 private:
  StokesFOProblem* problem_;
  std::vector<double> U_;       ///< linearization state
  std::vector<double> blocks_;  ///< per-node 2x2 diagonal blocks (row-major)
  bool linearized_ = false;
};

}  // namespace mali::physics
