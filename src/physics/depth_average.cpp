#include "physics/depth_average.hpp"

#include "portability/common.hpp"

namespace mali::physics {

void depth_averaged_velocity(const mesh::ExtrudedMesh& mesh,
                             const std::vector<double>& U,
                             std::vector<double>& ubar,
                             std::vector<double>& vbar) {
  MALI_CHECK_MSG(U.size() == 2 * mesh.n_nodes(),
                 "depth_averaged_velocity: U must hold 2 dofs per mesh node");
  const std::size_t n_cols = mesh.base().n_nodes();
  const std::size_t nl = mesh.levels();
  MALI_CHECK(nl >= 2);
  ubar.assign(n_cols, 0.0);
  vbar.assign(n_cols, 0.0);
  for (std::size_t col = 0; col < n_cols; ++col) {
    double su = 0.0, sv = 0.0;
    for (std::size_t lev = 0; lev < nl; ++lev) {
      const std::size_t n = mesh.node_id(col, lev);
      const double w = (lev == 0 || lev + 1 == nl) ? 0.5 : 1.0;
      su += w * U[2 * n];
      sv += w * U[2 * n + 1];
    }
    ubar[col] = su / static_cast<double>(nl - 1);
    vbar[col] = sv / static_cast<double>(nl - 1);
  }
}

}  // namespace mali::physics
