#pragma once
// StokesFOTangentBatched — SIMD element-batched form of the fused SFad<1>
// matrix-free tangent.  The scalar StokesFOTangent already recomputes the
// cell geometry in registers; the batched kernel keeps that trade and adds
// two things:
//
//   * every lane-variable becomes a width-W pack: `FadPack` is the batched
//     SFad<1> — a {val, dot} pair of pk::simd packs whose operators apply
//     the scalar SFad derivative formulas lane-wise, so W cells propagate
//     their directional derivatives together;
//   * every sum mirrors the scalar kernel's association term by term (same
//     J accumulation order, same cofactor expansion, same contraction
//     orders), so a lane's arithmetic is StokesFOTangent's arithmetic —
//     deliberate: the per-dof accumulation cancels heavily on real ice
//     cells and any reassociation would amplify ulp noise past the
//     equivalence contract.
//
// The value part of the arithmetic is carried alongside the derivative
// because Glen's-law viscosity needs it; only the derivative reaches the
// Tangent view, exactly as in the scalar kernel (the passive force has zero
// tangent).  Equivalence contract vs the scalar tangent: <= 1e-14 per dof
// (FMA contraction may differ between instantiations), asserted in
// tests/test_simd_batch.cpp.

#include <cmath>
#include <cstddef>

#include "portability/common.hpp"
#include "portability/simd.hpp"
#include "portability/view.hpp"

namespace mali::physics {

/// Batched SFad<double, 1>: W values and W directional derivatives.  The
/// operator set is the subset the tangent kernel needs, each the lane-wise
/// transcription of ad::SFad's scalar formula.
template <int W>
struct FadPack {
  using Pack = pk::simd<double, W>;

  Pack val;
  Pack dot;

  [[nodiscard]] MALI_INLINE static FadPack zero() {
    return {Pack::zero(), Pack::zero()};
  }
  [[nodiscard]] MALI_INLINE static FadPack constant(double c) {
    return {Pack::broadcast(c), Pack::zero()};
  }

  MALI_INLINE FadPack& operator+=(const FadPack& o) {
    val += o.val;
    dot += o.dot;
    return *this;
  }

  friend MALI_INLINE FadPack operator+(FadPack a, const FadPack& b) {
    return a += b;
  }
  friend MALI_INLINE FadPack operator+(const FadPack& a, double b) {
    return {a.val + b, a.dot};
  }
  friend MALI_INLINE FadPack operator*(const FadPack& a, const FadPack& b) {
    return {a.val * b.val, a.dot * b.val + a.val * b.dot};
  }
  friend MALI_INLINE FadPack operator*(double a, const FadPack& b) {
    return {a * b.val, a * b.dot};
  }
  friend MALI_INLINE FadPack operator*(const Pack& a, const FadPack& b) {
    return {a * b.val, a * b.dot};
  }
  friend MALI_INLINE FadPack operator*(const FadPack& a, const Pack& b) {
    return {a.val * b, a.dot * b};
  }

  /// d/dx pow(a, e) = e * a^(e-1) * a', as in ad::SFad's pow.
  friend MALI_INLINE FadPack pow(const FadPack& a, double e) {
    FadPack r;
    r.val = pk::lane_pow(a.val, e);
    const Pack scale = e * pk::lane_pow(a.val, e - 1.0);
    r.dot = scale * a.dot;
    return r;
  }
};

/// Batched fused per-cell tangent: Tangent(cell, node, comp) =
/// (J_e · x_e)(node, comp) for W cells per dispatch.  Same inputs as the
/// scalar StokesFOTangent; batches with dead lanes (ragged tail) compute on
/// zero-filled lanes and mask the stores.
template <int W>
class StokesFOTangentBatched {
 public:
  using Pack = pk::simd<double, W>;
  using Fad = FadPack<W>;
  static constexpr int kMaxNodes = 8;
  static constexpr int width = W;

  // Cell-range inputs (windowed to the workset by the caller).
  pk::View<std::size_t, 2> cell_nodes;  ///< (C, N)
  pk::View<double, 3> coords;           ///< (C, N, 3)
  pk::View<double, 2> flow_factor;      ///< (C, Q) optional A(T) field
  // Global vectors.
  pk::View<double, 1> U;  ///< linearization state (2 dofs/node)
  pk::View<double, 1> X;  ///< direction
  // Reference element data (shared across cells; stays in cache).
  pk::View<double, 3> ref_grad;   ///< (Q, N, 3)
  pk::View<double, 1> qp_weight;  ///< (Q)
  // Output.
  pk::View<double, 3> Tangent;  ///< (C, N, 2)

  double glen_A = 1.0e-16;
  double glen_n = 3.0;
  double eps_reg2 = 1.0e-10;
  double constant_mu = 0.0;  ///< > 0: constant-viscosity bypass
  int numNodes = 8;
  int numQPs = 8;

  /// Hoists the loop-invariant Glen's-law constants (see
  /// FusedStokesChain::prepare for the bitwise contract).
  void prepare() {
    coeff_ = 0.5 * std::pow(glen_A, -1.0 / glen_n);
    expo_ = (1.0 - glen_n) / (2.0 * glen_n);
  }

  void operator()(const pk::SimdBatch& b) const {
    MALI_CHECK_MSG(numNodes <= kMaxNodes,
                   "StokesFOTangentBatched supports at most 8 nodes");
    if (b.full()) {
      compute<true>(b.begin, W);
    } else {
      compute<false>(b.begin, b.n_valid);
    }
  }

 private:
  template <bool Full>
  MALI_INLINE Pack load(const double& p, int nv) const {
    if constexpr (Full) {
      (void)nv;
      return Pack::load(&p);
    } else {
      return Pack::load_n(&p, nv);
    }
  }

  template <bool Full>
  void compute(std::size_t c0, int nv) const {
    const auto c = static_cast<int>(c0);
    const bool thermal = flow_factor.allocated();
    const int N = numNodes;
    const int Q = numQPs;

    // Gather: the dof indirection is per-lane scalar (gather hardware is
    // not assumed); coordinates are contiguous pack loads.
    Fad Ul[kMaxNodes][2];
    Pack xn[kMaxNodes][3];
    for (int k = 0; k < N; ++k) {
      for (int comp = 0; comp < 2; ++comp) {
        Fad& f = Ul[k][comp];
        f = Fad::zero();
        for (int l = 0; l < nv; ++l) {
          const std::size_t gnode = cell_nodes(c + l, k);
          const std::size_t dof = 2 * gnode + static_cast<std::size_t>(comp);
          f.val[l] = U(dof);
          f.dot[l] = X(dof);
        }
      }
      for (int d = 0; d < 3; ++d) xn[k][d] = load<Full>(coords(c, k, d), nv);
    }

    Pack res0[kMaxNodes];
    Pack res1[kMaxNodes];
    for (int k = 0; k < N; ++k) {
      res0[k] = Pack::zero();
      res1[k] = Pack::zero();
    }

    for (int qp = 0; qp < Q; ++qp) {
      // ---- in-register geometry, mirroring StokesFOTangent exactly ----
      Pack J[3][3];
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) J[i][j] = Pack::zero();
      }
      for (int k = 0; k < N; ++k) {
        for (int i = 0; i < 3; ++i) {
          for (int j = 0; j < 3; ++j) {
            J[i][j] += xn[k][i] * ref_grad(qp, k, j);
          }
        }
      }

      // Cofactor inverse: the same expansion, in the same order, as
      // detail::tangent_invert3 (and fem/cell_geometry.cpp's invert3).
      const Pack det =
          J[0][0] * (J[1][1] * J[2][2] - J[1][2] * J[2][1]) -
          J[0][1] * (J[1][0] * J[2][2] - J[1][2] * J[2][0]) +
          J[0][2] * (J[1][0] * J[2][1] - J[1][1] * J[2][0]);
      const Pack inv_det = 1.0 / det;
      Pack inv[3][3];
      inv[0][0] = (J[1][1] * J[2][2] - J[1][2] * J[2][1]) * inv_det;
      inv[0][1] = (J[0][2] * J[2][1] - J[0][1] * J[2][2]) * inv_det;
      inv[0][2] = (J[0][1] * J[1][2] - J[0][2] * J[1][1]) * inv_det;
      inv[1][0] = (J[1][2] * J[2][0] - J[1][0] * J[2][2]) * inv_det;
      inv[1][1] = (J[0][0] * J[2][2] - J[0][2] * J[2][0]) * inv_det;
      inv[1][2] = (J[0][2] * J[1][0] - J[0][0] * J[1][2]) * inv_det;
      inv[2][0] = (J[1][0] * J[2][1] - J[1][1] * J[2][0]) * inv_det;
      inv[2][1] = (J[0][1] * J[2][0] - J[0][0] * J[2][1]) * inv_det;
      inv[2][2] = (J[0][0] * J[1][1] - J[0][1] * J[1][0]) * inv_det;
      const Pack w = qp_weight(qp) * det;

      // Physical basis gradients g[k][d] == gradBF(c, k, qp, d), in the
      // scalar kernel's order (all nodes before the velocity gradient).
      Pack g[kMaxNodes][3];
      for (int k = 0; k < N; ++k) {
        for (int d = 0; d < 3; ++d) {
          Pack s = Pack::zero();
          for (int j = 0; j < 3; ++j) s += inv[j][d] * ref_grad(qp, k, j);
          g[k][d] = s;
        }
      }

      // Velocity gradient (active), same contraction order as the scalar
      // tangent: comp-major, d, then the node sum innermost.
      Fad Ugrad[2][3];
      for (int comp = 0; comp < 2; ++comp) {
        for (int d = 0; d < 3; ++d) {
          Fad acc = Fad::zero();
          for (int k = 0; k < N; ++k) acc += Ul[k][comp] * g[k][d];
          Ugrad[comp][d] = acc;
        }
      }

      Fad mu;
      if (constant_mu > 0.0) {
        mu = Fad::constant(constant_mu);
      } else {
        const Fad eps2 =
            Ugrad[0][0] * Ugrad[0][0] + Ugrad[1][1] * Ugrad[1][1] +
            Ugrad[0][0] * Ugrad[1][1] +
            0.25 * ((Ugrad[0][1] + Ugrad[1][0]) * (Ugrad[0][1] + Ugrad[1][0]) +
                    Ugrad[0][2] * Ugrad[0][2] + Ugrad[1][2] * Ugrad[1][2]);
        const Fad powed = pow(eps2 + eps_reg2, expo_);
        if (thermal) {
          const Pack ff = load<Full>(flow_factor(c, qp), nv);
          const Pack coeff = 0.5 * pk::lane_pow(ff, -1.0 / glen_n);
          mu = coeff * powed;
        } else {
          mu = coeff_ * powed;
        }
      }

      const Fad strs00 = 2.0 * mu * (2.0 * Ugrad[0][0] + Ugrad[1][1]);
      const Fad strs11 = 2.0 * mu * (2.0 * Ugrad[1][1] + Ugrad[0][0]);
      const Fad strs01 = mu * (Ugrad[1][0] + Ugrad[0][1]);
      const Fad strs02 = mu * Ugrad[0][2];
      const Fad strs12 = mu * Ugrad[1][2];

      // Only the directional derivative reaches the output; wGradBF == g*w,
      // accumulated exactly as the scalar tangent does.
      for (int k = 0; k < N; ++k) {
        res0[k] += strs00.dot * (g[k][0] * w) + strs01.dot * (g[k][1] * w) +
                   strs02.dot * (g[k][2] * w);
        res1[k] += strs01.dot * (g[k][0] * w) + strs11.dot * (g[k][1] * w) +
                   strs12.dot * (g[k][2] * w);
      }
    }

    for (int k = 0; k < N; ++k) {
      if constexpr (Full) {
        res0[k].store(&Tangent(c, k, 0));
        res1[k].store(&Tangent(c, k, 1));
      } else {
        res0[k].store_n(&Tangent(c, k, 0), nv);
        res1[k].store_n(&Tangent(c, k, 1), nv);
      }
    }
  }

  double coeff_ = 0.5 * std::pow(1.0e-16, -1.0 / 3.0);
  double expo_ = (1.0 - 3.0) / (2.0 * 3.0);
};

}  // namespace mali::physics
