#pragma once
// Flow-law and sliding-law constitutive models.
//
// Glen's flow-rate factor A depends strongly on temperature; MALI uses the
// Paterson–Budd Arrhenius relation.  Basal sliding is either linear
// (tau_b = beta u, the default the paper's test uses) or a Weertman power
// law (tau_b = beta |u|^{m-1} u with m typically 1/3).

#include <cmath>

namespace mali::physics {

/// Paterson–Budd Arrhenius flow-rate factor (Pa^-3 yr^-1).
///
/// A(T) = A0 exp(-Q / (R T*)) with the standard cold/warm split at 263.15 K
/// and T* the pressure-melting-corrected temperature (we use T directly —
/// the pressure correction is below the model's fidelity).
[[nodiscard]] inline double paterson_budd_A(double temperature_K) noexcept {
  constexpr double R = 8.314;  // J/mol/K
  // Cold/warm branches; constants converted to Pa^-3 yr^-1.
  constexpr double kSecPerYear = 3.1536e7;
  if (temperature_K < 263.15) {
    constexpr double A0 = 3.985e-13 * kSecPerYear;  // Pa^-3 yr^-1
    constexpr double Q = 60.0e3;
    return A0 * std::exp(-Q / (R * temperature_K));
  }
  constexpr double A0 = 1.916e3 * kSecPerYear;
  constexpr double Q = 139.0e3;
  return A0 * std::exp(-Q / (R * temperature_K));
}

enum class SlidingLaw {
  kLinear,    ///< tau_b = beta u
  kWeertman,  ///< tau_b = beta |u|^{m-1} u
};

struct SlidingConfig {
  SlidingLaw law = SlidingLaw::kLinear;
  double weertman_m = 1.0 / 3.0;
  /// Speed regularization (m/yr)^2 keeping |u|^{m-1} finite at u = 0.
  double u_reg2 = 1.0e-4;
};

/// Effective linearized friction factor: tau_b = friction_factor(u) * u.
/// For the linear law this is beta; for Weertman it is
/// beta (|u|^2 + u_reg^2)^{(m-1)/2}, differentiable in u through the AD
/// scalar so the Jacobian picks up the full nonlinearity.
template <class ScalarT>
[[nodiscard]] ScalarT friction_factor(const SlidingConfig& cfg, double beta,
                                      const ScalarT& u, const ScalarT& v) {
  using std::pow;
  if (cfg.law == SlidingLaw::kLinear) return ScalarT(beta);
  const ScalarT speed2 = u * u + v * v + cfg.u_reg2;
  return beta * pow(speed2, 0.5 * (cfg.weertman_m - 1.0));
}

}  // namespace mali::physics
