#pragma once
// Matrix-free Blatter–Pattyn Jacobian apply:  v ↦ J(U)·v  per element, with
// no global matrix ever formed.
//
// The assembled path streams the CRS Jacobian (nnz·(value + column index)
// plus the row pointer) through GMRES every iteration — the dominant
// steady-state HBM traffic in the paper's time-oriented model.  The tangent
// kernel below replaces that stream with a fused per-cell evaluation that
// reads only the solution, the direction, the connectivity, and the nodal
// coordinates, and *recomputes* the cell geometry (Jacobian of the
// isoparametric map, its inverse, the physical basis gradients) in
// registers instead of streaming the precomputed wGradBF/wBF arrays.  That
// classic trade-FLOPs-for-bytes step is what makes the modeled
// bytes/GMRES-iteration strictly smaller than the assembled SpMV (see
// perf/data_movement.hpp).
//
// Differentiation: one-directional forward AD.  Each nodal value is seeded
// as SFad<double,1>{ U_l, dx(0) = x_l }, so after running the *same*
// residual arithmetic as the assembled chain (GatherSolution →
// VelocityGradient → ViscosityFO → StokesFOResid stress terms →
// BasalFrictionResid), the element residual's dx(0) IS the element tangent
// (J_e · x_e).  The passive body force drops out (zero derivative), and the
// geometry recomputation replicates fem/cell_geometry.cpp operation for
// operation, so the physical gradients are bitwise identical to the stored
// gradBF/wGradBF.  Agreement with the assembled SpMV is therefore limited
// only by FP reassociation of the derivative accumulation — pinned by
// tests/test_operator_equivalence.cpp (see the tolerance contract there).
//
// The per-cell tangent is written to a plain double Tangent(C, N, 2) view
// and scattered into the global result with PR 1's scatter_add (serial /
// colored / atomic — the double path, J == nullptr), reusing the coloring
// machinery verbatim.

#include <cstddef>

#include "ad/sfad.hpp"
#include "physics/flow_law.hpp"
#include "portability/common.hpp"
#include "portability/view.hpp"

namespace mali::physics {

namespace detail {

/// 3x3 inverse + determinant — the same cofactor expansion, in the same
/// order, as fem/cell_geometry.cpp's invert3 (bitwise-identical results).
MALI_INLINE double tangent_invert3(const double m[3][3], double inv[3][3]) {
  const double det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
                     m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
                     m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  const double inv_det = 1.0 / det;
  inv[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
  inv[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
  inv[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
  inv[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
  inv[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
  inv[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
  inv[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
  inv[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
  inv[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
  return det;
}

}  // namespace detail

/// Fused per-cell tangent of the interior FO Stokes residual.  Writes (does
/// not accumulate into) Tangent(cell, node, comp) = (J_e · x_e)(node, comp)
/// for the stress part of the residual; the passive force term contributes
/// nothing to the Jacobian.
struct StokesFOTangent {
  using Fad = ad::SFad<double, 1>;
  static constexpr int kMaxNodes = 8;

  // Cell-range inputs (windowed to the workset by the caller).
  pk::View<std::size_t, 2> cell_nodes;  ///< (C, N)
  pk::View<double, 3> coords;           ///< (C, N, 3)
  pk::View<double, 2> flow_factor;      ///< (C, Q) optional A(T) field
  // Global vectors.
  pk::View<double, 1> U;  ///< linearization state (2 dofs/node)
  pk::View<double, 1> X;  ///< direction
  // Reference element data (shared across cells; stays in cache).
  pk::View<double, 3> ref_grad;   ///< (Q, N, 3) dN_k/d(xi,eta,zeta)
  pk::View<double, 1> qp_weight;  ///< (Q)
  // Output.
  pk::View<double, 3> Tangent;  ///< (C, N, 2)

  double glen_A = 1.0e-16;
  double glen_n = 3.0;
  double eps_reg2 = 1.0e-10;
  /// > 0: constant-viscosity bypass (the MMS linear operator).
  double constant_mu = 0.0;
  int numNodes = 8;
  int numQPs = 8;

  MALI_KERNEL_FUNCTION void operator()(const int& cell) const {
    const int N = numNodes;
    const int Q = numQPs;
    // Always-on: the fixed-size Ul/xn/g/res arrays below would otherwise be
    // a silent stack overflow in Release for > 8-node elements.
    MALI_CHECK_MSG(N <= kMaxNodes,
                   "StokesFOTangent supports at most 8 nodes");

    // Gather state + direction: one SFad<1> per nodal dof, value = U,
    // derivative seed = x (tangent direction).
    Fad Ul[kMaxNodes][2];
    double xn[kMaxNodes][3];
    for (int k = 0; k < N; ++k) {
      const std::size_t gnode = cell_nodes(cell, k);
      for (int comp = 0; comp < 2; ++comp) {
        const std::size_t dof = 2 * gnode + static_cast<std::size_t>(comp);
        Ul[k][comp] = Fad(U(dof));
        Ul[k][comp].fastAccessDx(0) = X(dof);
      }
      for (int d = 0; d < 3; ++d) xn[k][d] = coords(cell, k, d);
    }

    const bool thermal = flow_factor.allocated();
    const double coeff0 =
        constant_mu > 0.0 ? 0.0 : 0.5 * std::pow(glen_A, -1.0 / glen_n);
    const double expo = (1.0 - glen_n) / (2.0 * glen_n);

    double res0[kMaxNodes] = {};
    double res1[kMaxNodes] = {};

    for (int qp = 0; qp < Q; ++qp) {
      // ---- in-register geometry (replicates fem/cell_geometry.cpp) ----
      double J[3][3] = {};
      for (int k = 0; k < N; ++k) {
        for (int i = 0; i < 3; ++i) {
          for (int j = 0; j < 3; ++j) {
            J[i][j] += xn[k][i] * ref_grad(qp, k, j);
          }
        }
      }
      double Jinv[3][3];
      const double det = detail::tangent_invert3(J, Jinv);
      const double w = qp_weight(qp) * det;
      // Physical basis gradients g[k][d] == gradBF(c, k, qp, d).
      double g[kMaxNodes][3];
      for (int k = 0; k < N; ++k) {
        for (int d = 0; d < 3; ++d) {
          double s = 0.0;
          for (int j = 0; j < 3; ++j) s += Jinv[j][d] * ref_grad(qp, k, j);
          g[k][d] = s;
        }
      }

      // ---- velocity gradient (same contraction as VelocityGradient) ----
      Fad Ugrad[2][3];
      for (int comp = 0; comp < 2; ++comp) {
        for (int d = 0; d < 3; ++d) {
          Fad acc(0.0);
          for (int k = 0; k < N; ++k) acc += Ul[k][comp] * g[k][d];
          Ugrad[comp][d] = acc;
        }
      }

      // ---- Glen's-law viscosity (same formula as ViscosityFO) ----
      Fad mu;
      if (constant_mu > 0.0) {
        mu = Fad(constant_mu);
      } else {
        const double coeff =
            thermal ? 0.5 * std::pow(flow_factor(cell, qp), -1.0 / glen_n)
                    : coeff0;
        const Fad& ux = Ugrad[0][0];
        const Fad& uy = Ugrad[0][1];
        const Fad& uz = Ugrad[0][2];
        const Fad& vx = Ugrad[1][0];
        const Fad& vy = Ugrad[1][1];
        const Fad& vz = Ugrad[1][2];
        const Fad eps2 = ux * ux + vy * vy + ux * vy +
                         0.25 * ((uy + vx) * (uy + vx) + uz * uz + vz * vz);
        mu = coeff * pow(eps2 + eps_reg2, expo);
      }

      // ---- stress terms (same formulas as StokesFOResid) ----
      const Fad strs00 = 2.0 * mu * (2.0 * Ugrad[0][0] + Ugrad[1][1]);
      const Fad strs11 = 2.0 * mu * (2.0 * Ugrad[1][1] + Ugrad[0][0]);
      const Fad strs01 = mu * (Ugrad[1][0] + Ugrad[0][1]);
      const Fad strs02 = mu * Ugrad[0][2];
      const Fad strs12 = mu * Ugrad[1][2];

      // Accumulate only the directional derivative; wGradBF == g * w.
      for (int k = 0; k < N; ++k) {
        res0[k] += strs00.dx(0) * (g[k][0] * w) +
                   strs01.dx(0) * (g[k][1] * w) + strs02.dx(0) * (g[k][2] * w);
        res1[k] += strs01.dx(0) * (g[k][0] * w) +
                   strs11.dx(0) * (g[k][1] * w) + strs12.dx(0) * (g[k][2] * w);
      }
      // Body force: passive (independent of U) — zero tangent, skipped.
    }

    for (int k = 0; k < N; ++k) {
      Tangent(cell, k, 0) = res0[k];
      Tangent(cell, k, 1) = res1[k];
    }
  }
};

/// Tangent of the basal sliding residual: accumulates d/dx of
/// friction(u)·u · wBF into the Tangent view of layer-0 cells.  Face-local
/// node k is cell-local node k (bottom face), exactly as in
/// BasalFrictionResid.  Run serially over faces, mirroring the assembled
/// chain (multiple faces never share a cell, but the serial order keeps the
/// accumulation deterministic and identical to the assembled path).
struct BasalFrictionTangent {
  using Fad = ad::SFad<double, 1>;

  pk::View<std::size_t, 1> face_cell_local;  ///< (F) cell index in Tangent
  pk::View<double, 3> face_wBF;              ///< (F, 4, Qf)
  pk::View<double, 1> face_beta;             ///< (F)
  pk::View<double, 2> face_BF;               ///< (4, Qf) reference values
  pk::View<std::size_t, 2> cell_nodes;       ///< (C, N) windowed
  pk::View<double, 1> U;                     ///< global state
  pk::View<double, 1> X;                     ///< global direction
  pk::View<double, 3> Tangent;               ///< (C, N, 2), accumulated
  unsigned int faceQPs = 4;
  SlidingConfig sliding{};

  MALI_KERNEL_FUNCTION void operator()(const int& face) const {
    const std::size_t cell = face_cell_local(face);
    Fad Ul[4][2];
    for (int k = 0; k < 4; ++k) {
      const std::size_t gnode = cell_nodes(cell, k);
      for (int comp = 0; comp < 2; ++comp) {
        const std::size_t dof = 2 * gnode + static_cast<std::size_t>(comp);
        Ul[k][comp] = Fad(U(dof));
        Ul[k][comp].fastAccessDx(0) = X(dof);
      }
    }
    for (unsigned int qp = 0; qp < faceQPs; ++qp) {
      Fad uq(0.0), vq(0.0);
      for (int k = 0; k < 4; ++k) {
        uq += Ul[k][0] * face_BF(k, qp);
        vq += Ul[k][1] * face_BF(k, qp);
      }
      const Fad friction = friction_factor(sliding, face_beta(face), uq, vq);
      for (int k = 0; k < 4; ++k) {
        const double w = face_wBF(face, k, qp);
        Tangent(cell, k, 0) += (friction * uq).dx(0) * w;
        Tangent(cell, k, 1) += (friction * vq).dx(0) * w;
      }
    }
  }
};

}  // namespace mali::physics
