#pragma once
// Method of Manufactured Solutions for the first-order Stokes operator.
//
// With a constant viscosity mu0 the FO operator is linear, and for the
// quadratic velocity field
//
//   u*(x,y,z) = a (x^2 + y^2) + b z^2
//   v*(x,y,z) = c x y + d z^2
//
// the required body force is constant:
//
//   f_u = div(2 mu eps1) = mu0 (10 a + 2 b + 3 c)
//   f_v = div(2 mu eps2) = 2 mu0 d
//
// Pinning every boundary node to u* and dropping basal friction turns the
// solve into a pure discretization test: the FE solution must converge to
// u* at second order under mesh refinement (verified in test_mms).

#include <cmath>

namespace mali::physics {

struct MmsConfig {
  bool enabled = false;
  double mu0 = 1.0e8;  ///< constant viscosity (Pa yr)
  /// Coefficients of the manufactured field, scaled so velocities are
  /// O(100 m/yr) over a continental-scale domain.
  double a = 2.0e-10;
  double b = 1.0e-5;
  double c = -1.5e-10;
  double d = 2.0e-5;
};

/// Exact manufactured velocity at a point.
inline void mms_velocity(const MmsConfig& cfg, double x, double y, double z,
                         double& u, double& v) {
  u = cfg.a * (x * x + y * y) + cfg.b * z * z;
  v = cfg.c * x * y + cfg.d * z * z;
}

/// Constant manufactured body force (enters the kernel's `force` field).
inline void mms_forcing(const MmsConfig& cfg, double& fu, double& fv) {
  fu = cfg.mu0 * (10.0 * cfg.a + 2.0 * cfg.b + 3.0 * cfg.c);
  fv = 2.0 * cfg.mu0 * cfg.d;
}

}  // namespace mali::physics
