#pragma once
// Vertical temperature column solver — MALI's thermal model substrate.
//
// Ice temperature in an ice sheet is governed, column by column, by
// vertical diffusion, vertical advection, and strain/frictional heating:
//
//   dT/dt = kappa d2T/dz2 - w dT/dz + Q/(rho c)
//
// with a Dirichlet surface temperature and a basal geothermal heat flux
// (Neumann).  MALI splits the 3D enthalpy problem into per-column solves
// on the extruded mesh; MiniMALI implements the same: an implicit
// (backward-Euler) discretization per column, solved with the Thomas
// tridiagonal algorithm, plus a steady-state mode.  Units: meters, years,
// Kelvin.

#include <cstddef>
#include <vector>

#include "portability/common.hpp"

namespace mali::physics {

struct TemperatureColumnConfig {
  double kappa = 36.0;          ///< thermal diffusivity of ice, m^2/yr (~1.1e-6 m^2/s)
  double rho_c = 1.8e6;         ///< volumetric heat capacity, J/(m^3 K)
  double conductivity = 6.6e7;  ///< thermal conductivity, J/(m yr K) (~2.1 W/(m K))
  double melting_point = 273.15;
  bool clamp_to_melting = true; ///< cap temperatures at the pressure-melting point
};

/// One column's boundary data and forcing.
struct ColumnForcing {
  double surface_temperature;        ///< K (Dirichlet at the top)
  double geothermal_flux = 1.9e6;    ///< J/(m^2 yr) (~60 mW/m^2), into the ice
  std::vector<double> vertical_velocity;  ///< w at nodes, m/yr (negative = down)
  std::vector<double> strain_heating;     ///< Q at nodes, J/(m^3 yr)
};

/// Implicit solver for one vertical column with fixed node elevations.
class TemperatureColumnSolver {
 public:
  /// `z` are the node elevations (strictly increasing, bed to surface).
  TemperatureColumnSolver(std::vector<double> z,
                          TemperatureColumnConfig cfg = {});

  [[nodiscard]] std::size_t n_nodes() const noexcept { return z_.size(); }
  [[nodiscard]] const std::vector<double>& z() const noexcept { return z_; }

  /// Advances T (bed..surface) by dt with backward Euler; T is updated in
  /// place.  Forcing vectors must have n_nodes() entries (or be empty for
  /// zero advection/heating).
  void step(std::vector<double>& T, const ColumnForcing& forcing,
            double dt) const;

  /// Steady state (dT/dt = 0): solves the boundary-value problem directly.
  [[nodiscard]] std::vector<double> steady_state(
      const ColumnForcing& forcing) const;

 private:
  /// Assembles and solves the tridiagonal system for the given dt
  /// (dt <= 0 means steady state).
  std::vector<double> solve(const std::vector<double>& T_old,
                            const ColumnForcing& forcing, double dt) const;

  std::vector<double> z_;
  TemperatureColumnConfig cfg_;
};

}  // namespace mali::physics
