#pragma once
// Physical constants and flow-law parameters for the first-order Stokes
// (Blatter–Pattyn) ice-sheet model.  Units: SI lengths/stresses, velocities
// in m/yr, time in yr — the conventional glaciological unit system also used
// by MALI.

namespace mali::physics {

struct PhysicalConstants {
  double rho_ice = 910.0;    ///< ice density, kg/m^3
  double gravity = 9.81;     ///< m/s^2
  double glen_A = 1.0e-16;   ///< Glen's flow-rate factor, Pa^-n yr^-1
  double glen_n = 3.0;       ///< Glen exponent
  /// Strain-rate regularization (1/yr)^2 keeping the viscosity finite at
  /// zero strain rate (Albany's epsilon^2 parameter).
  double eps_reg2 = 1.0e-10;

  /// rho * g in Pa/m — the driving-stress prefactor.
  [[nodiscard]] double rho_g() const noexcept { return rho_ice * gravity; }
};

}  // namespace mali::physics
