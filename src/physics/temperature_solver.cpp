#include "physics/temperature_solver.hpp"

#include <algorithm>
#include <cmath>

namespace mali::physics {

TemperatureColumnSolver::TemperatureColumnSolver(std::vector<double> z,
                                                 TemperatureColumnConfig cfg)
    : z_(std::move(z)), cfg_(cfg) {
  MALI_CHECK_MSG(z_.size() >= 3, "temperature column needs >= 3 nodes");
  for (std::size_t i = 1; i < z_.size(); ++i) {
    MALI_CHECK_MSG(z_[i] > z_[i - 1], "column nodes must increase bed->surface");
  }
}

std::vector<double> TemperatureColumnSolver::solve(
    const std::vector<double>& T_old, const ColumnForcing& forcing,
    double dt) const {
  const std::size_t n = z_.size();
  const bool transient = dt > 0.0;
  MALI_CHECK(!transient || T_old.size() == n);
  MALI_CHECK(forcing.vertical_velocity.empty() ||
             forcing.vertical_velocity.size() == n);
  MALI_CHECK(forcing.strain_heating.empty() ||
             forcing.strain_heating.size() == n);

  auto w_at = [&](std::size_t i) {
    return forcing.vertical_velocity.empty() ? 0.0
                                             : forcing.vertical_velocity[i];
  };
  auto q_at = [&](std::size_t i) {
    return forcing.strain_heating.empty() ? 0.0 : forcing.strain_heating[i];
  };

  // Tridiagonal system  a_i T_{i-1} + b_i T_i + c_i T_{i+1} = d_i.
  std::vector<double> a(n, 0.0), b(n, 0.0), c(n, 0.0), d(n, 0.0);

  // Interior: backward Euler on diffusion + upwinded advection.
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double hm = z_[i] - z_[i - 1];
    const double hp = z_[i + 1] - z_[i];
    // Nonuniform central second derivative.
    const double dm = 2.0 * cfg_.kappa / (hm * (hm + hp));
    const double dp = 2.0 * cfg_.kappa / (hp * (hm + hp));
    a[i] = -dm;
    c[i] = -dp;
    b[i] = dm + dp;
    // Upwind advection -w dT/dz.
    const double w = w_at(i);
    if (w > 0.0) {  // upward flow: upwind from below
      a[i] += -w / hm;
      b[i] += w / hm;
    } else {  // downward: upwind from above
      b[i] += -w / hp;
      c[i] += w / hp;
    }
    d[i] = q_at(i) / cfg_.rho_c;
    if (transient) {
      b[i] += 1.0 / dt;
      d[i] += T_old[i] / dt;
    }
  }

  // Basal Neumann: -k dT/dz = geothermal flux (into the ice from below),
  // one-sided first-order: (T1 - T0)/h0 = -G/k  =>  T0 - T1 = G h0 / k.
  const double h0 = z_[1] - z_[0];
  b[0] = 1.0;
  c[0] = -1.0;
  d[0] = forcing.geothermal_flux * h0 / cfg_.conductivity;

  // Surface Dirichlet.
  b[n - 1] = 1.0;
  d[n - 1] = forcing.surface_temperature;

  // Thomas algorithm.
  std::vector<double> cp(n, 0.0), dp_(n, 0.0), T(n, 0.0);
  cp[0] = c[0] / b[0];
  dp_[0] = d[0] / b[0];
  for (std::size_t i = 1; i < n; ++i) {
    const double m = b[i] - a[i] * cp[i - 1];
    MALI_CHECK_MSG(m != 0.0, "temperature solve: singular tridiagonal");
    cp[i] = c[i] / m;
    dp_[i] = (d[i] - a[i] * dp_[i - 1]) / m;
  }
  T[n - 1] = dp_[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    T[i] = dp_[i] - cp[i] * T[i + 1];
  }

  if (cfg_.clamp_to_melting) {
    for (auto& t : T) t = std::min(t, cfg_.melting_point);
  }
  return T;
}

void TemperatureColumnSolver::step(std::vector<double>& T,
                                   const ColumnForcing& forcing,
                                   double dt) const {
  MALI_CHECK(dt > 0.0);
  T = solve(T, forcing, dt);
}

std::vector<double> TemperatureColumnSolver::steady_state(
    const ColumnForcing& forcing) const {
  return solve({}, forcing, 0.0);
}

}  // namespace mali::physics
