#pragma once
// ThermalModel — the mesh-wide thermal state: one TemperatureColumnSolver
// per extruded column, strain heating derived from a velocity solution,
// and the interpolation hooks the viscosity needs.  This is the library
// form of the thermo-mechanical coupling demonstrated in
// examples/thermal_coupling.

#include <cstddef>
#include <vector>

#include "mesh/extruded_mesh.hpp"
#include "mesh/ice_geometry.hpp"
#include "physics/constants.hpp"
#include "physics/temperature_solver.hpp"

namespace mali::physics {

class ThermalModel {
 public:
  ThermalModel(const mesh::ExtrudedMesh& mesh, const mesh::IceGeometry& geom,
               TemperatureColumnConfig cfg = {});

  [[nodiscard]] std::size_t n_columns() const noexcept { return n_cols_; }
  [[nodiscard]] std::size_t levels() const noexcept { return levels_; }

  /// Temperature at (column, level).
  [[nodiscard]] double temperature(std::size_t column,
                                   std::size_t level) const {
    return T_[column][level];
  }

  /// Temperature at an arbitrary point: nearest column (O(1) via the grid
  /// lattice), linear in sigma.  The signature matches
  /// StokesFOProblem::set_temperature_field.
  [[nodiscard]] double temperature_at(double x, double y, double sigma) const;

  /// Strain heating per column node from the vertical shear of a global
  /// velocity vector (2 dofs/node), Q = 4 mu eps_e^2 with Glen's law mu.
  [[nodiscard]] std::vector<std::vector<double>> strain_heating(
      const std::vector<double>& U, const PhysicalConstants& constants) const;

  /// Solves every column to steady state under the given heating
  /// (empty = no strain heating).
  void solve_steady(const std::vector<std::vector<double>>& heating = {});

  /// Advances every column by dt (backward Euler).
  void step(double dt, const std::vector<std::vector<double>>& heating = {});

  /// Warmest bed temperature across all columns (diagnostic).
  [[nodiscard]] double max_bed_temperature() const;

  /// The full temperature state flattened column-major (column * levels +
  /// level) — the transient-checkpoint serialization of the thermal state.
  [[nodiscard]] std::vector<double> temperatures_flat() const;

  /// Restores the state written by temperatures_flat().  Throws mali::Error
  /// on a size mismatch.
  void set_temperatures_flat(const std::vector<double>& flat);

 private:
  [[nodiscard]] ColumnForcing forcing_for(
      std::size_t col, const std::vector<std::vector<double>>& heating) const;
  [[nodiscard]] std::size_t nearest_column(double x, double y) const;

  const mesh::ExtrudedMesh& mesh_;
  const mesh::IceGeometry& geom_;
  TemperatureColumnConfig cfg_;
  std::size_t n_cols_;
  std::size_t levels_;
  std::vector<TemperatureColumnSolver> solvers_;
  std::vector<std::vector<double>> T_;  ///< (column, level)
};

}  // namespace mali::physics
