#pragma once
// FusedStokesChainBatched — the SIMD element-batched form of the fused
// residual chain.  Where FusedStokesChain streams precomputed gradBF /
// wGradBF / wBF arrays (~480 doubles per cell, bandwidth-bound), the batched
// kernel reads only nodal coordinates, nodal velocities and the per-qp body
// force (~70 doubles per cell) and recomputes the isoparametric geometry in
// pack registers, so every lane-variable (un, g, mu, strs, ...) holds W
// neighbouring cells.  That trade-FLOPs-for-bytes step plus the W-wide
// lanes is the measured source of the >= 1.5x fused-residual speedup
// bench_simd_batch gates on.
//
// Numerics: the recomputed geometry replicates fem/cell_geometry.cpp
// operation for operation (same J accumulation order, same cofactor
// expansion, wGradBF == gradBF * w with the same roundings), and every
// downstream sum mirrors FusedStokesChain's association term by term, so a
// lane's arithmetic is the scalar kernel's arithmetic.  The equivalence
// contract vs the scalar chain is <= 1e-14 per dof (asserted in tests);
// it is not pinned bitwise only because compiler FMA contraction may
// differ between the scalar and pack instantiations.  On the thin,
// wide cells of real ice sheets the per-dof accumulation cancels ~2
// orders of magnitude, so a *reassociated* contraction (e.g. pulling the
// stress back to reference space) would amplify ulp noise past 1e-13 —
// mirroring the scalar association is what keeps the contract tight.
//
// LayoutLeft puts the W cells of a batch contiguous in memory, so loads /
// stores are plain full-width moves; ragged tails use load_n / store_n on
// the valid lanes (dead lanes compute on zeros and are never stored).

#include <cmath>
#include <cstddef>

#include "portability/common.hpp"
#include "portability/simd.hpp"
#include "portability/view.hpp"

namespace mali::physics {

template <int W>
class FusedStokesChainBatched {
 public:
  using Pack = pk::simd<double, W>;
  static constexpr int kMaxNodes = 8;
  static constexpr int width = W;

  // Inputs.
  pk::View<double, 3> UNodal;        ///< (C, N, 2) gathered solution
  pk::View<double, 3> coords;        ///< (C, N, 3) nodal coordinates
  pk::View<double, 3> ref_grad;      ///< (Q, N, 3) reference basis gradients
  pk::View<double, 2> ref_val;       ///< (Q, N) reference basis values
  pk::View<double, 1> qp_weight;     ///< (Q) quadrature weights
  pk::View<double, 3> force_passive; ///< (C, Q, 2)
  pk::View<double, 2> flow_factor;   ///< (C, Q) thermal A(T); optional
  // Output.
  pk::View<double, 3> Residual;  ///< (C, N, 2)

  double glen_A = 1.0e-16;
  double glen_n = 3.0;
  double eps_reg2 = 1.0e-10;
  double constant_mu = 0.0;  ///< > 0 bypasses Glen's law (MMS runs)
  unsigned int numNodes = 8;
  unsigned int numQPs = 8;

  /// Hoists the loop-invariant Glen's-law constants; call once after setting
  /// glen_A / glen_n (same contract as FusedStokesChain::prepare).
  void prepare() {
    coeff_ = 0.5 * std::pow(glen_A, -1.0 / glen_n);
    expo_ = (1.0 - glen_n) / (2.0 * glen_n);
  }

  void operator()(const pk::SimdBatch& b) const {
    MALI_CHECK_MSG(numNodes <= kMaxNodes,
                   "FusedStokesChainBatched supports at most 8 nodes");
    if (b.full()) {
      compute<true>(b.begin, W);
    } else {
      compute<false>(b.begin, b.n_valid);
    }
  }

 private:
  template <bool Full>
  MALI_INLINE Pack load(const double& p, int nv) const {
    if constexpr (Full) {
      (void)nv;
      return Pack::load(&p);
    } else {
      return Pack::load_n(&p, nv);
    }
  }

  template <bool Full>
  void compute(std::size_t c0, int nv) const {
    using std::pow;
    const auto c = static_cast<int>(c0);
    const bool thermal = flow_factor.allocated();
    const int N = static_cast<int>(numNodes);
    const int Q = static_cast<int>(numQPs);

    // Nodal packs: lane l holds cell c0 + l.  Dead lanes of a ragged tail
    // are zero-filled; they produce garbage (det = 0) that never reaches
    // memory because the stores below are lane-masked.
    Pack un[kMaxNodes][2];
    Pack xn[kMaxNodes][3];
    for (int k = 0; k < N; ++k) {
      un[k][0] = load<Full>(UNodal(c, k, 0), nv);
      un[k][1] = load<Full>(UNodal(c, k, 1), nv);
      for (int d = 0; d < 3; ++d) xn[k][d] = load<Full>(coords(c, k, d), nv);
    }

    Pack res0[kMaxNodes];
    Pack res1[kMaxNodes];
    for (int k = 0; k < N; ++k) {
      res0[k] = Pack::zero();
      res1[k] = Pack::zero();
    }

    for (int qp = 0; qp < Q; ++qp) {
      // ---- in-register geometry (replicates fem/cell_geometry.cpp) ----
      Pack J[3][3];
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) J[i][j] = Pack::zero();
      }
      for (int k = 0; k < N; ++k) {
        for (int i = 0; i < 3; ++i) {
          for (int j = 0; j < 3; ++j) {
            J[i][j] += xn[k][i] * ref_grad(qp, k, j);
          }
        }
      }

      // Cofactor inverse: the same expansion, in the same order, as
      // fem/cell_geometry.cpp's invert3.
      const Pack det =
          J[0][0] * (J[1][1] * J[2][2] - J[1][2] * J[2][1]) -
          J[0][1] * (J[1][0] * J[2][2] - J[1][2] * J[2][0]) +
          J[0][2] * (J[1][0] * J[2][1] - J[1][1] * J[2][0]);
      const Pack inv_det = 1.0 / det;
      Pack inv[3][3];
      inv[0][0] = (J[1][1] * J[2][2] - J[1][2] * J[2][1]) * inv_det;
      inv[0][1] = (J[0][2] * J[2][1] - J[0][1] * J[2][2]) * inv_det;
      inv[0][2] = (J[0][1] * J[1][2] - J[0][2] * J[1][1]) * inv_det;
      inv[1][0] = (J[1][2] * J[2][0] - J[1][0] * J[2][2]) * inv_det;
      inv[1][1] = (J[0][0] * J[2][2] - J[0][2] * J[2][0]) * inv_det;
      inv[1][2] = (J[0][2] * J[1][0] - J[0][0] * J[1][2]) * inv_det;
      inv[2][0] = (J[1][0] * J[2][1] - J[1][1] * J[2][0]) * inv_det;
      inv[2][1] = (J[0][1] * J[2][0] - J[0][0] * J[2][1]) * inv_det;
      inv[2][2] = (J[0][0] * J[1][1] - J[0][1] * J[1][0]) * inv_det;
      const Pack w = qp_weight(qp) * det;

      // Physical gradients + velocity gradient, in the scalar kernel's
      // node-major order: gb[k][d] reproduces the stored gradBF bitwise,
      // wgb/wbf reproduce wGradBF/wBF, and g accumulates exactly as
      // FusedStokesChain's node loop does.
      Pack wgb[kMaxNodes][3];
      Pack wbf[kMaxNodes];
      Pack g[2][3];
      for (int comp = 0; comp < 2; ++comp) {
        for (int d = 0; d < 3; ++d) g[comp][d] = Pack::zero();
      }
      for (int k = 0; k < N; ++k) {
        wbf[k] = ref_val(qp, k) * w;
        for (int d = 0; d < 3; ++d) {
          Pack gb = Pack::zero();
          for (int j = 0; j < 3; ++j) gb += inv[j][d] * ref_grad(qp, k, j);
          wgb[k][d] = gb * w;
          g[0][d] += un[k][0] * gb;
          g[1][d] += un[k][1] * gb;
        }
      }

      // Glen's-law viscosity (W lanes; pow is the per-lane serial part).
      const Pack eps2 =
          g[0][0] * g[0][0] + g[1][1] * g[1][1] + g[0][0] * g[1][1] +
          0.25 * ((g[0][1] + g[1][0]) * (g[0][1] + g[1][0]) +
                  g[0][2] * g[0][2] + g[1][2] * g[1][2]);
      Pack mu;
      if (constant_mu > 0.0) {
        mu = Pack::broadcast(constant_mu);
      } else if (thermal) {
        const Pack coeff =
            0.5 * pk::lane_pow(load<Full>(flow_factor(c, qp), nv),
                               -1.0 / glen_n);
        mu = coeff * pk::lane_pow(eps2 + eps_reg2, expo_);
      } else {
        mu = coeff_ * pk::lane_pow(eps2 + eps_reg2, expo_);
      }

      // Stress components and body force, as in FusedStokesChain.
      const Pack strs00 = 2.0 * mu * (2.0 * g[0][0] + g[1][1]);
      const Pack strs11 = 2.0 * mu * (2.0 * g[1][1] + g[0][0]);
      const Pack strs01 = mu * (g[0][1] + g[1][0]);
      const Pack strs02 = mu * g[0][2];
      const Pack strs12 = mu * g[1][2];
      const Pack frc0 = load<Full>(force_passive(c, qp, 0), nv);
      const Pack frc1 = load<Full>(force_passive(c, qp, 1), nv);

      for (int k = 0; k < N; ++k) {
        res0[k] += strs00 * wgb[k][0] + strs01 * wgb[k][1] +
                   strs02 * wgb[k][2] + frc0 * wbf[k];
        res1[k] += strs01 * wgb[k][0] + strs11 * wgb[k][1] +
                   strs12 * wgb[k][2] + frc1 * wbf[k];
      }
    }

    for (int k = 0; k < N; ++k) {
      if constexpr (Full) {
        res0[k].store(&Residual(c, k, 0));
        res1[k].store(&Residual(c, k, 1));
      } else {
        res0[k].store_n(&Residual(c, k, 0), nv);
        res1[k].store_n(&Residual(c, k, 1), nv);
      }
    }
  }

  double coeff_ = 0.5 * std::pow(1.0e-16, -1.0 / 3.0);
  double expo_ = (1.0 - 3.0) / (2.0 * 3.0);
};

}  // namespace mali::physics
