#pragma once
// Seeded, deterministic fault injection.  A FaultInjector is configured
// with one FaultSpec (kind × site × evaluation index) and is consulted by
// the guard decorators (resilience/guards.hpp) and the Newton solver's
// linear-solve site.  Each site keeps its own evaluation counter, so
// "poison the 3rd residual evaluation" is reproducible bit-for-bit across
// runs, scatter modes, and thread counts; the poisoned dof is a seeded
// hash, independent of call order.
//
// The injector is deliberately dumb: it decides *when* to fire and *what*
// value to plant, nothing else.  The wrappers own the mechanics of
// planting, so no physics or solver code changes to support injection.

#include <array>
#include <cstddef>
#include <string>

#include "resilience/fault.hpp"

namespace mali::resilience {

/// What / where / when to inject.
struct FaultSpec {
  FaultKind kind = FaultKind::kNanPoison;
  FaultSite site = FaultSite::kResidual;
  /// Fire at the N-th evaluation of `site` (0-based).
  std::size_t at_evaluation = 0;
  /// Fire at every evaluation >= at_evaluation instead of exactly once.
  bool repeat = false;
  /// Seed for the poisoned-dof choice (and any future randomized sites).
  unsigned seed = 0x9E3779B9u;
  /// Member/run id mixed into the dof hash.  Without it every ensemble
  /// member with the same spec poisons the *same* dof; distinct ids give
  /// decorrelated faults.  0 (the default) reproduces the legacy
  /// single-run hash bit-for-bit, so existing determinism pins hold.
  unsigned member = 0;
};

/// Parses "kind:site[:evaluation][:repeat]", e.g. "nan:residual:2",
/// "inf:operator-apply:0", "stagnation:linear-solve:1",
/// "precond-fail:precond-setup".  Kinds: nan | inf | stagnation |
/// precond-fail.  Sites: residual | operator-apply | jacobian |
/// linear-solve | precond-setup.  Throws mali::Error on a malformed spec.
[[nodiscard]] FaultSpec fault_spec_from_string(const std::string& s);

/// Human-readable round-trip of a spec ("nan:residual:2").
[[nodiscard]] std::string to_string(const FaultSpec& spec);

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec) : spec_(spec) {}

  /// Counts one evaluation of `site` and returns true iff the configured
  /// fault fires for it.  Deterministic: the decision depends only on the
  /// spec and the per-site evaluation count.
  [[nodiscard]] bool fire(FaultSite site);

  /// Deterministic dof to poison in an n-entry output (seeded splitmix64
  /// hash over seed and member id — stable across runs and independent of
  /// when it is asked; member 0 matches the pre-ensemble hash exactly).
  [[nodiscard]] std::size_t target_dof(std::size_t n) const;

  /// The value the configured kind plants (quiet NaN or +Inf).
  [[nodiscard]] double poison() const;

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }
  /// Evaluations of `site` seen so far.
  [[nodiscard]] std::size_t count(FaultSite site) const;
  /// How many times the fault has fired.
  [[nodiscard]] int fired() const noexcept { return fired_; }

 private:
  FaultSpec spec_;
  std::array<std::size_t, kNumFaultSites> counts_{};
  int fired_ = 0;
};

}  // namespace mali::resilience
