#pragma once
// Recovery-ladder configuration and the structured RecoveryLog the Newton
// solver fills in.  See DESIGN.md §11 for the ladder ordering contract.
//
// The ladder is a bounded escalation the solver walks when a step trips a
// guard (typed SolverFault), the inner linear solve fails, or the line
// search stalls:
//
//   1. kRedampStep           cap the line-search starting damping (halve it)
//   2. kGrowKrylov           double the GMRES restart and iteration cap
//   3. kClimbPreconditioner  switch to the next (stronger) preconditioner
//                            in `precond_ladder` (jacobi → block-jacobi →
//                            AMG in the CLI wiring)
//   4. kAssembledFallback    matrix-free → assembled Jacobian
//   5. kRestoreCheckpoint    restore the last good SolverCheckpoint and
//                            invoke `on_restore` (continuation uses it to
//                            back-step the regularization one notch)
//
// Strengthening escalations persist for the remainder of the solve (a
// grown restart stays grown, a climbed preconditioner stays climbed); the
// damping cap is per-step — it binds the retries of the step that tripped
// and resets afterwards, since a permanently halved step would handicap
// the rest of the solve.  Inapplicable rungs are skipped (e.g.
// kAssembledFallback on an already-assembled solve), and the whole ladder
// is bounded by per-step and total attempt budgets.  Every attempt — trigger, rung,
// action, outcome — is appended to the RecoveryLog surfaced in
// NewtonResult, the CLI report, and the tests.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "linalg/preconditioner.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault.hpp"
#include "resilience/fault_injector.hpp"

namespace mali::resilience {

enum class RecoveryRung {
  kRedampStep,
  kGrowKrylov,
  kClimbPreconditioner,
  kAssembledFallback,
  kRestoreCheckpoint,
};

[[nodiscard]] const char* to_string(RecoveryRung r);

struct RecoveryConfig {
  /// Master switch.  Off (the default) leaves the Newton solver's clean
  /// path bit-identical to the pre-resilience behavior: faults propagate
  /// as SolverFaultError, linear failures and stalls are recorded but not
  /// retried.
  bool enabled = false;
  /// Ladder attempts allowed for one Newton step before giving up.
  int max_attempts_per_step = 6;
  /// Ladder attempts allowed across the whole solve.
  int max_total_attempts = 16;
  /// Multiplier kRedampStep applies to the line-search starting damping.
  double redamp_factor = 0.5;
  /// Multiplier kGrowKrylov applies to the GMRES restart / iteration cap.
  double krylov_growth = 2.0;
  /// Preconditioner escalation, weakest to strongest.  Empty disables the
  /// kClimbPreconditioner rung.  The CLI wires jacobi → block-jacobi →
  /// AMG here.
  std::vector<std::function<std::unique_ptr<linalg::Preconditioner>()>>
      precond_ladder;
  /// Invoked by kRestoreCheckpoint with the checkpoint about to be
  /// restored; may mutate it (continuation back-steps `parameter` one
  /// notch and re-applies it to the problem).
  std::function<void(SolverCheckpoint&)> on_restore;
  /// When non-empty, every accepted Newton step also writes the checkpoint
  /// here (io::write_solver_checkpoint format).
  std::string checkpoint_path;
  /// Continuation parameter stamped into checkpoints (informational; 0
  /// when no continuation is active).  continuation_solve keeps it in
  /// sync with the regularization walk.
  double parameter = 0.0;
  /// Solver-level injection site (forced GMRES stagnation).  The NaN/Inf
  /// poison sites live in the guard decorators instead; see
  /// resilience/guards.hpp.  Not owned.
  FaultInjector* injector = nullptr;
  /// Verbose ladder logging to stdout.
  bool verbose = false;
};

/// One ladder attempt: what tripped, which rung was applied, and whether
/// the retried step then went through cleanly.
struct RecoveryAttempt {
  int newton_step = 0;   ///< 1-based Newton step being retried
  RecoveryRung rung = RecoveryRung::kRedampStep;
  SolverFault trigger;   ///< the event that caused the escalation
  std::string action;    ///< human-readable description of what changed
  bool succeeded = false;
};

struct RecoveryLog {
  std::vector<RecoveryAttempt> attempts;
  int faults_detected = 0;   ///< guard faults seen (injected or organic)
  int steps_recovered = 0;   ///< Newton steps that went through on a retry

  [[nodiscard]] bool empty() const noexcept { return attempts.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return attempts.size(); }
  /// True iff some attempt applied `rung`.
  [[nodiscard]] bool tried(RecoveryRung rung) const;
  /// One line per attempt, most recent last.
  [[nodiscard]] std::string to_string() const;
  /// The last `n` attempt lines (the CLI failure report).
  [[nodiscard]] std::string tail(std::size_t n = 8) const;
};

}  // namespace mali::resilience
