#pragma once
// Guard decorators — NaN/Inf validation and fault injection wrapped around
// the existing solver interfaces, so no physics code changes:
//
//   * GuardedProblem  : NonlinearProblem  — validates every residual /
//     Jacobian evaluation for non-finite entries (reporting the first
//     offending dof and the evaluation site) and bound-checks the incoming
//     solution norm; optionally plants the configured injected fault.
//   * GuardedOperator : LinearOperator   — the same for operator applies
//     (the matrix-free Jacobian path).  GuardedProblem::jacobian_operator
//     wraps the inner problem's operator automatically.
//   * GuardedPreconditioner : Preconditioner — forwards to the inner
//     preconditioner; the kPrecondSetup injection site aborts compute()
//     with a typed kPrecondSetupFailure.
//
// On a violation the guards throw SolverFaultError.  With the Newton
// recovery ladder enabled the fault is caught and escalated; without it
// the typed error propagates to the caller — today's silent NaN
// propagation either way becomes a diagnosable event.

#include <memory>
#include <vector>

#include "linalg/linear_operator.hpp"
#include "linalg/preconditioner.hpp"
#include "nonlinear/newton.hpp"
#include "resilience/fault.hpp"
#include "resilience/fault_injector.hpp"

namespace mali::resilience {

struct GuardConfig {
  /// Validate outputs (residuals, operator applies, Jacobian values) for
  /// NaN/Inf entries.
  bool check_finite = true;
  /// Reject input solution vectors whose 2-norm exceeds this bound
  /// (kSolutionDiverged); 0 disables the bound check.  The default is far
  /// above any physical velocity but well below overflow.
  double max_solution_norm = 1.0e60;
};

/// LinearOperator decorator: validates apply outputs, optionally plants
/// the injected kOperatorApply fault.  Owns the inner operator.
class GuardedOperator final : public linalg::LinearOperator {
 public:
  GuardedOperator(std::unique_ptr<linalg::LinearOperator> inner,
                  GuardConfig cfg, FaultInjector* injector,
                  const int* newton_step = nullptr);

  [[nodiscard]] std::size_t rows() const override { return inner_->rows(); }
  [[nodiscard]] std::size_t cols() const override { return inner_->cols(); }
  void apply(const std::vector<double>& x,
             std::vector<double>& y) const override;
  bool diagonal(std::vector<double>& d) const override {
    return inner_->diagonal(d);
  }
  bool block_diagonal(int bs, std::vector<double>& blocks) const override {
    return inner_->block_diagonal(bs, blocks);
  }
  [[nodiscard]] const linalg::CrsMatrix* matrix() const override {
    return inner_->matrix();
  }
  [[nodiscard]] const char* name() const override { return "guarded"; }

  [[nodiscard]] const linalg::LinearOperator& inner() const noexcept {
    return *inner_;
  }
  [[nodiscard]] std::size_t applies() const noexcept { return applies_; }

 private:
  std::unique_ptr<linalg::LinearOperator> inner_;
  GuardConfig cfg_;
  FaultInjector* injector_;       ///< not owned; may be null
  const int* newton_step_;        ///< not owned; current step for reports
  mutable std::size_t applies_ = 0;
};

/// NonlinearProblem decorator: validates residual / Jacobian evaluations,
/// bound-checks inputs, plants the injected kResidual /
/// kJacobianAssembly faults, and wraps jacobian_operator() results in a
/// GuardedOperator.  Does not own the inner problem.
class GuardedProblem final : public nonlinear::NonlinearProblem {
 public:
  explicit GuardedProblem(nonlinear::NonlinearProblem& inner,
                          GuardConfig cfg = {},
                          FaultInjector* injector = nullptr);

  [[nodiscard]] std::size_t n_dofs() const override {
    return inner_->n_dofs();
  }
  void residual(const std::vector<double>& U,
                std::vector<double>& F) override;
  void residual_and_jacobian(const std::vector<double>& U,
                             std::vector<double>& F,
                             linalg::CrsMatrix& J) override;
  [[nodiscard]] linalg::CrsMatrix create_matrix() const override {
    return inner_->create_matrix();
  }
  [[nodiscard]] std::unique_ptr<linalg::LinearOperator> jacobian_operator(
      const std::vector<double>& U) override;

  /// Current Newton step for fault reports (the solver advances it through
  /// NonlinearProblem's default no-op hook — see newton.hpp).
  void set_newton_step(int step) override { newton_step_ = step; }

  [[nodiscard]] std::size_t residual_evaluations() const noexcept {
    return residual_evals_;
  }
  [[nodiscard]] std::size_t jacobian_evaluations() const noexcept {
    return jacobian_evals_;
  }
  [[nodiscard]] nonlinear::NonlinearProblem& inner() noexcept {
    return *inner_;
  }

 private:
  void check_input(const std::vector<double>& U, FaultSite site,
                   std::size_t evaluation) const;

  nonlinear::NonlinearProblem* inner_;
  GuardConfig cfg_;
  FaultInjector* injector_;  ///< not owned; may be null
  int newton_step_ = 0;
  std::size_t residual_evals_ = 0;
  std::size_t jacobian_evals_ = 0;
};

/// Preconditioner decorator: the kPrecondSetup injection site.  Forwards
/// everything else.  Does not own the inner preconditioner.
class GuardedPreconditioner final : public linalg::Preconditioner {
 public:
  GuardedPreconditioner(linalg::Preconditioner& inner,
                        FaultInjector* injector)
      : inner_(&inner), injector_(injector) {}

  void compute(const linalg::CrsMatrix& A) override;
  void compute(const linalg::LinearOperator& A) override;
  void apply(const std::vector<double>& r,
             std::vector<double>& z) const override {
    inner_->apply(r, z);
  }
  [[nodiscard]] const char* name() const override { return inner_->name(); }

 private:
  void maybe_inject();

  linalg::Preconditioner* inner_;
  FaultInjector* injector_;  ///< not owned; may be null
};

}  // namespace mali::resilience
