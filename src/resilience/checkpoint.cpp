#include "resilience/checkpoint.hpp"

#include "io/field_writer.hpp"

namespace mali::resilience {

void SolverCheckpoint::save(const std::string& path) const {
  io::write_solver_checkpoint(path, U, residual_norm, parameter, newton_step);
}

SolverCheckpoint load_checkpoint(const std::string& path) {
  SolverCheckpoint c;
  io::read_solver_checkpoint(path, c.U, c.residual_norm, c.parameter,
                             c.newton_step);
  c.valid = true;
  return c;
}

void TransientCheckpoint::save(const std::string& path) const {
  io::write_transient_checkpoint(path, H, T, U, t, dt, step);
}

TransientCheckpoint load_transient_checkpoint(const std::string& path) {
  TransientCheckpoint c;
  io::read_transient_checkpoint(path, c.H, c.T, c.U, c.t, c.dt, c.step);
  c.valid = true;
  return c;
}

}  // namespace mali::resilience
