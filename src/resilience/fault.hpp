#pragma once
// Solver fault taxonomy — the typed events the resilience layer turns
// silent numerical breakdowns into.  See DESIGN.md §11.
//
// Two orthogonal classifications:
//  * FaultKind / FaultSite describe what the *injector* plants (NaN/Inf
//    poison, a forced Krylov stagnation, a preconditioner-setup abort) and
//    where (residual evaluation, operator apply, Jacobian assembly, the
//    inner linear solve, preconditioner setup).
//  * FaultType describes what a *guard* observed.  An injected NaN in a
//    residual manifests as kNonFiniteResidual; an organic Glen's-law
//    viscosity blow-up manifests as exactly the same type — the recovery
//    ladder treats both identically, which is the point of fault injection.
//
// SolverFaultError is the typed exception guards throw.  It carries the
// full SolverFault record (type, site, first offending dof, offending
// value, Newton step, site-local evaluation index) so callers can assert
// on, log, or recover from the precise failure.

#include <cstddef>
#include <string>

#include "portability/common.hpp"

namespace mali::resilience {

/// What a fault injector plants.
enum class FaultKind {
  kNanPoison,      ///< overwrite one output entry with a quiet NaN
  kInfPoison,      ///< overwrite one output entry with +Inf
  kStagnation,     ///< force the inner Krylov solve to report failure
  kPrecondFailure, ///< abort preconditioner setup
};

/// Where a fault is planted / detected.
enum class FaultSite {
  kResidual,          ///< NonlinearProblem::residual output
  kOperatorApply,     ///< LinearOperator::apply output
  kJacobianAssembly,  ///< residual_and_jacobian output (F or J values)
  kLinearSolve,       ///< the inner GMRES solve
  kPrecondSetup,      ///< Preconditioner::compute
};
inline constexpr int kNumFaultSites = 5;

/// What a guard observed.
enum class FaultType {
  kNone,
  kNonFiniteResidual,      ///< NaN/Inf entry in a residual evaluation
  kNonFiniteOperatorApply, ///< NaN/Inf entry in an operator-apply output
  kNonFiniteJacobian,      ///< NaN/Inf entry in assembled Jacobian values
  kNonFiniteResidualNorm,  ///< ||F|| not finite at a Newton step
  kSolutionDiverged,       ///< ||U|| exceeded the guard bound
  kLinearSolveFailure,     ///< inner Krylov missed tolerance / broke down
  kLineSearchStall,        ///< backtracking bottomed out without decrease
  kPrecondSetupFailure,    ///< preconditioner setup failed (or was injected)
};

[[nodiscard]] const char* to_string(FaultKind k);
[[nodiscard]] const char* to_string(FaultSite s);
[[nodiscard]] const char* to_string(FaultType t);

/// One detected fault event — everything a guard knows at detection time.
struct SolverFault {
  FaultType type = FaultType::kNone;
  FaultSite site = FaultSite::kResidual;
  /// First offending dof (kNonFinite{Residual,OperatorApply,Jacobian} only;
  /// for kNonFiniteJacobian this is the row of the offending entry).
  std::size_t dof = 0;
  /// The offending value (NaN, Inf, or the out-of-bounds norm).
  double value = 0.0;
  /// Newton step (1-based) during which the fault surfaced; 0 outside a
  /// Newton solve (e.g. the initial residual evaluation).
  int newton_step = 0;
  /// Site-local evaluation counter at detection (0-based), as counted by
  /// the guard that detected it.
  std::size_t evaluation = 0;
  std::string message;

  [[nodiscard]] std::string describe() const;
};

/// Typed exception carrying a SolverFault.  Guards throw it; the Newton
/// recovery ladder catches it (when enabled) or lets it propagate to the
/// caller ("fail loudly").
class SolverFaultError : public Error {
 public:
  explicit SolverFaultError(SolverFault fault)
      : Error(fault.describe()), fault_(std::move(fault)) {}
  [[nodiscard]] const SolverFault& fault() const noexcept { return fault_; }

 private:
  SolverFault fault_;
};

}  // namespace mali::resilience
