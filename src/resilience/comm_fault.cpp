#include "resilience/comm_fault.hpp"

#include <cstdint>
#include <sstream>
#include <vector>

namespace mali::resilience {

namespace {

constexpr const char* kPrefix = "comm:";

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  return parts;
}

CommFaultKind kind_from_string(const std::string& s) {
  if (s == "drop") return CommFaultKind::kDrop;
  if (s == "corrupt") return CommFaultKind::kCorrupt;
  if (s == "delay") return CommFaultKind::kDelay;
  if (s == "rank-death") return CommFaultKind::kRankDeath;
  if (s == "straggler") return CommFaultKind::kStraggler;
  throw Error("unknown comm fault kind: " + s +
              " (drop | corrupt | delay | rank-death | straggler)");
}

CommSite comm_site_from_string(const std::string& s) {
  if (s == "halo-send") return CommSite::kHaloSend;
  if (s == "halo-recv") return CommSite::kHaloRecv;
  if (s == "allreduce") return CommSite::kAllreduce;
  if (s == "barrier") return CommSite::kBarrier;
  throw Error("unknown comm fault site: " + s +
              " (halo-send | halo-recv | allreduce | barrier)");
}

/// splitmix64 — the same mixing function the solver-level injector uses
/// for its seeded dof choice.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(CommFaultKind k) {
  switch (k) {
    case CommFaultKind::kDrop: return "drop";
    case CommFaultKind::kCorrupt: return "corrupt";
    case CommFaultKind::kDelay: return "delay";
    case CommFaultKind::kRankDeath: return "rank-death";
    case CommFaultKind::kStraggler: return "straggler";
  }
  return "?";
}

const char* to_string(CommSite s) {
  switch (s) {
    case CommSite::kHaloSend: return "halo-send";
    case CommSite::kHaloRecv: return "halo-recv";
    case CommSite::kAllreduce: return "allreduce";
    case CommSite::kBarrier: return "barrier";
  }
  return "?";
}

const char* to_string(CommFaultType t) {
  switch (t) {
    case CommFaultType::kNone: return "none";
    case CommFaultType::kTimeout: return "timeout";
    case CommFaultType::kChecksumMismatch: return "checksum-mismatch";
    case CommFaultType::kLostContribution: return "lost-contribution";
    case CommFaultType::kRankDeath: return "rank-death";
    case CommFaultType::kInjected: return "injected";
  }
  return "?";
}

std::string CommFault::describe() const {
  std::ostringstream os;
  os << "comm fault [" << to_string(type) << "] at " << to_string(site);
  if (rank >= 0) os << " on rank " << rank;
  if (source_rank >= 0) os << " (source rank " << source_rank << ")";
  if (!message.empty()) os << ": " << message;
  return os.str();
}

bool is_comm_fault_spec(const std::string& s) {
  return s.rfind(kPrefix, 0) == 0;
}

CommFaultSpec comm_fault_spec_from_string(const std::string& s) {
  MALI_CHECK_MSG(is_comm_fault_spec(s),
                 "comm fault spec must start with 'comm:', got: " + s);
  const auto parts = split(s.substr(std::string(kPrefix).size()), ':');
  MALI_CHECK_MSG(
      parts.size() >= 2 && parts.size() <= 4,
      "comm fault spec must be comm:kind:site[:evaluation][:repeat], got: " +
          s);
  CommFaultSpec spec;
  spec.kind = kind_from_string(parts[0]);
  spec.site = comm_site_from_string(parts[1]);
  if (parts.size() >= 3 && !parts[2].empty()) {
    spec.at_evaluation = static_cast<std::size_t>(std::stoul(parts[2]));
  }
  if (parts.size() == 4) {
    MALI_CHECK_MSG(parts[3] == "repeat",
                   "comm fault spec trailer must be 'repeat', got: " +
                       parts[3]);
    spec.repeat = true;
  }
  return spec;
}

std::string to_string(const CommFaultSpec& spec) {
  std::ostringstream os;
  os << kPrefix << to_string(spec.kind) << ':' << to_string(spec.site) << ':'
     << spec.at_evaluation;
  if (spec.repeat) os << ":repeat";
  return os.str();
}

bool CommFaultInjector::fire(CommSite site) {
  const std::size_t c = counts_[static_cast<std::size_t>(site)]++;
  if (site != spec_.site) return false;
  const bool hit =
      spec_.repeat ? c >= spec_.at_evaluation : c == spec_.at_evaluation;
  if (hit) ++fired_;
  return hit;
}

int CommFaultInjector::target_rank(int n_ranks) const {
  MALI_CHECK(n_ranks > 0);
  std::uint64_t x = spec_.seed;
  if (spec_.member != 0) {
    x ^= splitmix64(static_cast<std::uint64_t>(spec_.member) *
                    0xD1B54A32D192ED03ull);
  }
  // Distinct stream from the solver-level target_dof hash (the extra mix
  // keeps "which rank misbehaves" decorrelated from "which dof is
  // poisoned" under a shared seed).
  return static_cast<int>(splitmix64(x ^ 0xA24BAED4963EE407ull) %
                          static_cast<std::uint64_t>(n_ranks));
}

std::size_t CommFaultInjector::count(CommSite site) const {
  return counts_[static_cast<std::size_t>(site)];
}

}  // namespace mali::resilience
