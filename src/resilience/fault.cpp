#include "resilience/fault.hpp"

#include <sstream>

namespace mali::resilience {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNanPoison:
      return "nan";
    case FaultKind::kInfPoison:
      return "inf";
    case FaultKind::kStagnation:
      return "stagnation";
    case FaultKind::kPrecondFailure:
      return "precond-fail";
  }
  return "?";
}

const char* to_string(FaultSite s) {
  switch (s) {
    case FaultSite::kResidual:
      return "residual";
    case FaultSite::kOperatorApply:
      return "operator-apply";
    case FaultSite::kJacobianAssembly:
      return "jacobian";
    case FaultSite::kLinearSolve:
      return "linear-solve";
    case FaultSite::kPrecondSetup:
      return "precond-setup";
  }
  return "?";
}

const char* to_string(FaultType t) {
  switch (t) {
    case FaultType::kNone:
      return "none";
    case FaultType::kNonFiniteResidual:
      return "non-finite-residual";
    case FaultType::kNonFiniteOperatorApply:
      return "non-finite-operator-apply";
    case FaultType::kNonFiniteJacobian:
      return "non-finite-jacobian";
    case FaultType::kNonFiniteResidualNorm:
      return "non-finite-residual-norm";
    case FaultType::kSolutionDiverged:
      return "solution-diverged";
    case FaultType::kLinearSolveFailure:
      return "linear-solve-failure";
    case FaultType::kLineSearchStall:
      return "line-search-stall";
    case FaultType::kPrecondSetupFailure:
      return "precond-setup-failure";
  }
  return "?";
}

std::string SolverFault::describe() const {
  std::ostringstream os;
  os << "solver fault: " << to_string(type) << " at site "
     << to_string(site);
  switch (type) {
    case FaultType::kNonFiniteResidual:
    case FaultType::kNonFiniteOperatorApply:
    case FaultType::kNonFiniteJacobian:
      os << ", first offending dof " << dof << " = " << value;
      break;
    case FaultType::kSolutionDiverged:
    case FaultType::kNonFiniteResidualNorm:
      os << ", norm = " << value;
      break;
    default:
      break;
  }
  if (newton_step > 0) os << ", newton step " << newton_step;
  os << ", evaluation " << evaluation;
  if (!message.empty()) os << " — " << message;
  return os.str();
}

}  // namespace mali::resilience
