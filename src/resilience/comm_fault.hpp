#pragma once
// Communication-layer fault taxonomy — the typed events the distributed
// runtime turns lost messages, corrupt payloads, and dead or straggling
// ranks into.  See DESIGN.md §16.
//
// Mirrors the solver-level taxonomy of resilience/fault.hpp one layer down:
//  * CommFaultKind / CommSite describe what the comm-level *injector*
//    plants (drop a message, corrupt a payload, delay or straggle a rank,
//    kill a rank outright) and where (halo send/recv, an allreduce
//    contribution, a barrier).
//  * CommFaultType describes what a *guard* observed: a bounded mailbox
//    wait that expired (kTimeout), a checksum frame that failed to verify
//    (kChecksumMismatch), an allreduce round missing a rank's deposit
//    (kLostContribution), or the injected event itself surfacing at the
//    victim (kRankDeath / kInjected).  An injected drop manifests as
//    exactly the timeout an organic network loss would — the coordinated
//    recovery path treats both identically, which is the point.
//
// CommFaultError is the typed exception the guarded Communicator throws.
// It carries the full CommFault record (type, site, detecting rank,
// offending source rank when known) so the restart loop can log, agree on,
// and recover from the precise failure instead of deadlocking.

#include <cstddef>
#include <string>

#include "portability/common.hpp"

namespace mali::resilience {

/// What a comm-level fault injector plants.
enum class CommFaultKind {
  kDrop,       ///< a message / contribution / barrier arrival is lost
  kCorrupt,    ///< a payload is perturbed in flight (after checksumming)
  kDelay,      ///< the victim stalls briefly (well inside the timeout)
  kRankDeath,  ///< the victim dies at the injection point (typed throw)
  kStraggler,  ///< the victim stalls past the first timeout round
};

/// Where a comm fault is planted / detected.
enum class CommSite {
  kHaloSend,   ///< point-to-point send (halo import/export traffic)
  kHaloRecv,   ///< point-to-point receive
  kAllreduce,  ///< a reduction contribution (scalar, batched, split-phase)
  kBarrier,    ///< barrier arrival
};
inline constexpr int kNumCommSites = 4;

/// What a comm guard observed.
enum class CommFaultType {
  kNone,
  kTimeout,            ///< a bounded wait expired (dead or straggling peer)
  kChecksumMismatch,   ///< payload checksum failed to verify
  kLostContribution,   ///< an allreduce combined without a rank's deposit
  kRankDeath,          ///< a rank died at the injection point
  kInjected,           ///< an injected event with no organic analogue here
};

[[nodiscard]] const char* to_string(CommFaultKind k);
[[nodiscard]] const char* to_string(CommSite s);
[[nodiscard]] const char* to_string(CommFaultType t);

/// One detected comm fault — everything a guard knows at detection time.
struct CommFault {
  CommFaultType type = CommFaultType::kNone;
  CommSite site = CommSite::kHaloSend;
  /// Rank that detected (or raised) the fault; -1 when unknown.
  int rank = -1;
  /// Offending peer when known (checksum mismatch names the sender, a lost
  /// contribution names the missing depositor); -1 when unknown.
  int source_rank = -1;
  /// Site-local evaluation counter at detection (0-based) on the detecting
  /// rank; meaningful for injected faults, 0 for derived ones.
  std::size_t evaluation = 0;
  std::string message;

  [[nodiscard]] std::string describe() const;
};

/// Typed exception carrying a CommFault.  The guarded Communicator throws
/// it; solve_distributed's coordinated restart loop catches it (or lets it
/// propagate to the caller once the restart budget is exhausted).
class CommFaultError : public Error {
 public:
  explicit CommFaultError(CommFault fault)
      : Error(fault.describe()), fault_(std::move(fault)) {}
  [[nodiscard]] const CommFault& fault() const noexcept { return fault_; }

 private:
  CommFault fault_;
};

/// What / where / when to inject at the comm layer.  Parsed from the
/// "comm:"-prefixed extension of the PR-4 fault-spec grammar:
///
///   comm:kind:site[:evaluation][:repeat]
///
/// e.g. "comm:drop:halo-send:2", "comm:corrupt:allreduce",
/// "comm:rank-death:barrier:1", "comm:straggler:halo-recv:0:repeat".
/// The un-prefixed grammar still parses exactly as before (the CLI
/// dispatches on the prefix), so every legacy spec and its pins hold.
struct CommFaultSpec {
  CommFaultKind kind = CommFaultKind::kDrop;
  CommSite site = CommSite::kHaloSend;
  /// Fire at the N-th evaluation of `site` ON THE VICTIM RANK (0-based).
  std::size_t at_evaluation = 0;
  /// Fire at every evaluation >= at_evaluation instead of exactly once.
  bool repeat = false;
  /// Seed for the victim-rank choice (and the corrupted payload entry).
  unsigned seed = 0x9E3779B9u;
  /// Member/run id mixed into the victim hash (ensemble decorrelation);
  /// 0 keeps the single-run choice.
  unsigned member = 0;
};

/// True iff `s` uses the comm-spec grammar (has the "comm:" prefix).
[[nodiscard]] bool is_comm_fault_spec(const std::string& s);

/// Parses "comm:kind:site[:evaluation][:repeat]" (prefix required).
/// Kinds: drop | corrupt | delay | rank-death | straggler.  Sites:
/// halo-send | halo-recv | allreduce | barrier.  Every kind is valid at
/// every site.  Throws mali::Error on a malformed spec.
[[nodiscard]] CommFaultSpec comm_fault_spec_from_string(const std::string& s);

/// Human-readable round-trip of a spec ("comm:drop:halo-send:2").
[[nodiscard]] std::string to_string(const CommFaultSpec& spec);

/// Deterministic comm-level injector.  One instance per rank thread (the
/// per-site counters are not synchronized); every rank constructs one from
/// the same spec, counts its own site evaluations, and only the seeded
/// victim rank acts on a firing.  Determinism: the victim and the firing
/// evaluation depend only on the spec — never on thread interleaving.
class CommFaultInjector {
 public:
  explicit CommFaultInjector(CommFaultSpec spec) : spec_(spec) {}

  /// Counts one evaluation of `site` and returns true iff the configured
  /// fault fires for it (the caller still checks victimhood).
  [[nodiscard]] bool fire(CommSite site);

  /// The rank this spec victimizes in an n-rank world (seeded splitmix64
  /// hash — stable across runs, independent of when it is asked).
  [[nodiscard]] int target_rank(int n_ranks) const;

  [[nodiscard]] const CommFaultSpec& spec() const noexcept { return spec_; }
  /// Evaluations of `site` seen so far on this rank.
  [[nodiscard]] std::size_t count(CommSite site) const;
  /// How many times the fault has fired on this rank.
  [[nodiscard]] int fired() const noexcept { return fired_; }

 private:
  CommFaultSpec spec_;
  std::size_t counts_[kNumCommSites] = {0, 0, 0, 0};
  int fired_ = 0;
};

}  // namespace mali::resilience
