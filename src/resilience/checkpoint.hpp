#pragma once
// SolverCheckpoint — the "last good state" the Newton recovery ladder's
// final rung restores: the solution vector, its residual norm, the active
// continuation parameter, and the Newton step it was taken at.  Kept
// in-memory by the solver; optionally mirrored on disk through
// io::write_solver_checkpoint (see DESIGN.md §11 for the file format) so a
// crashed run can restart from the last accepted step.

#include <cstddef>
#include <string>
#include <vector>

namespace mali::resilience {

struct SolverCheckpoint {
  std::vector<double> U;        ///< the accepted solution
  double residual_norm = 0.0;   ///< ||F(U)||
  double parameter = 0.0;       ///< continuation parameter (0 when unused)
  int newton_step = 0;          ///< step the checkpoint was taken after
  bool valid = false;           ///< false until first capture

  /// Writes the checkpoint to `path` (bit-exact round trip).
  void save(const std::string& path) const;
};

/// Reads a checkpoint written by SolverCheckpoint::save.  Throws
/// mali::Error on a missing or malformed file.
[[nodiscard]] SolverCheckpoint load_checkpoint(const std::string& path);

/// TransientCheckpoint — the full prognostic state of a coupled forecast
/// run: cell thickness, flattened column temperatures, the last velocity
/// solution, the model time, the adaptive dt, and the step index.  A
/// restarted run that loads one of these reproduces the uninterrupted run
/// bit-for-bit (DESIGN.md §14).
struct TransientCheckpoint {
  std::vector<double> H;  ///< cell-centred thickness
  std::vector<double> T;  ///< column temperatures, column*levels + level
  std::vector<double> U;  ///< velocity solution (2 dofs per 3D node)
  double t = 0.0;         ///< model time, years
  double dt = 0.0;        ///< adaptive step size at capture
  int step = 0;           ///< completed step count
  bool valid = false;     ///< false until first capture

  /// Writes the checkpoint to `path` (bit-exact round trip).
  void save(const std::string& path) const;
};

/// Reads a checkpoint written by TransientCheckpoint::save.  Throws
/// mali::Error on a missing or malformed file.
[[nodiscard]] TransientCheckpoint load_transient_checkpoint(
    const std::string& path);

}  // namespace mali::resilience
