#include "resilience/guards.hpp"

#include <cmath>

namespace mali::resilience {

namespace {

[[noreturn]] void throw_non_finite(FaultType type, FaultSite site,
                                   std::size_t dof, double value,
                                   int newton_step, std::size_t evaluation,
                                   const char* what) {
  SolverFault f;
  f.type = type;
  f.site = site;
  f.dof = dof;
  f.value = value;
  f.newton_step = newton_step;
  f.evaluation = evaluation;
  f.message = what;
  throw SolverFaultError(std::move(f));
}

}  // namespace

// ---- GuardedOperator --------------------------------------------------

GuardedOperator::GuardedOperator(
    std::unique_ptr<linalg::LinearOperator> inner, GuardConfig cfg,
    FaultInjector* injector, const int* newton_step)
    : inner_(std::move(inner)),
      cfg_(cfg),
      injector_(injector),
      newton_step_(newton_step) {
  MALI_CHECK_MSG(inner_ != nullptr, "GuardedOperator requires an operator");
}

void GuardedOperator::apply(const std::vector<double>& x,
                            std::vector<double>& y) const {
  const std::size_t eval = applies_++;
  inner_->apply(x, y);
  if (injector_ != nullptr && injector_->fire(FaultSite::kOperatorApply)) {
    y[injector_->target_dof(y.size())] = injector_->poison();
  }
  if (cfg_.check_finite) {
    const std::ptrdiff_t bad = linalg::first_non_finite(y);
    if (bad >= 0) {
      throw_non_finite(FaultType::kNonFiniteOperatorApply,
                       FaultSite::kOperatorApply,
                       static_cast<std::size_t>(bad),
                       y[static_cast<std::size_t>(bad)],
                       newton_step_ != nullptr ? *newton_step_ : 0, eval,
                       "non-finite entry in operator-apply output");
    }
  }
}

// ---- GuardedProblem ---------------------------------------------------

GuardedProblem::GuardedProblem(nonlinear::NonlinearProblem& inner,
                               GuardConfig cfg, FaultInjector* injector)
    : inner_(&inner), cfg_(cfg), injector_(injector) {}

void GuardedProblem::check_input(const std::vector<double>& U,
                                 FaultSite site,
                                 std::size_t evaluation) const {
  if (cfg_.max_solution_norm <= 0.0) return;
  const double unorm = linalg::norm2(U);
  if (!(unorm <= cfg_.max_solution_norm)) {  // catches NaN too
    SolverFault f;
    f.type = FaultType::kSolutionDiverged;
    f.site = site;
    f.value = unorm;
    f.newton_step = newton_step_;
    f.evaluation = evaluation;
    f.message = "solution norm out of bounds on evaluation input";
    throw SolverFaultError(std::move(f));
  }
}

void GuardedProblem::residual(const std::vector<double>& U,
                              std::vector<double>& F) {
  const std::size_t eval = residual_evals_++;
  check_input(U, FaultSite::kResidual, eval);
  inner_->residual(U, F);
  if (injector_ != nullptr && injector_->fire(FaultSite::kResidual)) {
    F[injector_->target_dof(F.size())] = injector_->poison();
  }
  if (cfg_.check_finite) {
    const std::ptrdiff_t bad = linalg::first_non_finite(F);
    if (bad >= 0) {
      throw_non_finite(FaultType::kNonFiniteResidual, FaultSite::kResidual,
                       static_cast<std::size_t>(bad),
                       F[static_cast<std::size_t>(bad)], newton_step_, eval,
                       "non-finite entry in residual evaluation");
    }
  }
}

void GuardedProblem::residual_and_jacobian(const std::vector<double>& U,
                                           std::vector<double>& F,
                                           linalg::CrsMatrix& J) {
  const std::size_t eval = jacobian_evals_++;
  check_input(U, FaultSite::kJacobianAssembly, eval);
  inner_->residual_and_jacobian(U, F, J);
  if (injector_ != nullptr &&
      injector_->fire(FaultSite::kJacobianAssembly)) {
    F[injector_->target_dof(F.size())] = injector_->poison();
  }
  if (cfg_.check_finite) {
    std::ptrdiff_t bad = linalg::first_non_finite(F);
    if (bad >= 0) {
      throw_non_finite(FaultType::kNonFiniteResidual,
                       FaultSite::kJacobianAssembly,
                       static_cast<std::size_t>(bad),
                       F[static_cast<std::size_t>(bad)], newton_step_, eval,
                       "non-finite residual entry in Jacobian assembly");
    }
    bad = linalg::first_non_finite(J.values());
    if (bad >= 0) {
      // Report the row owning the offending entry, not the nnz index.
      const auto nz = static_cast<std::size_t>(bad);
      std::size_t row = 0;
      while (row + 1 < J.n_rows() && J.row_ptr()[row + 1] <= nz) ++row;
      throw_non_finite(FaultType::kNonFiniteJacobian,
                       FaultSite::kJacobianAssembly, row, J.values()[nz],
                       newton_step_, eval,
                       "non-finite entry in assembled Jacobian values");
    }
  }
}

std::unique_ptr<linalg::LinearOperator> GuardedProblem::jacobian_operator(
    const std::vector<double>& U) {
  auto op = inner_->jacobian_operator(U);
  if (op == nullptr) return nullptr;
  return std::make_unique<GuardedOperator>(std::move(op), cfg_, injector_,
                                           &newton_step_);
}

// ---- GuardedPreconditioner --------------------------------------------

void GuardedPreconditioner::maybe_inject() {
  if (injector_ != nullptr && injector_->fire(FaultSite::kPrecondSetup)) {
    SolverFault f;
    f.type = FaultType::kPrecondSetupFailure;
    f.site = FaultSite::kPrecondSetup;
    f.evaluation = injector_->count(FaultSite::kPrecondSetup) - 1;
    f.message = std::string("injected preconditioner-setup failure (") +
                inner_->name() + ")";
    throw SolverFaultError(std::move(f));
  }
}

void GuardedPreconditioner::compute(const linalg::CrsMatrix& A) {
  maybe_inject();
  inner_->compute(A);
}

void GuardedPreconditioner::compute(const linalg::LinearOperator& A) {
  maybe_inject();
  inner_->compute(A);
}

}  // namespace mali::resilience
