#include "resilience/fault_injector.hpp"

#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

namespace mali::resilience {

namespace {

std::size_t site_index(FaultSite s) { return static_cast<std::size_t>(s); }

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  return parts;
}

FaultKind kind_from_string(const std::string& s) {
  if (s == "nan") return FaultKind::kNanPoison;
  if (s == "inf") return FaultKind::kInfPoison;
  if (s == "stagnation") return FaultKind::kStagnation;
  if (s == "precond-fail") return FaultKind::kPrecondFailure;
  throw Error("unknown fault kind: " + s +
              " (nan | inf | stagnation | precond-fail)");
}

FaultSite site_from_string(const std::string& s) {
  if (s == "residual") return FaultSite::kResidual;
  if (s == "operator-apply") return FaultSite::kOperatorApply;
  if (s == "jacobian") return FaultSite::kJacobianAssembly;
  if (s == "linear-solve") return FaultSite::kLinearSolve;
  if (s == "precond-setup") return FaultSite::kPrecondSetup;
  throw Error("unknown fault site: " + s +
              " (residual | operator-apply | jacobian | linear-solve | "
              "precond-setup)");
}

/// splitmix64 — a strong, tiny mixing function for the seeded dof choice.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

FaultSpec fault_spec_from_string(const std::string& s) {
  const auto parts = split(s, ':');
  MALI_CHECK_MSG(parts.size() >= 2 && parts.size() <= 4,
                 "fault spec must be kind:site[:evaluation][:repeat], got: " +
                     s);
  FaultSpec spec;
  spec.kind = kind_from_string(parts[0]);
  spec.site = site_from_string(parts[1]);
  if (parts.size() >= 3 && !parts[2].empty()) {
    spec.at_evaluation = static_cast<std::size_t>(std::stoul(parts[2]));
  }
  if (parts.size() == 4) {
    MALI_CHECK_MSG(parts[3] == "repeat",
                   "fault spec trailer must be 'repeat', got: " + parts[3]);
    spec.repeat = true;
  }
  // Sanity: the kind must make sense at the site.
  const bool poison = spec.kind == FaultKind::kNanPoison ||
                      spec.kind == FaultKind::kInfPoison;
  const bool poison_site = spec.site == FaultSite::kResidual ||
                           spec.site == FaultSite::kOperatorApply ||
                           spec.site == FaultSite::kJacobianAssembly;
  if (poison) {
    MALI_CHECK_MSG(poison_site, "NaN/Inf poison requires a residual, "
                                "operator-apply, or jacobian site");
  } else if (spec.kind == FaultKind::kStagnation) {
    MALI_CHECK_MSG(spec.site == FaultSite::kLinearSolve,
                   "stagnation faults require the linear-solve site");
  } else {  // kPrecondFailure
    MALI_CHECK_MSG(spec.site == FaultSite::kPrecondSetup,
                   "precond-fail faults require the precond-setup site");
  }
  return spec;
}

std::string to_string(const FaultSpec& spec) {
  std::ostringstream os;
  os << to_string(spec.kind) << ':' << to_string(spec.site) << ':'
     << spec.at_evaluation;
  if (spec.repeat) os << ":repeat";
  return os.str();
}

bool FaultInjector::fire(FaultSite site) {
  const std::size_t c = counts_[site_index(site)]++;
  if (site != spec_.site) return false;
  const bool hit =
      spec_.repeat ? c >= spec_.at_evaluation : c == spec_.at_evaluation;
  if (hit) ++fired_;
  return hit;
}

std::size_t FaultInjector::target_dof(std::size_t n) const {
  MALI_CHECK(n > 0);
  // member == 0 must reproduce the legacy splitmix64(seed) bits exactly
  // (test_resilience pins them), so the salt is mixed in only when set.
  std::uint64_t x = spec_.seed;
  if (spec_.member != 0) {
    x ^= splitmix64(static_cast<std::uint64_t>(spec_.member) *
                    0xD1B54A32D192ED03ull);
  }
  return static_cast<std::size_t>(splitmix64(x) % n);
}

double FaultInjector::poison() const {
  return spec_.kind == FaultKind::kInfPoison
             ? std::numeric_limits<double>::infinity()
             : std::numeric_limits<double>::quiet_NaN();
}

std::size_t FaultInjector::count(FaultSite site) const {
  return counts_[site_index(site)];
}

}  // namespace mali::resilience
