#include "resilience/recovery.hpp"

#include <algorithm>
#include <sstream>

namespace mali::resilience {

const char* to_string(RecoveryRung r) {
  switch (r) {
    case RecoveryRung::kRedampStep:
      return "redamp-step";
    case RecoveryRung::kGrowKrylov:
      return "grow-krylov";
    case RecoveryRung::kClimbPreconditioner:
      return "climb-preconditioner";
    case RecoveryRung::kAssembledFallback:
      return "assembled-fallback";
    case RecoveryRung::kRestoreCheckpoint:
      return "restore-checkpoint";
  }
  return "?";
}

bool RecoveryLog::tried(RecoveryRung rung) const {
  return std::any_of(attempts.begin(), attempts.end(),
                     [rung](const RecoveryAttempt& a) { return a.rung == rung; });
}

std::string RecoveryLog::to_string() const {
  std::ostringstream os;
  for (const auto& a : attempts) {
    os << "  step " << a.newton_step << "  trigger ["
       << resilience::to_string(a.trigger.type) << " @ "
       << resilience::to_string(a.trigger.site) << "]  rung "
       << resilience::to_string(a.rung) << "  (" << a.action << ")  -> "
       << (a.succeeded ? "recovered" : "not recovered") << '\n';
  }
  return os.str();
}

std::string RecoveryLog::tail(std::size_t n) const {
  std::ostringstream os;
  const std::size_t first = attempts.size() > n ? attempts.size() - n : 0;
  if (first > 0) os << "  ... (" << first << " earlier attempts)\n";
  for (std::size_t i = first; i < attempts.size(); ++i) {
    const auto& a = attempts[i];
    os << "  step " << a.newton_step << "  trigger ["
       << resilience::to_string(a.trigger.type) << " @ "
       << resilience::to_string(a.trigger.site) << "]  rung "
       << resilience::to_string(a.rung) << "  (" << a.action << ")  -> "
       << (a.succeeded ? "recovered" : "not recovered") << '\n';
  }
  return os.str();
}

}  // namespace mali::resilience
