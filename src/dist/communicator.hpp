#pragma once
// In-process MPI surrogate for the rank-parallel domain-decomposed solve.
//
// N "ranks" are N dedicated threads (pk::ThreadPool::parallel_tasks) sharing
// a CommWorld.  Each rank holds a Communicator handle exposing the minimal
// MPI-like surface the solve needs: barrier, deterministic allreduce, and
// tagged point-to-point messages.  The surrogate keeps the programming
// model honest — ranks only exchange data through explicit messages and
// reductions, never through shared state — so the code is shaped exactly
// like the MPI version MALI runs in production, while staying testable in
// one process (and under TSan).
//
// Determinism contract: allreduce_sum combines the per-rank partials in
// FIXED rank order on every rank, so all ranks receive the bit-identical
// result regardless of arrival order.  This is what keeps the injected
// rank-reduced inner products (linalg::InnerProduct) SPMD-lockstep.
//
// Failure contract: abort() poisons the world — every blocked or future
// collective/recv throws CommAborted instead of deadlocking, so one
// throwing rank cannot strand the others in a barrier.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace mali::dist {

/// Thrown out of any blocking call after abort() — a cooperative unwind,
/// not an error in the throwing rank itself.
class CommAborted : public std::runtime_error {
 public:
  CommAborted() : std::runtime_error("communicator aborted") {}
};

/// Per-rank traffic counters (no locking — each rank only touches its own
/// Communicator).  One allreduce of n values counts as ONE collective and n
/// reduced values; that distinction is what the batched/pipelined paths are
/// measured by: fewer collectives for the same number of reduced values.
struct CommCounters {
  std::size_t allreduces = 0;      ///< completed reduction collectives
  std::size_t reduced_values = 0;  ///< total scalars combined across them
  std::size_t sends = 0;           ///< point-to-point messages sent
  std::size_t recvs = 0;           ///< point-to-point messages received
};

/// Shared state for one group of ranks.  Construct once, hand each rank a
/// Communicator{world, rank}.
class CommWorld {
 public:
  explicit CommWorld(int size);

  [[nodiscard]] int size() const noexcept { return size_; }

  void barrier();
  /// Deterministic sum: deposits `local`, barriers, then every rank sums
  /// the slots in rank order (identical reassociation on all ranks).
  double allreduce_sum(int rank, double local);
  /// Element-wise deterministic sum of a small fixed-size vector (all ranks
  /// must pass the same size).
  std::vector<double> allreduce_sum(int rank, const std::vector<double>& local);
  double allreduce_max(int rank, double local);

  /// Split-phase vector allreduce.  allreduce_post deposits the local
  /// partials and returns WITHOUT synchronizing — the caller overlaps
  /// unrelated work (operator applies, halo point-to-point traffic) with the
  /// in-flight reduction.  allreduce_finish then barriers, combines the
  /// slots in fixed rank order (bit-identical on every rank, same contract
  /// as allreduce_sum) and barriers again to free the slots.  At most one
  /// reduction may be outstanding per rank, and under SPMD lockstep no other
  /// collective may run between a rank's post and its finish.
  void allreduce_post(int rank, const std::vector<double>& local);
  std::vector<double> allreduce_finish(int rank);

  /// Mailbox send: moves `data` into the (from, to, tag) channel.  Channels
  /// are FIFO; matching relies on both endpoints executing the same global
  /// sequence of exchanges (SPMD lockstep).
  void send(int from, int to, int tag, std::vector<double> data);
  /// Blocking mailbox receive from (from -> to, tag).
  std::vector<double> recv(int from, int to, int tag);

  /// Poison the world: wakes every blocked call, which then throws
  /// CommAborted; all future blocking calls throw immediately.
  void abort();
  [[nodiscard]] bool aborted() const;

 private:
  void check_abort_locked() const;

  const int size_;
  mutable std::mutex mu_;
  std::condition_variable cv_barrier_;
  std::condition_variable cv_mail_;
  int barrier_count_ = 0;
  std::size_t barrier_gen_ = 0;
  std::vector<double> reduce_slots_;
  std::vector<std::vector<double>> reduce_vec_slots_;
  std::vector<char> reduce_posted_;  ///< per-rank: split-phase post in flight
  std::map<std::tuple<int, int, int>, std::deque<std::vector<double>>> mail_;
  bool aborted_ = false;
};

/// Per-rank handle: the interface the solver code sees (mirrors an MPI
/// communicator bound to a rank).
class Communicator {
 public:
  Communicator(CommWorld& world, int rank) : world_(&world), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return world_->size(); }

  void barrier() { world_->barrier(); }
  [[nodiscard]] double allreduce_sum(double v) {
    ++counters_.allreduces;
    ++counters_.reduced_values;
    return world_->allreduce_sum(rank_, v);
  }
  [[nodiscard]] std::vector<double> allreduce_sum(
      const std::vector<double>& v) {
    return allreduce_n(v);
  }
  /// Batched reduction: all n values ride ONE collective (one message per
  /// fabric neighbor in a real MPI allreduce) instead of n scalar rounds.
  /// Gram-Schmidt and the fused pipelined recurrences go through this.
  [[nodiscard]] std::vector<double> allreduce_n(const std::vector<double>& v) {
    ++counters_.allreduces;
    counters_.reduced_values += v.size();
    return world_->allreduce_sum(rank_, v);
  }
  /// Split-phase batched reduction; see CommWorld::allreduce_post/finish.
  /// Counted once, at finish, as a single collective.
  void allreduce_post(const std::vector<double>& v) {
    world_->allreduce_post(rank_, v);
  }
  [[nodiscard]] std::vector<double> allreduce_finish() {
    std::vector<double> out = world_->allreduce_finish(rank_);
    ++counters_.allreduces;
    counters_.reduced_values += out.size();
    return out;
  }
  [[nodiscard]] double allreduce_max(double v) {
    ++counters_.allreduces;
    ++counters_.reduced_values;
    return world_->allreduce_max(rank_, v);
  }
  void send(int to, int tag, std::vector<double> data) {
    ++counters_.sends;
    world_->send(rank_, to, tag, std::move(data));
  }
  [[nodiscard]] std::vector<double> recv(int from, int tag) {
    ++counters_.recvs;
    return world_->recv(from, rank_, tag);
  }
  void abort() { world_->abort(); }
  [[nodiscard]] CommWorld& world() noexcept { return *world_; }

  /// Traffic counters for THIS rank's handle (reductions, messages).  Tests
  /// and benches pin message counts against these; reset between phases to
  /// scope the measurement.
  [[nodiscard]] const CommCounters& counters() const noexcept {
    return counters_;
  }
  void reset_counters() noexcept { counters_ = CommCounters{}; }

 private:
  CommWorld* world_;
  int rank_;
  CommCounters counters_;
};

}  // namespace mali::dist
