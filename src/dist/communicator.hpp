#pragma once
// In-process MPI surrogate for the rank-parallel domain-decomposed solve.
//
// N "ranks" are N dedicated threads (pk::ThreadPool::parallel_tasks) sharing
// a CommWorld.  Each rank holds a Communicator handle exposing the minimal
// MPI-like surface the solve needs: barrier, deterministic allreduce, and
// tagged point-to-point messages.  The surrogate keeps the programming
// model honest — ranks only exchange data through explicit messages and
// reductions, never through shared state — so the code is shaped exactly
// like the MPI version MALI runs in production, while staying testable in
// one process (and under TSan).
//
// Determinism contract: allreduce_sum combines the per-rank partials in
// FIXED rank order on every rank, so all ranks receive the bit-identical
// result regardless of arrival order.  This is what keeps the injected
// rank-reduced inner products (linalg::InnerProduct) SPMD-lockstep.
//
// Failure contract: abort() poisons the world — every blocked or future
// collective/recv throws CommAborted instead of deadlocking, so one
// throwing rank cannot strand the others in a barrier.  abort_with()
// additionally records a typed resilience::CommFault; when several ranks
// race to poison the world, the record kept is deterministic: integrity
// and injected faults outrank derived timeouts, ties go to the lowest
// detecting rank — the "collective fault agreement" of DESIGN.md §16.
//
// Guard contract (CommGuardConfig): with a timeout configured, every
// blocking wait (barrier arrival, mailbox receive, reduction completion)
// is bounded — it re-waits `wait_retries` times with exponential backoff
// (riding out stragglers), then throws a typed CommFaultError instead of
// hanging on a dead peer.  With checksums enabled, every point-to-point
// payload is framed with an FNV-1a checksum verified at the receiver, and
// every reduction deposit is checksummed and generation-counted so a
// corrupt or missing contribution surfaces as a typed fault during the
// rank-ordered combine — identically on every rank.  Neither guard alters
// payload values or the combine order: the clean path stays bit-identical
// with guards on (pinned by tests/test_dist.cpp).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "resilience/comm_fault.hpp"

namespace mali::dist {

/// Thrown out of any blocking call after abort() — a cooperative unwind,
/// not an error in the throwing rank itself.
class CommAborted : public std::runtime_error {
 public:
  CommAborted() : std::runtime_error("communicator aborted") {}
};

/// Comm-layer guard configuration (DESIGN.md §16).  Default-constructed
/// guards are fully off: unbounded waits, no framing — the legacy
/// behavior, bit-for-bit and byte-for-byte.
struct CommGuardConfig {
  /// Frame point-to-point payloads and reduction deposits with FNV-1a
  /// checksums (verified at the receiver / during the combine) and
  /// generation-count reduction deposits (a missing contribution is a
  /// typed fault, not silent staleness).
  bool checksums = false;
  /// Bound every blocking wait to this many seconds per round; 0 keeps
  /// the legacy unbounded waits.
  double timeout_s = 0.0;
  /// Extra wait rounds before declaring a timeout (straggler tolerance):
  /// a wait spans 1 + wait_retries rounds total.
  int wait_retries = 2;
  /// Timeout multiplier per retry round (round i waits timeout_s *
  /// backoff^i).
  double backoff = 1.5;
  [[nodiscard]] bool bounded() const noexcept { return timeout_s > 0.0; }
};

/// Per-rank traffic counters (no locking — each rank only touches its own
/// Communicator).  One allreduce of n values counts as ONE collective and n
/// reduced values; that distinction is what the batched/pipelined paths are
/// measured by: fewer collectives for the same number of reduced values.
struct CommCounters {
  std::size_t allreduces = 0;      ///< completed reduction collectives
  std::size_t reduced_values = 0;  ///< total scalars combined across them
  std::size_t sends = 0;           ///< point-to-point messages sent
  std::size_t recvs = 0;           ///< point-to-point messages received
};

/// Shared state for one group of ranks.  Construct once, hand each rank a
/// Communicator{world, rank}.
class CommWorld {
 public:
  explicit CommWorld(int size);

  [[nodiscard]] int size() const noexcept { return size_; }

  /// Install the guard configuration.  Call before any rank uses the
  /// world (the restart loop sets it right after construction).
  void set_guards(const CommGuardConfig& g) { guards_ = g; }
  [[nodiscard]] const CommGuardConfig& guards() const noexcept {
    return guards_;
  }

  /// `rank`/`site` attribute a potential timeout fault to the waiting
  /// rank and the collective it was stuck in.
  void barrier(int rank = -1,
               resilience::CommSite site = resilience::CommSite::kBarrier);
  /// Deterministic sum: deposits `local`, barriers, then every rank sums
  /// the slots in rank order (identical reassociation on all ranks).
  /// `skip_deposit` / `corrupt` are the injection back-doors the guarded
  /// Communicator drives (a skipped deposit leaves the slot stale; a
  /// corrupt one is perturbed AFTER its checksum was computed).
  double allreduce_sum(int rank, double local, bool skip_deposit = false,
                       bool corrupt = false);
  /// Element-wise deterministic sum of a small fixed-size vector (all ranks
  /// must pass the same size).
  std::vector<double> allreduce_sum(int rank, const std::vector<double>& local,
                                    bool skip_deposit = false,
                                    bool corrupt = false);
  double allreduce_max(int rank, double local, bool skip_deposit = false,
                       bool corrupt = false);

  /// Split-phase vector allreduce.  allreduce_post deposits the local
  /// partials and returns WITHOUT synchronizing — the caller overlaps
  /// unrelated work (operator applies, halo point-to-point traffic) with the
  /// in-flight reduction.  allreduce_finish then barriers, combines the
  /// slots in fixed rank order (bit-identical on every rank, same contract
  /// as allreduce_sum) and barriers again to free the slots.  At most one
  /// reduction may be outstanding per rank, and under SPMD lockstep no other
  /// collective may run between a rank's post and its finish.
  void allreduce_post(int rank, const std::vector<double>& local,
                      bool skip_deposit = false, bool corrupt = false);
  std::vector<double> allreduce_finish(int rank);

  /// Mailbox send: moves `data` into the (from, to, tag) channel.  Channels
  /// are FIFO; matching relies on both endpoints executing the same global
  /// sequence of exchanges (SPMD lockstep).  With checksums on the payload
  /// is framed before queuing; `corrupt` perturbs it after framing.
  void send(int from, int to, int tag, std::vector<double> data,
            bool corrupt = false);
  /// Blocking mailbox receive from (from -> to, tag); verifies and strips
  /// the checksum frame when checksums are on (`corrupt` perturbs the
  /// payload BEFORE verification — in-flight corruption at the receiver).
  std::vector<double> recv(int from, int to, int tag, bool corrupt = false);

  /// Poison the world: wakes every blocked call, which then throws
  /// CommAborted; all future blocking calls throw immediately.
  void abort();
  /// abort() plus a typed fault record.  Racing records resolve
  /// deterministically: higher-severity fault wins (integrity/injected >
  /// timeout), ties to the lowest detecting rank.
  void abort_with(const resilience::CommFault& fault);
  [[nodiscard]] bool aborted() const;
  /// The agreed fault record (type kNone when abort() was untyped or the
  /// world is healthy).
  [[nodiscard]] resilience::CommFault fault() const;

 private:
  void check_abort_locked() const;
  /// Bounded condition wait: waits on `cv` until `pred`, in 1+wait_retries
  /// rounds of timeout_s*backoff^i each when guards are bounded (else
  /// unbounded).  Throws a typed kTimeout CommFaultError on expiry.
  void wait_guarded(std::unique_lock<std::mutex>& lk,
                    std::condition_variable& cv,
                    const std::function<bool()>& pred, int rank,
                    resilience::CommSite site);
  /// Rank-ordered integrity scan of the reduction slots (generation +
  /// checksum); throws an identical typed fault on every rank when a
  /// contribution is missing or corrupt.  Caller holds mu_.
  void check_reduction_locked(int rank, bool vector_slots,
                              resilience::CommSite site);

  const int size_;
  CommGuardConfig guards_;
  mutable std::mutex mu_;
  std::condition_variable cv_barrier_;
  std::condition_variable cv_mail_;
  int barrier_count_ = 0;
  std::size_t barrier_gen_ = 0;
  std::vector<double> reduce_slots_;
  std::vector<std::vector<double>> reduce_vec_slots_;
  std::vector<char> reduce_posted_;  ///< per-rank: split-phase post in flight
  std::vector<std::uint64_t> reduce_gen_;        ///< deposits seen per rank
  std::vector<std::uint64_t> reduce_sums_;       ///< scalar slot checksums
  std::vector<std::uint64_t> reduce_vec_sums_;   ///< vector slot checksums
  std::map<std::tuple<int, int, int>, std::deque<std::vector<double>>> mail_;
  bool aborted_ = false;
  resilience::CommFault fault_;  ///< agreed record (kNone when untyped)
};

/// Per-rank handle: the interface the solver code sees (mirrors an MPI
/// communicator bound to a rank).  An optional per-rank CommFaultInjector
/// plants deterministic comm faults: every rank counts its own site
/// evaluations, and only the seeded victim rank acts on a firing — drop
/// skips the operation, corrupt perturbs the payload post-framing, delay /
/// straggler stall relative to the configured timeout, rank-death throws a
/// typed fault at the injection point.
class Communicator {
 public:
  Communicator(CommWorld& world, int rank) : world_(&world), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return world_->size(); }

  /// Arm deterministic comm-fault injection for THIS rank's handle (not
  /// owned; one injector per rank — the per-site counters are unsynced).
  void set_fault_injector(resilience::CommFaultInjector* inj) noexcept {
    injector_ = inj;
  }

  void barrier() {
    if (inject(resilience::CommSite::kBarrier) == Inject::kSkip) return;
    world_->barrier(rank_, resilience::CommSite::kBarrier);
  }
  [[nodiscard]] double allreduce_sum(double v) {
    ++counters_.allreduces;
    ++counters_.reduced_values;
    const Inject a = inject(resilience::CommSite::kAllreduce);
    return world_->allreduce_sum(rank_, v, a == Inject::kSkip,
                                 a == Inject::kCorrupt);
  }
  [[nodiscard]] std::vector<double> allreduce_sum(
      const std::vector<double>& v) {
    return allreduce_n(v);
  }
  /// Batched reduction: all n values ride ONE collective (one message per
  /// fabric neighbor in a real MPI allreduce) instead of n scalar rounds.
  /// Gram-Schmidt and the fused pipelined recurrences go through this.
  [[nodiscard]] std::vector<double> allreduce_n(const std::vector<double>& v) {
    ++counters_.allreduces;
    counters_.reduced_values += v.size();
    const Inject a = inject(resilience::CommSite::kAllreduce);
    return world_->allreduce_sum(rank_, v, a == Inject::kSkip,
                                 a == Inject::kCorrupt);
  }
  /// Split-phase batched reduction; see CommWorld::allreduce_post/finish.
  /// Counted once, at finish, as a single collective.  The injection hook
  /// sits at the post (the deposit is the contribution being faulted).
  void allreduce_post(const std::vector<double>& v) {
    const Inject a = inject(resilience::CommSite::kAllreduce);
    world_->allreduce_post(rank_, v, a == Inject::kSkip,
                           a == Inject::kCorrupt);
  }
  [[nodiscard]] std::vector<double> allreduce_finish() {
    std::vector<double> out = world_->allreduce_finish(rank_);
    ++counters_.allreduces;
    counters_.reduced_values += out.size();
    return out;
  }
  [[nodiscard]] double allreduce_max(double v) {
    ++counters_.allreduces;
    ++counters_.reduced_values;
    const Inject a = inject(resilience::CommSite::kAllreduce);
    return world_->allreduce_max(rank_, v, a == Inject::kSkip,
                                 a == Inject::kCorrupt);
  }
  void send(int to, int tag, std::vector<double> data) {
    ++counters_.sends;
    const Inject a = inject(resilience::CommSite::kHaloSend);
    if (a == Inject::kSkip) return;  // dropped on the wire
    world_->send(rank_, to, tag, std::move(data), a == Inject::kCorrupt);
  }
  [[nodiscard]] std::vector<double> recv(int from, int tag) {
    ++counters_.recvs;
    const Inject a = inject(resilience::CommSite::kHaloRecv);
    if (a == Inject::kSkip) {
      // The arrived message is lost; the re-receive waits for a retransmit
      // that never comes and surfaces the bounded-wait timeout.
      (void)world_->recv(from, rank_, tag);
    }
    return world_->recv(from, rank_, tag, a == Inject::kCorrupt);
  }
  void abort() { world_->abort(); }
  [[nodiscard]] CommWorld& world() noexcept { return *world_; }

  /// Traffic counters for THIS rank's handle (reductions, messages).  Tests
  /// and benches pin message counts against these; reset between phases to
  /// scope the measurement.
  [[nodiscard]] const CommCounters& counters() const noexcept {
    return counters_;
  }
  void reset_counters() noexcept { counters_ = CommCounters{}; }

 private:
  enum class Inject { kNone, kSkip, kCorrupt };
  /// Consults the injector for one evaluation of `site`; applies the
  /// victim-side effect (sleep, typed throw) and tells the caller whether
  /// to skip or corrupt the operation.
  Inject inject(resilience::CommSite site);

  CommWorld* world_;
  int rank_;
  CommCounters counters_;
  resilience::CommFaultInjector* injector_ = nullptr;
};

}  // namespace mali::dist
