#pragma once
// Per-rank subdomain of the FO Stokes assembly (see DESIGN.md §12).
//
// A Subdomain stages compact copies of the element data (connectivity,
// coordinates, basis arrays, body force, basal faces) for the 3D cells this
// rank owns — every layer of every owned base cell — and re-runs the exact
// evaluator chain of StokesFOProblem over them with the Serial execution
// space (rank bodies are dedicated threads; they must never re-enter the
// shared thread pool).  Global node ids are RETAINED, so the rank assembles
// into GLOBAL-extent vectors: its own entries become partial sums that the
// HaloExchange export completes at the owners.
//
// Cell ordering — interior first:
//   [0, n_interior_cells)            cells whose 8 nodes all lie in OWNED
//                                    columns (assembly reads no ghost data)
//   [n_interior_cells, n_cells)     cells touching >= 1 ghost column
// The split enables communication/computation overlap (post the halo
// import, assemble the interior, finish the import, assemble the boundary)
// while keeping the assembly order — and therefore the floating-point
// result — IDENTICAL whether or not the overlap is enabled.  Within each
// segment, cells are ordered base-cell-ascending, layer-fastest, so a
// single-rank Subdomain visits cells in exactly the serial problem's order.
//
// Scatter reuses PR 1's machinery verbatim (scatter_add with per-segment
// greedy colorings), instantiated on pk::Serial.

#include <cstddef>
#include <vector>

#include "linalg/crs_matrix.hpp"
#include "mesh/coloring.hpp"
#include "mesh/partition.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/view.hpp"

namespace mali::dist {

class Subdomain {
 public:
  /// Stages the rank's element data from the (shared, read-only) problem.
  /// `problem` and `part` must outlive the Subdomain.
  Subdomain(const physics::StokesFOProblem& problem,
            const mesh::Partition& part, int rank);

  // Segment ids for the overlap split.
  static constexpr int kInterior = 0;
  static constexpr int kBoundary = 1;

  [[nodiscard]] std::size_t n_cells() const noexcept { return n_cells_; }
  [[nodiscard]] std::size_t n_interior_cells() const noexcept {
    return n_interior_;
  }
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] const mesh::Partition& partition() const noexcept {
    return *part_;
  }
  [[nodiscard]] const physics::StokesFOProblem& problem() const noexcept {
    return *problem_;
  }

  /// Vector entries this rank owns (dofs of owned columns, ascending) — the
  /// index set the rank-reduced inner product sums.
  [[nodiscard]] const std::vector<std::size_t>& owned_dofs() const noexcept {
    return owned_dofs_;
  }
  /// Dirichlet dofs in OWNED columns — the rows this rank is responsible
  /// for overriding after each halo export.
  [[nodiscard]] const std::vector<std::size_t>& owned_dirichlet_dofs()
      const noexcept {
    return owned_dirichlet_dofs_;
  }
  /// All dofs of local (owned + ghost) columns, in column-plan order (owned
  /// columns ascending, then ghost columns ascending) — the rows the rank's
  /// partial operator can touch (the assembled apply iterates these).
  [[nodiscard]] const std::vector<std::size_t>& local_dofs() const noexcept {
    return local_dofs_;
  }
  /// Per 3D node: 1 iff the node's column is local (owned or ghost).
  [[nodiscard]] const std::vector<char>& node_is_local() const noexcept {
    return node_is_local_;
  }
  /// Per 3D node: 1 iff the node's column is OWNED by this rank.
  [[nodiscard]] const std::vector<char>& node_is_owned() const noexcept {
    return node_is_owned_;
  }

  /// Assembles the residual contribution of segment `seg`'s cells into the
  /// global-extent F (partial sums; run export_add afterwards).  `x` is the
  /// global-extent solution; ghost entries must be valid for kBoundary (the
  /// interior segment reads only owned columns by construction).
  void assemble_residual_segment(int seg, const std::vector<double>& x,
                                 std::vector<double>& F);

  /// Same, with the SFad<16> Jacobian evaluation scattering into the
  /// global-sparsity CRS matrix J as well (partial values).
  void assemble_jacobian_segment(int seg, const std::vector<double>& x,
                                 std::vector<double>& F, linalg::CrsMatrix& J);

  /// Accumulates this rank's cells' tangent contribution y += J_local(U) x
  /// (both segments, interior first) via the fused per-element SFad<1>
  /// kernel.  U and x must have valid ghost entries; y must be global
  /// extent and pre-zeroed by the caller.
  void apply_tangent(const std::vector<double>& U,
                     const std::vector<double>& x, std::vector<double>& y);

  /// Partial per-node 2x2 diagonal blocks of J(U) from this rank's cells
  /// (row-major, n_nodes blocks = 2 * n_dofs doubles; zero outside local
  /// columns, no Dirichlet handling — complete via export_add and override
  /// at the owners).
  [[nodiscard]] std::vector<double> partial_node_blocks(
      const std::vector<double>& U);

  /// Wall-clock spent in assembly/tangent kernels on this rank (the
  /// "measured kernel time" bench_weak_scaling reports next to the model).
  [[nodiscard]] double kernel_seconds() const noexcept { return kernel_s_; }
  void reset_kernel_seconds() noexcept { kernel_s_ = 0.0; }

 private:
  struct Segment {
    std::size_t offset = 0;  ///< first local cell of the segment
    std::size_t count = 0;
    /// Basal faces whose cell lies in the segment; cell index relative to
    /// `offset` (matching the windowed views the evaluators see).
    pk::View<std::size_t, 1> face_cell_local;
    pk::View<double, 3> face_wBF;  ///< (F, 4, Qf)
    pk::View<double, 1> face_beta;
    mesh::CellColoring coloring;  ///< greedy, over the segment's cells
  };

  template <class EvalT>
  void evaluate_segment(const Segment& seg, const pk::View<double, 1>& Uview);
  template <class EvalT>
  void assemble_segment(const Segment& seg, const std::vector<double>& x,
                        std::vector<double>& F, linalg::CrsMatrix* J);

  const physics::StokesFOProblem* problem_;
  const mesh::Partition* part_;
  int rank_;
  std::size_t n_cells_ = 0;
  std::size_t n_interior_ = 0;
  Segment segments_[2];

  // Compact per-local-cell element data (global node ids retained).
  pk::View<std::size_t, 2> cell_nodes_;  ///< (C, N)
  pk::View<double, 3> coords_;           ///< (C, N, 3)
  pk::View<double, 4> gradBF_;           ///< (C, N, Q, 3)
  pk::View<double, 4> wGradBF_;          ///< (C, N, Q, 3)
  pk::View<double, 3> wBF_;              ///< (C, N, Q)
  pk::View<double, 3> force_passive_;    ///< (C, Q, 2)
  pk::View<double, 2> flow_factor_;      ///< (C, Q) thermal mode only

  pk::View<double, 3> tangent_;  ///< (C, N, 2) per-cell J_e x_e scratch

  // Private field buffers (the shared problem's FieldSets would race).
  physics::FieldSet<physics::ResidualEval::ScalarT> res_fields_;
  physics::FieldSet<physics::JacobianEval::ScalarT> jac_fields_;

  std::vector<std::size_t> owned_dofs_;
  std::vector<std::size_t> owned_dirichlet_dofs_;
  std::vector<std::size_t> local_dofs_;
  std::vector<char> node_is_local_;
  std::vector<char> node_is_owned_;

  double kernel_s_ = 0.0;

  template <class ScalarT>
  physics::FieldSet<ScalarT>& fields();
};

}  // namespace mali::dist
