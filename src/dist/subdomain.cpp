#include "dist/subdomain.hpp"

#include <algorithm>

#include "ad/scalar_traits.hpp"
#include "physics/evaluators.hpp"
#include "physics/stokes_fo_resid.hpp"
#include "physics/stokes_jacobian_apply.hpp"
#include "portability/common.hpp"
#include "portability/parallel.hpp"
#include "portability/timer.hpp"

namespace mali::dist {

using physics::FieldSet;
using physics::JacobianEval;
using physics::ResidualEval;

Subdomain::Subdomain(const physics::StokesFOProblem& problem,
                     const mesh::Partition& part, int rank)
    : problem_(&problem), part_(&part), rank_(rank) {
  MALI_CHECK(rank >= 0 && rank < part.n_parts);
  const auto r = static_cast<std::size_t>(rank);
  const fem::GeometryWorkset& ws = problem.workset();
  const mesh::ExtrudedMesh& mesh = problem.mesh();
  const auto L = static_cast<std::size_t>(mesh.n_layers());
  const int N = ws.num_nodes;
  const int Q = ws.num_qps;
  const int Qf = ws.face_qps;

  // ---- local cell list: interior base cells first, then boundary ----
  // A base cell is interior iff all 4 of its columns are owned by this
  // rank; its layers then read no ghost data during assembly.  Within each
  // class, base cells ascend and layers ascend, so a single-rank Subdomain
  // (everything interior) visits cells in exactly the serial order.
  std::vector<std::size_t> local_cells;
  local_cells.reserve(part.part_cells[r].size() * L);
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::size_t bc : part.part_cells[r]) {
      bool interior = true;
      for (int k = 0; k < 4; ++k) {
        const std::size_t col = mesh.base().cell_node(bc, k);
        if (part.column_owner[col] != rank) {
          interior = false;
          break;
        }
      }
      if ((pass == 0) != interior) continue;
      for (std::size_t layer = 0; layer < L; ++layer) {
        local_cells.push_back(mesh.cell_id(bc, layer));
      }
    }
    if (pass == 0) n_interior_ = local_cells.size();
  }
  n_cells_ = local_cells.size();
  const std::size_t C = n_cells_;

  // ---- stage compact element data (global node ids retained) ----
  cell_nodes_ = pk::View<std::size_t, 2>("sd_cell_nodes", C, N);
  coords_ = pk::View<double, 3>("sd_coords", C, N, 3);
  gradBF_ = pk::View<double, 4>("sd_gradBF", C, N, Q, 3);
  wGradBF_ = pk::View<double, 4>("sd_wGradBF", C, N, Q, 3);
  wBF_ = pk::View<double, 3>("sd_wBF", C, N, Q);
  force_passive_ = pk::View<double, 3>("sd_force_passive", C, Q, 2);
  const bool thermal = problem.flow_factor().allocated();
  if (thermal) flow_factor_ = pk::View<double, 2>("sd_flow_factor", C, Q);
  for (std::size_t c = 0; c < C; ++c) {
    const std::size_t g = local_cells[c];
    for (int k = 0; k < N; ++k) {
      cell_nodes_(c, k) = ws.cell_nodes(g, k);
      for (int d = 0; d < 3; ++d) coords_(c, k, d) = ws.coords(g, k, d);
      for (int q = 0; q < Q; ++q) {
        wBF_(c, k, q) = ws.wBF(g, k, q);
        for (int d = 0; d < 3; ++d) {
          gradBF_(c, k, q, d) = ws.gradBF(g, k, q, d);
          wGradBF_(c, k, q, d) = ws.wGradBF(g, k, q, d);
        }
      }
    }
    for (int q = 0; q < Q; ++q) {
      force_passive_(c, q, 0) = problem.force_passive()(g, q, 0);
      force_passive_(c, q, 1) = problem.force_passive()(g, q, 1);
      if (thermal) flow_factor_(c, q) = problem.flow_factor()(g, q);
    }
  }

  // ---- segments + their basal faces and colorings ----
  segments_[kInterior].offset = 0;
  segments_[kInterior].count = n_interior_;
  segments_[kBoundary].offset = n_interior_;
  segments_[kBoundary].count = n_cells_ - n_interior_;

  std::vector<std::ptrdiff_t> global_to_local_cell(mesh.n_cells(), -1);
  for (std::size_t c = 0; c < C; ++c) {
    global_to_local_cell[local_cells[c]] = static_cast<std::ptrdiff_t>(c);
  }
  std::vector<std::size_t> seg_faces[2];
  for (std::size_t f = 0; f < ws.n_basal_faces; ++f) {
    const std::ptrdiff_t l = global_to_local_cell[ws.basal_face_cell(f)];
    if (l < 0) continue;
    seg_faces[static_cast<std::size_t>(l) < n_interior_ ? 0 : 1].push_back(f);
  }
  for (int s = 0; s < 2; ++s) {
    Segment& seg = segments_[s];
    const std::size_t Fw = seg_faces[s].size();
    seg.face_cell_local = pk::View<std::size_t, 1>("sd_face_cell", Fw);
    seg.face_wBF = pk::View<double, 3>("sd_face_wBF", Fw, 4, Qf);
    seg.face_beta = pk::View<double, 1>("sd_face_beta", Fw);
    for (std::size_t i = 0; i < Fw; ++i) {
      const std::size_t f = seg_faces[s][i];
      seg.face_cell_local(i) = static_cast<std::size_t>(
                                   global_to_local_cell[ws.basal_face_cell(f)]) -
                               seg.offset;
      seg.face_beta(i) = ws.basal_beta(f);
      for (int k = 0; k < 4; ++k) {
        for (int q = 0; q < Qf; ++q) {
          seg.face_wBF(i, k, q) = ws.basal_wBF(f, k, q);
        }
      }
    }
    // Greedy coloring on the staged connectivity: the segment is an
    // arbitrary cell subset (not a contiguous lattice range), which is
    // exactly the case greedy_color_cells handles.
    seg.coloring = mesh::greedy_color_cells(cell_nodes_, seg.offset, seg.count,
                                            N);
  }

  tangent_ = pk::View<double, 3>("sd_tangent", C, N, 2);

  // ---- ownership index sets ----
  const std::size_t levels = mesh.levels();
  node_is_local_.assign(mesh.n_nodes(), 0);
  node_is_owned_.assign(mesh.n_nodes(), 0);
  owned_dofs_.reserve(part.owned_column_ids[r].size() * levels * 2);
  for (const std::size_t col : part.owned_column_ids[r]) {
    for (std::size_t l = 0; l < levels; ++l) {
      const std::size_t node = mesh.node_id(col, l);
      node_is_owned_[node] = 1;
      owned_dofs_.push_back(2 * node);
      owned_dofs_.push_back(2 * node + 1);
    }
  }
  local_dofs_.reserve(part.local_columns[r].size() * levels * 2);
  for (const std::size_t col : part.local_columns[r]) {
    for (std::size_t l = 0; l < levels; ++l) {
      const std::size_t node = mesh.node_id(col, l);
      node_is_local_[node] = 1;
      local_dofs_.push_back(2 * node);
      local_dofs_.push_back(2 * node + 1);
    }
  }
  for (const std::size_t d : problem.dof_map().dirichlet_dofs()) {
    if (node_is_owned_[d / 2] != 0) owned_dirichlet_dofs_.push_back(d);
  }
}

template <class ScalarT>
FieldSet<ScalarT>& Subdomain::fields() {
  if constexpr (ad::is_fad_v<ScalarT>) {
    return jac_fields_;
  } else {
    return res_fields_;
  }
}

template <class EvalT>
void Subdomain::evaluate_segment(const Segment& seg,
                                 const pk::View<double, 1>& Uview) {
  using ScalarT = typename EvalT::ScalarT;
  const std::size_t cnt = seg.count;
  const fem::GeometryWorkset& ws = problem_->workset();
  const physics::StokesFOConfig& cfg = problem_->config();
  auto& f = fields<ScalarT>();
  f.allocate(n_cells_, ws.num_nodes, ws.num_qps);

  const auto cell_nodes = cell_nodes_.window(seg.offset, cnt);
  const auto gradBF = gradBF_.window(seg.offset, cnt);
  const auto wGradBF = wGradBF_.window(seg.offset, cnt);
  const auto wBF = wBF_.window(seg.offset, cnt);
  const auto force_passive = force_passive_.window(seg.offset, cnt);
  pk::View<double, 2> flow_factor;
  if (flow_factor_.allocated()) {
    flow_factor = flow_factor_.window(seg.offset, cnt);
  }

  using pk::RangePolicy;
  using Exec = pk::Serial;  // rank bodies must not re-enter the shared pool

  physics::GatherSolution<ScalarT> gather{Uview, cell_nodes, f.UNodal,
                                          static_cast<unsigned>(ws.num_nodes)};
  pk::parallel_for("sd_gather", RangePolicy<Exec>(cnt), gather);

  physics::VelocityGradient<ScalarT> vgrad{
      f.UNodal, gradBF, f.Ugrad, static_cast<unsigned>(ws.num_nodes),
      static_cast<unsigned>(ws.num_qps)};
  pk::parallel_for("sd_velocity_gradient", RangePolicy<Exec>(cnt), vgrad);

  physics::ViscosityFO<ScalarT> visc{f.Ugrad,
                                     f.mu,
                                     flow_factor,
                                     cfg.constants.glen_A,
                                     cfg.constants.glen_n,
                                     cfg.constants.eps_reg2,
                                     static_cast<unsigned>(ws.num_qps),
                                     cfg.mms.enabled ? cfg.mms.mu0 : 0.0};
  pk::parallel_for("sd_viscosity", RangePolicy<Exec>(cnt), visc);

  physics::BodyForceFO<ScalarT> bf{force_passive, f.force,
                                   static_cast<unsigned>(ws.num_qps)};
  pk::parallel_for("sd_body_force", RangePolicy<Exec>(cnt), bf);

  physics::StokesFOResid<ScalarT> kernel;
  kernel.Ugrad = f.Ugrad;
  kernel.muLandIce = f.mu;
  kernel.force = f.force;
  kernel.wGradBF = wGradBF;
  kernel.wBF = wBF;
  kernel.Residual = f.Residual;
  kernel.numNodes = static_cast<unsigned>(ws.num_nodes);
  kernel.numQPs = static_cast<unsigned>(ws.num_qps);
  kernel.cond = false;
  switch (cfg.variant) {
    case physics::KernelVariant::kBaseline:
      pk::parallel_for("sd_StokesFOResid",
                       RangePolicy<Exec, physics::LandIce_3D_Tag>(cnt), kernel);
      break;
    case physics::KernelVariant::kOptimized:
      pk::parallel_for("sd_StokesFOResid",
                       RangePolicy<Exec, physics::LandIce_3D_Opt_Tag<8>>(cnt),
                       kernel);
      break;
    case physics::KernelVariant::kLoopOptOnly:
      pk::parallel_for(
          "sd_StokesFOResid",
          RangePolicy<Exec, physics::LandIce_3D_LoopOptOnly_Tag<8>>(cnt),
          kernel);
      break;
    case physics::KernelVariant::kFusedOnly:
      pk::parallel_for("sd_StokesFOResid",
                       RangePolicy<Exec, physics::LandIce_3D_FusedOnly_Tag>(cnt),
                       kernel);
      break;
    case physics::KernelVariant::kLocalAccumOnly:
      pk::parallel_for(
          "sd_StokesFOResid",
          RangePolicy<Exec, physics::LandIce_3D_LocalAccumOnly_Tag>(cnt),
          kernel);
      break;
  }

  if (!cfg.mms.enabled) {
    physics::BasalFrictionResid<ScalarT> friction{
        seg.face_cell_local, seg.face_wBF,
        seg.face_beta,       f.UNodal,
        f.Residual,          problem_->face_basis(),
        static_cast<unsigned>(ws.face_qps), cfg.sliding};
    pk::parallel_for("sd_basal_friction",
                     RangePolicy<Exec>(seg.face_cell_local.size()), friction);
  }
}

template <class EvalT>
void Subdomain::assemble_segment(const Segment& seg,
                                 const std::vector<double>& x,
                                 std::vector<double>& F,
                                 linalg::CrsMatrix* J) {
  using ScalarT = typename EvalT::ScalarT;
  if (seg.count == 0) return;
  MALI_CHECK(x.size() == problem_->n_dofs());
  MALI_CHECK(F.size() == problem_->n_dofs());

  pk::Timer timer;
  pk::View<double, 1> Uview("sd_U", x.size());
  std::copy(x.begin(), x.end(), Uview.data());
  evaluate_segment<EvalT>(seg, Uview);

  auto& f = fields<ScalarT>();
  const auto cell_nodes = cell_nodes_.window(seg.offset, seg.count);
  physics::scatter_add<pk::Serial>(problem_->config().scatter, seg.coloring,
                                   cell_nodes, f.Residual, seg.count,
                                   problem_->workset().num_nodes, F, J);
  kernel_s_ += timer.seconds();
}

void Subdomain::assemble_residual_segment(int seg, const std::vector<double>& x,
                                          std::vector<double>& F) {
  MALI_CHECK(seg == kInterior || seg == kBoundary);
  assemble_segment<ResidualEval>(segments_[seg], x, F, nullptr);
}

void Subdomain::assemble_jacobian_segment(int seg, const std::vector<double>& x,
                                          std::vector<double>& F,
                                          linalg::CrsMatrix& J) {
  MALI_CHECK(seg == kInterior || seg == kBoundary);
  assemble_segment<JacobianEval>(segments_[seg], x, F, &J);
}

void Subdomain::apply_tangent(const std::vector<double>& U,
                              const std::vector<double>& x,
                              std::vector<double>& y) {
  MALI_CHECK(U.size() == problem_->n_dofs());
  MALI_CHECK(x.size() == problem_->n_dofs());
  MALI_CHECK(y.size() == problem_->n_dofs());

  pk::Timer timer;
  const fem::GeometryWorkset& ws = problem_->workset();
  const physics::StokesFOConfig& cfg = problem_->config();
  pk::View<double, 1> Uview("sd_U", U.size());
  std::copy(U.begin(), U.end(), Uview.data());
  pk::View<double, 1> Xview("sd_X", x.size());
  std::copy(x.begin(), x.end(), Xview.data());

  for (const Segment& seg : segments_) {
    if (seg.count == 0) continue;
    const auto cell_nodes = cell_nodes_.window(seg.offset, seg.count);
    const auto coords = coords_.window(seg.offset, seg.count);
    pk::View<double, 2> flow_factor;
    if (flow_factor_.allocated()) {
      flow_factor = flow_factor_.window(seg.offset, seg.count);
    }

    physics::StokesFOTangent tangent;
    tangent.cell_nodes = cell_nodes;
    tangent.coords = coords;
    tangent.flow_factor = flow_factor;
    tangent.U = Uview;
    tangent.X = Xview;
    tangent.ref_grad = problem_->ref_grad();
    tangent.qp_weight = problem_->qp_weights();
    tangent.Tangent = tangent_;
    tangent.glen_A = cfg.constants.glen_A;
    tangent.glen_n = cfg.constants.glen_n;
    tangent.eps_reg2 = cfg.constants.eps_reg2;
    tangent.constant_mu = cfg.mms.enabled ? cfg.mms.mu0 : 0.0;
    tangent.numNodes = ws.num_nodes;
    tangent.numQPs = ws.num_qps;
    pk::parallel_for("sd_tangent", pk::RangePolicy<pk::Serial>(seg.count),
                     tangent);

    if (!cfg.mms.enabled) {
      physics::BasalFrictionTangent friction;
      friction.face_cell_local = seg.face_cell_local;
      friction.face_wBF = seg.face_wBF;
      friction.face_beta = seg.face_beta;
      friction.face_BF = problem_->face_basis();
      friction.cell_nodes = cell_nodes;
      friction.U = Uview;
      friction.X = Xview;
      friction.Tangent = tangent_;
      friction.faceQPs = static_cast<unsigned>(ws.face_qps);
      friction.sliding = cfg.sliding;
      pk::parallel_for("sd_friction_tangent",
                       pk::RangePolicy<pk::Serial>(seg.face_cell_local.size()),
                       friction);
    }

    physics::scatter_add<pk::Serial>(cfg.scatter, seg.coloring, cell_nodes,
                                     tangent_, seg.count, ws.num_nodes, y,
                                     nullptr);
  }
  kernel_s_ += timer.seconds();
}

std::vector<double> Subdomain::partial_node_blocks(
    const std::vector<double>& U) {
  MALI_CHECK(U.size() == problem_->n_dofs());
  const fem::GeometryWorkset& ws = problem_->workset();
  const int N = ws.num_nodes;

  pk::Timer timer;
  pk::View<double, 1> Uview("sd_U", U.size());
  std::copy(U.begin(), U.end(), Uview.data());

  std::vector<double> blocks(2 * problem_->n_dofs(), 0.0);
  auto& f = fields<JacobianEval::ScalarT>();
  for (const Segment& seg : segments_) {
    if (seg.count == 0) continue;
    evaluate_segment<JacobianEval>(seg, Uview);
    for (std::size_t c = 0; c < seg.count; ++c) {
      for (int node = 0; node < N; ++node) {
        const std::size_t gnode = cell_nodes_(seg.offset + c, node);
        for (int r = 0; r < 2; ++r) {
          const auto& R = f.Residual(c, node, r);
          for (int col = 0; col < 2; ++col) {
            blocks[gnode * 4 + static_cast<std::size_t>(r * 2 + col)] +=
                R.dx(2 * node + col);
          }
        }
      }
    }
  }
  kernel_s_ += timer.seconds();
  return blocks;
}

}  // namespace mali::dist
