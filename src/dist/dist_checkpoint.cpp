#include "dist/dist_checkpoint.hpp"

#include "portability/common.hpp"

namespace mali::dist {

namespace {

/// Owned dofs of `part` in the mirror's canonical order: owned columns
/// ascending, levels fastest, u then v — the same order Subdomain builds
/// its owned_dofs in, so pack/scatter agree without index traffic.
std::vector<std::size_t> owned_dofs_of(const mesh::ExtrudedMesh& mesh,
                                       const mesh::Partition& part, int rank) {
  const std::size_t levels = mesh.levels();
  const auto& cols = part.owned_column_ids[static_cast<std::size_t>(rank)];
  std::vector<std::size_t> dofs;
  dofs.reserve(cols.size() * levels * 2);
  for (const std::size_t col : cols) {
    for (std::size_t l = 0; l < levels; ++l) {
      const std::size_t node = mesh.node_id(col, l);
      dofs.push_back(2 * node);
      dofs.push_back(2 * node + 1);
    }
  }
  return dofs;
}

}  // namespace

CheckpointMirror::CheckpointMirror(const mesh::ExtrudedMesh& mesh,
                                   const mesh::Partition& part,
                                   Communicator& comm, DistCheckpoint& ckpt,
                                   int tag_base)
    : comm_(&comm), ckpt_(&ckpt), tag_base_(tag_base) {
  MALI_CHECK_MSG(ckpt.U.size() == 2 * mesh.n_nodes(),
                 "DistCheckpoint::U must be pre-sized to the global extent");
  const int n = comm.size();
  const int pred = (comm.rank() + n - 1) % n;
  my_dofs_ = owned_dofs_of(mesh, part, comm.rank());
  pred_dofs_ = owned_dofs_of(mesh, part, pred);
}

void CheckpointMirror::capture(const std::vector<double>& U, double fnorm,
                               int step) {
  const int n = comm_->size();
  const int succ = (comm_->rank() + 1) % n;
  const int pred = (comm_->rank() + n - 1) % n;

  std::vector<double> pack(my_dofs_.size());
  for (std::size_t i = 0; i < my_dofs_.size(); ++i) pack[i] = U[my_dofs_[i]];
  comm_->send(succ, tag_base_, std::move(pack));

  std::vector<double> mirror = comm_->recv(pred, tag_base_);
  MALI_CHECK_MSG(mirror.size() == pred_dofs_.size(),
                 "checkpoint mirror: unexpected payload size");
  // Disjoint-by-ownership scatter: this rank is the only writer of the
  // predecessor's owned entries in the shared checkpoint.
  for (std::size_t i = 0; i < pred_dofs_.size(); ++i) {
    ckpt_->U[pred_dofs_[i]] = mirror[i];
  }
  if (comm_->rank() == 0) {
    ckpt_->residual_norm = fnorm;
    ckpt_->newton_step = step;
  }
  comm_->barrier();  // all mirrored writes landed
  if (comm_->rank() == 0) ckpt_->valid = true;
  ++captures_;
}

}  // namespace mali::dist
