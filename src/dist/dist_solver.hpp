#pragma once
// Rank-parallel domain-decomposed FO Stokes solve (DESIGN.md §12).
//
// solve_distributed() runs the full damped-Newton/GMRES solve SPMD across N
// in-process ranks (dedicated threads over a CommWorld):
//
//   rank r:  Subdomain (owned cells, interior-first)     [dist/subdomain.hpp]
//            HaloExchange plans (dof stride 2, block stride 4)
//            RankStokesProblem  — residual = import ghosts (optionally
//              overlapped with interior assembly) + evaluator chain +
//              export_add + owner Dirichlet rows
//            DistStokesOperator — J(U) as a partial per-rank operator
//              (assembled partial CRS or per-element tangent apply) wrapped
//              in the same import/export protocol
//            DistInnerProduct   — owned-dof reduction + deterministic
//              allreduce, injected into Newton AND GMRES so every branch
//              (convergence tests, line-search damping, restart decisions)
//              is bit-identical on all ranks
//
// Vectors are global-extent on every rank with the ownership discipline of
// dist/halo_exchange.hpp: owned entries authoritative, ghosts valid after an
// import, everything else finite garbage that the rank-reduced inner product
// masks.  The final solution is gathered by disjoint owned-entry writes.
//
// Equivalence contract: for any rank count, decomposition, jacobian mode,
// and overlap setting, the converged solution matches the single-rank solve
// to solver tolerance (pinned at <= 1e-10 relative per dof by
// tests/test_dist.cpp); overlap on/off is bit-identical by construction
// (identical assembly order, only the exchange interleaving changes).

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dist/communicator.hpp"
#include "dist/halo_exchange.hpp"
#include "dist/subdomain.hpp"
#include "linalg/inner_product.hpp"
#include "linalg/linear_operator.hpp"
#include "mesh/partition.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "resilience/comm_fault.hpp"
#include "resilience/fault_injector.hpp"

namespace mali::dist {

/// Rank-reduced inner product: each rank sums only the vector entries it
/// owns, then the deterministic allreduce combines the rank partials in
/// fixed rank order — every rank sees the bit-identical scalar.
class DistInnerProduct final : public linalg::InnerProduct {
 public:
  DistInnerProduct(Communicator& comm, const std::vector<std::size_t>& owned)
      : comm_(&comm), owned_(&owned) {}

  [[nodiscard]] double dot(const std::vector<double>& x,
                           const std::vector<double>& y) const override {
    MALI_CHECK(x.size() == y.size());
    double local = 0.0;
    for (const std::size_t d : *owned_) local += x[d] * y[d];
    return comm_->allreduce_sum(local);
  }

  /// All n partials ride ONE allreduce_n collective instead of n scalar
  /// rounds.  Per value the reassociation is identical to dot(), so each
  /// out[k] is bit-identical to the scalar path.
  void dot_batch(const std::vector<linalg::DotPair>& pairs,
                 std::vector<double>& out) const override {
    out = comm_->allreduce_n(local_partials(pairs));
  }

  /// Split-phase: post deposits the rank's partials and returns without
  /// synchronizing — the pipelined solvers run their operator apply (halo
  /// import + local kernel + export) in the reduction's shadow; finish
  /// completes the rank-ordered combine.  Values match dot_batch bitwise.
  void post(const std::vector<linalg::DotPair>& pairs,
            Pending& pending) const override {
    MALI_CHECK_MSG(!pending.active,
                   "InnerProduct::post: reduction already pending");
    comm_->allreduce_post(local_partials(pairs));
    pending.active = true;
  }
  void finish(Pending& pending, std::vector<double>& out) const override {
    MALI_CHECK_MSG(pending.active, "InnerProduct::finish without a post");
    out = comm_->allreduce_finish();
    pending.active = false;
  }

 private:
  [[nodiscard]] std::vector<double> local_partials(
      const std::vector<linalg::DotPair>& pairs) const {
    std::vector<double> local(pairs.size(), 0.0);
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      const auto& x = *pairs[k].x;
      const auto& y = *pairs[k].y;
      MALI_CHECK(x.size() == y.size());
      for (const std::size_t d : *owned_) local[k] += x[d] * y[d];
    }
    return local;
  }

  Communicator* comm_;
  const std::vector<std::size_t>* owned_;
};

/// Per-rank state shared between the residual and the operator: the
/// Dirichlet row scale is refreshed (collectively, so all ranks agree) at
/// each linearization, exactly as the serial problem refreshes it.
struct RankContext {
  double dirichlet_scale = 1.0;
};

/// The rank's view of the global Jacobian J(U): applies only the rank's own
/// cells' contributions, then export_adds the ghost-row partials to their
/// owners — owned rows of y are complete, everything else is masked.  Two
/// internal modes mirror the serial solver's JacobianMode:
///  - kAssembled:  a partial CRS matrix (global sparsity, only local cells
///    scattered) applied with a hand-rolled serial row loop over the local
///    rows (CrsMatrix::apply is pool-parallel and must not run inside a
///    rank thread);
///  - kMatrixFree: the fused per-element SFad<1> tangent apply.
/// linearize() also completes the per-node 2x2 diagonal blocks across ranks
/// (export_add + import on the stride-4 plan) and refreshes the shared
/// Dirichlet scale, so Jacobi/block-Jacobi preconditioners work unchanged
/// through the standard diagonal()/block_diagonal() capabilities.
class DistStokesOperator final : public linalg::LinearOperator {
 public:
  DistStokesOperator(Subdomain& sub, HaloExchange& halo_dof,
                     HaloExchange& halo_blocks, Communicator& comm,
                     linalg::JacobianMode mode, RankContext& ctx);

  /// Collective: imports ghosts of U, assembles the partial Jacobian (or
  /// caches U for the tangent apply), completes the block diagonal, and
  /// refreshes ctx.dirichlet_scale via an allreduce.
  void linearize(const std::vector<double>& U);

  [[nodiscard]] std::size_t rows() const override;
  [[nodiscard]] std::size_t cols() const override;

  /// Collective: every rank must call apply the same number of times (the
  /// injected inner product guarantees GMRES does exactly that).
  void apply(const std::vector<double>& x,
             std::vector<double>& y) const override;

  bool diagonal(std::vector<double>& d) const override;
  bool block_diagonal(int bs, std::vector<double>& blocks) const override;

  [[nodiscard]] const linalg::CrsMatrix* matrix() const override {
    return nullptr;  // the partial matrix is NOT the global operator
  }
  [[nodiscard]] const char* name() const override {
    return mode_ == linalg::JacobianMode::kAssembled ? "dist-assembled"
                                                     : "dist-matrix-free";
  }

 private:
  Subdomain* sub_;
  HaloExchange* halo_dof_;
  HaloExchange* halo_blk_;
  Communicator* comm_;
  linalg::JacobianMode mode_;
  RankContext* ctx_;

  std::vector<double> U_;       ///< linearization state, ghosts imported
  std::vector<double> blocks_;  ///< completed per-node 2x2 blocks (2*n)
  std::unique_ptr<linalg::CrsMatrix> J_;  ///< partial, assembled mode only
  mutable std::vector<double> x_;         ///< apply scratch (ghost import)
  bool linearized_ = false;
};

/// The NonlinearProblem each rank hands to the (unchanged) NewtonSolver.
/// Always drives the matrix-free Newton path — jacobian_operator() returns
/// a freshly linearized DistStokesOperator whose *internal* mode is the
/// configured JacobianMode.  residual() implements the split-phase halo
/// protocol; with `overlap` the import is overlapped with interior-cell
/// assembly, and the result is bit-identical either way.
class RankStokesProblem final : public nonlinear::NonlinearProblem {
 public:
  RankStokesProblem(Subdomain& sub, HaloExchange& halo_dof,
                    HaloExchange& halo_blocks, Communicator& comm,
                    linalg::JacobianMode mode, bool overlap, RankContext& ctx)
      : sub_(&sub),
        halo_dof_(&halo_dof),
        halo_blk_(&halo_blocks),
        comm_(&comm),
        mode_(mode),
        overlap_(overlap),
        ctx_(&ctx) {}

  [[nodiscard]] std::size_t n_dofs() const override {
    return sub_->problem().n_dofs();
  }
  void residual(const std::vector<double>& U, std::vector<double>& F) override;
  void residual_and_jacobian(const std::vector<double>& U,
                             std::vector<double>& F,
                             linalg::CrsMatrix& J) override;
  [[nodiscard]] linalg::CrsMatrix create_matrix() const override {
    return sub_->problem().create_matrix();
  }
  [[nodiscard]] std::unique_ptr<linalg::LinearOperator> jacobian_operator(
      const std::vector<double>& U) override;

 private:
  Subdomain* sub_;
  HaloExchange* halo_dof_;
  HaloExchange* halo_blk_;
  Communicator* comm_;
  linalg::JacobianMode mode_;
  bool overlap_;
  RankContext* ctx_;
  std::vector<double> scratch_;  ///< U with imported ghosts
};

enum class Decomp { kStrips, kBlocks };

[[nodiscard]] const char* to_string(Decomp d);
[[nodiscard]] Decomp decomp_from_string(const std::string& s);

/// Builds the partition a distributed run uses: strips, or a px x py block
/// grid with px the largest factor of n_ranks <= sqrt(n_ranks).
[[nodiscard]] mesh::Partition make_partition(const mesh::QuadGrid& grid,
                                             int n_ranks, Decomp decomp);

struct DistConfig {
  int ranks = 2;
  Decomp decomp = Decomp::kStrips;
  /// Overlap the halo import with interior-cell assembly (split-phase
  /// post_import / finish_import).  Results are bit-identical either way.
  bool overlap = false;
  /// Internal Jacobian representation of DistStokesOperator.
  linalg::JacobianMode jacobian = linalg::JacobianMode::kMatrixFree;
  /// Inner Krylov method for every rank's Newton solve.  The pipelined
  /// variants overlap the fused rank-ordered allreduce with the halo-split
  /// operator apply (DESIGN.md §13); the equivalence contract above holds
  /// for all kinds.
  linalg::KrylovKind krylov = linalg::KrylovKind::kGmres;
  /// Per-rank preconditioner: none | jacobi | block-jacobi.  (Stronger
  /// matrix-dependent preconditioners need the full assembled rows and are
  /// not available per-subdomain.)
  std::string precond = "block-jacobi";
  nonlinear::NewtonConfig newton{};
  bool verbose = false;  ///< rank 0 prints Newton progress

  // ---- fault tolerance (DESIGN.md §16) --------------------------------
  /// Comm-layer guards: checksum framing + bounded waits.  Off by default;
  /// the clean path with guards on is bit-identical (pinned by tests).
  CommGuardConfig guards{};
  /// Solver-level guard decorators (whole-vector finite checks) around
  /// every rank's problem/preconditioner — the same seed on every rank
  /// makes any detection lockstep-identical, so a typed SolverFaultError
  /// surfaces collectively instead of desynchronizing the ranks.
  bool solver_guards = false;
  /// Deterministic comm-level fault injection (tests / CLI).  Every rank
  /// holds its own injector built from this spec; only the seeded victim
  /// rank acts.
  bool inject_comm_fault = false;
  resilience::CommFaultSpec comm_fault{};
  /// Deterministic solver-level fault injection on every rank (implies the
  /// guard decorators above).
  bool inject_solver_fault = false;
  resilience::FaultSpec solver_fault{};
  /// Coordinated restarts: after a typed comm/solver fault poisons the
  /// world, rebuild it and re-solve, up to max_restarts times.  Injectors
  /// persist across attempts (a one-shot fault does not refire), so the
  /// retry IS the transient-fault recovery.
  int max_restarts = 0;
  /// Base delay before restart attempt k, doubled per attempt (seconds).
  double restart_backoff_s = 0.0;
  /// Replicated distributed checkpoint: each rank mirrors its owned state
  /// to its successor every accepted Newton step; a restart seeds from the
  /// last consistent iterate instead of re-converging from scratch.
  bool checkpoint = false;
};

/// One failed solve attempt in the coordinated-restart loop.
struct DistRestartAttempt {
  int attempt = 0;     ///< 0-based attempt that failed
  std::string error;   ///< what the attempt died with
  /// True when the world agreed on a typed comm fault for this attempt
  /// (`fault` then holds the agreed record).
  bool comm_fault = false;
  resilience::CommFault fault{};
  /// True when the NEXT attempt was seeded from the replicated checkpoint.
  bool rolled_back = false;

  [[nodiscard]] std::string to_string() const;
};

/// Structured log of the coordinated-restart loop — the distributed
/// counterpart of resilience::RecoveryLog, one entry per failed attempt.
struct DistRecoveryLog {
  std::vector<DistRestartAttempt> attempts;

  [[nodiscard]] bool empty() const noexcept { return attempts.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return attempts.size(); }
  [[nodiscard]] std::string to_string() const;
  /// Last `n` entries, for compact failure reports (the CLI prints this).
  [[nodiscard]] std::string tail(std::size_t n = 8) const;
};

struct DistRankReport {
  std::size_t owned_cells = 0;    ///< base cells
  std::size_t owned_columns = 0;
  std::size_t halo_columns = 0;
  int n_neighbors = 0;
  HaloStats halo;        ///< dof-plan + block-plan exchanges combined
  CommCounters comm;     ///< this rank's reduction/message traffic
  double kernel_s = 0.0; ///< assembly/tangent kernel wall-clock
  double total_s = 0.0;  ///< whole-rank solve wall-clock
  nonlinear::NewtonResult newton;
};

struct DistResult {
  std::vector<double> U;  ///< gathered solution (owned entries per rank)
  mesh::Partition partition;
  std::vector<DistRankReport> ranks;
  bool converged = false;
  int newton_iters = 0;
  double residual_norm = 0.0;
  /// Restarts it took to produce this result (0 on the clean path) and the
  /// per-failure log.
  int restarts = 0;
  DistRecoveryLog recovery;
};

/// Runs the domain-decomposed Newton solve over cfg.ranks in-process ranks.
/// `U0` (global extent) seeds every rank; nullptr means zero.  The shared
/// problem is only read.  On a rank failure the CommWorld is poisoned (no
/// rank deadlocks in a collective); with cfg.max_restarts the solve is
/// retried — rolled back to the replicated checkpoint when one exists —
/// and only a fault that survives the whole restart budget propagates
/// (typed: CommFaultError / SolverFaultError).  `log_out`, when non-null,
/// receives the restart log even when the solve ultimately throws (the CLI
/// prints its tail on failure).
[[nodiscard]] DistResult solve_distributed(
    const physics::StokesFOProblem& problem, const DistConfig& cfg,
    const std::vector<double>* U0 = nullptr,
    DistRecoveryLog* log_out = nullptr);

}  // namespace mali::dist
