#include "dist/communicator.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "portability/common.hpp"

namespace mali::dist {

namespace {

using resilience::CommFault;
using resilience::CommFaultError;
using resilience::CommFaultType;
using resilience::CommSite;

/// FNV-1a over the raw bytes of a double payload — the checksum framing of
/// DESIGN.md §16.  Byte-exact, so any single-bit payload perturbation is
/// detected; never interpreted arithmetically (the frame is bit-cast in and
/// out of a double slot untouched).
std::uint64_t fnv1a_bytes(const double* p, std::size_t n) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < 8 * n; ++i) {
    h ^= b[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Fault-agreement severity: integrity and injected faults name the root
/// cause directly and outrank the timeouts they induce on peer ranks.
int severity(CommFaultType t) {
  switch (t) {
    case CommFaultType::kNone: return 0;
    case CommFaultType::kTimeout: return 1;
    case CommFaultType::kChecksumMismatch:
    case CommFaultType::kLostContribution:
    case CommFaultType::kRankDeath:
    case CommFaultType::kInjected: return 2;
  }
  return 0;
}

/// In-flight corruption model: flip the lowest mantissa bit.  A bit flip
/// always changes the byte pattern (an additive perturbation can be
/// absorbed by rounding when the payload is large), so the checksum is
/// guaranteed to catch it — the classic single-event-upset model.
void flip_bit(double* x) {
  std::uint64_t b;
  std::memcpy(&b, x, sizeof b);
  b ^= 1ull;
  std::memcpy(x, &b, sizeof b);
}

CommFault make_fault(CommFaultType type, CommSite site, int rank,
                     int source_rank, std::string msg) {
  CommFault f;
  f.type = type;
  f.site = site;
  f.rank = rank;
  f.source_rank = source_rank;
  f.message = std::move(msg);
  return f;
}

}  // namespace

CommWorld::CommWorld(int size) : size_(size) {
  MALI_CHECK_MSG(size >= 1, "CommWorld needs at least one rank");
  reduce_slots_.assign(static_cast<std::size_t>(size), 0.0);
  reduce_vec_slots_.assign(static_cast<std::size_t>(size), {});
  reduce_posted_.assign(static_cast<std::size_t>(size), 0);
  reduce_gen_.assign(static_cast<std::size_t>(size), 0);
  reduce_sums_.assign(static_cast<std::size_t>(size), 0);
  reduce_vec_sums_.assign(static_cast<std::size_t>(size), 0);
}

void CommWorld::check_abort_locked() const {
  if (aborted_) throw CommAborted();
}

void CommWorld::wait_guarded(std::unique_lock<std::mutex>& lk,
                             std::condition_variable& cv,
                             const std::function<bool()>& pred, int rank,
                             resilience::CommSite site) {
  if (!guards_.bounded()) {
    cv.wait(lk, pred);
    return;
  }
  // Round 0 waits timeout_s; each retry round stretches by `backoff`, so a
  // straggler that misses the first deadline is still collected instead of
  // being declared dead (re-wait IS the transient-fault retry).
  double round_s = guards_.timeout_s;
  const int rounds = 1 + std::max(0, guards_.wait_retries);
  for (int i = 0; i < rounds; ++i) {
    if (cv.wait_for(lk, std::chrono::duration<double>(round_s), pred)) return;
    round_s *= guards_.backoff;
  }
  std::ostringstream os;
  os << "bounded wait expired after " << rounds << " round(s) (timeout "
     << guards_.timeout_s << "s, backoff " << guards_.backoff
     << "): peer dead or stalled";
  throw CommFaultError(
      make_fault(CommFaultType::kTimeout, site, rank, -1, os.str()));
}

void CommWorld::barrier(int rank, resilience::CommSite site) {
  std::unique_lock<std::mutex> lk(mu_);
  check_abort_locked();
  const std::size_t gen = barrier_gen_;
  if (++barrier_count_ == size_) {
    barrier_count_ = 0;
    ++barrier_gen_;
    cv_barrier_.notify_all();
  } else {
    try {
      wait_guarded(
          lk, cv_barrier_, [&] { return barrier_gen_ != gen || aborted_; },
          rank, site);
    } catch (const CommFaultError&) {
      // Withdraw this rank's arrival so the abandoned barrier's count stays
      // consistent for whoever inspects the wreckage (lock is held here).
      if (barrier_gen_ == gen && barrier_count_ > 0) --barrier_count_;
      throw;
    }
  }
  check_abort_locked();
}

double CommWorld::allreduce_sum(int rank, double local, bool skip_deposit,
                                bool corrupt) {
  const auto me = static_cast<std::size_t>(rank);
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    if (!skip_deposit) {
      if (guards_.checksums) {
        reduce_sums_[me] = fnv1a_bytes(&local, 1);
        ++reduce_gen_[me];
      }
      if (corrupt) flip_bit(&local);  // post-framing: in-flight corruption
      reduce_slots_[me] = local;
    }
  }
  barrier(rank, resilience::CommSite::kAllreduce);  // all deposits visible
  double sum = 0.0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    check_reduction_locked(rank, /*vector_slots=*/false,
                           resilience::CommSite::kAllreduce);
    // Fixed rank-order reassociation: every rank computes the identical sum.
    for (int r = 0; r < size_; ++r) {
      sum += reduce_slots_[static_cast<std::size_t>(r)];
    }
  }
  barrier(rank, resilience::CommSite::kAllreduce);  // slots free again
  return sum;
}

std::vector<double> CommWorld::allreduce_sum(int rank,
                                             const std::vector<double>& local,
                                             bool skip_deposit, bool corrupt) {
  allreduce_post(rank, local, skip_deposit, corrupt);
  return allreduce_finish(rank);
}

void CommWorld::allreduce_post(int rank, const std::vector<double>& local,
                               bool skip_deposit, bool corrupt) {
  std::lock_guard<std::mutex> lk(mu_);
  check_abort_locked();
  const auto me = static_cast<std::size_t>(rank);
  MALI_CHECK_MSG(reduce_posted_[me] == 0,
                 "allreduce_post: a reduction is already in flight");
  // The posted flag is set even for a dropped deposit: the split-phase
  // protocol keeps running and the loss is detected (typed) at the combine,
  // not as a protocol assert on the victim.
  reduce_posted_[me] = 1;
  if (skip_deposit) return;
  auto& slot = reduce_vec_slots_[me];
  slot = local;
  if (guards_.checksums) {
    reduce_vec_sums_[me] = fnv1a_bytes(slot.data(), slot.size());
    ++reduce_gen_[me];
  }
  if (corrupt && !slot.empty()) flip_bit(&slot[0]);  // post-framing corruption
  // No barrier: the caller returns to useful work.  The slot is known free
  // because the previous finish() ended with a barrier past the slot reads.
}

std::vector<double> CommWorld::allreduce_finish(int rank) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    MALI_CHECK_MSG(reduce_posted_[static_cast<std::size_t>(rank)] != 0,
                   "allreduce_finish without a matching allreduce_post");
  }
  barrier(rank, resilience::CommSite::kAllreduce);  // all deposits visible
  std::vector<double> sum;
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    // Integrity before sizes: a dropped deposit leaves a stale slot whose
    // size may differ — that must surface as a typed lost-contribution
    // fault, not a size assert.
    check_reduction_locked(rank, /*vector_slots=*/true,
                           resilience::CommSite::kAllreduce);
    sum.assign(reduce_vec_slots_[static_cast<std::size_t>(rank)].size(), 0.0);
    for (int r = 0; r < size_; ++r) {
      const auto& s = reduce_vec_slots_[static_cast<std::size_t>(r)];
      MALI_CHECK_MSG(s.size() == sum.size(),
                     "allreduce_sum: mismatched vector sizes across ranks");
      // Fixed rank-order reassociation: identical result on every rank.
      for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += s[i];
    }
    reduce_posted_[static_cast<std::size_t>(rank)] = 0;
  }
  barrier(rank, resilience::CommSite::kAllreduce);  // slots free again
  return sum;
}

double CommWorld::allreduce_max(int rank, double local, bool skip_deposit,
                                bool corrupt) {
  const auto me = static_cast<std::size_t>(rank);
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    if (!skip_deposit) {
      if (guards_.checksums) {
        reduce_sums_[me] = fnv1a_bytes(&local, 1);
        ++reduce_gen_[me];
      }
      if (corrupt) flip_bit(&local);
      reduce_slots_[me] = local;
    }
  }
  barrier(rank, resilience::CommSite::kAllreduce);
  double m = 0.0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    check_reduction_locked(rank, /*vector_slots=*/false,
                           resilience::CommSite::kAllreduce);
    m = reduce_slots_[0];
    for (int r = 1; r < size_; ++r) {
      m = std::max(m, reduce_slots_[static_cast<std::size_t>(r)]);
    }
  }
  barrier(rank, resilience::CommSite::kAllreduce);
  return m;
}

void CommWorld::check_reduction_locked(int rank, bool vector_slots,
                                       resilience::CommSite site) {
  if (!guards_.checksums) return;
  // Generation agreement: every rank deposits exactly once per collective
  // (lockstep), so all counters must match.  A lagging counter names the
  // rank whose contribution never arrived — detected IDENTICALLY on every
  // rank, which is what makes the ensuing recovery coordinated.
  std::uint64_t newest = 0;
  for (int r = 0; r < size_; ++r) {
    newest = std::max(newest, reduce_gen_[static_cast<std::size_t>(r)]);
  }
  for (int r = 0; r < size_; ++r) {
    if (reduce_gen_[static_cast<std::size_t>(r)] != newest) {
      std::ostringstream os;
      os << "reduction combined without a deposit from rank " << r
         << " (generation "
         << reduce_gen_[static_cast<std::size_t>(r)] << " vs " << newest
         << ")";
      throw CommFaultError(make_fault(CommFaultType::kLostContribution, site,
                                      rank, r, os.str()));
    }
  }
  for (int r = 0; r < size_; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    const std::uint64_t want =
        vector_slots ? reduce_vec_sums_[rr] : reduce_sums_[rr];
    const std::uint64_t got =
        vector_slots
            ? fnv1a_bytes(reduce_vec_slots_[rr].data(),
                          reduce_vec_slots_[rr].size())
            : fnv1a_bytes(&reduce_slots_[rr], 1);
    if (got != want) {
      std::ostringstream os;
      os << "reduction contribution from rank " << r
         << " failed checksum verification";
      throw CommFaultError(make_fault(CommFaultType::kChecksumMismatch, site,
                                      rank, r, os.str()));
    }
  }
}

void CommWorld::send(int from, int to, int tag, std::vector<double> data,
                     bool corrupt) {
  if (guards_.checksums) {
    const std::uint64_t h = fnv1a_bytes(data.data(), data.size());
    double frame;
    static_assert(sizeof frame == sizeof h, "frame must hold the checksum");
    std::memcpy(&frame, &h, sizeof frame);
    data.push_back(frame);  // bit-cast frame rides as the trailing entry
  }
  if (corrupt && !data.empty()) flip_bit(&data[0]);  // post-framing corruption
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    mail_[{from, to, tag}].push_back(std::move(data));
  }
  cv_mail_.notify_all();
}

std::vector<double> CommWorld::recv(int from, int to, int tag, bool corrupt) {
  std::vector<double> data;
  {
    std::unique_lock<std::mutex> lk(mu_);
    auto& q = mail_[{from, to, tag}];
    wait_guarded(
        lk, cv_mail_, [&] { return !q.empty() || aborted_; }, to,
        resilience::CommSite::kHaloRecv);
    check_abort_locked();
    data = std::move(q.front());
    q.pop_front();
  }
  // In-flight receiver-side corruption lands before verification.
  if (corrupt && !data.empty()) flip_bit(&data[0]);
  if (guards_.checksums) {
    MALI_CHECK_MSG(!data.empty(), "recv: framed message missing its checksum");
    double frame = data.back();
    data.pop_back();
    std::uint64_t want = 0;
    std::memcpy(&want, &frame, sizeof want);
    const std::uint64_t got = fnv1a_bytes(data.data(), data.size());
    if (got != want) {
      std::ostringstream os;
      os << "point-to-point payload (tag " << tag
         << ") failed checksum verification";
      throw CommFaultError(make_fault(CommFaultType::kChecksumMismatch,
                                      resilience::CommSite::kHaloRecv, to,
                                      from, os.str()));
    }
  }
  return data;
}

void CommWorld::abort() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    aborted_ = true;
  }
  cv_barrier_.notify_all();
  cv_mail_.notify_all();
}

void CommWorld::abort_with(const resilience::CommFault& fault) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!aborted_) {
      fault_ = fault;
    } else {
      // Deterministic agreement among racing reporters: root-cause faults
      // beat induced timeouts; within a severity the lowest detecting rank
      // wins.  Every interleaving of abort_with calls converges to the same
      // record.
      const int sn = severity(fault.type);
      const int so = severity(fault_.type);
      if (sn > so ||
          (sn == so && fault.rank >= 0 &&
           (fault_.rank < 0 || fault.rank < fault_.rank))) {
        fault_ = fault;
      }
    }
    aborted_ = true;
  }
  cv_barrier_.notify_all();
  cv_mail_.notify_all();
}

bool CommWorld::aborted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return aborted_;
}

resilience::CommFault CommWorld::fault() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fault_;
}

Communicator::Inject Communicator::inject(resilience::CommSite site) {
  if (injector_ == nullptr) return Inject::kNone;
  const bool hit = injector_->fire(site);
  if (!hit || injector_->target_rank(size()) != rank_) return Inject::kNone;
  const CommGuardConfig& g = world_->guards();
  // Stall lengths are keyed to the configured timeout: a delay stays well
  // inside round 0 (benign, bit-identical), a straggler overshoots round 0
  // but lands inside the backoff rounds (recovered by re-wait, no restart).
  const double base_s = g.bounded() ? g.timeout_s : 0.0;
  const std::size_t eval = injector_->count(site) - 1;
  switch (injector_->spec().kind) {
    case resilience::CommFaultKind::kDrop:
      return Inject::kSkip;
    case resilience::CommFaultKind::kCorrupt:
      if (site == resilience::CommSite::kBarrier) {
        // A barrier arrival carries no payload to corrupt — surface the
        // injection itself as the typed event.
        CommFault f = make_fault(
            CommFaultType::kInjected, site, rank_, rank_,
            "injected corrupt barrier arrival (no payload at this site)");
        f.evaluation = eval;
        throw CommFaultError(std::move(f));
      }
      return Inject::kCorrupt;
    case resilience::CommFaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(base_s > 0.0 ? 0.3 * base_s : 0.005));
      return Inject::kNone;
    case resilience::CommFaultKind::kStraggler:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(base_s > 0.0 ? 1.3 * base_s : 0.05));
      return Inject::kNone;
    case resilience::CommFaultKind::kRankDeath: {
      CommFault f = make_fault(CommFaultType::kRankDeath, site, rank_, rank_,
                               "injected rank death");
      f.evaluation = eval;
      throw CommFaultError(std::move(f));
    }
  }
  return Inject::kNone;
}

}  // namespace mali::dist
