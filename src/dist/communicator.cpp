#include "dist/communicator.hpp"

#include <algorithm>

#include "portability/common.hpp"

namespace mali::dist {

CommWorld::CommWorld(int size) : size_(size) {
  MALI_CHECK_MSG(size >= 1, "CommWorld needs at least one rank");
  reduce_slots_.assign(static_cast<std::size_t>(size), 0.0);
  reduce_vec_slots_.assign(static_cast<std::size_t>(size), {});
  reduce_posted_.assign(static_cast<std::size_t>(size), 0);
}

void CommWorld::check_abort_locked() const {
  if (aborted_) throw CommAborted();
}

void CommWorld::barrier() {
  std::unique_lock<std::mutex> lk(mu_);
  check_abort_locked();
  const std::size_t gen = barrier_gen_;
  if (++barrier_count_ == size_) {
    barrier_count_ = 0;
    ++barrier_gen_;
    cv_barrier_.notify_all();
  } else {
    cv_barrier_.wait(lk, [&] { return barrier_gen_ != gen || aborted_; });
  }
  check_abort_locked();
}

double CommWorld::allreduce_sum(int rank, double local) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    reduce_slots_[static_cast<std::size_t>(rank)] = local;
  }
  barrier();  // all deposits visible
  double sum = 0.0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    // Fixed rank-order reassociation: every rank computes the identical sum.
    for (int r = 0; r < size_; ++r) {
      sum += reduce_slots_[static_cast<std::size_t>(r)];
    }
  }
  barrier();  // slots free for the next reduction
  return sum;
}

std::vector<double> CommWorld::allreduce_sum(int rank,
                                             const std::vector<double>& local) {
  allreduce_post(rank, local);
  return allreduce_finish(rank);
}

void CommWorld::allreduce_post(int rank, const std::vector<double>& local) {
  std::lock_guard<std::mutex> lk(mu_);
  check_abort_locked();
  MALI_CHECK_MSG(reduce_posted_[static_cast<std::size_t>(rank)] == 0,
                 "allreduce_post: a reduction is already in flight");
  reduce_vec_slots_[static_cast<std::size_t>(rank)] = local;
  reduce_posted_[static_cast<std::size_t>(rank)] = 1;
  // No barrier: the caller returns to useful work.  The slot is known free
  // because the previous finish() ended with a barrier past the slot reads.
}

std::vector<double> CommWorld::allreduce_finish(int rank) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    MALI_CHECK_MSG(reduce_posted_[static_cast<std::size_t>(rank)] != 0,
                   "allreduce_finish without a matching allreduce_post");
  }
  barrier();  // all deposits visible
  std::vector<double> sum;
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    sum.assign(reduce_vec_slots_[static_cast<std::size_t>(rank)].size(), 0.0);
    for (int r = 0; r < size_; ++r) {
      const auto& s = reduce_vec_slots_[static_cast<std::size_t>(r)];
      MALI_CHECK_MSG(s.size() == sum.size(),
                     "allreduce_sum: mismatched vector sizes across ranks");
      // Fixed rank-order reassociation: identical result on every rank.
      for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += s[i];
    }
    reduce_posted_[static_cast<std::size_t>(rank)] = 0;
  }
  barrier();  // slots free for the next reduction
  return sum;
}

double CommWorld::allreduce_max(int rank, double local) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    reduce_slots_[static_cast<std::size_t>(rank)] = local;
  }
  barrier();
  double m = 0.0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    m = reduce_slots_[0];
    for (int r = 1; r < size_; ++r) {
      m = std::max(m, reduce_slots_[static_cast<std::size_t>(r)]);
    }
  }
  barrier();
  return m;
}

void CommWorld::send(int from, int to, int tag, std::vector<double> data) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    check_abort_locked();
    mail_[{from, to, tag}].push_back(std::move(data));
  }
  cv_mail_.notify_all();
}

std::vector<double> CommWorld::recv(int from, int to, int tag) {
  std::unique_lock<std::mutex> lk(mu_);
  auto& q = mail_[{from, to, tag}];
  cv_mail_.wait(lk, [&] { return !q.empty() || aborted_; });
  check_abort_locked();
  std::vector<double> data = std::move(q.front());
  q.pop_front();
  return data;
}

void CommWorld::abort() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    aborted_ = true;
  }
  cv_barrier_.notify_all();
  cv_mail_.notify_all();
}

bool CommWorld::aborted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return aborted_;
}

}  // namespace mali::dist
