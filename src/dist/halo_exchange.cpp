#include "dist/halo_exchange.hpp"

#include <chrono>

#include "portability/common.hpp"

namespace mali::dist {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Flattens a sorted column list into per-entry vector indices: column col
/// covers entries [per_node*(col*levels), per_node*(col*levels + levels)).
std::vector<std::size_t> flatten(const std::vector<std::size_t>& columns,
                                 std::size_t levels, std::size_t per_node) {
  std::vector<std::size_t> idx;
  idx.reserve(columns.size() * levels * per_node);
  for (const std::size_t col : columns) {
    for (std::size_t l = 0; l < levels; ++l) {
      const std::size_t node = col * levels + l;
      for (std::size_t c = 0; c < per_node; ++c) {
        idx.push_back(node * per_node + c);
      }
    }
  }
  return idx;
}

}  // namespace

HaloExchange::HaloExchange(Communicator& comm, const mesh::Partition& part,
                           int rank, std::size_t levels, std::size_t per_node,
                           int tag_base)
    : comm_(&comm), tag_base_(tag_base) {
  MALI_CHECK(rank >= 0 && rank < part.n_parts);
  const auto r = static_cast<std::size_t>(rank);
  neighbors_ = part.neighbors[r];
  send_idx_.reserve(neighbors_.size());
  recv_idx_.reserve(neighbors_.size());
  for (std::size_t k = 0; k < neighbors_.size(); ++k) {
    send_idx_.push_back(flatten(part.send_columns[r][k], levels, per_node));
    recv_idx_.push_back(flatten(part.recv_columns[r][k], levels, per_node));
  }
  buf_.assign(neighbors_.size(), {});
}

std::size_t HaloExchange::send_entries() const {
  std::size_t n = 0;
  for (const auto& s : send_idx_) n += s.size();
  return n;
}

std::size_t HaloExchange::recv_entries() const {
  std::size_t n = 0;
  for (const auto& s : recv_idx_) n += s.size();
  return n;
}

void HaloExchange::post_import(const std::vector<double>& x) {
  const double t0 = now_s();
  for (std::size_t k = 0; k < neighbors_.size(); ++k) {
    if (send_idx_[k].empty()) continue;
    buf_[k].resize(send_idx_[k].size());
    for (std::size_t i = 0; i < send_idx_[k].size(); ++i) {
      buf_[k][i] = x[send_idx_[k][i]];
    }
  }
  const double t1 = now_s();
  for (std::size_t k = 0; k < neighbors_.size(); ++k) {
    if (send_idx_[k].empty()) continue;
    stats_.bytes_sent += buf_[k].size() * sizeof(double);
    comm_->send(neighbors_[k], tag_base_, std::move(buf_[k]));
    buf_[k].clear();
  }
  const double t2 = now_s();
  stats_.pack_s += t1 - t0;
  stats_.exchange_s += t2 - t1;
}

void HaloExchange::finish_import(std::vector<double>& x) {
  for (std::size_t k = 0; k < neighbors_.size(); ++k) {
    if (recv_idx_[k].empty()) continue;
    const double t0 = now_s();
    const std::vector<double> data = comm_->recv(neighbors_[k], tag_base_);
    const double t1 = now_s();
    MALI_CHECK_MSG(data.size() == recv_idx_[k].size(),
                   "halo import: received buffer size does not match plan");
    for (std::size_t i = 0; i < recv_idx_[k].size(); ++i) {
      x[recv_idx_[k][i]] = data[i];
    }
    stats_.exchange_s += t1 - t0;
    stats_.unpack_s += now_s() - t1;
  }
  ++stats_.exchanges;
}

void HaloExchange::import_ghosts(std::vector<double>& x) {
  post_import(x);
  finish_import(x);
}

void HaloExchange::export_add(std::vector<double>& x) {
  // Reverse flow: pack ghost partials (recv_idx_) and send to the owner;
  // receive neighbor partials for our owned columns (send_idx_) and add.
  const double t0 = now_s();
  for (std::size_t k = 0; k < neighbors_.size(); ++k) {
    if (recv_idx_[k].empty()) continue;
    buf_[k].resize(recv_idx_[k].size());
    for (std::size_t i = 0; i < recv_idx_[k].size(); ++i) {
      buf_[k][i] = x[recv_idx_[k][i]];
    }
  }
  const double t1 = now_s();
  stats_.pack_s += t1 - t0;
  for (std::size_t k = 0; k < neighbors_.size(); ++k) {
    if (recv_idx_[k].empty()) continue;
    stats_.bytes_sent += buf_[k].size() * sizeof(double);
    comm_->send(neighbors_[k], tag_base_ + 1, std::move(buf_[k]));
    buf_[k].clear();
  }
  stats_.exchange_s += now_s() - t1;
  for (std::size_t k = 0; k < neighbors_.size(); ++k) {
    if (send_idx_[k].empty()) continue;
    const double t2 = now_s();
    const std::vector<double> data = comm_->recv(neighbors_[k], tag_base_ + 1);
    const double t3 = now_s();
    MALI_CHECK_MSG(data.size() == send_idx_[k].size(),
                   "halo export: received buffer size does not match plan");
    for (std::size_t i = 0; i < send_idx_[k].size(); ++i) {
      x[send_idx_[k][i]] += data[i];
    }
    stats_.exchange_s += t3 - t2;
    stats_.unpack_s += now_s() - t3;
  }
  ++stats_.exchanges;
}

}  // namespace mali::dist
