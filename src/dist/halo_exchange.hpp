#pragma once
// Halo-exchange plan for column-decomposed extruded meshes.
//
// Built once per (partition, rank, values-per-node) from the symmetric
// send/recv ghost-column lists in mesh::Partition, the plan flattens each
// column into its per-level, per-component vector entries and provides the
// two primitive exchanges of the solve (see DESIGN.md §12):
//
//  - import_ghosts(x): owners send their values for the columns a neighbor
//    ghosts; ghosts are ASSIGNED.  Run before any kernel that reads ghost
//    columns (residual/tangent assembly reading U).  Split-phase variants
//    (post_import / finish_import) let the caller overlap the exchange with
//    interior-cell assembly.
//
//  - export_add(x): the reverse flow — each rank packs the PARTIAL sums its
//    own cells accumulated at ghost columns and sends them to the owner,
//    which ADDS them into its entries.  Run after scatter so owned rows
//    hold complete (globally assembled) values.
//
// Both sides pack/unpack the shared column lists in the same (ascending
// global id) order, so buffers align index-for-index without headers.
//
// Vectors are GLOBAL-extent on every rank: entry i is authoritative iff the
// rank owns column i (after export_add), ghost entries are valid after
// import_ghosts, and all other entries are never read (the rank-reduced
// inner product masks them).  Wall-clock for pack/exchange/unpack is
// accumulated in stats() — this is the "measured halo time" that
// bench_weak_scaling reports next to the NetworkModel prediction.

#include <cstddef>
#include <vector>

#include "dist/communicator.hpp"
#include "mesh/partition.hpp"

namespace mali::dist {

struct HaloStats {
  double pack_s = 0.0;      ///< time packing send buffers
  double exchange_s = 0.0;  ///< time in send/recv (includes wait)
  double unpack_s = 0.0;    ///< time scattering received values
  std::size_t bytes_sent = 0;
  std::size_t exchanges = 0;  ///< completed import/export operations
  [[nodiscard]] double total_s() const { return pack_s + exchange_s + unpack_s; }
};

class HaloExchange {
 public:
  /// `per_node` values per 3D node (2 for velocity dof vectors, 4 for the
  /// 2x2 node blocks of the block-Jacobi preconditioner); `levels` vertical
  /// levels per column; `tag_base` separates plans sharing a Communicator.
  HaloExchange(Communicator& comm, const mesh::Partition& part, int rank,
               std::size_t levels, std::size_t per_node, int tag_base = 0);

  /// Owner -> ghost assignment (blocking).
  void import_ghosts(std::vector<double>& x);
  /// Split-phase import: post sends (pack + send, no wait on receives)...
  void post_import(const std::vector<double>& x);
  /// ...then complete the receives, assigning ghost entries.
  void finish_import(std::vector<double>& x);

  /// Ghost partials -> owner add (blocking).  Ghost entries of x still hold
  /// the local partials afterwards; call import_ghosts to refresh them with
  /// the assembled values if they will be read.
  void export_add(std::vector<double>& x);

  [[nodiscard]] const HaloStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = {}; }

  [[nodiscard]] std::size_t n_neighbors() const noexcept {
    return neighbors_.size();
  }
  /// Total vector entries this rank sends per import (ghost entries per
  /// export); the payload the NetworkModel's halo_bytes models.
  [[nodiscard]] std::size_t send_entries() const;
  [[nodiscard]] std::size_t recv_entries() const;

 private:
  Communicator* comm_;
  int tag_base_;
  std::vector<int> neighbors_;
  /// Per neighbor: flattened vector-entry indices of the columns this rank
  /// OWNS and the neighbor ghosts (import-send / export-recv side)...
  std::vector<std::vector<std::size_t>> send_idx_;
  /// ...and of the columns this rank ghosts from the neighbor
  /// (import-recv / export-send side).
  std::vector<std::vector<std::size_t>> recv_idx_;
  std::vector<std::vector<double>> buf_;  ///< reusable pack buffers
  HaloStats stats_;
};

}  // namespace mali::dist
