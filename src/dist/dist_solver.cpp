#include "dist/dist_solver.hpp"

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <exception>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "dist/dist_checkpoint.hpp"
#include "linalg/block_jacobi.hpp"
#include "linalg/crs_matrix.hpp"
#include "linalg/preconditioner.hpp"
#include "portability/common.hpp"
#include "portability/thread_pool.hpp"
#include "portability/timer.hpp"
#include "resilience/guards.hpp"

namespace mali::dist {

// ---------------------------------------------------------------------------
// Decomp helpers
// ---------------------------------------------------------------------------

const char* to_string(Decomp d) {
  switch (d) {
    case Decomp::kStrips: return "strips";
    case Decomp::kBlocks: return "blocks";
  }
  return "?";
}

Decomp decomp_from_string(const std::string& s) {
  if (s == "strips") return Decomp::kStrips;
  if (s == "blocks") return Decomp::kBlocks;
  MALI_CHECK_MSG(false, "unknown decomposition '" + s +
                            "' (expected strips|blocks)");
  return Decomp::kStrips;
}

mesh::Partition make_partition(const mesh::QuadGrid& grid, int n_ranks,
                               Decomp decomp) {
  MALI_CHECK_MSG(n_ranks >= 1, "distributed solve needs at least one rank");
  if (decomp == Decomp::kStrips || n_ranks == 1) {
    return mesh::partition_strips(grid, n_ranks);
  }
  // px = the largest factor of n_ranks that is <= sqrt(n_ranks).
  int px = static_cast<int>(std::sqrt(static_cast<double>(n_ranks)));
  while (px > 1 && n_ranks % px != 0) --px;
  const int py = n_ranks / px;
  return mesh::partition_blocks(grid, px, py);
}

// ---------------------------------------------------------------------------
// DistStokesOperator
// ---------------------------------------------------------------------------

DistStokesOperator::DistStokesOperator(Subdomain& sub, HaloExchange& halo_dof,
                                       HaloExchange& halo_blocks,
                                       Communicator& comm,
                                       linalg::JacobianMode mode,
                                       RankContext& ctx)
    : sub_(&sub),
      halo_dof_(&halo_dof),
      halo_blk_(&halo_blocks),
      comm_(&comm),
      mode_(mode),
      ctx_(&ctx) {}

std::size_t DistStokesOperator::rows() const {
  return sub_->problem().n_dofs();
}
std::size_t DistStokesOperator::cols() const {
  return sub_->problem().n_dofs();
}

void DistStokesOperator::linearize(const std::vector<double>& U) {
  const physics::StokesFOProblem& prob = sub_->problem();
  const std::size_t n = prob.n_dofs();
  MALI_CHECK(U.size() == n);
  const std::size_t n_nodes = n / 2;

  U_ = U;
  halo_dof_->import_ghosts(U_);

  if (mode_ == linalg::JacobianMode::kAssembled) {
    if (!J_) J_ = std::make_unique<linalg::CrsMatrix>(prob.create_matrix());
    J_->set_zero();
    std::vector<double> Fdummy(n, 0.0);
    sub_->assemble_jacobian_segment(Subdomain::kInterior, U_, Fdummy, *J_);
    sub_->assemble_jacobian_segment(Subdomain::kBoundary, U_, Fdummy, *J_);
    // Extract this rank's partial per-node 2x2 diagonal blocks from the
    // partial matrix (zero everywhere the rank's cells did not touch).
    blocks_.assign(2 * n, 0.0);
    const std::vector<char>& local = sub_->node_is_local();
    for (std::size_t node = 0; node < n_nodes; ++node) {
      if (!local[node]) continue;
      for (int r = 0; r < 2; ++r) {
        for (int c = 0; c < 2; ++c) {
          blocks_[node * 4 + static_cast<std::size_t>(r) * 2 +
                  static_cast<std::size_t>(c)] =
              J_->get(2 * node + static_cast<std::size_t>(r),
                      2 * node + static_cast<std::size_t>(c));
        }
      }
    }
  } else {
    blocks_ = sub_->partial_node_blocks(U_);
  }

  // Complete the block diagonal at the owners, agree on the Dirichlet row
  // scale collectively (same formula as the serial problem: mean |diag| over
  // non-Dirichlet dofs), then refresh the ghosts so every local node block
  // is final before any preconditioner reads it.
  halo_blk_->export_add(blocks_);

  const fem::DofMap& dm = prob.dof_map();
  const std::vector<char>& owned = sub_->node_is_owned();
  double sum = 0.0;
  double cnt = 0.0;
  for (std::size_t node = 0; node < n_nodes; ++node) {
    if (!owned[node]) continue;
    for (int c = 0; c < 2; ++c) {
      const std::size_t d = 2 * node + static_cast<std::size_t>(c);
      if (dm.is_dirichlet_dof(d)) continue;
      sum += std::abs(blocks_[node * 4 + static_cast<std::size_t>(c) * 3]);
      cnt += 1.0;
    }
  }
  const std::vector<double> g = comm_->allreduce_sum(std::vector<double>{sum, cnt});
  if (g[1] > 0.0 && g[0] > 0.0) ctx_->dirichlet_scale = g[0] / g[1];

  halo_blk_->import_ghosts(blocks_);

  // Overrides: identity blocks at non-local nodes keep block-Jacobi
  // invertible everywhere (those rows/cols of x are masked anyway);
  // Dirichlet nodes get scale * I to match the owner's row override.
  const std::vector<char>& local = sub_->node_is_local();
  for (std::size_t node = 0; node < n_nodes; ++node) {
    double* b = blocks_.data() + node * 4;
    if (!local[node]) {
      b[0] = 1.0; b[1] = 0.0; b[2] = 0.0; b[3] = 1.0;
    } else if (dm.is_dirichlet_dof(2 * node)) {
      // MMS/Dirichlet columns pin both components of a node together.
      b[0] = ctx_->dirichlet_scale; b[1] = 0.0;
      b[2] = 0.0; b[3] = ctx_->dirichlet_scale;
    }
  }

  linearized_ = true;
}

void DistStokesOperator::apply(const std::vector<double>& x,
                               std::vector<double>& y) const {
  MALI_CHECK(linearized_);
  MALI_CHECK(&x != &y);
  const std::size_t n = sub_->problem().n_dofs();
  MALI_CHECK(x.size() == n);

  x_ = x;
  halo_dof_->import_ghosts(x_);
  y.assign(n, 0.0);

  if (mode_ == linalg::JacobianMode::kAssembled) {
    // Hand-rolled serial row loop over the rows this rank's cells touch:
    // CrsMatrix::apply is pool-parallel and must not run inside a rank
    // thread.  Couplings to non-local dofs have zero VALUES in the partial
    // matrix, so garbage x_ entries there multiply zeros — y stays finite.
    const std::vector<std::size_t>& rp = J_->row_ptr();
    const std::vector<std::size_t>& cols = J_->cols();
    const std::vector<double>& vals = J_->values();
    for (const std::size_t row : sub_->local_dofs()) {
      double acc = 0.0;
      for (std::size_t k = rp[row]; k < rp[row + 1]; ++k) {
        acc += vals[k] * x_[cols[k]];
      }
      y[row] = acc;
    }
  } else {
    sub_->apply_tangent(U_, x_, y);
  }

  halo_dof_->export_add(y);

  for (const std::size_t d : sub_->owned_dirichlet_dofs()) {
    y[d] = ctx_->dirichlet_scale * x_[d];
  }
}

bool DistStokesOperator::diagonal(std::vector<double>& d) const {
  MALI_CHECK(linearized_);
  const std::size_t n = sub_->problem().n_dofs();
  d.resize(n);
  for (std::size_t node = 0; node < n / 2; ++node) {
    d[2 * node] = blocks_[node * 4];
    d[2 * node + 1] = blocks_[node * 4 + 3];
  }
  return true;
}

bool DistStokesOperator::block_diagonal(int bs,
                                        std::vector<double>& blocks) const {
  if (bs != 2) return false;
  MALI_CHECK(linearized_);
  blocks = blocks_;
  return true;
}

// ---------------------------------------------------------------------------
// RankStokesProblem
// ---------------------------------------------------------------------------

void RankStokesProblem::residual(const std::vector<double>& U,
                                 std::vector<double>& F) {
  const physics::StokesFOProblem& prob = sub_->problem();
  const std::size_t n = prob.n_dofs();
  MALI_CHECK(U.size() == n);

  scratch_ = U;
  F.assign(n, 0.0);
  if (overlap_) {
    // Split-phase: post the ghost import, assemble the interior cells (which
    // by construction read only owned columns), then complete the import
    // before the boundary cells that need the ghosts.
    halo_dof_->post_import(scratch_);
    sub_->assemble_residual_segment(Subdomain::kInterior, scratch_, F);
    halo_dof_->finish_import(scratch_);
  } else {
    halo_dof_->import_ghosts(scratch_);
    sub_->assemble_residual_segment(Subdomain::kInterior, scratch_, F);
  }
  sub_->assemble_residual_segment(Subdomain::kBoundary, scratch_, F);
  halo_dof_->export_add(F);

  const std::vector<double>& g = prob.dirichlet_values();
  for (const std::size_t d : sub_->owned_dirichlet_dofs()) {
    F[d] = ctx_->dirichlet_scale * (scratch_[d] - g[d]);
  }
}

void RankStokesProblem::residual_and_jacobian(const std::vector<double>&,
                                              std::vector<double>&,
                                              linalg::CrsMatrix&) {
  MALI_CHECK_MSG(false,
                 "distributed solve is matrix-free at the Newton level; the "
                 "assembled fallback path is not supported per-rank");
}

std::unique_ptr<linalg::LinearOperator> RankStokesProblem::jacobian_operator(
    const std::vector<double>& U) {
  auto op = std::make_unique<DistStokesOperator>(*sub_, *halo_dof_, *halo_blk_,
                                                 *comm_, mode_, *ctx_);
  op->linearize(U);
  return op;
}

// ---------------------------------------------------------------------------
// solve_distributed
// ---------------------------------------------------------------------------

namespace {

std::unique_ptr<linalg::Preconditioner> make_rank_precond(
    const std::string& name) {
  if (name == "none" || name == "identity") {
    return std::make_unique<linalg::IdentityPreconditioner>();
  }
  if (name == "jacobi") return std::make_unique<linalg::JacobiPreconditioner>();
  if (name == "block-jacobi") {
    return std::make_unique<linalg::BlockJacobiPreconditioner>(2);
  }
  MALI_CHECK_MSG(false, "distributed solve: unknown preconditioner '" + name +
                            "' (expected none|jacobi|block-jacobi)");
  return nullptr;
}

void accumulate(HaloStats& into, const HaloStats& s) {
  into.pack_s += s.pack_s;
  into.exchange_s += s.exchange_s;
  into.unpack_s += s.unpack_s;
  into.bytes_sent += s.bytes_sent;
  into.exchanges += s.exchanges;
}

}  // namespace

std::string DistRestartAttempt::to_string() const {
  std::ostringstream os;
  os << "attempt " << attempt << ": ";
  if (comm_fault) {
    os << fault.describe();
  } else {
    os << error;
  }
  if (rolled_back) os << " -> rolled back to replicated checkpoint";
  return os.str();
}

std::string DistRecoveryLog::to_string() const {
  std::ostringstream os;
  for (const DistRestartAttempt& a : attempts) os << a.to_string() << '\n';
  return os.str();
}

std::string DistRecoveryLog::tail(std::size_t n) const {
  std::ostringstream os;
  const std::size_t from = attempts.size() > n ? attempts.size() - n : 0;
  if (from > 0) os << "... (" << from << " earlier attempts)\n";
  for (std::size_t i = from; i < attempts.size(); ++i) {
    os << attempts[i].to_string() << '\n';
  }
  return os.str();
}

DistResult solve_distributed(const physics::StokesFOProblem& problem,
                             const DistConfig& cfg,
                             const std::vector<double>* U0,
                             DistRecoveryLog* log_out) {
  MALI_CHECK_MSG(cfg.ranks >= 1, "DistConfig.ranks must be >= 1");
  const std::size_t n = problem.n_dofs();
  const auto N = static_cast<std::size_t>(cfg.ranks);

  const mesh::Partition part =
      make_partition(problem.mesh().base(), cfg.ranks, cfg.decomp);

  std::vector<double> U_init(n, 0.0);
  if (U0 != nullptr) {
    MALI_CHECK(U0->size() == n);
    U_init = *U0;
  }

  // Injectors persist ACROSS restart attempts (one per rank: the per-site
  // counters are thread-local by construction), so a one-shot injected
  // fault fires once and the retried attempt runs clean — the restart loop
  // is the transient-fault recovery, not a fault replay.
  const bool use_solver_guards = cfg.solver_guards || cfg.inject_solver_fault;
  std::vector<std::unique_ptr<resilience::CommFaultInjector>> comm_inj;
  std::vector<std::unique_ptr<resilience::FaultInjector>> solver_inj;
  for (std::size_t r = 0; r < N; ++r) {
    comm_inj.push_back(
        cfg.inject_comm_fault
            ? std::make_unique<resilience::CommFaultInjector>(cfg.comm_fault)
            : nullptr);
    solver_inj.push_back(
        cfg.inject_solver_fault
            ? std::make_unique<resilience::FaultInjector>(cfg.solver_fault)
            : nullptr);
  }

  DistCheckpoint ckpt;
  if (cfg.checkpoint) ckpt.U.assign(n, 0.0);

  DistRecoveryLog rlog;
  const int total_attempts = 1 + std::max(0, cfg.max_restarts);

  for (int attempt = 0;; ++attempt) {
    if (attempt > 0 && cfg.restart_backoff_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          cfg.restart_backoff_s * static_cast<double>(1 << (attempt - 1))));
    }
    // Coordinated rollback: a later attempt resumes from the last
    // globally-consistent accepted Newton iterate the mirror replicated.
    const bool rolled_back = attempt > 0 && cfg.checkpoint && ckpt.valid;

    DistResult result;
    result.U = rolled_back ? ckpt.U : U_init;
    std::vector<double>& U_shared = result.U;
    result.ranks.resize(N);
    std::vector<std::exception_ptr> errs(N);

    // A FRESH world per attempt: the previous one is poisoned beyond reuse
    // (mailboxes, barrier generations, abort flag) — exactly like
    // re-spawning the job after a node loss.
    CommWorld world(cfg.ranks);
    world.set_guards(cfg.guards);

    pk::ThreadPool::parallel_tasks(N, [&](std::size_t r) {
      try {
        const pk::Timer t_total;
        Communicator comm(world, static_cast<int>(r));
        if (comm_inj[r]) comm.set_fault_injector(comm_inj[r].get());
        Subdomain sub(problem, part, static_cast<int>(r));
        HaloExchange halo_dof(comm, part, static_cast<int>(r),
                              problem.mesh().levels(), /*per_node=*/2,
                              /*tag_base=*/0);
        HaloExchange halo_blk(comm, part, static_cast<int>(r),
                              problem.mesh().levels(), /*per_node=*/4,
                              /*tag_base=*/8);
        RankContext ctx;
        DistInnerProduct ip(comm, sub.owned_dofs());
        RankStokesProblem rank_problem(sub, halo_dof, halo_blk, comm,
                                       cfg.jacobian, cfg.overlap, ctx);
        // Guard decorators when armed: the residual/operator outputs are
        // zero-initialized and fully finite on the clean path, and every
        // rank holds the same seed, so a detection (organic or injected)
        // throws the identical typed SolverFaultError in lockstep.
        resilience::GuardedProblem guarded(rank_problem, {},
                                           solver_inj[r].get());
        nonlinear::NonlinearProblem& prob =
            use_solver_guards
                ? static_cast<nonlinear::NonlinearProblem&>(guarded)
                : rank_problem;

        nonlinear::NewtonConfig ncfg = cfg.newton;
        ncfg.jacobian = linalg::JacobianMode::kMatrixFree;
        ncfg.krylov = cfg.krylov;
        ncfg.inner = &ip;
        ncfg.gmres.inner = &ip;
        // The per-rank recovery ladder stays disabled: rungs retry solves
        // locally, which would desynchronize the SPMD lockstep.  The
        // coordinated restart loop around this body is the distributed
        // recovery path.
        ncfg.recovery = resilience::RecoveryConfig{};
        ncfg.verbose = cfg.verbose && r == 0;
        ncfg.gmres.verbose = ncfg.gmres.verbose && r == 0;

        std::unique_ptr<linalg::Preconditioner> M =
            make_rank_precond(cfg.precond);
        resilience::GuardedPreconditioner guarded_M(*M, solver_inj[r].get());
        linalg::Preconditioner& M_use =
            use_solver_guards ? static_cast<linalg::Preconditioner&>(guarded_M)
                              : *M;

        // Replicated checkpoint mirror, fed from the accepted-step hook
        // (SPMD lockstep, so the mirror traffic is itself collective).
        std::unique_ptr<CheckpointMirror> mirror;
        if (cfg.checkpoint) {
          mirror = std::make_unique<CheckpointMirror>(problem.mesh(), part,
                                                      comm, ckpt);
          ncfg.on_accepted_step = [&mirror](int step,
                                            const std::vector<double>& Uacc,
                                            double fnorm) {
            mirror->capture(Uacc, fnorm, step);
          };
        }

        std::vector<double> U = U_shared;  // all ranks copy before any writes
        comm.barrier();                    // ... and the barrier makes it so

        nonlinear::NewtonSolver newton(ncfg);
        const nonlinear::NewtonResult nr = newton.solve(prob, M_use, U);

        comm.barrier();  // everyone done solving before gathering
        for (const std::size_t d : sub.owned_dofs()) U_shared[d] = U[d];

        DistRankReport& rep = result.ranks[r];
        rep.owned_cells = part.owned_cells[r];
        rep.owned_columns = part.owned_column_ids[r].size();
        rep.halo_columns = part.ghost_column_ids[r].size();
        rep.n_neighbors = part.neighbor_count(static_cast<int>(r));
        accumulate(rep.halo, halo_dof.stats());
        accumulate(rep.halo, halo_blk.stats());
        rep.comm = comm.counters();
        rep.kernel_s = sub.kernel_seconds();
        rep.total_s = t_total.seconds();
        rep.newton = nr;
      } catch (const CommAborted&) {
        // Another rank failed first; its error is the one worth reporting.
      } catch (const resilience::CommFaultError& e) {
        errs[r] = std::current_exception();
        world.abort_with(e.fault());  // typed poison: deterministic agreement
      } catch (...) {
        errs[r] = std::current_exception();
        world.abort();
      }
    });

    std::exception_ptr first;
    for (const std::exception_ptr& e : errs) {
      if (e) {
        first = e;
        break;
      }
    }

    if (!first) {
      result.partition = part;
      result.restarts = attempt;
      result.recovery = rlog;
      if (log_out != nullptr) *log_out = rlog;
      const nonlinear::NewtonResult& nr0 = result.ranks[0].newton;
      result.converged = nr0.converged;
      result.newton_iters = nr0.iterations;
      result.residual_norm = nr0.residual_norm;
      return result;
    }

    DistRestartAttempt a;
    a.attempt = attempt;
    a.fault = world.fault();
    a.comm_fault = a.fault.type != resilience::CommFaultType::kNone;
    try {
      std::rethrow_exception(first);
    } catch (const std::exception& e) {
      a.error = e.what();
    } catch (...) {
      a.error = "unknown error";
    }
    a.rolled_back = cfg.checkpoint && ckpt.valid && attempt + 1 < total_attempts;
    if (cfg.verbose) {
      std::printf("dist restart: %s\n", a.to_string().c_str());
    }
    rlog.attempts.push_back(std::move(a));
    if (log_out != nullptr) *log_out = rlog;
    if (attempt + 1 >= total_attempts) std::rethrow_exception(first);
  }
}

}  // namespace mali::dist
