#pragma once
// Replicated distributed checkpoint for the coordinated-rollback rung of
// the comm fault-tolerance ladder (DESIGN.md §16).
//
// Each accepted Newton step, every rank MIRRORS its owned solution entries
// to its successor rank ((r+1) mod N) as real point-to-point traffic —
// checksum-framed like any other message when guards are on — and scatters
// the state received from its predecessor into a shared global-extent
// DistCheckpoint.  The scatter indices are the PREDECESSOR's owned dofs,
// derived locally from the partition (both endpoints know the ownership
// map, so no index traffic is needed), and ownership is disjoint across
// ranks, so the shared-vector writes never race.
//
// After a comm fault poisons the world, the restart loop seeds the next
// attempt's initial guess from the checkpoint: the retried solve resumes
// from the last globally-consistent accepted Newton state instead of
// re-converging from scratch.  In a real multi-node MALI run the mirror is
// what survives a node loss — the neighbor holds the dead rank's state;
// the in-process surrogate keeps the same traffic pattern and replication
// discipline so the protocol is exercised end to end.

#include <vector>

#include "dist/communicator.hpp"
#include "mesh/extruded_mesh.hpp"
#include "mesh/partition.hpp"

namespace mali::dist {

/// The replicated rollback state: last accepted Newton iterate (global
/// extent, assembled from every rank's mirrored contribution) plus the
/// metadata the restart loop logs.  Owned by solve_distributed, shared
/// across rank threads; `U` must be pre-sized before the ranks start.
struct DistCheckpoint {
  std::vector<double> U;
  double residual_norm = 0.0;
  int newton_step = 0;
  bool valid = false;
};

/// Per-rank mirror endpoint.  capture() is collective: every rank must call
/// it the same number of times (it is driven from the SPMD-lockstep
/// accepted-step hook of NewtonSolver, which guarantees exactly that).
class CheckpointMirror {
 public:
  /// `tag_base` reserves a tag channel distinct from the halo plans (dof
  /// plan: 0/1, block plan: 8/9).
  CheckpointMirror(const mesh::ExtrudedMesh& mesh, const mesh::Partition& part,
                   Communicator& comm, DistCheckpoint& ckpt, int tag_base = 16);

  /// Mirrors this rank's owned entries of `U` to the successor, scatters
  /// the predecessor's into the shared checkpoint, and (on rank 0) stamps
  /// the metadata and marks the checkpoint valid.
  void capture(const std::vector<double>& U, double fnorm, int step);

  /// Mirror messages exchanged so far on this rank.
  [[nodiscard]] std::size_t captures() const noexcept { return captures_; }

 private:
  Communicator* comm_;
  DistCheckpoint* ckpt_;
  int tag_base_;
  std::vector<std::size_t> my_dofs_;    ///< this rank's owned dofs
  std::vector<std::size_t> pred_dofs_;  ///< predecessor's owned dofs
  std::size_t captures_ = 0;
};

}  // namespace mali::dist
