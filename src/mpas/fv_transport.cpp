#include "mpas/fv_transport.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "portability/common.hpp"

namespace mali::mpas {

namespace {

/// van Leer slope limiter phi(r) = (r + |r|) / (1 + |r|).
double van_leer(double r) {
  const double a = std::abs(r);
  return (r + a) / (1.0 + a);
}

/// Boundary validation: every entry finite, or a typed error naming the
/// field and the first offending entry.
void check_finite(const char* field, const std::vector<double>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    MALI_CHECK_MSG(std::isfinite(v[i]),
                   std::string("FvTransport: non-finite ") + field +
                       " at cell " + std::to_string(i));
  }
}

void check_size(const char* field, const std::vector<double>& v,
                std::size_t n_cells) {
  MALI_CHECK_MSG(v.size() == n_cells,
                 std::string("FvTransport: ") + field + " has " +
                     std::to_string(v.size()) + " entries, expected " +
                     std::to_string(n_cells) + " cells");
}

}  // namespace

FvTransport::FvTransport(const mesh::QuadGrid& grid, TransportConfig cfg)
    : grid_(grid), cfg_(cfg), n_cells_(grid.n_cells()), dx_(grid.dx()) {
  // Faces from shared edges; neighbour table from centroid offsets.
  std::vector<double> cx(n_cells_), cy(n_cells_);
  for (std::size_t c = 0; c < n_cells_; ++c) grid_.cell_centroid(c, cx[c], cy[c]);

  std::map<std::pair<std::size_t, std::size_t>, std::size_t> edge_owner;
  std::map<std::pair<std::size_t, std::size_t>, int> edge_count;
  neighbors_.assign(n_cells_, {npos, npos, npos, npos});
  for (std::size_t c = 0; c < n_cells_; ++c) {
    for (int k = 0; k < 4; ++k) {
      std::size_t a = grid_.cell_node(c, k);
      std::size_t b = grid_.cell_node(c, (k + 1) % 4);
      if (a > b) std::swap(a, b);
      ++edge_count[{a, b}];
      auto [it, inserted] = edge_owner.try_emplace({a, b}, c);
      if (inserted) continue;
      const std::size_t other = it->second;
      const double dxc = cx[c] - cx[other];
      const double dyc = cy[c] - cy[other];
      const double len = std::hypot(dxc, dyc);
      MALI_CHECK(len > 0.0);
      faces_.push_back(Face{other, c, dxc / len, dyc / len});
      // Fill the directional neighbour table for both cells.
      const bool horizontal = std::abs(dxc) > std::abs(dyc);
      if (horizontal) {
        if (dxc > 0) {  // `c` is +x of `other`
          neighbors_[other][1] = c;
          neighbors_[c][0] = other;
        } else {
          neighbors_[other][0] = c;
          neighbors_[c][1] = other;
        }
      } else {
        if (dyc > 0) {
          neighbors_[other][3] = c;
          neighbors_[c][2] = other;
        } else {
          neighbors_[other][2] = c;
          neighbors_[c][3] = other;
        }
      }
    }
  }

  // Margin edges (single owner): outflow boundary faces with the outward
  // normal taken from edge midpoint relative to the cell centroid.
  for (const auto& [edge, count] : edge_count) {
    if (count != 1) continue;
    const std::size_t c = edge_owner.at(edge);
    const double mx = 0.5 * (grid_.node_x(edge.first) + grid_.node_x(edge.second));
    const double my = 0.5 * (grid_.node_y(edge.first) + grid_.node_y(edge.second));
    const double ox = mx - cx[c];
    const double oy = my - cy[c];
    const double len = std::hypot(ox, oy);
    MALI_CHECK(len > 0.0);
    boundary_faces_.push_back(BoundaryFace{c, ox / len, oy / len});
  }
}

double FvTransport::max_stable_dt(const std::vector<double>& u,
                                  const std::vector<double>& v) const {
  MALI_CHECK(u.size() == n_cells_ && v.size() == n_cells_);
  double max_speed = 0.0;
  for (std::size_t c = 0; c < n_cells_; ++c) {
    max_speed = std::max(max_speed, std::abs(u[c]) + std::abs(v[c]));
  }
  return max_speed > 0.0 ? dx_ / max_speed
                         : std::numeric_limits<double>::infinity();
}

double FvTransport::face_value(const std::vector<double>& H, const Face& f,
                               double un) const {
  const std::size_t up = un >= 0.0 ? f.left : f.right;
  if (cfg_.flux == FluxScheme::kUpwind) return H[up];

  // MUSCL: reconstruct the upwind cell's face value with a limited slope
  // along the face direction.  Directions: 0:-x 1:+x 2:-y 3:+y.
  const bool horizontal = std::abs(f.nx) > std::abs(f.ny);
  const bool toward_positive = horizontal ? (f.nx > 0) == (un >= 0.0)
                                          : (f.ny > 0) == (un >= 0.0);
  const int fwd_dir = horizontal ? (toward_positive ? 1 : 0)
                                 : (toward_positive ? 3 : 2);
  const int bwd_dir = fwd_dir ^ 1;
  const std::size_t fwd = neighbors_[up][static_cast<std::size_t>(fwd_dir)];
  const std::size_t bwd = neighbors_[up][static_cast<std::size_t>(bwd_dir)];
  if (fwd == npos || bwd == npos) return H[up];  // boundary: donor cell

  const double d_fwd = H[fwd] - H[up];
  const double d_bwd = H[up] - H[bwd];
  if (d_fwd == 0.0) return H[up];
  const double r = d_bwd / d_fwd;
  return H[up] + 0.5 * van_leer(r) * d_fwd;
}

void FvTransport::tendency(const std::vector<double>& H,
                           const std::vector<double>& u,
                           const std::vector<double>& v,
                           const std::vector<double>& source,
                           std::vector<double>& dHdt) const {
  tendency_impl(H, u, v, source, dHdt, nullptr);
}

void FvTransport::tendency_impl(const std::vector<double>& H,
                                const std::vector<double>& u,
                                const std::vector<double>& v,
                                const std::vector<double>& source,
                                std::vector<double>& dHdt,
                                double* outflow_rate) const {
  check_size("thickness", H, n_cells_);
  check_size("u velocity", u, n_cells_);
  check_size("v velocity", v, n_cells_);
  check_size("source", source, n_cells_);
  dHdt.assign(n_cells_, 0.0);
  const double inv_area = 1.0 / (dx_ * dx_);
  for (const auto& f : faces_) {
    const double un = 0.5 * ((u[f.left] + u[f.right]) * f.nx +
                             (v[f.left] + v[f.right]) * f.ny);
    const double h_face = face_value(H, f, un);
    const double flux = un * h_face * dx_;  // m^2/yr * m
    dHdt[f.left] -= flux * inv_area;
    dHdt[f.right] += flux * inv_area;
  }
  // Outflow through the margin (calving); no inflow from the void.
  for (const auto& f : boundary_faces_) {
    const double un = u[f.cell] * f.nx + v[f.cell] * f.ny;
    if (un > 0.0) {
      dHdt[f.cell] -= un * H[f.cell] * dx_ * inv_area;
      if (outflow_rate != nullptr) *outflow_rate += un * H[f.cell] * dx_;
    }
  }
  for (std::size_t c = 0; c < n_cells_; ++c) dHdt[c] += source[c];
}

FvTransport::StepStats FvTransport::step(std::vector<double>& H,
                                         const std::vector<double>& u,
                                         const std::vector<double>& v,
                                         const std::vector<double>& source,
                                         double dt) const {
  MALI_CHECK_MSG(std::isfinite(dt) && dt > 0.0,
                 "FvTransport::step: dt must be positive and finite, got " +
                     std::to_string(dt));
  check_size("thickness", H, n_cells_);
  check_finite("thickness", H);
  check_finite("u velocity", u);
  check_finite("v velocity", v);
  check_finite("source", source);

  const double area = dx_ * dx_;
  StepStats stats;
  for (const double s : source) stats.smb_volume += s;
  stats.smb_volume *= dt * area;

  std::vector<double> k1, k2;
  double out1 = 0.0, out2 = 0.0;
  tendency_impl(H, u, v, source, k1, &out1);
  if (cfg_.time == TimeScheme::kForwardEuler) {
    stats.calving_volume = dt * out1;
    for (std::size_t c = 0; c < n_cells_; ++c) {
      const double raw = H[c] + dt * k1[c];
      H[c] = std::max(cfg_.min_thickness, raw);
      stats.clamp_volume += (H[c] - raw) * area;
    }
    return stats;
  }
  // Heun's RK2: predictor + trapezoidal corrector.  The margin outflow is
  // weighted exactly like the tendencies, so the budget stays exact.
  std::vector<double> H1(n_cells_);
  for (std::size_t c = 0; c < n_cells_; ++c) H1[c] = H[c] + dt * k1[c];
  tendency_impl(H1, u, v, source, k2, &out2);
  stats.calving_volume = 0.5 * dt * (out1 + out2);
  for (std::size_t c = 0; c < n_cells_; ++c) {
    const double raw = H[c] + 0.5 * dt * (k1[c] + k2[c]);
    H[c] = std::max(cfg_.min_thickness, raw);
    stats.clamp_volume += (H[c] - raw) * area;
  }
  return stats;
}

double FvTransport::volume(const std::vector<double>& H) const {
  MALI_CHECK(H.size() == n_cells_);
  double v = 0.0;
  for (double h : H) v += h;
  return v * dx_ * dx_;
}

std::vector<double> FvTransport::node_to_cell(
    const std::vector<double>& node_field) const {
  MALI_CHECK(node_field.size() == grid_.n_nodes());
  std::vector<double> out(n_cells_, 0.0);
  for (std::size_t c = 0; c < n_cells_; ++c) {
    for (int k = 0; k < 4; ++k) {
      out[c] += 0.25 * node_field[grid_.cell_node(c, k)];
    }
  }
  return out;
}

}  // namespace mali::mpas
