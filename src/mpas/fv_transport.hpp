#pragma once
// mali::mpas — the MPAS side of MALI: finite-volume transport of ice
// thickness on the base mesh (the dynamic mass-conservation equation,
// Eq. 2 of the paper):
//
//   dH/dt + div(H u_bar) = a_dot + b_dot
//
// MPAS steps this equation on its Voronoi mesh; MiniMALI provides the
// equivalent cell-centred finite-volume scheme on the quad base grid:
// first-order upwind or monotone van-Leer-limited second-order fluxes,
// forward-Euler or Heun (RK2) time stepping, and a CFL estimator.

#include <array>
#include <cstddef>
#include <vector>

#include "mesh/quad_grid.hpp"

namespace mali::mpas {

enum class FluxScheme {
  kUpwind,       ///< first-order donor cell
  kVanLeerMuscl, ///< second-order MUSCL with the van Leer limiter
};

enum class TimeScheme {
  kForwardEuler,
  kHeunRk2,
};

struct TransportConfig {
  FluxScheme flux = FluxScheme::kUpwind;
  TimeScheme time = TimeScheme::kForwardEuler;
  double min_thickness = 0.0;  ///< floor applied after each step
};

/// Cell-centred FV transport operator on the quad base grid.
///
/// Faces are derived from the grid's shared edges; boundary faces are
/// treated as outflow (zero-gradient) for H and no-inflow from the void.
class FvTransport {
 public:
  FvTransport(const mesh::QuadGrid& grid, TransportConfig cfg = {});

  [[nodiscard]] std::size_t n_cells() const noexcept { return n_cells_; }
  [[nodiscard]] std::size_t n_faces() const noexcept { return faces_.size(); }
  [[nodiscard]] const TransportConfig& config() const noexcept { return cfg_; }

  /// Largest stable time step (CFL = 1) for the given cell velocities.
  [[nodiscard]] double max_stable_dt(const std::vector<double>& u,
                                     const std::vector<double>& v) const;

  /// Tendency dH/dt = -div(H u) + source; all vectors are cell-centred.
  void tendency(const std::vector<double>& H, const std::vector<double>& u,
                const std::vector<double>& v,
                const std::vector<double>& source,
                std::vector<double>& dHdt) const;

  /// Exact discrete mass budget of one step() call (all volumes in m^3 of
  /// ice over the step):  volume(H_new) - volume(H_old) =
  ///     smb_volume - calving_volume + clamp_volume
  /// up to FP roundoff — interior face fluxes telescope exactly, so the
  /// only gain/loss terms are the source, the margin outflow (stage-
  /// weighted like the time scheme), and the min-thickness floor.
  struct StepStats {
    double smb_volume = 0.0;      ///< dt * integral of `source`
    double calving_volume = 0.0;  ///< outflow through the margin
    double clamp_volume = 0.0;    ///< ice created by the thickness floor
  };

  /// Advances H by dt with the configured time scheme.  Inputs are
  /// validated at the library boundary: dt must be positive and finite,
  /// all fields cell-sized, and H/u/v/source free of NaN/Inf — violations
  /// throw mali::Error naming the offending field (and entry).
  StepStats step(std::vector<double>& H, const std::vector<double>& u,
                 const std::vector<double>& v,
                 const std::vector<double>& source, double dt) const;

  /// Total ice volume (sum H * cell area).
  [[nodiscard]] double volume(const std::vector<double>& H) const;

  /// Interpolates a node-centred field to cell centres (averaging the four
  /// corners) — e.g. the depth-averaged velocity from the Stokes solve.
  [[nodiscard]] std::vector<double> node_to_cell(
      const std::vector<double>& node_field) const;

  struct Face {
    std::size_t left, right;  ///< adjacent cells
    double nx, ny;            ///< unit normal, left -> right
  };
  [[nodiscard]] const std::vector<Face>& faces() const noexcept {
    return faces_;
  }

  /// Margin edge of a single cell; outward transport leaves the domain
  /// (calving), nothing flows in from the void.
  struct BoundaryFace {
    std::size_t cell;
    double nx, ny;  ///< outward unit normal
  };
  [[nodiscard]] const std::vector<BoundaryFace>& boundary_faces()
      const noexcept {
    return boundary_faces_;
  }

 private:
  /// Limited face value of H on the upwind side.
  [[nodiscard]] double face_value(const std::vector<double>& H,
                                  const Face& f, double un) const;

  /// tendency() plus the margin outflow rate (m^3/yr) when requested.
  void tendency_impl(const std::vector<double>& H,
                     const std::vector<double>& u,
                     const std::vector<double>& v,
                     const std::vector<double>& source,
                     std::vector<double>& dHdt, double* outflow_rate) const;

  const mesh::QuadGrid& grid_;
  TransportConfig cfg_;
  std::size_t n_cells_;
  double dx_;
  std::vector<Face> faces_;
  std::vector<BoundaryFace> boundary_faces_;
  /// Per-cell upwind-neighbour lookup in the -x/+x/-y/+y directions
  /// (npos when missing), used by the MUSCL slope computation.
  std::vector<std::array<std::size_t, 4>> neighbors_;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace mali::mpas
