#pragma once
// Markdown report generation: runs the full optimization study (Tables
// II–IV, Figs. 3 and 5, the ablation and the launch-bounds sweep) and
// renders the results as a single markdown document — the automated
// counterpart of EXPERIMENTS.md.

#include <string>

#include "core/study.hpp"

namespace mali::core {

struct ReportOptions {
  bool include_launch_bounds = true;  ///< Table II section
  bool include_roofline = true;       ///< Fig. 3 section
  bool include_time_oriented = true;  ///< Fig. 5 section
  bool include_portability = true;    ///< Table IV section
  bool include_ablation = true;       ///< extension section
  /// Assembled-SpMV vs matrix-free modeled bytes per GMRES iteration.
  bool include_jacobian_apply = true;
};

/// Renders the study results as markdown.
[[nodiscard]] std::string generate_markdown_report(
    const OptimizationStudy& study, ReportOptions options = {});

/// Convenience: render and write to a file; returns the path.
std::string write_markdown_report(const OptimizationStudy& study,
                                  const std::string& path,
                                  ReportOptions options = {});

}  // namespace mali::core
