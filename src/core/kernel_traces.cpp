#include "core/kernel_traces.hpp"

#include "ad/sfad.hpp"
#include "portability/common.hpp"

#include "gpusim/trace_view.hpp"
#include "physics/eval_types.hpp"
#include "physics/stokes_fo_resid.hpp"

namespace mali::core {

const char* to_string(KernelKind k) {
  return k == KernelKind::kResidual ? "Residual" : "Jacobian";
}

std::size_t scalar_bytes(KernelKind k, int num_nodes) {
  if (k == KernelKind::kResidual) return sizeof(double);
  return sizeof(double) * (1 + 2 * static_cast<std::size_t>(num_nodes));
}

namespace {

template <class ScalarT, int NumNodes>
gpusim::TraceRecorder record_trace_impl(physics::KernelVariant variant,
                                        std::size_t modeled_cells, int N,
                                        int Q) {
  // Tiny recording arrays; virtual sizes span the modeled workset so the
  // replay addresses match full-size allocations.
  constexpr std::size_t kRecCells = 2;
  const auto C = kRecCells;
  const auto MC = modeled_cells;

  pk::View<ScalarT, 4> Ugrad("Ugrad", C, Q, 2, 3);
  pk::View<ScalarT, 2> mu("muLandIce", C, Q);
  pk::View<ScalarT, 3> force("force", C, Q, 2);
  pk::View<double, 4> wGradBF("wGradBF", C, N, Q, 3);
  pk::View<double, 3> wBF("wBF", C, N, Q);
  pk::View<ScalarT, 3> Residual("Residual", C, N, 2);

  // Representative values (the trace only depends on the access pattern,
  // but keep the arithmetic well-defined).
  for (int q = 0; q < Q; ++q) {
    mu(0, q) = ScalarT(1.0);
    for (int c2 = 0; c2 < 2; ++c2) {
      force(0, q, c2) = ScalarT(0.5);
      for (int d = 0; d < 3; ++d) Ugrad(0, q, c2, d) = ScalarT(0.25);
    }
    for (int k = 0; k < N; ++k) {
      wBF(0, k, q) = 1.0;
      for (int d = 0; d < 3; ++d) wGradBF(0, k, q, d) = 0.5;
    }
  }

  gpusim::TraceRecorder rec;

  physics::StokesFOResid<ScalarT, double, gpusim::TraceView> kernel;
  kernel.Ugrad = {Ugrad, rec, MC};
  kernel.muLandIce = {mu, rec, MC};
  kernel.force = {force, rec, MC};
  kernel.wGradBF = {wGradBF, rec, MC};
  kernel.wBF = {wBF, rec, MC};
  kernel.Residual = {Residual, rec, MC};
  kernel.numNodes = static_cast<unsigned>(N);
  kernel.numQPs = static_cast<unsigned>(Q);
  kernel.cond = false;

  using physics::KernelVariant;
  switch (variant) {
    case KernelVariant::kBaseline:
      kernel(physics::LandIce_3D_Tag{}, 0);
      break;
    case KernelVariant::kOptimized:
      kernel(physics::LandIce_3D_Opt_Tag<NumNodes>{}, 0);
      break;
    case KernelVariant::kLoopOptOnly:
      kernel(physics::LandIce_3D_LoopOptOnly_Tag<NumNodes>{}, 0);
      break;
    case KernelVariant::kFusedOnly:
      kernel(physics::LandIce_3D_FusedOnly_Tag{}, 0);
      break;
    case KernelVariant::kLocalAccumOnly:
      kernel(physics::LandIce_3D_LocalAccumOnly_Tag{}, 0);
      break;
  }
  return rec;
}

}  // namespace

gpusim::TraceRecorder record_kernel_trace(KernelKind kind,
                                          physics::KernelVariant variant,
                                          std::size_t modeled_cells,
                                          int num_nodes, int num_qps) {
  MALI_CHECK_MSG(num_nodes == 8 || num_nodes == 6,
                 "supported topologies: HEX8 (8 nodes) and WEDGE6 (6 nodes)");
  if (kind == KernelKind::kResidual) {
    return num_nodes == 8
               ? record_trace_impl<double, 8>(variant, modeled_cells,
                                              num_nodes, num_qps)
               : record_trace_impl<double, 6>(variant, modeled_cells,
                                              num_nodes, num_qps);
  }
  if (num_nodes == 8) {
    return record_trace_impl<ad::SFad<double, 16>, 8>(variant, modeled_cells,
                                                      num_nodes, num_qps);
  }
  return record_trace_impl<ad::SFad<double, 12>, 6>(variant, modeled_cells,
                                                    num_nodes, num_qps);
}

double resid_flops_per_cell(int num_nodes, int num_qps, int n_deriv) {
  // Scalar-operation costs of the AD arithmetic.
  const double add = n_deriv > 0 ? 1.0 + n_deriv : 1.0;             // SFad+SFad
  const double mul = n_deriv > 0 ? 1.0 + 2.0 * n_deriv : 1.0;       // SFad*SFad
  const double muls = n_deriv > 0 ? 1.0 + n_deriv : 1.0;            // SFad*double

  // Per qp: strs00/strs11 = 2.0*mu*(2.0*a + b): muls + muls + add + mul each;
  // strs01 = mu*(a+b): add + mul; strs02/strs12 = mu*a: mul.
  const double stress = 2.0 * (2.0 * muls + add + mul) + (add + mul) + 2.0 * mul;
  // Per node per component: 4 products with mesh scalars, 3 sums, 1 +=.
  const double node_comp = 4.0 * muls + 4.0 * add;
  const double per_qp =
      stress + static_cast<double>(num_nodes) * 2.0 * node_comp;
  return static_cast<double>(num_qps) * per_qp;
}

gpusim::KernelModelInfo kernel_model_info(KernelKind kind,
                                          physics::KernelVariant variant,
                                          int num_nodes, int num_qps) {
  using physics::KernelVariant;
  gpusim::KernelModelInfo info;
  const bool jac = kind == KernelKind::kJacobian;
  const int n_deriv = jac ? 2 * num_nodes : 0;
  const std::size_t sbytes = scalar_bytes(kind, num_nodes);

  info.name = std::string(to_string(kind)) + "/" +
              physics::to_string(variant);
  info.flops_per_cell = resid_flops_per_cell(num_nodes, num_qps, n_deriv);
  info.default_block_size_cdna2 = jac ? 256 : 1024;  // paper Table II defaults
  info.default_block_size_nvidia = 128;

  const std::size_t accum_bytes =
      static_cast<std::size_t>(2 * num_nodes) * sbytes;  // res0 + res1
  const bool has_locals = variant == KernelVariant::kOptimized ||
                          variant == KernelVariant::kLocalAccumOnly;

  switch (variant) {
    case KernelVariant::kBaseline:
      info.has_branch = true;
      info.loop_nests = 3;  // init, stress, force
      info.compile_time_bounds = false;
      info.mem_pipeline_efficiency = 0.58;
      break;
    case KernelVariant::kOptimized:
      info.has_branch = false;
      info.loop_nests = 1;
      info.compile_time_bounds = true;
      info.mem_pipeline_efficiency = 1.0;
      break;
    case KernelVariant::kLoopOptOnly:
      info.has_branch = false;
      info.loop_nests = 3;
      info.compile_time_bounds = true;
      info.mem_pipeline_efficiency = 0.60;
      break;
    case KernelVariant::kFusedOnly:
      info.has_branch = true;
      info.loop_nests = 2;  // init + fused body
      info.compile_time_bounds = false;
      info.mem_pipeline_efficiency = 0.62;
      break;
    case KernelVariant::kLocalAccumOnly:
      info.has_branch = true;
      info.loop_nests = 3;  // stress, force, write-back
      info.compile_time_bounds = false;
      info.mem_pipeline_efficiency = 0.80;
      break;
  }

  if (has_locals) {
    info.local_accum_bytes = accum_bytes;
    info.accum_sweeps = num_qps + 1;  // each qp sweep plus the write-back
  }

  // Register-allocation candidates.  These mirror the paper's rocprof
  // measurements (Table II): the Jacobian wants 128 architectural VGPRs and
  // spills accumulators; when the launch bounds leave budget for the
  // accumulation file (128,2 / 256,2), most of the SFad accumulators move to
  // AGPRs and scratch traffic collapses.  The Residual's accumulators are
  // doubles and fit: its preferred allocation is {128, 0}, with a floor of
  // {84, 4} under tight budgets.
  if (jac) {
    if (has_locals) {
      info.cdna2_candidates = {
          {128, 128, 192},  // accumulators largely register-resident
          {128, 0, 700},    // no AGPR budget: heavy accumulator spill
      };
      info.nvidia_candidates = {{255, 0, 144}};
    } else {
      info.cdna2_candidates = {{128, 0, 0}};
      info.nvidia_candidates = {{255, 0, 0}};
    }
  } else {
    if (has_locals) {
      info.cdna2_candidates = {
          {128, 0, 0},  // fits: 16 doubles = 32 VGPRs of accumulators
          {84, 4, 28},
      };
      info.nvidia_candidates = {{96, 0, 0}};
    } else {
      info.cdna2_candidates = {{64, 0, 0}};
      info.nvidia_candidates = {{64, 0, 0}};
    }
  }
  return info;
}

}  // namespace mali::core
