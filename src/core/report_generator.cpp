#include "core/report_generator.hpp"

#include <fstream>
#include <sstream>

#include "perf/data_movement.hpp"
#include "perf/portability_metric.hpp"
#include "perf/report.hpp"
#include "perf/roofline.hpp"
#include "portability/common.hpp"

namespace mali::core {

namespace {

using physics::KernelVariant;

void md_row(std::ostringstream& os, std::initializer_list<std::string> cells) {
  os << '|';
  for (const auto& c : cells) os << ' ' << c << " |";
  os << '\n';
}

void md_rule(std::ostringstream& os, std::size_t n) {
  os << '|';
  for (std::size_t i = 0; i < n; ++i) os << "---|";
  os << '\n';
}

}  // namespace

std::string generate_markdown_report(const OptimizationStudy& study,
                                     ReportOptions options) {
  std::ostringstream os;
  os << "# MiniMALI optimization study\n\n";
  os << "Workset: " << study.config().n_cells
     << " hexahedral cells; modeled platforms: " << study.a100().name << ", "
     << study.mi250x_gcd().name << ".\n\n";

  const auto cases = study.run_standard_cases();
  auto find = [&](KernelKind k, KernelVariant v,
                  const std::string& arch) -> const CaseResult& {
    for (const auto& c : cases) {
      if (c.kind == k && c.variant == v && c.arch == arch) return c;
    }
    throw Error("case not found in study results");
  };

  // ---- Table III: speedups ----
  os << "## Time per call and speedup (paper Table III)\n\n";
  md_row(os, {"Kernel", "Machine", "Baseline (s)", "Optimized (s)", "Speedup"});
  md_rule(os, 5);
  for (const auto kind : {KernelKind::kJacobian, KernelKind::kResidual}) {
    for (const auto& arch : study.archs()) {
      const auto& b = find(kind, KernelVariant::kBaseline, arch.name);
      const auto& o = find(kind, KernelVariant::kOptimized, arch.name);
      md_row(os, {to_string(kind), arch.name, perf::fmt_sci(b.sim.time_s),
                  perf::fmt_sci(o.sim.time_s),
                  perf::fmt_speedup(b.sim.time_s / o.sim.time_s)});
    }
  }
  os << '\n';

  // ---- Fig. 3: roofline ----
  if (options.include_roofline) {
    os << "## Roofline placement (paper Fig. 3)\n\n";
    md_row(os, {"Machine", "Kernel", "Variant", "AI (FLOP/B)", "GFLOP/s",
                "% peak BW"});
    md_rule(os, 6);
    for (const auto& c : cases) {
      const auto& arch =
          c.arch == study.a100().name ? study.a100() : study.mi250x_gcd();
      const perf::Roofline roof{arch.name, arch.fp64_flops,
                                arch.hbm_bw_bytes_per_s};
      const perf::RooflinePoint p{"", c.sim.arithmetic_intensity,
                                  c.sim.gflops_per_s};
      md_row(os, {c.arch, to_string(c.kind), physics::to_string(c.variant),
                  perf::fmt(p.ai, 3), perf::fmt(p.gflops, 4),
                  perf::fmt_pct(p.fraction_of_bw(roof))});
    }
    os << '\n';
  }

  // ---- Fig. 5: time-oriented model ----
  if (options.include_time_oriented) {
    os << "## Time-oriented model (paper Fig. 5)\n\n";
    md_row(os, {"Machine", "Kernel", "Variant", "GB moved", "time (ms)",
                "min GB", "e_time", "e_DM"});
    md_rule(os, 8);
    for (const auto& c : cases) {
      const auto p = study.to_point(c);
      md_row(os, {p.machine, p.kernel, p.variant,
                  perf::fmt(p.bytes_moved / 1e9, 4),
                  perf::fmt(p.time_s * 1e3, 4), perf::fmt(p.min_bytes / 1e9, 4),
                  perf::fmt_pct(p.e_time()), perf::fmt_pct(p.e_dm())});
    }
    os << '\n';
  }

  // ---- Table IV: portability metric ----
  if (options.include_portability) {
    os << "## Performance portability Phi (paper Table IV)\n\n";
    md_row(os, {"Variant", "Efficiency", "Kernel", "A100", "MI250X GCD",
                "Phi"});
    md_rule(os, 6);
    for (const auto v : {KernelVariant::kBaseline, KernelVariant::kOptimized}) {
      for (const bool time_eff : {true, false}) {
        for (const auto kind :
             {KernelKind::kJacobian, KernelKind::kResidual}) {
          const auto& a = find(kind, v, study.a100().name);
          const auto& g = find(kind, v, study.mi250x_gcd().name);
          const double ea = time_eff ? a.sim.e_time() : a.sim.e_dm();
          const double eg = time_eff ? g.sim.e_time() : g.sim.e_dm();
          md_row(os, {physics::to_string(v), time_eff ? "e_time" : "e_DM",
                      to_string(kind), perf::fmt_pct(ea), perf::fmt_pct(eg),
                      perf::fmt_pct(perf::phi(std::vector<double>{ea, eg}))});
        }
      }
    }
    os << '\n';
  }

  // ---- Table II: launch bounds on the GCD ----
  if (options.include_launch_bounds) {
    os << "## LaunchBounds sweep on the MI250X GCD (paper Table II)\n\n";
    md_row(os, {"Kernel", "Config", "time (s)", "Arch VGPRs", "Accum VGPRs",
                "speedup vs default"});
    md_rule(os, 6);
    const pk::LaunchConfig configs[] = {{}, {128, 2}, {128, 4}, {256, 2},
                                        {1024, 2}};
    const char* names[] = {"default", "128,2", "128,4", "256,2", "1024,2"};
    for (const auto kind : {KernelKind::kJacobian, KernelKind::kResidual}) {
      double dflt = 0.0;
      for (int i = 0; i < 5; ++i) {
        const auto sim = study.simulate(study.mi250x_gcd(), kind,
                                        KernelVariant::kOptimized, configs[i]);
        if (i == 0) dflt = sim.time_s;
        md_row(os, {to_string(kind), names[i], perf::fmt_sci(sim.time_s),
                    std::to_string(sim.launch.alloc.arch_vgprs),
                    std::to_string(sim.launch.alloc.accum_vgprs),
                    perf::fmt_speedup(dflt / sim.time_s)});
      }
    }
    os << '\n';
  }

  // ---- Jacobian apply: assembled SpMV vs matrix-free tangent ----
  if (options.include_jacobian_apply) {
    os << "## Jacobian apply data movement (matrix-free extension)\n\n";
    os << "Modeled HBM bytes one GMRES iteration streams through the "
          "operator apply `y = J x`, per `perf::JacobianApplyModel`. "
          "Structured-extrusion estimates for the study workset: 20 layers, "
          "~54 nnz/row (27-node stencil x 2 velocity components).\n\n";
    perf::JacobianApplyModel m;
    m.n_cells = study.config().n_cells;
    m.n_nodes = study.config().n_cells;  // nodes ~ cells, asymptotically
    m.n_rows = 2 * m.n_nodes;
    m.nnz = m.n_rows * 54;
    m.n_basal_faces = study.config().n_cells / 20;
    const double asm_b = static_cast<double>(m.assembled_stream_bytes());
    const double mf_b = static_cast<double>(m.matrix_free_stream_bytes());
    md_row(os, {"Mode", "GB/iteration", "min GB", "e_DM",
                "vs assembled"});
    md_rule(os, 5);
    md_row(os, {"assembled SpMV", perf::fmt(asm_b / 1e9, 4),
                perf::fmt(m.assembled_min_bytes() / 1e9, 4),
                perf::fmt_pct(m.assembled_min_bytes() / asm_b),
                perf::fmt_speedup(1.0)});
    md_row(os, {"matrix-free", perf::fmt(mf_b / 1e9, 4),
                perf::fmt(m.matrix_free_min_bytes() / 1e9, 4),
                perf::fmt_pct(m.matrix_free_min_bytes() / mf_b),
                perf::fmt_speedup(asm_b / mf_b)});
    os << '\n';
  }

  // ---- ablation extension ----
  if (options.include_ablation) {
    os << "## Ablation (extension)\n\n";
    md_row(os, {"Machine", "Kernel", "Variant", "time (ms)", "e_DM",
                "speedup vs baseline"});
    md_rule(os, 6);
    for (const auto& arch : study.archs()) {
      for (const auto kind : {KernelKind::kJacobian, KernelKind::kResidual}) {
        double base = 0.0;
        for (const auto v :
             {KernelVariant::kBaseline, KernelVariant::kLoopOptOnly,
              KernelVariant::kFusedOnly, KernelVariant::kLocalAccumOnly,
              KernelVariant::kOptimized}) {
          const auto sim = study.simulate(arch, kind, v);
          if (v == KernelVariant::kBaseline) base = sim.time_s;
          md_row(os, {arch.name, to_string(kind), physics::to_string(v),
                      perf::fmt(sim.time_s * 1e3, 4),
                      perf::fmt_pct(sim.e_dm()),
                      perf::fmt_speedup(base / sim.time_s)});
        }
      }
    }
    os << '\n';
  }

  return os.str();
}

std::string write_markdown_report(const OptimizationStudy& study,
                                  const std::string& path,
                                  ReportOptions options) {
  std::ofstream os(path);
  MALI_CHECK_MSG(os.good(), "cannot open report file: " + path);
  os << generate_markdown_report(study, options);
  MALI_CHECK_MSG(os.good(), "report write failed: " + path);
  return path;
}

}  // namespace mali::core
