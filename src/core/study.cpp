#include "core/study.hpp"

#include "ensemble/sweep.hpp"

namespace mali::core {

OptimizationStudy::OptimizationStudy(StudyConfig cfg)
    : cfg_(cfg),
      a100_(gpusim::make_a100()),
      gcd_(gpusim::make_mi250x_gcd()),
      archs_{a100_, gcd_} {}

gpusim::SimResult OptimizationStudy::simulate(
    const gpusim::GpuArch& arch, KernelKind kind,
    physics::KernelVariant variant, pk::LaunchConfig launch) const {
  const auto trace = record_kernel_trace(kind, variant, cfg_.n_cells);
  const auto info = kernel_model_info(kind, variant);
  const gpusim::ExecModel model(cfg_.sim);
  return model.simulate(arch, trace, info, cfg_.n_cells, launch);
}

std::vector<CaseResult> OptimizationStudy::run_standard_cases() const {
  // The paper's fixed 8-case study is just a tiny parameter sweep — arch x
  // kernel x variant — so it enumerates through the same deterministic
  // cross-product core the ensemble engine uses (ensemble/sweep.hpp); the
  // tuple order (last dimension fastest) reproduces the historical nesting
  // exactly.
  const std::vector<KernelKind> kinds{KernelKind::kJacobian,
                                      KernelKind::kResidual};
  const std::vector<physics::KernelVariant> variants{
      physics::KernelVariant::kBaseline, physics::KernelVariant::kOptimized};

  std::vector<CaseResult> results;
  for (const auto& tuple : ensemble::cross_product_indices(
           {archs_.size(), kinds.size(), variants.size()})) {
    const gpusim::GpuArch& arch = archs_[tuple[0]];
    const KernelKind kind = kinds[tuple[1]];
    const physics::KernelVariant variant = variants[tuple[2]];
    // The paper's headline optimized numbers on the MI250X include the
    // LaunchBounds tuning of Table II (best setting: <128,2>); elsewhere
    // the vendor defaults are used (on A100 block size had no effect).
    pk::LaunchConfig launch{};
    if (arch.has_accum_vgprs &&
        variant == physics::KernelVariant::kOptimized) {
      launch = pk::LaunchConfig{128, 2};
    }
    results.push_back(CaseResult{kind, variant, arch.name,
                                 simulate(arch, kind, variant, launch)});
  }
  return results;
}

perf::TimeOrientedPoint OptimizationStudy::to_point(
    const CaseResult& c) const {
  perf::TimeOrientedPoint p;
  p.kernel = to_string(c.kind);
  p.variant = physics::to_string(c.variant);
  p.machine = c.arch;
  p.bytes_moved = static_cast<double>(c.sim.hbm_bytes);
  p.time_s = c.sim.time_s;
  p.min_bytes = static_cast<double>(c.sim.min_bytes);
  const gpusim::GpuArch& arch =
      c.arch == a100_.name ? a100_ : gcd_;
  p.peak_bw = arch.hbm_bw_bytes_per_s;
  return p;
}

}  // namespace mali::core
