#include "core/chain_traces.hpp"

#include "ad/sfad.hpp"
#include "gpusim/trace_view.hpp"
#include "physics/eval_types.hpp"
#include "physics/evaluators.hpp"
#include "physics/fused_chain.hpp"

namespace mali::core {

namespace {

constexpr int kN = 8;
constexpr int kQ = 8;

/// Common streaming-kernel model facts.
gpusim::KernelModelInfo streaming_info(std::string name, double flops) {
  gpusim::KernelModelInfo info;
  info.name = std::move(name);
  info.flops_per_cell = flops;
  info.loop_nests = 1;
  info.compile_time_bounds = false;
  info.mem_pipeline_efficiency = 0.95;
  info.cdna2_candidates = {{96, 0, 0}};
  info.nvidia_candidates = {{128, 0, 0}};
  info.default_block_size_cdna2 = 256;
  return info;
}

template <class ScalarT>
std::vector<ChainStage> record_stages_impl(KernelKind kind,
                                           std::size_t MC) {
  std::vector<ChainStage> stages;
  const int n_deriv = ad::is_fad_v<ScalarT> ? 2 * kN : 0;
  const double w_add = n_deriv > 0 ? 1.0 + n_deriv : 1.0;
  const double w_muls = n_deriv > 0 ? 1.0 + n_deriv : 1.0;

  // ---- stage 1: VelocityGradient ----
  {
    ChainStage st;
    st.name = "VelocityGradient";
    pk::View<ScalarT, 3> UNodal("UNodal", 2, kN, 2);
    pk::View<double, 4> gradBF("gradBF", 2, kN, kQ, 3);
    pk::View<ScalarT, 4> Ugrad("Ugrad", 2, kQ, 2, 3);
    physics::VelocityGradient<ScalarT, gpusim::TraceView> k;
    k.UNodal = {UNodal, st.trace, MC};
    k.gradBF = {gradBF, st.trace, MC};
    k.Ugrad = {Ugrad, st.trace, MC};
    k.numNodes = kN;
    k.numQPs = kQ;
    k(0);
    st.info = streaming_info("VelocityGradient",
                             kQ * 2 * 3 * kN * (w_muls + w_add));
    stages.push_back(std::move(st));
  }

  // ---- stage 2: ViscosityFO ----
  {
    ChainStage st;
    st.name = "ViscosityFO";
    pk::View<ScalarT, 4> Ugrad("Ugrad", 2, kQ, 2, 3);
    pk::View<ScalarT, 2> mu("muLandIce", 2, kQ);
    for (int q = 0; q < kQ; ++q) {
      for (int c = 0; c < 2; ++c) {
        for (int d = 0; d < 3; ++d) Ugrad(0, q, c, d) = ScalarT(1e-3);
      }
    }
    physics::ViscosityFO<ScalarT, gpusim::TraceView> k;
    k.Ugrad = {Ugrad, st.trace, MC};
    k.muLandIce = {mu, st.trace, MC};
    k.numQPs = kQ;
    k(0);
    // ~10 multiply-adds plus one pow (~25 scalar flops) per qp.
    st.info = streaming_info("ViscosityFO",
                             kQ * (10.0 * (w_muls + w_add) + 25.0 + 2 * n_deriv));
    stages.push_back(std::move(st));
  }

  // ---- stage 3: BodyForce copy ----
  {
    ChainStage st;
    st.name = "BodyForceFO";
    pk::View<double, 3> fp("force_passive", 2, kQ, 2);
    pk::View<ScalarT, 3> force("force", 2, kQ, 2);
    physics::BodyForceFO<ScalarT, gpusim::TraceView> k;
    k.force_passive = {fp, st.trace, MC};
    k.force = {force, st.trace, MC};
    k.numQPs = kQ;
    k(0);
    st.info = streaming_info("BodyForceFO", kQ * 2.0);
    stages.push_back(std::move(st));
  }

  // ---- stage 4: the paper's optimized StokesFOResid ----
  {
    ChainStage st;
    st.name = "StokesFOResid";
    st.trace = record_kernel_trace(kind, physics::KernelVariant::kOptimized,
                                   MC, kN, kQ);
    st.info = kernel_model_info(kind, physics::KernelVariant::kOptimized,
                                kN, kQ);
    stages.push_back(std::move(st));
  }
  return stages;
}

template <class ScalarT>
ChainStage record_fused_impl(KernelKind kind, std::size_t MC) {
  ChainStage st;
  st.name = "FusedStokesChain";

  pk::View<ScalarT, 3> UNodal("UNodal", 2, kN, 2);
  pk::View<double, 4> gradBF("gradBF", 2, kN, kQ, 3);
  pk::View<double, 4> wGradBF("wGradBF", 2, kN, kQ, 3);
  pk::View<double, 3> wBF("wBF", 2, kN, kQ);
  pk::View<double, 3> fp("force_passive", 2, kQ, 2);
  pk::View<ScalarT, 3> Residual("Residual", 2, kN, 2);
  for (int n = 0; n < kN; ++n) {
    UNodal(0, n, 0) = ScalarT(1.0);
    UNodal(0, n, 1) = ScalarT(-0.5);
  }

  physics::FusedStokesChain<ScalarT, gpusim::TraceView> k;
  k.UNodal = {UNodal, st.trace, MC};
  k.gradBF = {gradBF, st.trace, MC};
  k.wGradBF = {wGradBF, st.trace, MC};
  k.wBF = {wBF, st.trace, MC};
  k.force_passive = {fp, st.trace, MC};
  k.Residual = {Residual, st.trace, MC};
  k.numNodes = kN;
  k.numQPs = kQ;
  k(0);

  // Model facts: flops of all stages combined; locals = res0/res1 + the
  // gradient/viscosity temporaries, with correspondingly deeper spill floors.
  const bool jac = kind == KernelKind::kJacobian;
  const int n_deriv = jac ? 2 * kN : 0;
  st.info = kernel_model_info(kind, physics::KernelVariant::kOptimized, kN, kQ);
  st.info.name = std::string("Fused/") + to_string(kind);
  st.info.flops_per_cell += kQ * 2 * 3 * kN * 2.0 * (1 + n_deriv) +
                            kQ * (35.0 + 4.0 * n_deriv);
  st.info.local_accum_bytes += (2 * kN + 6) * scalar_bytes(kind, kN);
  if (jac) {
    st.info.cdna2_candidates = {{128, 128, 320}, {128, 0, 960}};
    st.info.nvidia_candidates = {{255, 0, 280}};
  } else {
    st.info.cdna2_candidates = {{128, 0, 16}, {96, 4, 48}};
    st.info.nvidia_candidates = {{128, 0, 0}};
  }
  return st;
}

}  // namespace

std::vector<ChainStage> record_chain_stages(KernelKind kind,
                                            std::size_t modeled_cells) {
  if (kind == KernelKind::kResidual) {
    return record_stages_impl<double>(kind, modeled_cells);
  }
  return record_stages_impl<ad::SFad<double, 16>>(kind, modeled_cells);
}

ChainStage record_fused_chain(KernelKind kind, std::size_t modeled_cells) {
  if (kind == KernelKind::kResidual) {
    return record_fused_impl<double>(kind, modeled_cells);
  }
  return record_fused_impl<ad::SFad<double, 16>>(kind, modeled_cells);
}

}  // namespace mali::core
