#pragma once
// Evaluator-chain tracing: the data-movement view of the *whole* velocity
// assembly pipeline (VelocityGradient → ViscosityFO → BodyForce →
// StokesFOResid), plus a hypothetical fused mega-kernel in which the
// intermediate fields (Ugrad, mu, force) never touch HBM — the natural
// next optimization after the paper's in-kernel restructuring ("future
// work will continue our efforts to optimize the velocity solver").

#include <string>
#include <vector>

#include "core/kernel_traces.hpp"

namespace mali::core {

struct ChainStage {
  std::string name;
  gpusim::TraceRecorder trace;
  gpusim::KernelModelInfo info;
};

/// The four unfused stages, traced on the actual evaluator sources.
[[nodiscard]] std::vector<ChainStage> record_chain_stages(
    KernelKind kind, std::size_t modeled_cells);

/// The fused chain: one kernel reading {UNodal, gradBF, wGradBF, wBF,
/// force_passive} and writing only Residual; Ugrad/mu/force live in
/// registers.  Numerically identical to the staged pipeline (tested).
[[nodiscard]] ChainStage record_fused_chain(KernelKind kind,
                                            std::size_t modeled_cells);

}  // namespace mali::core
