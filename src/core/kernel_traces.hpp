#pragma once
// Bridges the physics kernels and the GPU performance model: records each
// variant's per-cell memory-access template by executing the *actual* kernel
// through tracing views, and supplies the per-variant model metadata
// (FLOP counts, local-accumulator footprints, register candidates,
// structural facts) the execution model consumes.

#include <cstddef>

#include "gpusim/kernel_model.hpp"
#include "gpusim/trace.hpp"
#include "physics/stokes_fo_problem.hpp"

namespace mali::core {

/// Which evaluation the kernel performs (the paper's two kernels).
enum class KernelKind { kResidual, kJacobian };

[[nodiscard]] const char* to_string(KernelKind k);

/// Scalar width in bytes: 8 for the Residual; for the Jacobian the SFad
/// width follows the element's local dof count (17 doubles for HEX8's 16
/// derivatives, 13 for WEDGE6's 12).
[[nodiscard]] std::size_t scalar_bytes(KernelKind k, int num_nodes = 8);

/// Executes the given StokesFOResid variant for one representative cell
/// with instrumented views and returns the recorded access template.
/// `modeled_cells` sizes the virtual arrays (base-address spacing) the
/// execution model replays over.
/// `num_nodes`/`num_qps` select the element topology: 8/8 for the paper's
/// hexahedra, 6/6 for MALI's native prisms (WEDGE6).
[[nodiscard]] gpusim::TraceRecorder record_kernel_trace(
    KernelKind kind, physics::KernelVariant variant, std::size_t modeled_cells,
    int num_nodes = 8, int num_qps = 8);

/// Closed-form FP64 operation count per cell for a variant (AD arithmetic
/// expanded to scalar operations; all variants share the same math).
[[nodiscard]] double resid_flops_per_cell(int num_nodes, int num_qps,
                                          int n_deriv);

/// Model metadata for (kind, variant): registers, structure, defaults.
[[nodiscard]] gpusim::KernelModelInfo kernel_model_info(
    KernelKind kind, physics::KernelVariant variant, int num_nodes = 8,
    int num_qps = 8);

}  // namespace mali::core
