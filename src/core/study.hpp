#pragma once
// OptimizationStudy — the top-level driver of the paper's evaluation:
// simulates every (kernel, variant, architecture, launch-bounds) case of
// the Antarctica workset on the modeled A100 and MI250X GCD, producing the
// data behind Fig. 3, Fig. 5 and Tables II–IV.

#include <string>
#include <vector>

#include "core/kernel_traces.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/exec_model.hpp"
#include "perf/time_oriented.hpp"

namespace mali::core {

struct StudyConfig {
  /// Cell count of the modeled workset.  The paper's single-node test has
  /// ~256K hexahedra per GPU.
  std::size_t n_cells = 262144;
  gpusim::SimOptions sim{};
};

struct CaseResult {
  KernelKind kind;
  physics::KernelVariant variant;
  std::string arch;
  gpusim::SimResult sim;
};

class OptimizationStudy {
 public:
  explicit OptimizationStudy(StudyConfig cfg = {});

  [[nodiscard]] const StudyConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const gpusim::GpuArch& a100() const noexcept { return a100_; }
  [[nodiscard]] const gpusim::GpuArch& mi250x_gcd() const noexcept {
    return gcd_;
  }
  [[nodiscard]] const std::vector<gpusim::GpuArch>& archs() const noexcept {
    return archs_;
  }

  /// Models one kernel invocation (records the variant's trace, runs the
  /// cache/occupancy/timing models).
  [[nodiscard]] gpusim::SimResult simulate(
      const gpusim::GpuArch& arch, KernelKind kind,
      physics::KernelVariant variant, pk::LaunchConfig launch = {}) const;

  /// The paper's 8 standard cases: {Jacobian, Residual} x {baseline,
  /// optimized} x {A100, MI250X GCD}, with default launch bounds.
  [[nodiscard]] std::vector<CaseResult> run_standard_cases() const;

  /// Converts a case into a point of the time-oriented model (Fig. 5).
  [[nodiscard]] perf::TimeOrientedPoint to_point(const CaseResult& c) const;

 private:
  StudyConfig cfg_;
  gpusim::GpuArch a100_;
  gpusim::GpuArch gcd_;
  std::vector<gpusim::GpuArch> archs_;
};

}  // namespace mali::core
