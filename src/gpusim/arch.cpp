#include "gpusim/arch.hpp"

namespace mali::gpusim {

GpuArch make_a100() {
  GpuArch a;
  a.name = "NVIDIA A100";
  a.hbm_bw_bytes_per_s = 1.555e12;
  a.fp64_flops = 9.7e12;
  a.l2_bytes = 40ull << 20;
  a.l2_line_bytes = 64;  // 128B lines with 32B sectors; 64B splits the difference
  a.n_sm = 108;
  a.warp_size = 32;
  a.max_threads_per_sm = 2048;
  a.max_blocks_per_sm = 32;
  a.reg_file_words_per_sm = 65536;
  a.max_regs_per_thread = 255;
  a.has_accum_vgprs = false;
  a.default_block_size = 128;  // paper: A100 default block size was 128 for both kernels
  a.achievable_bw_frac = 0.92;
  a.kernel_latency_s = 4.0e-6;
  a.warps_for_peak_bw_per_sm = 24;
  a.sched_slack = 0.70;
  return a;
}

GpuArch make_mi250x_gcd() {
  GpuArch a;
  a.name = "AMD MI250X (1 GCD)";
  a.hbm_bw_bytes_per_s = 1.6e12;
  a.fp64_flops = 23.9e12;
  a.l2_bytes = 8ull << 20;
  a.l2_line_bytes = 64;  // CDNA2 L2 is 128B-line; 64B granularity keeps parity with A100
  a.n_sm = 110;
  a.warp_size = 64;
  a.max_threads_per_sm = 2048;  // 32 waves64 per CU
  a.max_blocks_per_sm = 16;
  // CDNA2: 4 SIMDs/CU x 256 arch VGPRs x 64 lanes = 65536 32-bit words of
  // architectural registers per CU (the accumulation file doubles this).
  a.reg_file_words_per_sm = 65536;
  a.max_regs_per_thread = 256;
  a.has_accum_vgprs = true;
  a.default_block_size = 256;  // Kokkos/HIP default w/o LaunchBounds (Jacobian);
                               // the Residual defaulted to 1024 (see Table II)
  a.achievable_bw_frac = 0.62;
  a.kernel_latency_s = 8.0e-6;
  a.warps_for_peak_bw_per_sm = 16;  // wave64: fewer, wider waves needed
  a.sched_slack = 0.025;
  return a;
}

GpuArch make_pvc_stack() {
  GpuArch a;
  a.name = "Intel PVC (1 stack)";
  // One stack of a Data Center GPU Max 1550: 64 Xe cores, ~26 TF64 vector,
  // 64 GB HBM2e at ~1.6 TB/s per stack, 204 MB L2 (Rambo cache) per stack,
  // SIMD16 sub-groups (modeled as the scheduling "warp").
  a.hbm_bw_bytes_per_s = 1.64e12;
  a.fp64_flops = 26.0e12;
  a.l2_bytes = 204ull << 20;
  a.l2_line_bytes = 64;
  a.n_sm = 64;                 // Xe cores
  a.warp_size = 16;            // SIMD16 sub-group
  a.max_threads_per_sm = 1024; // 8 threads x 8 EUs x SIMD16
  a.max_blocks_per_sm = 32;
  a.reg_file_words_per_sm = 64 * 1024;  // 4 KB GRF per hw thread x 64
  a.max_regs_per_thread = 256;          // large-GRF mode
  a.has_accum_vgprs = false;
  a.default_block_size = 256;
  a.achievable_bw_frac = 0.65;  // measured STREAM fractions on PVC are low
  a.kernel_latency_s = 10.0e-6; // higher launch overhead (Level Zero)
  a.warps_for_peak_bw_per_sm = 32;
  a.sched_slack = 0.30;         // huge L2 -> reuse survives a wide window
  return a;
}

}  // namespace mali::gpusim
