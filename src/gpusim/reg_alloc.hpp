#pragma once
// Register-allocation and occupancy models.
//
// Table II of the paper relates Kokkos LaunchBounds<MaxThreads,MinBlocks>
// on the MI250X to the architectural / accumulation VGPR allocation the
// compiler chooses, and to performance.  We model the allocator with a
// small rule set that mirrors the observed LLVM amdgpu behaviour (see
// DESIGN.md §6): launch bounds imply a target waves-per-EU occupancy, the
// occupancy implies a per-wave register budget, and a kernel's ordered
// allocation candidates are matched against that budget.  Candidates that
// keep accumulators in registers carry less scratch-spill traffic.

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/arch.hpp"
#include "portability/launch_bounds.hpp"

namespace mali::gpusim {

/// One feasible register allocation for a kernel, ordered best-first.
struct RegCandidate {
  int arch_vgprs = 0;   ///< architectural VGPRs per thread
  int accum_vgprs = 0;  ///< accumulation VGPRs per thread (CDNA2 AGPRs)
  /// Per-thread accumulator bytes that do NOT fit in registers under this
  /// allocation and therefore spill to scratch memory.
  std::size_t spill_bytes_per_thread = 0;

  [[nodiscard]] int total_vgprs() const noexcept {
    return arch_vgprs + accum_vgprs;
  }
};

/// Result of the allocation + occupancy model for one launch configuration.
struct LaunchModelResult {
  pk::LaunchConfig config;
  RegCandidate alloc;
  int block_size = 0;          ///< threads per block actually used
  int blocks_per_sm = 0;       ///< resident blocks per SM/CU
  int threads_per_sm = 0;      ///< resident threads per SM/CU
  double occupancy = 0.0;      ///< resident threads / max threads
  int concurrent_threads = 0;  ///< across the whole device
};

/// Target waves-per-EU the compiler derives from launch bounds (CDNA2 rule;
/// for NVIDIA the analogous quantity bounds the per-thread register count).
[[nodiscard]] int waves_per_eu_target(const GpuArch& arch,
                                      const pk::LaunchConfig& cfg,
                                      int default_block_size);

/// Per-thread register budget the compiler works against: on CDNA2 the
/// combined architectural + accumulation files divided by the waves-per-EU
/// target; on NVIDIA the ISA cap (default) or the residency product implied
/// by explicit __launch_bounds__.
[[nodiscard]] int register_budget(const GpuArch& arch,
                                  const pk::LaunchConfig& cfg,
                                  int default_block_size);

/// Picks the best candidate fitting the budget; falls back to the last
/// (floor) candidate when none fits, which then limits occupancy instead.
[[nodiscard]] RegCandidate choose_allocation(
    const std::vector<RegCandidate>& candidates, int budget,
    bool has_accum_file);

/// Full launch model: register allocation, block residency and occupancy.
/// `default_block_size` is the vendor default for this kernel when the
/// config carries no explicit bounds (the paper: 256 for the Jacobian and
/// 1024 for the Residual on MI250X; 128 for both on A100).
[[nodiscard]] LaunchModelResult model_launch(
    const GpuArch& arch, const pk::LaunchConfig& cfg, int default_block_size,
    const std::vector<RegCandidate>& candidates);

}  // namespace mali::gpusim
