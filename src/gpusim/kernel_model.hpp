#pragma once
// Kernel-variant metadata consumed by the GPU execution model.
//
// The quantities here play the role of what the paper reads off the
// profilers / compiler (register allocations, instruction-level structure):
// per-thread local-accumulator footprints, FLOP counts, register-allocation
// candidates, and structural facts (branches, loop nests, runtime trip
// counts) that set the memory-pipeline efficiency of a variant.

#include <cstddef>
#include <string>
#include <vector>

#include "gpusim/arch.hpp"
#include "gpusim/reg_alloc.hpp"

namespace mali::gpusim {

struct KernelModelInfo {
  std::string name;

  /// FP64 operations per cell (AD arithmetic counted at scalar granularity).
  double flops_per_cell = 0.0;

  /// Per-thread bytes of local accumulator arrays (res0/res1 in the
  /// optimized kernels).  Zero for the baseline, which accumulates globally.
  std::size_t local_accum_bytes = 0;

  /// Number of full sweeps over the local accumulators (numQPs + final
  /// write-back); sets the scratch traffic when accumulators spill.
  int accum_sweeps = 0;

  /// Structural facts from the kernel source.
  bool has_branch = false;          ///< in-kernel if(cond) (baseline)
  int loop_nests = 1;               ///< separate top-level loop nests
  bool compile_time_bounds = false; ///< trip counts known at compile time

  /// Memory-pipeline efficiency: fraction of the achievable bandwidth the
  /// kernel's instruction stream can sustain.  Optimized kernels with one
  /// fused loop and independent wide loads sustain ~1.0; the baseline's
  /// dependent global read-modify-write chains and short runtime-bounded
  /// loops sustain roughly half (calibrated; see DESIGN.md §6).
  double mem_pipeline_efficiency = 1.0;

  /// Register-allocation candidates, best-first, per vendor class.  These
  /// mirror what the paper *measures* via rocprof (`arch_vgpr`,
  /// `accum_vgpr` in Table II); the model chooses among them per launch
  /// bounds and derives occupancy + scratch-spill traffic.
  std::vector<RegCandidate> cdna2_candidates;
  std::vector<RegCandidate> nvidia_candidates;

  /// Vendor-default block size for this kernel when no LaunchBounds are
  /// given (paper: Jacobian 256 / Residual 1024 on MI250X; 128 on A100).
  int default_block_size_cdna2 = 256;
  int default_block_size_nvidia = 128;

  [[nodiscard]] const std::vector<RegCandidate>& candidates(
      const GpuArch& arch) const {
    return arch.has_accum_vgprs ? cdna2_candidates : nvidia_candidates;
  }
  [[nodiscard]] int default_block_size(const GpuArch& arch) const {
    return arch.has_accum_vgprs ? default_block_size_cdna2
                                : default_block_size_nvidia;
  }
};

}  // namespace mali::gpusim
