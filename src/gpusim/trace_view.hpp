#pragma once
// TraceView / TraceRef — drop-in instrumented replacements for pk::View.
//
// The physics kernels are templated on the view template, so the identical
// kernel source runs either on plain views (fast path: solver, CPU benches)
// or on TraceViews (modeling path: one-cell execution recording the access
// stream).  TraceRef is a reference proxy: converting it to a value records
// a read; assigning through it records a write; += records a read-modify-
// write.  Arithmetic mixing TraceRefs with scalars resolves through implicit
// conversion, because SFad's operators are hidden friends and ADL associates
// TraceRef<SFad> with SFad.
//
// Virtual sizing: traces are recorded on tiny arrays (a couple of cells)
// but replayed by the execution model across the full workset.  TraceView
// therefore records offsets in the layout of the *virtual* full-size array
// (LayoutLeft with the cell extent replaced by the modeled cell count), so
// that cell c's accesses are exactly the template shifted by c*sizeof(T).

#include <array>
#include <cstddef>

#include "gpusim/trace.hpp"
#include "portability/view.hpp"

namespace mali::gpusim {

template <class T>
class TraceRef {
 public:
  TraceRef(T* p, TraceRecorder* rec, int array_id, std::size_t offset) noexcept
      : p_(p), rec_(rec), array_id_(array_id), offset_(offset) {}

  /// Read: conversion to value.
  operator T() const {  // NOLINT(runtime/explicit)
    rec_->record(array_id_, offset_, sizeof(T), AccessKind::kRead);
    return *p_;
  }

  /// Write.
  TraceRef& operator=(const T& v) {
    rec_->record(array_id_, offset_, sizeof(T), AccessKind::kWrite);
    *p_ = v;
    return *this;
  }

  /// Read-modify-write.
  TraceRef& operator+=(const T& v) {
    rec_->record(array_id_, offset_, sizeof(T), AccessKind::kRead);
    rec_->record(array_id_, offset_, sizeof(T), AccessKind::kWrite);
    *p_ += v;
    return *this;
  }

  TraceRef& operator-=(const T& v) {
    rec_->record(array_id_, offset_, sizeof(T), AccessKind::kRead);
    rec_->record(array_id_, offset_, sizeof(T), AccessKind::kWrite);
    *p_ -= v;
    return *this;
  }

 private:
  T* p_;
  TraceRecorder* rec_;
  int array_id_;
  std::size_t offset_;
};

template <class T, std::size_t Rank>
class TraceView {
 public:
  using value_type = T;
  static constexpr std::size_t rank = Rank;

  TraceView() = default;

  /// Wraps an existing (small) view, registering it with the recorder as an
  /// array of `virtual_cells` cells along the leftmost extent.
  TraceView(pk::View<T, Rank> view, TraceRecorder& rec,
            std::size_t virtual_cells)
      : view_(std::move(view)), rec_(&rec) {
    std::array<std::size_t, Rank> ext{};
    ext[0] = virtual_cells;
    std::size_t total = virtual_cells;
    for (std::size_t d = 1; d < Rank; ++d) {
      ext[d] = view_.extent(d);
      total *= ext[d];
    }
    virtual_strides_ = pk::LayoutLeft::strides<Rank>(ext);
    array_id_ = rec_->register_array(view_.label(), sizeof(T),
                                     total * sizeof(T));
  }

  template <class... Idx>
  [[nodiscard]] TraceRef<T> operator()(Idx... idx) const {
    static_assert(sizeof...(Idx) == Rank, "index arity must equal rank");
    const std::array<std::size_t, Rank> ii{static_cast<std::size_t>(idx)...};
    std::size_t voff = 0;
    for (std::size_t d = 0; d < Rank; ++d) voff += ii[d] * virtual_strides_[d];
    const std::size_t real = view_.offset_of(idx...);
    return TraceRef<T>(view_.data() + real, rec_, array_id_,
                       voff * sizeof(T));
  }

  [[nodiscard]] std::size_t extent(std::size_t d) const noexcept {
    return view_.extent(d);
  }
  [[nodiscard]] bool allocated() const noexcept { return view_.allocated(); }
  [[nodiscard]] const pk::View<T, Rank>& underlying() const noexcept {
    return view_;
  }
  [[nodiscard]] int array_id() const noexcept { return array_id_; }

 private:
  pk::View<T, Rank> view_;
  TraceRecorder* rec_ = nullptr;
  std::array<std::size_t, Rank> virtual_strides_{};
  int array_id_ = -1;
};

}  // namespace mali::gpusim
