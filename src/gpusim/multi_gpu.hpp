#pragma once
// Multi-GPU scaling model — the paper's future-work item "conduct
// scalability studies ... for large-scale simulations".
//
// A distributed MALI step interleaves per-GPU kernel work with halo
// exchanges of the velocity dofs along partition boundaries.  The model
// composes the single-GPU execution model (kernel time per workset) with a
// network model of the Slingshot-11 fabric (per-NIC bandwidth + message
// latency) over the partition statistics the mesh module computes.

#include <cstddef>
#include <vector>

#include "gpusim/exec_model.hpp"

namespace mali::gpusim {

struct NetworkModel {
  double nic_bw_bytes_per_s = 25.0e9;  ///< Slingshot-11: 25 GB/s/direction/NIC
  double message_latency_s = 2.0e-6;   ///< per neighbor exchange
  /// FALLBACK exchange-partner count, used only by the legacy
  /// scaling_point overload when no partition adjacency is available.
  /// Real partitions are not strips-with-two-neighbors in general (block
  /// decompositions reach 8 including corners); callers that hold a
  /// mesh::Partition must pass part.max_neighbors() to the explicit
  /// overload instead of relying on this constant.
  int neighbors = 2;
};

struct ScalingPoint {
  int n_gpus = 1;
  double kernel_time_s = 0.0;   ///< per-GPU kernel time (max over ranks)
  double halo_time_s = 0.0;     ///< halo exchange time
  double total_time_s = 0.0;
  double efficiency = 1.0;      ///< vs the single-GPU point
  int neighbors = 0;            ///< exchange partners the model charged
};

/// Halo bytes exchanged per assembly: velocity dofs on the ghost columns.
[[nodiscard]] inline double halo_bytes(std::size_t halo_columns,
                                       std::size_t levels,
                                       int dofs_per_node = 2,
                                       std::size_t bytes_per_dof = 8) {
  return static_cast<double>(halo_columns) * static_cast<double>(levels) *
         static_cast<double>(dofs_per_node) *
         static_cast<double>(bytes_per_dof);
}

/// Composes kernel time and halo exchange into a scaling point, charging
/// the message latency once per exchange partner.  `neighbors` is the real
/// max-neighbor count of the partition (mesh::Partition::max_neighbors():
/// strips <= 2, block grids up to 8 including corner adjacency).
[[nodiscard]] inline ScalingPoint scaling_point(int n_gpus,
                                                double kernel_time_s,
                                                double halo_bytes_per_rank,
                                                const NetworkModel& net,
                                                double single_gpu_time_s,
                                                int neighbors) {
  ScalingPoint p;
  p.n_gpus = n_gpus;
  p.kernel_time_s = kernel_time_s;
  p.neighbors = n_gpus > 1 ? neighbors : 0;
  p.halo_time_s =
      n_gpus > 1 ? halo_bytes_per_rank / net.nic_bw_bytes_per_s +
                       net.message_latency_s * p.neighbors
                 : 0.0;
  p.total_time_s = p.kernel_time_s + p.halo_time_s;
  p.efficiency =
      p.total_time_s > 0.0 ? single_gpu_time_s / p.total_time_s : 1.0;
  return p;
}

/// Legacy overload: falls back to the NetworkModel's constant neighbor
/// count.  Prefer the explicit-neighbors overload with a real partition.
[[nodiscard]] inline ScalingPoint scaling_point(int n_gpus,
                                                double kernel_time_s,
                                                double halo_bytes_per_rank,
                                                const NetworkModel& net,
                                                double single_gpu_time_s) {
  return scaling_point(n_gpus, kernel_time_s, halo_bytes_per_rank, net,
                       single_gpu_time_s, net.neighbors);
}

}  // namespace mali::gpusim
