#include "gpusim/reg_alloc.hpp"

#include <algorithm>

#include "portability/common.hpp"

namespace mali::gpusim {

int waves_per_eu_target(const GpuArch& arch, const pk::LaunchConfig& cfg,
                        int default_block_size) {
  const int wave = arch.warp_size;
  if (cfg.is_default()) {
    // Without explicit bounds the compiler optimizes for its own default
    // occupancy target, but never below what the block size itself forces.
    constexpr int kCompilerDefaultWavesPerEu = 4;
    const int forced = (default_block_size / wave + 3) / 4;  // one block resident
    return std::max(kCompilerDefaultWavesPerEu, forced);
  }
  const int waves_per_block =
      std::max(1, static_cast<int>(cfg.max_threads) / wave);
  const int min_blocks = static_cast<int>(std::max(1u, cfg.min_blocks));
  // The bound must be honoured both as a block count and as the wave
  // pressure those blocks exert across the 4 SIMDs of a CU.
  const int from_waves = (waves_per_block * min_blocks + 3) / 4;
  return std::max({1, min_blocks, from_waves});
}

int register_budget(const GpuArch& arch, const pk::LaunchConfig& cfg,
                    int default_block_size) {
  if (arch.has_accum_vgprs) {
    // CDNA2: per-wave budget across both files shrinks with the
    // waves-per-EU target; a single wave can address at most 256 + 256.
    const int waves_eu = waves_per_eu_target(arch, cfg, default_block_size);
    const int budget = 2 * arch.max_regs_per_thread / std::max(1, waves_eu);
    return std::min(budget, 2 * arch.max_regs_per_thread);
  }
  // NVIDIA: without explicit bounds the compiler may use the full
  // per-thread budget; __launch_bounds__ caps it by the residency product.
  if (cfg.is_default()) return arch.max_regs_per_thread;
  const int threads = static_cast<int>(cfg.max_threads);
  const int min_blocks = static_cast<int>(std::max(1u, cfg.min_blocks));
  const int by_residency =
      arch.reg_file_words_per_sm / std::max(1, threads * min_blocks);
  return std::clamp(by_residency, 16, arch.max_regs_per_thread);
}

RegCandidate choose_allocation(const std::vector<RegCandidate>& candidates,
                               int budget, bool has_accum_file) {
  MALI_CHECK(!candidates.empty());
  // The compiler reserves a handful of architectural registers for system
  // use, so a candidate's architectural demand must clear the architectural
  // share of the budget with that margin.
  constexpr int kArchReserve = 4;
  const int arch_budget = std::min(budget, 256) - kArchReserve;
  for (const auto& c : candidates) {
    if (c.accum_vgprs > 0 && !has_accum_file) continue;  // NVIDIA: no AGPRs
    if (c.arch_vgprs <= arch_budget && c.total_vgprs() <= budget) return c;
  }
  // Nothing fits: the compiler falls back to the floor allocation and the
  // requested occupancy is simply not achieved (register-limited instead).
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    if (it->accum_vgprs == 0 || has_accum_file) return *it;
  }
  return candidates.back();
}

LaunchModelResult model_launch(const GpuArch& arch,
                               const pk::LaunchConfig& cfg,
                               int default_block_size,
                               const std::vector<RegCandidate>& candidates) {
  LaunchModelResult r;
  r.config = cfg;
  r.block_size = cfg.is_default() ? default_block_size
                                  : static_cast<int>(cfg.max_threads);
  MALI_CHECK(r.block_size > 0);

  const int budget = register_budget(arch, cfg, default_block_size);
  r.alloc = choose_allocation(candidates, budget, arch.has_accum_vgprs);

  // Occupancy: blocks per SM limited by thread slots, the register file
  // (architectural regs only — the accumulation file is separate), and the
  // hardware block-slot limit.
  const int arch_regs = std::max(1, r.alloc.arch_vgprs);
  const int by_threads = arch.max_threads_per_sm / r.block_size;
  const int by_regs = arch.reg_file_words_per_sm / (arch_regs * r.block_size);
  int blocks = std::min({by_threads, by_regs, arch.max_blocks_per_sm});
  blocks = std::max(blocks, 1);  // a kernel always launches
  r.blocks_per_sm = blocks;
  r.threads_per_sm = blocks * r.block_size;
  r.occupancy = static_cast<double>(r.threads_per_sm) /
                static_cast<double>(arch.max_threads_per_sm);
  r.concurrent_threads = r.threads_per_sm * arch.n_sm;
  return r;
}

}  // namespace mali::gpusim
