#pragma once
// Set-associative LRU cache simulator with write-allocate/write-back policy,
// used to model a GPU's L2 and derive HBM traffic from a kernel's access
// stream.  Full-line writes skip the allocate-read (GPUs avoid read-for-
// ownership on fully-written lines), which matters for streaming stores of
// wide SFad elements.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "portability/common.hpp"

namespace mali::gpusim {

class CacheSim {
 public:
  /// Replacement policy.  kLru gives sharp capacity cliffs; kRandom evicts a
  /// pseudo-random way, giving the graceful hit-rate degradation adaptive
  /// GPU L2 policies exhibit (hit rate ~ exp(-reuse distance / capacity)).
  enum class Replacement { kLru, kRandom };

  struct Stats {
    std::uint64_t line_probes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t hbm_read_bytes = 0;   ///< fills from HBM
    std::uint64_t hbm_write_bytes = 0;  ///< dirty write-backs to HBM
    [[nodiscard]] std::uint64_t hbm_bytes() const noexcept {
      return hbm_read_bytes + hbm_write_bytes;
    }
    [[nodiscard]] double hit_rate() const noexcept {
      return line_probes == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(line_probes);
    }
  };

  /// capacity and line size in bytes; associativity in ways.
  CacheSim(std::size_t capacity_bytes, std::size_t line_bytes, int ways = 16,
           Replacement repl = Replacement::kLru)
      : line_bytes_(line_bytes), ways_(ways), repl_(repl) {
    MALI_CHECK(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0);
    MALI_CHECK(ways >= 1);
    n_sets_ = capacity_bytes / (line_bytes * static_cast<std::size_t>(ways));
    if (n_sets_ == 0) n_sets_ = 1;
    entries_.assign(n_sets_ * static_cast<std::size_t>(ways), Entry{});
  }

  [[nodiscard]] std::size_t line_bytes() const noexcept { return line_bytes_; }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return n_sets_ * static_cast<std::size_t>(ways_) * line_bytes_;
  }

  /// Touches the contiguous byte range [addr, addr + size).
  void access(std::uint64_t addr, std::uint64_t size, bool is_write) {
    if (size == 0) return;
    const std::uint64_t first = addr / line_bytes_;
    const std::uint64_t last = (addr + size - 1) / line_bytes_;
    for (std::uint64_t line = first; line <= last; ++line) {
      // A write covering the whole line never needs the fill from HBM.
      const std::uint64_t lo = line == first ? addr : line * line_bytes_;
      const std::uint64_t hi =
          line == last ? addr + size : (line + 1) * line_bytes_;
      const bool full_line = (hi - lo) == line_bytes_;
      probe(line, is_write, is_write && full_line);
    }
  }

  /// Writes back all dirty lines (end-of-kernel accounting).
  void flush() {
    for (auto& e : entries_) {
      if (e.valid && e.dirty) {
        stats_.hbm_write_bytes += line_bytes_;
        e.dirty = false;
      }
      e.valid = false;
    }
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  void reset_stats() { stats_ = Stats{}; }

 private:
  struct Entry {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };

  void probe(std::uint64_t line, bool is_write, bool full_line_write) {
    ++stats_.line_probes;
    const std::size_t set = static_cast<std::size_t>(line % n_sets_);
    Entry* base = entries_.data() + set * static_cast<std::size_t>(ways_);
    ++clock_;

    Entry* victim = base;
    for (int w = 0; w < ways_; ++w) {
      Entry& e = base[w];
      if (e.valid && e.tag == line) {
        ++stats_.hits;
        e.lru = clock_;
        e.dirty = e.dirty || is_write;
        return;
      }
      if (!e.valid) {
        victim = &e;
      } else if (victim->valid && e.lru < victim->lru) {
        victim = &e;
      }
    }
    if (repl_ == Replacement::kRandom && victim->valid) {
      // xorshift-based deterministic pseudo-random way selection.
      rng_ ^= rng_ << 13;
      rng_ ^= rng_ >> 7;
      rng_ ^= rng_ << 17;
      victim = base + static_cast<std::size_t>(rng_ % static_cast<std::uint64_t>(ways_));
    }

    ++stats_.misses;
    if (victim->valid && victim->dirty) {
      stats_.hbm_write_bytes += line_bytes_;
    }
    if (!full_line_write) {
      stats_.hbm_read_bytes += line_bytes_;  // fill (write-allocate on partial)
    }
    victim->tag = line;
    victim->lru = clock_;
    victim->valid = true;
    victim->dirty = is_write;
  }

  std::size_t line_bytes_;
  int ways_;
  Replacement repl_ = Replacement::kLru;
  std::size_t n_sets_;
  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
  std::uint64_t rng_ = 0x9e3779b97f4a7c15ull;
  Stats stats_;
};

}  // namespace mali::gpusim
