#pragma once
// Memory-access tracing for GPU kernel modeling.
//
// A kernel variant is executed once for a single representative cell with
// its views replaced by TraceViews.  Every element access is recorded as
// (array, byte offset, size, read/write).  Because every view in the study
// is LayoutLeft with the cell index leftmost (stride-1), the access stream
// of cell c is the cell-0 stream shifted by c * elem_bytes — which lets the
// execution model replay the trace for hundreds of thousands of cells
// without re-running the kernel.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "portability/common.hpp"

namespace mali::gpusim {

enum class AccessKind : std::uint8_t { kRead, kWrite };

/// One traced array (a pk::View the kernel touches).
struct ArrayInfo {
  std::string name;
  std::size_t elem_bytes = 0;   ///< bytes per element (cell stride in bytes)
  std::size_t total_bytes = 0;  ///< full allocation size
  std::uint64_t base_addr = 0;  ///< synthetic, non-overlapping base address
};

/// One recorded access, relative to the array base, for the template cell.
struct AccessRecord {
  std::int32_t array_id;
  std::uint32_t size;
  std::uint64_t offset;  ///< bytes from array base, for cell 0
  AccessKind kind;
};

/// Collects the per-cell access template plus array metadata.
class TraceRecorder {
 public:
  /// Registers an array; returns its id.  Synthetic base addresses are
  /// assigned sequentially with a guard gap so arrays never alias.
  int register_array(std::string name, std::size_t elem_bytes,
                     std::size_t total_bytes) {
    ArrayInfo info;
    info.name = std::move(name);
    info.elem_bytes = elem_bytes;
    info.total_bytes = total_bytes;
    info.base_addr = next_base_;
    constexpr std::uint64_t kGuard = 4096;
    next_base_ += ((total_bytes + kGuard - 1) / kGuard + 1) * kGuard;
    arrays_.push_back(std::move(info));
    return static_cast<int>(arrays_.size()) - 1;
  }

  void record(int array_id, std::size_t offset, std::size_t size,
              AccessKind kind) {
    records_.push_back(AccessRecord{array_id, static_cast<std::uint32_t>(size),
                                    offset, kind});
  }

  [[nodiscard]] const std::vector<ArrayInfo>& arrays() const noexcept {
    return arrays_;
  }
  [[nodiscard]] const std::vector<AccessRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// Total logical bytes in the template (one cell), by kind.
  [[nodiscard]] std::size_t template_bytes(AccessKind kind) const noexcept {
    std::size_t b = 0;
    for (const auto& r : records_) {
      if (r.kind == kind) b += r.size;
    }
    return b;
  }

  void clear_records() { records_.clear(); }

 private:
  std::vector<ArrayInfo> arrays_;
  std::vector<AccessRecord> records_;
  std::uint64_t next_base_ = 1 << 20;
};

}  // namespace mali::gpusim
