#pragma once
// Profiler-style counter presentation.
//
// The paper's appendix documents how GPU data movement was measured:
//  - NVIDIA Nsight Compute: the `dram_bytes.sum` metric;
//  - AMD rocprof: the TCC_EA read/write request counters combined as
//      bytes = 64*WRREQ_64B + 32*(WRREQ - WRREQ_64B)
//            + 32*RDREQ_32B + 64*(RDREQ - RDREQ_32B).
// This header exposes the modeled traffic through the same interfaces so
// the benches can print exactly the quantities the appendix derives.

#include <cstdint>

#include "gpusim/exec_model.hpp"

namespace mali::gpusim {

struct ProfilerCounters {
  // Nsight Compute style.
  std::uint64_t dram_bytes_sum = 0;

  // rocprof style (modeled as full-width 64B transactions).
  std::uint64_t tcc_ea_rdreq_sum = 0;
  std::uint64_t tcc_ea_rdreq_32b = 0;
  std::uint64_t tcc_ea_wrreq_sum = 0;
  std::uint64_t tcc_ea_wrreq_64b = 0;

  /// The appendix's GPU-bytes-moved formula.
  [[nodiscard]] std::uint64_t rocprof_bytes() const noexcept {
    return 64 * tcc_ea_wrreq_64b +
           32 * (tcc_ea_wrreq_sum - tcc_ea_wrreq_64b) +
           32 * tcc_ea_rdreq_32b + 64 * (tcc_ea_rdreq_sum - tcc_ea_rdreq_32b);
  }

  [[nodiscard]] static ProfilerCounters from_sim(const SimResult& sim) {
    ProfilerCounters c;
    const std::uint64_t rd = sim.hbm_read_bytes;
    const std::uint64_t wr = sim.hbm_write_bytes;
    c.dram_bytes_sum = rd + wr;
    c.tcc_ea_rdreq_sum = rd / 64;
    c.tcc_ea_rdreq_32b = 0;
    c.tcc_ea_wrreq_sum = wr / 64;
    c.tcc_ea_wrreq_64b = wr / 64;
    return c;
  }
};

}  // namespace mali::gpusim
