#pragma once
// The GPU execution model: replays a kernel's per-cell access template for
// every cell of the workset through the modeled L2 under a GPU-like thread
// schedule, and converts the resulting HBM traffic into a time per
// invocation via a roofline timing rule.
//
// Schedule model.  Each cell is one GPU thread.  The register/occupancy
// model determines how many threads are concurrently resident; resident
// warps advance through the kernel's access steps in near-lockstep, with a
// "scheduling slack" factor shrinking the effectively synchronous window
// (real warps drift apart, which shortens reuse distances).  Within a step,
// consecutive cells' accesses to the same array element index are contiguous
// in memory (LayoutLeft, cell stride 1) and coalesce into bulk transfers.
//
// The interplay the paper highlights falls out naturally: the baseline
// kernel's global read-modify-write accumulators have reuse distances of
// (concurrent threads × per-iteration bytes); on the A100's 40 MB L2 the
// double-precision Residual accumulators partially survive while the
// MI250X's 8 MB L2 thrashes — which is exactly why the paper observes a
// larger Residual speedup on the GCD (3.5×) than on the A100 (2.2×).

#include <cstddef>
#include <cstdint>

#include "gpusim/arch.hpp"
#include "gpusim/cache_sim.hpp"
#include "gpusim/kernel_model.hpp"
#include "gpusim/reg_alloc.hpp"
#include "gpusim/trace.hpp"
#include "portability/launch_bounds.hpp"

namespace mali::gpusim {

struct SimOptions {
  /// Fraction of resident threads modeled as advancing in lockstep.
  /// 0 (default) uses the architecture's calibrated value.
  double sched_slack = 0.0;
  /// Down-samples the simulation: cells, SM count and L2 capacity are all
  /// scaled by this factor (traffic ratios are preserved); results are
  /// scaled back to the full problem.  1.0 = exact full-size simulation.
  double scale = 1.0;
};

struct SimResult {
  LaunchModelResult launch;

  std::uint64_t hbm_bytes = 0;       ///< modeled HBM traffic incl. scratch
  std::uint64_t hbm_read_bytes = 0;  ///< read component (incl. scratch reads)
  std::uint64_t hbm_write_bytes = 0; ///< write component (incl. scratch writes)
  std::uint64_t scratch_bytes = 0;   ///< register-spill component
  std::uint64_t min_bytes = 0;      ///< application bound (theoretical min)
  double flops = 0.0;

  double time_s = 0.0;             ///< modeled time per invocation
  double min_time_s = 0.0;         ///< architectural bound: min_bytes / peak BW
  double achieved_bw = 0.0;        ///< hbm_bytes / time_s
  double arithmetic_intensity = 0.0;
  double gflops_per_s = 0.0;

  CacheSim::Stats cache;

  /// Efficiencies of the paper's time-oriented portability model.
  [[nodiscard]] double e_time() const noexcept {
    return time_s > 0 ? min_time_s / time_s : 0.0;
  }
  [[nodiscard]] double e_dm() const noexcept {
    return hbm_bytes > 0
               ? static_cast<double>(min_bytes) / static_cast<double>(hbm_bytes)
               : 0.0;
  }
};

class ExecModel {
 public:
  explicit ExecModel(SimOptions options = {}) : opt_(options) {}

  /// Models one kernel invocation over `n_cells` cells on `arch` under the
  /// given launch configuration, using the recorded per-cell template.
  [[nodiscard]] SimResult simulate(const GpuArch& arch,
                                   const TraceRecorder& trace,
                                   const KernelModelInfo& info,
                                   std::size_t n_cells,
                                   const pk::LaunchConfig& cfg = {}) const;

  /// Application bound: minimum HBM bytes for this template and cell count
  /// (unique input elements read once; output elements written once).
  [[nodiscard]] static std::uint64_t theoretical_min_bytes(
      const TraceRecorder& trace, std::size_t n_cells);

 private:
  SimOptions opt_;
};

}  // namespace mali::gpusim
