#pragma once
// GPU architecture descriptors for the performance-model substrate.
//
// The paper evaluates on an NVIDIA A100 (Perlmutter) and one GCD of an AMD
// MI250X (Frontier).  No GPU is available in this environment, so MiniMALI
// models each part from its published specifications plus a small number of
// calibrated parameters (documented in DESIGN.md §6).  Everything downstream
// (cache simulation, occupancy, roofline timing) keys off this struct.

#include <cstddef>
#include <string>

namespace mali::gpusim {

struct GpuArch {
  std::string name;

  // ---- published hardware specifications ----
  double hbm_bw_bytes_per_s;   ///< peak HBM bandwidth (A100: 1.555e12, GCD: 1.6e12)
  double fp64_flops;           ///< peak FP64 vector rate (A100: 9.7e12, GCD: 23.9e12)
  std::size_t l2_bytes;        ///< last-level cache (A100: 40 MiB, GCD: 8 MiB)
  std::size_t l2_line_bytes;   ///< cache line granularity used by the simulator
  int n_sm;                    ///< SMs (108) or CUs (110)
  int warp_size;               ///< 32 (NVIDIA) or 64 (CDNA2 wave64)
  int max_threads_per_sm;      ///< resident-thread limit per SM/CU (2048)
  int max_blocks_per_sm;       ///< resident-block limit (32)
  int reg_file_words_per_sm;   ///< 32-bit registers per SM (A100: 65536)
  int max_regs_per_thread;     ///< ISA cap (A100: 255; CDNA2: 256 arch VGPRs)
  bool has_accum_vgprs;        ///< CDNA2 only: a second 256-VGPR file (AGPRs)
  int default_block_size;      ///< vendor-default workgroup size w/o LaunchBounds

  // ---- calibrated model parameters (see DESIGN.md §6) ----
  double achievable_bw_frac;   ///< STREAM-like ceiling as fraction of peak
  double kernel_latency_s;     ///< fixed launch/drain latency floor per call
  int warps_for_peak_bw_per_sm;///< concurrency (warps/SM) needed to saturate HBM
  /// Scheduling slack: fraction of resident threads effectively advancing in
  /// lockstep.  Smaller = more warp drift = shorter reuse distances through
  /// the L2.  Calibrated per part (the A100's larger L2 and L1 make its
  /// effective window larger).
  double sched_slack;

  [[nodiscard]] double peak_bw() const noexcept { return hbm_bw_bytes_per_s; }
  [[nodiscard]] double achievable_bw() const noexcept {
    return hbm_bw_bytes_per_s * achievable_bw_frac;
  }
};

/// NVIDIA A100-40GB (SXM4) as deployed in Perlmutter GPU nodes.
[[nodiscard]] GpuArch make_a100();

/// One Graphics Compute Die of an AMD MI250X as deployed in Frontier.
/// The paper treats each GCD as an independent GPU; so do we.
[[nodiscard]] GpuArch make_mi250x_gcd();

/// One stack of an Intel Data Center GPU Max 1550 ("Ponte Vecchio") as
/// deployed in Aurora — the paper's stated future-work target ("explore
/// portability on INTEL GPUs"), included here as an extension.  Like the
/// MI250X's GCDs, each PVC stack is programmed as an independent device.
[[nodiscard]] GpuArch make_pvc_stack();

}  // namespace mali::gpusim
