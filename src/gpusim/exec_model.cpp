#include "gpusim/exec_model.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "portability/common.hpp"

namespace mali::gpusim {

namespace {

/// Memory-pipeline efficiency from the variant's structural facts plus the
/// occupancy the launch achieved.
double pipeline_efficiency(const GpuArch& arch, const KernelModelInfo& info,
                           const LaunchModelResult& launch) {
  double eff = info.mem_pipeline_efficiency;
  if (info.has_branch) eff *= 0.88;           // warp divergence on if(cond)
  if (!info.compile_time_bounds) eff *= 0.95; // runtime loop-condition reloads
  if (info.loop_nests > 1) {
    eff *= 1.0 / (1.0 + 0.04 * (info.loop_nests - 1));  // re-ramped short loops
  }
  // CDNA2's wide waves and scalar branch unit blunt the instruction-stream
  // penalties relative to the A100 (calibrated against the paper's
  // Table III baseline/optimized ratios).
  if (arch.has_accum_vgprs) eff = std::sqrt(eff);
  // Little's-law saturation: enough independent bytes must be in flight per
  // SM to cover the HBM latency.  Wide elements (SFad) help; so does
  // occupancy.  ~2 independent element loads in flight per thread.
  const double bw_per_sm = arch.hbm_bw_bytes_per_s / arch.n_sm;
  constexpr double kHbmLatency = 450e-9;
  const double needed_bytes = bw_per_sm * kHbmLatency;
  const double inflight =
      static_cast<double>(launch.threads_per_sm) * 2.0 * 32.0;
  eff *= std::min(1.0, inflight / needed_bytes);
  return eff;
}

}  // namespace

std::uint64_t ExecModel::theoretical_min_bytes(const TraceRecorder& trace,
                                               std::size_t n_cells) {
  // Classify arrays: any written array is an output (its reads are
  // avoidable by an ideal implementation that accumulates locally);
  // read-only arrays are inputs.  Count unique elements per class.
  const auto& arrays = trace.arrays();
  std::vector<bool> written(arrays.size(), false);
  for (const auto& r : trace.records()) {
    if (r.kind == AccessKind::kWrite) written[static_cast<size_t>(r.array_id)] = true;
  }
  std::unordered_set<std::uint64_t> unique;  // (array, offset) keys
  std::uint64_t per_cell = 0;
  for (const auto& r : trace.records()) {
    const auto aid = static_cast<std::size_t>(r.array_id);
    const bool is_output = written[aid];
    // Inputs: count unique reads.  Outputs: count unique writes.
    if (is_output && r.kind != AccessKind::kWrite) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(r.array_id) << 48) | r.offset;
    if (unique.insert(key).second) per_cell += r.size;
  }
  return per_cell * n_cells;
}

SimResult ExecModel::simulate(const GpuArch& arch, const TraceRecorder& trace,
                              const KernelModelInfo& info, std::size_t n_cells,
                              const pk::LaunchConfig& cfg) const {
  MALI_CHECK_MSG(!trace.empty(), "kernel trace is empty — record it first");
  SimResult res;

  res.launch = model_launch(arch, cfg, info.default_block_size(arch),
                            info.candidates(arch));

  // ---- scaled simulation set-up ----
  const double scale = std::clamp(opt_.scale, 1.0 / 64.0, 1.0);
  const std::size_t sim_cells =
      std::max<std::size_t>(1024, static_cast<std::size_t>(
                                      static_cast<double>(n_cells) * scale));
  const double eff_scale =
      static_cast<double>(sim_cells) / static_cast<double>(n_cells);
  const auto l2 = static_cast<std::size_t>(
      std::max(64.0 * 1024.0, static_cast<double>(arch.l2_bytes) * eff_scale));
  CacheSim cache(l2, arch.l2_line_bytes, 16, CacheSim::Replacement::kRandom);

  // Lockstep window: resident threads, shrunk by scheduling slack and the
  // simulation scale (fewer SMs in the scaled model).  Larger blocks launch
  // and retire more waves together, growing the effectively-synchronous
  // window superlinearly — this is why the Residual's 1024-thread default
  // block on the MI250X hurt it so much more than the Jacobian's 256
  // (Table II of the paper).
  const double base_slack =
      opt_.sched_slack > 0.0 ? opt_.sched_slack : arch.sched_slack;
  const double block_factor =
      std::pow(static_cast<double>(res.launch.block_size) / 256.0, 1.5);
  const double slack = base_slack * block_factor;
  const double resident =
      static_cast<double>(res.launch.concurrent_threads) * eff_scale;
  std::size_t window = static_cast<std::size_t>(std::max(
      static_cast<double>(arch.warp_size), resident * slack));
  window = std::min(window, sim_cells);

  // ---- replay the per-cell template, window by window ----
  const auto& arrays = trace.arrays();
  const auto& records = trace.records();
  for (std::size_t w0 = 0; w0 < sim_cells; w0 += window) {
    const std::size_t w = std::min(window, sim_cells - w0);
    for (const auto& r : records) {
      const auto& a = arrays[static_cast<std::size_t>(r.array_id)];
      // Cell c's access lands at template offset + c * elem_bytes
      // (LayoutLeft, cell leftmost).  A window of consecutive cells is one
      // contiguous coalesced range of w * elem_bytes.
      const std::uint64_t addr = a.base_addr + r.offset + w0 * a.elem_bytes;
      cache.access(addr, static_cast<std::uint64_t>(w) * a.elem_bytes,
                   r.kind == AccessKind::kWrite);
    }
  }
  cache.flush();
  res.cache = cache.stats();

  const double upscale = 1.0 / eff_scale;
  std::uint64_t rd = static_cast<std::uint64_t>(
      static_cast<double>(res.cache.hbm_read_bytes) * upscale);
  std::uint64_t wr = static_cast<std::uint64_t>(
      static_cast<double>(res.cache.hbm_write_bytes) * upscale);

  // ---- register-spill (scratch) traffic ----
  const std::size_t spill = res.launch.alloc.spill_bytes_per_thread;
  if (spill > 0 && info.accum_sweeps > 0) {
    res.scratch_bytes = static_cast<std::uint64_t>(n_cells) * spill * 2ull *
                        static_cast<std::uint64_t>(info.accum_sweeps);
    rd += res.scratch_bytes / 2;
    wr += res.scratch_bytes - res.scratch_bytes / 2;
  }
  res.hbm_read_bytes = rd;
  res.hbm_write_bytes = wr;
  res.hbm_bytes = rd + wr;

  res.min_bytes = theoretical_min_bytes(trace, n_cells);
  res.flops = info.flops_per_cell * static_cast<double>(n_cells);

  // ---- timing: roofline over modeled traffic ----
  const double eff = pipeline_efficiency(arch, info, res.launch);
  const double bw = arch.achievable_bw() * eff;
  const double t_mem = static_cast<double>(res.hbm_bytes) / bw;
  const double t_cmp = res.flops / (arch.fp64_flops * 0.85);
  res.time_s = std::max(t_mem, t_cmp) + arch.kernel_latency_s;
  res.min_time_s =
      static_cast<double>(res.min_bytes) / arch.hbm_bw_bytes_per_s;
  res.achieved_bw = static_cast<double>(res.hbm_bytes) / res.time_s;
  res.arithmetic_intensity =
      res.flops / static_cast<double>(res.hbm_bytes);
  res.gflops_per_s = res.flops / res.time_s / 1e9;
  return res;
}

}  // namespace mali::gpusim
