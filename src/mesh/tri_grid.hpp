#pragma once
// Triangle base mesh — the stand-in for the "triangulation dual to the MPAS
// Voronoi mesh" MALI extrudes its prisms from.  Built by splitting each
// quad of a QuadGrid along alternating diagonals (a union-jack-like pattern
// that avoids directional bias), sharing the quad grid's nodes and margin
// classification.

#include <cstddef>
#include <memory>
#include <vector>

#include "mesh/quad_grid.hpp"

namespace mali::mesh {

class TriGrid {
 public:
  explicit TriGrid(std::shared_ptr<const QuadGrid> quads);

  [[nodiscard]] const QuadGrid& quads() const noexcept { return *quads_; }
  [[nodiscard]] std::size_t n_cells() const noexcept {
    return cells_.size() / 3;
  }
  [[nodiscard]] std::size_t n_nodes() const noexcept {
    return quads_->n_nodes();
  }

  /// k-th node (CCW) of triangle c, k in [0,3).
  [[nodiscard]] std::size_t cell_node(std::size_t c, int k) const noexcept {
    return cells_[3 * c + static_cast<std::size_t>(k)];
  }
  [[nodiscard]] double node_x(std::size_t n) const noexcept {
    return quads_->node_x(n);
  }
  [[nodiscard]] double node_y(std::size_t n) const noexcept {
    return quads_->node_y(n);
  }
  [[nodiscard]] bool is_margin_node(std::size_t n) const noexcept {
    return quads_->is_margin_node(n);
  }

  /// Signed area of triangle c (positive: CCW).
  [[nodiscard]] double signed_area(std::size_t c) const noexcept {
    const auto a = cell_node(c, 0), b = cell_node(c, 1), d = cell_node(c, 2);
    return 0.5 * ((node_x(b) - node_x(a)) * (node_y(d) - node_y(a)) -
                  (node_x(d) - node_x(a)) * (node_y(b) - node_y(a)));
  }

 private:
  std::shared_ptr<const QuadGrid> quads_;
  std::vector<std::size_t> cells_;  ///< 3 node ids per triangle
};

}  // namespace mali::mesh
