#pragma once
// 2D quadrilateral base mesh over the ice mask.
//
// MALI's base mesh is the quadrilateral mesh dual to an MPAS Voronoi grid;
// at uniform 16 km resolution that dual is a (near-)uniform quad grid, which
// is what we build: cells of a structured lattice are kept where the ice
// geometry has ice at the cell centroid, and nodes/cells are compactly
// renumbered.  Lateral-margin nodes (touching a missing cell) form the
// Dirichlet side set of the velocity solve.

#include <cstddef>
#include <vector>

#include "mesh/ice_geometry.hpp"
#include "portability/common.hpp"

namespace mali::mesh {

struct QuadGridConfig {
  double dx_m = 16.0e3;  ///< grid spacing (the paper's resolution is 16 km)
};

class QuadGrid {
 public:
  QuadGrid(const IceGeometry& geom, QuadGridConfig cfg);

  [[nodiscard]] std::size_t n_cells() const noexcept { return cells_.size() / 4; }
  [[nodiscard]] std::size_t n_nodes() const noexcept { return xs_.size(); }
  [[nodiscard]] double dx() const noexcept { return cfg_.dx_m; }

  /// k-th node (CCW) of cell c, k in [0,4).
  [[nodiscard]] std::size_t cell_node(std::size_t c, int k) const noexcept {
    return cells_[4 * c + static_cast<std::size_t>(k)];
  }
  [[nodiscard]] double node_x(std::size_t n) const noexcept { return xs_[n]; }
  [[nodiscard]] double node_y(std::size_t n) const noexcept { return ys_[n]; }

  /// True when the node lies on the lateral ice margin.
  [[nodiscard]] bool is_margin_node(std::size_t n) const noexcept {
    return margin_[n];
  }
  [[nodiscard]] std::size_t n_margin_nodes() const noexcept {
    std::size_t k = 0;
    for (bool b : margin_) k += b ? 1 : 0;
    return k;
  }

  void cell_centroid(std::size_t c, double& x, double& y) const noexcept {
    x = y = 0.0;
    for (int k = 0; k < 4; ++k) {
      x += xs_[cell_node(c, k)];
      y += ys_[cell_node(c, k)];
    }
    x *= 0.25;
    y *= 0.25;
  }

 private:
  QuadGridConfig cfg_;
  std::vector<std::size_t> cells_;  ///< 4 node ids per cell
  std::vector<double> xs_, ys_;
  std::vector<bool> margin_;
};

}  // namespace mali::mesh
