#pragma once
// Horizontal domain partitioning for distributed runs.
//
// MALI distributes the extruded mesh by columns: each MPI rank owns a set
// of base cells (and all their layers) plus a one-column halo.  MiniMALI
// partitions the quad base grid into strips or 2D blocks and reports the
// owned/halo column counts — the inputs to the multi-GPU scaling model.

#include <cstddef>
#include <vector>

#include "mesh/quad_grid.hpp"

namespace mali::mesh {

struct Partition {
  int n_parts = 1;
  std::vector<int> cell_owner;  ///< base-cell -> part

  /// Per part: owned cells, owned columns (base nodes touched by owned
  /// cells), and halo columns (columns of neighbouring parts adjacent to an
  /// owned cell — the ghost layer exchanged each assembly).
  std::vector<std::size_t> owned_cells;
  std::vector<std::size_t> owned_columns;
  std::vector<std::size_t> halo_columns;

  [[nodiscard]] std::size_t max_owned_cells() const {
    std::size_t m = 0;
    for (auto c : owned_cells) m = std::max(m, c);
    return m;
  }
  [[nodiscard]] std::size_t max_halo_columns() const {
    std::size_t m = 0;
    for (auto c : halo_columns) m = std::max(m, c);
    return m;
  }
  /// Load imbalance: max owned cells / mean owned cells.
  [[nodiscard]] double imbalance() const {
    std::size_t total = 0;
    for (auto c : owned_cells) total += c;
    const double mean =
        static_cast<double>(total) / static_cast<double>(owned_cells.size());
    return mean > 0 ? static_cast<double>(max_owned_cells()) / mean : 1.0;
  }
};

/// Vertical strips of equal cell count (1D decomposition, sorted by x).
[[nodiscard]] Partition partition_strips(const QuadGrid& grid, int n_parts);

/// px x py blocks over the bounding box (2D decomposition; parts covering
/// no ice end up empty — the imbalance metric exposes this).
[[nodiscard]] Partition partition_blocks(const QuadGrid& grid, int px, int py);

}  // namespace mali::mesh
