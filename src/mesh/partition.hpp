#pragma once
// Horizontal domain partitioning for distributed runs.
//
// MALI distributes the extruded mesh by columns: each MPI rank owns a set
// of base cells (and all their layers) plus a one-column halo.  MiniMALI
// partitions the quad base grid into strips or 2D blocks and builds the
// full decomposition structure the in-process rank runtime (src/dist/)
// executes: cell/column ownership, local<->global column maps, per-part
// neighbor lists, and symmetric send/recv ghost-column lists.
//
// Ownership contract (see DESIGN.md §12):
//  - every base cell has exactly one owner part;
//  - a column (base node) is owned by the LOWEST part id among the owners
//    of cells touching it (deterministic tie-break);
//  - ghost columns of part p are columns touched by p's owned cells but
//    owned elsewhere; they are exactly the columns p imports each halo
//    exchange, and the columns whose residual/matvec partials p exports
//    back to the owner;
//  - send/recv lists are symmetric by construction:
//      send_columns[p][k]  (to q = neighbors[p][k])
//    equals
//      recv_columns[q][k'] (from p = neighbors[q][k'])
//    element for element (both sorted ascending by global column id).

#include <cstddef>
#include <vector>

#include "mesh/quad_grid.hpp"

namespace mali::mesh {

struct Partition {
  int n_parts = 1;
  std::vector<int> cell_owner;    ///< base-cell -> part
  std::vector<int> column_owner;  ///< base-node -> part (-1: touched by none)

  /// Per part: owned cell / owned column / ghost ("halo") column counts —
  /// the inputs to the multi-GPU scaling model.
  std::vector<std::size_t> owned_cells;
  std::vector<std::size_t> owned_columns;
  std::vector<std::size_t> halo_columns;

  /// Per part: owned base cells, ascending global cell id.
  std::vector<std::vector<std::size_t>> part_cells;
  /// Per part: owned columns (global base-node ids, ascending).
  std::vector<std::vector<std::size_t>> owned_column_ids;
  /// Per part: ghost columns (global base-node ids, ascending) — touched by
  /// an owned cell, owned by another part.
  std::vector<std::vector<std::size_t>> ghost_column_ids;
  /// Per part: local->global column map, owned columns first (ascending)
  /// then ghost columns (ascending).  Local column l of part p is
  /// local_columns[p][l]; l < owned_column_ids[p].size() iff owned.
  std::vector<std::vector<std::size_t>> local_columns;
  /// Per part: neighbor part ids (ascending).  q is a neighbor of p iff a
  /// nonempty transfer exists in either direction (p imports from q or q
  /// imports from p) — the relation is symmetric even when one direction's
  /// list is empty (lowest-id tie-break makes that common).
  std::vector<std::vector<int>> neighbors;
  /// send_columns[p][k]: columns OWNED by p that neighbor neighbors[p][k]
  /// needs as ghosts (ascending).  recv_columns[p][k]: columns p needs from
  /// neighbor neighbors[p][k] (ascending); union over k of recv_columns[p]
  /// equals ghost_column_ids[p].
  std::vector<std::vector<std::vector<std::size_t>>> send_columns;
  std::vector<std::vector<std::vector<std::size_t>>> recv_columns;

  [[nodiscard]] std::size_t max_owned_cells() const {
    std::size_t m = 0;
    for (auto c : owned_cells) m = std::max(m, c);
    return m;
  }
  [[nodiscard]] std::size_t max_halo_columns() const {
    std::size_t m = 0;
    for (auto c : halo_columns) m = std::max(m, c);
    return m;
  }
  /// Number of neighbor parts of `part` (real adjacency; strips interior
  /// parts have 2, block interiors up to 8).
  [[nodiscard]] int neighbor_count(int part) const {
    return static_cast<int>(neighbors[static_cast<std::size_t>(part)].size());
  }
  /// Maximum neighbor count over all parts (0 for a single part).
  [[nodiscard]] int max_neighbors() const {
    int m = 0;
    for (const auto& n : neighbors) m = std::max(m, static_cast<int>(n.size()));
    return m;
  }
  /// Load imbalance: max owned cells / mean owned cells.  Always finite:
  /// empty parts push the max/mean ratio up but never divide by zero, and
  /// a degenerate partition (no parts or no cells) reports 1.0.
  [[nodiscard]] double imbalance() const {
    if (owned_cells.empty()) return 1.0;
    std::size_t total = 0;
    for (auto c : owned_cells) total += c;
    if (total == 0) return 1.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(owned_cells.size());
    return static_cast<double>(max_owned_cells()) / mean;
  }

  /// Global->local column map for `part`: vector sized n_base_nodes with
  /// local index or -1 for columns outside owned+ghost.
  [[nodiscard]] std::vector<int> global_to_local(int part,
                                                 std::size_t n_nodes) const;
};

/// Vertical strips of equal cell count (1D decomposition, sorted by x).
/// The remainder r = n_cells % n_parts is spread over the first r parts so
/// every part owns >= 1 cell; requires n_parts <= n_cells.
[[nodiscard]] Partition partition_strips(const QuadGrid& grid, int n_parts);

/// px x py blocks over the bounding box (2D decomposition; parts covering
/// no ice end up empty — the imbalance metric exposes this, and their
/// send/recv lists are empty but valid).
[[nodiscard]] Partition partition_blocks(const QuadGrid& grid, int px, int py);

}  // namespace mali::mesh
