#include "mesh/extruded_mesh.hpp"

#include "portability/common.hpp"

namespace mali::mesh {

ExtrudedMesh::ExtrudedMesh(std::shared_ptr<const QuadGrid> base,
                           const IceGeometry& geom, ExtrudedMeshConfig cfg)
    : base_(std::move(base)), cfg_(cfg) {
  MALI_CHECK(base_ != nullptr);
  MALI_CHECK(cfg_.n_layers >= 1);

  z_.resize(n_nodes());
  const std::size_t nl = levels();
  for (std::size_t col = 0; col < base_->n_nodes(); ++col) {
    const double x = base_->node_x(col);
    const double y = base_->node_y(col);
    const double b = geom.bed(x, y);
    // Nodes sit on ice columns; margin nodes can lie just outside the mask,
    // where we extrude a thin minimum-thickness column to keep elements
    // well-shaped (these columns are Dirichlet-constrained anyway).
    const double h =
        std::max(geom.thickness(x, y), geom.config().min_thickness_m);
    for (std::size_t level = 0; level < nl; ++level) {
      const double sigma =
          static_cast<double>(level) / static_cast<double>(cfg_.n_layers);
      z_[node_id(col, level)] = b + sigma * h;
    }
  }
}

}  // namespace mali::mesh
