#include "mesh/tri_grid.hpp"

#include <cmath>

#include "portability/common.hpp"

namespace mali::mesh {

TriGrid::TriGrid(std::shared_ptr<const QuadGrid> quads)
    : quads_(std::move(quads)) {
  MALI_CHECK(quads_ != nullptr);
  cells_.reserve(quads_->n_cells() * 6);
  for (std::size_t q = 0; q < quads_->n_cells(); ++q) {
    const std::size_t n0 = quads_->cell_node(q, 0);
    const std::size_t n1 = quads_->cell_node(q, 1);
    const std::size_t n2 = quads_->cell_node(q, 2);
    const std::size_t n3 = quads_->cell_node(q, 3);
    // Alternate the split diagonal by lattice parity (from the centroid) so
    // the triangulation has no global directional bias.
    double cx, cy;
    quads_->cell_centroid(q, cx, cy);
    const auto i = static_cast<long>(std::floor(cx / quads_->dx()));
    const auto j = static_cast<long>(std::floor(cy / quads_->dx()));
    if (((i + j) & 1) == 0) {
      // Diagonal n0-n2.
      cells_.insert(cells_.end(), {n0, n1, n2});
      cells_.insert(cells_.end(), {n0, n2, n3});
    } else {
      // Diagonal n1-n3.
      cells_.insert(cells_.end(), {n0, n1, n3});
      cells_.insert(cells_.end(), {n1, n2, n3});
    }
  }
}

}  // namespace mali::mesh
