#include "mesh/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "portability/common.hpp"

namespace mali::mesh {

namespace {

/// Fills the per-part owned/halo statistics from the owner array.
void finalize(const QuadGrid& grid, Partition& p) {
  const int P = p.n_parts;
  p.owned_cells.assign(static_cast<std::size_t>(P), 0);
  p.owned_columns.assign(static_cast<std::size_t>(P), 0);
  p.halo_columns.assign(static_cast<std::size_t>(P), 0);

  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    ++p.owned_cells[static_cast<std::size_t>(p.cell_owner[c])];
  }

  // Column ownership: a column (base node) belongs to the lowest part id
  // among its touching cells; halo columns of a part are columns it touches
  // but does not own.
  std::vector<int> col_owner(grid.n_nodes(), -1);
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    const int owner = p.cell_owner[c];
    for (int k = 0; k < 4; ++k) {
      const std::size_t node = grid.cell_node(c, k);
      if (col_owner[node] < 0 || owner < col_owner[node]) {
        col_owner[node] = owner;
      }
    }
  }
  std::vector<std::set<std::size_t>> halos(static_cast<std::size_t>(P));
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    const int owner = p.cell_owner[c];
    for (int k = 0; k < 4; ++k) {
      const std::size_t node = grid.cell_node(c, k);
      if (col_owner[node] != owner) {
        halos[static_cast<std::size_t>(owner)].insert(node);
      }
    }
  }
  for (std::size_t n = 0; n < grid.n_nodes(); ++n) {
    if (col_owner[n] >= 0) {
      ++p.owned_columns[static_cast<std::size_t>(col_owner[n])];
    }
  }
  for (int part = 0; part < P; ++part) {
    p.halo_columns[static_cast<std::size_t>(part)] =
        halos[static_cast<std::size_t>(part)].size();
  }
}

}  // namespace

Partition partition_strips(const QuadGrid& grid, int n_parts) {
  MALI_CHECK(n_parts >= 1);
  Partition p;
  p.n_parts = n_parts;
  p.cell_owner.assign(grid.n_cells(), 0);

  // Sort cells by centroid x; assign equal-count contiguous runs.
  std::vector<std::size_t> order(grid.n_cells());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> cx(grid.n_cells());
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    double x, y;
    grid.cell_centroid(c, x, y);
    cx[c] = x;
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return cx[a] < cx[b]; });
  const std::size_t per =
      (grid.n_cells() + static_cast<std::size_t>(n_parts) - 1) /
      static_cast<std::size_t>(n_parts);
  for (std::size_t i = 0; i < order.size(); ++i) {
    p.cell_owner[order[i]] = static_cast<int>(i / per);
  }
  finalize(grid, p);
  return p;
}

Partition partition_blocks(const QuadGrid& grid, int px, int py) {
  MALI_CHECK(px >= 1 && py >= 1);
  Partition p;
  p.n_parts = px * py;
  p.cell_owner.assign(grid.n_cells(), 0);

  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  std::vector<double> cx(grid.n_cells()), cy(grid.n_cells());
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    grid.cell_centroid(c, cx[c], cy[c]);
    xmin = std::min(xmin, cx[c]);
    xmax = std::max(xmax, cx[c]);
    ymin = std::min(ymin, cy[c]);
    ymax = std::max(ymax, cy[c]);
  }
  const double wx = (xmax - xmin) * (1.0 + 1e-12);
  const double wy = (ymax - ymin) * (1.0 + 1e-12);
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    const int i = std::min(px - 1, static_cast<int>((cx[c] - xmin) / wx *
                                                    static_cast<double>(px)));
    const int j = std::min(py - 1, static_cast<int>((cy[c] - ymin) / wy *
                                                    static_cast<double>(py)));
    p.cell_owner[c] = j * px + i;
  }
  finalize(grid, p);
  return p;
}

}  // namespace mali::mesh
