#include "mesh/partition.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include "portability/common.hpp"

namespace mali::mesh {

namespace {

/// Fills ownership maps, per-part cell/column lists, neighbor lists and
/// symmetric send/recv ghost-column lists from the cell_owner array.
void finalize(const QuadGrid& grid, Partition& p) {
  const int P = p.n_parts;
  const auto sP = static_cast<std::size_t>(P);
  p.owned_cells.assign(sP, 0);
  p.owned_columns.assign(sP, 0);
  p.halo_columns.assign(sP, 0);
  p.part_cells.assign(sP, {});
  p.owned_column_ids.assign(sP, {});
  p.ghost_column_ids.assign(sP, {});
  p.local_columns.assign(sP, {});
  p.neighbors.assign(sP, {});
  p.send_columns.assign(sP, {});
  p.recv_columns.assign(sP, {});

  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    const auto owner = static_cast<std::size_t>(p.cell_owner[c]);
    MALI_CHECK_MSG(owner < sP, "cell owner out of range");
    ++p.owned_cells[owner];
    p.part_cells[owner].push_back(c);  // ascending: c is the loop index
  }

  // Column ownership: a column (base node) belongs to the lowest part id
  // among its touching cells (deterministic tie-break).
  p.column_owner.assign(grid.n_nodes(), -1);
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    const int owner = p.cell_owner[c];
    for (int k = 0; k < 4; ++k) {
      const std::size_t node = grid.cell_node(c, k);
      if (p.column_owner[node] < 0 || owner < p.column_owner[node]) {
        p.column_owner[node] = owner;
      }
    }
  }

  // Per part: the set of columns its owned cells touch.  Owned columns are
  // the touched columns it owns; ghost columns the touched columns it does
  // not.  ghost_by[p][q] = ghost columns of p owned by q (the recv list
  // p <- q, and by symmetry the send list q -> p).
  std::vector<std::set<std::size_t>> touched(sP);
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    const auto owner = static_cast<std::size_t>(p.cell_owner[c]);
    for (int k = 0; k < 4; ++k) {
      touched[owner].insert(grid.cell_node(c, k));
    }
  }
  std::vector<std::map<int, std::vector<std::size_t>>> ghost_by(sP);
  for (std::size_t part = 0; part < sP; ++part) {
    for (const std::size_t node : touched[part]) {  // set: ascending
      const int owner = p.column_owner[node];
      if (owner == static_cast<int>(part)) {
        p.owned_column_ids[part].push_back(node);
      } else {
        p.ghost_column_ids[part].push_back(node);
        ghost_by[part][owner].push_back(node);
      }
    }
    p.owned_columns[part] = p.owned_column_ids[part].size();
    p.halo_columns[part] = p.ghost_column_ids[part].size();
    p.local_columns[part] = p.owned_column_ids[part];
    p.local_columns[part].insert(p.local_columns[part].end(),
                                 p.ghost_column_ids[part].begin(),
                                 p.ghost_column_ids[part].end());
  }

  // Neighbor relation: symmetric union of the directed ghost dependencies.
  // With the lowest-id tie-break a part commonly only sends (or only
  // receives) across a given interface; both sides still list each other so
  // the exchange plan is symmetric, with an empty list in one direction.
  std::vector<std::set<int>> nbr(sP);
  for (std::size_t part = 0; part < sP; ++part) {
    for (const auto& kv : ghost_by[part]) {
      const int owner = kv.first;
      nbr[part].insert(owner);
      nbr[static_cast<std::size_t>(owner)].insert(static_cast<int>(part));
    }
  }
  for (std::size_t part = 0; part < sP; ++part) {
    p.neighbors[part].assign(nbr[part].begin(), nbr[part].end());  // ascending
    const std::size_t nn = p.neighbors[part].size();
    p.send_columns[part].assign(nn, {});
    p.recv_columns[part].assign(nn, {});
    for (std::size_t k = 0; k < nn; ++k) {
      const int q = p.neighbors[part][k];
      auto it = ghost_by[part].find(q);
      if (it != ghost_by[part].end()) {
        p.recv_columns[part][k] = it->second;  // ascending (from set order)
      }
      auto jt = ghost_by[static_cast<std::size_t>(q)].find(
          static_cast<int>(part));
      if (jt != ghost_by[static_cast<std::size_t>(q)].end()) {
        p.send_columns[part][k] = jt->second;  // q's recv from part == our send
      }
    }
  }
}

}  // namespace

std::vector<int> Partition::global_to_local(int part,
                                            std::size_t n_nodes) const {
  std::vector<int> g2l(n_nodes, -1);
  const auto& locals = local_columns[static_cast<std::size_t>(part)];
  for (std::size_t l = 0; l < locals.size(); ++l) {
    g2l[locals[l]] = static_cast<int>(l);
  }
  return g2l;
}

Partition partition_strips(const QuadGrid& grid, int n_parts) {
  MALI_CHECK(n_parts >= 1);
  MALI_CHECK_MSG(static_cast<std::size_t>(n_parts) <= grid.n_cells(),
                 "partition_strips: n_parts exceeds n_cells — every strip "
                 "must own at least one cell");
  Partition p;
  p.n_parts = n_parts;
  p.cell_owner.assign(grid.n_cells(), 0);

  // Sort cells by centroid x; assign contiguous runs.  The remainder
  // r = n % P is spread over the first r parts (base+1 cells each) so no
  // trailing part is left empty — the old ceil-division per-part count
  // could starve the last parts entirely (n=9, P=8 -> two cells each for
  // the first four parts ... and zero for part 7).
  std::vector<std::size_t> order(grid.n_cells());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> cx(grid.n_cells());
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    double x, y;
    grid.cell_centroid(c, x, y);
    cx[c] = x;
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return cx[a] < cx[b]; });
  const std::size_t n = grid.n_cells();
  const auto sP = static_cast<std::size_t>(n_parts);
  const std::size_t base = n / sP;
  const std::size_t rem = n % sP;
  std::size_t i = 0;
  for (std::size_t part = 0; part < sP; ++part) {
    const std::size_t count = base + (part < rem ? 1 : 0);
    for (std::size_t k = 0; k < count; ++k, ++i) {
      p.cell_owner[order[i]] = static_cast<int>(part);
    }
  }
  MALI_CHECK(i == n);
  finalize(grid, p);
  return p;
}

Partition partition_blocks(const QuadGrid& grid, int px, int py) {
  MALI_CHECK(px >= 1 && py >= 1);
  Partition p;
  p.n_parts = px * py;
  p.cell_owner.assign(grid.n_cells(), 0);

  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  std::vector<double> cx(grid.n_cells()), cy(grid.n_cells());
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    grid.cell_centroid(c, cx[c], cy[c]);
    xmin = std::min(xmin, cx[c]);
    xmax = std::max(xmax, cx[c]);
    ymin = std::min(ymin, cy[c]);
    ymax = std::max(ymax, cy[c]);
  }
  const double wx = (xmax - xmin) * (1.0 + 1e-12);
  const double wy = (ymax - ymin) * (1.0 + 1e-12);
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    // A degenerate extent (single row/column of cells) maps everything to
    // bin 0 instead of dividing by zero.
    const int i =
        wx > 0.0 ? std::min(px - 1, static_cast<int>((cx[c] - xmin) / wx *
                                                     static_cast<double>(px)))
                 : 0;
    const int j =
        wy > 0.0 ? std::min(py - 1, static_cast<int>((cy[c] - ymin) / wy *
                                                     static_cast<double>(py)))
                 : 0;
    p.cell_owner[c] = j * px + i;
  }
  finalize(grid, p);
  return p;
}

}  // namespace mali::mesh
