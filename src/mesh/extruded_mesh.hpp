#pragma once
// 3D hexahedral mesh extruded from the quad base grid.
//
// Matches the paper's discretization: the 2D mesh is extruded through the
// ice thickness by a fixed number of layers (20 in the Antarctica test),
// producing ~256K hexahedra at 16 km resolution.  Node numbering places the
// vertical level fastest within each column, which both mirrors MALI's
// column-wise layout and gives the semicoarsening multigrid contiguous
// vertical lines.

#include <cstddef>
#include <memory>
#include <vector>

#include "mesh/ice_geometry.hpp"
#include "mesh/quad_grid.hpp"

namespace mali::mesh {

struct ExtrudedMeshConfig {
  int n_layers = 20;
};

class ExtrudedMesh {
 public:
  ExtrudedMesh(std::shared_ptr<const QuadGrid> base, const IceGeometry& geom,
               ExtrudedMeshConfig cfg);

  [[nodiscard]] const QuadGrid& base() const noexcept { return *base_; }
  [[nodiscard]] int n_layers() const noexcept { return cfg_.n_layers; }

  [[nodiscard]] std::size_t n_cells() const noexcept {
    return base_->n_cells() * static_cast<std::size_t>(cfg_.n_layers);
  }
  [[nodiscard]] std::size_t n_nodes() const noexcept {
    return base_->n_nodes() * levels();
  }
  [[nodiscard]] std::size_t levels() const noexcept {
    return static_cast<std::size_t>(cfg_.n_layers) + 1;
  }

  // ---- node addressing: level fastest within a column ----
  [[nodiscard]] std::size_t node_id(std::size_t column,
                                    std::size_t level) const noexcept {
    return column * levels() + level;
  }
  [[nodiscard]] std::size_t column_of(std::size_t node) const noexcept {
    return node / levels();
  }
  [[nodiscard]] std::size_t level_of(std::size_t node) const noexcept {
    return node % levels();
  }

  // ---- cell addressing: layer fastest within a column of cells ----
  [[nodiscard]] std::size_t cell_id(std::size_t base_cell,
                                    std::size_t layer) const noexcept {
    return base_cell * static_cast<std::size_t>(cfg_.n_layers) + layer;
  }
  [[nodiscard]] std::size_t base_cell_of(std::size_t cell) const noexcept {
    return cell / static_cast<std::size_t>(cfg_.n_layers);
  }
  [[nodiscard]] std::size_t layer_of(std::size_t cell) const noexcept {
    return cell % static_cast<std::size_t>(cfg_.n_layers);
  }

  /// k-th node of hex cell c; k in [0,8): bottom face CCW then top face CCW.
  [[nodiscard]] std::size_t cell_node(std::size_t c, int k) const noexcept {
    const std::size_t bc = base_cell_of(c);
    const std::size_t layer = layer_of(c);
    const std::size_t level = layer + (k >= 4 ? 1 : 0);
    const int corner = k % 4;
    return node_id(base_->cell_node(bc, corner), level);
  }

  [[nodiscard]] double node_x(std::size_t n) const noexcept {
    return base_->node_x(column_of(n));
  }
  [[nodiscard]] double node_y(std::size_t n) const noexcept {
    return base_->node_y(column_of(n));
  }
  [[nodiscard]] double node_z(std::size_t n) const noexcept {
    return z_[n];
  }

  /// True on lateral-margin columns (homogeneous Dirichlet velocity nodes).
  [[nodiscard]] bool is_dirichlet_node(std::size_t n) const noexcept {
    return base_->is_margin_node(column_of(n));
  }
  [[nodiscard]] bool is_basal_node(std::size_t n) const noexcept {
    return level_of(n) == 0;
  }
  [[nodiscard]] bool is_surface_node(std::size_t n) const noexcept {
    return level_of(n) + 1 == levels();
  }

  /// Basal cells (layer 0) — their bottom faces form the basal side set.
  [[nodiscard]] std::vector<std::size_t> basal_cells() const {
    std::vector<std::size_t> cells;
    cells.reserve(base_->n_cells());
    for (std::size_t bc = 0; bc < base_->n_cells(); ++bc) {
      cells.push_back(cell_id(bc, 0));
    }
    return cells;
  }

 private:
  std::shared_ptr<const QuadGrid> base_;
  ExtrudedMeshConfig cfg_;
  std::vector<double> z_;  ///< per 3D node
};

}  // namespace mali::mesh
