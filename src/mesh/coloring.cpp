#include "mesh/coloring.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "mesh/extruded_mesh.hpp"
#include "portability/common.hpp"

namespace mali::mesh {

namespace {

/// Bucket the cells of `coloring` by color (counting sort keeps each class
/// in ascending cell order — deterministic and cache-friendly).
void bucket_by_color(CellColoring& coloring) {
  const std::size_t count = coloring.cell_color.size();
  const int n_colors = coloring.n_colors;
  coloring.color_ptr.assign(static_cast<std::size_t>(n_colors) + 1, 0);
  for (int c : coloring.cell_color) {
    ++coloring.color_ptr[static_cast<std::size_t>(c) + 1];
  }
  for (int k = 0; k < n_colors; ++k) {
    coloring.color_ptr[static_cast<std::size_t>(k) + 1] +=
        coloring.color_ptr[static_cast<std::size_t>(k)];
  }
  coloring.color_cells.resize(count);
  std::vector<std::size_t> next(coloring.color_ptr.begin(),
                                coloring.color_ptr.end() - 1);
  for (std::size_t c = 0; c < count; ++c) {
    const auto color = static_cast<std::size_t>(coloring.cell_color[c]);
    coloring.color_cells[next[color]++] = c;
  }
}

}  // namespace

CellColoring lattice_color_cells(const ExtrudedMesh& mesh, std::size_t c0,
                                 std::size_t count) {
  MALI_CHECK(c0 + count <= mesh.n_cells());
  CellColoring coloring;
  coloring.cell_color.assign(count, -1);
  if (count == 0) {
    coloring.color_ptr.assign(1, 0);
    return coloring;
  }

  // Recover lattice indices from the base-cell centroids.  The base grid is
  // a mask-compacted uniform lattice, so centroid differences are exact
  // integer multiples of dx and the rounding below is safe.  The reference
  // is base cell 0 of the whole mesh (not of the range), so colors of the
  // same cell agree across workset subranges.
  const QuadGrid& base = mesh.base();
  const double inv_dx = 1.0 / base.dx();
  double x_ref = 0.0, y_ref = 0.0;
  base.cell_centroid(0, x_ref, y_ref);

  int raw_color[8] = {};  // raw parity -> 1 if used
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t cell = c0 + c;
    double x = 0.0, y = 0.0;
    base.cell_centroid(mesh.base_cell_of(cell), x, y);
    const long long ix = std::llround((x - x_ref) * inv_dx);
    const long long iy = std::llround((y - y_ref) * inv_dx);
    const long long layer = static_cast<long long>(mesh.layer_of(cell));
    const int parity = static_cast<int>((ix & 1LL) | ((iy & 1LL) << 1) |
                                        ((layer & 1LL) << 2));
    coloring.cell_color[c] = parity;
    raw_color[parity] = 1;
  }

  // Compact unused parities (a thin or single-layer range may use < 8) so
  // every color class is non-empty.
  int remap[8];
  int n_colors = 0;
  for (int p = 0; p < 8; ++p) remap[p] = raw_color[p] ? n_colors++ : -1;
  coloring.n_colors = n_colors;
  for (auto& c : coloring.cell_color) c = remap[c];

  // Max node degree within the range (clique lower bound on the chromatic
  // number — 8 at interior nodes, making the parity coloring optimal there).
  std::unordered_map<std::size_t, std::size_t> node_degree;
  node_degree.reserve(count * 2 + 1);
  for (std::size_t c = 0; c < count; ++c) {
    for (int k = 0; k < 8; ++k) {
      const std::size_t deg = ++node_degree[mesh.cell_node(c0 + c, k)];
      coloring.max_node_degree = std::max(coloring.max_node_degree, deg);
    }
  }

  bucket_by_color(coloring);
  return coloring;
}

CellColoring lattice_color_cells(const ExtrudedMesh& mesh) {
  return lattice_color_cells(mesh, 0, mesh.n_cells());
}

CellColoring greedy_color_cells(const pk::View<std::size_t, 2>& cell_nodes,
                                std::size_t c0, std::size_t count,
                                int nodes_per_cell) {
  MALI_CHECK(c0 + count <= cell_nodes.extent(0));
  MALI_CHECK(nodes_per_cell > 0 &&
             static_cast<std::size_t>(nodes_per_cell) <= cell_nodes.extent(1));
  const auto N = static_cast<std::size_t>(nodes_per_cell);

  CellColoring coloring;
  coloring.cell_color.assign(count, -1);

  // Per global node: the colors already claimed by incident (colored) cells.
  // Node degree is tiny (≤ 8 for hexes), so a small inline vector per node
  // is enough; an unordered_map keeps this local to the cell range without
  // allocating for the whole mesh.
  std::unordered_map<std::size_t, std::vector<int>> node_colors;
  node_colors.reserve(count * N / 4 + 1);

  std::vector<char> forbidden;  // scratch, indexed by color
  int n_colors = 0;
  for (std::size_t c = 0; c < count; ++c) {
    forbidden.assign(static_cast<std::size_t>(n_colors), 0);
    for (std::size_t k = 0; k < N; ++k) {
      const auto it = node_colors.find(cell_nodes(c0 + c, k));
      if (it == node_colors.end()) continue;
      for (int used : it->second) forbidden[static_cast<std::size_t>(used)] = 1;
    }
    int color = 0;
    while (color < n_colors && forbidden[static_cast<std::size_t>(color)]) {
      ++color;
    }
    if (color == n_colors) ++n_colors;
    coloring.cell_color[c] = color;
    for (std::size_t k = 0; k < N; ++k) {
      node_colors[cell_nodes(c0 + c, k)].push_back(color);
    }
  }
  coloring.n_colors = n_colors;

  for (const auto& [node, colors] : node_colors) {
    coloring.max_node_degree =
        std::max(coloring.max_node_degree, colors.size());
  }

  bucket_by_color(coloring);
  return coloring;
}

}  // namespace mali::mesh
