#pragma once
// Synthetic Antarctica-like ice-sheet geometry.
//
// The paper's test uses a 16 km Antarctic mesh derived from observational
// data we do not have; the kernels' behaviour, however, depends only on the
// element counts, array shapes, and the presence of realistic physics
// fields.  We therefore synthesize a continental-scale ice sheet: a Vialov
// dome thickness profile (the steady-state analytic solution of the shallow
// ice approximation for Glen exponent n) over a lobed ice margin, a gently
// undulating bed, and a basal friction field with low-friction "ice
// stream" channels.  All quantities are SI with velocities in m/yr.

#include <cmath>

namespace mali::mesh {

struct IceGeometryConfig {
  double radius_m = 1.0e6;            ///< nominal ice-extent radius
  double center_thickness_m = 3600.0; ///< dome thickness at the divide
  double min_thickness_m = 80.0;      ///< cliff thickness at the margin
  double bed_amplitude_m = 350.0;     ///< bed undulation amplitude
  double glen_n = 3.0;                ///< Glen flow-law exponent
  double lobe_amplitude = 0.18;       ///< margin lobing (0 = circle)
  double beta_interior = 1.0e4;       ///< basal friction (Pa yr/m) interior
  double beta_stream = 1.0e2;         ///< basal friction inside ice streams
  /// Verification mode: a square ice mask |x|,|y| < radius with a smooth
  /// strictly-positive thickness profile.  Used by the manufactured-solution
  /// convergence study, where the domain must not change under refinement
  /// (the lobed mask's staircase margin does).
  bool square_mask = false;
};

/// Analytic ice-sheet geometry: thickness, bed, surface, friction, SMB.
class IceGeometry {
 public:
  explicit IceGeometry(IceGeometryConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const IceGeometryConfig& config() const noexcept {
    return cfg_;
  }

  /// Lobed ice-extent radius at polar angle theta.
  [[nodiscard]] double extent(double theta) const noexcept {
    const double a = cfg_.lobe_amplitude;
    return cfg_.radius_m *
           (1.0 + a * std::cos(2.0 * theta + 0.7) +
            0.5 * a * std::cos(3.0 * theta - 1.1) +
            0.25 * a * std::cos(5.0 * theta));
  }

  [[nodiscard]] bool has_ice(double x, double y) const noexcept {
    if (cfg_.square_mask) {
      return std::max(std::abs(x), std::abs(y)) < cfg_.radius_m;
    }
    const double r = std::hypot(x, y);
    return r < extent(std::atan2(y, x));
  }

  /// Vialov dome: H(r) = H0 (1 - (r/L)^((n+1)/n))^(n/(2n+2)), floored at the
  /// margin cliff thickness inside the ice mask.
  [[nodiscard]] double thickness(double x, double y) const noexcept {
    if (cfg_.square_mask) {
      // Smooth, strictly positive over the (closed) square.
      const double cx = std::cos(0.5 * M_PI * x / cfg_.radius_m);
      const double cy = std::cos(0.5 * M_PI * y / cfg_.radius_m);
      return cfg_.center_thickness_m * (0.3 + 0.7 * std::abs(cx * cy)) ;
    }
    const double theta = std::atan2(y, x);
    const double L = extent(theta);
    const double r = std::hypot(x, y);
    if (r >= L) return 0.0;
    const double n = cfg_.glen_n;
    const double p = (n + 1.0) / n;
    const double q = n / (2.0 * n + 2.0);
    const double h = cfg_.center_thickness_m *
                     std::pow(1.0 - std::pow(r / L, p), q);
    return std::max(h, cfg_.min_thickness_m);
  }

  /// Undulating bedrock elevation (relative to sea level).
  [[nodiscard]] double bed(double x, double y) const noexcept {
    const double kx = 2.0 * M_PI / (cfg_.radius_m * 0.45);
    const double ky = 2.0 * M_PI / (cfg_.radius_m * 0.62);
    return cfg_.bed_amplitude_m *
           (std::sin(kx * x + 0.3) * std::cos(ky * y) +
            0.4 * std::sin(2.3 * kx * x) * std::sin(1.7 * ky * y + 1.2));
  }

  [[nodiscard]] double surface(double x, double y) const noexcept {
    return bed(x, y) + thickness(x, y);
  }

  /// Surface gradient by central differences (the driving-stress source).
  void surface_gradient(double x, double y, double& dsdx,
                        double& dsdy) const noexcept {
    const double h = 0.5e3;  // 0.5 km stencil, well below mesh resolution
    dsdx = (surface(x + h, y) - surface(x - h, y)) / (2.0 * h);
    dsdy = (surface(x, y + h) - surface(x, y - h)) / (2.0 * h);
  }

  /// Flotation criterion: ice floats where its weight cannot reach the bed
  /// through the water column (rho_i H < rho_w (-bed), bed below sea level).
  [[nodiscard]] bool is_floating(double x, double y) const noexcept {
    constexpr double rho_ice = 910.0, rho_water = 1028.0;
    const double b = bed(x, y);
    if (b >= 0.0) return false;
    return rho_ice * thickness(x, y) < rho_water * (-b);
  }

  /// Basal friction coefficient (Pa·yr/m): low inside radial "ice stream"
  /// channels, high elsewhere, tapering toward the margin; exactly zero
  /// under floating ice (shelves slide freely on the ocean).
  [[nodiscard]] double basal_friction(double x, double y) const noexcept {
    if (is_floating(x, y)) return 0.0;
    const double theta = std::atan2(y, x);
    const double r = std::hypot(x, y);
    const double rel = r / extent(theta);
    // Four radial channels.
    const double channel = std::pow(std::max(0.0, std::cos(2.0 * theta)), 8.0);
    const double stream = channel * std::min(1.0, rel * 1.5);
    const double beta =
        cfg_.beta_interior * (1.0 - stream) + cfg_.beta_stream * stream;
    return std::max(beta * (1.0 - 0.6 * rel), cfg_.beta_stream);
  }

  /// Surface mass balance (m/yr ice equivalent): accumulation inland,
  /// ablation near the margin — used by the thickness-evolution example.
  [[nodiscard]] double surface_mass_balance(double x, double y) const noexcept {
    const double theta = std::atan2(y, x);
    const double rel = std::hypot(x, y) / extent(theta);
    return 0.3 - 0.9 * rel * rel;
  }

  /// Ice temperature (K) at relative depth sigma (0 = bed, 1 = surface):
  /// a cold interior surface warming toward the margin, with a linear
  /// advection-free profile through the column toward a temperate bed.
  [[nodiscard]] double temperature(double x, double y,
                                   double sigma) const noexcept {
    const double theta = std::atan2(y, x);
    const double rel = std::min(1.0, std::hypot(x, y) / extent(theta));
    const double surface_T = 228.0 + 25.0 * rel;  // -45C divide .. -20C coast
    const double bed_T = 268.0;                   // near-temperate bed
    return bed_T + (surface_T - bed_T) * sigma;
  }

 private:
  IceGeometryConfig cfg_;
};

}  // namespace mali::mesh
