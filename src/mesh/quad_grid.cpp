#include "mesh/quad_grid.hpp"

#include <cmath>
#include <unordered_map>

namespace mali::mesh {

QuadGrid::QuadGrid(const IceGeometry& geom, QuadGridConfig cfg) : cfg_(cfg) {
  MALI_CHECK(cfg.dx_m > 0.0);
  long ni = 0;
  double x0 = 0.0, y0 = 0.0;
  if (geom.config().square_mask) {
    // Verification mode: anchor the lattice on the square mask so that
    // refinements with dx dividing the radius produce nested domains.
    const double R = geom.config().radius_m;
    ni = static_cast<long>(std::llround(2.0 * R / cfg.dx_m));
    MALI_CHECK_MSG(std::abs(static_cast<double>(ni) * cfg.dx_m - 2.0 * R) <
                       1e-6 * R,
                   "square-mask grids require dx to divide the radius");
    x0 = -R;
    y0 = -R;
  } else {
    const double margin = 1.10;
    const double R =
        geom.config().radius_m * (1.0 + geom.config().lobe_amplitude);
    const double half = R * margin;
    ni = static_cast<long>(std::ceil(2.0 * half / cfg.dx_m));
    x0 = -half;
    y0 = -half;
  }
  // Lattice cell (i, j) spans [x0 + i dx, x0 + (i+1) dx] x [...].

  auto lattice_node = [ni](long i, long j) -> std::size_t {
    return static_cast<std::size_t>(j * (ni + 1) + i);
  };

  // Pass 1: find active cells (ice at the centroid).
  std::vector<std::pair<long, long>> active;
  std::vector<signed char> cell_active(
      static_cast<std::size_t>(ni) * static_cast<std::size_t>(ni), 0);
  for (long j = 0; j < ni; ++j) {
    for (long i = 0; i < ni; ++i) {
      const double cx = x0 + (static_cast<double>(i) + 0.5) * cfg.dx_m;
      const double cy = y0 + (static_cast<double>(j) + 0.5) * cfg.dx_m;
      if (geom.has_ice(cx, cy)) {
        active.emplace_back(i, j);
        cell_active[static_cast<std::size_t>(j * ni + i)] = 1;
      }
    }
  }
  MALI_CHECK_MSG(!active.empty(), "ice geometry produced no active cells");

  // Pass 2: compact node numbering over nodes referenced by active cells.
  std::unordered_map<std::size_t, std::size_t> node_id;
  auto get_node = [&](long i, long j) -> std::size_t {
    const std::size_t key = lattice_node(i, j);
    auto [it, inserted] = node_id.try_emplace(key, xs_.size());
    if (inserted) {
      xs_.push_back(x0 + static_cast<double>(i) * cfg.dx_m);
      ys_.push_back(y0 + static_cast<double>(j) * cfg.dx_m);
    }
    return it->second;
  };

  cells_.reserve(active.size() * 4);
  for (auto [i, j] : active) {
    // CCW: (i,j), (i+1,j), (i+1,j+1), (i,j+1).
    cells_.push_back(get_node(i, j));
    cells_.push_back(get_node(i + 1, j));
    cells_.push_back(get_node(i + 1, j + 1));
    cells_.push_back(get_node(i, j + 1));
  }

  // Pass 3: margin nodes — any node whose four surrounding lattice cells are
  // not all active.
  margin_.assign(xs_.size(), false);
  auto active_at = [&](long i, long j) -> bool {
    if (i < 0 || j < 0 || i >= ni || j >= ni) return false;
    return cell_active[static_cast<std::size_t>(j * ni + i)] != 0;
  };
  for (const auto& [key, id] : node_id) {
    const long i = static_cast<long>(key % static_cast<std::size_t>(ni + 1));
    const long j = static_cast<long>(key / static_cast<std::size_t>(ni + 1));
    const bool interior = active_at(i, j) && active_at(i - 1, j) &&
                          active_at(i, j - 1) && active_at(i - 1, j - 1);
    margin_[id] = !interior;
  }
}

}  // namespace mali::mesh
