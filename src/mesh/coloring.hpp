#pragma once
// Greedy node-sharing cell coloring for conflict-free parallel FE assembly.
//
// Two cells conflict when they share a global node: their element residual
// contributions scatter-add into the same global rows.  A coloring assigns
// every cell a color such that no two cells of one color conflict, so the
// scatter can run `parallel_for` over each color class with plain (non-
// atomic) updates — the standard GPU-FEM assembly technique (e.g. Alya's
// OpenACC Navier–Stokes assembly, MFEM's colored gather/scatter).
//
// Two colorings are provided:
//  * `lattice_color_cells` — the structured extruded meshes here are ice-mask
//    subsets of a uniform lattice, so the 3-bit parity (ix mod 2, iy mod 2,
//    layer mod 2) of each hex is a provably conflict-free <= 8 coloring (two
//    hexes sharing a node differ by at most 1 in each lattice index, and a
//    nonzero even difference is impossible).  8 colors is optimal wherever
//    8 hexes meet at a node.  This is what the assembly uses.
//  * `greedy_color_cells` — generic first-fit on arbitrary connectivity, used
//    as reference/fallback.  Its color count is bounded by the max number of
//    *conflicting cells* of any cell plus one; note that can exceed the
//    max-node-degree clique bound on masked lattices (first-fit order loses
//    the parity alignment across ice-mask holes).
//
// Both are deterministic: same mesh in, same colors out.

#include <cstddef>
#include <vector>

#include "portability/view.hpp"

namespace mali::mesh {

class ExtrudedMesh;

/// A partition of a cell range into conflict-free color classes, stored
/// CSR-style so each class is a contiguous, indexable span.
struct CellColoring {
  int n_colors = 0;
  /// (count) color of each local cell, in [0, n_colors).
  std::vector<int> cell_color;
  /// (n_colors + 1) offsets into `color_cells`.
  std::vector<std::size_t> color_ptr;
  /// (count) local cell ids grouped by color; class k is
  /// [color_ptr[k], color_ptr[k+1]).
  std::vector<std::size_t> color_cells;
  /// Max number of cells in the range sharing one global node — a lower
  /// bound on the chromatic number (those cells form a clique).
  std::size_t max_node_degree = 0;

  [[nodiscard]] std::size_t n_cells() const noexcept {
    return cell_color.size();
  }
  [[nodiscard]] std::size_t color_size(int k) const noexcept {
    return color_ptr[static_cast<std::size_t>(k) + 1] -
           color_ptr[static_cast<std::size_t>(k)];
  }
};

/// Parity coloring of the extruded-lattice cell range [c0, c0 + count):
/// color = (ix mod 2) | (iy mod 2) << 1 | (layer mod 2) << 2 with ix, iy the
/// base-cell lattice indices recovered from the centroids.  Guarantees: every
/// cell gets exactly one color; no two cells of a color share a node (proof
/// in the header comment); at most 8 colors, and exactly 8 wherever the mesh
/// contains a full 2x2x2 hex block.  Unused parities are compacted away, so
/// every color class is non-empty.  Deterministic.
[[nodiscard]] CellColoring lattice_color_cells(const ExtrudedMesh& mesh,
                                               std::size_t c0,
                                               std::size_t count);

/// Whole-mesh convenience overload.
[[nodiscard]] CellColoring lattice_color_cells(const ExtrudedMesh& mesh);

/// Greedy first-fit coloring of the local cell range [c0, c0 + count) of a
/// (C, N) cell→node connectivity.  Guarantees: every cell gets exactly one
/// color; no two cells of a color share a node; the number of colors is at
/// most one more than the max number of cells conflicting with any single
/// cell.  Deterministic for fixed connectivity.  Works on arbitrary meshes;
/// prefer `lattice_color_cells` on the structured extrusions (tighter count).
[[nodiscard]] CellColoring greedy_color_cells(
    const pk::View<std::size_t, 2>& cell_nodes, std::size_t c0,
    std::size_t count, int nodes_per_cell);

/// Whole-range convenience overload.
[[nodiscard]] inline CellColoring greedy_color_cells(
    const pk::View<std::size_t, 2>& cell_nodes, int nodes_per_cell) {
  return greedy_color_cells(cell_nodes, 0, cell_nodes.extent(0),
                            nodes_per_cell);
}

}  // namespace mali::mesh
