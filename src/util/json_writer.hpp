#pragma once
// Deterministic JSON emitter for the BENCH_*.json trajectory files and the
// ensemble results document.  Keys are emitted in the exact order the
// caller writes them (never map order), doubles go through the
// shortest-round-trip formatter of util/fp_format.hpp (so values reparse
// bitwise and the files diff cleanly across runs), and nothing here is
// locale-dependent.  This is a writer, not a parser — the repo never
// consumes JSON.

#include <cstddef>
#include <string>
#include <vector>

#include "portability/common.hpp"
#include "util/fp_format.hpp"

namespace mali::util {

/// Streaming JSON writer with explicit, caller-controlled key order.
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("bench").value("ensemble");
///   w.key("rows").begin_array();
///   ... w.begin_object(); w.key("x").value(1.5); w.end_object(); ...
///   w.end_array();
///   w.end_object();
///   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    prefix();
    pending_key_ = false;  // the '{' consumed the key's slot
    out_ += '{';
    stack_.push_back(kObject);
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    pop(kObject);
    newline_indent();
    out_ += '}';
    return *this;
  }
  JsonWriter& begin_array() {
    prefix();
    pending_key_ = false;  // the '[' consumed the key's slot
    out_ += '[';
    stack_.push_back(kArray);
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    pop(kArray);
    newline_indent();
    out_ += ']';
    return *this;
  }

  /// Names the next value inside an object.
  JsonWriter& key(const std::string& k) {
    MALI_CHECK_MSG(!stack_.empty() && stack_.back() == kObject,
                   "JsonWriter: key() outside an object");
    prefix();
    out_ += quote(k);
    out_ += ": ";
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& s) { return raw(quote(s)); }
  JsonWriter& value(const char* s) { return raw(quote(s)); }
  JsonWriter& value(double v) { return raw(format_double(v)); }
  JsonWriter& value(int v) { return raw(std::to_string(v)); }
  JsonWriter& value(std::size_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(bool v) { return raw(v ? "true" : "false"); }
  /// Embeds a pre-rendered JSON fragment verbatim (caller guarantees
  /// validity) — used to splice a deterministic section built elsewhere
  /// into an envelope without re-rendering it.
  JsonWriter& value_fragment(const std::string& json) { return raw(json); }

  [[nodiscard]] const std::string& str() const {
    MALI_CHECK_MSG(stack_.empty(), "JsonWriter: unclosed object/array");
    return out_;
  }

 private:
  enum Kind { kObject, kArray };

  static std::string quote(const std::string& s) {
    std::string q = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': q += "\\\""; break;
        case '\\': q += "\\\\"; break;
        case '\n': q += "\\n"; break;
        case '\t': q += "\\t"; break;
        default: q += c;
      }
    }
    q += '"';
    return q;
  }

  /// Comma/indent bookkeeping before a key or a container/array element.
  void prefix() {
    if (pending_key_) return;  // value directly after key(): no separator
    if (stack_.empty()) return;
    if (!first_.back()) out_ += ',';
    first_.back() = false;
    newline_indent_inner();
  }

  JsonWriter& raw(const std::string& s) {
    if (!pending_key_) prefix();
    pending_key_ = false;
    out_ += s;
    return *this;
  }

  void pop(Kind k) {
    MALI_CHECK_MSG(!stack_.empty() && stack_.back() == k,
                   "JsonWriter: mismatched end_object/end_array");
    stack_.pop_back();
    first_.pop_back();
  }

  void newline_indent() {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }
  void newline_indent_inner() {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }

  std::string out_;
  std::vector<Kind> stack_;
  std::vector<bool> first_;
  bool pending_key_ = false;
};

}  // namespace mali::util
