#pragma once
// Shortest-round-trip formatting for doubles — the one way every spec
// string, manifest, and BENCH_*.json file in the repo prints a floating
// value.  The contract: strtod(format_double(v)) == v BITWISE (sign of
// zero included), and the representation is the shortest %.*g that
// achieves it, so short values stay short ("0.5", "10") while awkward
// ones get the full 17 digits.  Locale-independent by construction:
// snprintf with the "C" numeric conventions is assumed repo-wide (no
// call site ever installs a locale).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace mali::util {

/// Prints a double so that a strtod round-trip is bitwise exact but short
/// values stay short.  Integral values print as plain integers ("10", not
/// "1e+01"); -0.0 keeps its sign ("-0").  Non-finite values print as
/// "nan" / "inf" / "-inf" (callers that forbid them must check first).
inline std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0.0 ? "inf" : "-inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char ibuf[40];
    std::snprintf(ibuf, sizeof(ibuf), "%.0f", v);
    return ibuf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shortest representation that round-trips bitwise.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

}  // namespace mali::util
