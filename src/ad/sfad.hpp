#pragma once
// mali::ad::SFad — static-size forward-mode automatic differentiation,
// modeled on Sacado's SFad, the "most efficient but least flexible" AD data
// structure the paper uses for the Jacobian kernel.  The derivative count N
// is fixed at compile time: for the paper's hexahedral elements, N = 16
// (8 nodes × 2 velocity components).
//
// All arithmetic operators are hidden friends (non-template functions per
// instantiation) so that proxy types with an implicit conversion to SFad —
// the gpusim tracing references — participate transparently.

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

#include "portability/common.hpp"

namespace mali::ad {

template <class T, int N>
class SFad {
  static_assert(N >= 1, "derivative count must be positive");

 public:
  using value_type = T;
  static constexpr int num_deriv = N;

  /// Zero value, zero derivatives.
  constexpr SFad() : val_(T(0)), dx_{} {}

  /// Constant (passive) value: derivatives are zero.
  constexpr SFad(const T& v) : val_(v), dx_{} {}  // NOLINT(runtime/explicit)

  /// Independent variable: value v, seeded with d/d(x_i) = 1.
  constexpr SFad(const T& v, int i) : val_(v), dx_{} { dx_[i] = T(1); }

  [[nodiscard]] constexpr const T& val() const noexcept { return val_; }
  [[nodiscard]] constexpr T& val() noexcept { return val_; }
  [[nodiscard]] constexpr const T& dx(int i) const noexcept { return dx_[i]; }
  [[nodiscard]] constexpr T& fastAccessDx(int i) noexcept { return dx_[i]; }
  [[nodiscard]] constexpr const T& fastAccessDx(int i) const noexcept {
    return dx_[i];
  }
  [[nodiscard]] static constexpr int size() noexcept { return N; }

  /// Resets to an independent variable seeded along direction i.
  constexpr void seed(const T& v, int i) noexcept {
    val_ = v;
    dx_.fill(T(0));
    dx_[i] = T(1);
  }

  constexpr SFad& operator=(const T& v) noexcept {
    val_ = v;
    dx_.fill(T(0));
    return *this;
  }

  constexpr SFad& operator+=(const SFad& o) noexcept {
    val_ += o.val_;
    for (int i = 0; i < N; ++i) dx_[i] += o.dx_[i];
    return *this;
  }
  constexpr SFad& operator-=(const SFad& o) noexcept {
    val_ -= o.val_;
    for (int i = 0; i < N; ++i) dx_[i] -= o.dx_[i];
    return *this;
  }
  constexpr SFad& operator*=(const SFad& o) noexcept {
    for (int i = 0; i < N; ++i) dx_[i] = dx_[i] * o.val_ + val_ * o.dx_[i];
    val_ *= o.val_;
    return *this;
  }
  constexpr SFad& operator/=(const SFad& o) noexcept {
    const T inv = T(1) / o.val_;
    for (int i = 0; i < N; ++i) dx_[i] = (dx_[i] - val_ * inv * o.dx_[i]) * inv;
    val_ *= inv;
    return *this;
  }
  constexpr SFad& operator+=(const T& v) noexcept {
    val_ += v;
    return *this;
  }
  constexpr SFad& operator-=(const T& v) noexcept {
    val_ -= v;
    return *this;
  }
  constexpr SFad& operator*=(const T& v) noexcept {
    val_ *= v;
    for (int i = 0; i < N; ++i) dx_[i] *= v;
    return *this;
  }
  constexpr SFad& operator/=(const T& v) noexcept {
    const T inv = T(1) / v;
    val_ *= inv;
    for (int i = 0; i < N; ++i) dx_[i] *= inv;
    return *this;
  }

  // ---- arithmetic (hidden friends) ----

  friend constexpr SFad operator-(const SFad& a) {
    SFad r;
    r.val_ = -a.val_;
    for (int i = 0; i < N; ++i) r.dx_[i] = -a.dx_[i];
    return r;
  }
  friend constexpr SFad operator+(const SFad& a) { return a; }

  friend constexpr SFad operator+(const SFad& a, const SFad& b) {
    SFad r;
    r.val_ = a.val_ + b.val_;
    for (int i = 0; i < N; ++i) r.dx_[i] = a.dx_[i] + b.dx_[i];
    return r;
  }
  friend constexpr SFad operator-(const SFad& a, const SFad& b) {
    SFad r;
    r.val_ = a.val_ - b.val_;
    for (int i = 0; i < N; ++i) r.dx_[i] = a.dx_[i] - b.dx_[i];
    return r;
  }
  friend constexpr SFad operator*(const SFad& a, const SFad& b) {
    SFad r;
    r.val_ = a.val_ * b.val_;
    for (int i = 0; i < N; ++i)
      r.dx_[i] = a.dx_[i] * b.val_ + a.val_ * b.dx_[i];
    return r;
  }
  friend constexpr SFad operator/(const SFad& a, const SFad& b) {
    SFad r;
    const T inv = T(1) / b.val_;
    r.val_ = a.val_ * inv;
    for (int i = 0; i < N; ++i)
      r.dx_[i] = (a.dx_[i] - r.val_ * b.dx_[i]) * inv;
    return r;
  }

  friend constexpr SFad operator+(const SFad& a, const T& b) {
    SFad r = a;
    r.val_ += b;
    return r;
  }
  friend constexpr SFad operator+(const T& a, const SFad& b) { return b + a; }
  friend constexpr SFad operator-(const SFad& a, const T& b) {
    SFad r = a;
    r.val_ -= b;
    return r;
  }
  friend constexpr SFad operator-(const T& a, const SFad& b) {
    SFad r;
    r.val_ = a - b.val_;
    for (int i = 0; i < N; ++i) r.dx_[i] = -b.dx_[i];
    return r;
  }
  friend constexpr SFad operator*(const SFad& a, const T& b) {
    SFad r;
    r.val_ = a.val_ * b;
    for (int i = 0; i < N; ++i) r.dx_[i] = a.dx_[i] * b;
    return r;
  }
  friend constexpr SFad operator*(const T& a, const SFad& b) { return b * a; }
  friend constexpr SFad operator/(const SFad& a, const T& b) {
    const T inv = T(1) / b;
    return a * inv;
  }
  friend constexpr SFad operator/(const T& a, const SFad& b) {
    SFad r;
    const T inv = T(1) / b.val_;
    r.val_ = a * inv;
    for (int i = 0; i < N; ++i) r.dx_[i] = -r.val_ * inv * b.dx_[i];
    return r;
  }

  // ---- comparisons (on values, as in Sacado) ----

  friend constexpr bool operator<(const SFad& a, const SFad& b) {
    return a.val_ < b.val_;
  }
  friend constexpr bool operator>(const SFad& a, const SFad& b) {
    return a.val_ > b.val_;
  }
  friend constexpr bool operator<=(const SFad& a, const SFad& b) {
    return a.val_ <= b.val_;
  }
  friend constexpr bool operator>=(const SFad& a, const SFad& b) {
    return a.val_ >= b.val_;
  }
  friend constexpr bool operator==(const SFad& a, const SFad& b) {
    return a.val_ == b.val_;
  }
  friend constexpr bool operator!=(const SFad& a, const SFad& b) {
    return a.val_ != b.val_;
  }

  // ---- math functions (hidden friends so tracing proxies convert) ----

  friend SFad sqrt(const SFad& a) {
    SFad r;
    using std::sqrt;
    r.val_ = sqrt(a.val_);
    const T scale = T(0.5) / r.val_;
    for (int i = 0; i < N; ++i) r.dx_[i] = scale * a.dx_[i];
    return r;
  }
  friend SFad exp(const SFad& a) {
    SFad r;
    using std::exp;
    r.val_ = exp(a.val_);
    for (int i = 0; i < N; ++i) r.dx_[i] = r.val_ * a.dx_[i];
    return r;
  }
  friend SFad log(const SFad& a) {
    SFad r;
    using std::log;
    r.val_ = log(a.val_);
    const T inv = T(1) / a.val_;
    for (int i = 0; i < N; ++i) r.dx_[i] = inv * a.dx_[i];
    return r;
  }
  friend SFad pow(const SFad& a, const T& e) {
    SFad r;
    using std::pow;
    r.val_ = pow(a.val_, e);
    const T scale = e * pow(a.val_, e - T(1));
    for (int i = 0; i < N; ++i) r.dx_[i] = scale * a.dx_[i];
    return r;
  }
  friend SFad fabs(const SFad& a) { return a.val_ < T(0) ? -a : a; }
  friend SFad abs(const SFad& a) { return fabs(a); }

  friend std::ostream& operator<<(std::ostream& os, const SFad& a) {
    os << a.val_ << " [";
    for (int i = 0; i < N; ++i) os << (i ? " " : "") << a.dx_[i];
    return os << "]";
  }

 private:
  T val_;
  std::array<T, N> dx_;
};

}  // namespace mali::ad
