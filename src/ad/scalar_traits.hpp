#pragma once
// Scalar type traits: uniform access to the passive value and derivative
// structure of plain floating-point scalars, SFad and DFad.  The physics
// kernels are written once against ScalarT and instantiated for both the
// Residual (double) and Jacobian (SFad<double,16>) evaluations, exactly as
// Albany's template evaluation types work.

#include <type_traits>

#include "ad/dfad.hpp"
#include "ad/sfad.hpp"

namespace mali::ad {

template <class T>
struct ScalarTraits {
  using value_type = T;
  static constexpr bool is_fad = false;
  static constexpr int num_deriv = 0;
  static constexpr const T& value(const T& x) noexcept { return x; }
  static constexpr T dx(const T& /*x*/, int /*i*/) noexcept { return T(0); }
};

template <class T, int N>
struct ScalarTraits<SFad<T, N>> {
  using value_type = T;
  static constexpr bool is_fad = true;
  static constexpr int num_deriv = N;
  static constexpr const T& value(const SFad<T, N>& x) noexcept {
    return x.val();
  }
  static constexpr T dx(const SFad<T, N>& x, int i) noexcept { return x.dx(i); }
};

template <class T>
struct ScalarTraits<DFad<T>> {
  using value_type = T;
  static constexpr bool is_fad = true;
  static constexpr int num_deriv = -1;  // dynamic
  static const T& value(const DFad<T>& x) noexcept { return x.val(); }
  static T dx(const DFad<T>& x, int i) { return x.dx(i); }
};

template <class T>
inline constexpr bool is_fad_v = ScalarTraits<T>::is_fad;

/// Passive value of any supported scalar.
template <class T>
[[nodiscard]] constexpr auto value_of(const T& x) noexcept {
  return ScalarTraits<T>::value(x);
}

}  // namespace mali::ad
