#pragma once
// mali::ad::DFad — dynamic-size forward-mode AD, the flexible (but slower)
// Sacado counterpart to SFad.  Used where the derivative count is not known
// at compile time; MiniMALI uses it in tests to cross-check SFad and to
// demonstrate the cost the paper's SFad choice avoids.

#include <cmath>
#include <cstddef>
#include <vector>

#include "portability/common.hpp"

namespace mali::ad {

template <class T>
class DFad {
 public:
  using value_type = T;

  DFad() : val_(T(0)) {}
  DFad(const T& v) : val_(v) {}  // NOLINT(runtime/explicit)

  /// Independent variable among n, seeded along direction i.
  DFad(int n, int i, const T& v) : val_(v), dx_(static_cast<std::size_t>(n), T(0)) {
    dx_[static_cast<std::size_t>(i)] = T(1);
  }

  [[nodiscard]] const T& val() const noexcept { return val_; }
  [[nodiscard]] T& val() noexcept { return val_; }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(dx_.size()); }
  [[nodiscard]] T dx(int i) const {
    return dx_.empty() ? T(0) : dx_[static_cast<std::size_t>(i)];
  }

  DFad& operator=(const T& v) {
    val_ = v;
    dx_.clear();
    return *this;
  }

  DFad& operator+=(const DFad& o) { return *this = *this + o; }
  DFad& operator-=(const DFad& o) { return *this = *this - o; }
  DFad& operator*=(const DFad& o) { return *this = *this * o; }
  DFad& operator/=(const DFad& o) { return *this = *this / o; }

  friend DFad operator-(const DFad& a) {
    DFad r(-a.val_);
    r.dx_.resize(a.dx_.size());
    for (std::size_t i = 0; i < a.dx_.size(); ++i) r.dx_[i] = -a.dx_[i];
    return r;
  }

  friend DFad operator+(const DFad& a, const DFad& b) {
    return combine(a, b, a.val_ + b.val_, T(1), T(1));
  }
  friend DFad operator-(const DFad& a, const DFad& b) {
    return combine(a, b, a.val_ - b.val_, T(1), T(-1));
  }
  friend DFad operator*(const DFad& a, const DFad& b) {
    return combine(a, b, a.val_ * b.val_, b.val_, a.val_);
  }
  friend DFad operator/(const DFad& a, const DFad& b) {
    const T inv = T(1) / b.val_;
    return combine(a, b, a.val_ * inv, inv, -a.val_ * inv * inv);
  }

  friend bool operator<(const DFad& a, const DFad& b) { return a.val_ < b.val_; }
  friend bool operator>(const DFad& a, const DFad& b) { return a.val_ > b.val_; }
  friend bool operator<=(const DFad& a, const DFad& b) { return a.val_ <= b.val_; }
  friend bool operator>=(const DFad& a, const DFad& b) { return a.val_ >= b.val_; }

  friend DFad sqrt(const DFad& a) {
    using std::sqrt;
    const T rv = sqrt(a.val_);
    return unary(a, rv, T(0.5) / rv);
  }
  friend DFad exp(const DFad& a) {
    using std::exp;
    const T rv = exp(a.val_);
    return unary(a, rv, rv);
  }
  friend DFad log(const DFad& a) {
    using std::log;
    return unary(a, log(a.val_), T(1) / a.val_);
  }
  friend DFad pow(const DFad& a, const T& e) {
    using std::pow;
    return unary(a, pow(a.val_, e), e * pow(a.val_, e - T(1)));
  }
  friend DFad fabs(const DFad& a) { return a.val_ < T(0) ? -a : a; }

 private:
  /// r = value, dr = ca*da + cb*db (sizes may differ; missing derivs are 0).
  static DFad combine(const DFad& a, const DFad& b, const T& value, const T& ca,
                      const T& cb) {
    DFad r(value);
    r.dx_.resize(std::max(a.dx_.size(), b.dx_.size()), T(0));
    for (std::size_t i = 0; i < a.dx_.size(); ++i) r.dx_[i] += ca * a.dx_[i];
    for (std::size_t i = 0; i < b.dx_.size(); ++i) r.dx_[i] += cb * b.dx_[i];
    return r;
  }
  static DFad unary(const DFad& a, const T& value, const T& scale) {
    DFad r(value);
    r.dx_.resize(a.dx_.size());
    for (std::size_t i = 0; i < a.dx_.size(); ++i) r.dx_[i] = scale * a.dx_[i];
    return r;
  }

  T val_;
  std::vector<T> dx_;
};

}  // namespace mali::ad
