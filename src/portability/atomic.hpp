#pragma once
// pk::atomic_add — the pk-layer analog of Kokkos::atomic_add.
//
// On the CPU backends this lowers to std::atomic_ref (C++20): integral types
// use native fetch_add; floating-point types use a compare-exchange loop,
// which is what Kokkos emits for doubles on architectures without a native
// FP atomic.  Relaxed ordering is correct for scatter-add accumulation: the
// parallel_for's completion barrier (the thread-pool join) provides the
// release/acquire edge before anyone reads the results.

#include <atomic>
#include <type_traits>

#include "portability/common.hpp"

namespace mali::pk {

template <class T>
MALI_INLINE void atomic_add(T* addr, T val) noexcept {
  static_assert(std::is_arithmetic_v<T>,
                "atomic_add supports arithmetic types only");
  std::atomic_ref<T> ref(*addr);
  if constexpr (std::is_integral_v<T>) {
    ref.fetch_add(val, std::memory_order_relaxed);
  } else {
    T expected = ref.load(std::memory_order_relaxed);
    while (!ref.compare_exchange_weak(expected, expected + val,
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
      // expected reloaded by compare_exchange_weak on failure.
    }
  }
}

}  // namespace mali::pk
