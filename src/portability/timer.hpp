#pragma once
// Wall-clock timing utilities used by the benches and the solver monitors.

#include <chrono>
#include <cstddef>
#include <map>
#include <string>

namespace mali::pk {

/// Monotonic stopwatch returning seconds.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named timings (per-phase breakdowns in the solver).
class TimerRegistry {
 public:
  void add(const std::string& name, double seconds) {
    auto& e = entries_[name];
    e.total += seconds;
    ++e.count;
  }
  [[nodiscard]] double total(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0.0 : it->second.total;
  }
  [[nodiscard]] std::size_t count(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? 0 : it->second.count;
  }
  [[nodiscard]] const auto& entries() const { return entries_; }
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    double total = 0.0;
    std::size_t count = 0;
  };
  std::map<std::string, Entry> entries_;
};

/// RAII timer that reports into a registry on destruction.
class ScopedTimer {
 public:
  ScopedTimer(TimerRegistry& reg, std::string name)
      : reg_(reg), name_(std::move(name)) {}
  ~ScopedTimer() { reg_.add(name_, timer_.seconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerRegistry& reg_;
  std::string name_;
  Timer timer_;
};

}  // namespace mali::pk
