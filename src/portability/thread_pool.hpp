#pragma once
// A small blocking thread pool used by the pk "Threads" backend.
//
// The pool is created once (lazily) and reused; parallel_for dispatches
// contiguous index chunks to workers and waits for completion.  On a
// single-core host this degrades gracefully to near-serial execution.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mali::pk {

class ThreadPool {
 public:
  /// Global pool sized to the hardware concurrency (at least 1 worker).
  static ThreadPool& instance();

  explicit ThreadPool(std::size_t n_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(chunk_begin, chunk_end) across workers covering [begin, end);
  /// blocks until all chunks complete.  Exceptions from workers are rethrown.
  void parallel_range(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Runs fn(task_id) for task_id in [0, n) with GUARANTEED concurrency:
  /// each task gets its own dedicated thread (not a pool worker), so task
  /// bodies may block on each other (barriers, message waits).  This is the
  /// entry point for the in-process MPI surrogate in src/dist/ — pool
  /// workers cannot host rank bodies because n ranks > n workers (or a rank
  /// nesting a parallel_range) would deadlock the shared queue.  Blocks
  /// until every task returns; the first exception is rethrown after all
  /// threads join.  Static (no pool state involved) but kept here so all
  /// thread-spawn policy lives in one place.
  static void parallel_tasks(std::size_t n,
                             const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  struct Task {
    std::function<void(std::size_t, std::size_t)> fn;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  std::vector<std::thread> workers_;
  std::vector<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace mali::pk
