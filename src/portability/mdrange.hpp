#pragma once
// MDRangePolicy — multidimensional parallel iteration, the pk analog of
// Kokkos::MDRangePolicy.  Albany dispatches (cell, qp) and (cell, node, qp)
// shaped loops this way; MiniMALI flattens the iteration space and hands
// contiguous chunks to the backend, invoking the functor with unpacked
// indices (leftmost index slowest, matching Kokkos' default iteration
// order for LayoutLeft data).

#include <array>
#include <cstddef>

#include "portability/exec_policy.hpp"
#include "portability/thread_pool.hpp"

namespace mali::pk {

template <std::size_t Rank, class ExecSpace = DefaultExec>
class MDRangePolicy {
  static_assert(Rank >= 2 && Rank <= 4, "MDRange rank must be 2..4");

 public:
  using exec_space = ExecSpace;
  static constexpr std::size_t rank = Rank;

  explicit MDRangePolicy(const std::array<std::size_t, Rank>& upper)
      : upper_(upper) {}

  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t s = 1;
    for (auto u : upper_) s *= u;
    return s;
  }
  [[nodiscard]] std::size_t extent(std::size_t d) const noexcept {
    return upper_[d];
  }

  /// Unflattens a linear index; index 0 is slowest (row-major traversal).
  [[nodiscard]] std::array<std::size_t, Rank> unflatten(
      std::size_t lin) const noexcept {
    std::array<std::size_t, Rank> idx{};
    for (std::size_t d = Rank; d-- > 0;) {
      idx[d] = lin % upper_[d];
      lin /= upper_[d];
    }
    return idx;
  }

 private:
  std::array<std::size_t, Rank> upper_;
};

namespace detail {

template <class Functor, std::size_t Rank>
MALI_INLINE void invoke_md(const Functor& f,
                           const std::array<std::size_t, Rank>& idx) {
  if constexpr (Rank == 2) {
    f(static_cast<int>(idx[0]), static_cast<int>(idx[1]));
  } else if constexpr (Rank == 3) {
    f(static_cast<int>(idx[0]), static_cast<int>(idx[1]),
      static_cast<int>(idx[2]));
  } else {
    f(static_cast<int>(idx[0]), static_cast<int>(idx[1]),
      static_cast<int>(idx[2]), static_cast<int>(idx[3]));
  }
}

}  // namespace detail

template <std::size_t Rank, class ExecSpace, class Functor>
void parallel_for(const std::string& /*label*/,
                  const MDRangePolicy<Rank, ExecSpace>& policy,
                  const Functor& f) {
  const std::size_t n = policy.size();
  if constexpr (std::is_same_v<ExecSpace, Serial>) {
    for (std::size_t lin = 0; lin < n; ++lin) {
      detail::invoke_md<Functor, Rank>(f, policy.unflatten(lin));
    }
  } else {
    ThreadPool::instance().parallel_range(
        0, n, [&](std::size_t b, std::size_t e) {
          for (std::size_t lin = b; lin < e; ++lin) {
            detail::invoke_md<Functor, Rank>(f, policy.unflatten(lin));
          }
        });
  }
}

template <std::size_t Rank, class ExecSpace, class Functor>
void parallel_for(const MDRangePolicy<Rank, ExecSpace>& policy,
                  const Functor& f) {
  parallel_for("mali::pk::md_parallel_for", policy, f);
}

}  // namespace mali::pk
