#pragma once
// parallel_for / parallel_reduce — the pk-layer analog of Kokkos parallel
// dispatch.  Functors may expose either `operator()(int)` or the tagged form
// `operator()(const Tag&, int)`; reductions additionally take an accumulator
// reference, as in Kokkos.

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "portability/exec_policy.hpp"
#include "portability/thread_pool.hpp"

namespace mali::pk {

template <class ExecSpace, class WorkTag, class Bounds, class Functor>
void parallel_for(const std::string& /*label*/,
                  const RangePolicy<ExecSpace, WorkTag, Bounds>& policy,
                  const Functor& f) {
  if constexpr (std::is_same_v<ExecSpace, Serial>) {
    for (std::size_t i = policy.begin(); i < policy.end(); ++i) {
      detail::invoke<Functor, WorkTag>(f, i);
    }
  } else {
    ThreadPool::instance().parallel_range(
        policy.begin(), policy.end(), [&f](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) {
            detail::invoke<Functor, WorkTag>(f, i);
          }
        });
  }
}

/// Unlabeled overload, for terseness in tests and examples.
template <class ExecSpace, class WorkTag, class Bounds, class Functor>
void parallel_for(const RangePolicy<ExecSpace, WorkTag, Bounds>& policy,
                  const Functor& f) {
  parallel_for("mali::pk::parallel_for", policy, f);
}

/// Simple flat-range parallel_for over [0, n).
template <class Functor>
void parallel_for(const std::string& label, std::size_t n, const Functor& f) {
  parallel_for(label, RangePolicy<>(n), f);
}

/// Sum-reduction: functor signature `void(int, Value&)` (or tagged).
template <class ExecSpace, class WorkTag, class Bounds, class Functor,
          class Value>
void parallel_reduce(const std::string& /*label*/,
                     const RangePolicy<ExecSpace, WorkTag, Bounds>& policy,
                     const Functor& f, Value& result) {
  Value total{};
  if constexpr (std::is_same_v<ExecSpace, Serial>) {
    for (std::size_t i = policy.begin(); i < policy.end(); ++i) {
      if constexpr (std::is_void_v<WorkTag>) {
        f(static_cast<int>(i), total);
      } else {
        f(WorkTag{}, static_cast<int>(i), total);
      }
    }
  } else {
    std::mutex mu;
    ThreadPool::instance().parallel_range(
        policy.begin(), policy.end(),
        [&f, &mu, &total](std::size_t b, std::size_t e) {
          Value local{};
          for (std::size_t i = b; i < e; ++i) {
            if constexpr (std::is_void_v<WorkTag>) {
              f(static_cast<int>(i), local);
            } else {
              f(WorkTag{}, static_cast<int>(i), local);
            }
          }
          std::lock_guard<std::mutex> lk(mu);
          total += local;
        });
  }
  result = total;
}

template <class Functor, class Value>
void parallel_reduce(const std::string& label, std::size_t n, const Functor& f,
                     Value& result) {
  parallel_reduce(label, RangePolicy<>(n), f, result);
}

// ---------------------------------------------------------------------------
// Determinism contract
// ---------------------------------------------------------------------------
// The threaded parallel_reduce above merges thread-local partials in
// completion order, so across runs (or thread counts) results agree with the
// serial reduction only to FP-associativity — a relative error of order
// n * eps on well-conditioned sums.  Callers needing bitwise-stable results
// (CI reference comparisons, reproducibility studies) should use
// parallel_reduce_deterministic: it partitions the range into *fixed-size*
// chunks, reduces each chunk in ascending index order, and merges the chunk
// partials serially in chunk order.  The summation tree then depends only on
// (n, chunk) — never on the thread count or schedule — so repeated runs are
// bitwise identical on any machine with the same FP semantics.

/// Bitwise-reproducible sum-reduction: functor signature `void(int, Value&)`.
/// `chunk` fixes the reduction tree; 0 picks a default of 1024.
template <class Functor, class Value>
void parallel_reduce_deterministic(const std::string& /*label*/, std::size_t n,
                                   const Functor& f, Value& result,
                                   std::size_t chunk = 0) {
  if (chunk == 0) chunk = 1024;
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  std::vector<Value> partials(n_chunks, Value{});
  ThreadPool::instance().parallel_range(
      0, n_chunks, [&](std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
          Value local{};
          const std::size_t b = c * chunk;
          const std::size_t e = std::min(n, b + chunk);
          for (std::size_t i = b; i < e; ++i) f(static_cast<int>(i), local);
          partials[c] = local;
        }
      });
  Value total{};
  for (const Value& p : partials) total += p;  // fixed merge order
  result = total;
}

}  // namespace mali::pk
