#pragma once
// Profiling regions — the pk analog of Kokkos::Profiling::pushRegion /
// popRegion plus a per-kernel invocation log.  The paper's methodology
// leans on per-kernel "time per invocation" from Nsight/rocprof; on the
// host side this registry provides the same view of the evaluator chain:
// every region records call count, total and maximum time, and regions
// nest into dotted paths ("newton.assemble.viscosity").

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "portability/timer.hpp"

namespace mali::pk {

class Profiling {
 public:
  struct RegionStats {
    std::size_t calls = 0;
    double total_s = 0.0;
    double max_s = 0.0;
    [[nodiscard]] double mean_s() const {
      return calls == 0 ? 0.0 : total_s / static_cast<double>(calls);
    }
  };

  static Profiling& instance() {
    static Profiling p;
    return p;
  }

  void push_region(const std::string& name) {
    std::lock_guard<std::mutex> lk(mu_);
    stack_.push_back({name, Timer{}});
  }

  void pop_region() {
    std::lock_guard<std::mutex> lk(mu_);
    if (stack_.empty()) return;
    const double elapsed = stack_.back().timer.seconds();
    std::string path;
    for (const auto& fr : stack_) {
      if (!path.empty()) path += '.';
      path += fr.name;
    }
    auto& s = stats_[path];
    ++s.calls;
    s.total_s += elapsed;
    s.max_s = std::max(s.max_s, elapsed);
    stack_.pop_back();
  }

  [[nodiscard]] RegionStats stats(const std::string& path) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = stats_.find(path);
    return it == stats_.end() ? RegionStats{} : it->second;
  }

  [[nodiscard]] std::map<std::string, RegionStats> all() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.clear();
    stack_.clear();
  }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stack_.size();
  }

 private:
  struct Frame {
    std::string name;
    Timer timer;
  };
  mutable std::mutex mu_;
  std::vector<Frame> stack_;
  std::map<std::string, RegionStats> stats_;
};

/// RAII region guard.
class ScopedRegion {
 public:
  explicit ScopedRegion(const std::string& name) {
    Profiling::instance().push_region(name);
  }
  ~ScopedRegion() { Profiling::instance().pop_region(); }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;
};

}  // namespace mali::pk
