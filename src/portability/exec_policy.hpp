#pragma once
// Execution policies with Kokkos-style work tags.
//
// Albany dispatches one functor over multiple physics configurations by
// tagging operator() overloads (e.g. `operator()(const LandIce_3D_Tag&, int)`).
// RangePolicy carries an optional WorkTag plus LaunchBounds; parallel_for
// selects the tagged overload when a tag is present.

#include <cstddef>
#include <string>
#include <type_traits>

#include "portability/common.hpp"
#include "portability/launch_bounds.hpp"

namespace mali::pk {

struct Serial {};   ///< single-thread backend
struct Threads {};  ///< thread-pool backend

#ifndef MALI_DEFAULT_EXEC_SERIAL
using DefaultExec = Threads;
#else
using DefaultExec = Serial;
#endif

template <class ExecSpace = DefaultExec, class WorkTag = void,
          class Bounds = LaunchBounds<>>
class RangePolicy {
 public:
  using exec_space = ExecSpace;
  using work_tag = WorkTag;
  using launch_bounds = Bounds;

  RangePolicy(std::size_t begin, std::size_t end) : begin_(begin), end_(end) {}
  explicit RangePolicy(std::size_t end) : begin_(0), end_(end) {}

  [[nodiscard]] std::size_t begin() const noexcept { return begin_; }
  [[nodiscard]] std::size_t end() const noexcept { return end_; }
  [[nodiscard]] std::size_t size() const noexcept { return end_ - begin_; }

 private:
  std::size_t begin_;
  std::size_t end_;
};

namespace detail {

template <class Functor, class WorkTag>
MALI_INLINE void invoke(const Functor& f, std::size_t i) {
  if constexpr (std::is_void_v<WorkTag>) {
    f(static_cast<int>(i));
  } else {
    f(WorkTag{}, static_cast<int>(i));
  }
}

}  // namespace detail

}  // namespace mali::pk
