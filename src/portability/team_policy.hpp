#pragma once
// TeamPolicy — hierarchical parallelism, the pk analog of
// Kokkos::TeamPolicy.  A league of teams executes a functor that receives a
// TeamMember handle; nested work is expressed with team_for (parallel over
// the team) and team_reduce.  On the host backends a team executes
// sequentially on one worker, teams are distributed across the pool — the
// same semantics Kokkos gives OpenMP builds with team_size 1..n.

#include <cstddef>
#include <functional>
#include <string>
#include <type_traits>

#include "portability/exec_policy.hpp"
#include "portability/thread_pool.hpp"

namespace mali::pk {

/// Handle passed to team-level functors.
class TeamMember {
 public:
  TeamMember(int league_rank, int league_size, int team_size) noexcept
      : league_rank_(league_rank),
        league_size_(league_size),
        team_size_(team_size) {}

  [[nodiscard]] int league_rank() const noexcept { return league_rank_; }
  [[nodiscard]] int league_size() const noexcept { return league_size_; }
  [[nodiscard]] int team_size() const noexcept { return team_size_; }
  /// Host teams execute sequentially: rank 0 does all the nested work.
  [[nodiscard]] int team_rank() const noexcept { return 0; }

 private:
  int league_rank_;
  int league_size_;
  int team_size_;
};

template <class ExecSpace = DefaultExec>
class TeamPolicy {
 public:
  using exec_space = ExecSpace;

  TeamPolicy(int league_size, int team_size)
      : league_size_(league_size), team_size_(team_size) {}

  [[nodiscard]] int league_size() const noexcept { return league_size_; }
  [[nodiscard]] int team_size() const noexcept { return team_size_; }

 private:
  int league_size_;
  int team_size_;
};

/// Nested team-level loop: on host teams this is a plain sequential loop
/// (every "thread" of the team is rank 0).
template <class Functor>
MALI_INLINE void team_for(const TeamMember& /*member*/, int n,
                          const Functor& f) {
  for (int i = 0; i < n; ++i) f(i);
}

/// Nested team-level reduction.
template <class Functor, class T>
MALI_INLINE void team_reduce(const TeamMember& /*member*/, int n,
                             const Functor& f, T& result) {
  T acc{};
  for (int i = 0; i < n; ++i) f(i, acc);
  result = acc;
}

/// League dispatch: one functor invocation per team.
template <class ExecSpace, class Functor>
void parallel_for(const std::string& /*label*/,
                  const TeamPolicy<ExecSpace>& policy, const Functor& f) {
  const int league = policy.league_size();
  if constexpr (std::is_same_v<ExecSpace, Serial>) {
    for (int t = 0; t < league; ++t) {
      f(TeamMember(t, league, policy.team_size()));
    }
  } else {
    ThreadPool::instance().parallel_range(
        0, static_cast<std::size_t>(league),
        [&](std::size_t b, std::size_t e) {
          for (std::size_t t = b; t < e; ++t) {
            f(TeamMember(static_cast<int>(t), league, policy.team_size()));
          }
        });
  }
}

template <class ExecSpace, class Functor>
void parallel_for(const TeamPolicy<ExecSpace>& policy, const Functor& f) {
  parallel_for("mali::pk::team_parallel_for", policy, f);
}

}  // namespace mali::pk
