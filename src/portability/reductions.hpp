#pragma once
// Reducer objects and parallel_scan — the remaining Kokkos dispatch shapes
// Albany relies on (Min/Max/Sum reducers for convergence monitors and
// diagnostics; exclusive scans for workset offsets and compactions).

#include <algorithm>
#include <cstddef>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "portability/exec_policy.hpp"
#include "portability/thread_pool.hpp"

namespace mali::pk {

/// Kokkos-style reducer concepts: join two partials, identity element.
template <class T>
struct Sum {
  using value_type = T;
  static constexpr T identity() { return T(0); }
  static void join(T& dst, const T& src) { dst += src; }
};

template <class T>
struct Min {
  using value_type = T;
  static constexpr T identity() { return std::numeric_limits<T>::max(); }
  static void join(T& dst, const T& src) { dst = std::min(dst, src); }
};

template <class T>
struct Max {
  using value_type = T;
  static constexpr T identity() { return std::numeric_limits<T>::lowest(); }
  static void join(T& dst, const T& src) { dst = std::max(dst, src); }
};

/// parallel_reduce with an explicit reducer: functor signature
/// void(int i, T& partial).
template <class Reducer, class ExecSpace = DefaultExec, class Functor>
[[nodiscard]] typename Reducer::value_type reduce(
    const std::string& /*label*/, std::size_t n, const Functor& f) {
  using T = typename Reducer::value_type;
  T total = Reducer::identity();
  if constexpr (std::is_same_v<ExecSpace, Serial>) {
    for (std::size_t i = 0; i < n; ++i) {
      T partial = Reducer::identity();
      f(static_cast<int>(i), partial);
      Reducer::join(total, partial);
    }
  } else {
    std::mutex mu;
    ThreadPool::instance().parallel_range(
        0, n, [&](std::size_t b, std::size_t e) {
          T local = Reducer::identity();
          for (std::size_t i = b; i < e; ++i) {
            T partial = Reducer::identity();
            f(static_cast<int>(i), partial);
            Reducer::join(local, partial);
          }
          std::lock_guard<std::mutex> lk(mu);
          Reducer::join(total, local);
        });
  }
  return total;
}

/// Exclusive prefix sum over [0, n): functor(i, partial, is_final) is called
/// twice per element in the two-pass scheme (Kokkos semantics): during the
/// final pass `partial` holds the exclusive prefix when is_final is true.
/// Returns the grand total.
template <class T, class Functor>
T parallel_scan(const std::string& /*label*/, std::size_t n,
                const Functor& f) {
  // Sequential two-phase reference implementation (deterministic; the
  // scan shapes in MiniMALI are all setup-time, not hot loops).
  T running = T(0);
  for (std::size_t i = 0; i < n; ++i) {
    T partial = running;
    f(static_cast<int>(i), partial, true);
    // The functor adds its contribution to partial; the increment is the
    // difference it applied.
    running = partial;
  }
  return running;
}

/// Convenience exclusive scan of a vector; returns the total.
template <class T>
T exclusive_scan(const std::vector<T>& in, std::vector<T>& out) {
  out.resize(in.size());
  T acc = T(0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc += in[i];
  }
  return acc;
}

}  // namespace mali::pk
