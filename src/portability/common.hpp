#pragma once
// Common definitions for the MiniMALI portable-kernels (pk) layer.
//
// The pk layer is a from-scratch stand-in for the Kokkos programming model:
// multidimensional views, execution policies with tag dispatch, and
// parallel_for / parallel_reduce over serial or thread-pool backends.
// Kernels written against it look like the Albany kernels in the paper.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#if defined(__GNUC__) || defined(__clang__)
#define MALI_INLINE inline __attribute__((always_inline))
#define MALI_RESTRICT __restrict__
#else
#define MALI_INLINE inline
#define MALI_RESTRICT
#endif

// Mirrors KOKKOS_INLINE_FUNCTION: marks code callable from within a kernel.
#define MALI_KERNEL_FUNCTION MALI_INLINE

namespace mali {

/// Error type thrown on precondition violations in the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* cond, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace mali

/// Precondition check that stays on in release builds (library boundaries).
#define MALI_CHECK(cond)                                                \
  do {                                                                  \
    if (!(cond)) ::mali::detail::throw_error(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define MALI_CHECK_MSG(cond, msg)                                       \
  do {                                                                  \
    if (!(cond))                                                        \
      ::mali::detail::throw_error(#cond, __FILE__, __LINE__, (msg));    \
  } while (0)

/// Debug-only bounds checking for views (hot path).
#ifndef NDEBUG
#define MALI_ASSERT(cond) MALI_CHECK(cond)
#else
#define MALI_ASSERT(cond) ((void)0)
#endif
