#pragma once
// mali::pk::View — a reference-counted multidimensional array, the pk-layer
// analog of Kokkos::View.  Views are cheap to copy (shared ownership), carry
// a label for diagnostics/tracing, and default to LayoutLeft so the leftmost
// (cell) index is contiguous, matching Kokkos' GPU default.

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <type_traits>

#include "portability/common.hpp"
#include "portability/layout.hpp"

namespace mali::pk {

template <class T, std::size_t Rank, class Layout = LayoutLeft>
class View {
  static_assert(Rank >= 1 && Rank <= kMaxRank, "rank out of range");

 public:
  using value_type = T;
  using layout_type = Layout;
  static constexpr std::size_t rank = Rank;

  View() = default;

  /// Allocates zero-initialized storage; extents beyond Rank must be omitted.
  template <class... Extents,
            class = std::enable_if_t<sizeof...(Extents) == Rank>>
  explicit View(std::string label, Extents... extents)
      : label_(std::move(label)),
        extents_{static_cast<std::size_t>(extents)...},
        strides_(Layout::template strides<Rank>(extents_)) {
    size_ = 1;
    for (std::size_t e : extents_) size_ *= e;
    data_ = std::shared_ptr<T[]>(new T[size_]());
  }

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] std::size_t extent(std::size_t d) const noexcept {
    return d < Rank ? extents_[d] : 1;
  }
  [[nodiscard]] std::size_t stride(std::size_t d) const noexcept {
    return strides_[d];
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return size_ * sizeof(T);
  }
  [[nodiscard]] T* data() const noexcept { return data_.get(); }
  [[nodiscard]] bool allocated() const noexcept { return data_ != nullptr; }

  /// Flattened offset of a multi-index under this view's layout.
  template <class... Idx>
  [[nodiscard]] MALI_INLINE std::size_t offset_of(Idx... idx) const noexcept {
    static_assert(sizeof...(Idx) == Rank, "index arity must equal rank");
    const std::array<std::size_t, Rank> ii{static_cast<std::size_t>(idx)...};
    std::size_t off = 0;
    for (std::size_t d = 0; d < Rank; ++d) {
      MALI_ASSERT(ii[d] < extents_[d]);
      off += ii[d] * strides_[d];
    }
    return off;
  }

  template <class... Idx>
  [[nodiscard]] MALI_INLINE T& operator()(Idx... idx) const noexcept {
    return data_[offset_of(idx...)];
  }

  /// Fill every element with a value.
  void fill(const T& v) const {
    MALI_CHECK_MSG(contiguous_, "fill() on a non-contiguous window view");
    std::fill(data_.get(), data_.get() + size_, v);
  }

  /// Deep copy from another view of identical extents.
  void deep_copy_from(const View& src) const {
    MALI_CHECK(size_ == src.size_);
    MALI_CHECK_MSG(contiguous_ && src.contiguous_,
                   "deep copy on a non-contiguous window view");
    std::copy(src.data_.get(), src.data_.get() + size_, data_.get());
  }

  [[nodiscard]] bool same_data(const View& other) const noexcept {
    return data_ == other.data_;
  }

  /// Window along the leftmost (cell) extent: a view of `count` cells
  /// starting at `offset`, sharing storage with this view.  Requires
  /// LayoutLeft (cell stride 1): the window is the same strided layout with
  /// the base pointer shifted — this is how worksets slice the global
  /// FE arrays without copying (Kokkos::subview on the cell range).
  [[nodiscard]] View window(std::size_t offset, std::size_t count) const {
    static_assert(std::is_same_v<Layout, LayoutLeft>,
                  "window() requires LayoutLeft");
    MALI_CHECK(offset + count <= extents_[0]);
    View w;
    w.label_ = label_;
    w.extents_ = extents_;
    w.extents_[0] = count;
    w.strides_ = strides_;  // parent strides: the slice is not compacted
    w.size_ = size_ / extents_[0] * count;  // logical element count
    w.contiguous_ = count == extents_[0];
    // Aliasing ctor: share ownership of the parent allocation, point at
    // the window base.
    w.data_ = std::shared_ptr<T[]>(data_, data_.get() + offset);
    return w;
  }

 private:
  std::string label_;
  std::array<std::size_t, Rank> extents_{};
  std::array<std::size_t, Rank> strides_{};
  std::size_t size_ = 0;
  bool contiguous_ = true;
  std::shared_ptr<T[]> data_;
};

/// Convenience aliases in the spirit of Albany's field types.
template <class T>
using View1 = View<T, 1>;
template <class T>
using View2 = View<T, 2>;
template <class T>
using View3 = View<T, 3>;
template <class T>
using View4 = View<T, 4>;

}  // namespace mali::pk
