#pragma once
// Host/device mirror semantics — the remaining piece of the Kokkos view
// API surface Albany uses.  MiniMALI's "device" is the host, so a mirror
// is a fresh allocation of the same shape and deep_copy is an element-wise
// copy; the point is that code written against this API is source-
// compatible with the real Kokkos idioms:
//
//   auto h = pk::create_mirror_view(dev);
//   pk::deep_copy(h, dev);      // device -> host
//   ... modify h ...
//   pk::deep_copy(dev, h);      // host -> device

#include <cstddef>

#include "portability/view.hpp"

namespace mali::pk {

/// A fresh host view of the same label/extents (always a new allocation —
/// the conservative Kokkos behaviour of create_mirror()).
template <class T, std::size_t Rank, class Layout>
[[nodiscard]] View<T, Rank, Layout> create_mirror(
    const View<T, Rank, Layout>& v) {
  View<T, Rank, Layout> m = [&] {
    if constexpr (Rank == 1) {
      return View<T, Rank, Layout>(v.label() + "_mirror", v.extent(0));
    } else if constexpr (Rank == 2) {
      return View<T, Rank, Layout>(v.label() + "_mirror", v.extent(0),
                                   v.extent(1));
    } else if constexpr (Rank == 3) {
      return View<T, Rank, Layout>(v.label() + "_mirror", v.extent(0),
                                   v.extent(1), v.extent(2));
    } else if constexpr (Rank == 4) {
      return View<T, Rank, Layout>(v.label() + "_mirror", v.extent(0),
                                   v.extent(1), v.extent(2), v.extent(3));
    } else if constexpr (Rank == 5) {
      return View<T, Rank, Layout>(v.label() + "_mirror", v.extent(0),
                                   v.extent(1), v.extent(2), v.extent(3),
                                   v.extent(4));
    } else {
      return View<T, Rank, Layout>(v.label() + "_mirror", v.extent(0),
                                   v.extent(1), v.extent(2), v.extent(3),
                                   v.extent(4), v.extent(5));
    }
  }();
  return m;
}

/// Host and device share a memory space here, so the mirror *view* is the
/// view itself (zero-copy), exactly like Kokkos on a host-only build.
template <class T, std::size_t Rank, class Layout>
[[nodiscard]] View<T, Rank, Layout> create_mirror_view(
    const View<T, Rank, Layout>& v) {
  return v;
}

/// Element-wise copy between views of identical extents.
template <class T, std::size_t Rank, class Layout>
void deep_copy(const View<T, Rank, Layout>& dst,
               const View<T, Rank, Layout>& src) {
  if (dst.same_data(src)) return;  // mirror_view alias: nothing to do
  dst.deep_copy_from(src);
}

/// Fill overload, mirroring Kokkos::deep_copy(view, value).
template <class T, std::size_t Rank, class Layout>
void deep_copy(const View<T, Rank, Layout>& dst, const T& value) {
  dst.fill(value);
}

}  // namespace mali::pk
