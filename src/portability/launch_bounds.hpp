#pragma once
// Launch-bounds hints, mirroring Kokkos::LaunchBounds<MaxThreads,MinBlocks>.
//
// On a real GPU these bound the compiler's register budget and the runtime's
// block size.  In MiniMALI they are consumed by the gpusim register-allocation
// and occupancy models (Table II of the paper); on the CPU backends they only
// influence the work-chunking of the thread pool.

#include <cstddef>

namespace mali::pk {

/// Compile-time launch bounds, as used in Kokkos execution policies.
template <unsigned MaxThreads = 0, unsigned MinBlocks = 0>
struct LaunchBounds {
  static constexpr unsigned max_threads = MaxThreads;
  static constexpr unsigned min_blocks = MinBlocks;
};

/// Runtime representation of a kernel-launch configuration.
///
/// `max_threads == 0` means "vendor default": the paper reports Kokkos
/// defaults of 256 threads/block for the Jacobian and 1024 for the Residual
/// on MI250X, and 128 on A100.
struct LaunchConfig {
  unsigned max_threads = 0;
  unsigned min_blocks = 0;

  [[nodiscard]] constexpr bool is_default() const noexcept {
    return max_threads == 0;
  }
  friend constexpr bool operator==(const LaunchConfig&,
                                   const LaunchConfig&) = default;
};

template <class LB>
constexpr LaunchConfig to_launch_config() noexcept {
  return LaunchConfig{LB::max_threads, LB::min_blocks};
}

}  // namespace mali::pk
