#pragma once
// pk::simd — explicit SIMD lane layer for element-batched kernels.
//
// A pack `simd<double, W>` holds W lane-variables; the assembly hot path
// batches W *elements* per pack so every scalar register of the scalar
// kernel (un, g, mu, strs, ...) becomes one pack register holding the same
// quantity for W neighbouring cells.  Packs are plain `T v[W]` aggregates
// with elementwise operators — GCC/Clang autovectorize the fixed-trip-count
// lane loops into SSE/AVX/NEON at -O2+, and `W = 1` degrades to scalar code
// identical to the unbatched kernel, which keeps the scalar path available
// as the bitwise reference on any architecture.
//
// Tail handling: a SimdRangePolicy of n elements dispatches ceil(n/W)
// batches; the last batch carries `n_valid < W` and kernels mask it with
// load_n/store_n (lane-count-limited moves) instead of lane masks — there
// is no masked-gather hardware dependence, so the same code is correct on
// the scalar fallback.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <type_traits>

#include "portability/common.hpp"
#include "portability/parallel.hpp"

namespace mali::pk {

// ---------------------------------------------------------------------------
// Width selection
// ---------------------------------------------------------------------------
// kSimdMaxWidth bounds the padding the workset layer must provide (allocate
// kSimdMaxWidth - 1 ghost rows past the last cell).  kSimdNativeWidth is the
// default picked by `--simd auto`; 4 doubles is the measured sweet spot for
// the fused-chain kernels on x86-64 (W=8 gains little and spills under
// baseline SSE2 codegen) and maps to one NEON pair on aarch64.
inline constexpr int kSimdMaxWidth = 8;

inline constexpr int kSimdNativeWidth =
#if defined(__AVX512F__)
    8;
#elif defined(__x86_64__) || defined(__aarch64__) || defined(__SSE2__) || \
    defined(__ALTIVEC__)
    4;
#else
    1;
#endif

/// True iff w is a width the batched kernels support.
[[nodiscard]] constexpr bool simd_width_valid(int w) noexcept {
  return w == 1 || w == 2 || w == 4 || w == 8;
}

// ---------------------------------------------------------------------------
// Pack type
// ---------------------------------------------------------------------------

template <class T, int W>
struct simd {
  static_assert(W >= 1 && W <= kSimdMaxWidth && (W & (W - 1)) == 0,
                "pack width must be a power of two in [1, kSimdMaxWidth]");
  static_assert(std::is_floating_point_v<T>, "packs hold floating-point lanes");

  using value_type = T;
  static constexpr int width = W;

  T v[W];

  simd() = default;
  MALI_INLINE explicit simd(T x) {
    for (int l = 0; l < W; ++l) v[l] = x;
  }

  [[nodiscard]] MALI_INLINE static simd zero() { return simd(T(0)); }
  [[nodiscard]] MALI_INLINE static simd broadcast(T x) { return simd(x); }

  /// Full-width load of W contiguous lanes.
  [[nodiscard]] MALI_INLINE static simd load(const T* p) {
    simd r;
    for (int l = 0; l < W; ++l) r.v[l] = p[l];
    return r;
  }

  /// Masked load: lanes [0, n) from memory, lanes [n, W) zero-filled so the
  /// dead lanes stay finite through arithmetic.
  [[nodiscard]] MALI_INLINE static simd load_n(const T* p, int n) {
    simd r;
    for (int l = 0; l < W; ++l) r.v[l] = l < n ? p[l] : T(0);
    return r;
  }

  MALI_INLINE void store(T* p) const {
    for (int l = 0; l < W; ++l) p[l] = v[l];
  }

  /// Masked store: only lanes [0, n) reach memory.
  MALI_INLINE void store_n(T* p, int n) const {
    for (int l = 0; l < W; ++l) {
      if (l < n) p[l] = v[l];
    }
  }

  [[nodiscard]] MALI_INLINE T operator[](int l) const { return v[l]; }
  [[nodiscard]] MALI_INLINE T& operator[](int l) { return v[l]; }

  MALI_INLINE simd& operator+=(const simd& o) {
    for (int l = 0; l < W; ++l) v[l] += o.v[l];
    return *this;
  }
  MALI_INLINE simd& operator-=(const simd& o) {
    for (int l = 0; l < W; ++l) v[l] -= o.v[l];
    return *this;
  }
  MALI_INLINE simd& operator*=(const simd& o) {
    for (int l = 0; l < W; ++l) v[l] *= o.v[l];
    return *this;
  }
  MALI_INLINE simd& operator/=(const simd& o) {
    for (int l = 0; l < W; ++l) v[l] /= o.v[l];
    return *this;
  }
};

template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> operator+(simd<T, W> a,
                                               const simd<T, W>& b) {
  return a += b;
}
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> operator-(simd<T, W> a,
                                               const simd<T, W>& b) {
  return a -= b;
}
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> operator*(simd<T, W> a,
                                               const simd<T, W>& b) {
  return a *= b;
}
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> operator/(simd<T, W> a,
                                               const simd<T, W>& b) {
  return a /= b;
}
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> operator-(const simd<T, W>& a) {
  simd<T, W> r;
  for (int l = 0; l < W; ++l) r.v[l] = -a.v[l];
  return r;
}

// scalar (broadcast) mixed forms
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> operator+(T a, const simd<T, W>& b) {
  return simd<T, W>(a) + b;
}
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> operator+(const simd<T, W>& a, T b) {
  return a + simd<T, W>(b);
}
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> operator-(T a, const simd<T, W>& b) {
  return simd<T, W>(a) - b;
}
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> operator-(const simd<T, W>& a, T b) {
  return a - simd<T, W>(b);
}
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> operator*(T a, const simd<T, W>& b) {
  return simd<T, W>(a) * b;
}
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> operator*(const simd<T, W>& a, T b) {
  return a * simd<T, W>(b);
}
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> operator/(const simd<T, W>& a, T b) {
  return a / simd<T, W>(b);
}
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> operator/(T a, const simd<T, W>& b) {
  return simd<T, W>(a) / b;
}

/// Fused multiply-add a*b + c (per lane; the compiler contracts to hardware
/// FMA when available, otherwise mul+add — either way lanes are independent).
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> fma(const simd<T, W>& a,
                                         const simd<T, W>& b,
                                         const simd<T, W>& c) {
  simd<T, W> r;
  for (int l = 0; l < W; ++l) r.v[l] = a.v[l] * b.v[l] + c.v[l];
  return r;
}

/// Lane mask for blend(); a plain bool array so scalar fallback is trivial.
template <int W>
struct simd_mask {
  bool m[W];

  [[nodiscard]] MALI_INLINE static simd_mask first_n(int n) {
    simd_mask r;
    for (int l = 0; l < W; ++l) r.m[l] = l < n;
    return r;
  }
  [[nodiscard]] MALI_INLINE bool operator[](int l) const { return m[l]; }
};

/// blend: lane l takes a where mask is set, b otherwise.
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> blend(const simd_mask<W>& mask,
                                           const simd<T, W>& a,
                                           const simd<T, W>& b) {
  simd<T, W> r;
  for (int l = 0; l < W; ++l) r.v[l] = mask.m[l] ? a.v[l] : b.v[l];
  return r;
}

/// Per-lane pow with a shared scalar exponent (Glen's-law viscosity).  libm
/// pow does not vectorize, so lanes are sequential scalar calls — this is
/// the measured-but-acceptable serial fraction of the batched chain.
template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> lane_pow(const simd<T, W>& a, T e) {
  simd<T, W> r;
  for (int l = 0; l < W; ++l) r.v[l] = std::pow(a.v[l], e);
  return r;
}

template <class T, int W>
[[nodiscard]] MALI_INLINE simd<T, W> lane_sqrt(const simd<T, W>& a) {
  simd<T, W> r;
  for (int l = 0; l < W; ++l) r.v[l] = std::sqrt(a.v[l]);
  return r;
}

// ---------------------------------------------------------------------------
// Batched dispatch
// ---------------------------------------------------------------------------

/// One batch handed to a batched functor: elements [begin, begin + n_valid).
/// n_valid == W except possibly for the trailing batch of a ragged range;
/// kernels take the full-width path when `full()` and mask stores with
/// store_n(..., n_valid) otherwise.
struct SimdBatch {
  std::size_t begin = 0;
  int n_valid = 0;
  int width = 0;

  [[nodiscard]] MALI_INLINE bool full() const noexcept {
    return n_valid == width;
  }
};

/// Iterates a range of n elements as ceil(n/W) width-W batches.  Batches are
/// distributed across the exec space; the batch partition is a pure function
/// of (n, W), never of the thread count, so batched results are deterministic
/// and every element belongs to exactly one batch (conflict-free writes to
/// per-cell arrays without any coloring — the colored scatter downstream is
/// unchanged).
template <int W, class ExecSpace = DefaultExec>
class SimdRangePolicy {
 public:
  static_assert(simd_width_valid(W), "unsupported SIMD width");
  using exec_space = ExecSpace;
  static constexpr int width = W;

  explicit SimdRangePolicy(std::size_t n) : n_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_batches() const noexcept {
    return (n_ + static_cast<std::size_t>(W) - 1) / static_cast<std::size_t>(W);
  }

 private:
  std::size_t n_;
};

/// Batched parallel_for: functor signature `void(const SimdBatch&)`.
template <int W, class ExecSpace, class Functor>
void parallel_for(const std::string& /*label*/,
                  const SimdRangePolicy<W, ExecSpace>& policy,
                  const Functor& f) {
  const std::size_t n = policy.size();
  const std::size_t nb = policy.num_batches();
  auto run_batch = [&f, n](std::size_t b) {
    const std::size_t begin = b * static_cast<std::size_t>(W);
    const int n_valid = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(W), n - begin));
    f(SimdBatch{begin, n_valid, W});
  };
  if constexpr (std::is_same_v<ExecSpace, Serial>) {
    for (std::size_t b = 0; b < nb; ++b) run_batch(b);
  } else {
    ThreadPool::instance().parallel_range(
        0, nb, [&run_batch](std::size_t b0, std::size_t b1) {
          for (std::size_t b = b0; b < b1; ++b) run_batch(b);
        });
  }
}

}  // namespace mali::pk
