#pragma once
// Memory layouts for multidimensional views.
//
// LayoutLeft places the leftmost index at stride 1 — the Kokkos default for
// GPU memory spaces, where the leftmost ("cell") index maps to consecutive
// threads so that a warp's simultaneous accesses coalesce.  LayoutRight is
// the C/row-major layout, the Kokkos default on host.

#include <array>
#include <cstddef>

#include "portability/common.hpp"

namespace mali::pk {

inline constexpr std::size_t kMaxRank = 6;

struct LayoutLeft {
  /// strides[d] for extents e: stride grows left-to-right.
  template <std::size_t Rank>
  static constexpr std::array<std::size_t, Rank> strides(
      const std::array<std::size_t, Rank>& e) noexcept {
    std::array<std::size_t, Rank> s{};
    std::size_t acc = 1;
    for (std::size_t d = 0; d < Rank; ++d) {
      s[d] = acc;
      acc *= e[d];
    }
    return s;
  }
};

struct LayoutRight {
  template <std::size_t Rank>
  static constexpr std::array<std::size_t, Rank> strides(
      const std::array<std::size_t, Rank>& e) noexcept {
    std::array<std::size_t, Rank> s{};
    std::size_t acc = 1;
    for (std::size_t d = Rank; d-- > 0;) {
      s[d] = acc;
      acc *= e[d];
    }
    return s;
  }
};

}  // namespace mali::pk
