#include "portability/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace mali::pk {

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool([] {
    // MALI_NUM_THREADS overrides the hardware concurrency — used by the
    // scatter bench and the sanitizer CI to exercise real parallelism even
    // on small containers (mirrors OMP_NUM_THREADS / KOKKOS_NUM_THREADS).
    if (const char* env = std::getenv("MALI_NUM_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }());
  return pool;
}

ThreadPool::ThreadPool(std::size_t n_workers) {
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    std::exception_ptr err;
    try {
      task.fn(task.begin, task.end);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_tasks(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(n);
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (std::size_t t = 0; t < n; ++t) {
    threads.emplace_back([&, t] {
      try {
        fn(t);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_range(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t n_chunks = std::min(n, std::max<std::size_t>(1, workers_.size()));
  const std::size_t chunk = (n + n_chunks - 1) / n_chunks;

  {
    std::lock_guard<std::mutex> lk(mu_);
    first_error_ = nullptr;
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::size_t b = begin + c * chunk;
      const std::size_t e = std::min(end, b + chunk);
      if (b >= e) break;
      queue_.push_back(Task{fn, b, e});
      ++pending_;
    }
  }
  cv_task_.notify_all();

  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return pending_ == 0; });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace mali::pk
