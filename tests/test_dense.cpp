// Dense linear-algebra tests: LU solves against known systems, determinant,
// inverse, singularity detection, and agreement with random references.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/dense.hpp"
#include "linalg/gmres.hpp"

using namespace mali::linalg;

TEST(DenseMatrix, IndexingAndApply) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(0, 2) = 3.0;
  a(1, 0) = 4.0;
  a(1, 1) = 5.0;
  a(1, 2) = 6.0;
  const auto y = a.apply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  EXPECT_NEAR(a.frobenius_norm(), std::sqrt(91.0), 1e-14);
}

TEST(DenseLu, SolvesKnownSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  DenseLu lu(std::move(a));
  std::vector<double> x = {5.0, 10.0};  // b
  lu.solve(x);
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
  EXPECT_NEAR(lu.determinant(), 5.0, 1e-14);
}

TEST(DenseLu, PivotingHandlesZeroLeadingEntry) {
  DenseMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  DenseLu lu(std::move(a));
  std::vector<double> x = {2.0, 3.0};
  lu.solve(x);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-14);  // permutation parity
}

TEST(DenseLu, SingularThrows) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  DenseLu lu;
  EXPECT_THROW(lu.factor(std::move(a)), mali::Error);
}

TEST(DenseLu, NonSquareThrows) {
  DenseLu lu;
  EXPECT_THROW(lu.factor(DenseMatrix(2, 3)), mali::Error);
}

TEST(DenseLu, UseBeforeFactorThrows) {
  DenseLu lu;
  std::vector<double> x = {1.0};
  EXPECT_THROW(lu.solve(x), mali::Error);
  EXPECT_THROW(lu.determinant(), mali::Error);
  EXPECT_THROW((void)lu.inverse(), mali::Error);
}

class DenseLuFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(DenseLuFuzz, RandomSolveAndInverse) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  const std::size_t n = 12;
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        a(i, j) = uni(rng);
        off += std::abs(a(i, j));
      }
    }
    a(i, i) = off + 0.5;  // well-conditioned
  }
  DenseMatrix copy = a;
  DenseLu lu(std::move(copy));

  // Solve: A x = b, check residual.
  std::vector<double> b(n), x;
  for (auto& v : b) v = uni(rng);
  x = b;
  lu.solve(x);
  const auto r = a.apply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r[i], b[i], 1e-10);

  // Inverse: A * A^{-1} = I.
  const auto inv = lu.inverse();
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<double> e(n, 0.0);
    for (std::size_t k = 0; k < n; ++k) e[k] = inv(k, c);
    const auto col = a.apply(e);
    for (std::size_t r2 = 0; r2 < n; ++r2) {
      EXPECT_NEAR(col[r2], r2 == c ? 1.0 : 0.0, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseLuFuzz, ::testing::Values(1u, 2u, 3u));

TEST(GmresHistory, MonotoneEstimatesRecorded) {
  // The per-iteration least-squares residual estimate is non-increasing.
  std::vector<std::size_t> rp{0}, cols;
  const std::size_t n = 40;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) cols.push_back(i - 1);
    cols.push_back(i);
    if (i + 1 < n) cols.push_back(i + 1);
    rp.push_back(cols.size());
  }
  CrsMatrix A(rp, cols);
  for (std::size_t i = 0; i < n; ++i) {
    A.set(i, i, 2.5);
    if (i > 0) A.set(i, i - 1, -1.0);
    if (i + 1 < n) A.set(i, i + 1, -1.0);
  }
  IdentityPreconditioner M;
  std::vector<double> b(n, 1.0), x;
  const auto r = Gmres({1e-10, 500, 100}).solve(A, M, b, x);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.history.size(), r.iterations);
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LE(r.history[i], r.history[i - 1] * (1.0 + 1e-12));
  }
  EXPECT_LT(r.history.back(), 1e-10);
}
