// Assembled-vs-matrix-free Jacobian equivalence: the per-element SFad<1>
// tangent apply (physics/matrix_free_operator.hpp) must reproduce the
// assembled CRS SpMV J x on random directions, on every configuration the
// assembled path supports.
//
// Tolerance contract: the matrix-free apply accumulates the same per-cell
// contributions as assembly but sums them in a different association
// (per-cell tangent -> scatter, instead of per-entry assembly -> row dot
// product), so entries agree to FP reassociation only.  Errors are measured
// against the row magnitude s_i = sum_j |J_ij||x_j| — the natural scale of
// the cancellation — and pinned at 1e-11, the same budget the PR-1 scatter
// suite pinned for entrywise Jacobian reassociation (observed worst case
// here is ~1e-13).
//
// Runs under TSan in CI: the threaded tangent + colored/atomic scatter is
// exercised on both exec spaces.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/linear_operator.hpp"
#include "perf/data_movement.hpp"
#include "physics/matrix_free_operator.hpp"
#include "physics/stokes_fo_problem.hpp"

using namespace mali;
using physics::ScatterMode;
using physics::StokesFOConfig;
using physics::StokesFOProblem;

namespace {

/// Reassociation budget relative to the row magnitude sum_j |J_ij||x_j|
/// (see the file header).
constexpr double kApplyTol = 1e-11;

enum class Config { kMms, kAntarctica, kThermal, kWeertman };

const char* to_string(Config c) {
  switch (c) {
    case Config::kMms: return "Mms";
    case Config::kAntarctica: return "Antarctica";
    case Config::kThermal: return "Thermal";
    case Config::kWeertman: return "Weertman";
  }
  return "?";
}

StokesFOConfig make_config(Config kind, ScatterMode mode) {
  StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  cfg.scatter = mode;
  switch (kind) {
    case Config::kMms:
      cfg.mms.enabled = true;
      break;
    case Config::kAntarctica:
      break;
    case Config::kThermal:
      cfg.thermal_viscosity = true;
      break;
    case Config::kWeertman:
      cfg.sliding.law = physics::SlidingLaw::kWeertman;
      break;
  }
  return cfg;
}

std::vector<double> random_vector(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);
  return x;
}

/// s_i = sum_j |J_ij| |x_j| — the magnitude the row's dot product sums
/// through; the cancellation scale the reassociation error lives on.
std::vector<double> row_magnitude(const linalg::CrsMatrix& J,
                                  const std::vector<double>& x) {
  std::vector<double> s(J.n_rows(), 0.0);
  for (std::size_t r = 0; r < J.n_rows(); ++r) {
    for (std::size_t k = J.row_ptr()[r]; k < J.row_ptr()[r + 1]; ++k) {
      s[r] += std::abs(J.values()[k]) * std::abs(x[J.cols()[k]]);
    }
  }
  return s;
}

void expect_apply_matches(const std::vector<double>& y_asm,
                          const std::vector<double>& y_mf,
                          const std::vector<double>& scale, double tol,
                          const char* what) {
  ASSERT_EQ(y_asm.size(), y_mf.size());
  for (std::size_t i = 0; i < y_asm.size(); ++i) {
    EXPECT_NEAR(y_asm[i], y_mf[i], tol * std::max(1.0, scale[i]))
        << what << " row " << i;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Random-direction equivalence across configs x scatter modes x exec spaces.
// ---------------------------------------------------------------------------

class OperatorEquivalence
    : public ::testing::TestWithParam<std::tuple<Config, ScatterMode>> {};

TEST_P(OperatorEquivalence, ApplyMatchesAssembledSpmv) {
  const auto [kind, mode] = GetParam();
  StokesFOProblem p(make_config(kind, mode));
  const auto U = p.analytic_initial_guess();

  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);  // also sets the Dirichlet row scale

  for (unsigned trial = 0; trial < 3; ++trial) {
    const auto x = random_vector(p.n_dofs(), 97u + trial);
    const auto s = row_magnitude(J, x);
    std::vector<double> y_asm(p.n_dofs());
    J.apply(x, y_asm);

    std::vector<double> y_ser, y_thr;
    p.apply_jacobian<pk::Serial>(U, x, y_ser);
    p.apply_jacobian<pk::Threads>(U, x, y_thr);
    expect_apply_matches(y_asm, y_ser, s, kApplyTol, "serial exec");
    expect_apply_matches(y_asm, y_thr, s, kApplyTol, "threads exec");
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigsAndModes, OperatorEquivalence,
    ::testing::Combine(::testing::Values(Config::kMms, Config::kAntarctica,
                                         Config::kThermal, Config::kWeertman),
                       ::testing::Values(ScatterMode::kSerial,
                                         ScatterMode::kColored,
                                         ScatterMode::kAtomic)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             physics::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Mesh-size sweep (the boundary-to-interior cell ratio changes with dx and
// layer count; boundary cells touch Dirichlet columns).
// ---------------------------------------------------------------------------

class OperatorMeshSweep
    : public ::testing::TestWithParam<std::pair<double, int>> {};

TEST_P(OperatorMeshSweep, ApplyMatchesAcrossMeshSizes) {
  const auto [dx_km, layers] = GetParam();
  StokesFOConfig cfg;
  cfg.dx_m = dx_km * 1e3;
  cfg.n_layers = layers;
  StokesFOProblem p(cfg);
  const auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);

  const auto x = random_vector(p.n_dofs(), 11u);
  const auto s = row_magnitude(J, x);
  std::vector<double> y_asm(p.n_dofs()), y_mf;
  J.apply(x, y_asm);
  p.apply_jacobian(U, x, y_mf);
  expect_apply_matches(y_asm, y_mf, s, kApplyTol, "mesh sweep");
}

INSTANTIATE_TEST_SUITE_P(Sizes, OperatorMeshSweep,
                         ::testing::Values(std::pair{320.0, 3},
                                           std::pair{250.0, 4},
                                           std::pair{160.0, 6}),
                         [](const auto& info) {
                           return "dx" +
                                  std::to_string(static_cast<int>(
                                      info.param.first)) +
                                  "km_l" + std::to_string(info.param.second);
                         });

// ---------------------------------------------------------------------------
// Dirichlet rows: the matrix-free apply must act as y[d] = scale * x[d],
// exactly the assembled scaled-identity row.
// ---------------------------------------------------------------------------

TEST(OperatorDirichlet, RowsActAsScaledIdentity) {
  StokesFOProblem p(make_config(Config::kMms, ScatterMode::kColored));
  const auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);
  const auto& dirichlet = p.dof_map().dirichlet_dofs();
  ASSERT_FALSE(dirichlet.empty());
  const double scale = p.dirichlet_scale();
  EXPECT_GT(scale, 0.0);

  // The assembled matrix really holds scale * I on those rows...
  for (const std::size_t d : dirichlet) {
    for (std::size_t k = J.row_ptr()[d]; k < J.row_ptr()[d + 1]; ++k) {
      const double expect = J.cols()[k] == d ? scale : 0.0;
      ASSERT_DOUBLE_EQ(J.values()[k], expect) << "row " << d;
    }
  }

  // ...and the matrix-free apply reproduces them bit-for-bit (both paths
  // compute the same product scale * x[d]).
  const auto x = random_vector(p.n_dofs(), 5u);
  std::vector<double> y;
  p.apply_jacobian(U, x, y);
  for (const std::size_t d : dirichlet) {
    EXPECT_DOUBLE_EQ(y[d], scale * x[d]) << "dof " << d;
  }
}

// The operator interface (jacobian_operator) recomputes the Dirichlet scale
// from the block-diagonal extraction; it must match the assembled value.
TEST(OperatorDirichlet, OperatorScaleMatchesAssembled) {
  StokesFOProblem p(make_config(Config::kAntarctica, ScatterMode::kColored));
  const auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);
  const double assembled_scale = p.dirichlet_scale();

  const auto op = p.jacobian_operator(U);
  // linearize() refreshed the scale from the SFad extraction.
  EXPECT_NEAR(p.dirichlet_scale() / assembled_scale, 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Operator metadata: diagonal and 2x2 block diagonal extracted matrix-free
// must match the assembled matrix's entries.
// ---------------------------------------------------------------------------

TEST(OperatorDiagonal, MatchesAssembledEntries) {
  StokesFOProblem p(make_config(Config::kAntarctica, ScatterMode::kColored));
  const auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);

  const auto op = p.jacobian_operator(U);
  ASSERT_EQ(op->rows(), p.n_dofs());
  ASSERT_EQ(op->cols(), p.n_dofs());
  EXPECT_EQ(op->matrix(), nullptr);  // matrix-free: no CRS behind it

  std::vector<double> d;
  ASSERT_TRUE(op->diagonal(d));
  ASSERT_EQ(d.size(), p.n_dofs());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_NEAR(d[i], J.diagonal(i),
                kApplyTol * std::max(1.0, std::abs(J.diagonal(i))))
        << "diag " << i;
  }

  std::vector<double> blocks;
  ASSERT_TRUE(op->block_diagonal(2, blocks));
  ASSERT_EQ(blocks.size(), 2 * p.n_dofs());
  for (std::size_t node = 0; node < p.n_dofs() / 2; ++node) {
    for (int r = 0; r < 2; ++r) {
      for (int c = 0; c < 2; ++c) {
        const double a = J.get(2 * node + r, 2 * node + c);
        const double m = blocks[node * 4 + static_cast<std::size_t>(r) * 2 +
                                static_cast<std::size_t>(c)];
        EXPECT_NEAR(m, a, kApplyTol * std::max(1.0, std::abs(a)))
            << "block " << node << " (" << r << "," << c << ")";
      }
    }
  }
  // Only the 2x2 velocity blocks are extractable matrix-free.
  std::vector<double> b4;
  EXPECT_FALSE(op->block_diagonal(4, b4));
}

// ---------------------------------------------------------------------------
// Contract edges: zero direction, aliased in/out, un-linearized operator.
// ---------------------------------------------------------------------------

TEST(OperatorContract, ZeroDirectionGivesZero) {
  StokesFOProblem p(make_config(Config::kMms, ScatterMode::kColored));
  const auto U = p.analytic_initial_guess();
  const auto op = p.jacobian_operator(U);
  std::vector<double> x(p.n_dofs(), 0.0), y(p.n_dofs(), 1.0);
  op->apply(x, y);
  for (const double v : y) EXPECT_EQ(v, 0.0);
}

TEST(OperatorContract, AliasedApplyThrows) {
  StokesFOProblem p(make_config(Config::kMms, ScatterMode::kColored));
  const auto U = p.analytic_initial_guess();
  const auto op = p.jacobian_operator(U);
  std::vector<double> x(p.n_dofs(), 0.5);
  EXPECT_THROW(op->apply(x, x), Error);
}

TEST(OperatorContract, UnlinearizedOperatorThrows) {
  StokesFOProblem p(make_config(Config::kMms, ScatterMode::kColored));
  physics::MatrixFreeStokesOperator op(p);
  std::vector<double> x(p.n_dofs(), 1.0), y;
  EXPECT_THROW(op.apply(x, y), Error);
}

// ---------------------------------------------------------------------------
// Byte model: the acceptance criterion — modeled bytes per GMRES iteration
// for the matrix-free apply strictly below the assembled SpMV stream on the
// reduced Antarctica mesh.
// ---------------------------------------------------------------------------

TEST(OperatorByteModel, MatrixFreeStreamsStrictlyFewerBytes) {
  StokesFOConfig cfg;  // reduced Antarctica
  cfg.dx_m = 64.0e3;
  cfg.n_layers = 10;
  StokesFOProblem p(cfg);

  perf::JacobianApplyModel m;
  m.n_rows = p.n_dofs();
  m.nnz = p.create_matrix().nnz();
  m.n_cells = p.mesh().n_cells();
  m.n_nodes = p.mesh().n_nodes();
  m.num_nodes = p.workset().num_nodes;
  m.n_basal_faces = p.mesh().base().n_cells();

  EXPECT_LT(m.matrix_free_stream_bytes(), m.assembled_stream_bytes());
  // The theoretical minima order the same way, and each stream dominates
  // its own minimum.
  EXPECT_LT(m.matrix_free_min_bytes(), m.assembled_min_bytes());
  EXPECT_LE(m.matrix_free_min_bytes(), m.matrix_free_stream_bytes());
  EXPECT_EQ(m.assembled_min_bytes(), m.assembled_stream_bytes());
}
