// Rank-parallel domain-decomposed solve (src/dist/, DESIGN.md §12).
//
// The headline contract: for any rank count, decomposition, and Jacobian
// mode, the converged distributed MMS solution matches the single-process
// solve within 1e-10 relative per dof.  Below that sit unit tests of the
// in-process communicator (barrier, deterministic allreduce, tagged
// send/recv, abort poisoning) and the halo exchange plans (import assigns
// ghosts, export accumulates partials back at the owners, overlap split is
// bit-identical to the blocking import).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "dist/communicator.hpp"
#include "dist/dist_solver.hpp"
#include "dist/halo_exchange.hpp"
#include "dist/subdomain.hpp"
#include "linalg/block_jacobi.hpp"
#include "linalg/gmres.hpp"
#include "linalg/pipelined_krylov.hpp"
#include "linalg/preconditioner.hpp"
#include "mesh/ice_geometry.hpp"
#include "mesh/partition.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/thread_pool.hpp"

using namespace mali;

namespace {

physics::StokesFOConfig small_mms(double dx_km = 100.0, int layers = 3) {
  physics::StokesFOConfig cfg;
  cfg.dx_m = dx_km * 1e3;
  cfg.n_layers = layers;
  cfg.mms.enabled = true;
  cfg.geometry.square_mask = true;
  return cfg;
}

nonlinear::NewtonConfig tight_newton() {
  nonlinear::NewtonConfig n;
  n.max_iters = 4;  // linear MMS operator: one step + verification slack
  n.rel_tol = 1e-12;
  n.gmres.rel_tol = 1e-12;
  n.gmres.max_iters = 4000;
  return n;
}

/// Reference single-process matrix-free solve for the equivalence checks.
std::vector<double> reference_solution(physics::StokesFOProblem& p) {
  nonlinear::NewtonConfig ncfg = tight_newton();
  ncfg.jacobian = linalg::JacobianMode::kMatrixFree;
  linalg::BlockJacobiPreconditioner M(2);
  std::vector<double> U(p.n_dofs(), 0.0);
  const auto r = nonlinear::NewtonSolver(ncfg).solve(p, M, U);
  EXPECT_TRUE(r.converged);
  return U;
}

void expect_match(const std::vector<double>& ref,
                  const std::vector<double>& got, const char* what) {
  ASSERT_EQ(ref.size(), got.size());
  double uinf = 0.0;
  for (const double v : ref) uinf = std::max(uinf, std::abs(v));
  const double tol = 1e-10 * (1.0 + uinf);
  double worst = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    worst = std::max(worst, std::abs(ref[i] - got[i]));
  }
  EXPECT_LE(worst, tol) << what << ": max |diff| = " << worst;
}

}  // namespace

// ---------------------------------------------------------------------------
// Communicator
// ---------------------------------------------------------------------------

TEST(Communicator, DeterministicAllreduceIsIdenticalOnAllRanks) {
  constexpr int kRanks = 7;
  dist::CommWorld world(kRanks);
  std::vector<double> sums(kRanks, 0.0);
  pk::ThreadPool::parallel_tasks(kRanks, [&](std::size_t r) {
    dist::Communicator comm(world, static_cast<int>(r));
    // Values chosen so naive reduction order matters in floating point.
    const double local = 1.0e16 * ((r % 2 == 0) ? 1.0 : -1.0) +
                         static_cast<double>(r) * 1e-3;
    sums[r] = comm.allreduce_sum(local);
  });
  for (int r = 1; r < kRanks; ++r) {
    EXPECT_EQ(sums[0], sums[static_cast<std::size_t>(r)])
        << "allreduce must be BIT-identical across ranks";
  }
}

TEST(Communicator, VectorAllreduceAndBarrier) {
  constexpr int kRanks = 4;
  dist::CommWorld world(kRanks);
  std::vector<std::vector<double>> out(kRanks);
  pk::ThreadPool::parallel_tasks(kRanks, [&](std::size_t r) {
    dist::Communicator comm(world, static_cast<int>(r));
    const std::vector<double> local{static_cast<double>(r), 1.0};
    for (int it = 0; it < 3; ++it) comm.barrier();
    out[r] = comm.allreduce_sum(local);
  });
  for (int r = 0; r < kRanks; ++r) {
    ASSERT_EQ(out[static_cast<std::size_t>(r)].size(), 2u);
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)][0], 0.0 + 1 + 2 + 3);
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)][1], 4.0);
  }
}

TEST(Communicator, TaggedSendRecvIsFifoPerTag) {
  dist::CommWorld world(2);
  std::vector<double> got;
  pk::ThreadPool::parallel_tasks(2, [&](std::size_t r) {
    dist::Communicator comm(world, static_cast<int>(r));
    if (r == 0) {
      comm.send(1, /*tag=*/3, {1.0});
      comm.send(1, /*tag=*/5, {2.0});
      comm.send(1, /*tag=*/3, {3.0});
    } else {
      const auto a = comm.recv(0, 3);
      const auto b = comm.recv(0, 5);
      const auto c = comm.recv(0, 3);
      got = {a[0], b[0], c[0]};
    }
  });
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Communicator, AbortPoisonsBlockedCollectives) {
  constexpr int kRanks = 3;
  dist::CommWorld world(kRanks);
  std::atomic<int> aborted{0};
  pk::ThreadPool::parallel_tasks(kRanks, [&](std::size_t r) {
    dist::Communicator comm(world, static_cast<int>(r));
    try {
      if (r == 0) {
        world.abort();  // never enters the barrier
      } else {
        comm.barrier();  // would deadlock without poisoning
      }
    } catch (const dist::CommAborted&) {
      ++aborted;
    }
  });
  EXPECT_EQ(aborted.load(), kRanks - 1)
      << "every blocked rank must unwind via CommAborted";
}

TEST(Communicator, BatchedAllreduceMatchesScalarLoopAndCountsOneCollective) {
  // allreduce_n is the message-count lever the pipelined solvers pull: n
  // partials ride one collective.  Per value the rank-ordered combine is
  // the same as n scalar rounds, so results must agree BITWISE — and the
  // counters must show 1 collective/n values vs n collectives/n values.
  constexpr int kRanks = 4;
  constexpr std::size_t kN = 5;
  dist::CommWorld world(kRanks);
  std::vector<std::vector<double>> batched(kRanks), scalar(kRanks);
  std::vector<dist::CommCounters> after_batch(kRanks), after_scalar(kRanks);
  pk::ThreadPool::parallel_tasks(kRanks, [&](std::size_t r) {
    dist::Communicator comm(world, static_cast<int>(r));
    // Magnitude-staggered values so a different reduction order would
    // change the floating-point result.
    std::vector<double> local(kN);
    for (std::size_t k = 0; k < kN; ++k) {
      local[k] = std::pow(10.0, static_cast<double>(r) * 4.0 - 8.0) +
                 static_cast<double>(k) * 1e-7;
    }
    comm.reset_counters();
    batched[r] = comm.allreduce_n(local);
    after_batch[r] = comm.counters();
    scalar[r].resize(kN);
    for (std::size_t k = 0; k < kN; ++k) {
      scalar[r][k] = comm.allreduce_sum(local[k]);
    }
    after_scalar[r] = comm.counters();
  });
  for (int r = 0; r < kRanks; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    ASSERT_EQ(batched[ur].size(), kN);
    for (std::size_t k = 0; k < kN; ++k) {
      EXPECT_EQ(batched[ur][k], scalar[ur][k])
          << "rank " << r << " value " << k
          << ": batched combine must be bit-identical to the scalar path";
    }
    EXPECT_EQ(after_batch[ur].allreduces, 1u);
    EXPECT_EQ(after_batch[ur].reduced_values, kN);
    EXPECT_EQ(after_scalar[ur].allreduces, 1u + kN);
    EXPECT_EQ(after_scalar[ur].reduced_values, 2u * kN);
  }
}

TEST(Communicator, SplitPhaseAllreduceMatchesBlockingWithTrafficInFlight) {
  // post/finish is blocking allreduce_n cut in two: between the halves a
  // rank may run arbitrary point-to-point traffic (that is the overlap the
  // pipelined solvers exploit).  The combined value must still be
  // bit-identical, and the collective must be counted exactly once.
  constexpr int kRanks = 3;
  dist::CommWorld world(kRanks);
  std::vector<std::vector<double>> blocking(kRanks), split(kRanks);
  std::vector<std::vector<double>> echoed(kRanks);
  std::vector<dist::CommCounters> counts(kRanks);
  pk::ThreadPool::parallel_tasks(kRanks, [&](std::size_t r) {
    dist::Communicator comm(world, static_cast<int>(r));
    const std::vector<double> local{1.0e12 * static_cast<double>(r) + 0.5,
                                    -3.0e-9 * static_cast<double>(r + 1)};
    blocking[r] = comm.allreduce_n(local);
    comm.reset_counters();
    comm.allreduce_post(local);
    // Point-to-point ring traffic while the reduction is pending.
    const int next = (static_cast<int>(r) + 1) % kRanks;
    const int prev = (static_cast<int>(r) + kRanks - 1) % kRanks;
    comm.send(next, /*tag=*/77, {static_cast<double>(r)});
    echoed[r] = comm.recv(prev, /*tag=*/77);
    split[r] = comm.allreduce_finish();
    counts[r] = comm.counters();
  });
  for (int r = 0; r < kRanks; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    EXPECT_EQ(split[ur], blocking[ur])
        << "rank " << r << ": split-phase combine must match blocking";
    ASSERT_EQ(echoed[ur].size(), 1u);
    EXPECT_EQ(echoed[ur][0],
              static_cast<double>((r + kRanks - 1) % kRanks));
    EXPECT_EQ(counts[ur].allreduces, 1u);
    EXPECT_EQ(counts[ur].reduced_values, 2u);
    EXPECT_EQ(counts[ur].sends, 1u);
    EXPECT_EQ(counts[ur].recvs, 1u);
  }
}

TEST(Communicator, DistInnerProductBatchAndSplitPhaseMatchScalarDots) {
  // The DistInnerProduct reduces owned-dof partials; its dot_batch and
  // post/finish paths must be bit-identical to a loop of scalar dots, and
  // the batch must cost exactly one collective.
  constexpr int kRanks = 3;
  constexpr std::size_t kN = 31;
  dist::CommWorld world(kRanks);
  // Disjoint round-robin ownership covering every dof.
  std::vector<std::vector<std::size_t>> owned(kRanks);
  for (std::size_t d = 0; d < kN; ++d) {
    owned[d % kRanks].push_back(d);
  }
  std::vector<double> x(kN), y(kN), z(kN);
  for (std::size_t d = 0; d < kN; ++d) {
    x[d] = std::sin(static_cast<double>(d) + 0.3) * 1e8;
    y[d] = std::cos(0.7 * static_cast<double>(d)) * 1e-8;
    z[d] = static_cast<double>(d % 7) - 3.0;
  }
  std::vector<std::vector<double>> via_dot(kRanks), via_batch(kRanks),
      via_split(kRanks);
  std::vector<dist::CommCounters> counts(kRanks);
  pk::ThreadPool::parallel_tasks(kRanks, [&](std::size_t r) {
    dist::Communicator comm(world, static_cast<int>(r));
    const dist::DistInnerProduct ip(comm, owned[r]);
    const std::vector<linalg::DotPair> pairs{{&x, &y}, {&x, &z}, {&y, &y}};
    via_dot[r] = {ip.dot(x, y), ip.dot(x, z), ip.dot(y, y)};
    comm.reset_counters();
    ip.dot_batch(pairs, via_batch[r]);
    counts[r] = comm.counters();
    linalg::InnerProduct::Pending pending;
    ip.post(pairs, pending);
    ip.finish(pending, via_split[r]);
  });
  for (int r = 0; r < kRanks; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    EXPECT_EQ(via_batch[ur], via_dot[ur]) << "rank " << r;
    EXPECT_EQ(via_split[ur], via_dot[ur]) << "rank " << r;
    EXPECT_EQ(via_dot[ur], via_dot[0])
        << "reductions must agree across ranks bitwise";
    EXPECT_EQ(counts[ur].allreduces, 1u);
    EXPECT_EQ(counts[ur].reduced_values, 3u);
  }
}

TEST(Communicator, OneAllreducePerPipelinedGmresIterationAtTwoRanks) {
  // The acceptance criterion, measured: a replicated system solved on two
  // ranks through the DistInnerProduct.  Pipelined GMRES must issue
  // exactly ONE collective per iteration plus the three cycle constants
  // (||b||, restart beta norm, true-residual confirm); classic GMRES pays
  // j+3 scalar collectives at Arnoldi step j.  Iterates stay bit-identical
  // across ranks because every branch hangs off the same reduced values.
  constexpr int kRanks = 2;
  const std::size_t n = 120;
  linalg::CrsMatrix A = [&] {
    std::vector<std::size_t> rp{0}, cols;
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) cols.push_back(i - 1);
      cols.push_back(i);
      if (i + 1 < n) cols.push_back(i + 1);
      rp.push_back(cols.size());
    }
    linalg::CrsMatrix m(rp, cols);
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) m.set(i, i - 1, -1.4);
      m.set(i, i, 3.1);
      if (i + 1 < n) m.set(i, i + 1, -0.6);
    }
    return m;
  }();
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = std::sin(static_cast<double>(i) * 0.13) + 0.2;
  }
  linalg::JacobiPreconditioner M;
  M.compute(A);

  // Disjoint halves: rank 0 owns [0, n/2), rank 1 owns [n/2, n).
  std::vector<std::vector<std::size_t>> owned(kRanks);
  for (std::size_t d = 0; d < n; ++d) owned[d < n / 2 ? 0 : 1].push_back(d);

  for (const bool pipelined : {false, true}) {
    dist::CommWorld world(kRanks);
    std::vector<std::vector<double>> x(kRanks);
    std::vector<linalg::GmresResult> res(kRanks);
    std::vector<dist::CommCounters> counts(kRanks);
    pk::ThreadPool::parallel_tasks(kRanks, [&](std::size_t r) {
      dist::Communicator comm(world, static_cast<int>(r));
      const dist::DistInnerProduct ip(comm, owned[r]);
      linalg::GmresConfig gc;
      gc.rel_tol = 1e-8;
      gc.max_iters = 400;
      gc.restart = 200;
      gc.inner = &ip;
      comm.reset_counters();
      res[r] = pipelined
                   ? linalg::PipelinedGmres(gc).solve(A, M, b, x[r])
                   : linalg::Gmres(gc).solve(A, M, b, x[r]);
      counts[r] = comm.counters();
    });
    ASSERT_TRUE(res[0].converged);
    ASSERT_LT(res[0].iterations, 200u) << "count pins assume a single cycle";
    EXPECT_EQ(x[0], x[1]) << "iterates must be bit-identical across ranks";
    const std::size_t it = res[0].iterations;
    for (int r = 0; r < kRanks; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      EXPECT_EQ(res[ur].iterations, it);
      if (pipelined) {
        EXPECT_EQ(counts[ur].allreduces, it + 3u)
            << "pipelined GMRES: 1 fused collective per iteration + 3 "
               "cycle-constant norms";
      } else {
        // sum_{j=0}^{it-1} (j+3) MGS collectives + the same 3 constants.
        EXPECT_EQ(counts[ur].allreduces, it * (it + 5u) / 2u + 3u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// HaloExchange
// ---------------------------------------------------------------------------

namespace {

struct HaloFixture {
  mesh::IceGeometry geom{};
  mesh::QuadGrid grid{geom, mesh::QuadGridConfig{150.0e3}};
};

}  // namespace

TEST(HaloExchange, ImportAssignsExactlyTheGhostEntries) {
  HaloFixture f;
  constexpr int kRanks = 4;
  constexpr std::size_t kLevels = 3;
  const auto part = mesh::partition_strips(f.grid, kRanks);
  const std::size_t n = f.grid.n_nodes() * kLevels * 2;
  dist::CommWorld world(kRanks);
  std::vector<std::vector<double>> xs(kRanks);
  pk::ThreadPool::parallel_tasks(kRanks, [&](std::size_t r) {
    dist::Communicator comm(world, static_cast<int>(r));
    dist::HaloExchange halo(comm, part, static_cast<int>(r), kLevels, 2, 0);
    // Owned entries get a rank-independent function of the global index;
    // everything else is poisoned with a rank-dependent marker.
    std::vector<double> x(n, 1000.0 + static_cast<double>(r));
    for (const std::size_t col :
         part.owned_column_ids[static_cast<std::size_t>(r)]) {
      for (std::size_t l = 0; l < kLevels; ++l) {
        for (std::size_t c = 0; c < 2; ++c) {
          const std::size_t i = (col * kLevels + l) * 2 + c;
          x[i] = std::sin(static_cast<double>(i));
        }
      }
    }
    halo.import_ghosts(x);
    xs[r] = std::move(x);
  });
  for (int r = 0; r < kRanks; ++r) {
    const auto rs = static_cast<std::size_t>(r);
    for (const std::size_t col : part.ghost_column_ids[rs]) {
      for (std::size_t l = 0; l < kLevels; ++l) {
        for (std::size_t c = 0; c < 2; ++c) {
          const std::size_t i = (col * kLevels + l) * 2 + c;
          EXPECT_EQ(xs[rs][i], std::sin(static_cast<double>(i)))
              << "ghost entry must carry the owner's value";
        }
      }
    }
  }
}

TEST(HaloExchange, ExportAddCompletesPartialSumsAtOwners) {
  HaloFixture f;
  constexpr int kRanks = 3;
  constexpr std::size_t kLevels = 2;
  const auto part = mesh::partition_strips(f.grid, kRanks);
  const std::size_t n = f.grid.n_nodes() * kLevels * 2;
  dist::CommWorld world(kRanks);
  std::vector<std::vector<double>> fs(kRanks);
  pk::ThreadPool::parallel_tasks(kRanks, [&](std::size_t r) {
    dist::Communicator comm(world, static_cast<int>(r));
    dist::HaloExchange halo(comm, part, static_cast<int>(r), kLevels, 2, 0);
    // Each rank deposits 1.0 on every local (owned + ghost) entry.
    std::vector<double> F(n, 0.0);
    const auto rs = static_cast<std::size_t>(r);
    for (const std::size_t col : part.local_columns[rs]) {
      for (std::size_t l = 0; l < kLevels; ++l) {
        for (std::size_t c = 0; c < 2; ++c) {
          F[(col * kLevels + l) * 2 + c] = 1.0;
        }
      }
    }
    halo.export_add(F);
    fs[r] = std::move(F);
  });
  // After the export, each owner's entry equals the number of parts whose
  // local set contains the column.
  for (int r = 0; r < kRanks; ++r) {
    const auto rs = static_cast<std::size_t>(r);
    for (const std::size_t col : part.owned_column_ids[rs]) {
      int holders = 0;
      for (int q = 0; q < kRanks; ++q) {
        const auto& lc = part.local_columns[static_cast<std::size_t>(q)];
        if (std::find(lc.begin(), lc.end(), col) != lc.end()) ++holders;
      }
      EXPECT_EQ(fs[rs][col * kLevels * 2], static_cast<double>(holders));
    }
  }
}

// ---------------------------------------------------------------------------
// Distributed residual protocol
// ---------------------------------------------------------------------------

TEST(DistResidual, MatchesSerialAndOverlapIsBitIdentical) {
  physics::StokesFOProblem problem(small_mms());
  const std::size_t n = problem.n_dofs();
  // A non-trivial state: the exact MMS field plus a smooth perturbation.
  std::vector<double> U = problem.mms_exact();
  for (std::size_t i = 0; i < n; ++i) {
    U[i] += 0.01 * std::sin(0.1 * static_cast<double>(i));
  }
  std::vector<double> F_serial;
  problem.residual(U, F_serial);

  for (const int ranks : {2, 4}) {
    const auto part = dist::make_partition(problem.mesh().base(), ranks,
                                           dist::Decomp::kStrips);
    for (const bool overlap : {false, true}) {
      dist::CommWorld world(ranks);
      std::vector<double> F(n, 0.0);
      pk::ThreadPool::parallel_tasks(
          static_cast<std::size_t>(ranks), [&](std::size_t r) {
            dist::Communicator comm(world, static_cast<int>(r));
            dist::Subdomain sub(problem, part, static_cast<int>(r));
            dist::HaloExchange halo_dof(comm, part, static_cast<int>(r),
                                        problem.mesh().levels(), 2, 0);
            dist::HaloExchange halo_blk(comm, part, static_cast<int>(r),
                                        problem.mesh().levels(), 4, 8);
            dist::RankContext ctx;
            dist::RankStokesProblem rp(sub, halo_dof, halo_blk, comm,
                                       linalg::JacobianMode::kMatrixFree,
                                       overlap, ctx);
            std::vector<double> Fr;
            rp.residual(U, Fr);
            comm.barrier();
            for (const std::size_t d : sub.owned_dofs()) F[d] = Fr[d];
          });
      // The serial problem scales Dirichlet rows by its own mean-|diag|;
      // the dist run agrees on a collectively-computed scale that can
      // differ, so compare non-Dirichlet rows exactly and Dirichlet rows
      // up to the scale ratio (both are scale * (U - g)).
      double worst = 0.0;
      for (std::size_t d = 0; d < n; ++d) {
        if (problem.dof_map().is_dirichlet_dof(d)) continue;
        worst = std::max(worst, std::abs(F[d] - F_serial[d]));
      }
      double fnorm = 0.0;
      for (const double v : F_serial) fnorm = std::max(fnorm, std::abs(v));
      EXPECT_LE(worst, 1e-10 * (1.0 + fnorm))
          << "ranks=" << ranks << " overlap=" << overlap;

      if (!overlap) continue;
      // Overlap on/off must be BIT-identical: rerun with overlap=false in
      // the same decomposition and compare exactly.
      dist::CommWorld world2(ranks);
      std::vector<double> F2(n, 0.0);
      pk::ThreadPool::parallel_tasks(
          static_cast<std::size_t>(ranks), [&](std::size_t r) {
            dist::Communicator comm(world2, static_cast<int>(r));
            dist::Subdomain sub(problem, part, static_cast<int>(r));
            dist::HaloExchange halo_dof(comm, part, static_cast<int>(r),
                                        problem.mesh().levels(), 2, 0);
            dist::HaloExchange halo_blk(comm, part, static_cast<int>(r),
                                        problem.mesh().levels(), 4, 8);
            dist::RankContext ctx;
            dist::RankStokesProblem rp(sub, halo_dof, halo_blk, comm,
                                       linalg::JacobianMode::kMatrixFree,
                                       /*overlap=*/false, ctx);
            std::vector<double> Fr;
            rp.residual(U, Fr);
            comm.barrier();
            for (const std::size_t d : sub.owned_dofs()) F2[d] = Fr[d];
          });
      for (std::size_t d = 0; d < n; ++d) {
        ASSERT_EQ(F[d], F2[d])
            << "overlap must not change a single bit (dof " << d << ")";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Full solve equivalence: the acceptance matrix
//   N in {1, 2, 4, 7} x {strips, blocks} x {assembled, matrix-free}
// ---------------------------------------------------------------------------

namespace {

void check_solve(const physics::StokesFOProblem& problem,
                 const std::vector<double>& ref, int ranks,
                 dist::Decomp decomp, linalg::JacobianMode mode,
                 bool overlap = false,
                 linalg::KrylovKind krylov = linalg::KrylovKind::kGmres) {
  dist::DistConfig cfg;
  cfg.ranks = ranks;
  cfg.decomp = decomp;
  cfg.jacobian = mode;
  cfg.overlap = overlap;
  cfg.newton = tight_newton();
  cfg.krylov = krylov;
  const auto res = dist::solve_distributed(problem, cfg);
  EXPECT_TRUE(res.converged)
      << "ranks=" << ranks << " " << dist::to_string(decomp) << " "
      << linalg::to_string(krylov);
  ASSERT_EQ(res.ranks.size(), static_cast<std::size_t>(ranks));
  std::string what = std::string(dist::to_string(decomp)) + "/" +
                     (mode == linalg::JacobianMode::kAssembled ? "assembled"
                                                               : "mf") +
                     "/" + linalg::to_string(krylov) +
                     "/ranks=" + std::to_string(ranks);
  expect_match(ref, res.U, what.c_str());
}

}  // namespace

TEST(DistSolve, MatrixFreeMatchesSerialAcrossRanksStrips) {
  physics::StokesFOProblem problem(small_mms());
  const auto ref = reference_solution(problem);
  for (const int ranks : {1, 2, 4, 7}) {
    check_solve(problem, ref, ranks, dist::Decomp::kStrips,
                linalg::JacobianMode::kMatrixFree);
  }
}

TEST(DistSolve, MatrixFreeMatchesSerialAcrossRanksBlocks) {
  physics::StokesFOProblem problem(small_mms());
  const auto ref = reference_solution(problem);
  for (const int ranks : {2, 4, 7}) {
    check_solve(problem, ref, ranks, dist::Decomp::kBlocks,
                linalg::JacobianMode::kMatrixFree);
  }
}

TEST(DistSolve, AssembledMatchesSerialAcrossRanks) {
  physics::StokesFOProblem problem(small_mms());
  const auto ref = reference_solution(problem);
  for (const int ranks : {1, 2, 4, 7}) {
    check_solve(problem, ref, ranks, dist::Decomp::kStrips,
                linalg::JacobianMode::kAssembled);
  }
  check_solve(problem, ref, 4, dist::Decomp::kBlocks,
              linalg::JacobianMode::kAssembled);
}

TEST(DistSolve, OverlapSolveMatchesToo) {
  physics::StokesFOProblem problem(small_mms());
  const auto ref = reference_solution(problem);
  check_solve(problem, ref, 4, dist::Decomp::kStrips,
              linalg::JacobianMode::kMatrixFree, /*overlap=*/true);
  check_solve(problem, ref, 4, dist::Decomp::kBlocks,
              linalg::JacobianMode::kAssembled, /*overlap=*/true);
}

// ---------------------------------------------------------------------------
// Pipelined-Krylov equivalence: the same acceptance matrix with the fused
// single-reduction GMRES inside Newton.  The contract is unchanged — the
// converged distributed solution matches the serial reference within 1e-10
// relative per dof — because pipelining only restructures the reductions,
// never the mathematics the convergence test hangs off.
// ---------------------------------------------------------------------------

TEST(DistSolve, PipelinedMatrixFreeMatchesSerialAcrossRanksStrips) {
  physics::StokesFOProblem problem(small_mms());
  const auto ref = reference_solution(problem);
  for (const int ranks : {1, 2, 4, 7}) {
    check_solve(problem, ref, ranks, dist::Decomp::kStrips,
                linalg::JacobianMode::kMatrixFree, /*overlap=*/false,
                linalg::KrylovKind::kPipeGmres);
  }
}

TEST(DistSolve, PipelinedMatrixFreeMatchesSerialAcrossRanksBlocks) {
  physics::StokesFOProblem problem(small_mms());
  const auto ref = reference_solution(problem);
  for (const int ranks : {2, 4, 7}) {
    check_solve(problem, ref, ranks, dist::Decomp::kBlocks,
                linalg::JacobianMode::kMatrixFree, /*overlap=*/false,
                linalg::KrylovKind::kPipeGmres);
  }
}

TEST(DistSolve, PipelinedAssembledMatchesSerialAcrossRanks) {
  physics::StokesFOProblem problem(small_mms());
  const auto ref = reference_solution(problem);
  for (const int ranks : {1, 2, 4, 7}) {
    check_solve(problem, ref, ranks, dist::Decomp::kStrips,
                linalg::JacobianMode::kAssembled, /*overlap=*/false,
                linalg::KrylovKind::kPipeGmres);
  }
  check_solve(problem, ref, 4, dist::Decomp::kBlocks,
              linalg::JacobianMode::kAssembled, /*overlap=*/false,
              linalg::KrylovKind::kPipeGmres);
}

TEST(DistSolve, PipelinedOverlapSolveIsBitIdenticalToNonOverlap) {
  // With pipelining the reduction and the halo'd operator apply run
  // concurrently — but the combine stays rank-ordered and the overlap
  // split was proven bit-identical at the residual level, so the FULL
  // solve must not differ by a single bit either.
  physics::StokesFOProblem problem(small_mms());
  const auto ref = reference_solution(problem);

  auto run = [&](bool overlap) {
    dist::DistConfig cfg;
    cfg.ranks = 4;
    cfg.decomp = dist::Decomp::kStrips;
    cfg.jacobian = linalg::JacobianMode::kMatrixFree;
    cfg.overlap = overlap;
    cfg.newton = tight_newton();
    cfg.krylov = linalg::KrylovKind::kPipeGmres;
    const auto res = dist::solve_distributed(problem, cfg);
    EXPECT_TRUE(res.converged) << "overlap=" << overlap;
    return res.U;
  };
  const auto U_block = run(false);
  const auto U_over = run(true);
  ASSERT_EQ(U_block.size(), U_over.size());
  for (std::size_t d = 0; d < U_block.size(); ++d) {
    ASSERT_EQ(U_block[d], U_over[d])
        << "overlap changed dof " << d << " — scheduling leaked into math";
  }
  expect_match(ref, U_over, "pipelined overlap, 4 strips");
}

TEST(DistSolve, NonlinearDomeProblemMatchesSerial) {
  // Full Glen-law nonlinearity + basal friction (no MMS shortcut): the
  // distributed Newton trajectory must land on the serial fixed point.
  physics::StokesFOConfig cfg;
  cfg.dx_m = 150.0e3;
  cfg.n_layers = 3;
  physics::StokesFOProblem problem(cfg);

  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 12;
  ncfg.rel_tol = 1e-11;
  ncfg.gmres.rel_tol = 1e-11;
  ncfg.gmres.max_iters = 4000;
  ncfg.jacobian = linalg::JacobianMode::kMatrixFree;
  linalg::BlockJacobiPreconditioner M(2);
  std::vector<double> ref(problem.n_dofs(), 0.0);
  const auto r = nonlinear::NewtonSolver(ncfg).solve(problem, M, ref);
  ASSERT_TRUE(r.converged);

  dist::DistConfig dcfg;
  dcfg.ranks = 4;
  dcfg.decomp = dist::Decomp::kBlocks;
  dcfg.newton = ncfg;
  const auto res = dist::solve_distributed(problem, dcfg);
  EXPECT_TRUE(res.converged);
  expect_match(ref, res.U, "nonlinear dome, 4 blocks");
}

TEST(DistSolve, ReportsAreFilledAndHalosActive) {
  physics::StokesFOProblem problem(small_mms());
  dist::DistConfig cfg;
  cfg.ranks = 4;
  cfg.newton = tight_newton();
  const auto res = dist::solve_distributed(problem, cfg);
  ASSERT_EQ(res.ranks.size(), 4u);
  std::size_t cells = 0;
  for (const auto& rep : res.ranks) {
    cells += rep.owned_cells;
    EXPECT_GT(rep.total_s, 0.0);
    EXPECT_GT(rep.kernel_s, 0.0);
    EXPECT_GT(rep.n_neighbors, 0);
    EXPECT_GT(rep.halo.exchanges, 0u);
    EXPECT_GT(rep.halo.bytes_sent, 0u);
    EXPECT_EQ(rep.newton.converged, res.converged);
  }
  EXPECT_EQ(cells, problem.mesh().base().n_cells());
}

TEST(DistSolve, InitialGuessSeedIsHonored) {
  // Seeding with the converged solution must converge immediately (the
  // first residual already meets the relative tolerance).
  physics::StokesFOProblem problem(small_mms());
  dist::DistConfig cfg;
  cfg.ranks = 2;
  cfg.newton = tight_newton();
  const auto first = dist::solve_distributed(problem, cfg);
  ASSERT_TRUE(first.converged);
  // The seeded run's initial norm IS the converged norm, so the relative
  // test can never re-trigger; give it an absolute tolerance just above
  // the first run's converged residual and expect zero Newton steps.
  dist::DistConfig cfg2 = cfg;
  cfg2.newton.abs_tol = std::max(1e-12, 10.0 * first.residual_norm);
  const auto second = dist::solve_distributed(problem, cfg2, &first.U);
  EXPECT_TRUE(second.converged);
  EXPECT_EQ(second.newton_iters, 0);
}

TEST(DistSolve, RankFailurePropagatesWithoutDeadlock) {
  // n_parts > n_cells triggers the partition guard inside
  // solve_distributed before any rank spawns — and must throw, not hang.
  physics::StokesFOProblem problem(small_mms(400.0, 2));
  dist::DistConfig cfg;
  cfg.ranks = 100000;
  EXPECT_THROW((void)dist::solve_distributed(problem, cfg),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Comm guards: integrity checks and bounded waits (DESIGN.md §16).  The
// guard contract has two halves — a dead or straggling peer surfaces as a
// TYPED CommFaultError instead of a hang, and arming the guards on a clean
// run changes nothing, not even a bit.
// ---------------------------------------------------------------------------

TEST(CommGuards, BoundedRecvTimesOutTypedInsteadOfHanging) {
  dist::CommWorld world(2);
  dist::CommGuardConfig g;
  g.timeout_s = 0.02;
  world.set_guards(g);
  resilience::CommFault seen;
  pk::ThreadPool::parallel_tasks(2, [&](std::size_t r) {
    dist::Communicator comm(world, static_cast<int>(r));
    if (r == 0) return;  // dead peer: the promised message never arrives
    try {
      (void)comm.recv(0, /*tag=*/7);
      ADD_FAILURE() << "recv from a dead peer must not return";
    } catch (const resilience::CommFaultError& e) {
      seen = e.fault();
    }
  });
  EXPECT_EQ(seen.type, resilience::CommFaultType::kTimeout);
  EXPECT_EQ(seen.site, resilience::CommSite::kHaloRecv);
  EXPECT_EQ(seen.rank, 1);
}

TEST(CommGuards, BoundedBarrierTimesOutTyped) {
  dist::CommWorld world(2);
  dist::CommGuardConfig g;
  g.timeout_s = 0.02;
  world.set_guards(g);
  resilience::CommFault seen;
  pk::ThreadPool::parallel_tasks(2, [&](std::size_t r) {
    dist::Communicator comm(world, static_cast<int>(r));
    if (r == 0) return;  // never arrives at the barrier
    try {
      comm.barrier();
      ADD_FAILURE() << "barrier with a dead peer must not complete";
    } catch (const resilience::CommFaultError& e) {
      seen = e.fault();
    }
  });
  EXPECT_EQ(seen.type, resilience::CommFaultType::kTimeout);
  EXPECT_EQ(seen.site, resilience::CommSite::kBarrier);
}

TEST(CommGuards, ChecksumCatchesInFlightCorruption) {
  dist::CommWorld world(2);
  dist::CommGuardConfig g;
  g.checksums = true;
  g.timeout_s = 0.5;  // bounded so a miswired test fails, not hangs
  world.set_guards(g);
  resilience::CommFault seen;
  pk::ThreadPool::parallel_tasks(2, [&](std::size_t r) {
    if (r == 0) {
      // The corrupt flag perturbs the payload AFTER the frame was computed
      // — exactly an in-flight flip.
      world.send(0, 1, /*tag=*/3, {1.0, 2.0, 3.0}, /*corrupt=*/true);
      return;
    }
    try {
      (void)world.recv(0, 1, 3);
      ADD_FAILURE() << "corrupted frame must not verify";
    } catch (const resilience::CommFaultError& e) {
      seen = e.fault();
    }
  });
  EXPECT_EQ(seen.type, resilience::CommFaultType::kChecksumMismatch);
  EXPECT_EQ(seen.site, resilience::CommSite::kHaloRecv);
  EXPECT_EQ(seen.rank, 1);
  EXPECT_EQ(seen.source_rank, 0);
}

TEST(CommGuards, CleanFramedSendRecvRoundTripsExactly) {
  dist::CommWorld world(2);
  dist::CommGuardConfig g;
  g.checksums = true;
  g.timeout_s = 0.5;
  world.set_guards(g);
  const std::vector<double> payload{1.5, -2.25, 3.0e-17, 0.0};
  std::vector<double> got;
  pk::ThreadPool::parallel_tasks(2, [&](std::size_t r) {
    if (r == 0) {
      world.send(0, 1, 3, payload);
    } else {
      got = world.recv(0, 1, 3);
    }
  });
  EXPECT_EQ(got, payload) << "the checksum frame must be stripped exactly";
}

TEST(CommGuards, DroppedReductionDepositIsTypedIdenticallyOnEveryRank) {
  constexpr int kRanks = 3;
  dist::CommWorld world(kRanks);
  dist::CommGuardConfig g;
  g.checksums = true;  // generation counting rides the checksum switch
  g.timeout_s = 0.5;
  world.set_guards(g);
  std::vector<resilience::CommFault> seen(kRanks);
  pk::ThreadPool::parallel_tasks(kRanks, [&](std::size_t r) {
    try {
      // Rank 1's deposit is lost on the wire; the combine must surface an
      // identical lost-contribution fault on every rank (the collective
      // fault agreement needs them to already agree).
      (void)world.allreduce_sum(static_cast<int>(r), 1.0,
                                /*skip_deposit=*/r == 1);
      ADD_FAILURE() << "combine with a missing deposit must not return";
    } catch (const resilience::CommFaultError& e) {
      seen[r] = e.fault();
    }
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(seen[static_cast<std::size_t>(r)].type,
              resilience::CommFaultType::kLostContribution);
    EXPECT_EQ(seen[static_cast<std::size_t>(r)].site,
              resilience::CommSite::kAllreduce);
    EXPECT_EQ(seen[static_cast<std::size_t>(r)].source_rank, 1)
        << "the fault must name the missing depositor";
    EXPECT_EQ(seen[static_cast<std::size_t>(r)].message, seen[0].message)
        << "detection must be bit-identical across ranks";
  }
}

TEST(CommGuards, CleanSolveIsBitIdenticalWithGuardsOn) {
  // Arming checksums + bounded waits must not move a single bit of a clean
  // solve: the frames are stripped before use and the combine order is
  // untouched.
  physics::StokesFOProblem problem(small_mms());
  auto run = [&](bool guarded) {
    dist::DistConfig cfg;
    cfg.ranks = 4;
    cfg.newton = tight_newton();
    if (guarded) {
      cfg.guards.checksums = true;
      cfg.guards.timeout_s = 10.0;
    }
    const auto res = dist::solve_distributed(problem, cfg);
    EXPECT_TRUE(res.converged);
    return res.U;
  };
  const auto plain = run(false);
  const auto guarded = run(true);
  ASSERT_EQ(plain.size(), guarded.size());
  for (std::size_t d = 0; d < plain.size(); ++d) {
    ASSERT_EQ(plain[d], guarded[d])
        << "guards changed dof " << d << " — framing leaked into the math";
  }
}

// ---------------------------------------------------------------------------
// Abort propagation through the split-phase paths: a posted-but-unfinished
// allreduce and an overlapped halo import must unwind via CommAborted on
// every blocked rank when any rank poisons the world — finish() can never
// strand a rank after abort.
// ---------------------------------------------------------------------------

TEST(Communicator, AbortUnwindsSplitPhaseAllreduceFinishOnAllRanks) {
  constexpr int kRanks = 3;
  dist::CommWorld world(kRanks);
  std::atomic<int> aborted{0};
  pk::ThreadPool::parallel_tasks(kRanks, [&](std::size_t r) {
    dist::Communicator comm(world, static_cast<int>(r));
    try {
      if (r == 0) {
        world.abort();  // dies between the others' post and finish
      } else {
        comm.allreduce_post({static_cast<double>(r), 1.0});
        (void)comm.allreduce_finish();
        ADD_FAILURE() << "finish must not complete without rank 0's deposit";
      }
    } catch (const dist::CommAborted&) {
      ++aborted;
    }
  });
  EXPECT_EQ(aborted.load(), kRanks - 1)
      << "every rank blocked in allreduce_finish must unwind via CommAborted";
}

TEST(Communicator, AbortUnwindsOverlappedHaloImportWithoutDeadlock) {
  HaloFixture f;
  constexpr int kRanks = 4;
  constexpr std::size_t kLevels = 2;
  const auto part = mesh::partition_strips(f.grid, kRanks);
  const std::size_t n = f.grid.n_nodes() * kLevels * 2;
  dist::CommWorld world(kRanks);
  std::atomic<int> aborted{0};
  std::atomic<int> completed{0};
  pk::ThreadPool::parallel_tasks(kRanks, [&](std::size_t r) {
    dist::Communicator comm(world, static_cast<int>(r));
    if (r == 0) {
      world.abort();  // rank 0 dies before posting its halo sends
      return;
    }
    dist::HaloExchange halo(comm, part, static_cast<int>(r), kLevels, 2, 0);
    std::vector<double> x(n, 1.0);
    try {
      halo.post_import(x);
      halo.finish_import(x);
      ++completed;  // a rank with no rank-0 traffic may legitimately finish
    } catch (const dist::CommAborted&) {
      ++aborted;
    }
  });
  // The key assertion is that this test RETURNS: nobody may hang waiting
  // for rank 0's messages.  Rank 1 (rank 0's halo neighbor) can never
  // complete its import, so at least one rank must take the abort path.
  EXPECT_GE(aborted.load(), 1);
  EXPECT_EQ(aborted.load() + completed.load(), kRanks - 1);
}

// ---------------------------------------------------------------------------
// The fault matrix: every injected kind at every comm site, across rank
// counts.  The acceptance contract (ISSUE 9): each case either RECOVERS —
// converges within 1e-10/dof of the clean solution through the coordinated
// restart loop — or exits with a typed CommFaultError.  It never hangs
// (the bounded waits turn every silent loss into a typed fault) and never
// returns a silently wrong solution (checksums + generation counts).
// ---------------------------------------------------------------------------

namespace {

void run_fault_matrix(int ranks) {
  physics::StokesFOProblem problem(small_mms());
  const auto ref = reference_solution(problem);
  constexpr resilience::CommFaultKind kKinds[] = {
      resilience::CommFaultKind::kDrop, resilience::CommFaultKind::kCorrupt,
      resilience::CommFaultKind::kDelay,
      resilience::CommFaultKind::kRankDeath,
      resilience::CommFaultKind::kStraggler};
  constexpr resilience::CommSite kSites[] = {
      resilience::CommSite::kHaloSend, resilience::CommSite::kHaloRecv,
      resilience::CommSite::kAllreduce, resilience::CommSite::kBarrier};
  for (const auto kind : kKinds) {
    for (const auto site : kSites) {
      dist::DistConfig cfg;
      cfg.ranks = ranks;
      cfg.newton = tight_newton();
      cfg.guards.checksums = true;
      cfg.guards.timeout_s = 0.15;
      cfg.max_restarts = 2;
      cfg.checkpoint = true;
      cfg.inject_comm_fault = true;
      cfg.comm_fault.kind = kind;
      cfg.comm_fault.site = site;
      // The barrier site is evaluated far less often than the halo and
      // reduction sites; fire on its first evaluation so the injection
      // lands inside every solve.
      cfg.comm_fault.at_evaluation =
          site == resilience::CommSite::kBarrier ? 0 : 1;
      const std::string what = std::string("comm:") +
                               resilience::to_string(kind) + ":" +
                               resilience::to_string(site) +
                               " @ ranks=" + std::to_string(ranks);
      try {
        const auto res = dist::solve_distributed(problem, cfg);
        // Recovered (possibly through restarts): the solution must be the
        // clean one — a fault may cost retries, never accuracy.
        EXPECT_TRUE(res.converged) << what;
        expect_match(ref, res.U, what.c_str());
      } catch (const resilience::CommFaultError& e) {
        // Typed exit after the restart budget: acceptable, and the record
        // must actually describe a fault.
        EXPECT_NE(e.fault().type, resilience::CommFaultType::kNone) << what;
      }
      // Any other exception (or a hang) fails the test.
    }
  }
}

}  // namespace

TEST(CommFaultMatrix, EveryKindAtEverySiteRecoversOrExitsTypedAt2Ranks) {
  run_fault_matrix(2);
}

TEST(CommFaultMatrix, EveryKindAtEverySiteRecoversOrExitsTypedAt4Ranks) {
  run_fault_matrix(4);
}

TEST(CommFaultMatrix, EveryKindAtEverySiteRecoversOrExitsTypedAt7Ranks) {
  run_fault_matrix(7);
}

// ---------------------------------------------------------------------------
// Coordinated recovery specifics: restart accounting, checkpoint rollback,
// budget exhaustion, and the solver-fault flavour of the restart loop.
// ---------------------------------------------------------------------------

TEST(DistSolve, OneShotCommFaultRecoversThroughCoordinatedRestart) {
  physics::StokesFOProblem problem(small_mms());
  const auto ref = reference_solution(problem);
  dist::DistConfig cfg;
  cfg.ranks = 4;
  cfg.newton = tight_newton();
  cfg.guards.checksums = true;
  cfg.guards.timeout_s = 0.2;
  cfg.max_restarts = 2;
  cfg.checkpoint = true;
  cfg.inject_comm_fault = true;
  cfg.comm_fault = resilience::comm_fault_spec_from_string(
      "comm:corrupt:allreduce:2");
  const auto res = dist::solve_distributed(problem, cfg);
  EXPECT_TRUE(res.converged);
  EXPECT_GE(res.restarts, 1) << "the injected fault must have cost a restart";
  ASSERT_FALSE(res.recovery.empty());
  EXPECT_TRUE(res.recovery.attempts[0].comm_fault)
      << "the failed attempt must carry the agreed typed record";
  EXPECT_EQ(res.recovery.attempts[0].fault.type,
            resilience::CommFaultType::kChecksumMismatch);
  expect_match(ref, res.U, "recovered corrupt:allreduce, 4 ranks");
}

TEST(DistSolve, RepeatCommFaultExhaustsRestartBudgetAndExitsTyped) {
  physics::StokesFOProblem problem(small_mms());
  dist::DistConfig cfg;
  cfg.ranks = 2;
  cfg.newton = tight_newton();
  cfg.guards.checksums = true;
  cfg.guards.timeout_s = 0.2;
  cfg.max_restarts = 1;
  cfg.checkpoint = true;
  cfg.inject_comm_fault = true;
  cfg.comm_fault = resilience::comm_fault_spec_from_string(
      "comm:corrupt:allreduce:1:repeat");
  dist::DistRecoveryLog rlog;
  bool threw = false;
  try {
    (void)dist::solve_distributed(problem, cfg, nullptr, &rlog);
  } catch (const resilience::CommFaultError& e) {
    threw = true;
    EXPECT_EQ(e.fault().type, resilience::CommFaultType::kChecksumMismatch);
  }
  EXPECT_TRUE(threw) << "a permanent fault must exit typed, not succeed";
  EXPECT_EQ(rlog.size(), 2u)
      << "the log must record the initial attempt and the failed restart";
  for (const auto& a : rlog.attempts) {
    EXPECT_TRUE(a.comm_fault);
    EXPECT_FALSE(a.error.empty());
  }
  EXPECT_FALSE(rlog.tail().empty());
}

TEST(DistSolve, SolverFaultOnDistPathRecoversThroughRestart) {
  // The restart loop also absorbs solver-level faults (NaN injection into
  // the guarded residual): every rank throws the identical typed error in
  // lockstep, the world aborts, and the next attempt runs clean.
  physics::StokesFOProblem problem(small_mms());
  const auto ref = reference_solution(problem);
  dist::DistConfig cfg;
  cfg.ranks = 2;
  cfg.newton = tight_newton();
  cfg.max_restarts = 2;
  cfg.checkpoint = true;
  cfg.inject_solver_fault = true;
  cfg.solver_fault = resilience::fault_spec_from_string("nan:residual:1");
  const auto res = dist::solve_distributed(problem, cfg);
  EXPECT_TRUE(res.converged);
  EXPECT_GE(res.restarts, 1);
  ASSERT_FALSE(res.recovery.empty());
  EXPECT_FALSE(res.recovery.attempts[0].comm_fault)
      << "a solver fault is not a comm fault in the log";
  expect_match(ref, res.U, "recovered nan:residual, 2 ranks");
}
