// Transient forecast engine battery (DESIGN.md §14):
//   - depth_averaged_velocity unit checks (the hoisted trapezoidal rule)
//   - StepController growth/backoff/clamp schedules pinned exactly
//   - closed-domain mass conservation <= 1e-12 relative, per step and
//     accumulated over 100 steps
//   - temporal convergence: Richardson self-convergence at the expected
//     order for both time schemes, plus a manufactured time-dependent-SMB
//     problem with an analytic solution
//   - mid-run transient checkpoint -> restart bit-identity vs the
//     uninterrupted run
//   - forcing-spec parser round trips
//   - injected Newton fault mid-transient: the dt-backoff path (recovery
//     off) and the recovery ladder (recovery on) both finish the run

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "linalg/block_jacobi.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "mesh/ice_geometry.hpp"
#include "mesh/quad_grid.hpp"
#include "mpas/fv_transport.hpp"
#include "physics/depth_average.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/common.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault_injector.hpp"
#include "timestepping/forcing.hpp"
#include "timestepping/forecast_driver.hpp"
#include "timestepping/step_controller.hpp"
#include "util/fp_format.hpp"

using namespace mali;
using timestepping::ForecastConfig;
using timestepping::ForecastDriver;
using timestepping::ForecastResult;
using timestepping::StepController;
using timestepping::StepControllerConfig;

namespace {

/// Small coupled problem every driver test shares: 220 km cells, 3 layers.
physics::StokesFOConfig small_problem_config() {
  physics::StokesFOConfig cfg;
  cfg.dx_m = 220.0e3;
  cfg.n_layers = 3;
  return cfg;
}

/// Cheap Jacobi preconditioner for the tests' tiny velocity solves.
std::unique_ptr<linalg::Preconditioner> make_jacobi(
    const physics::StokesFOProblem&) {
  return std::make_unique<linalg::JacobiPreconditioner>();
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

}  // namespace

// ---- depth_averaged_velocity -----------------------------------------

TEST(DepthAverage, ConstantProfileAveragesToItself) {
  physics::StokesFOProblem problem(small_problem_config());
  const auto& msh = problem.mesh();
  std::vector<double> U(2 * msh.n_nodes());
  for (std::size_t n = 0; n < msh.n_nodes(); ++n) {
    U[2 * n] = 120.0;
    U[2 * n + 1] = -45.0;
  }
  std::vector<double> ubar, vbar;
  physics::depth_averaged_velocity(msh, U, ubar, vbar);
  ASSERT_EQ(ubar.size(), msh.base().n_nodes());
  ASSERT_EQ(vbar.size(), msh.base().n_nodes());
  for (std::size_t col = 0; col < ubar.size(); ++col) {
    EXPECT_DOUBLE_EQ(ubar[col], 120.0);
    EXPECT_DOUBLE_EQ(vbar[col], -45.0);
  }
}

TEST(DepthAverage, MatchesHandComputedTrapezoid) {
  physics::StokesFOProblem problem(small_problem_config());
  const auto& msh = problem.mesh();
  const std::size_t nl = msh.levels();
  // u(col, lev) = col + lev^2 — distinct per level so the end weights show.
  std::vector<double> U(2 * msh.n_nodes(), 0.0);
  for (std::size_t col = 0; col < msh.base().n_nodes(); ++col) {
    for (std::size_t lev = 0; lev < nl; ++lev) {
      const std::size_t n = msh.node_id(col, lev);
      U[2 * n] = static_cast<double>(col) + static_cast<double>(lev * lev);
      U[2 * n + 1] = 2.0 * static_cast<double>(lev);
    }
  }
  std::vector<double> ubar, vbar;
  physics::depth_averaged_velocity(msh, U, ubar, vbar);
  for (std::size_t col = 0; col < std::min<std::size_t>(5, ubar.size());
       ++col) {
    double su = 0.0, sv = 0.0;
    for (std::size_t lev = 0; lev < nl; ++lev) {
      const double w = (lev == 0 || lev + 1 == nl) ? 0.5 : 1.0;
      su += w * (static_cast<double>(col) + static_cast<double>(lev * lev));
      sv += w * 2.0 * static_cast<double>(lev);
    }
    EXPECT_DOUBLE_EQ(ubar[col], su / static_cast<double>(nl - 1));
    EXPECT_DOUBLE_EQ(vbar[col], sv / static_cast<double>(nl - 1));
  }
}

TEST(DepthAverage, RejectsWrongDofCount) {
  physics::StokesFOProblem problem(small_problem_config());
  std::vector<double> U(2 * problem.mesh().n_nodes() - 2, 0.0);
  std::vector<double> ubar, vbar;
  EXPECT_THROW(
      physics::depth_averaged_velocity(problem.mesh(), U, ubar, vbar),
      mali::Error);
}

// ---- StepController ---------------------------------------------------

TEST(StepController, GrowthSequenceIsPinned) {
  StepControllerConfig cfg;
  cfg.dt_init = 1.0;
  cfg.dt_min = 0.125;
  cfg.dt_max = 5.0;
  cfg.growth = 2.0;
  StepController c(cfg);
  const double expected[] = {2.0, 4.0, 5.0, 5.0};  // clamped at dt_max
  for (const double e : expected) {
    c.on_success();
    EXPECT_DOUBLE_EQ(c.current(), e);
  }
  EXPECT_EQ(c.successes(), 4);
}

TEST(StepController, BackoffSequenceIsPinnedAndBottomsOut) {
  StepControllerConfig cfg;
  cfg.dt_init = 1.0;
  cfg.dt_min = 0.25;
  cfg.dt_max = 5.0;
  cfg.backoff = 0.5;
  StepController c(cfg);
  EXPECT_TRUE(c.on_failure());
  EXPECT_DOUBLE_EQ(c.current(), 0.5);
  EXPECT_TRUE(c.on_failure());
  EXPECT_DOUBLE_EQ(c.current(), 0.25);  // exactly dt_min: still allowed
  EXPECT_FALSE(c.on_failure());         // below dt_min: fatal
  EXPECT_EQ(c.failures(), 3);
}

TEST(StepController, ProposeClampsByCflHorizonAndMax) {
  StepControllerConfig cfg;
  cfg.dt_init = 4.0;
  cfg.dt_min = 0.01;
  cfg.dt_max = 4.0;
  cfg.cfl_fraction = 0.5;
  StepController c(cfg);
  // CFL budget is the binding constraint.
  EXPECT_DOUBLE_EQ(c.propose(2.0, 100.0), 1.0);
  // Infinite CFL (zero velocity): only dt_max and the horizon bind.
  EXPECT_DOUBLE_EQ(c.propose(std::numeric_limits<double>::infinity(), 100.0),
                   4.0);
  // Landing on the horizon.
  EXPECT_DOUBLE_EQ(c.propose(std::numeric_limits<double>::infinity(), 2.5),
                   2.5);
  // propose is pure: no state advanced by the calls above.
  EXPECT_DOUBLE_EQ(c.current(), 4.0);
  EXPECT_THROW((void)c.propose(2.0, 0.0), mali::Error);
  EXPECT_THROW((void)c.propose(-1.0, 10.0), mali::Error);
}

TEST(StepController, MixedScheduleIsDeterministic) {
  StepControllerConfig cfg;
  cfg.dt_init = 1.0;
  cfg.dt_min = 1.0 / 64.0;
  cfg.dt_max = 2.0;
  cfg.growth = 1.5;
  cfg.backoff = 0.5;
  StepController c(cfg);
  c.on_success();                        // 1.5
  c.on_success();                        // 2.0 (clamp)
  EXPECT_TRUE(c.on_failure());           // 1.0
  EXPECT_TRUE(c.on_failure());           // 0.5
  c.on_success();                        // 0.75
  EXPECT_DOUBLE_EQ(c.current(), 0.75);
  EXPECT_EQ(c.successes(), 3);
  EXPECT_EQ(c.failures(), 2);
}

TEST(StepController, ConfigAndRestoreValidation) {
  StepControllerConfig bad;
  bad.dt_min = 0.0;
  EXPECT_THROW(StepController{bad}, mali::Error);
  bad = StepControllerConfig{};
  bad.dt_max = bad.dt_min / 2.0;
  EXPECT_THROW(StepController{bad}, mali::Error);
  bad = StepControllerConfig{};
  bad.growth = 0.9;
  EXPECT_THROW(StepController{bad}, mali::Error);
  bad = StepControllerConfig{};
  bad.backoff = 1.0;
  EXPECT_THROW(StepController{bad}, mali::Error);
  bad = StepControllerConfig{};
  bad.cfl_fraction = 0.0;
  EXPECT_THROW(StepController{bad}, mali::Error);

  StepController c{StepControllerConfig{}};
  EXPECT_THROW(c.set_current(1.0e9), mali::Error);   // above dt_max
  EXPECT_THROW(c.set_current(1.0e-9), mali::Error);  // below dt_min
  c.set_current(2.0);
  EXPECT_DOUBLE_EQ(c.current(), 2.0);
}

// ---- mass conservation ------------------------------------------------

TEST(ForecastConservation, ClosedBudgetOver100StepsBelow1em12) {
  physics::StokesFOProblem problem(small_problem_config());
  ForecastConfig cfg;
  cfg.years = 5.0;
  cfg.velocity_every = -1;  // zero velocity: SMB-only evolution
  cfg.thermal_enabled = false;
  cfg.controller.dt_init = 0.05;
  cfg.controller.dt_min = 0.05;
  cfg.controller.dt_max = 0.05;  // 100 fixed steps
  cfg.controller.growth = 1.0;
  cfg.make_precond = make_jacobi;
  ForecastDriver driver(problem, cfg);
  const ForecastResult res = driver.run();
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.steps, 100);
  EXPECT_EQ(res.velocity_solves, 0);

  // Per-step ledger identity: dV = smb - calving + clamp to <= 1e-12 rel.
  EXPECT_LE(res.max_mass_residual, 1e-12);

  // Accumulated identity over the whole run.
  double budget = 0.0;
  for (const auto& row : res.ledger) {
    budget += row.smb - row.calving + row.clamp;
    EXPECT_DOUBLE_EQ(row.calving, 0.0) << "zero velocity cannot calve";
  }
  EXPECT_NEAR(res.volume_final - res.volume_initial, budget,
              1e-12 * res.volume_initial);
}

TEST(ForecastConservation, CoupledLedgerIdentityHoldsWithVelocity) {
  physics::StokesFOProblem problem(small_problem_config());
  ForecastConfig cfg;
  cfg.years = 3.0;
  cfg.velocity_every = 0;  // one solve, then frozen advection
  cfg.thermal_enabled = false;
  cfg.transport.min_thickness = 1.0;  // exercise the clamp term
  cfg.newton.max_iters = 6;
  cfg.make_precond = make_jacobi;
  ForecastDriver driver(problem, cfg);
  const ForecastResult res = driver.run();
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.velocity_solves, 1);
  EXPECT_GT(res.steps, 1);
  EXPECT_LE(res.max_mass_residual, 1e-12);
  // Real advection reaches the margin eventually; here the identity is the
  // claim, not zero calving.
  for (const auto& row : res.ledger) {
    EXPECT_GE(row.calving, 0.0);
    EXPECT_GE(row.clamp, 0.0);
    EXPECT_TRUE(std::isfinite(row.residual));
  }
}

// ---- temporal convergence ---------------------------------------------

namespace {

/// Advances a gaussian bump under constant velocity with n fixed steps of
/// the given scheme and returns the final thickness.  Upwind flux + no
/// floor keeps the semi-discrete operator linear in H, so Richardson
/// self-convergence isolates the time integrator's order.
std::vector<double> advect_bump(const mesh::QuadGrid& grid,
                                mpas::TimeScheme time, int n_steps,
                                double total_years) {
  mpas::TransportConfig cfg;
  cfg.flux = mpas::FluxScheme::kUpwind;
  cfg.time = time;
  cfg.min_thickness = -1e30;  // no floor: keep the operator linear
  mpas::FvTransport fv(grid, cfg);
  std::vector<double> H(fv.n_cells());
  for (std::size_t c = 0; c < fv.n_cells(); ++c) {
    double x, y;
    grid.cell_centroid(c, x, y);
    H[c] = 1000.0 * std::exp(-(x * x + y * y) / (2.0 * 3.0e5 * 3.0e5));
  }
  const std::vector<double> u(fv.n_cells(), 100.0);
  const std::vector<double> v(fv.n_cells(), 50.0);
  const std::vector<double> zero(fv.n_cells(), 0.0);
  const double dt = total_years / n_steps;
  for (int s = 0; s < n_steps; ++s) fv.step(H, u, v, zero, dt);
  return H;
}

double l2_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(s);
}

double richardson_order(mpas::TimeScheme time) {
  mesh::IceGeometry geom;
  const mesh::QuadGrid grid(geom, {100.0e3});
  const double T = 80.0;
  const auto h1 = advect_bump(grid, time, 16, T);
  const auto h2 = advect_bump(grid, time, 32, T);
  const auto h3 = advect_bump(grid, time, 64, T);
  const double e1 = l2_diff(h1, h2);
  const double e2 = l2_diff(h2, h3);
  EXPECT_GT(e1, 0.0);
  EXPECT_GT(e2, 0.0);
  return std::log2(e1 / e2);
}

}  // namespace

TEST(TemporalConvergence, ForwardEulerIsFirstOrder) {
  const double p = richardson_order(mpas::TimeScheme::kForwardEuler);
  EXPECT_NEAR(p, 1.0, 0.2) << "forward Euler must self-converge at order 1";
}

TEST(TemporalConvergence, HeunIsSecondOrder) {
  const double p = richardson_order(mpas::TimeScheme::kHeunRk2);
  EXPECT_GE(p, 1.7) << "Heun RK2 must self-converge at order ~2";
}

namespace {

/// Manufactured transient problem through the full driver: zero velocity,
/// cyclic SMB forcing — dH/dt = smb(x, y) + A sin(2 pi (t - phi)/P) has the
/// exact per-cell solution
///   H(T) = H0 + smb*T - A*(P/2pi) [cos(2 pi (T-phi)/P) - cos(2 pi phi/P)].
double mms_driver_error(double dt) {
  physics::StokesFOProblem problem(small_problem_config());
  // T deliberately NOT a multiple of the forcing period, and the phase
  // chosen so f(T) != f(0): the left-Riemann error is (dt/2)(f(T) - f(0))
  // + O(dt^2) (Euler-Maclaurin), so a full period or matching endpoints
  // would hide the integrator's O(dt) term entirely.
  const double A = 0.8, P = 2.0, phi = 0.0, T = 1.5;
  ForecastConfig cfg;
  cfg.years = T;
  cfg.velocity_every = -1;
  cfg.thermal_enabled = false;
  cfg.forcing = "cycle:amplitude=0.8,period=2,phase=0";
  cfg.transport.min_thickness = -1e30;  // no floor: exact ODE per cell
  cfg.controller.dt_init = dt;
  cfg.controller.dt_min = dt;
  cfg.controller.dt_max = dt;
  cfg.controller.growth = 1.0;
  cfg.make_precond = make_jacobi;
  ForecastDriver driver(problem, cfg);
  const ForecastResult res = driver.run();
  EXPECT_TRUE(res.completed);

  const auto& base = problem.mesh().base();
  const double two_pi = 2.0 * M_PI;
  double max_err = 0.0;
  for (std::size_t c = 0; c < res.H.size(); ++c) {
    double x, y;
    base.cell_centroid(c, x, y);
    const double H0 = problem.geometry().thickness(x, y);
    const double smb = problem.geometry().surface_mass_balance(x, y);
    const double exact =
        H0 + smb * T -
        A * (P / two_pi) *
            (std::cos(two_pi * (T - phi) / P) - std::cos(two_pi * phi / P));
    max_err = std::max(max_err, std::abs(res.H[c] - exact));
  }
  return max_err;
}

}  // namespace

TEST(TemporalConvergence, DriverManufacturedSolutionConvergesAtOrderOne) {
  // Forward Euler in time (the driver freezes the source at t_n): halving
  // dt must halve the error against the analytic solution.
  const double e1 = mms_driver_error(0.25);
  const double e2 = mms_driver_error(0.125);
  const double e3 = mms_driver_error(0.0625);
  ASSERT_GT(e1, 0.0);
  const double p12 = std::log2(e1 / e2);
  const double p23 = std::log2(e2 / e3);
  EXPECT_NEAR(p12, 1.0, 0.15);
  EXPECT_NEAR(p23, 1.0, 0.15);
}

// ---- checkpoint / restart ---------------------------------------------

TEST(TransientCheckpoint, FileRoundTripIsBitExact) {
  resilience::TransientCheckpoint c;
  c.H = {1.0, -0.0, 5.0e-324, std::numeric_limits<double>::denorm_min()};
  c.T = {260.15, 273.15};
  c.U = {1.0e9, -7.25};
  c.t = 12.3456789;
  c.dt = 1.0 / 3.0;
  c.step = 42;
  const std::string path = temp_path("roundtrip.tckpt");
  c.save(path);
  const auto r = resilience::load_transient_checkpoint(path);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.step, 42);
  EXPECT_EQ(r.t, c.t);
  EXPECT_EQ(r.dt, c.dt);
  ASSERT_EQ(r.H.size(), c.H.size());
  for (std::size_t i = 0; i < c.H.size(); ++i) {
    EXPECT_EQ(std::signbit(r.H[i]), std::signbit(c.H[i]));
    EXPECT_EQ(r.H[i], c.H[i]);
  }
  EXPECT_EQ(r.T, c.T);
  EXPECT_EQ(r.U, c.U);
}

TEST(TransientCheckpoint, MalformedFilesThrowTypedErrors) {
  EXPECT_THROW(resilience::load_transient_checkpoint(
                   temp_path("does_not_exist.tckpt")),
               mali::Error);
  const std::string bad = temp_path("bad_magic.tckpt");
  {
    std::FILE* f = std::fopen(bad.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTACKPT but long enough to read a header from", f);
    std::fclose(f);
  }
  EXPECT_THROW(resilience::load_transient_checkpoint(bad), mali::Error);
  // A solver checkpoint is not a transient checkpoint (magic differs).
  const std::string solver = temp_path("solver.ckpt");
  resilience::SolverCheckpoint sc;
  sc.U = {1.0, 2.0};
  sc.save(solver);
  EXPECT_THROW(resilience::load_transient_checkpoint(solver), mali::Error);
  // Truncated payload.
  const std::string trunc = temp_path("trunc.tckpt");
  resilience::TransientCheckpoint c;
  c.H = {1.0, 2.0, 3.0};
  c.save(trunc);
  {
    std::FILE* f = std::fopen(trunc.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(0, truncate(trunc.c_str(), size - 8));
  }
  EXPECT_THROW(resilience::load_transient_checkpoint(trunc), mali::Error);
}

TEST(TransientRestart, MidRunRestartIsBitIdenticalToUninterrupted) {
  // Fixed dt (growth 1) so the uninterrupted run passes through t = 1.0 at
  // a step boundary; the half run lands there without clamping distortion.
  const auto configure = [](ForecastConfig& cfg) {
    cfg.velocity_every = 1;
    cfg.thermal_enabled = true;
    cfg.newton.max_iters = 4;
    cfg.controller.dt_init = 0.25;
    cfg.controller.dt_min = 0.25;
    cfg.controller.dt_max = 0.25;
    cfg.controller.growth = 1.0;
    cfg.make_precond = make_jacobi;
  };

  // Uninterrupted reference: 8 steps to t = 2.
  physics::StokesFOProblem p_ref(small_problem_config());
  ForecastConfig ref_cfg;
  configure(ref_cfg);
  ref_cfg.years = 2.0;
  ForecastDriver ref(p_ref, ref_cfg);
  const ForecastResult r_ref = ref.run();
  ASSERT_TRUE(r_ref.completed);
  ASSERT_EQ(r_ref.steps, 8);

  // First leg: 4 steps to t = 1, checkpointing the final state.
  const std::string ckpt = temp_path("midrun.tckpt");
  physics::StokesFOProblem p_a(small_problem_config());
  ForecastConfig a_cfg;
  configure(a_cfg);
  a_cfg.years = 1.0;
  a_cfg.checkpoint_every = 4;
  a_cfg.checkpoint_path = ckpt;
  ForecastDriver a(p_a, a_cfg);
  const ForecastResult r_a = a.run();
  ASSERT_TRUE(r_a.completed);
  ASSERT_EQ(r_a.steps, 4);

  // Second leg: restart from the checkpoint, run to t = 2.
  physics::StokesFOProblem p_b(small_problem_config());
  ForecastConfig b_cfg;
  configure(b_cfg);
  b_cfg.years = 2.0;
  b_cfg.restart_path = ckpt;
  ForecastDriver b(p_b, b_cfg);
  const ForecastResult r_b = b.run();
  ASSERT_TRUE(r_b.completed);
  EXPECT_EQ(r_b.steps, 4);  // 4 new steps on top of the restored 4

  // Bit identity of every prognostic field.
  ASSERT_EQ(r_b.H.size(), r_ref.H.size());
  for (std::size_t i = 0; i < r_ref.H.size(); ++i) {
    ASSERT_EQ(r_b.H[i], r_ref.H[i]) << "H diverged at cell " << i;
  }
  ASSERT_EQ(r_b.U.size(), r_ref.U.size());
  for (std::size_t i = 0; i < r_ref.U.size(); ++i) {
    ASSERT_EQ(r_b.U[i], r_ref.U[i]) << "U diverged at dof " << i;
  }
  ASSERT_EQ(r_b.T.size(), r_ref.T.size());
  for (std::size_t i = 0; i < r_ref.T.size(); ++i) {
    ASSERT_EQ(r_b.T[i], r_ref.T[i]) << "T diverged at entry " << i;
  }
  EXPECT_EQ(r_b.t_final, r_ref.t_final);
  EXPECT_EQ(r_b.volume_final, r_ref.volume_final);
}

TEST(TransientRestart, SizeMismatchIsTypedError) {
  const std::string ckpt = temp_path("wrong_size.tckpt");
  resilience::TransientCheckpoint c;
  c.H = {1.0, 2.0};  // far too small for the mesh
  c.U = {0.0};
  c.t = 0.5;
  c.dt = 0.25;
  c.step = 2;
  c.save(ckpt);
  physics::StokesFOProblem problem(small_problem_config());
  ForecastConfig cfg;
  cfg.restart_path = ckpt;
  cfg.thermal_enabled = false;
  cfg.make_precond = make_jacobi;
  ForecastDriver driver(problem, cfg);
  EXPECT_THROW(driver.run(), mali::Error);
}

// ---- forcing ----------------------------------------------------------

TEST(Forcing, SpecsRoundTripThroughTheFactory) {
  mesh::IceGeometry geom;
  const char* specs[] = {
      "constant",
      "constant:offset=0.25",
      "ramp:anomaly=-0.5,start=0,end=1",
      "ramp:anomaly=2,start=10,end=40",
      "cycle:amplitude=0.8,period=2,phase=0.25",
  };
  for (const char* s : specs) {
    const auto f = timestepping::make_forcing(s, geom);
    EXPECT_EQ(f->spec(), s);
    // The normalized spec re-parses to the same normalized spec.
    const auto g = timestepping::make_forcing(f->spec(), geom);
    EXPECT_EQ(g->spec(), f->spec());
  }
  // Defaults are normalized into the spec.
  EXPECT_EQ(timestepping::make_forcing("ramp:anomaly=1", geom)->spec(),
            "ramp:anomaly=1,start=0,end=1");
  EXPECT_EQ(timestepping::make_forcing("cycle:amplitude=1", geom)->spec(),
            "cycle:amplitude=1,period=1,phase=0");
}

TEST(Forcing, ValuesMatchTheirDefinitions) {
  mesh::IceGeometry geom;
  const double base = geom.surface_mass_balance(0.0, 0.0);

  const auto c = timestepping::make_forcing("constant:offset=0.5", geom);
  EXPECT_DOUBLE_EQ(c->smb(0.0, 0.0, 123.0), base + 0.5);

  const auto r =
      timestepping::make_forcing("ramp:anomaly=-1,start=10,end=20", geom);
  EXPECT_DOUBLE_EQ(r->smb(0.0, 0.0, 5.0), base);         // before the ramp
  EXPECT_DOUBLE_EQ(r->smb(0.0, 0.0, 15.0), base - 0.5);  // mid-ramp
  EXPECT_DOUBLE_EQ(r->smb(0.0, 0.0, 50.0), base - 1.0);  // saturated

  const auto y = timestepping::make_forcing(
      "cycle:amplitude=2,period=4,phase=1", geom);
  EXPECT_NEAR(y->smb(0.0, 0.0, 1.0), base, 1e-12);       // sin(0)
  EXPECT_NEAR(y->smb(0.0, 0.0, 2.0), base + 2.0, 1e-12); // sin(pi/2)
  EXPECT_NEAR(y->smb(0.0, 0.0, 5.0), base, 1e-12);       // one full period
}

TEST(Forcing, MalformedSpecsAreTypedErrors) {
  mesh::IceGeometry geom;
  const char* bad[] = {
      "", "volcano", "constant:offset", "constant:offset=",
      "constant:offset=abc", "constant:offset=1,offset=2",
      "constant:offset=1e999", "constant:frequency=1", "ramp",
      "ramp:start=0", "ramp:anomaly=1,end=0,start=5",
      "cycle:amplitude=1,period=0", "cycle:amplitude=1,period=-2",
      "cycle:period=1", "ramp:anomaly=1,,",
  };
  for (const char* s : bad) {
    EXPECT_THROW((void)timestepping::make_forcing(s, geom), mali::Error)
        << "spec should be rejected: '" << s << "'";
  }
}

TEST(Forcing, ParametersRoundTripBitwiseIncludingSignedZero) {
  // parse(f.spec()) must reconstruct every numeric parameter bit-for-bit
  // (the ensemble cache key embeds forcing specs, so a lossy round trip
  // would silently split or merge cache entries).
  mesh::IceGeometry geom;
  const auto bits = [](double v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof u);
    return u;
  };

  // Values chosen to break fixed-precision printf formatting: 0.1 has no
  // short exact decimal, 1/3 needs all 17 digits, and the subnormal is
  // far outside %.6f's range.
  for (const double off : {0.1, 1.0 / 3.0, 4.9406564584124654e-324,
                           -1.7976931348623157e308, 123456789.123456789}) {
    const auto f = timestepping::make_forcing(
        "constant:offset=" + util::format_double(off), geom);
    const auto* cf =
        dynamic_cast<const timestepping::ConstantForcing*>(f.get());
    ASSERT_NE(cf, nullptr);
    EXPECT_EQ(bits(cf->offset()), bits(off));
    const auto g = timestepping::make_forcing(f->spec(), geom);
    const auto* cg =
        dynamic_cast<const timestepping::ConstantForcing*>(g.get());
    ASSERT_NE(cg, nullptr);
    EXPECT_EQ(bits(cg->offset()), bits(off));
  }

  // -0.0 is the nasty one: it must NOT collapse to the bare "constant"
  // spec (that would round-trip to +0.0 and flip the sign bit).
  const auto plus = timestepping::make_forcing("constant", geom);
  EXPECT_EQ(plus->spec(), "constant");
  const auto minus = timestepping::make_forcing("constant:offset=-0", geom);
  EXPECT_EQ(minus->spec(), "constant:offset=-0");
  const auto minus2 = timestepping::make_forcing(minus->spec(), geom);
  const auto* cm =
      dynamic_cast<const timestepping::ConstantForcing*>(minus2.get());
  ASSERT_NE(cm, nullptr);
  EXPECT_TRUE(std::signbit(cm->offset()));
  EXPECT_EQ(bits(cm->offset()), bits(-0.0));

  // All three ramp/cycle parameters, awkward values at once.
  const std::string rspec = "ramp:anomaly=" + util::format_double(-0.1) +
                            ",start=" + util::format_double(1.0 / 3.0) +
                            ",end=" + util::format_double(2.0 / 3.0);
  const auto r = timestepping::make_forcing(rspec, geom);
  const auto r2 = timestepping::make_forcing(r->spec(), geom);
  const auto* ra =
      dynamic_cast<const timestepping::AnomalyRampForcing*>(r2.get());
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(bits(ra->anomaly()), bits(-0.1));
  EXPECT_EQ(bits(ra->start()), bits(1.0 / 3.0));
  EXPECT_EQ(bits(ra->end()), bits(2.0 / 3.0));

  const std::string yspec = "cycle:amplitude=" + util::format_double(0.3) +
                            ",period=" + util::format_double(1.0 / 7.0) +
                            ",phase=" + util::format_double(-0.0);
  const auto y = timestepping::make_forcing(yspec, geom);
  const auto y2 = timestepping::make_forcing(y->spec(), geom);
  const auto* ya =
      dynamic_cast<const timestepping::YearlyCycleForcing*>(y2.get());
  ASSERT_NE(ya, nullptr);
  EXPECT_EQ(bits(ya->amplitude()), bits(0.3));
  EXPECT_EQ(bits(ya->period()), bits(1.0 / 7.0));
  EXPECT_EQ(bits(ya->phase()), bits(-0.0));
}

// ---- warm-start state validation --------------------------------------

TEST(ForecastWarmStart, InitialVelocitySeedsTheDriver) {
  auto cfg = small_problem_config();
  physics::StokesFOProblem problem(cfg);
  timestepping::ForecastConfig fcfg;
  fcfg.years = 0.25;
  fcfg.thermal_enabled = false;
  // Purely absolute Newton criterion, like the ensemble engine: with a
  // relative test the convergence target depends on the start point, and
  // warm and cold would legitimately stop at different roots.  The AMG
  // (not the weak Jacobi) is needed to actually reach it.
  fcfg.make_precond = [](const physics::StokesFOProblem& p) {
    linalg::AmgConfig acfg;
    acfg.smoother = linalg::AmgSmoother::kChebyshev;
    return std::unique_ptr<linalg::Preconditioner>(
        std::make_unique<linalg::SemicoarseningAmg>(p.extrusion_info(),
                                                    acfg));
  };
  fcfg.newton.max_iters = 40;
  fcfg.newton.abs_tol = 1e-9;
  fcfg.newton.rel_tol = 0.0;
  const timestepping::ForecastResult cold =
      timestepping::ForecastDriver(problem, fcfg).run();

  // Re-run seeded with the cold run's converged velocity: the warm run
  // must still complete and land on the same root (same mesh, same
  // physics — only the Newton iteration path may differ).
  fcfg.initial_U = cold.U;
  const timestepping::ForecastResult warm =
      timestepping::ForecastDriver(problem, fcfg).run();
  EXPECT_TRUE(warm.completed);
  ASSERT_EQ(warm.U.size(), cold.U.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < warm.U.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(warm.U[i] - cold.U[i]));
  }
  EXPECT_LE(max_diff / static_cast<double>(warm.U.size()), 1e-10);
}

TEST(ForecastWarmStart, StaleStateFromAnotherResolutionIsATypedError) {
  // Regression: recycling a converged velocity across a mesh-resolution
  // change used to be accepted silently (the driver solved garbage from a
  // wrong-size vector).  It must be a typed error at construction.
  auto cfg = small_problem_config();
  physics::StokesFOProblem coarse(cfg);
  timestepping::ForecastConfig fcfg;
  fcfg.years = 0.25;
  fcfg.thermal_enabled = false;
  fcfg.make_precond = make_jacobi;
  const timestepping::ForecastResult res =
      timestepping::ForecastDriver(coarse, fcfg).run();

  auto fine_cfg = small_problem_config();
  fine_cfg.dx_m = cfg.dx_m / 2.0;  // different resolution, different dofs
  physics::StokesFOProblem fine(fine_cfg);
  ASSERT_NE(fine.n_dofs(), coarse.n_dofs());
  fcfg.initial_U = res.U;
  EXPECT_THROW(timestepping::ForecastDriver(fine, fcfg), mali::Error);

  // Non-finite warm starts are rejected too.
  fcfg.initial_U.assign(coarse.n_dofs(),
                        std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(timestepping::ForecastDriver(coarse, fcfg), mali::Error);
}

// ---- fault injection mid-transient ------------------------------------

TEST(ForecastResilience, InjectedFaultBacksOffDtAndCompletes) {
  // Clean reference.
  physics::StokesFOProblem p_clean(small_problem_config());
  ForecastConfig cfg;
  cfg.years = 1.5;
  cfg.velocity_every = 1;
  cfg.thermal_enabled = false;
  cfg.newton.max_iters = 4;
  cfg.controller.dt_init = 0.5;
  cfg.controller.dt_min = 1.0 / 64.0;
  cfg.controller.dt_max = 0.5;
  cfg.make_precond = make_jacobi;
  ForecastDriver clean(p_clean, cfg);
  const ForecastResult r_clean = clean.run();
  ASSERT_TRUE(r_clean.completed);

  // Faulted run, recovery DISABLED: the one-shot NaN fires inside the
  // second velocity solve, the driver rejects the step, backs off dt, and
  // the retry succeeds because the injector has already fired.
  physics::StokesFOProblem p_fault(small_problem_config());
  const auto spec = resilience::fault_spec_from_string("nan:residual:4");
  resilience::FaultInjector injector(spec);
  ForecastConfig f_cfg = cfg;
  f_cfg.injector = &injector;
  ForecastDriver faulted(p_fault, f_cfg);
  const ForecastResult r_fault = faulted.run();
  ASSERT_TRUE(r_fault.completed);
  EXPECT_GE(r_fault.rejections, 1);
  EXPECT_GE(faulted.controller().failures(), 1);
  EXPECT_EQ(r_fault.t_final, r_clean.t_final);
  // The perturbed dt schedule changes step count, not the physics: the
  // final volume stays within a loose tolerance of the clean run.
  EXPECT_NEAR(r_fault.volume_final / r_clean.volume_final, 1.0, 1e-3);
}

TEST(ForecastResilience, RecoveryLadderAbsorbsTheFaultInSolve) {
  physics::StokesFOProblem problem(small_problem_config());
  const auto spec = resilience::fault_spec_from_string("nan:residual:4");
  resilience::FaultInjector injector(spec);
  ForecastConfig cfg;
  cfg.years = 1.5;
  cfg.velocity_every = 1;
  cfg.thermal_enabled = false;
  cfg.newton.max_iters = 4;
  cfg.controller.dt_init = 0.5;
  cfg.controller.dt_min = 1.0 / 64.0;
  cfg.controller.dt_max = 0.5;
  cfg.make_precond = make_jacobi;
  cfg.injector = &injector;
  cfg.newton.recovery.enabled = true;
  cfg.newton.recovery.precond_ladder = {
      [] { return std::make_unique<linalg::JacobiPreconditioner>(); },
      [] { return std::make_unique<linalg::BlockJacobiPreconditioner>(2); },
  };
  ForecastDriver driver(problem, cfg);
  const ForecastResult res = driver.run();
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.rejections, 0)
      << "the in-solve recovery ladder should absorb the fault before the "
         "step-level backoff engages";
}

// ---- ledger sanity ----------------------------------------------------

TEST(ForecastLedger, RowsAreMonotoneAndWithinControllerBounds) {
  physics::StokesFOProblem problem(small_problem_config());
  ForecastConfig cfg;
  cfg.years = 4.0;
  cfg.velocity_every = 0;
  cfg.thermal_enabled = false;
  cfg.newton.max_iters = 4;
  cfg.controller.dt_init = 0.25;
  cfg.controller.dt_min = 0.01;
  cfg.controller.dt_max = 1.0;
  cfg.controller.growth = 1.5;
  cfg.make_precond = make_jacobi;
  ForecastDriver driver(problem, cfg);
  const ForecastResult res = driver.run();
  ASSERT_TRUE(res.completed);
  ASSERT_FALSE(res.ledger.empty());
  double t_prev = 0.0;
  for (const auto& row : res.ledger) {
    EXPECT_GT(row.t, t_prev);
    EXPECT_GT(row.dt, 0.0);
    EXPECT_LE(row.dt, cfg.controller.dt_max + 1e-15);
    EXPECT_NEAR(row.t, t_prev + row.dt, 1e-12);
    t_prev = row.t;
  }
  EXPECT_NEAR(t_prev, cfg.years, 1e-10);
  // Adaptive growth actually happened (0.25 -> ... -> 1.0 cap).
  EXPECT_GT(res.ledger.back().dt, res.ledger.front().dt);
}
