// Workset-partitioned assembly tests: view windows, workset-size
// independence of residual/Jacobian/solve, and the memory-bounding
// behaviour Albany's workset design exists for.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/semicoarsening_amg.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/view.hpp"

using namespace mali;
using physics::StokesFOConfig;
using physics::StokesFOProblem;

TEST(ViewWindow, SharesStorageWithParent) {
  pk::View<double, 3> v("v", 10, 3, 2);
  for (std::size_t c = 0; c < 10; ++c) {
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t k = 0; k < 2; ++k) {
        v(c, j, k) = 100.0 * static_cast<double>(c) + 10.0 * static_cast<double>(j) +
                     static_cast<double>(k);
      }
    }
  }
  const auto w = v.window(4, 3);
  EXPECT_EQ(w.extent(0), 3u);
  EXPECT_EQ(w.extent(1), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t k = 0; k < 2; ++k) {
        EXPECT_EQ(w(c, j, k), v(c + 4, j, k));
      }
    }
  }
  // Writes through the window land in the parent.
  w(1, 2, 1) = -7.0;
  EXPECT_EQ(v(5, 2, 1), -7.0);
}

TEST(ViewWindow, FullWindowIsContiguous) {
  pk::View<double, 2> v("v", 6, 4);
  const auto full = v.window(0, 6);
  full.fill(3.0);  // allowed: covers the whole allocation
  EXPECT_EQ(v(5, 3), 3.0);
  const auto part = v.window(2, 2);
  EXPECT_THROW(part.fill(1.0), mali::Error);  // strided: fill is unsafe
}

TEST(ViewWindow, BoundsChecked) {
  pk::View<double, 1> v("v", 8);
  EXPECT_THROW(v.window(5, 4), mali::Error);
}

namespace {

StokesFOConfig config_with_ws(std::size_t ws) {
  StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  cfg.workset_size = ws;
  return cfg;
}

}  // namespace

class WorksetSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorksetSizes, ResidualIndependentOfChunking) {
  StokesFOProblem ref(config_with_ws(0));
  StokesFOProblem chunked(config_with_ws(GetParam()));
  const auto U = ref.analytic_initial_guess();
  std::vector<double> Fr, Fc;
  ref.residual(U, Fr);
  chunked.residual(U, Fc);
  ASSERT_EQ(Fr.size(), Fc.size());
  for (std::size_t i = 0; i < Fr.size(); ++i) {
    EXPECT_NEAR(Fc[i], Fr[i], 1e-9 * std::max(1.0, std::abs(Fr[i]))) << i;
  }
}

TEST_P(WorksetSizes, JacobianIndependentOfChunking) {
  StokesFOProblem ref(config_with_ws(0));
  StokesFOProblem chunked(config_with_ws(GetParam()));
  const auto U = ref.analytic_initial_guess();
  std::vector<double> Fr, Fc;
  auto Jr = ref.create_matrix();
  auto Jc = chunked.create_matrix();
  ref.residual_and_jacobian(U, Fr, Jr);
  chunked.residual_and_jacobian(U, Fc, Jc);
  const auto& vr = Jr.values();
  const auto& vc = Jc.values();
  ASSERT_EQ(vr.size(), vc.size());
  for (std::size_t i = 0; i < vr.size(); ++i) {
    EXPECT_NEAR(vc[i], vr[i], 1e-9 * std::max(1.0, std::abs(vr[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Chunks, WorksetSizes,
                         ::testing::Values(1, 7, 64, 100, 10000));

TEST(Worksets, SolveMatchesUnchunked) {
  double means[2];
  int i = 0;
  for (std::size_t ws : {std::size_t{0}, std::size_t{50}}) {
    StokesFOProblem p(config_with_ws(ws));
    linalg::SemicoarseningAmg amg(p.extrusion_info());
    nonlinear::NewtonConfig ncfg;
    ncfg.max_iters = 8;
    nonlinear::NewtonSolver newton(ncfg);
    std::vector<double> U(p.n_dofs(), 0.0);
    newton.solve(p, amg, U);
    means[i++] = p.mean_velocity(U);
  }
  EXPECT_NEAR(means[1] / means[0], 1.0, 1e-8);
}

TEST(Worksets, BasalFacesPartitionExactly) {
  // Every basal face must appear in exactly one workset; with layer-major
  // cell ordering the layer-0 cells are spread across chunks.
  StokesFOProblem p(config_with_ws(13));
  const auto& ws = p.workset();
  // Count faces across worksets by re-assembling a residual whose only
  // contribution is friction: set U so stress terms vanish but friction
  // doesn't (constant horizontal velocity, zero at Dirichlet nodes is not
  // possible — instead compare friction-on vs friction-off problems).
  auto cfg_nofric = config_with_ws(13);
  cfg_nofric.geometry.beta_interior = 0.0;
  cfg_nofric.geometry.beta_stream = 0.0;
  StokesFOProblem p0(cfg_nofric);
  const auto U = p.analytic_initial_guess();
  std::vector<double> F1, F0;
  p.residual(U, F1);
  p0.residual(U, F0);
  // The friction difference must touch only basal-node rows.
  for (std::size_t n = 0; n < p.mesh().n_nodes(); ++n) {
    const bool basal = p.mesh().is_basal_node(n);
    for (int c = 0; c < 2; ++c) {
      const std::size_t d = 2 * n + static_cast<std::size_t>(c);
      const double diff = std::abs(F1[d] - F0[d]);
      if (!basal) {
        EXPECT_LT(diff, 1e-6 * std::max(1.0, std::abs(F1[d])))
            << "non-basal row " << d << " changed by friction";
      }
    }
  }
  (void)ws;
}
