// MPAS-side finite-volume transport tests: exact conservation, constant
// preservation, upwind monotonicity, MUSCL accuracy, CFL estimation, and
// RK2 vs Euler behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "mesh/ice_geometry.hpp"
#include "portability/common.hpp"
#include "mesh/quad_grid.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "mpas/fv_transport.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"

using namespace mali;
using mpas::FluxScheme;
using mpas::FvTransport;
using mpas::TimeScheme;
using mpas::TransportConfig;

namespace {

struct Fixture {
  mesh::IceGeometry geom{};
  std::shared_ptr<mesh::QuadGrid> grid =
      std::make_shared<mesh::QuadGrid>(geom, mesh::QuadGridConfig{100.0e3});
};

std::vector<double> gaussian_bump(const mesh::QuadGrid& g, double x0,
                                  double y0, double sigma) {
  std::vector<double> H(g.n_cells());
  for (std::size_t c = 0; c < g.n_cells(); ++c) {
    double x, y;
    g.cell_centroid(c, x, y);
    const double r2 = (x - x0) * (x - x0) + (y - y0) * (y - y0);
    H[c] = 1000.0 * std::exp(-r2 / (2.0 * sigma * sigma));
  }
  return H;
}

}  // namespace

TEST(FvTransport, FacesConnectDistinctCells) {
  Fixture f;
  FvTransport fv(*f.grid);
  EXPECT_GT(fv.n_faces(), fv.n_cells());  // interior quads have 4 faces / 2
  for (const auto& face : fv.faces()) {
    EXPECT_NE(face.left, face.right);
    EXPECT_NEAR(std::hypot(face.nx, face.ny), 1.0, 1e-12);
  }
}

TEST(FvTransport, ZeroVelocityZeroSourceIsSteady) {
  Fixture f;
  FvTransport fv(*f.grid);
  auto H = gaussian_bump(*f.grid, 0, 0, 3e5);
  const auto H0 = H;
  const std::vector<double> zero(fv.n_cells(), 0.0);
  fv.step(H, zero, zero, zero, 10.0);
  EXPECT_EQ(H, H0);
}

TEST(FvTransport, SourceOnlyIntegratesExactly) {
  Fixture f;
  FvTransport fv(*f.grid);
  std::vector<double> H(fv.n_cells(), 100.0), zero(fv.n_cells(), 0.0);
  std::vector<double> src(fv.n_cells(), 0.5);  // m/yr
  fv.step(H, zero, zero, src, 4.0);
  for (double h : H) EXPECT_NEAR(h, 102.0, 1e-12);
}

class FvSchemes
    : public ::testing::TestWithParam<std::tuple<FluxScheme, TimeScheme>> {};

TEST_P(FvSchemes, ConservesVolumeWithoutSources) {
  const auto [flux, time] = GetParam();
  Fixture f;
  TransportConfig cfg;
  cfg.flux = flux;
  cfg.time = time;
  cfg.min_thickness = -1e30;  // disable the floor: test pure conservation
  FvTransport fv(*f.grid, cfg);
  // Compact bump that stays far from the margin over the advected distance
  // (the boundary faces are outflow, so mass reaching them leaves).
  auto H = gaussian_bump(*f.grid, 0, 0, 1e5);
  std::vector<double> u(fv.n_cells(), 80.0), v(fv.n_cells(), -35.0);
  const std::vector<double> zero(fv.n_cells(), 0.0);
  const double v0 = fv.volume(H);
  const double dt = 0.4 * fv.max_stable_dt(u, v);
  for (int s = 0; s < 5; ++s) fv.step(H, u, v, zero, dt);
  EXPECT_NEAR(fv.volume(H) / v0, 1.0, 1e-6)
      << "interior transport must conserve volume";
}

INSTANTIATE_TEST_SUITE_P(
    All, FvSchemes,
    ::testing::Combine(::testing::Values(FluxScheme::kUpwind,
                                         FluxScheme::kVanLeerMuscl),
                       ::testing::Values(TimeScheme::kForwardEuler,
                                         TimeScheme::kHeunRk2)));

TEST(FvTransport, UpwindPreservesConstantStates) {
  Fixture f;
  FvTransport fv(*f.grid);
  std::vector<double> H(fv.n_cells(), 500.0);
  std::vector<double> u(fv.n_cells(), 100.0), v(fv.n_cells(), 50.0);
  std::vector<double> dHdt;
  const std::vector<double> zero(fv.n_cells(), 0.0);
  fv.tendency(H, u, v, zero, dHdt);
  // Interior cells see zero divergence; margin cells lose mass (outflow).
  double interior_max = 0.0;
  for (std::size_t c = 0; c < fv.n_cells(); ++c) {
    bool margin_cell = false;
    for (int k = 0; k < 4; ++k) {
      margin_cell |= f.grid->is_margin_node(f.grid->cell_node(c, k));
    }
    if (!margin_cell) interior_max = std::max(interior_max, std::abs(dHdt[c]));
  }
  EXPECT_LT(interior_max, 1e-10);
}

TEST(FvTransport, UpwindIsMonotone) {
  // No new extrema: min/max of H never exceed the initial range.
  Fixture f;
  TransportConfig cfg;
  cfg.flux = FluxScheme::kUpwind;
  FvTransport fv(*f.grid, cfg);
  auto H = gaussian_bump(*f.grid, 1e5, -1e5, 1.5e5);
  std::vector<double> u(fv.n_cells(), 120.0), v(fv.n_cells(), 60.0);
  const std::vector<double> zero(fv.n_cells(), 0.0);
  const double hmax = *std::max_element(H.begin(), H.end());
  const double dt = 0.5 * fv.max_stable_dt(u, v);
  for (int s = 0; s < 30; ++s) {
    fv.step(H, u, v, zero, dt);
    for (double h : H) {
      EXPECT_GE(h, -1e-12);
      EXPECT_LE(h, hmax * (1.0 + 1e-12));
    }
  }
}

TEST(FvTransport, MusclLessDiffusiveThanUpwind) {
  Fixture f;
  TransportConfig up_cfg, ml_cfg;
  up_cfg.flux = FluxScheme::kUpwind;
  ml_cfg.flux = FluxScheme::kVanLeerMuscl;
  ml_cfg.time = TimeScheme::kHeunRk2;
  FvTransport up(*f.grid, up_cfg), ml(*f.grid, ml_cfg);
  auto Hu = gaussian_bump(*f.grid, 0, 0, 2e5);
  auto Hm = Hu;
  std::vector<double> u(up.n_cells(), 150.0), v(up.n_cells(), 0.0);
  const std::vector<double> zero(up.n_cells(), 0.0);
  const double dt = 0.3 * up.max_stable_dt(u, v);
  for (int s = 0; s < 40; ++s) {
    up.step(Hu, u, v, zero, dt);
    ml.step(Hm, u, v, zero, dt);
  }
  // The limited scheme keeps the peak higher (less numerical diffusion).
  EXPECT_GT(*std::max_element(Hm.begin(), Hm.end()),
            *std::max_element(Hu.begin(), Hu.end()) * 1.05);
}

TEST(FvTransport, CflEstimate) {
  Fixture f;
  FvTransport fv(*f.grid);
  std::vector<double> u(fv.n_cells(), 100.0), v(fv.n_cells(), 0.0);
  EXPECT_NEAR(fv.max_stable_dt(u, v), f.grid->dx() / 100.0, 1e-9);
  const std::vector<double> zero(fv.n_cells(), 0.0);
  EXPECT_TRUE(std::isinf(fv.max_stable_dt(zero, zero)));
}

TEST(FvTransport, MinThicknessFloor) {
  Fixture f;
  TransportConfig cfg;
  cfg.min_thickness = 10.0;
  FvTransport fv(*f.grid, cfg);
  std::vector<double> H(fv.n_cells(), 12.0), zero(fv.n_cells(), 0.0);
  std::vector<double> melt(fv.n_cells(), -5.0);  // m/yr ablation
  fv.step(H, zero, zero, melt, 1.0);
  for (double h : H) EXPECT_DOUBLE_EQ(h, 10.0);
}

TEST(FvTransport, NodeToCellAveraging) {
  Fixture f;
  FvTransport fv(*f.grid);
  // Linear field: cell average equals centroid value.
  std::vector<double> nodal(f.grid->n_nodes());
  for (std::size_t n = 0; n < f.grid->n_nodes(); ++n) {
    nodal[n] = 2.0 * f.grid->node_x(n) - 0.5 * f.grid->node_y(n) + 7.0;
  }
  const auto cell = fv.node_to_cell(nodal);
  for (std::size_t c = 0; c < fv.n_cells(); ++c) {
    double x, y;
    f.grid->cell_centroid(c, x, y);
    EXPECT_NEAR(cell[c], 2.0 * x - 0.5 * y + 7.0, 1e-6);
  }
}

TEST(FvTransport, CoupledVelocityTransportIntegration) {
  // End-to-end: solve the velocity, depth-average it, advance the thickness
  // under SMB + transport, and check physically sane behaviour (finite,
  // non-negative thickness; volume changes bounded by the forcing scale).
  physics::StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  physics::StokesFOProblem p(cfg);
  linalg::SemicoarseningAmg amg(p.extrusion_info());
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 8;
  nonlinear::NewtonSolver newton(ncfg);
  auto U = p.analytic_initial_guess();
  newton.solve(p, amg, U);

  const auto& base = p.mesh().base();
  const auto& msh = p.mesh();
  std::vector<double> ubar(base.n_nodes(), 0.0), vbar(base.n_nodes(), 0.0);
  const std::size_t nl = msh.levels();
  for (std::size_t col = 0; col < base.n_nodes(); ++col) {
    for (std::size_t lev = 0; lev < nl; ++lev) {
      const std::size_t n = msh.node_id(col, lev);
      const double w = (lev == 0 || lev + 1 == nl) ? 0.5 : 1.0;
      ubar[col] += w * U[2 * n] / static_cast<double>(nl - 1);
      vbar[col] += w * U[2 * n + 1] / static_cast<double>(nl - 1);
    }
  }

  FvTransport fv(base, {});
  std::vector<double> H(fv.n_cells()), smb(fv.n_cells());
  for (std::size_t c = 0; c < fv.n_cells(); ++c) {
    double x, y;
    base.cell_centroid(c, x, y);
    H[c] = p.geometry().thickness(x, y);
    smb[c] = p.geometry().surface_mass_balance(x, y);
  }
  const auto uc = fv.node_to_cell(ubar);
  const auto vc = fv.node_to_cell(vbar);
  const double v0 = fv.volume(H);
  const double dt = std::min(5.0, 0.4 * fv.max_stable_dt(uc, vc));
  for (int s = 0; s < 20; ++s) fv.step(H, uc, vc, smb, dt);
  const double v1 = fv.volume(H);
  for (double h : H) {
    EXPECT_TRUE(std::isfinite(h));
    EXPECT_GE(h, 0.0);
  }
  // 100 years of <1 m/yr forcing on ~2 km thickness: small relative change.
  EXPECT_NEAR(v1 / v0, 1.0, 0.05);
  EXPECT_NE(v1, v0);
}

// ---- input validation at the library boundary ------------------------
// step() promises typed mali::Error on bad dt, mismatched sizes, and
// non-finite fields, naming the offending input.

TEST(FvTransportValidation, RejectsNonPositiveOrNonFiniteDt) {
  Fixture f;
  FvTransport fv(*f.grid);
  std::vector<double> H(fv.n_cells(), 100.0), zero(fv.n_cells(), 0.0);
  EXPECT_THROW(fv.step(H, zero, zero, zero, 0.0), mali::Error);
  EXPECT_THROW(fv.step(H, zero, zero, zero, -1.0), mali::Error);
  EXPECT_THROW(fv.step(H, zero, zero, zero,
                       std::numeric_limits<double>::quiet_NaN()),
               mali::Error);
  EXPECT_THROW(fv.step(H, zero, zero, zero,
                       std::numeric_limits<double>::infinity()),
               mali::Error);
}

TEST(FvTransportValidation, RejectsMismatchedFieldSizes) {
  Fixture f;
  FvTransport fv(*f.grid);
  std::vector<double> H(fv.n_cells(), 100.0), zero(fv.n_cells(), 0.0);
  std::vector<double> wrong(fv.n_cells() + 1, 0.0);
  EXPECT_THROW(fv.step(wrong, zero, zero, zero, 1.0), mali::Error);
  EXPECT_THROW(fv.step(H, wrong, zero, zero, 1.0), mali::Error);
  EXPECT_THROW(fv.step(H, zero, wrong, zero, 1.0), mali::Error);
  EXPECT_THROW(fv.step(H, zero, zero, wrong, 1.0), mali::Error);
  std::vector<double> dHdt;
  EXPECT_THROW(fv.tendency(wrong, zero, zero, zero, dHdt), mali::Error);
}

TEST(FvTransportValidation, RejectsNonFiniteFieldsNamingTheField) {
  Fixture f;
  FvTransport fv(*f.grid);
  const std::vector<double> zero(fv.n_cells(), 0.0);
  const auto poisoned = [&](const char* name) {
    std::vector<double> H(fv.n_cells(), 100.0);
    std::vector<double> u = zero, v = zero, src = zero;
    std::vector<double>* target = nullptr;
    if (std::string(name) == "thickness") target = &H;
    if (std::string(name) == "u velocity") target = &u;
    if (std::string(name) == "v velocity") target = &v;
    if (std::string(name) == "source") target = &src;
    (*target)[3] = std::numeric_limits<double>::quiet_NaN();
    try {
      fv.step(H, u, v, src, 1.0);
      ADD_FAILURE() << "expected mali::Error for non-finite " << name;
    } catch (const mali::Error& e) {
      EXPECT_NE(std::string(e.what()).find(name), std::string::npos)
          << "error message should name the field: " << e.what();
      EXPECT_NE(std::string(e.what()).find("cell 3"), std::string::npos)
          << "error message should name the entry: " << e.what();
    }
  };
  poisoned("thickness");
  poisoned("u velocity");
  poisoned("v velocity");
  poisoned("source");
}

// ---- exact mass budget ------------------------------------------------
// step() returns StepStats with the discrete identity
//   volume(H_new) - volume(H_old) = smb - calving + clamp
// holding to roundoff for both time schemes and both flux schemes.

TEST_P(FvSchemes, StepStatsBudgetIdentityIsExact) {
  Fixture f;
  auto [flux, time] = GetParam();
  TransportConfig cfg;
  cfg.flux = flux;
  cfg.time = time;
  cfg.min_thickness = 1.0;  // exercise the clamp term as well
  FvTransport fv(*f.grid, cfg);
  auto H = gaussian_bump(*f.grid, 0.0, 0.0, 400.0e3);
  std::vector<double> u(fv.n_cells(), 90.0), v(fv.n_cells(), -40.0);
  std::vector<double> src(fv.n_cells());
  for (std::size_t c = 0; c < src.size(); ++c) {
    src[c] = -0.5 + 0.01 * static_cast<double>(c % 7);
  }
  const double dt = 0.4 * fv.max_stable_dt(u, v);
  double volume = fv.volume(H);
  for (int s = 0; s < 10; ++s) {
    const auto stats = fv.step(H, u, v, src, dt);
    const double next = fv.volume(H);
    const double budget =
        stats.smb_volume - stats.calving_volume + stats.clamp_volume;
    EXPECT_NEAR(next - volume, budget, 1e-12 * std::max(1.0, volume))
        << "step " << s;
    volume = next;
  }
}
